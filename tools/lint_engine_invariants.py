#!/usr/bin/env python3
"""Repo-invariant lint, run by the CI repo-lint job.

Three checks, each guarding a convention the engine relies on but the
compiler cannot enforce:

1. Hot-path purity: no wall-clock or RNG calls (`steady_clock`, `rand(`,
   `srand(`, `time(`) in `src/` outside the explicit allowlist of files
   whose timing is behind the profiling / telemetry guards (exec_node's
   EnableTimingRecursive gate, the trace/metrics sinks, the thread pool's
   contention counter, profile.cc, and executor.cc's phase timers, which
   only run when profiling is on). A timing call that sneaks into a kernel
   or operator loop silently costs a vDSO call per row.

2. Rule-id hygiene: every `verify_rules::k*` string constant declared in
   src/verify/verifier.h must be documented in DESIGN.md and exercised by
   tests/verify_test.cc. A rule that fires in production but appears in
   neither is untested and unexplained.

3. Test registration: every tests/*.cc file must be registered in
   tests/CMakeLists.txt. An unregistered suite compiles on nobody's
   machine and silently stops running.

4. Plan-decision consolidation: the negative-link two-valued antijoin
   decision is computed by `NegativeLinkRunsTwoValued`, but call sites are
   restricted to its home (src/verify/properties.h/.cc), the shared
   engine predicates (src/nra/rewrites.h), and exactly ONE deliberate
   re-validation inside src/verify/verifier.cc's CheckOutline. Executor,
   EXPLAIN, and outline derivation must route through the rewrites.h
   predicates — a new direct call is a hand-mirrored copy of the decision
   that will eventually drift (the bug class PR 7 removed).

5. Catalog-mutation layering: once sessions exist, DDL must be serialized
   against running queries by ConnectionManager's schema lock, so direct
   Catalog mutation calls (`RegisterTable(` / `DropTable(` / `AddNotNull(`
   / `DropNotNull(`) in `src/` are restricted to the storage layer itself,
   the server layer (whose DDL wrappers take the exclusive schema lock),
   and the TPC-H generator (bulk-load helper invoked via
   ConnectionManager::Ddl or before any session opens). A mutation call
   sneaking into the executor or an operator would bypass the schema lock
   and reintroduce the drop-under-a-running-query race.

6. Cost-decision consolidation: the stats-driven estimator gates
   (`CostGatesSemijoinRewrite` / `CostGatesNestPushDown` /
   `ChoosesJoinStrategy` / `ChoosesScanJoinStrategy`) may be called only
   from their home (src/plan/stats/) and the shared engine predicates in
   src/nra/cost.h. Executor, EXPLAIN, and verifier consume the decisions
   through those shared predicates, and the lint requires each consumer to
   actually do so — the same one-predicate-many-mirrors rule as check 4,
   extended to the cost model: a direct estimator call in an engine file
   is a hand-mirrored copy of a plan decision that will drift. (src/ only;
   tests may call the gates directly to pin their behavior.)

Exit status is the number of violations (0 = clean).
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# Files allowed to read the clock / RNG. Everything here is either behind
# an explicit opt-in (profiling, tracing, metrics) or off the per-row path
# (pool bring-up, query-level phase stamps).
CLOCK_ALLOWLIST = {
    "src/common/thread_pool.cc",   # queue-wait contention counter
    "src/exec/exec_node.cc",       # per-node timers, gated on EnableTimingRecursive
    "src/exec/exec_node.h",
    "src/nra/executor.cc",         # per-query phase stamps (parse/plan/execute)
    "src/nra/profile.cc",          # EXPLAIN ANALYZE collection
    "src/nra/profile.h",
    "src/telemetry/trace.cc",      # trace-event timestamps
    "src/telemetry/trace.h",
    "src/server/session.cc",       # prepared-exec slow-query stamp, gated on slow_query_ms
    "src/server/harness.cc",       # per-statement latency measurement (the harness IS a load meter)
}

CLOCK_PATTERN = re.compile(r"steady_clock|\b[s]?rand\s*\(|\btime\s*\(")


def check_hot_path_purity():
    violations = []
    for path in sorted((REPO / "src").rglob("*")):
        if path.suffix not in (".cc", ".h"):
            continue
        rel = path.relative_to(REPO).as_posix()
        if rel in CLOCK_ALLOWLIST:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            code = line.split("//", 1)[0]
            if CLOCK_PATTERN.search(code):
                violations.append(
                    f"{rel}:{lineno}: clock/RNG call outside allowlist: "
                    f"{line.strip()}"
                )
    return violations


def check_rule_ids():
    violations = []
    header = (REPO / "src/verify/verifier.h").read_text()
    design = (REPO / "DESIGN.md").read_text()
    tests = (REPO / "tests/verify_test.cc").read_text()
    # Rule ids are string constants: inline constexpr const char kFoo[] = "foo";
    decls = re.findall(
        r"inline constexpr const char (k\w+)\[\]\s*=\s*\"([^\"]+)\"", header
    )
    if not decls:
        violations.append("src/verify/verifier.h: no verify_rules constants found")
    for const_name, rule_id in decls:
        if const_name not in design and rule_id not in design:
            violations.append(
                f"verify_rules::{const_name} (\"{rule_id}\") not documented "
                f"in DESIGN.md"
            )
        if const_name not in tests:
            violations.append(
                f"verify_rules::{const_name} not exercised by "
                f"tests/verify_test.cc"
            )
    return violations


def check_test_registration():
    violations = []
    cmake = (REPO / "tests/CMakeLists.txt").read_text()
    registered = set(re.findall(r"nestra_add_test\((\w+)\)", cmake))
    for path in sorted((REPO / "tests").glob("*.cc")):
        if path.stem not in registered:
            violations.append(
                f"tests/{path.name} not registered in tests/CMakeLists.txt"
            )
    return violations


# Where the two-valued antijoin decision may be computed directly. The
# value is the number of permitted call sites (None = unlimited: the
# definition and the shared predicates that wrap it).
DECISION_FUNCTION = "NegativeLinkRunsTwoValued"
DECISION_ALLOWLIST = {
    "src/verify/properties.h": None,   # declaration + docs
    "src/verify/properties.cc": None,  # definition
    "src/nra/rewrites.h": None,        # the shared predicates
    "src/verify/verifier.cc": 1,       # CheckOutline's independent recheck
}


def check_plan_decision_consolidation():
    violations = []
    for path in sorted((REPO / "src").rglob("*")):
        if path.suffix not in (".cc", ".h"):
            continue
        rel = path.relative_to(REPO).as_posix()
        allowed = DECISION_ALLOWLIST.get(rel, 0)
        if allowed is None:
            continue
        hits = []
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            code = line.split("//", 1)[0]
            if DECISION_FUNCTION in code:
                hits.append(lineno)
        if len(hits) > allowed:
            for lineno in hits[allowed:] if allowed else hits:
                violations.append(
                    f"{rel}:{lineno}: direct {DECISION_FUNCTION} call site; "
                    f"use the shared predicates in src/nra/rewrites.h "
                    f"(TakesTwoValuedAntijoin / FusedChainBypassesTwoValued) "
                    f"instead of re-deriving the plan decision"
                )
    return violations


# Where Catalog mutation calls may appear in src/. Everything else must go
# through ConnectionManager's DDL wrappers (exclusive schema lock).
CATALOG_MUTATION_PATTERN = re.compile(
    r"\b(?:RegisterTable|DropTable|AddNotNull|DropNotNull)\s*\("
)
CATALOG_MUTATION_ALLOWED_PREFIXES = (
    "src/storage/",        # the Catalog itself + persistence (catalog_io)
    "src/server/",         # ConnectionManager's lock-taking wrappers
    "src/tpch/tpch_gen.cc",  # bulk loader, run via Ddl() or pre-session
)


def check_catalog_mutation_layer():
    violations = []
    for path in sorted((REPO / "src").rglob("*")):
        if path.suffix not in (".cc", ".h"):
            continue
        rel = path.relative_to(REPO).as_posix()
        if rel.startswith(CATALOG_MUTATION_ALLOWED_PREFIXES):
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            code = line.split("//", 1)[0]
            if CATALOG_MUTATION_PATTERN.search(code):
                violations.append(
                    f"{rel}:{lineno}: direct Catalog mutation outside the "
                    f"storage/server/bulk-load layers; route DDL through "
                    f"ConnectionManager so it serializes against running "
                    f"queries: {line.strip()}"
                )
    return violations


# Stats-driven cost gates: callable only from the estimator's home and the
# shared predicates that wrap it for the engine.
COST_GATE_PATTERN = re.compile(
    r"\b(?:CostGatesSemijoinRewrite|CostGatesNestPushDown"
    r"|ChoosesJoinStrategy|ChoosesScanJoinStrategy)\s*\("
)
COST_GATE_ALLOWED_PREFIXES = (
    "src/plan/stats/",  # declarations + definitions
    "src/nra/cost.h",   # the shared predicates
)

# Every engine surface that acts on a cost decision must consume it through
# the same shared predicate, so the three mirrors cannot drift. Word-bounded
# so BaseJoinStrategyFor (the hint builder cost.h itself wraps) doesn't
# satisfy the JoinStrategyFor requirement.
COST_PREDICATE_CONSUMERS = {
    "TakesSemijoinRewrite": (
        "src/nra/executor.cc", "src/nra/explain.cc", "src/verify/verifier.cc",
    ),
    "TakesNestPushDown": (
        "src/nra/executor.cc", "src/nra/explain.cc", "src/verify/verifier.cc",
    ),
    # The verifier checks rewrite shape, not join physics, so it has no
    # JoinStrategyFor mirror to keep in sync.
    "JoinStrategyFor": ("src/nra/executor.cc", "src/nra/explain.cc"),
}


def check_cost_decision_consolidation():
    violations = []
    for path in sorted((REPO / "src").rglob("*")):
        if path.suffix not in (".cc", ".h"):
            continue
        rel = path.relative_to(REPO).as_posix()
        if rel.startswith(COST_GATE_ALLOWED_PREFIXES):
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            code = line.split("//", 1)[0]
            if COST_GATE_PATTERN.search(code):
                violations.append(
                    f"{rel}:{lineno}: direct estimator gate call site; use "
                    f"the shared predicates in src/nra/cost.h "
                    f"(TakesSemijoinRewrite / TakesNestPushDown / "
                    f"JoinStrategyFor) instead of re-deriving the cost "
                    f"decision: {line.strip()}"
                )
    for predicate, consumers in COST_PREDICATE_CONSUMERS.items():
        pattern = re.compile(rf"\b{predicate}\s*\(")
        for rel in consumers:
            if not pattern.search((REPO / rel).read_text()):
                violations.append(
                    f"{rel}: expected a {predicate}(...) call (the shared "
                    f"cost predicate from src/nra/cost.h); this surface "
                    f"must mirror the engine's cost decision through the "
                    f"shared predicate, not a local copy"
                )
    return violations


def main():
    violations = []
    for check in (check_hot_path_purity, check_rule_ids,
                  check_test_registration,
                  check_plan_decision_consolidation,
                  check_catalog_mutation_layer,
                  check_cost_decision_consolidation):
        violations.extend(check())
    for v in violations:
        print(f"lint: {v}", file=sys.stderr)
    if not violations:
        print("lint_engine_invariants: all checks clean")
    return min(len(violations), 125)


if __name__ == "__main__":
    sys.exit(main())
