#!/usr/bin/env python3
"""Aggregate BENCH_*.json artifacts into one perf-trajectory report.

The bench binaries and CI merge steps each emit their own schema
(nestra-bench-trajectory-v1, nestra-bench-compare-v1,
nestra-two-valued-compare-v1, nestra-pipeline-compare-v1,
nestra-concurrent-v1, nestra-stats-join-compare-v1, ...). Every schema
shares the envelope {"schema": ..., "meta": {...}, "entries": [{...}]}
with a "name" per entry, so this report is schema-agnostic: it renders
each file as one markdown table (columns = union of entry keys, in
first-seen order) plus a cross-file summary of speedups and identity
checks, and writes the same data as JSON
(schema "nestra-bench-report-v1") for downstream tooling.

Usage:
  python3 tools/bench_report.py [--dir DIR] [--out-md BENCH_REPORT.md]
                                [--out-json BENCH_REPORT.json] [--strict]

--strict exits nonzero when any entry reports identical=false (the
per-file CI gates do this too; the flag lets the report stand alone).
"""

import argparse
import glob
import json
import os
import statistics
import sys


def load_bench_files(directory):
    """Returns [(filename, doc)] for every parseable BENCH_*.json."""
    docs = []
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping {path}: {err}", file=sys.stderr)
            continue
        if not isinstance(doc, dict) or "entries" not in doc:
            print(f"warning: skipping {path}: no 'entries' array",
                  file=sys.stderr)
            continue
        docs.append((os.path.basename(path), doc))
    return docs


def entry_columns(entries):
    """Union of entry keys in first-seen order, 'name' always first."""
    columns = ["name"]
    for entry in entries:
        for key in entry:
            if key not in columns:
                columns.append(key)
    return columns


def format_cell(value):
    if isinstance(value, bool):
        return "yes" if value else "**NO**"
    if isinstance(value, float):
        return f"{value:.4g}"
    if value is None:
        return ""
    return str(value)


def file_summary(name, doc):
    entries = doc["entries"]
    speedups = [e["speedup"] for e in entries
                if isinstance(e.get("speedup"), (int, float))]
    checked = [e for e in entries if isinstance(e.get("identical"), bool)]
    summary = {
        "file": name,
        "schema": doc.get("schema", "?"),
        "entries": len(entries),
        "identity_checked": len(checked),
        "identity_failures": sum(1 for e in checked if not e["identical"]),
    }
    if speedups:
        summary["speedup_min"] = min(speedups)
        summary["speedup_median"] = statistics.median(speedups)
        summary["speedup_max"] = max(speedups)
    return summary


def markdown_table(columns, rows):
    lines = ["| " + " | ".join(columns) + " |",
             "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def render_markdown(docs, summaries):
    out = ["# Bench trajectory report", ""]
    if not docs:
        out.append("No BENCH_*.json files found.")
        return "\n".join(out) + "\n"

    out.append("## Summary")
    out.append("")
    columns = ["file", "schema", "entries", "identity", "speedup (min/med/max)"]
    rows = []
    for s in summaries:
        if s["identity_checked"]:
            identity = (f"{s['identity_checked'] - s['identity_failures']}"
                        f"/{s['identity_checked']} ok")
            if s["identity_failures"]:
                identity = f"**{identity}**"
        else:
            identity = "-"
        if "speedup_min" in s:
            speed = (f"{s['speedup_min']:.2f}x / {s['speedup_median']:.2f}x"
                     f" / {s['speedup_max']:.2f}x")
        else:
            speed = "-"
        rows.append([s["file"], s["schema"], str(s["entries"]), identity,
                     speed])
    out.append(markdown_table(columns, rows))
    out.append("")

    for name, doc in docs:
        out.append(f"## {name}")
        out.append("")
        meta = doc.get("meta")
        if isinstance(meta, dict) and meta:
            rendered = ", ".join(f"{k}={v}" for k, v in meta.items())
            out.append(f"`{doc.get('schema', '?')}` — {rendered}")
        else:
            out.append(f"`{doc.get('schema', '?')}`")
        out.append("")
        entries = doc["entries"]
        if not entries:
            out.append("(no entries)")
            out.append("")
            continue
        columns = entry_columns(entries)
        rows = [[format_cell(e.get(c)) for c in columns] for e in entries]
        out.append(markdown_table(columns, rows))
        out.append("")
    return "\n".join(out) + "\n"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", default=".",
                        help="directory holding BENCH_*.json (default: .)")
    parser.add_argument("--out-md", default="BENCH_REPORT.md")
    parser.add_argument("--out-json", default="BENCH_REPORT.json")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero on any identical=false entry")
    args = parser.parse_args()

    docs = load_bench_files(args.dir)
    summaries = [file_summary(name, doc) for name, doc in docs]

    markdown = render_markdown(docs, summaries)
    with open(args.out_md, "w") as f:
        f.write(markdown)

    report = {
        "schema": "nestra-bench-report-v1",
        "files": [
            {"file": name, "schema": doc.get("schema", "?"),
             "meta": doc.get("meta"), "entries": doc["entries"]}
            for name, doc in docs
        ],
        "summary": summaries,
    }
    with open(args.out_json, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    total_entries = sum(s["entries"] for s in summaries)
    failures = sum(s["identity_failures"] for s in summaries)
    print(f"{len(docs)} bench files, {total_entries} entries -> "
          f"{args.out_md}, {args.out_json}")
    if failures:
        print(f"{failures} identity failure(s)", file=sys.stderr)
        if args.strict:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
