// A/B benchmark for cost-driven planning from load-time statistics
// (DESIGN.md §13): the perfect (dense-array) hash join against the generic
// chained hash table, the build-side swap, the end-to-end cost_based
// planner, and zone-map granule pruning on base scans.
//
// Series (each strictly interleaved, min-of-N, identity-checked on the
// first iteration):
//  * StatsJoin/PerfectJoin/{row,batch} — exec-level HashJoinNode over the
//    dense o_orderkey key: default hints (generic table) versus the
//    perfect-keying hints the estimator derives from column min/max. Same
//    inputs, same output order; only the internal table layout differs.
//  * StatsJoin/BuildSwap/row — default build on the 4x-larger right input
//    versus the hinted left build with the right side streamed past it.
//  * StatsJoin/EndToEnd/* — full SQL under cost_based=false vs. the
//    default cost_based=true, so every gate (strategy hints, rewrites,
//    pruning) participates.
//  * StatsJoin/ZonePrune/scan — a narrow range scan over lineitem where
//    the zone map proves most granules empty; the entry also records the
//    deterministic granules scanned/pruned telemetry counters.
//
// Results land in the NESTRA_STATS_JOIN_JSON sink (BENCH_9.json, schema
// "nestra-stats-join-compare-v1"). CI gates: PerfectJoin speedup >= 1.3x,
// ZonePrune granules_pruned > 0, every entry identical.

#include "bench_common.h"

#include "exec/exec_node.h"
#include "exec/hash_join.h"
#include "exec/join_hints.h"
#include "telemetry/engine_metrics.h"

namespace nestra {
namespace bench {
namespace {

class StatsJoinJsonRecorder {
 public:
  static StatsJoinJsonRecorder& Get() {
    static StatsJoinJsonRecorder* recorder = [] {
      auto* r = new StatsJoinJsonRecorder();
      std::atexit(&StatsJoinJsonRecorder::WriteAtExit);
      return r;
    }();
    return *recorder;
  }

  void Record(const std::string& name, double generic_min_ms,
              double cost_min_ms, bool identical, double granules_scanned,
              double granules_pruned) {
    std::lock_guard<std::mutex> lock(mu_);
    // The benchmark runner re-invokes each function while calibrating the
    // iteration count; fold repeat runs into one entry per series.
    for (Entry& e : entries_) {
      if (e.name != name) continue;
      e.generic_min_ms = std::min(e.generic_min_ms, generic_min_ms);
      e.cost_min_ms = std::min(e.cost_min_ms, cost_min_ms);
      e.identical = e.identical && identical;
      e.granules_scanned = granules_scanned;
      e.granules_pruned = granules_pruned;
      return;
    }
    entries_.push_back({name, generic_min_ms, cost_min_ms, identical,
                        granules_scanned, granules_pruned});
  }

 private:
  struct Entry {
    std::string name;
    double generic_min_ms;
    double cost_min_ms;
    bool identical;
    double granules_scanned;
    double granules_pruned;
  };

  static void WriteAtExit() {
    const char* path = std::getenv("NESTRA_STATS_JOIN_JSON");
    if (path == nullptr || path[0] == '\0') return;
    StatsJoinJsonRecorder& self = Get();
    std::lock_guard<std::mutex> lock(self.mu_);
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"schema\": \"nestra-stats-join-compare-v1\",\n");
    std::fprintf(f, "  \"meta\": %s,\n", BuildMetaJson().c_str());
    std::fprintf(f, "  \"entries\": [");
    for (size_t i = 0; i < self.entries_.size(); ++i) {
      const Entry& e = self.entries_[i];
      const double speedup =
          e.cost_min_ms > 0 ? e.generic_min_ms / e.cost_min_ms : 0.0;
      std::fprintf(f,
                   "%s\n    {\"name\": \"%s\", \"generic_min_ms\": %.6f, "
                   "\"cost_min_ms\": %.6f, \"speedup\": %.4f, "
                   "\"identical\": %s, \"granules_scanned\": %.0f, "
                   "\"granules_pruned\": %.0f}",
                   i == 0 ? "" : ",", e.name.c_str(), e.generic_min_ms,
                   e.cost_min_ms, speedup, e.identical ? "true" : "false",
                   e.granules_scanned, e.granules_pruned);
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

  std::mutex mu_;
  std::vector<Entry> entries_;
};

// Narrow two-column projection of a catalog table, so the A/B join series
// time key hashing and probing rather than wide-row copies.
Table ProjectTwo(const Catalog& catalog, const std::string& table,
                 const std::string& col_a, const std::string& col_b) {
  const Table& src = **catalog.GetTable(table);
  const int ia = src.schema().IndexOfExact(col_a);
  const int ib = src.schema().IndexOfExact(col_b);
  Table out{src.schema().Select({ia, ib})};
  for (const Row& r : src.rows()) {
    Row row;
    row.Append(r.values()[static_cast<size_t>(ia)]);
    row.Append(r.values()[static_cast<size_t>(ib)]);
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

// Times one HashJoinNode drain over copies of `probe` and `build` with the
// given hints (the copies happen outside the timed window).
double TimedJoin(const Table& probe, const Table& build,
                 const std::vector<EquiPair>& equi,
                 const JoinBuildHints& hints, bool vectorized, Table* out) {
  auto l = std::make_unique<TableSourceNode>(probe);
  auto r = std::make_unique<TableSourceNode>(build);
  HashJoinNode join(std::move(l), std::move(r), JoinType::kInner, equi,
                    /*residual=*/nullptr, /*num_threads=*/1, vectorized,
                    hints);
  const auto t0 = std::chrono::steady_clock::now();
  Result<Table> result = CollectTable(&join, vectorized);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  if (!result.ok()) std::abort();
  *out = std::move(result).ValueOrDie();
  return ms;
}

// Interleaved A/B of generic vs. hinted hash join at the exec layer.
void RunJoinCompare(benchmark::State& state, const Table& probe,
                    const Table& build, const std::vector<EquiPair>& equi,
                    const JoinBuildHints& hints, bool vectorized,
                    const std::string& bench_name) {
  double generic_min = 0;
  double hinted_min = 0;
  bool identical = true;
  int iters = 0;
  for (auto _ : state) {
    Table generic_out;
    Table hinted_out;
    const double generic_ms = TimedJoin(probe, build, equi, JoinBuildHints{},
                                        vectorized, &generic_out);
    const double hinted_ms =
        TimedJoin(probe, build, equi, hints, vectorized, &hinted_out);
    if (iters == 0) {
      // Bit-identical: hints change the internal table layout only, never
      // output rows or their order.
      identical = generic_out.schema().Equals(hinted_out.schema()) &&
                  generic_out.rows() == hinted_out.rows();
    }
    generic_min = iters == 0 ? generic_ms : std::min(generic_min, generic_ms);
    hinted_min = iters == 0 ? hinted_ms : std::min(hinted_min, hinted_ms);
    ++iters;
    benchmark::DoNotOptimize(hinted_out.num_rows());
  }
  if (iters == 0) return;
  state.counters["generic_min_ms"] = generic_min;
  state.counters["hinted_min_ms"] = hinted_min;
  state.counters["speedup"] = hinted_min > 0 ? generic_min / hinted_min : 0;
  state.counters["results_identical"] = identical ? 1 : 0;
  StatsJoinJsonRecorder::Get().Record(bench_name, generic_min, hinted_min,
                                      identical, 0, 0);
}

// Interleaved A/B of cost_based off vs. on for one SQL query; also records
// the deterministic zone-pruning counter deltas of the cost-based run.
void RunCostCompare(benchmark::State& state, const Catalog& catalog,
                    const std::string& sql, const std::string& bench_name) {
  NraOptions generic = NraOptions::Optimized();
  generic.cost_based = false;
  generic.num_threads = 1;
  NraOptions cost = NraOptions::Optimized();
  cost.cost_based = true;
  cost.num_threads = 1;
  NraExecutor generic_exec(catalog, generic);
  NraExecutor cost_exec(catalog, cost);
  IoSim* sim = IoSim::Get();
  const telemetry::EngineMetrics& m = telemetry::Metrics();

  double generic_min = 0;
  double cost_min = 0;
  bool identical = true;
  double scanned = 0;
  double pruned = 0;
  int iters = 0;
  for (auto _ : state) {
    if (sim != nullptr) sim->Reset();
    auto t0 = std::chrono::steady_clock::now();
    Result<Table> generic_result = generic_exec.ExecuteSql(sql);
    const double generic_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
    if (sim != nullptr) sim->Reset();
    const double scanned_before = m.zone_granules_scanned_total->Value();
    const double pruned_before = m.zone_granules_pruned_total->Value();
    t0 = std::chrono::steady_clock::now();
    Result<Table> cost_result = cost_exec.ExecuteSql(sql);
    const double cost_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    scanned = m.zone_granules_scanned_total->Value() - scanned_before;
    pruned = m.zone_granules_pruned_total->Value() - pruned_before;
    if (!generic_result.ok() || !cost_result.ok()) {
      state.SkipWithError("cost comparison run failed");
      return;
    }
    if (iters == 0) {
      identical =
          generic_result->schema().Equals(cost_result->schema()) &&
          Table::BagEquals(*generic_result, *cost_result);
    }
    generic_min = iters == 0 ? generic_ms : std::min(generic_min, generic_ms);
    cost_min = iters == 0 ? cost_ms : std::min(cost_min, cost_ms);
    ++iters;
    benchmark::DoNotOptimize(cost_result->num_rows());
  }
  if (iters == 0) return;
  state.counters["generic_min_ms"] = generic_min;
  state.counters["cost_min_ms"] = cost_min;
  state.counters["cost_speedup"] = cost_min > 0 ? generic_min / cost_min : 0;
  state.counters["results_identical"] = identical ? 1 : 0;
  state.counters["granules_scanned"] = scanned;
  state.counters["granules_pruned"] = pruned;
  StatsJoinJsonRecorder::Get().Record(bench_name, generic_min, cost_min,
                                      identical, scanned, pruned);
}

void RegisterJoin(const std::string& name, const Table& probe,
                  const Table& build, std::vector<EquiPair> equi,
                  const JoinBuildHints& hints, bool vectorized) {
  benchmark::RegisterBenchmark(
      name.c_str(), [&probe, &build, equi = std::move(equi), hints,
                     vectorized, name](benchmark::State& state) {
        RunJoinCompare(state, probe, build, equi, hints, vectorized, name);
      })
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.05);
}

void RegisterCost(const std::string& name, const Catalog& catalog,
                  const std::string& sql) {
  benchmark::RegisterBenchmark(
      name.c_str(), [&catalog, sql, name](benchmark::State& state) {
        RunCostCompare(state, catalog, sql, name);
      })
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.05);
}

void RegisterAll() {
  const Catalog& catalog = SharedCatalog(/*declare_not_null=*/true);

  // Build = orders keyed on the dense o_orderkey (1..num_orders, exactly
  // the span load-time stats report); probe = every lineitem row. Static
  // storage: benchmark lambdas capture by reference across registration.
  static const Table* probe = new Table(
      ProjectTwo(catalog, "lineitem", "l_orderkey", "l_quantity"));
  static const Table* build = new Table(
      ProjectTwo(catalog, "orders", "o_orderkey", "o_totalprice"));
  JoinBuildHints perfect;
  perfect.perfect = true;
  perfect.perfect_min = 1;
  perfect.perfect_max = build->num_rows();
  const std::vector<EquiPair> on_orderkey = {{"l_orderkey", "o_orderkey"}};
  RegisterJoin("StatsJoin/PerfectJoin/row", *probe, *build, on_orderkey,
               perfect, /*vectorized=*/false);
  RegisterJoin("StatsJoin/PerfectJoin/batch", *probe, *build, on_orderkey,
               perfect, /*vectorized=*/true);

  // Swap: default plan builds on the 4x-larger right input; the hint
  // builds left and streams the big side past it.
  JoinBuildHints swap;
  swap.build_left = true;
  const std::vector<EquiPair> on_orderkey_rev = {{"o_orderkey", "l_orderkey"}};
  RegisterJoin("StatsJoin/BuildSwap/row", *build, *probe, on_orderkey_rev,
               swap, /*vectorized=*/false);

  // End-to-end: the full cost-based planner against the flag-only plan.
  // Fanout ~1 keeps the rewrite gates off (pure strategy-hint effect)...
  RegisterCost("StatsJoin/EndToEnd/dense-key-in", catalog,
               "select l.l_orderkey from lineitem l "
               "where l.l_quantity in (select o.o_totalprice "
               "from orders o where o.o_orderkey = l.l_orderkey)");
  // ...while the orders->lineitem direction clears kCostMinJoinRows with
  // fanout ~4, so the cardinality-gated §4.2.5 semijoin also participates.
  RegisterCost("StatsJoin/EndToEnd/semijoin-gate", catalog,
               "select o.o_orderkey from orders o "
               "where o.o_totalprice > some (select l.l_extendedprice "
               "from lineitem l where l.l_orderkey = o.o_orderkey)");

  // Zone pruning: lineitem is generated in o_orderkey order, so its zone
  // map proves all but the tail granules empty for a high key cut.
  RegisterCost("StatsJoin/ZonePrune/scan", catalog,
               "select l.l_orderkey, l.l_quantity from lineitem l "
               "where l.l_orderkey > 14500");
}

}  // namespace
}  // namespace bench
}  // namespace nestra

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  nestra::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
