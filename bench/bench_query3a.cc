// Figure 7: Query 3a — the GENERAL two-level query (the third block is
// correlated to BOTH outer blocks via p_partkey and ps_suppkey) with the
// MIXED operators `< ALL` + `EXISTS`, in the three correlated-predicate
// variants (a) =/=, (b) <>/=, (c) =/<>.
//
// System A cannot antijoin here even with NOT NULL constraints (the
// non-adjacent correlation loses table information), so the native plan is
// nested iteration over indexes for every variant, while the NR approach
// stays flat across variants.

#include "bench_common.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const nestra::Catalog& catalog =
      nestra::bench::SharedCatalog(/*declare_not_null=*/true);
  nestra::bench::RegisterQuerySeries(
      "Query3a(a)", catalog, /*is_query3=*/true, nestra::OuterLink::kAll,
      nestra::InnerLink::kExists, nestra::Query3Variant::kVariantA);
  nestra::bench::RegisterQuerySeries(
      "Query3a(b)", catalog, /*is_query3=*/true, nestra::OuterLink::kAll,
      nestra::InnerLink::kExists, nestra::Query3Variant::kVariantB);
  nestra::bench::RegisterQuerySeries(
      "Query3a(c)", catalog, /*is_query3=*/true, nestra::OuterLink::kAll,
      nestra::InnerLink::kExists, nestra::Query3Variant::kVariantC);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
