// Figure 9: Query 3c — the general two-level query with the POSITIVE
// operators `< ANY` + `EXISTS`, three correlated-predicate variants.
//
// Positive operators are the native approach's best case (System A unnests
// the EXISTS with index nested-loop joins); the NR approach can match it
// by enabling the §4.2.5 positive-operator rewrite, reported here as a
// fourth series.

#include "bench_common.h"

namespace {

void RegisterRewriteSeries(const char* figure, const nestra::Catalog& catalog,
                           nestra::Query3Variant variant) {
  using nestra::bench::kAvailQtyMax;
  using nestra::bench::kPartSizeHis;
  using nestra::bench::kQuantity;
  for (const int64_t hi : kPartSizeHis) {
    const std::string label = std::to_string(hi * 120);
    const std::string name =
        std::string(figure) + "/NraPositiveRewrite/parts=" + label;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [&catalog, hi, variant, name](benchmark::State& state) {
          nestra::NraOptions opts = nestra::NraOptions::Optimized();
          opts.rewrite_positive = true;
          nestra::bench::RunNra(
              state, catalog,
              nestra::MakeQuery3(1, hi, kAvailQtyMax, kQuantity,
                                 nestra::OuterLink::kAny,
                                 nestra::InnerLink::kExists, variant),
              opts, name);
        })
        ->Unit(benchmark::kMillisecond)->MinTime(0.05);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const nestra::Catalog& catalog =
      nestra::bench::SharedCatalog(/*declare_not_null=*/true);
  nestra::bench::RegisterQuerySeries(
      "Query3c(a)", catalog, /*is_query3=*/true, nestra::OuterLink::kAny,
      nestra::InnerLink::kExists, nestra::Query3Variant::kVariantA);
  RegisterRewriteSeries("Query3c(a)", catalog,
                        nestra::Query3Variant::kVariantA);
  nestra::bench::RegisterQuerySeries(
      "Query3c(b)", catalog, /*is_query3=*/true, nestra::OuterLink::kAny,
      nestra::InnerLink::kExists, nestra::Query3Variant::kVariantB);
  RegisterRewriteSeries("Query3c(b)", catalog,
                        nestra::Query3Variant::kVariantB);
  nestra::bench::RegisterQuerySeries(
      "Query3c(c)", catalog, /*is_query3=*/true, nestra::OuterLink::kAny,
      nestra::InnerLink::kExists, nestra::Query3Variant::kVariantC);
  RegisterRewriteSeries("Query3c(c)", catalog,
                        nestra::Query3Variant::kVariantC);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
