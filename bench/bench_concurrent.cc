// Concurrent-session benchmark: N client threads, each with its own Session
// from one ConnectionManager, hammering the shared Catalog/ThreadPool under
// admission control.
//
// Two workloads per (clients, max_in_flight) point:
//  * mixed    — ad-hoc TPC-H statements (Query 1/2a + a flat scan), the
//               parse+bind+verify path every time;
//  * prepared — each client PREPAREs one parameterized nested query in
//               setup, then only EXECUTEs it. The phase counters
//               (statements_parsed_total vs prepared_executions_total) are
//               recorded per entry: re-execution must leave parse/bind/
//               verify flat — the observable proof EXECUTE skips them.
//
// Unlike the single-query figure benches this reports throughput (qps) and
// LATENCY PERCENTILES (p50/p99 across every statement on every client) —
// min-of-N hides exactly the queueing effects admission control exists to
// shape. Every entry also carries a result-identity flag: each statement's
// result hash must equal a serial single-session run of the same script.
//
// Results land in the NESTRA_CONCURRENT_JSON sink (BENCH_8.json, schema
// "nestra-concurrent-v1").

#include "bench_common.h"

#include "server/connection_manager.h"
#include "server/harness.h"
#include "server/session.h"
#include "telemetry/engine_metrics.h"

namespace nestra {
namespace bench {
namespace {

class ConcurrentJsonRecorder {
 public:
  static ConcurrentJsonRecorder& Get() {
    static ConcurrentJsonRecorder* recorder = [] {
      auto* r = new ConcurrentJsonRecorder();
      std::atexit(&ConcurrentJsonRecorder::WriteAtExit);
      return r;
    }();
    return *recorder;
  }

  struct Entry {
    std::string name;
    int clients;
    int max_in_flight;
    bool prepared;
    int64_t queries;
    double qps;
    double p50_ms;
    double p99_ms;
    bool identical;
    // Phase-counter deltas over the run (prepared workloads: parsed stays
    // at one-per-client setup PREPARE while executions grow).
    int64_t statements_parsed;
    int64_t prepared_executions;
  };

  void Record(const Entry& entry) {
    std::lock_guard<std::mutex> lock(mu_);
    for (Entry& e : entries_) {
      if (e.name != entry.name) continue;
      // Calibration re-runs fold into one entry: keep the higher-load
      // numbers, AND the identity flags.
      e.qps = std::max(e.qps, entry.qps);
      e.p50_ms = std::min(e.p50_ms, entry.p50_ms);
      e.p99_ms = std::min(e.p99_ms, entry.p99_ms);
      e.identical = e.identical && entry.identical;
      return;
    }
    entries_.push_back(entry);
  }

 private:
  static void WriteAtExit() {
    const char* path = std::getenv("NESTRA_CONCURRENT_JSON");
    if (path == nullptr || path[0] == '\0') return;
    ConcurrentJsonRecorder& self = Get();
    std::lock_guard<std::mutex> lock(self.mu_);
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"schema\": \"nestra-concurrent-v1\",\n");
    std::fprintf(f, "  \"meta\": %s,\n", BuildMetaJson().c_str());
    std::fprintf(f, "  \"entries\": [");
    for (size_t i = 0; i < self.entries_.size(); ++i) {
      const Entry& e = self.entries_[i];
      std::fprintf(
          f,
          "%s\n    {\"name\": \"%s\", \"clients\": %d, "
          "\"max_in_flight\": %d, \"prepared\": %s, \"queries\": %lld, "
          "\"qps\": %.2f, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
          "\"identical\": %s, \"statements_parsed\": %lld, "
          "\"prepared_executions\": %lld}",
          i == 0 ? "" : ",", e.name.c_str(), e.clients, e.max_in_flight,
          e.prepared ? "true" : "false",
          static_cast<long long>(e.queries), e.qps, e.p50_ms, e.p99_ms,
          e.identical ? "true" : "false",
          static_cast<long long>(e.statements_parsed),
          static_cast<long long>(e.prepared_executions));
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

  std::mutex mu_;
  std::vector<Entry> entries_;
};

// Smaller than SharedCatalog: the point is many statements in flight, not
// single-statement weight. Own (mutable) instance because ConnectionManager
// takes Catalog*.
Catalog* BenchCatalog() {
  static Catalog* catalog = [] {
    telemetry::SetMetricsEnabled(true);
    auto* c = new Catalog();
    TpchConfig config;
    config.num_orders = 6000;
    config.num_parts = 2400;
    config.num_suppliers = 120;
    config.declare_not_null = true;
    const Status st = PopulateTpch(c, config);
    if (!st.ok()) {
      std::fprintf(stderr, "TPC-H generation failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
    return c;
  }();
  return catalog;
}

struct Workload {
  std::string key;
  bool prepared;
  std::vector<std::string> statements;
  std::function<Status(Session&)> setup;  // nullable
};

Workload MixedWorkload() {
  Workload w;
  w.key = "mixed";
  w.prepared = false;
  const auto [lo, hi] = OrderDateWindow(*BenchCatalog(), 500);
  w.statements = {
      MakeQuery1(lo, hi),
      MakeQuery2(10, 30, 5000, 25, OuterLink::kAny, InnerLink::kNotExists),
      "select o_orderkey from orders where o_totalprice > 450000.0",
  };
  return w;
}

Workload PreparedWorkload() {
  Workload w;
  w.key = "prepared";
  w.prepared = true;
  const std::string parameterized =
      "select o_orderkey, o_orderpriority from orders "
      "where o_totalprice > $1 and o_totalprice > all ("
      "  select l_extendedprice from lineitem "
      "  where l_orderkey = o_orderkey and l_commitdate < l_receiptdate)";
  w.setup = [parameterized](Session& session) {
    return session.Prepare("q", parameterized);
  };
  for (const char* arg : {"150000.0", "300000.0", "450000.0"}) {
    w.statements.push_back("EXECUTE q (" + std::string(arg) + ")");
  }
  return w;
}

// Serial single-session truth for one workload (hash per statement index),
// computed once and shared by every concurrency configuration.
const std::vector<uint64_t>& SerialHashes(const Workload& workload) {
  static std::map<std::string, std::vector<uint64_t>>* cache =
      new std::map<std::string, std::vector<uint64_t>>();
  auto it = cache->find(workload.key);
  if (it != cache->end()) return it->second;
  ConnectionManager manager(BenchCatalog());
  std::unique_ptr<Session> session = manager.Connect();
  if (workload.setup) {
    const Status st = workload.setup(*session);
    if (!st.ok()) {
      std::fprintf(stderr, "serial setup failed: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  std::vector<uint64_t> hashes;
  for (const std::string& sql : workload.statements) {
    Result<Table> result = session->Query(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "serial run failed: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
    hashes.push_back(HashTable(*result));
  }
  return (*cache)[workload.key] = std::move(hashes);
}

int64_t DetCounter(const char* name) {
  const std::map<std::string, double> values =
      telemetry::MetricsRegistry::Global().DeterministicValues();
  const auto it = values.find(name);
  return it == values.end() ? 0 : static_cast<int64_t>(it->second);
}

void RunConcurrent(benchmark::State& state, const Workload& workload,
                   int clients, int max_in_flight, int repeat,
                   const std::string& bench_name) {
  const std::vector<uint64_t>& serial = SerialHashes(workload);
  for (auto _ : state) {
    ServerOptions options;
    options.max_in_flight = max_in_flight;
    ConnectionManager manager(BenchCatalog(), options);
    std::vector<ClientScript> scripts(static_cast<size_t>(clients));
    for (ClientScript& c : scripts) {
      c.statements = workload.statements;
      c.repeat = repeat;
      c.setup = workload.setup;
    }
    const int64_t parsed_before =
        DetCounter("nestra_statements_parsed_total");
    const int64_t execs_before =
        DetCounter("nestra_prepared_executions_total");
    const HarnessResult result = RunConcurrentClients(manager, scripts);
    const int64_t parsed = DetCounter("nestra_statements_parsed_total") -
                           parsed_before;
    const int64_t prepared_execs =
        DetCounter("nestra_prepared_executions_total") - execs_before;

    bool identical = result.errors == 0;
    for (const std::vector<HarnessResult::Outcome>& outcomes :
         result.per_client) {
      for (size_t i = 0; i < outcomes.size(); ++i) {
        identical = identical && outcomes[i].ok &&
                    outcomes[i].hash == serial[i % serial.size()];
      }
    }
    if (!identical) {
      state.SkipWithError("concurrent result diverged from serial run");
      return;
    }
    state.counters["qps"] = result.qps;
    state.counters["p50_ms"] = result.p50_ms;
    state.counters["p99_ms"] = result.p99_ms;
    state.counters["peak_in_flight"] =
        static_cast<double>(manager.admission().peak_in_flight());
    ConcurrentJsonRecorder::Get().Record(
        {bench_name, clients, max_in_flight, workload.prepared,
         result.total_statements, result.qps, result.p50_ms, result.p99_ms,
         identical, parsed, prepared_execs});
  }
}

void RegisterAll() {
  static const Workload mixed = MixedWorkload();
  static const Workload prepared = PreparedWorkload();
  for (const Workload* workload : {&mixed, &prepared}) {
    for (const int clients : {1, 4, 8, 16}) {
      for (const int max_in_flight : {0, 8}) {
        // Unlimited vs capped only differ once clients exceed the cap.
        if (max_in_flight > 0 && clients <= max_in_flight) continue;
        const std::string name =
            "Concurrent/" + workload->key +
            "/clients=" + std::to_string(clients) +
            "/max_in_flight=" + std::to_string(max_in_flight);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [workload, clients, max_in_flight, name](benchmark::State& state) {
              RunConcurrent(state, *workload, clients, max_in_flight,
                            /*repeat=*/4, name);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1)
            ->MeasureProcessCPUTime()
            ->UseRealTime();
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace nestra

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  nestra::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
