// A/B benchmark for the proven-2VL fast path (DESIGN.md §10): the same
// query under two_valued=false (three-valued tribool evaluation, nest +
// pseudo-selection for negative links) versus the default two_valued=true
// (NULL-check-free vectorized kernels, plain antijoin for proven negative
// links). The catalog declares NOT NULL columns, so the static proofs hold.
//
// Series (each timed strictly interleaved, min-of-N, like the row-vs-
// vectorized comparison machinery):
//  * ScanFilter/*  — single-table vectorized scan+filter over lineitem;
//                    the 2VL compile drops the per-value NULL loads.
//  * NotInAntijoin — uncorrelated NOT IN on proven non-NULL key columns;
//                    3VL routes through nest + pseudo-selection, 2VL runs
//                    one hash antijoin.
//  * AllAntijoin   — Query 1's correlated `> ALL`, the paper's Section 5.2
//                    footnote case: with the constraint declared the link
//                    collapses to an antijoin.
//
// Results land in the NESTRA_TWO_VALUED_JSON sink (BENCH_6.json, schema
// "nestra-two-valued-compare-v1") with per-entry speedup and a result
// identity flag (bag identity: the two routes may emit rows in different
// orders, which SQL leaves unspecified without ORDER BY).

#include "bench_common.h"

namespace nestra {
namespace bench {
namespace {

class TwoValuedJsonRecorder {
 public:
  static TwoValuedJsonRecorder& Get() {
    static TwoValuedJsonRecorder* recorder = [] {
      auto* r = new TwoValuedJsonRecorder();
      std::atexit(&TwoValuedJsonRecorder::WriteAtExit);
      return r;
    }();
    return *recorder;
  }

  void Record(const std::string& name, double three_valued_min_ms,
              double two_valued_min_ms, bool identical) {
    std::lock_guard<std::mutex> lock(mu_);
    // The benchmark runner re-invokes each function while calibrating the
    // iteration count; fold repeat runs into one entry per series.
    for (Entry& e : entries_) {
      if (e.name != name) continue;
      e.three_valued_min_ms = std::min(e.three_valued_min_ms, three_valued_min_ms);
      e.two_valued_min_ms = std::min(e.two_valued_min_ms, two_valued_min_ms);
      e.identical = e.identical && identical;
      return;
    }
    entries_.push_back(
        {name, three_valued_min_ms, two_valued_min_ms, identical});
  }

 private:
  struct Entry {
    std::string name;
    double three_valued_min_ms;
    double two_valued_min_ms;
    bool identical;
  };

  static void WriteAtExit() {
    const char* path = std::getenv("NESTRA_TWO_VALUED_JSON");
    if (path == nullptr || path[0] == '\0') return;
    TwoValuedJsonRecorder& self = Get();
    std::lock_guard<std::mutex> lock(self.mu_);
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"schema\": \"nestra-two-valued-compare-v1\",\n");
    std::fprintf(f, "  \"meta\": %s,\n", BuildMetaJson().c_str());
    std::fprintf(f, "  \"entries\": [");
    for (size_t i = 0; i < self.entries_.size(); ++i) {
      const Entry& e = self.entries_[i];
      const double speedup = e.two_valued_min_ms > 0
                                 ? e.three_valued_min_ms / e.two_valued_min_ms
                                 : 0.0;
      std::fprintf(f,
                   "%s\n    {\"name\": \"%s\", "
                   "\"three_valued_min_ms\": %.6f, "
                   "\"two_valued_min_ms\": %.6f, \"speedup\": %.4f, "
                   "\"identical\": %s}",
                   i == 0 ? "" : ",", e.name.c_str(), e.three_valued_min_ms,
                   e.two_valued_min_ms, speedup,
                   e.identical ? "true" : "false");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

  std::mutex mu_;
  std::vector<Entry> entries_;
};

// Times `sql` with two_valued off and on, strictly interleaved so thermal /
// noisy-neighbour drift cancels out of the ratio, and records both the
// benchmark counters and the BENCH_6.json entry.
void RunTwoValuedCompare(benchmark::State& state, const Catalog& catalog,
                         const std::string& sql, const NraOptions& base,
                         const std::string& bench_name) {
  NraOptions slow = base;
  slow.two_valued = false;
  NraOptions fast = base;
  fast.two_valued = true;
  NraExecutor slow_exec(catalog, slow);
  NraExecutor fast_exec(catalog, fast);
  IoSim* sim = IoSim::Get();

  double slow_min = 0;
  double fast_min = 0;
  bool identical = true;
  int iters = 0;
  for (auto _ : state) {
    if (sim != nullptr) sim->Reset();
    auto t0 = std::chrono::steady_clock::now();
    Result<Table> slow_result = slow_exec.ExecuteSql(sql);
    const double slow_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    if (sim != nullptr) sim->Reset();
    t0 = std::chrono::steady_clock::now();
    Result<Table> fast_result = fast_exec.ExecuteSql(sql);
    const double fast_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    if (!slow_result.ok() || !fast_result.ok()) {
      state.SkipWithError("two-valued comparison run failed");
      return;
    }
    if (iters == 0) {
      identical = slow_result->schema().Equals(fast_result->schema()) &&
                  Table::BagEquals(*slow_result, *fast_result);
    }
    slow_min = iters == 0 ? slow_ms : std::min(slow_min, slow_ms);
    fast_min = iters == 0 ? fast_ms : std::min(fast_min, fast_ms);
    ++iters;
    benchmark::DoNotOptimize(fast_result->num_rows());
  }
  if (iters == 0) return;
  state.counters["three_valued_min_ms"] = slow_min;
  state.counters["two_valued_min_ms"] = fast_min;
  state.counters["two_valued_speedup"] = fast_min > 0 ? slow_min / fast_min : 0;
  state.counters["results_identical"] = identical ? 1 : 0;
  TwoValuedJsonRecorder::Get().Record(bench_name, slow_min, fast_min,
                                      identical);
}

void Register(const std::string& name, const Catalog& catalog,
              const std::string& sql, const NraOptions& base) {
  benchmark::RegisterBenchmark(
      name.c_str(), [&catalog, sql, base, name](benchmark::State& state) {
        RunTwoValuedCompare(state, catalog, sql, base, name);
      })
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.05);
}

void RegisterAll() {
  // NOT NULL declared on every TPC-H column the generator fills without
  // NULLs — the same catalog the NativeNotNull series uses.
  const Catalog& catalog = SharedCatalog(/*declare_not_null=*/true);

  // Vectorized single-table scan+filter: the kernels are identical except
  // for the per-value NULL loads the 2VL compile proves away.
  NraOptions vec = NraOptions::Optimized();
  vec.vectorized = true;
  vec.num_threads = 1;
  Register("TwoValued/ScanFilter/2-term", catalog,
           "select l_orderkey from lineitem "
           "where l_quantity > 25 and l_extendedprice > 1000",
           vec);
  Register("TwoValued/ScanFilter/3-term", catalog,
           "select l_orderkey from lineitem "
           "where l_quantity > 10 and l_quantity < 40 "
           "and l_partkey <> l_suppkey",
           vec);

  // Negative links on proven non-NULL operands: 3VL nest + pseudo-selection
  // versus one antijoin.
  NraOptions row = NraOptions::Optimized();
  row.num_threads = 1;
  Register("TwoValued/NotInAntijoin", catalog,
           "select o_orderkey from orders where o_orderkey not in "
           "(select l_orderkey from lineitem where l_quantity > 45)",
           row);
  const auto [lo, hi] = OrderDateWindow(catalog, 1200);
  Register("TwoValued/AllAntijoin", catalog, MakeQuery1(lo, hi), row);
}

}  // namespace
}  // namespace bench
}  // namespace nestra

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  nestra::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
