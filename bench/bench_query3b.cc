// Figure 8: Query 3b — the general two-level query with the NEGATIVE
// operators `< ALL` + `NOT EXISTS`, three correlated-predicate variants.
//
// The native approach performs nested iteration across all three blocks —
// the paper's worst case for System A — while the NR approach's cost stays
// at the Figure 7 level.

#include "bench_common.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const nestra::Catalog& catalog =
      nestra::bench::SharedCatalog(/*declare_not_null=*/true);
  nestra::bench::RegisterQuerySeries(
      "Query3b(a)", catalog, /*is_query3=*/true, nestra::OuterLink::kAll,
      nestra::InnerLink::kNotExists, nestra::Query3Variant::kVariantA);
  nestra::bench::RegisterQuerySeries(
      "Query3b(b)", catalog, /*is_query3=*/true, nestra::OuterLink::kAll,
      nestra::InnerLink::kNotExists, nestra::Query3Variant::kVariantB);
  nestra::bench::RegisterQuerySeries(
      "Query3b(c)", catalog, /*is_query3=*/true, nestra::OuterLink::kAll,
      nestra::InnerLink::kNotExists, nestra::Query3Variant::kVariantC);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
