// Figure 4 of the paper: Query 1 — a one-level ALL subquery over
// orders/lineitem, sweeping the outer block over 400..1600 rows (the
// paper's 4K..16K at 1/10 scale) against a fixed inner block.
//
// Series:
//  * Native             — System A without the NOT NULL constraint: nested
//                         iteration with index access per outer tuple;
//  * NativeNotNull      — System A WITH the constraint: direct antijoin
//                         (the Section 5.2 footnote: "the performance is
//                         about the same as ours");
//  * NraOriginal        — the nested relational approach, nest and linking
//                         selection as separate passes;
//  * NraOptimized       — one sort + one fused pass (§4.2.1–4.2.2).
//
// Expected shape: both NRA variants and the antijoin beat nested iteration;
// all curves grow linearly with the outer block.

#include "bench_common.h"

namespace nestra {
namespace bench {
namespace {

constexpr int64_t kOuterSizes[] = {400, 800, 1200, 1600};

std::string Query1At(const Catalog& catalog, int64_t outer_rows) {
  const auto [lo, hi] = OrderDateWindow(catalog, outer_rows);
  return MakeQuery1(lo, hi);
}

void RegisterAll() {
  const Catalog& plain = SharedCatalog(/*declare_not_null=*/false);
  const Catalog& with_nn = SharedCatalog(/*declare_not_null=*/true);
  RunOracleCheck(plain, Query1At(plain, kOuterSizes[0]), "query1");

  for (const int64_t outer : kOuterSizes) {
    const std::string label = std::to_string(outer);
    const std::string native_name = "Query1/Native/outer=" + label;
    benchmark::RegisterBenchmark(
        native_name.c_str(),
        [&plain, outer, native_name](benchmark::State& state) {
          RunNative(state, plain, Query1At(plain, outer), /*use_indexes=*/true,
                    native_name);
        })
        ->Unit(benchmark::kMillisecond)->MinTime(0.05);
    const std::string nn_name = "Query1/NativeNotNull/outer=" + label;
    benchmark::RegisterBenchmark(
        nn_name.c_str(),
        [&with_nn, outer, nn_name](benchmark::State& state) {
          RunNative(state, with_nn, Query1At(with_nn, outer),
                    /*use_indexes=*/true, nn_name);
        })
        ->Unit(benchmark::kMillisecond)->MinTime(0.05);
    const std::string original_name = "Query1/NraOriginal/outer=" + label;
    benchmark::RegisterBenchmark(
        original_name.c_str(),
        [&plain, outer, original_name](benchmark::State& state) {
          RunNra(state, plain, Query1At(plain, outer), NraOptions::Original(),
                 original_name);
        })
        ->Unit(benchmark::kMillisecond)->MinTime(0.05);
    for (const auto& [tname, tval] : ThreadSweep()) {
      NraOptions opts = NraOptions::Optimized();
      opts.num_threads = tval;
      const std::string name =
          "Query1/NraOptimized/outer=" + label + "/threads=" + tname;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&plain, outer, opts, name](benchmark::State& state) {
            RunNra(state, plain, Query1At(plain, outer), opts, name);
          })
          ->Unit(benchmark::kMillisecond)->MinTime(0.05);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace nestra

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  nestra::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
