// Ablation for §4.2.3–4.2.5: each algebraic rewrite against the plain
// optimized pipeline on the query shape it targets.
//
//  * PushDownNest (§4.2.4) — Query 1 (equi-correlated leaf): grouping the
//    inner relation below the join avoids the wide intermediate result.
//  * BottomUpLinear (§4.2.3) — Query 2b (linear correlated): only qualified
//    tuples participate in further outer joins.
//  * PositiveRewrite (§4.2.5) — Query 2a variant with IN: the linking
//    selection collapses into a semijoin.

#include "bench_common.h"

namespace nestra {
namespace bench {
namespace {

void RegisterPair(const char* name, const Catalog& catalog,
                  const std::string& sql, const NraOptions& off,
                  const NraOptions& on) {
  const std::string off_name = std::string(name) + "/off";
  benchmark::RegisterBenchmark(
      off_name.c_str(),
      [&catalog, sql, off, off_name](benchmark::State& state) {
        RunNra(state, catalog, sql, off, off_name);
      })
      ->Unit(benchmark::kMillisecond)->MinTime(0.05);
  const std::string on_name = std::string(name) + "/on";
  benchmark::RegisterBenchmark(
      on_name.c_str(),
      [&catalog, sql, on, on_name](benchmark::State& state) {
        RunNra(state, catalog, sql, on, on_name);
      })
      ->Unit(benchmark::kMillisecond)->MinTime(0.05);
}

void Register() {
  const Catalog& catalog = SharedCatalog();

  {
    const auto [lo, hi] = OrderDateWindow(catalog, 1600);
    NraOptions on = NraOptions::Optimized();
    on.push_down_nest = true;
    RegisterPair("AblationRewrites/PushDownNest/Query1", catalog,
                 MakeQuery1(lo, hi), NraOptions::Optimized(), on);
  }
  {
    NraOptions on = NraOptions::Optimized();
    on.bottom_up_linear = true;
    RegisterPair("AblationRewrites/BottomUpLinear/Query2b", catalog,
                 MakeQuery2(1, 40, kAvailQtyMax, kQuantity, OuterLink::kAll,
                            InnerLink::kNotExists),
                 NraOptions::Optimized(), on);
  }
  {
    // Magic restriction pays off when the outer block is selective: a
    // narrow date window against the full lineitem table.
    const auto [lo, hi] = OrderDateWindow(catalog, 400);
    NraOptions on = NraOptions::Optimized();
    on.magic_restriction = true;
    RegisterPair("AblationRewrites/MagicRestriction/Query1", catalog,
                 MakeQuery1(lo, hi), NraOptions::Optimized(), on);
  }
  {
    // A positive one-level query: p_retailprice < ANY over partsupp.
    const std::string sql =
        "select p_partkey, p_name from part where p_size <= 40 and "
        "p_retailprice < any (select ps_supplycost from partsupp "
        "where ps_partkey = p_partkey and ps_availqty < 667)";
    RunOracleCheck(catalog, sql, "positive-rewrite");
    NraOptions on = NraOptions::Optimized();
    on.rewrite_positive = true;
    RegisterPair("AblationRewrites/PositiveRewrite/AnyQuery", catalog, sql,
                 NraOptions::Optimized(), on);
  }
}

}  // namespace
}  // namespace bench
}  // namespace nestra

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  nestra::bench::Register();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
