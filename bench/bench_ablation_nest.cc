// Ablation for §4.2.1–4.2.2 and §5.1: the cost of the bottom-up phase
// (nest + linking selection) under the four implementation choices —
//  * Original/SortNest : materialized sort-based nest, separate selection
//  * Original/HashNest : materialized hash-based nest, separate selection
//  * Fused             : one sort + one streaming pass (the "optimized"
//                        variant; §4.2.2 pipelining over §4.2.1's single
//                        sort)
// measured on Query 1 (one level) and on the two-level linear Query 2b
// where the single-sort optimization folds BOTH nests into one ordering.
//
// The paper reports the processing time of nest+selection to be ~7-8x
// smaller for the optimized variant (.24/.47/.71/.98 s vs .03/.06/.10/.13 s
// on Query 1); the nest_select_ms counter reproduces that comparison.

#include "bench_common.h"

namespace nestra {
namespace bench {
namespace {

void Register() {
  const Catalog& catalog = SharedCatalog();

  struct Config {
    std::string name;
    NraOptions options;
  };
  std::vector<Config> configs;
  {
    NraOptions o = NraOptions::Original();
    o.nest_method = NestMethod::kSort;
    configs.push_back({"Original-SortNest", o});
  }
  {
    NraOptions o = NraOptions::Original();
    o.nest_method = NestMethod::kHash;
    configs.push_back({"Original-HashNest", o});
  }
  // The fused configuration sweeps the parallelism degree: its single sort
  // is where the morsel-parallel merge sort pays off.
  for (const auto& [tname, tval] : ThreadSweep()) {
    NraOptions o = NraOptions::Optimized();
    o.num_threads = tval;
    configs.push_back({std::string("Fused/threads=") + tname, o});
  }

  for (const int64_t outer : {400L, 800L, 1200L, 1600L}) {
    const auto [lo, hi] = OrderDateWindow(catalog, outer);
    const std::string sql = MakeQuery1(lo, hi);
    for (const Config& c : configs) {
      const std::string name =
          "AblationNest/Query1/" + c.name + "/outer=" + std::to_string(outer);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&catalog, sql, c, name](benchmark::State& state) {
            RunNra(state, catalog, sql, c.options, name);
          })
          ->Unit(benchmark::kMillisecond)->MinTime(0.05);
    }
  }

  for (const int64_t size_hi : {10L, 40L}) {
    const std::string sql =
        MakeQuery2(1, size_hi, kAvailQtyMax, kQuantity, OuterLink::kAll,
                   InnerLink::kNotExists);
    for (const Config& c : configs) {
      const std::string name = "AblationNest/Query2b/" + c.name +
                               "/parts=" + std::to_string(size_hi * 120);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&catalog, sql, c, name](benchmark::State& state) {
            RunNra(state, catalog, sql, c.options, name);
          })
          ->Unit(benchmark::kMillisecond)->MinTime(0.05);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace nestra

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  nestra::bench::Register();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
