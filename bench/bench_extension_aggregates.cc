// Extension benchmark (beyond the paper's figures): scalar AGGREGATE
// subqueries — Kim's classical type-JA query — evaluated by the same
// nest+linking-selection machinery, versus native nested iteration.
//
//   select o_orderkey, o_orderpriority from orders
//   where o_orderdate in [window] and o_totalprice > (
//     select max(l_extendedprice) from lineitem
//     where l_orderkey = o_orderkey)
//
// The shape mirrors Figure 4: the native plan re-aggregates the subquery
// per outer tuple (random index reads), the NRA plan computes every group's
// aggregate in one fused pass over one sort.

#include <sstream>

#include "bench_common.h"

namespace nestra {
namespace bench {
namespace {

std::string AggQuery(const Catalog& catalog, int64_t outer_rows,
                     const char* agg) {
  const auto [lo, hi] = OrderDateWindow(catalog, outer_rows);
  std::ostringstream q;
  q << "select o_orderkey, o_orderpriority from orders "
    << "where o_orderdate >= '" << lo << "' and o_orderdate < '" << hi
    << "' and o_totalprice > (select " << agg
    << "(l_extendedprice) from lineitem where l_orderkey = o_orderkey)";
  return q.str();
}

void RegisterAll() {
  const Catalog& catalog = SharedCatalog();
  RunOracleCheck(catalog, AggQuery(catalog, 400, "max"), "agg-extension");

  for (const int64_t outer : {400L, 800L, 1200L, 1600L}) {
    for (const char* agg : {"max", "avg"}) {
      const std::string suffix =
          std::string(agg) + "/outer=" + std::to_string(outer);
      const std::string native_name = "ExtensionAgg/Native/" + suffix;
      benchmark::RegisterBenchmark(
          native_name.c_str(),
          [&catalog, outer, agg, native_name](benchmark::State& state) {
            RunNative(state, catalog, AggQuery(catalog, outer, agg),
                      /*use_indexes=*/true, native_name);
          })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.05);
      const std::string nra_name = "ExtensionAgg/NraOptimized/" + suffix;
      benchmark::RegisterBenchmark(
          nra_name.c_str(),
          [&catalog, outer, agg, nra_name](benchmark::State& state) {
            RunNra(state, catalog, AggQuery(catalog, outer, agg),
                   NraOptions::Optimized(), nra_name);
          })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.05);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace nestra

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  nestra::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
