// A/B benchmark for the pipelined stage-DAG scheduler (DESIGN.md §11): the
// same query with `pipelined=false` (staged execution: one stage at a time,
// intra-stage morsel parallelism only) versus the default `pipelined=true`
// (stages become DAG tasks; independent pipelines — every block's base
// evaluation, sibling subtrees — overlap on the shared pool).
//
// Every series is a multi-block query whose plan has at least two
// independent base pipelines, timed strictly interleaved min-of-N at 1, 2,
// and 8 threads. At 1 thread the DAG degrades to the staged schedule, so
// that series doubles as an overhead regression check.
//
// Results land in the NESTRA_PIPELINE_JSON sink (BENCH_7.json, schema
// "nestra-pipeline-compare-v1") with per-entry speedup and a result
// identity flag. Identity here is ROW-EXACT — order included — because the
// pipelined engine's contract is bit-identity to the staged run, not mere
// bag equality.

#include "bench_common.h"

namespace nestra {
namespace bench {
namespace {

class PipelineJsonRecorder {
 public:
  static PipelineJsonRecorder& Get() {
    static PipelineJsonRecorder* recorder = [] {
      auto* r = new PipelineJsonRecorder();
      std::atexit(&PipelineJsonRecorder::WriteAtExit);
      return r;
    }();
    return *recorder;
  }

  void Record(const std::string& name, double staged_min_ms,
              double pipelined_min_ms, bool identical) {
    std::lock_guard<std::mutex> lock(mu_);
    // The benchmark runner re-invokes each function while calibrating the
    // iteration count; fold repeat runs into one entry per series.
    for (Entry& e : entries_) {
      if (e.name != name) continue;
      e.staged_min_ms = std::min(e.staged_min_ms, staged_min_ms);
      e.pipelined_min_ms = std::min(e.pipelined_min_ms, pipelined_min_ms);
      e.identical = e.identical && identical;
      return;
    }
    entries_.push_back({name, staged_min_ms, pipelined_min_ms, identical});
  }

 private:
  struct Entry {
    std::string name;
    double staged_min_ms;
    double pipelined_min_ms;
    bool identical;
  };

  static void WriteAtExit() {
    const char* path = std::getenv("NESTRA_PIPELINE_JSON");
    if (path == nullptr || path[0] == '\0') return;
    PipelineJsonRecorder& self = Get();
    std::lock_guard<std::mutex> lock(self.mu_);
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"schema\": \"nestra-pipeline-compare-v1\",\n");
    std::fprintf(f, "  \"meta\": %s,\n", BuildMetaJson().c_str());
    std::fprintf(f, "  \"entries\": [");
    for (size_t i = 0; i < self.entries_.size(); ++i) {
      const Entry& e = self.entries_[i];
      const double speedup = e.pipelined_min_ms > 0
                                 ? e.staged_min_ms / e.pipelined_min_ms
                                 : 0.0;
      std::fprintf(f,
                   "%s\n    {\"name\": \"%s\", "
                   "\"staged_min_ms\": %.6f, "
                   "\"pipelined_min_ms\": %.6f, \"speedup\": %.4f, "
                   "\"identical\": %s}",
                   i == 0 ? "" : ",", e.name.c_str(), e.staged_min_ms,
                   e.pipelined_min_ms, speedup,
                   e.identical ? "true" : "false");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

  std::mutex mu_;
  std::vector<Entry> entries_;
};

// The pipelined engine must be indistinguishable from the staged one down
// to row order and value representation.
bool RowExact(const Table& a, const Table& b) {
  if (!a.schema().Equals(b.schema()) || a.num_rows() != b.num_rows()) {
    return false;
  }
  for (int64_t i = 0; i < a.num_rows(); ++i) {
    if (!(a.rows()[static_cast<size_t>(i)] ==
          b.rows()[static_cast<size_t>(i)])) {
      return false;
    }
  }
  return true;
}

// Times `sql` staged and pipelined, strictly interleaved so thermal /
// noisy-neighbour drift cancels out of the ratio, and records both the
// benchmark counters and the BENCH_7.json entry.
void RunPipelineCompare(benchmark::State& state, const Catalog& catalog,
                        const std::string& sql, const NraOptions& base,
                        const std::string& bench_name) {
  NraOptions staged = base;
  staged.pipelined = false;
  NraOptions pipelined = base;
  pipelined.pipelined = true;
  NraExecutor staged_exec(catalog, staged);
  NraExecutor pipelined_exec(catalog, pipelined);
  IoSim* sim = IoSim::Get();

  double staged_min = 0;
  double pipelined_min = 0;
  bool identical = true;
  int iters = 0;
  for (auto _ : state) {
    if (sim != nullptr) sim->Reset();
    auto t0 = std::chrono::steady_clock::now();
    Result<Table> staged_result = staged_exec.ExecuteSql(sql);
    const double staged_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
    if (sim != nullptr) sim->Reset();
    t0 = std::chrono::steady_clock::now();
    Result<Table> pipelined_result = pipelined_exec.ExecuteSql(sql);
    const double pipelined_ms = std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() - t0)
                                    .count();
    if (!staged_result.ok() || !pipelined_result.ok()) {
      state.SkipWithError("pipeline comparison run failed");
      return;
    }
    if (iters == 0) {
      identical = RowExact(*staged_result, *pipelined_result);
    }
    staged_min = iters == 0 ? staged_ms : std::min(staged_min, staged_ms);
    pipelined_min =
        iters == 0 ? pipelined_ms : std::min(pipelined_min, pipelined_ms);
    ++iters;
    benchmark::DoNotOptimize(pipelined_result->num_rows());
  }
  if (iters == 0) return;
  state.counters["staged_min_ms"] = staged_min;
  state.counters["pipelined_min_ms"] = pipelined_min;
  state.counters["pipeline_speedup"] =
      pipelined_min > 0 ? staged_min / pipelined_min : 0;
  state.counters["results_identical"] = identical ? 1 : 0;
  PipelineJsonRecorder::Get().Record(bench_name, staged_min, pipelined_min,
                                     identical);
}

void Register(const std::string& name, const Catalog& catalog,
              const std::string& sql, const NraOptions& base) {
  for (const int threads : {1, 2, 8}) {
    NraOptions opts = base;
    opts.num_threads = threads;
    const std::string full = name + "/threads=" + std::to_string(threads);
    benchmark::RegisterBenchmark(
        full.c_str(), [&catalog, sql, opts, full](benchmark::State& state) {
          RunPipelineCompare(state, catalog, sql, opts, full);
        })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
  }
}

void RegisterAll() {
  const Catalog& catalog = SharedCatalog(/*declare_not_null=*/true);
  const NraOptions base = NraOptions::Optimized();

  // Query 1 (`> ALL` over orders): two independent base pipelines — the
  // outer orders scan and the subquery's lineitem scan run concurrently.
  const auto [lo, hi] = OrderDateWindow(catalog, 1200);
  Register("Pipeline/Query1", catalog, MakeQuery1(lo, hi), base);

  // Query 2a (part -> partsupp -> lineitem chain): three block bases, all
  // independent of each other; the joins serialize but every scan+filter
  // overlaps.
  Register("Pipeline/Query2a", catalog,
           MakeQuery2(10, 40, 5000, 25, OuterLink::kAny,
                      InnerLink::kNotExists),
           base);

  // Query 3a: the tree-shaped plan — sibling subquery pipelines are fully
  // independent, the strongest overlap case.
  Register("Pipeline/Query3a", catalog,
           MakeQuery3(10, 40, 5000, 25, OuterLink::kAll, InnerLink::kExists,
                      Query3Variant::kVariantA),
           base);

  // Two sibling NOT IN subqueries over the same table (distinct aliases —
  // the binder requires repeated tables to be aliased explicitly): both
  // inner pipelines and the outer base are mutually independent.
  Register("Pipeline/TwoSiblings", catalog,
           "select o_orderkey from orders "
           "where o_orderkey not in (select l1.l_orderkey from lineitem l1 "
           "where l1.l_quantity > 45) "
           "and o_orderkey not in (select l2.l_orderkey from lineitem l2 "
           "where l2.l_extendedprice > 9000)",
           base);
}

}  // namespace
}  // namespace bench
}  // namespace nestra

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  nestra::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
