#ifndef NESTRA_BENCH_BENCH_COMMON_H_
#define NESTRA_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baseline/native_optimizer.h"
#include "baseline/nested_iteration.h"
#include "common/date.h"
#include "common/thread_pool.h"
#include "nra/executor.h"
#include "nra/profile.h"
#include "plan/binder.h"
#include "storage/catalog.h"
#include "storage/io_sim.h"
#include "telemetry/metrics.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

// Build provenance comes in as compile definitions from bench/CMakeLists.txt;
// defaults keep the header compilable from other targets.
#ifndef NESTRA_GIT_SHA
#define NESTRA_GIT_SHA "unknown"
#endif
#ifndef NESTRA_BUILD_TYPE
#define NESTRA_BUILD_TYPE "unknown"
#endif
#ifndef NESTRA_COMPILER
#define NESTRA_COMPILER "unknown"
#endif

namespace nestra {
namespace bench {

/// The "meta" object stamped into every bench JSON artifact: which build
/// produced the numbers and on how many hardware threads. Schema documented
/// in bench/README.md.
inline std::string BuildMetaJson() {
  std::ostringstream oss;
  oss << "{\"git_sha\": \"" << NESTRA_GIT_SHA << "\", \"build_type\": \""
      << NESTRA_BUILD_TYPE << "\", \"compiler\": \"" << NESTRA_COMPILER
      << "\", \"hardware_threads\": " << std::thread::hardware_concurrency()
      << "}";
  return oss.str();
}

// ---------- BENCH_2.json trajectory recorder ----------

/// Collects one entry per executed benchmark and, when the environment
/// variable `NESTRA_BENCH_JSON` names a file, writes them there as JSON at
/// process exit (schema "nestra-bench-trajectory-v1"). CI merges the
/// per-binary files into the BENCH_2.json artifact.
class BenchJsonRecorder {
 public:
  static BenchJsonRecorder& Get() {
    static BenchJsonRecorder* recorder = [] {
      auto* r = new BenchJsonRecorder();
      std::atexit(&BenchJsonRecorder::WriteAtExit);
      return r;
    }();
    return *recorder;
  }

  void Record(const std::string& name, double wall_ms,
              std::vector<std::pair<std::string, double>> counters) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back({name, wall_ms, std::move(counters)});
  }

 private:
  struct Entry {
    std::string name;
    double wall_ms;
    std::vector<std::pair<std::string, double>> counters;
  };

  static void WriteAtExit() {
    const char* path = std::getenv("NESTRA_BENCH_JSON");
    if (path == nullptr || path[0] == '\0') return;
    BenchJsonRecorder& self = Get();
    std::lock_guard<std::mutex> lock(self.mu_);
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"schema\": \"nestra-bench-trajectory-v1\",\n");
    std::fprintf(f, "  \"meta\": %s,\n", BuildMetaJson().c_str());
    std::fprintf(f, "  \"entries\": [");
    for (size_t i = 0; i < self.entries_.size(); ++i) {
      const Entry& e = self.entries_[i];
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"wall_ms\": %.6f",
                   i == 0 ? "" : ",", e.name.c_str(), e.wall_ms);
      for (const auto& [key, value] : e.counters) {
        std::fprintf(f, ", \"%s\": %.6f", key.c_str(), value);
      }
      std::fprintf(f, "}");
    }
    // The process metrics registry rides along: with metrics enabled for
    // the bench run (SharedCatalog turns them on) this shows cumulative
    // engine counters across every benchmark in the binary.
    std::fprintf(f, "\n  ],\n  \"metrics\": %s\n}\n",
                 telemetry::DumpMetricsJson().c_str());
    std::fclose(f);
  }

  std::mutex mu_;
  std::vector<Entry> entries_;
};

/// Collects one row-vs-vectorized A/B entry per recorded NRA benchmark and,
/// when `NESTRA_COMPARE_JSON` names a file, writes them there as JSON at
/// process exit (schema "nestra-bench-compare-v1"). CI merges the
/// per-binary files into the BENCH_3.json artifact.
class CompareJsonRecorder {
 public:
  static CompareJsonRecorder& Get() {
    static CompareJsonRecorder* recorder = [] {
      auto* r = new CompareJsonRecorder();
      std::atexit(&CompareJsonRecorder::WriteAtExit);
      return r;
    }();
    return *recorder;
  }

  void Record(const std::string& name, double row_min_ms,
              double vectorized_min_ms, bool identical) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back({name, row_min_ms, vectorized_min_ms, identical});
  }

 private:
  struct Entry {
    std::string name;
    double row_min_ms;
    double vectorized_min_ms;
    bool identical;
  };

  static void WriteAtExit() {
    const char* path = std::getenv("NESTRA_COMPARE_JSON");
    if (path == nullptr || path[0] == '\0') return;
    CompareJsonRecorder& self = Get();
    std::lock_guard<std::mutex> lock(self.mu_);
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"schema\": \"nestra-bench-compare-v1\",\n");
    std::fprintf(f, "  \"meta\": %s,\n", BuildMetaJson().c_str());
    std::fprintf(f, "  \"entries\": [");
    for (size_t i = 0; i < self.entries_.size(); ++i) {
      const Entry& e = self.entries_[i];
      const double speedup = e.vectorized_min_ms > 0
                                 ? e.row_min_ms / e.vectorized_min_ms
                                 : 0.0;
      std::fprintf(f,
                   "%s\n    {\"name\": \"%s\", \"row_min_ms\": %.6f, "
                   "\"vectorized_min_ms\": %.6f, \"speedup\": %.4f, "
                   "\"identical\": %s}",
                   i == 0 ? "" : ",", e.name.c_str(), e.row_min_ms,
                   e.vectorized_min_ms, speedup,
                   e.identical ? "true" : "false");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

  std::mutex mu_;
  std::vector<Entry> entries_;
};

/// Collects one QueryProfile JSON document per recorded NRA benchmark and,
/// when `NESTRA_PROFILE_JSON` names a file, writes them there at process
/// exit (schema "nestra-profile-trajectory-v1"). The profile is taken from
/// one dedicated profiled run per benchmark — the timed iterations run with
/// profiling off, so the recorded wall_ms is unaffected.
class ProfileJsonRecorder {
 public:
  static ProfileJsonRecorder& Get() {
    static ProfileJsonRecorder* recorder = [] {
      auto* r = new ProfileJsonRecorder();
      std::atexit(&ProfileJsonRecorder::WriteAtExit);
      return r;
    }();
    return *recorder;
  }

  static bool Enabled() {
    const char* path = std::getenv("NESTRA_PROFILE_JSON");
    return path != nullptr && path[0] != '\0';
  }

  void Record(const std::string& name, std::string profile_json) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back({name, std::move(profile_json)});
  }

 private:
  struct Entry {
    std::string name;
    std::string profile_json;  // already-valid JSON from QueryProfile::ToJson
  };

  static void WriteAtExit() {
    const char* path = std::getenv("NESTRA_PROFILE_JSON");
    if (path == nullptr || path[0] == '\0') return;
    ProfileJsonRecorder& self = Get();
    std::lock_guard<std::mutex> lock(self.mu_);
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"schema\": \"nestra-profile-trajectory-v1\",\n");
    std::fprintf(f, "  \"meta\": %s,\n", BuildMetaJson().c_str());
    std::fprintf(f, "  \"entries\": [");
    for (size_t i = 0; i < self.entries_.size(); ++i) {
      const Entry& e = self.entries_[i];
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"profile\": %s}",
                   i == 0 ? "" : ",", e.name.c_str(),
                   e.profile_json.c_str());
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

  std::mutex mu_;
  std::vector<Entry> entries_;
};

/// The thread counts every bench_query* binary sweeps for the NRA-optimized
/// configuration: serial oracle, a fixed mid point, and the hardware max
/// (num_threads = 0 resolves to hardware_concurrency).
inline std::vector<std::pair<const char*, int>> ThreadSweep() {
  return {{"1", 1}, {"4", 4}, {"max", 0}};
}

/// The paper's X axes scaled 1/10 (block-size ratios preserved; see
/// DESIGN.md): Query 1 sweeps the outer block over 400..1600 rows against a
/// fixed inner block; Queries 2/3 sweep the part block over 1.2K..4.8K with
/// ~1.6K partsupp and ~1.2K lineitem blocks.
///
/// The generated catalog is cached per configuration key so every benchmark
/// in a binary shares one deterministic database.
inline const Catalog& SharedCatalog(bool declare_not_null = false,
                                    double null_l_extendedprice = 0.0) {
  struct Entry {
    std::string key;
    std::unique_ptr<Catalog> catalog;
  };
  static std::vector<Entry>* cache = new std::vector<Entry>();
  const std::string key = std::to_string(declare_not_null) + "/" +
                          std::to_string(null_l_extendedprice);
  for (const Entry& e : *cache) {
    if (e.key == key) return *e.catalog;
  }
  // Benches always run with live metrics: the registry lands in the
  // BENCH_*.json "metrics" block, and the counter upkeep (one relaxed
  // fetch_add per stage/query, nothing per-row) is noise at bench scale.
  telemetry::SetMetricsEnabled(true);

  TpchConfig config;
  config.num_orders = 15000;
  config.num_parts = 6000;      // p_size in 1..50: width w selects 120*w rows
  config.num_suppliers = 300;
  config.declare_not_null = declare_not_null;
  config.null_l_extendedprice = null_l_extendedprice;
  auto catalog = std::make_unique<Catalog>();
  const Status st = PopulateTpch(catalog.get(), config);
  if (!st.ok()) {
    std::fprintf(stderr, "TPC-H generation failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  cache->push_back({key, std::move(catalog)});

  // Register the base tables with the shared I/O simulator (see DESIGN.md:
  // the paper's testbed was disk-bound; the simulator restores that cost
  // structure, and benches report both the measured CPU time and the
  // simulated-1GB/32MB-buffer elapsed time `t2005_ms`).
  static IoSim* sim = [] {
    auto* s = new IoSim();
    IoSim::Install(s);
    return s;
  }();
  const Catalog& result = *cache->back().catalog;
  for (const std::string& name : result.TableNames()) {
    sim->RegisterTable(*result.GetTable(name));
  }
  return result;
}

/// o_orderdate window whose selectivity yields ~`target_rows` orders.
inline std::pair<std::string, std::string> OrderDateWindow(
    const Catalog& catalog, int64_t target_rows) {
  const Table& orders = **catalog.GetTable("orders");
  const double frac =
      static_cast<double>(target_rows) / static_cast<double>(orders.num_rows());
  const Value lo = *ColumnQuantile(orders, "o_orderdate", 0.5 - frac / 2);
  const Value hi = *ColumnQuantile(orders, "o_orderdate", 0.5 + frac / 2);
  return {FormatDate(lo.int64()), FormatDate(hi.int64())};
}

/// p_size range [1, hi] selecting ~`target_rows` parts (p_size uniform
/// 1..50).
inline int64_t PartSizeHi(const Catalog& catalog, int64_t target_rows) {
  const Table& part = **catalog.GetTable("part");
  const double frac =
      static_cast<double>(target_rows) / static_cast<double>(part.num_rows());
  return std::max<int64_t>(1, static_cast<int64_t>(frac * 50.0 + 0.5));
}

// ---------- Strategy runners ----------

// `bench_name` feeds the BENCH_2.json recorder (the benchmark library's
// State carries no name accessor in the packaged version, so registration
// sites pass the name they registered under; empty = don't record).
inline void RunNra(benchmark::State& state, const Catalog& catalog,
                   const std::string& sql, const NraOptions& options,
                   const std::string& bench_name = std::string()) {
  NraExecutor exec(catalog, options);
  NraStats stats;
  IoSim* sim = IoSim::Get();
  int64_t rows = 0;
  double sim_ms = 0;
  double wall_ms = 0;
  int64_t iters = 0;
  for (auto _ : state) {
    if (sim != nullptr) sim->Reset();  // cold cache, like the paper
    const auto t0 = std::chrono::steady_clock::now();
    Result<Table> r = exec.ExecuteSql(sql, &stats);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    wall_ms += std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    if (sim != nullptr) sim_ms += sim->SimMillis();
    ++iters;
    rows = r->num_rows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["out_rows"] = static_cast<double>(rows);
  state.counters["intermediate_rows"] =
      static_cast<double>(stats.intermediate_rows);
  state.counters["nest_select_ms"] = stats.nest_select_seconds * 1e3;
  state.counters["join_ms"] = stats.join_seconds * 1e3;
  if (iters > 0) {
    state.counters["sim_io_ms"] = sim_ms / static_cast<double>(iters);
    state.counters["t2005_ms"] =
        (sim_ms + wall_ms) / static_cast<double>(iters);
    std::vector<std::pair<std::string, double>> counters = {
        {"out_rows", static_cast<double>(rows)},
        {"intermediate_rows", static_cast<double>(stats.intermediate_rows)},
        {"nest_select_ms", stats.nest_select_seconds * 1e3},
        {"join_ms", stats.join_seconds * 1e3},
        {"sim_io_ms", sim_ms / static_cast<double>(iters)},
        {"num_threads",
         static_cast<double>(ResolveNumThreads(options.num_threads))}};
    // One extra profiled run, outside the timed loop: the per-phase
    // breakdown rides along in BENCH_*.json and the full per-operator
    // profile goes to the NESTRA_PROFILE_JSON sink when set.
    if (!bench_name.empty()) {
      NraOptions popts = options;
      popts.profile = true;
      NraExecutor profiled_exec(catalog, popts);
      QueryProfile profile;
      if (sim != nullptr) sim->Reset();
      Result<Table> r = profiled_exec.ExecuteSql(sql, nullptr, &profile);
      if (r.ok()) {
        counters.push_back(
            {"phase_unnest_join_ms",
             profile.PhaseSeconds(QueryPhase::kUnnestJoin) * 1e3});
        counters.push_back(
            {"phase_nest_ms", profile.PhaseSeconds(QueryPhase::kNest) * 1e3});
        counters.push_back(
            {"phase_linking_selection_ms",
             profile.PhaseSeconds(QueryPhase::kLinkingSelection) * 1e3});
        counters.push_back(
            {"phase_post_processing_ms",
             profile.PhaseSeconds(QueryPhase::kPostProcessing) * 1e3});
        if (ProfileJsonRecorder::Enabled()) {
          ProfileJsonRecorder::Get().Record(bench_name, profile.ToJson());
        }
      }
      BenchJsonRecorder::Get().Record(
          bench_name, wall_ms / static_cast<double>(iters),
          std::move(counters));
    }
  }

  // NESTRA_BENCH_COMPARE=row,vectorized re-times the query with the two
  // engines strictly interleaved (min-of-N each): alternation cancels the
  // slow thermal/noisy-neighbour drift a sequential A-then-B run picks up,
  // so the ratio is trustworthy even on a loaded single-core box. Rides on
  // the already-registered benchmarks; results land in the state counters
  // and the NESTRA_COMPARE_JSON (BENCH_3.json) sink.
  const char* compare = std::getenv("NESTRA_BENCH_COMPARE");
  if (compare != nullptr && compare[0] != '\0' && !bench_name.empty()) {
    NraOptions row_opts = options;
    row_opts.vectorized = false;
    NraOptions vec_opts = options;
    vec_opts.vectorized = true;
    NraExecutor row_exec(catalog, row_opts);
    NraExecutor vec_exec(catalog, vec_opts);
    double row_min = 0;
    double vec_min = 0;
    bool identical = true;
    constexpr int kCompareIters = 5;
    for (int i = 0; i < kCompareIters; ++i) {
      if (sim != nullptr) sim->Reset();
      auto t0 = std::chrono::steady_clock::now();
      Result<Table> row_result = row_exec.ExecuteSql(sql);
      const double row_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
      if (sim != nullptr) sim->Reset();
      t0 = std::chrono::steady_clock::now();
      Result<Table> vec_result = vec_exec.ExecuteSql(sql);
      const double vec_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
      if (!row_result.ok() || !vec_result.ok()) {
        state.SkipWithError("engine comparison run failed");
        return;
      }
      if (i == 0) {
        // Bit-identical, not just bag-equal: same schema, same rows, same
        // order, same value types.
        identical = row_result->schema().Equals(vec_result->schema()) &&
                    row_result->rows() == vec_result->rows();
      }
      row_min = i == 0 ? row_ms : std::min(row_min, row_ms);
      vec_min = i == 0 ? vec_ms : std::min(vec_min, vec_ms);
    }
    state.counters["row_min_ms"] = row_min;
    state.counters["vectorized_min_ms"] = vec_min;
    state.counters["vectorized_speedup"] =
        vec_min > 0 ? row_min / vec_min : 0;
    state.counters["engines_identical"] = identical ? 1 : 0;
    CompareJsonRecorder::Get().Record(bench_name, row_min, vec_min,
                                      identical);
  }
}

inline void RunNative(benchmark::State& state, const Catalog& catalog,
                      const std::string& sql, bool use_indexes = true,
                      const std::string& bench_name = std::string()) {
  Result<QueryBlockPtr> root = ParseAndBind(sql, catalog);
  if (!root.ok()) {
    state.SkipWithError(root.status().ToString().c_str());
    return;
  }
  // Pre-warm index construction (System A's indexes pre-exist).
  {
    NestedIterOptions opts{.use_indexes = use_indexes};
    Result<Table> warm = ExecuteNative(**root, catalog, opts);
    if (!warm.ok()) {
      state.SkipWithError(warm.status().ToString().c_str());
      return;
    }
  }
  NativePlanChoice choice;
  IoSim* sim = IoSim::Get();
  int64_t rows = 0;
  double sim_ms = 0;
  double wall_ms = 0;
  int64_t iters = 0;
  for (auto _ : state) {
    if (sim != nullptr) sim->Reset();  // cold cache, like the paper
    const auto t0 = std::chrono::steady_clock::now();
    NestedIterOptions opts{.use_indexes = use_indexes};
    Result<Table> r = ExecuteNative(**root, catalog, opts, &choice);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    wall_ms += std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    if (sim != nullptr) sim_ms += sim->SimMillis();
    ++iters;
    rows = r->num_rows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["out_rows"] = static_cast<double>(rows);
  if (iters > 0) {
    state.counters["sim_io_ms"] = sim_ms / static_cast<double>(iters);
    state.counters["t2005_ms"] =
        (sim_ms + wall_ms) / static_cast<double>(iters);
    if (!bench_name.empty()) {
      BenchJsonRecorder::Get().Record(
          bench_name, wall_ms / static_cast<double>(iters),
          {{"out_rows", static_cast<double>(rows)},
           {"sim_io_ms", sim_ms / static_cast<double>(iters)}});
    }
  }
  state.SetLabel(choice.kind == NativePlanKind::kSemiAntiPipeline
                     ? "plan=semi/anti"
                     : "plan=nested-iteration");
}

inline void RunOracleCheck(const Catalog& catalog, const std::string& sql,
                           const char* what) {
  // One-time sanity pass before timing: every strategy must agree.
  NestedIterationExecutor oracle(catalog, {.use_indexes = false});
  const Result<Table> expected = oracle.ExecuteSql(sql);
  if (!expected.ok()) {
    std::fprintf(stderr, "[%s] oracle failed: %s\n", what,
                 expected.status().ToString().c_str());
    std::abort();
  }
  for (const NraOptions& opts :
       {NraOptions::Original(), NraOptions::Optimized()}) {
    NraExecutor exec(catalog, opts);
    const Result<Table> actual = exec.ExecuteSql(sql);
    if (!actual.ok() || !Table::BagEquals(*expected, *actual)) {
      std::fprintf(stderr, "[%s] NRA (%s) disagrees with the oracle\n", what,
                   opts.ToString().c_str());
      std::abort();
    }
  }
  const Result<Table> native = ExecuteNativeSql(sql, catalog);
  if (!native.ok() || !Table::BagEquals(*expected, *native)) {
    std::fprintf(stderr, "[%s] native plan disagrees with the oracle\n", what);
    std::abort();
  }
}

// ---------- Shared series registration for Query 2 / Query 3 ----------

/// Part-block sweep: 1.2K..4.8K (the paper's 12K..48K at 1/10). With
/// p_size uniform in 1..50 over 6000 parts, `p_size <= hi` selects 120*hi
/// rows. availqty < 667 keeps ~1.6K partsupp rows; l_quantity = Z keeps
/// ~1.2K lineitem rows.
constexpr int64_t kPartSizeHis[] = {10, 20, 30, 40};
constexpr int64_t kAvailQtyMax = 667;
constexpr int64_t kQuantity = 25;

inline void RegisterQuerySeries(const char* figure, const Catalog& catalog,
                                bool is_query3, OuterLink outer,
                                InnerLink inner,
                                Query3Variant variant) {
  auto make_sql = [=, &catalog](int64_t size_hi) {
    (void)catalog;
    return is_query3 ? MakeQuery3(1, size_hi, kAvailQtyMax, kQuantity, outer,
                                  inner, variant)
                     : MakeQuery2(1, size_hi, kAvailQtyMax, kQuantity, outer,
                                  inner);
  };
  RunOracleCheck(catalog, make_sql(kPartSizeHis[0]), figure);

  for (const int64_t hi : kPartSizeHis) {
    const std::string label = std::to_string(hi * 120);  // selected parts
    const std::string native_name =
        std::string(figure) + "/Native/parts=" + label;
    benchmark::RegisterBenchmark(
        native_name.c_str(),
        [&catalog, make_sql, hi, native_name](benchmark::State& state) {
          RunNative(state, catalog, make_sql(hi), /*use_indexes=*/true,
                    native_name);
        })
        ->Unit(benchmark::kMillisecond)->MinTime(0.05);
    const std::string original_name =
        std::string(figure) + "/NraOriginal/parts=" + label;
    benchmark::RegisterBenchmark(
        original_name.c_str(),
        [&catalog, make_sql, hi, original_name](benchmark::State& state) {
          RunNra(state, catalog, make_sql(hi), NraOptions::Original(),
                 original_name);
        })
        ->Unit(benchmark::kMillisecond)->MinTime(0.05);
    // The optimized configuration sweeps the morsel-parallelism degree:
    // threads=1 is the serial oracle, threads=max resolves to the hardware.
    for (const auto& [tname, tval] : ThreadSweep()) {
      NraOptions opts = NraOptions::Optimized();
      opts.num_threads = tval;
      const std::string name = std::string(figure) + "/NraOptimized/parts=" +
                               label + "/threads=" + tname;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&catalog, make_sql, hi, opts, name](benchmark::State& state) {
            RunNra(state, catalog, make_sql(hi), opts, name);
          })
          ->Unit(benchmark::kMillisecond)->MinTime(0.05);
    }
  }
}

}  // namespace bench
}  // namespace nestra

#endif  // NESTRA_BENCH_BENCH_COMMON_H_
