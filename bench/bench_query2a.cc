// Figure 5: Query 2a — two-level LINEAR-correlated query over
// part/partsupp/lineitem with the MIXED operators `< ANY` + `NOT EXISTS`.
//
// System A unnests this bottom-up into an antijoin (NOT EXISTS) followed by
// a semijoin (ANY) — our native optimizer picks the same pipeline (the
// label on each Native row shows the chosen plan). The paper finds native
// slightly ahead of the NR approach here, attributing most of the NR gap to
// stored-procedure communication overhead that this reimplementation does
// not have; expect near-parity.

#include "bench_common.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const nestra::Catalog& catalog =
      nestra::bench::SharedCatalog(/*declare_not_null=*/true);
  nestra::bench::RegisterQuerySeries(
      "Query2a", catalog, /*is_query3=*/false, nestra::OuterLink::kAny,
      nestra::InnerLink::kNotExists, nestra::Query3Variant::kVariantA);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
