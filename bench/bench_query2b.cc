// Figure 6: Query 2b — the same linear query as Figure 5 but with the
// NEGATIVE operators `< ALL` + `NOT EXISTS`.
//
// Without a NOT NULL constraint on ps_supplycost, System A cannot antijoin
// the ALL predicate and falls back to nested iteration over the indexes —
// the paper's headline case where the native approach degrades sharply
// while the NR approach's cost is essentially identical to Figure 5
// (insensitive to the linking operator).

#include "bench_common.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  // NOT NULL deliberately not declared: the general case.
  const nestra::Catalog& catalog =
      nestra::bench::SharedCatalog(/*declare_not_null=*/false);
  nestra::bench::RegisterQuerySeries(
      "Query2b", catalog, /*is_query3=*/false, nestra::OuterLink::kAll,
      nestra::InnerLink::kNotExists, nestra::Query3Variant::kVariantA);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
