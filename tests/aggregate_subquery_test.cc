// Scalar aggregate subqueries — the framework's extension beyond the
// paper's six non-aggregate operators: `A θ (SELECT agg(B) ...)` evaluated
// with the same outer join + nest, folding each group with the aggregate
// before the comparison. SQL semantics: aggregates ignore NULL inputs,
// MIN/MAX/SUM/AVG over an empty group are NULL (comparison UNKNOWN),
// COUNT/COUNT(*) are 0.

#include <gtest/gtest.h>

#include "baseline/native_optimizer.h"
#include "baseline/nested_iteration.h"
#include "nra/executor.h"
#include "plan/binder.h"
#include "plan/tree_expr.h"
#include "sql/parser.h"
#include "test_util.h"
#include "verify/verifier.h"

namespace nestra {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;
using testing_util::RegisterPaperRelations;

TEST(AggregateParserTest, AggregateSelectForms) {
  ASSERT_OK_AND_ASSIGN(
      AstSelectPtr sel,
      ParseSelect("select a from t where a > (select max(b) from u)"));
  ASSERT_EQ(sel->where->kind, AstCond::Kind::kScalarSubquery);
  EXPECT_EQ(sel->where->op, CmpOp::kGt);
  EXPECT_TRUE(sel->where->subquery->IsSingleAggregate());
  EXPECT_EQ(sel->where->subquery->items[0].agg, LinkAgg::kMax);
  EXPECT_EQ(sel->where->subquery->items[0].column, "b");
}

TEST(AggregateParserTest, CountStar) {
  ASSERT_OK_AND_ASSIGN(
      AstSelectPtr sel,
      ParseSelect("select a from t where 0 = (select count(*) from u)"));
  EXPECT_EQ(sel->where->subquery->items[0].agg, LinkAgg::kCountStar);
}

TEST(AggregateParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("select a from t where a > "
                           "(select sum(*) from u)")
                   .ok());
  // A multi-item aggregate select list parses (it is legal at the top level
  // with GROUP BY) but cannot serve as a scalar subquery — see BinderErrors.
  EXPECT_TRUE(ParseSelect("select a from t where a > "
                          "(select max(b), c from u)")
                  .ok());
}

TEST(AggregateParserTest, RoundTrip) {
  const char* sql =
      "SELECT a FROM t WHERE a >= (SELECT avg(b) FROM u WHERE u.k = t.a)";
  ASSERT_OK_AND_ASSIGN(AstSelectPtr sel, ParseSelect(sql));
  ASSERT_OK_AND_ASSIGN(AstSelectPtr again, ParseSelect(sel->ToString()));
  EXPECT_EQ(again->ToString(), sel->ToString());
}

class AggregateSubqueryTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterPaperRelations(&catalog_); }

  void CheckAgainstOracle(const std::string& sql) {
    NestedIterationExecutor oracle(catalog_, {.use_indexes = false});
    ASSERT_OK_AND_ASSIGN(Table expected, oracle.ExecuteSql(sql));
    std::vector<std::pair<std::string, NraOptions>> configs;
    configs.emplace_back("original", NraOptions::Original());
    configs.emplace_back("optimized", NraOptions::Optimized());
    {
      NraOptions o = NraOptions::Optimized();
      o.push_down_nest = true;
      o.bottom_up_linear = true;
      configs.emplace_back("rewrites", o);
    }
    for (const auto& [name, opts] : configs) {
      NraExecutor exec(catalog_, opts);
      Result<Table> actual = exec.ExecuteSql(sql);
      ASSERT_TRUE(actual.ok()) << name << ": " << actual.status().ToString();
      EXPECT_TRUE(Table::BagEquals(expected, *actual))
          << sql << " [" << name << "]\nexpected:\n"
          << expected.ToString() << "actual:\n"
          << actual->ToString();
    }
    ASSERT_OK_AND_ASSIGN(Table native, ExecuteNativeSql(sql, catalog_));
    EXPECT_TRUE(Table::BagEquals(expected, native)) << sql;
  }

  Catalog catalog_;
};

TEST_F(AggregateSubqueryTest, BinderMarksAggregateLink) {
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr root,
      ParseAndBind("select b from r where c > "
                   "(select max(h) from s where s.g = r.d)",
                   catalog_));
  const QueryBlock& child = *root->children[0];
  EXPECT_TRUE(child.is_aggregate_link);
  EXPECT_EQ(child.agg, LinkAgg::kMax);
  EXPECT_EQ(child.link_cmp, CmpOp::kGt);
  EXPECT_EQ(child.linked_attr, "s.h");
  EXPECT_FALSE(child.LinkIsPositive());
  EXPECT_EQ(LinkingLabel(child), "r.c > max{s.h}");
}

TEST_F(AggregateSubqueryTest, MaxCorrelated) {
  // c > (select max(h) where g = d):
  //  r1: d=1 empty -> max NULL -> UNKNOWN -> out.
  //  r2: d=2 -> max{2,7}=7; 4 > 7 false -> out.
  //  r3: d=3 empty -> out.
  //  r4: d=4 -> h {3,null}: max=3; c=5 > 3 -> TRUE -> keep.
  NraExecutor exec(catalog_);
  ASSERT_OK_AND_ASSIGN(
      Table out,
      exec.ExecuteSql(
          "select d from r where c > (select max(h) from s where s.g = r.d)"));
  ExpectTablesEqual(MakeTable({"r.d"}, {{I(4)}}), out);
}

TEST_F(AggregateSubqueryTest, CountStarTreatsEmptyAsZero) {
  // count(*) of matching s rows: r1/r3 -> 0, r2/r4 -> 2.
  NraExecutor exec(catalog_);
  ASSERT_OK_AND_ASSIGN(
      Table out, exec.ExecuteSql("select d from r where 0 = (select count(*) "
                                 "from s where s.g = r.d)"));
  ExpectTablesEqual(MakeTable({"r.d"}, {{I(1)}, {I(3)}}), out);
}

TEST_F(AggregateSubqueryTest, CountColumnIgnoresNulls) {
  // count(h) for r4's group {3, null} is 1; count(*) is 2.
  NraExecutor exec(catalog_);
  ASSERT_OK_AND_ASSIGN(
      Table by_col, exec.ExecuteSql("select d from r where 1 = (select "
                                    "count(h) from s where s.g = r.d)"));
  ExpectTablesEqual(MakeTable({"r.d"}, {{I(4)}}), by_col);
  ASSERT_OK_AND_ASSIGN(
      Table by_star, exec.ExecuteSql("select d from r where 1 = (select "
                                     "count(*) from s where s.g = r.d)"));
  EXPECT_EQ(by_star.num_rows(), 0);
}

TEST_F(AggregateSubqueryTest, SumAndAvg) {
  // sum(e) where g = d: r2 -> 1+2=3; r4 -> 3+4=7.
  NraExecutor exec(catalog_);
  ASSERT_OK_AND_ASSIGN(
      Table out, exec.ExecuteSql("select d from r where b >= (select sum(e) "
                                 "from s where s.g = r.d)"));
  // r2: b=3 >= 3 TRUE. r4: b=null UNKNOWN. r1/r3: sum NULL -> UNKNOWN.
  ExpectTablesEqual(MakeTable({"r.d"}, {{I(2)}}), out);

  // avg(h) where g = d: r2 -> (2+7)/2 = 4.5.
  ASSERT_OK_AND_ASSIGN(
      Table avg_out,
      exec.ExecuteSql("select d from r where c < (select avg(h) from s "
                      "where s.g = r.d)"));
  // r2: 4 < 4.5 TRUE. r4: avg{3}=3, 5 < 3 false. others UNKNOWN.
  ExpectTablesEqual(MakeTable({"r.d"}, {{I(2)}}), avg_out);
}

TEST_F(AggregateSubqueryTest, AllStrategiesAgree) {
  const char* queries[] = {
      "select d from r where c > (select max(h) from s where s.g = r.d)",
      "select d from r where c <= (select min(h) from s where s.g = r.d)",
      "select d from r where 0 = (select count(*) from s where s.g = r.d)",
      "select d from r where b >= (select sum(e) from s where s.g = r.d)",
      "select d from r where c < (select avg(h) from s where s.g = r.d)",
      // Non-correlated (virtual Cartesian product path).
      "select d from r where b > (select avg(e) from s)",
      // Aggregate link above a nested non-aggregate subquery.
      "select d from r where b <= (select max(e) from s where s.g = r.d and "
      "exists (select * from t where t.l = s.i))",
      // Non-aggregate link above an aggregate subquery.
      "select d from r where b in (select e from s where s.g = r.d and "
      "s.h > (select count(*) from t where t.l = s.i))",
  };
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    CheckAgainstOracle(q);
  }
}

TEST_F(AggregateSubqueryTest, SemiAntiRefusesAggregates) {
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr root,
      ParseAndBind("select d from r where c > "
                   "(select max(h) from s where s.g = r.d)",
                   catalog_));
  EXPECT_EQ(ChooseNativePlan(*root, catalog_).kind,
            NativePlanKind::kNestedIteration);
}

TEST_F(AggregateSubqueryTest, BinderErrors) {
  // A multi-item aggregate select list is not a scalar subquery.
  EXPECT_FALSE(ParseAndBind("select d from r where b > "
                            "(select max(e), f from s)",
                            catalog_)
                   .ok());
  // Aggregate subquery under IN.
  EXPECT_FALSE(ParseAndBind("select d from r where b in "
                            "(select max(e) from s)",
                            catalog_)
                   .ok());
  // A bare scalar subquery without an aggregate binds as a θ SOME link with
  // the scalar flag set; the verifier's scalar-card rule then reports that
  // nothing pins the subquery to one row (SOME would silently accept any
  // matching member where SQL requires a runtime cardinality error).
  {
    ASSERT_OK_AND_ASSIGN(QueryBlockPtr scalar,
                         ParseAndBind("select d from r where b > "
                                      "(select e from s)",
                                      catalog_));
    ASSERT_EQ(scalar->children.size(), 1u);
    EXPECT_TRUE(scalar->children[0]->is_scalar_link);
    EXPECT_EQ(scalar->children[0]->link_op, LinkOp::kSome);
    const PlanVerifier verifier(catalog_, NraOptions::Optimized());
    const VerifyReport report = verifier.Verify(*scalar);
    EXPECT_TRUE(report.HasRule(verify_rules::kScalarCard)) << report.ToString();
    EXPECT_FALSE(report.ok());
  }
  // Unknown aggregate argument.
  EXPECT_FALSE(ParseAndBind("select d from r where b > "
                            "(select max(zz) from s)",
                            catalog_)
                   .ok());
}

}  // namespace
}  // namespace nestra
