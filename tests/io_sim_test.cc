#include <gtest/gtest.h>

#include "baseline/nested_iteration.h"
#include "exec/scan.h"
#include "nra/executor.h"
#include "storage/io_sim.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::I;
using testing_util::MakeTable;

// RAII guard: installs a simulator for the test and removes it after, so
// other tests are unaffected.
class SimGuard {
 public:
  explicit SimGuard(IoSimConfig config = {}) : sim_(config) {
    IoSim::Install(&sim_);
  }
  ~SimGuard() { IoSim::Install(nullptr); }
  IoSim* get() { return &sim_; }

 private:
  IoSim sim_;
};

Table BigTable(int64_t rows) {
  Table t = MakeTable({"k", "v"}, {});
  for (int64_t i = 0; i < rows; ++i) {
    t.AppendUnchecked(Row({I(i), I(i % 7)}));
  }
  return t;
}

TEST(IoSimTest, UninstalledByDefault) { EXPECT_EQ(IoSim::Get(), nullptr); }

TEST(IoSimTest, SequentialScanChargesOneMissPerPage) {
  IoSimConfig config;
  config.rows_per_page = 64;
  config.pool_fraction = 1.0;  // everything fits; misses are cold only
  SimGuard guard(config);
  const Table t = BigTable(640);  // 10 pages
  guard.get()->RegisterTable(&t);

  ScanNode scan(&t, "");
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&scan));
  EXPECT_EQ(out.num_rows(), 640);
  EXPECT_EQ(guard.get()->seq_misses(), 10);
  EXPECT_EQ(guard.get()->random_misses(), 0);
  EXPECT_EQ(guard.get()->hits(), 630);  // 63 further rows per page
}

TEST(IoSimTest, RescanHitsWhenPoolLargeEnough) {
  IoSimConfig config;
  config.rows_per_page = 64;
  config.pool_fraction = 1.0;
  SimGuard guard(config);
  const Table t = BigTable(640);
  guard.get()->RegisterTable(&t);
  ScanNode scan(&t, "");
  ASSERT_OK(CollectTable(&scan).status());
  const int64_t misses_cold = guard.get()->seq_misses();
  ASSERT_OK(CollectTable(&scan).status());
  EXPECT_EQ(guard.get()->seq_misses(), misses_cold);  // all hits second time
}

TEST(IoSimTest, SmallPoolEvictsUnderRescan) {
  IoSimConfig config;
  config.rows_per_page = 64;
  config.pool_fraction = 0.2;  // 2 of 10 pages fit
  config.min_pool_pages = 1;
  SimGuard guard(config);
  const Table t = BigTable(640);
  guard.get()->RegisterTable(&t);
  ScanNode scan(&t, "");
  ASSERT_OK(CollectTable(&scan).status());
  ASSERT_OK(CollectTable(&scan).status());
  // LRU over a sequential cycle of 10 pages with capacity 2: every page
  // access on the second scan misses again.
  EXPECT_EQ(guard.get()->seq_misses(), 20);
}

TEST(IoSimTest, IndexProbesChargeRandomMisses) {
  IoSimConfig config;
  config.min_pool_pages = 1;
  config.pool_fraction = 0.01;
  SimGuard guard(config);
  const Table t = BigTable(6400);
  guard.get()->RegisterTable(&t);
  const HashIndex index(t, 0);
  for (int64_t k = 0; k < 100; ++k) {
    (void)index.Lookup(I(k * 17 % 6400));
  }
  EXPECT_GT(guard.get()->random_misses(), 0);
}

TEST(IoSimTest, UnregisteredTablesAreFree) {
  SimGuard guard;
  const Table t = BigTable(640);  // NOT registered
  ScanNode scan(&t, "");
  ASSERT_OK(CollectTable(&scan).status());
  EXPECT_EQ(guard.get()->seq_misses() + guard.get()->random_misses() +
                guard.get()->hits(),
            0);
}

TEST(IoSimTest, SimMillisUsesConfiguredCosts) {
  IoSimConfig config;
  config.random_miss_ms = 10.0;
  config.seq_miss_ms = 1.0;
  SimGuard guard(config);
  const Table t = BigTable(64);
  guard.get()->RegisterTable(&t);
  guard.get()->SeqRow(&t, 0);     // one seq miss
  guard.get()->RandomRow(&t, 0);  // hit (same page)
  EXPECT_DOUBLE_EQ(guard.get()->SimMillis(), 1.0);
  guard.get()->Reset();
  guard.get()->RandomRow(&t, 0);  // cold again after reset
  EXPECT_DOUBLE_EQ(guard.get()->SimMillis(), 10.0);
}

TEST(IoSimTest, ResultsUnaffectedBySimulation) {
  // Accounting must never change answers.
  Catalog catalog;
  testing_util::RegisterPaperRelations(&catalog);

  NraExecutor nra(catalog);
  NestedIterationExecutor iter(catalog);
  ASSERT_OK_AND_ASSIGN(Table nra_plain,
                       nra.ExecuteSql(testing_util::kQueryQ));
  ASSERT_OK_AND_ASSIGN(Table iter_plain,
                       iter.ExecuteSql(testing_util::kQueryQ));
  {
    SimGuard guard;
    for (const std::string& name : catalog.TableNames()) {
      guard.get()->RegisterTable(*catalog.GetTable(name));
    }
    ASSERT_OK_AND_ASSIGN(Table nra_sim, nra.ExecuteSql(testing_util::kQueryQ));
    ASSERT_OK_AND_ASSIGN(Table iter_sim,
                         iter.ExecuteSql(testing_util::kQueryQ));
    EXPECT_TRUE(Table::BagEquals(nra_plain, nra_sim));
    EXPECT_TRUE(Table::BagEquals(iter_plain, iter_sim));
    EXPECT_GT(guard.get()->seq_misses() + guard.get()->hits(), 0);
  }
}

TEST(IoSimTest, ToStringMentionsCounters) {
  SimGuard guard;
  const std::string s = guard.get()->ToString();
  EXPECT_NE(s.find("random_misses"), std::string::npos);
}

}  // namespace
}  // namespace nestra
