#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;

TEST(CatalogTest, RegisterAndLookup) {
  Catalog cat;
  ASSERT_OK(cat.RegisterTable("t", MakeTable({"a", "b"}, {{I(1), I(2)}}), "a"));
  EXPECT_TRUE(cat.HasTable("t"));
  ASSERT_OK_AND_ASSIGN(const Table* t, cat.GetTable("t"));
  EXPECT_EQ(t->num_rows(), 1);
  EXPECT_FALSE(cat.GetTable("missing").ok());
}

TEST(CatalogTest, DuplicateRejected) {
  Catalog cat;
  ASSERT_OK(cat.RegisterTable("t", MakeTable({"a"}, {}), "a"));
  EXPECT_EQ(cat.RegisterTable("t", MakeTable({"a"}, {}), "a").code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, BadPrimaryKeyRejected) {
  Catalog cat;
  EXPECT_FALSE(cat.RegisterTable("t", MakeTable({"a"}, {}), "zz").ok());
}

TEST(CatalogTest, NotNullTracking) {
  Catalog cat;
  ASSERT_OK(cat.RegisterTable("t", MakeTable({"a", "b"}, {}), "a", {"b"}));
  EXPECT_TRUE(cat.IsNotNull("t", "a"));  // PK is implicitly NOT NULL
  EXPECT_TRUE(cat.IsNotNull("t", "b"));
  ASSERT_OK(cat.DropNotNull("t", "b"));
  EXPECT_FALSE(cat.IsNotNull("t", "b"));
  ASSERT_OK(cat.AddNotNull("t", "b"));
  EXPECT_TRUE(cat.IsNotNull("t", "b"));
  EXPECT_FALSE(cat.AddNotNull("t", "zz").ok());
}

TEST(CatalogTest, DropTable) {
  Catalog cat;
  ASSERT_OK(cat.RegisterTable("t", MakeTable({"a"}, {}), "a"));
  ASSERT_OK(cat.DropTable("t"));
  EXPECT_FALSE(cat.HasTable("t"));
  EXPECT_FALSE(cat.DropTable("t").ok());
}

TEST(HashIndexTest, LookupSkipsNulls) {
  const Table t = MakeTable({"k", "v"}, {{I(1), I(10)},
                                         {I(2), I(20)},
                                         {I(1), I(30)},
                                         {N(), I(40)}});
  const HashIndex idx(t, 0);
  EXPECT_EQ(idx.Lookup(I(1)).size(), 2u);
  EXPECT_EQ(idx.Lookup(I(2)).size(), 1u);
  EXPECT_EQ(idx.Lookup(I(9)).size(), 0u);
  EXPECT_EQ(idx.Lookup(N()).size(), 0u);  // NULL probes match nothing
  EXPECT_EQ(idx.num_keys(), 2);
}

TEST(CatalogTest, IndexCaching) {
  Catalog cat;
  ASSERT_OK(cat.RegisterTable("t", MakeTable({"a"}, {{I(1)}, {I(2)}}), "a"));
  ASSERT_OK_AND_ASSIGN(const HashIndex* i1, cat.GetHashIndex("t", "a"));
  ASSERT_OK_AND_ASSIGN(const HashIndex* i2, cat.GetHashIndex("t", "a"));
  EXPECT_EQ(i1, i2);  // cached
  EXPECT_FALSE(cat.GetHashIndex("t", "zz").ok());
}

TEST(SortedIndexTest, RangeProbes) {
  const Table t = MakeTable(
      {"k"}, {{I(5)}, {I(1)}, {I(3)}, {I(3)}, {N()}, {I(9)}});
  const SortedIndex idx(t, 0);
  EXPECT_EQ(idx.num_entries(), 5);  // NULL excluded
  EXPECT_EQ(idx.Lookup(CmpOp::kEq, I(3)).size(), 2u);
  EXPECT_EQ(idx.Lookup(CmpOp::kLt, I(3)).size(), 1u);
  EXPECT_EQ(idx.Lookup(CmpOp::kLe, I(3)).size(), 3u);
  EXPECT_EQ(idx.Lookup(CmpOp::kGt, I(3)).size(), 2u);
  EXPECT_EQ(idx.Lookup(CmpOp::kGe, I(3)).size(), 4u);
  EXPECT_EQ(idx.Lookup(CmpOp::kNe, I(3)).size(), 3u);
  EXPECT_EQ(idx.Lookup(CmpOp::kEq, N()).size(), 0u);
}

TEST(SortedIndexTest, RangeBounds) {
  const Table t = MakeTable({"k"}, {{I(1)}, {I(2)}, {I(3)}, {I(4)}});
  const SortedIndex idx(t, 0);
  EXPECT_EQ(idx.Range(I(2), true, I(3), true).size(), 2u);
  EXPECT_EQ(idx.Range(I(2), false, I(3), true).size(), 1u);
  EXPECT_EQ(idx.Range(N(), true, I(2), false).size(), 1u);  // open low bound
  EXPECT_EQ(idx.Range(I(4), false, N(), true).size(), 0u);
}

}  // namespace
}  // namespace nestra
