#include <gtest/gtest.h>

#include "plan/binder.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::RegisterPaperRelations;

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterPaperRelations(&catalog_); }
  Catalog catalog_;
};

TEST_F(BinderTest, FlatQuery) {
  ASSERT_OK_AND_ASSIGN(QueryBlockPtr root,
                       ParseAndBind("select b, c from r where a > 1",
                                    catalog_));
  EXPECT_EQ(root->id, 1);
  EXPECT_TRUE(root->IsLeaf());
  EXPECT_EQ(root->key_attr, "r.d");
  ASSERT_EQ(root->select_list.size(), 2u);
  EXPECT_EQ(root->select_list[0], "r.b");
  ASSERT_NE(root->local_pred, nullptr);
  EXPECT_TRUE(root->correlated_preds.empty());
}

TEST_F(BinderTest, QueryQStructure) {
  ASSERT_OK_AND_ASSIGN(QueryBlockPtr root,
                       ParseAndBind(testing_util::kQueryQ, catalog_));
  EXPECT_EQ(root->NumBlocks(), 3);
  EXPECT_EQ(root->NestingDepth(), 2);
  ASSERT_EQ(root->children.size(), 1u);
  const QueryBlock& s = *root->children[0];
  EXPECT_EQ(s.id, 2);
  EXPECT_EQ(s.link_op, LinkOp::kNotIn);
  EXPECT_EQ(s.linking_attr, "r.b");
  EXPECT_EQ(s.linked_attr, "s.e");
  EXPECT_EQ(s.key_attr, "s.i");
  // Correlated to the root only.
  ASSERT_EQ(s.correlated_block_ids.size(), 1u);
  EXPECT_EQ(s.correlated_block_ids[0], 1);
  ASSERT_EQ(s.children.size(), 1u);
  const QueryBlock& t = *s.children[0];
  EXPECT_EQ(t.id, 3);
  EXPECT_EQ(t.link_op, LinkOp::kAll);
  EXPECT_EQ(t.link_cmp, CmpOp::kGt);
  EXPECT_EQ(t.linking_attr, "s.h");
  EXPECT_EQ(t.linked_attr, "t.j");
  // T is correlated to both R (t.k = r.c) and S (t.l <> s.i).
  EXPECT_EQ(t.correlated_block_ids, (std::vector<int>{1, 2}));
  EXPECT_EQ(t.correlated_preds.size(), 2u);
  // Structure checks used by the planner.
  EXPECT_TRUE(root->IsLinear());
  EXPECT_FALSE(root->IsLinearCorrelated());
  EXPECT_FALSE(root->AllLinksPositive());
}

TEST_F(BinderTest, ScopingInnermostFirst) {
  // "i" resolves in the subquery's own scope (s.i), not an outer one.
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr root,
      ParseAndBind("select b from r where exists "
                   "(select * from s where i = d)",
                   catalog_));
  const QueryBlock& s = *root->children[0];
  ASSERT_EQ(s.correlated_preds.size(), 1u);
  EXPECT_EQ(s.correlated_preds[0]->ToString(), "s.i = r.d");
}

TEST_F(BinderTest, ExistsUsesKeyAsLinkedAttr) {
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr root,
      ParseAndBind("select b from r where not exists "
                   "(select * from s where s.g = r.d)",
                   catalog_));
  const QueryBlock& s = *root->children[0];
  EXPECT_EQ(s.link_op, LinkOp::kNotExists);
  EXPECT_EQ(s.linked_attr, "s.i");
  EXPECT_TRUE(s.linking_attr.empty());
}

TEST_F(BinderTest, SelectStarExpands) {
  ASSERT_OK_AND_ASSIGN(QueryBlockPtr root,
                       ParseAndBind("select * from t", catalog_));
  EXPECT_EQ(root->select_list,
            (std::vector<std::string>{"t.j", "t.k", "t.l"}));
}

TEST_F(BinderTest, Errors) {
  EXPECT_FALSE(ParseAndBind("select b from missing", catalog_).ok());
  EXPECT_FALSE(ParseAndBind("select zz from r", catalog_).ok());
  // Subquery under OR is rejected.
  EXPECT_FALSE(ParseAndBind("select b from r where a = 1 or "
                            "b in (select e from s)",
                            catalog_)
                   .ok());
  // Multi-column subquery select list for IN.
  EXPECT_FALSE(
      ParseAndBind("select b from r where b in (select e, f from s)",
                   catalog_)
          .ok());
  // Duplicate alias.
  EXPECT_FALSE(ParseAndBind("select b from r, r", catalog_).ok());
  // Unresolvable correlation.
  EXPECT_FALSE(ParseAndBind("select b from r where b in "
                            "(select e from s where s.g = zz.q)",
                            catalog_)
                   .ok());
}

TEST_F(BinderTest, MissingPrimaryKeyRejected) {
  Catalog cat;
  ASSERT_OK(cat.RegisterTable(
      "nopk", testing_util::MakeTable({"x"}, {{testing_util::I(1)}}), ""));
  EXPECT_FALSE(ParseAndBind("select x from nopk", cat).ok());
}

TEST_F(BinderTest, LocalVsCorrelatedClassification) {
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr root,
      ParseAndBind("select b from r where b in "
                   "(select e from s where f = 5 and g = r.d and h > 2)",
                   catalog_));
  const QueryBlock& s = *root->children[0];
  ASSERT_NE(s.local_pred, nullptr);
  // f = 5 and h > 2 are local; g = r.d is correlated.
  EXPECT_NE(s.local_pred->ToString().find("s.f = 5"), std::string::npos);
  EXPECT_NE(s.local_pred->ToString().find("s.h > 2"), std::string::npos);
  ASSERT_EQ(s.correlated_preds.size(), 1u);
  EXPECT_EQ(s.correlated_preds[0]->ToString(), "s.g = r.d");
}

TEST_F(BinderTest, DateLiteralCoercion) {
  Catalog cat;
  Table t{Schema({{"k", TypeId::kInt64, false}, {"dt", TypeId::kDate, true}})};
  t.AppendUnchecked(Row({Value::Int64(1), Value::Date(9000)}));
  ASSERT_OK(cat.RegisterTable("events", std::move(t), "k"));
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr root,
      ParseAndBind("select k from events where dt >= '1994-06-01'", cat));
  // The literal must have become a date (int days), not a string.
  const std::string s = root->local_pred->ToString();
  EXPECT_EQ(s.find("1994-06"), std::string::npos) << s;
}

TEST_F(BinderTest, TreeQueryTwoChildren) {
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr root,
      ParseAndBind("select b from r where "
                   "b in (select e from s where s.g = r.d) and "
                   "not exists (select * from t where t.k = r.c)",
                   catalog_));
  EXPECT_EQ(root->children.size(), 2u);
  EXPECT_FALSE(root->IsLinear());
  EXPECT_EQ(root->children[0]->link_op, LinkOp::kIn);
  EXPECT_EQ(root->children[1]->link_op, LinkOp::kNotExists);
}

}  // namespace
}  // namespace nestra
