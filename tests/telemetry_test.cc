// Tests for the process-wide telemetry subsystem (src/telemetry/): the
// metrics registry, the Chrome trace_event sink, the slow-query log, and
// their engine integration contracts —
//
//  * deterministic counters are bit-identical across num_threads {1,2,8}
//    and row-vs-vectorized engines for the same query sequence,
//  * the trace JSON is well-formed (parsed back here with a tiny JSON
//    reader) and puts pool-task spans on worker-thread tracks,
//  * the slow-query log fires strictly above its threshold,
//  * disabled telemetry never reads the clock on the per-row path and
//    never moves a counter.
//
// Telemetry state is process-global, so every test restores "all off" on
// exit; the suite is safe to run in any order but not concurrently with
// other telemetry-enabled tests in one process (it is its own binary).

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "exec/exec_node.h"
#include "nra/executor.h"
#include "nra/explain.h"
#include "nra/profile.h"
#include "json_checker.h"
#include "query_generator.h"
#include "storage/catalog.h"
#include "telemetry/engine_metrics.h"
#include "telemetry/metrics.h"
#include "telemetry/slow_query.h"
#include "telemetry/trace.h"
#include "test_util.h"

namespace nestra {
namespace {

using telemetry::MetricsRegistry;
using testing_util::JsonChecker;

// Restores the all-off telemetry state however the test exits.
struct TelemetryOffGuard {
  ~TelemetryOffGuard() {
    telemetry::SetMetricsEnabled(false);
    telemetry::UninstallTraceSink();
    telemetry::SetSlowQuerySink({});
    MetricsRegistry::Global().ResetValues();
  }
};

// ---------- registry unit tests ----------

TEST(MetricsRegistryTest, CounterMergesConcurrentAdds) {
  TelemetryOffGuard guard;
  telemetry::SetMetricsEnabled(true);
  telemetry::Counter* c = MetricsRegistry::Global().GetCounter(
      "test_concurrent_total", "", "test", false);
  c->ResetValue();
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([c] {
      for (int i = 0; i < kAdds; ++i) c->Add(1);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c->Value(), kThreads * kAdds);
}

TEST(MetricsRegistryTest, DisabledCounterDoesNotMove) {
  TelemetryOffGuard guard;
  telemetry::SetMetricsEnabled(false);
  telemetry::Counter* c = MetricsRegistry::Global().GetCounter(
      "test_disabled_total", "", "test", false);
  c->ResetValue();
  c->Add(5);
  EXPECT_EQ(c->Value(), 0);
  telemetry::SetMetricsEnabled(true);
  c->Add(5);
  EXPECT_EQ(c->Value(), 5);
}

TEST(MetricsRegistryTest, GaugeKeepsMax) {
  TelemetryOffGuard guard;
  telemetry::SetMetricsEnabled(true);
  telemetry::Gauge* g = MetricsRegistry::Global().GetGauge(
      "test_peak", "", "test", false);
  g->ResetValue();
  g->UpdateMax(3);
  g->UpdateMax(10);
  g->UpdateMax(7);
  EXPECT_EQ(g->Value(), 10);
  g->Set(2);
  EXPECT_EQ(g->Value(), 2);
}

TEST(MetricsRegistryTest, HistogramBucketsAreCumulative) {
  TelemetryOffGuard guard;
  telemetry::SetMetricsEnabled(true);
  telemetry::Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test_latency_ms", "", "test", {1.0, 10.0});
  h->ResetValue();
  h->Observe(0.5);
  h->Observe(5);
  h->Observe(50);
  const std::vector<int64_t> counts = h->CumulativeCounts();
  ASSERT_EQ(counts.size(), 3u);  // le=1, le=10, +Inf
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 3);
  EXPECT_EQ(h->Count(), 3);
  EXPECT_DOUBLE_EQ(h->Sum(), 55.5);
}

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameMetric) {
  TelemetryOffGuard guard;
  MetricsRegistry& reg = MetricsRegistry::Global();
  EXPECT_EQ(reg.GetCounter("test_dedup_total", "k=\"a\"", "test", false),
            reg.GetCounter("test_dedup_total", "k=\"a\"", "test", false));
  EXPECT_NE(reg.GetCounter("test_dedup_total", "k=\"a\"", "test", false),
            reg.GetCounter("test_dedup_total", "k=\"b\"", "test", false));
}

TEST(MetricsRegistryTest, PrometheusAndJsonExposition) {
  TelemetryOffGuard guard;
  telemetry::SetMetricsEnabled(true);
  MetricsRegistry::Global().ResetValues();
  telemetry::Metrics().queries_total->Add(3);
  telemetry::Metrics().query_ms->Observe(4.2);

  const std::string prom = telemetry::DumpMetricsPrometheus();
  EXPECT_NE(prom.find("# HELP nestra_queries_total"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE nestra_queries_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("nestra_queries_total 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE nestra_query_ms histogram"), std::string::npos);
  EXPECT_NE(prom.find("nestra_query_ms_bucket{le=\"5\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("nestra_query_ms_count 1"), std::string::npos);
  // Phase-labelled families render their label set.
  EXPECT_NE(prom.find("nestra_phase_rows_total{phase=\"nest\"}"),
            std::string::npos);

  const std::string json = telemetry::DumpMetricsJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"schema\":\"nestra-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"nestra_queries_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"value\":3"), std::string::npos);
}

TEST(MetricsRegistryTest, PhaseLabelsMatchQueryPhaseLabel) {
  // telemetry/ sits below exec/ in the link order, so the phase label
  // strings are duplicated there; this pins them together.
  ASSERT_EQ(telemetry::kNumPhases, 5);
  for (int p = 0; p < telemetry::kNumPhases; ++p) {
    EXPECT_STREQ(telemetry::kPhaseLabels[p],
                 QueryPhaseLabel(static_cast<QueryPhase>(p)))
        << "phase " << p;
  }
}

TEST(MetricsRegistryTest, PrometheusLabelEscapesValue) {
  EXPECT_EQ(telemetry::PrometheusLabel("session", "s1"), "session=\"s1\"");
  EXPECT_EQ(telemetry::PrometheusLabel("q", "a\"b\\c\nd"),
            "q=\"a\\\"b\\\\c\\nd\"");
  // Round trip through the exposition: a hostile label value renders as one
  // sample line with the escapes intact.
  TelemetryOffGuard guard;
  telemetry::SetMetricsEnabled(true);
  telemetry::Counter* c = MetricsRegistry::Global().GetCounter(
      "test_escaped_total", telemetry::PrometheusLabel("q", "x\"y\\z\nw"),
      "test", false);
  c->ResetValue();
  c->Add(1);
  const std::string prom = telemetry::DumpMetricsPrometheus();
  EXPECT_NE(prom.find("test_escaped_total{q=\"x\\\"y\\\\z\\nw\"} 1"),
            std::string::npos)
      << prom;
}

TEST(MetricsRegistryTest, HistogramEdgeValuesLandInTheirBucket) {
  // Prometheus `le` buckets are inclusive: an observation exactly at a
  // bound counts in that bound's bucket, not the next one up.
  TelemetryOffGuard guard;
  telemetry::SetMetricsEnabled(true);
  telemetry::Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test_edges_ms", "", "test", {1.0, 10.0, 100.0});
  h->ResetValue();
  h->Observe(1.0);
  h->Observe(10.0);
  h->Observe(100.0);
  const std::vector<int64_t> counts = h->CumulativeCounts();
  ASSERT_EQ(counts.size(), 4u);  // le=1, le=10, le=100, +Inf
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 3);
  EXPECT_EQ(counts[3], 3);  // nothing past the last bound
  // The next representable value past a bound spills to the next bucket.
  h->Observe(std::nextafter(10.0, 1e18));
  EXPECT_EQ(h->CumulativeCounts()[1], 2);
  EXPECT_EQ(h->CumulativeCounts()[2], 4);
}

TEST(MetricsRegistryTest, EmptyRegistryDumpsAreWellFormed) {
  // A freshly constructed registry renders valid, empty expositions — a
  // scrape endpoint can come up before the first metric registers.
  MetricsRegistry reg;
  EXPECT_EQ(reg.ToPrometheusText(), "");
  const std::string json = reg.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_EQ(json, "{\"schema\":\"nestra-metrics-v1\",\"metrics\":[]}");
}

// ---------- engine integration: determinism contract ----------

TEST(TelemetryEngineTest, DeterministicCountersAcrossThreadsAndEngines) {
  TelemetryOffGuard guard;
  Catalog catalog;
  testing_util::QueryGenerator gen(20260807);
  gen.PopulateTables(&catalog);
  std::vector<std::string> queries;
  for (int i = 0; i < 12; ++i) queries.push_back(gen.RandomQuery());

  telemetry::SetMetricsEnabled(true);
  std::map<std::string, double> baseline;
  std::string baseline_config;
  for (const int threads : {1, 2, 8}) {
    for (const bool vectorized : {false, true}) {
      MetricsRegistry::Global().ResetValues();
      NraOptions options;
      options.num_threads = threads;
      options.vectorized = vectorized;
      NraExecutor exec(catalog, options);
      for (const std::string& sql : queries) {
        const Result<Table> result = exec.ExecuteSql(sql);
        ASSERT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
      }
      const std::map<std::string, double> values =
          MetricsRegistry::Global().DeterministicValues();
      const std::string config = "threads=" + std::to_string(threads) +
                                 " vectorized=" +
                                 (vectorized ? "true" : "false");
      if (baseline.empty()) {
        baseline = values;
        baseline_config = config;
        EXPECT_EQ(values.at("nestra_queries_total"),
                  static_cast<double>(queries.size()));
        EXPECT_GT(values.at("nestra_rows_out_total"), 0);
        EXPECT_GT(values.at("nestra_plans_verified_total"), 0);
        EXPECT_GT(values.at("nestra_phase_stages_total{phase=\"unnest-join\"}"),
                  0);
      } else {
        EXPECT_EQ(values, baseline) << config << " vs " << baseline_config;
      }
    }
  }
}

TEST(TelemetryEngineTest, VerifyFailureCountsAsErrorAndFailure) {
  TelemetryOffGuard guard;
  Catalog catalog;
  testing_util::RegisterPaperRelations(&catalog);
  telemetry::SetMetricsEnabled(true);
  MetricsRegistry::Global().ResetValues();
  NraExecutor exec(catalog, NraOptions::Optimized());
  // Unknown column -> binder error, counted once by the SQL entry point.
  const Result<Table> bad = exec.ExecuteSql("select nope from r");
  EXPECT_FALSE(bad.ok());
  const std::map<std::string, double> values =
      MetricsRegistry::Global().DeterministicValues();
  EXPECT_EQ(values.at("nestra_query_errors_total"), 1);
  EXPECT_EQ(values.at("nestra_queries_total"), 0);
}

// ---------- trace sink ----------

TEST(TelemetryTraceTest, TraceJsonIsWellFormedWithPoolTaskSpans) {
  TelemetryOffGuard guard;
  const std::string path = ::testing::TempDir() + "nestra_trace_test.json";
  telemetry::InstallTraceSink(path);
  ASSERT_TRUE(telemetry::TraceEnabled());

  Catalog catalog;
  testing_util::RegisterPaperRelations(&catalog);
  NraOptions options;
  options.num_threads = 8;
  NraExecutor exec(catalog, options);
  ASSERT_OK(
      exec.ExecuteSql(
              "select a from r where exists (select e from s where e = a)")
          .status());
  // The tiny paper relations may not fan out; force pool-task spans so the
  // worker-track assertion is deterministic.
  ParallelForEach(16, 4, [](int64_t) {});

  telemetry::FlushTrace();
  telemetry::UninstallTraceSink();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  EXPECT_TRUE(JsonChecker(text).Valid()) << text;
  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);

  // One event per line: collect (name -> tids) for the complete events and
  // the thread names from the metadata events.
  std::map<std::string, std::set<int>> span_tids;
  std::set<int> worker_tids;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    auto field = [&line](const std::string& key) -> std::string {
      const std::string probe = "\"" + key + "\":";
      const size_t at = line.find(probe);
      if (at == std::string::npos) return "";
      size_t begin = at + probe.size();
      size_t end = begin;
      if (line[begin] == '"') {
        ++begin;
        end = line.find('"', begin);
      } else {
        while (end < line.size() && line[end] != ',' && line[end] != '}') {
          ++end;
        }
      }
      return line.substr(begin, end - begin);
    };
    if (line.find("\"ph\":\"X\"") != std::string::npos) {
      EXPECT_NE(line.find("\"ts\":"), std::string::npos) << line;
      EXPECT_NE(line.find("\"dur\":"), std::string::npos) << line;
      span_tids[field("name")].insert(std::atoi(field("tid").c_str()));
    } else if (line.find("\"ph\":\"M\"") != std::string::npos &&
               line.find("pool-worker") != std::string::npos) {
      worker_tids.insert(std::atoi(field("tid").c_str()));
    }
  }

  for (const char* required :
       {"parse", "plan", "verify", "execute", "finish", "pool-task"}) {
    EXPECT_TRUE(span_tids.count(required)) << "missing span: " << required;
  }
  // Pool-task spans sit on pool-worker tracks, not on the query thread.
  ASSERT_FALSE(worker_tids.empty());
  for (const int tid : span_tids["pool-task"]) {
    EXPECT_TRUE(worker_tids.count(tid)) << "pool-task on tid " << tid;
  }
  for (const int tid : span_tids["parse"]) {
    EXPECT_FALSE(worker_tids.count(tid)) << "parse on worker tid " << tid;
  }
  std::remove(path.c_str());
}

TEST(TelemetryTraceTest, OptionsTracePathInstallsSink) {
  TelemetryOffGuard guard;
  const std::string path = ::testing::TempDir() + "nestra_trace_opts.json";
  Catalog catalog;
  testing_util::RegisterPaperRelations(&catalog);
  NraOptions options;
  options.trace_path = path;
  NraExecutor exec(catalog, options);
  EXPECT_FALSE(telemetry::TraceEnabled());
  ASSERT_OK(exec.ExecuteSql("select a from r").status());
  EXPECT_TRUE(telemetry::TraceEnabled());
  telemetry::FlushTrace();
  telemetry::UninstallTraceSink();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(JsonChecker(buffer.str()).Valid());
  EXPECT_NE(buffer.str().find("\"name\":\"execute\""), std::string::npos);
  std::remove(path.c_str());
}

// ---------- slow-query log ----------

TEST(TelemetrySlowQueryTest, JsonLineEscapesAndLabelsEngine) {
  telemetry::SlowQueryRecord rec;
  rec.sql = "select \"x\"\nfrom r";
  rec.total_ms = 12.5;
  rec.join_ms = 7.25;
  rec.nest_select_ms = 3;
  rec.output_rows = 42;
  rec.num_threads = 4;
  rec.vectorized = true;
  const std::string line = telemetry::SlowQueryJsonLine(rec);
  EXPECT_TRUE(JsonChecker(line).Valid()) << line;
  EXPECT_NE(line.find("\"event\":\"slow_query\""), std::string::npos);
  EXPECT_NE(line.find("\\\"x\\\"\\nfrom"), std::string::npos);
  EXPECT_NE(line.find("\"engine\":\"vectorized\""), std::string::npos);
  EXPECT_NE(line.find("\"rows\":42"), std::string::npos);
  EXPECT_NE(line.find("\"threads\":4"), std::string::npos);
  rec.vectorized = false;
  EXPECT_NE(telemetry::SlowQueryJsonLine(rec).find("\"engine\":\"row\""),
            std::string::npos);
}

TEST(TelemetrySlowQueryTest, JsonLineSchemaIsPinned) {
  // Pins the whole line byte-for-byte to the schema documented in
  // bench/README.md: downstream parsers key on exact field names and order,
  // so a rename, reorder, or dropped field must break here first.
  telemetry::SlowQueryRecord rec;
  rec.session = "s7";
  rec.sql = "SELECT 1";
  rec.total_ms = 12.5;
  rec.join_ms = 3.25;
  rec.nest_select_ms = 1.125;
  rec.output_rows = 42;
  rec.peak_mem_bytes = 65536;
  rec.num_threads = 8;
  rec.vectorized = true;
  rec.ok = true;
  const std::string line = telemetry::SlowQueryJsonLine(rec);
  EXPECT_TRUE(JsonChecker(line).Valid()) << line;
  EXPECT_EQ(line,
            "{\"event\":\"slow_query\",\"session\":\"s7\",\"sql\":\"SELECT 1\","
            "\"total_ms\":12.500,\"join_ms\":3.250,\"nest_select_ms\":1.125,"
            "\"rows\":42,\"peak_mem_bytes\":65536,\"threads\":8,"
            "\"engine\":\"vectorized\",\"ok\":true}");
  // Without a session the field is omitted entirely (not rendered empty),
  // keeping pre-session consumers byte-compatible.
  rec.session.clear();
  rec.vectorized = false;
  rec.ok = false;
  const std::string anon = telemetry::SlowQueryJsonLine(rec);
  EXPECT_EQ(anon.find("\"session\""), std::string::npos);
  EXPECT_NE(anon.find("\"engine\":\"row\",\"ok\":false"), std::string::npos);
}

TEST(TelemetrySlowQueryTest, FiresOnlyAboveThreshold) {
  TelemetryOffGuard guard;
  std::vector<std::string> lines;
  telemetry::SetSlowQuerySink(
      [&lines](const std::string& line) { lines.push_back(line); });

  Catalog catalog;
  testing_util::RegisterPaperRelations(&catalog);
  const std::string sql = "select a from r where a > 1";

  NraOptions fast;
  fast.slow_query_ms = 1e9;  // nothing is this slow
  ASSERT_OK(NraExecutor(catalog, fast).ExecuteSql(sql).status());
  EXPECT_TRUE(lines.empty());

  NraOptions slow;
  slow.slow_query_ms = 1e-6;  // everything is this slow
  ASSERT_OK(NraExecutor(catalog, slow).ExecuteSql(sql).status());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(JsonChecker(lines[0]).Valid()) << lines[0];
  EXPECT_NE(lines[0].find("\"event\":\"slow_query\""), std::string::npos);
  EXPECT_NE(lines[0].find(sql), std::string::npos);

  // Compound statements log once for the whole statement.
  ASSERT_OK(NraExecutor(catalog, slow)
                .ExecuteStatementSql(sql + " union all " + sql)
                .status());
  EXPECT_EQ(lines.size(), 2u);

  // slow_query_ms = 0 (default) disables the log entirely.
  NraOptions off;
  ASSERT_OK(NraExecutor(catalog, off).ExecuteSql(sql).status());
  EXPECT_EQ(lines.size(), 2u);
}

// ---------- zero overhead & stats hygiene ----------

TEST(TelemetryOverheadTest, DisabledTelemetryTouchesNothing) {
  TelemetryOffGuard guard;
  telemetry::SetMetricsEnabled(false);
  telemetry::UninstallTraceSink();
  MetricsRegistry::Global().ResetValues();
  const std::map<std::string, double> before =
      MetricsRegistry::Global().DeterministicValues();

  Catalog catalog;
  testing_util::RegisterPaperRelations(&catalog);
  NraExecutor exec(catalog, NraOptions::Optimized());
  ASSERT_OK(
      exec.ExecuteSql(
              "select a from r where exists (select e from s where e = a)")
          .status());

  EXPECT_EQ(MetricsRegistry::Global().DeterministicValues(), before);
  EXPECT_FALSE(telemetry::TraceEnabled());

  // With every consumer off, CollectProfiled must not enable per-operator
  // timing: the drained node's clocks stay untouched.
  Table t = testing_util::MakeTable(
      {"x"}, {{Value::Int64(1)}, {Value::Int64(2)}, {Value::Int64(3)}});
  TableSourceNode node{std::move(t)};
  ASSERT_OK(CollectProfiled(&node, QueryPhase::kPostProcessing, "drain",
                            /*profile=*/nullptr)
                .status());
  EXPECT_EQ(node.stats().open_seconds, 0);
  EXPECT_EQ(node.stats().next_seconds, 0);
  EXPECT_EQ(node.stats().rows_out, 3);
}

TEST(OperatorStatsTest, ReopenResetsPerRunCounters) {
  // Regression: a node re-used across Open() calls must not leak the
  // previous run's counters (or timings) into the next run's snapshot.
  Table t = testing_util::MakeTable(
      {"x"}, {{Value::Int64(1)}, {Value::Int64(2)}, {Value::Int64(3)}});
  TableSourceNode node{std::move(t)};
  node.EnableTimingRecursive();

  ASSERT_OK(CollectTable(&node).status());
  EXPECT_EQ(node.stats().rows_out, 3);
  EXPECT_EQ(node.stats().open_calls, 1);
  const int64_t first_next_calls = node.stats().next_calls;

  ASSERT_OK(CollectTable(&node).status());
  EXPECT_EQ(node.stats().rows_out, 3) << "rows_out doubled across re-open";
  EXPECT_EQ(node.stats().next_calls, first_next_calls);
  EXPECT_EQ(node.stats().open_calls, 2) << "open_calls must stay cumulative";
}

TEST(OperatorStatsTest, ExplainAnalyzeMarksAdapterBatches) {
  Catalog catalog;
  testing_util::RegisterPaperRelations(&catalog);
  NraOptions options;
  options.num_threads = 1;
  options.vectorized = true;
  // DISTINCT has no native batch implementation, so its batches come from
  // the row adapter and the renderer must say so.
  const Result<std::string> text =
      ExplainAnalyzeSql("select distinct b from r", catalog, options);
  ASSERT_OK(text.status());
  EXPECT_NE(text->find("batches="), std::string::npos) << *text;
  EXPECT_NE(text->find("(adapter="), std::string::npos) << *text;
}

}  // namespace
}  // namespace nestra
