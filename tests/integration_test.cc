// End-to-end: the paper's experiment queries (Section 5.2) on generated
// TPC-H data, cross-checking every evaluation strategy against the
// nested-iteration oracle.

#include <gtest/gtest.h>

#include "baseline/native_optimizer.h"
#include "baseline/nested_iteration.h"
#include "common/date.h"
#include "nra/executor.h"
#include "plan/binder.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "test_util.h"

namespace nestra {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig config;
    config.scale = 0.04;  // 600 orders / 80 parts: seconds, not minutes
    config.declare_not_null = true;
    ASSERT_OK(PopulateTpch(&catalog_, config));
  }

  std::string Query1Sql() {
    const Table* orders = *catalog_.GetTable("orders");
    const Value lo = *ColumnQuantile(*orders, "o_orderdate", 0.2);
    const Value hi = *ColumnQuantile(*orders, "o_orderdate", 0.8);
    return MakeQuery1(FormatDate(lo.int64()), FormatDate(hi.int64()));
  }

  void CheckAllStrategiesAgree(const std::string& sql) {
    NestedIterationExecutor oracle(catalog_, {.use_indexes = false});
    ASSERT_OK_AND_ASSIGN(Table expected, oracle.ExecuteSql(sql));

    NestedIterationExecutor indexed(catalog_, {.use_indexes = true});
    ASSERT_OK_AND_ASSIGN(Table via_index, indexed.ExecuteSql(sql));
    EXPECT_TRUE(Table::BagEquals(expected, via_index)) << sql;

    for (const NraOptions& opts : {NraOptions::Original(),
                                   NraOptions::Optimized()}) {
      NraExecutor exec(catalog_, opts);
      ASSERT_OK_AND_ASSIGN(Table actual, exec.ExecuteSql(sql));
      EXPECT_TRUE(Table::BagEquals(expected, actual))
          << sql << "\n(" << opts.ToString() << ") expected "
          << expected.num_rows() << " rows, got " << actual.num_rows();
    }

    NativePlanChoice choice;
    ASSERT_OK_AND_ASSIGN(Table native,
                         ExecuteNativeSql(sql, catalog_, {}, &choice));
    EXPECT_TRUE(Table::BagEquals(expected, native))
        << sql << "\nnative plan: " << choice.explanation;
  }

  Catalog catalog_;
};

TEST_F(IntegrationTest, Query1) { CheckAllStrategiesAgree(Query1Sql()); }

TEST_F(IntegrationTest, Query2aMixed) {
  CheckAllStrategiesAgree(
      MakeQuery2(10, 40, 5000, 25, OuterLink::kAny, InnerLink::kNotExists));
}

TEST_F(IntegrationTest, Query2bNegative) {
  CheckAllStrategiesAgree(
      MakeQuery2(10, 40, 5000, 25, OuterLink::kAll, InnerLink::kNotExists));
}

TEST_F(IntegrationTest, Query3aMixedAllVariants) {
  for (const Query3Variant v : {Query3Variant::kVariantA,
                                Query3Variant::kVariantB,
                                Query3Variant::kVariantC}) {
    CheckAllStrategiesAgree(MakeQuery3(10, 40, 5000, 25, OuterLink::kAll,
                                       InnerLink::kExists, v));
  }
}

TEST_F(IntegrationTest, Query3bNegativeAllVariants) {
  for (const Query3Variant v : {Query3Variant::kVariantA,
                                Query3Variant::kVariantB,
                                Query3Variant::kVariantC}) {
    CheckAllStrategiesAgree(MakeQuery3(10, 40, 5000, 25, OuterLink::kAll,
                                       InnerLink::kNotExists, v));
  }
}

TEST_F(IntegrationTest, Query3cPositiveAllVariants) {
  for (const Query3Variant v : {Query3Variant::kVariantA,
                                Query3Variant::kVariantB,
                                Query3Variant::kVariantC}) {
    CheckAllStrategiesAgree(MakeQuery3(10, 40, 5000, 25, OuterLink::kAny,
                                       InnerLink::kExists, v));
  }
}

TEST_F(IntegrationTest, Query1WithNullExtendedPrices) {
  // The paper's point: drop the NOT NULL guarantee and inject NULLs — every
  // strategy must still agree (System A switches to nested iteration; the
  // NRA pipeline is unchanged).
  Catalog with_nulls;
  TpchConfig config;
  config.scale = 0.04;
  config.null_l_extendedprice = 0.05;
  ASSERT_OK(PopulateTpch(&with_nulls, config));

  const Table* orders = *with_nulls.GetTable("orders");
  const Value lo = *ColumnQuantile(*orders, "o_orderdate", 0.2);
  const Value hi = *ColumnQuantile(*orders, "o_orderdate", 0.8);
  const std::string sql =
      MakeQuery1(FormatDate(lo.int64()), FormatDate(hi.int64()));

  NestedIterationExecutor oracle(with_nulls, {.use_indexes = false});
  ASSERT_OK_AND_ASSIGN(Table expected, oracle.ExecuteSql(sql));
  for (const NraOptions& opts : {NraOptions::Original(),
                                 NraOptions::Optimized()}) {
    NraExecutor exec(with_nulls, opts);
    ASSERT_OK_AND_ASSIGN(Table actual, exec.ExecuteSql(sql));
    EXPECT_TRUE(Table::BagEquals(expected, actual)) << opts.ToString();
  }
  NativePlanChoice choice;
  ASSERT_OK_AND_ASSIGN(Table native,
                       ExecuteNativeSql(sql, with_nulls, {}, &choice));
  EXPECT_EQ(choice.kind, NativePlanKind::kNestedIteration);
  EXPECT_TRUE(Table::BagEquals(expected, native));
}

TEST_F(IntegrationTest, Query1NativeUsesAntijoinUnderNotNull) {
  // With declared NOT NULL columns the native optimizer unnests Query 1
  // into the antijoin pipeline (the Section 5.2 footnote).
  ASSERT_OK_AND_ASSIGN(QueryBlockPtr root,
                       ParseAndBind(Query1Sql(), catalog_));
  EXPECT_EQ(ChooseNativePlan(*root, catalog_).kind,
            NativePlanKind::kSemiAntiPipeline);
}

TEST_F(IntegrationTest, Query3NativeNeverUsesAntijoin) {
  // "System A is unable to use antijoin in these queries, even though the
  // NOT NULL constraint is present" — the third block's correlation to the
  // non-adjacent part block rules the pipeline out.
  const std::string sql = MakeQuery3(10, 40, 5000, 25, OuterLink::kAll,
                                     InnerLink::kNotExists,
                                     Query3Variant::kVariantA);
  ASSERT_OK_AND_ASSIGN(QueryBlockPtr root, ParseAndBind(sql, catalog_));
  EXPECT_EQ(ChooseNativePlan(*root, catalog_).kind,
            NativePlanKind::kNestedIteration);
}

}  // namespace
}  // namespace nestra
