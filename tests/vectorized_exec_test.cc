// Equivalence of the vectorized batch engine and the row engine: for every
// query, every option set, and every parallelism degree, running with
// `NraOptions::vectorized` must produce results ROW-EXACTLY equal to the
// row-at-a-time run — same row order, same value representations (int64 vs
// float64), not merely bag-equal — and an identical EXPLAIN ANALYZE stage
// list. This is the engine's contract (DESIGN.md): batches are a transport
// between the same logical stages, so the choice of protocol can never
// leak into results or into the profile's (label, phase, rows_out) shape.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/date.h"
#include "nra/executor.h"
#include "nra/profile.h"
#include "query_generator.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::QueryGenerator;

constexpr int kThreadDegrees[] = {1, 2, 8};

// Row-exact equality: deep Value::operator== per cell, so a result that
// drifted to a different-but-numerically-equal representation (or a
// different row order) fails.
void ExpectRowExact(const Table& row_result, const Table& vec_result,
                    const std::string& context) {
  ASSERT_EQ(row_result.num_rows(), vec_result.num_rows()) << context;
  for (int64_t i = 0; i < row_result.num_rows(); ++i) {
    ASSERT_TRUE(row_result.rows()[static_cast<size_t>(i)] ==
                vec_result.rows()[static_cast<size_t>(i)])
        << context << "\nfirst divergence at row " << i << "\nrow engine:\n"
        << row_result.ToString() << "vectorized:\n"
        << vec_result.ToString();
  }
}

// The engines may use different operator trees inside a stage (the
// vectorized engine fuses scan+filter, the parallel engine runs morsels),
// but the stage list itself — label, paper phase, and row count per stage —
// is part of the deterministic query shape and must match exactly.
void ExpectSameStages(const QueryProfile& row_profile,
                      const QueryProfile& vec_profile,
                      const std::string& context) {
  ASSERT_EQ(row_profile.stages().size(), vec_profile.stages().size())
      << context;
  for (size_t i = 0; i < row_profile.stages().size(); ++i) {
    const ProfiledStage& r = row_profile.stages()[i];
    const ProfiledStage& v = vec_profile.stages()[i];
    EXPECT_EQ(r.label, v.label) << context << " (stage " << i << ")";
    EXPECT_EQ(r.phase, v.phase) << context << " (stage " << i << ")";
    EXPECT_EQ(r.rows_out, v.rows_out) << context << " (stage " << i << ")";
  }
}

std::vector<std::pair<std::string, NraOptions>> OptionVariants() {
  std::vector<std::pair<std::string, NraOptions>> configs;
  configs.emplace_back("optimized", NraOptions::Optimized());
  configs.emplace_back("original", NraOptions::Original());
  {
    NraOptions o = NraOptions::Optimized();
    o.push_down_nest = true;
    o.rewrite_positive = true;
    o.bottom_up_linear = true;
    configs.emplace_back("all-rewrites", o);
  }
  {
    NraOptions o = NraOptions::Optimized();
    o.magic_restriction = true;
    configs.emplace_back("magic", o);
  }
  return configs;
}

void CheckVectorizedMatchesRow(const Catalog& catalog,
                               const std::string& sql) {
  for (const auto& [name, base] : OptionVariants()) {
    for (const int threads : kThreadDegrees) {
      const std::string context =
          name + "/threads=" + std::to_string(threads) + "\n" + sql;

      NraOptions row_opts = base;
      row_opts.num_threads = threads;
      row_opts.vectorized = false;
      row_opts.profile = true;
      NraExecutor row_exec(catalog, row_opts);
      QueryProfile row_profile;
      Result<Table> row_result =
          row_exec.ExecuteSql(sql, nullptr, &row_profile);
      ASSERT_TRUE(row_result.ok())
          << context << ": " << row_result.status().ToString();

      NraOptions vec_opts = base;
      vec_opts.num_threads = threads;
      vec_opts.vectorized = true;
      vec_opts.profile = true;
      NraExecutor vec_exec(catalog, vec_opts);
      QueryProfile vec_profile;
      Result<Table> vec_result =
          vec_exec.ExecuteSql(sql, nullptr, &vec_profile);
      ASSERT_TRUE(vec_result.ok())
          << context << ": " << vec_result.status().ToString();

      ExpectRowExact(*row_result, *vec_result, context);
      ExpectSameStages(row_profile, vec_profile, context);
    }
  }
}

// ---------- The paper's experiment queries on TPC-H data ----------

class VectorizedTpchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig config;
    config.scale = 0.04;  // 600 orders / 80 parts: seconds, not minutes
    config.declare_not_null = true;
    ASSERT_OK(PopulateTpch(&catalog_, config));
  }

  std::string Query1Sql() {
    const Table* orders = *catalog_.GetTable("orders");
    const Value lo = *ColumnQuantile(*orders, "o_orderdate", 0.2);
    const Value hi = *ColumnQuantile(*orders, "o_orderdate", 0.8);
    return MakeQuery1(FormatDate(lo.int64()), FormatDate(hi.int64()));
  }

  Catalog catalog_;
};

TEST_F(VectorizedTpchTest, Query1) {
  CheckVectorizedMatchesRow(catalog_, Query1Sql());
}

TEST_F(VectorizedTpchTest, Query2aMixed) {
  CheckVectorizedMatchesRow(
      catalog_,
      MakeQuery2(10, 40, 5000, 25, OuterLink::kAny, InnerLink::kNotExists));
}

TEST_F(VectorizedTpchTest, Query2bNegative) {
  CheckVectorizedMatchesRow(
      catalog_,
      MakeQuery2(10, 40, 5000, 25, OuterLink::kAll, InnerLink::kNotExists));
}

TEST_F(VectorizedTpchTest, Query3aMixed) {
  CheckVectorizedMatchesRow(
      catalog_, MakeQuery3(10, 40, 5000, 25, OuterLink::kAll,
                           InnerLink::kExists, Query3Variant::kVariantA));
}

TEST_F(VectorizedTpchTest, Query3bNegative) {
  CheckVectorizedMatchesRow(
      catalog_, MakeQuery3(10, 40, 5000, 25, OuterLink::kAll,
                           InnerLink::kNotExists, Query3Variant::kVariantB));
}

TEST_F(VectorizedTpchTest, Query3cPositive) {
  CheckVectorizedMatchesRow(
      catalog_, MakeQuery3(10, 40, 5000, 25, OuterLink::kAny,
                           InnerLink::kExists, Query3Variant::kVariantC));
}

// ---------- Fuzzed query corpus ----------

class VectorizedFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VectorizedFuzzTest, VectorizedIsBitIdenticalToRowEngine) {
  QueryGenerator gen(GetParam());
  Catalog catalog;
  gen.PopulateTables(&catalog);

  for (int i = 0; i < 8; ++i) {
    const std::string sql = gen.RandomQuery();
    SCOPED_TRACE(sql);
    CheckVectorizedMatchesRow(catalog, sql);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorizedFuzzTest,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace nestra
