// Coverage for the small rendering / metadata surfaces: enum names,
// ToString implementations, stats formatting, nested-relation printing.

#include <gtest/gtest.h>

#include "common/pretty_print.h"
#include "nested/nest.h"
#include "nested/linking_predicate.h"
#include "nra/options.h"
#include "plan/binder.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;
using testing_util::RegisterPaperRelations;

TEST(NamesTest, LinkOps) {
  EXPECT_STREQ(LinkOpToString(LinkOp::kExists), "EXISTS");
  EXPECT_STREQ(LinkOpToString(LinkOp::kNotExists), "NOT EXISTS");
  EXPECT_STREQ(LinkOpToString(LinkOp::kIn), "IN");
  EXPECT_STREQ(LinkOpToString(LinkOp::kNotIn), "NOT IN");
  EXPECT_STREQ(LinkOpToString(LinkOp::kSome), "SOME");
  EXPECT_STREQ(LinkOpToString(LinkOp::kAll), "ALL");
}

TEST(NamesTest, PositiveNegativeTaxonomy) {
  EXPECT_TRUE(IsPositiveLinkOp(LinkOp::kExists));
  EXPECT_TRUE(IsPositiveLinkOp(LinkOp::kIn));
  EXPECT_TRUE(IsPositiveLinkOp(LinkOp::kSome));
  EXPECT_FALSE(IsPositiveLinkOp(LinkOp::kNotExists));
  EXPECT_FALSE(IsPositiveLinkOp(LinkOp::kNotIn));
  EXPECT_FALSE(IsPositiveLinkOp(LinkOp::kAll));
}

TEST(NamesTest, LinkAggAndTypeNames) {
  EXPECT_STREQ(LinkAggToString(LinkAgg::kCountStar), "count(*)");
  EXPECT_STREQ(LinkAggToString(LinkAgg::kAvg), "avg");
  EXPECT_STREQ(TypeIdToString(TypeId::kDate), "date");
  EXPECT_STREQ(TypeIdToString(TypeId::kString), "string");
}

TEST(LinkingPredicateTest, ToStringForms) {
  EXPECT_EQ(MakeLinkingPredicate(LinkOp::kNotExists, CmpOp::kEq, "", "g",
                                 "b", "k")
                .ToString(),
            "{g} = empty");
  EXPECT_EQ(MakeLinkingPredicate(LinkOp::kExists, CmpOp::kEq, "", "g", "b",
                                 "k")
                .ToString(),
            "{g} != empty");
  EXPECT_EQ(MakeLinkingPredicate(LinkOp::kAll, CmpOp::kGt, "a", "g", "b", "k")
                .ToString(),
            "a > ALL {b}");
  EXPECT_EQ(MakeAggregateLinkingPredicate(LinkAgg::kMax, CmpOp::kLe, "a",
                                          "g", "b", "k")
                .ToString(),
            "a <= max{b}");
}

TEST(LinkingPredicateTest, NegativityTaxonomy) {
  EXPECT_TRUE(MakeLinkingPredicate(LinkOp::kNotIn, CmpOp::kEq, "a", "g", "b",
                                   "k")
                  .IsNegative());
  EXPECT_FALSE(MakeLinkingPredicate(LinkOp::kIn, CmpOp::kEq, "a", "g", "b",
                                    "k")
                   .IsNegative());
  EXPECT_TRUE(MakeAggregateLinkingPredicate(LinkAgg::kCount, CmpOp::kEq, "a",
                                            "g", "b", "k")
                  .IsNegative());
}

TEST(OptionsTest, ToStringMentionsEveryFlag) {
  NraOptions o = NraOptions::Optimized();
  o.push_down_nest = true;
  o.magic_restriction = true;
  const std::string s = o.ToString();
  EXPECT_NE(s.find("fused=true"), std::string::npos);
  EXPECT_NE(s.find("push_down_nest=true"), std::string::npos);
  EXPECT_NE(s.find("magic_restriction=true"), std::string::npos);
  EXPECT_NE(s.find("rewrite_positive=false"), std::string::npos);
  EXPECT_NE(s.find("pipelined=true"), std::string::npos);

  NraStats stats;
  stats.intermediate_rows = 42;
  EXPECT_NE(stats.ToString().find("intermediate=42"), std::string::npos);
}

TEST(PrettyPrintTest, DatesRenderAsCalendarDates) {
  Table t{Schema({{"day", TypeId::kDate, true}})};
  t.AppendUnchecked(Row({Value::Date(0)}));
  t.AppendUnchecked(Row({N()}));
  const std::string s = PrettyPrintTable(t);
  EXPECT_NE(s.find("1970-01-01"), std::string::npos);
  EXPECT_NE(s.find("null"), std::string::npos);
}

TEST(NestedRelationPrintTest, RendersGroupsInBraces) {
  const Table flat = MakeTable({"g", "x"}, {{I(1), I(10)}, {I(1), I(20)}});
  ASSERT_OK_AND_ASSIGN(NestedRelation rel, Nest(flat, {"g"}, {"x"}, "grp"));
  const std::string s = rel.ToString();
  EXPECT_NE(s.find("{(10), (20)}"), std::string::npos) << s;
  EXPECT_NE(s.find("grp"), std::string::npos);
}

TEST(QueryBlockPrintTest, RendersStructure) {
  Catalog catalog;
  RegisterPaperRelations(&catalog);
  ASSERT_OK_AND_ASSIGN(QueryBlockPtr root,
                       ParseAndBind(testing_util::kQueryQ, catalog));
  const std::string s = root->ToString();
  EXPECT_NE(s.find("Block 1: FROM r"), std::string::npos);
  EXPECT_NE(s.find("link: r.b"), std::string::npos);
  EXPECT_NE(s.find("NOT IN"), std::string::npos);
  EXPECT_NE(s.find("key: s.i"), std::string::npos);
}

TEST(SchemaPrintTest, NotNullShown) {
  const Schema s({{"a", TypeId::kInt64, false}, {"b", TypeId::kString, true}});
  const std::string text = s.ToString();
  EXPECT_NE(text.find("a: int64 NOT NULL"), std::string::npos);
  EXPECT_NE(text.find("b: string"), std::string::npos);
}

}  // namespace
}  // namespace nestra
