// Properties of the query-profiling subsystem (EXPLAIN ANALYZE):
//
//  * the stage list — (label, phase, rows_out) — is a deterministic
//    function of the query and options, identical across num_threads
//    1/2/8; only timings vary (DESIGN.md §7);
//  * profile.output_rows equals the returned table's cardinality, which
//    equals the serial nested-iteration oracle's;
//  * with profiling off the sink is never touched, so callers can reuse
//    one QueryProfile across profiled and unprofiled runs;
//  * with an IoSim installed, the profile's I/O totals equal the
//    simulator's counter deltas and scans attribute their own accesses.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "baseline/nested_iteration.h"
#include "common/date.h"
#include "nra/executor.h"
#include "nra/profile.h"
#include "query_generator.h"
#include "storage/io_sim.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::QueryGenerator;

constexpr int kThreadDegrees[] = {1, 2, 8};

struct StageKey {
  std::string label;
  QueryPhase phase;
  int64_t rows_out;
};

std::vector<StageKey> Keys(const QueryProfile& profile) {
  std::vector<StageKey> keys;
  for (const ProfiledStage& stage : profile.stages()) {
    keys.push_back({stage.label, stage.phase, stage.rows_out});
  }
  return keys;
}

std::string Describe(const std::vector<StageKey>& keys) {
  std::string out;
  for (const StageKey& k : keys) {
    out += k.label + " (" + QueryPhaseLabel(k.phase) +
           ", rows_out=" + std::to_string(k.rows_out) + ")\n";
  }
  return out;
}

// Runs `sql` profiled at every thread degree under `base` options and
// checks the stage list and output cardinality never change.
void CheckProfileThreadInvariant(const Catalog& catalog,
                                 const std::string& sql,
                                 const NraOptions& base,
                                 const std::string& name) {
  std::vector<StageKey> ref;
  int64_t ref_rows = -1;
  for (const int threads : kThreadDegrees) {
    NraOptions opts = base;
    opts.num_threads = threads;
    opts.profile = true;
    NraExecutor exec(catalog, opts);
    QueryProfile profile;
    Result<Table> r = exec.ExecuteSql(sql, nullptr, &profile);
    ASSERT_TRUE(r.ok()) << name << "/threads=" << threads << ": "
                        << r.status().ToString();
    EXPECT_EQ(profile.output_rows, r->num_rows())
        << name << "/threads=" << threads;
    EXPECT_FALSE(profile.stages().empty()) << name;
    const std::vector<StageKey> keys = Keys(profile);
    if (threads == 1) {
      ref = keys;
      ref_rows = r->num_rows();
      continue;
    }
    EXPECT_EQ(r->num_rows(), ref_rows) << name << "/threads=" << threads;
    ASSERT_EQ(keys.size(), ref.size())
        << name << "/threads=" << threads << "\nserial stages:\n"
        << Describe(ref) << "parallel stages:\n"
        << Describe(keys);
    for (size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(keys[i].label, ref[i].label)
          << name << "/threads=" << threads << " stage " << i;
      EXPECT_EQ(keys[i].phase, ref[i].phase)
          << name << "/threads=" << threads << " stage " << i;
      EXPECT_EQ(keys[i].rows_out, ref[i].rows_out)
          << name << "/threads=" << threads << " stage " << i << " ("
          << keys[i].label << ")";
    }
  }
}

std::vector<std::pair<std::string, NraOptions>> OptionVariants() {
  std::vector<std::pair<std::string, NraOptions>> configs;
  configs.emplace_back("optimized", NraOptions::Optimized());
  configs.emplace_back("original", NraOptions::Original());
  {
    NraOptions o = NraOptions::Optimized();
    o.push_down_nest = true;
    o.rewrite_positive = true;
    o.bottom_up_linear = true;
    configs.emplace_back("all-rewrites", o);
  }
  return configs;
}

// ---------- The paper's experiment queries on TPC-H data ----------

class ProfileTpchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig config;
    config.scale = 0.04;
    config.declare_not_null = true;
    ASSERT_OK(PopulateTpch(&catalog_, config));
  }

  std::string Query1Sql() {
    const Table* orders = *catalog_.GetTable("orders");
    const Value lo = *ColumnQuantile(*orders, "o_orderdate", 0.2);
    const Value hi = *ColumnQuantile(*orders, "o_orderdate", 0.8);
    return MakeQuery1(FormatDate(lo.int64()), FormatDate(hi.int64()));
  }

  Catalog catalog_;
};

TEST_F(ProfileTpchTest, Query1StagesAreThreadInvariant) {
  const std::string sql = Query1Sql();
  for (const auto& [name, opts] : OptionVariants()) {
    CheckProfileThreadInvariant(catalog_, sql, opts, name);
  }
}

TEST_F(ProfileTpchTest, Query2StagesAreThreadInvariant) {
  const std::string sql =
      MakeQuery2(10, 40, 5000, 25, OuterLink::kAny, InnerLink::kNotExists);
  for (const auto& [name, opts] : OptionVariants()) {
    CheckProfileThreadInvariant(catalog_, sql, opts, name);
  }
}

TEST_F(ProfileTpchTest, Query3StagesAreThreadInvariant) {
  const std::string sql = MakeQuery3(10, 40, 5000, 25, OuterLink::kAll,
                                     InnerLink::kExists,
                                     Query3Variant::kVariantA);
  for (const auto& [name, opts] : OptionVariants()) {
    CheckProfileThreadInvariant(catalog_, sql, opts, name);
  }
}

TEST_F(ProfileTpchTest, ProfiledRowsMatchOracle) {
  const std::string sql = Query1Sql();
  NestedIterationExecutor oracle(catalog_, {.use_indexes = false});
  ASSERT_OK_AND_ASSIGN(Table expected, oracle.ExecuteSql(sql));
  for (const int threads : kThreadDegrees) {
    NraOptions opts = NraOptions::Optimized();
    opts.num_threads = threads;
    opts.profile = true;
    NraExecutor exec(catalog_, opts);
    QueryProfile profile;
    ASSERT_OK_AND_ASSIGN(Table actual, exec.ExecuteSql(sql, nullptr, &profile));
    EXPECT_TRUE(Table::BagEquals(expected, actual)) << "threads=" << threads;
    EXPECT_EQ(profile.output_rows, expected.num_rows())
        << "threads=" << threads;
  }
}

TEST_F(ProfileTpchTest, PhaseSplitCoversNestAndLinkingSelection) {
  NraOptions opts = NraOptions::Optimized();
  opts.num_threads = 1;
  opts.profile = true;
  // This test asserts the 3VL fused pipeline's phase attribution. The fixture
  // declares NOT NULL columns and TPC-H data is NULL-free, so with the
  // default two_valued=true Query 1's `> all` link would instead run as a
  // proven-2VL antijoin with no nest phase at all.
  opts.two_valued = false;
  NraExecutor exec(catalog_, opts);
  QueryProfile profile;
  ASSERT_OK_AND_ASSIGN(Table result,
                       exec.ExecuteSql(Query1Sql(), nullptr, &profile));
  (void)result;
  // Query 1 is a correlated subquery: unnest-join rows flow into the fused
  // nest + linking-selection pass, and the final projection is
  // post-processing. Every phase must have either rows or time attributed.
  EXPECT_GT(profile.PhaseRows(QueryPhase::kUnnestJoin), 0);
  EXPECT_GT(profile.PhaseSeconds(QueryPhase::kNest), 0.0);
  EXPECT_GT(profile.PhaseRows(QueryPhase::kLinkingSelection), 0);
  EXPECT_GT(profile.PhaseRows(QueryPhase::kPostProcessing), 0);
  EXPECT_GT(profile.total_seconds, 0.0);
  // The rendered report mentions every phase label.
  const std::string text = profile.ToString();
  for (const char* label :
       {"unnest-join", "nest", "linking-selection", "post-processing"}) {
    EXPECT_NE(text.find(label), std::string::npos) << text;
  }
  // The JSON document round-trips the same top-line numbers.
  const std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"schema\":\"nestra-query-profile-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"output_rows\":" +
                      std::to_string(profile.output_rows)),
            std::string::npos);
}

TEST_F(ProfileTpchTest, ThreadPoolUsageIsAttributed) {
  NraOptions opts = NraOptions::Optimized();
  opts.num_threads = 8;
  opts.profile = true;
  NraExecutor exec(catalog_, opts);
  QueryProfile profile;
  ASSERT_OK_AND_ASSIGN(Table result,
                       exec.ExecuteSql(Query1Sql(), nullptr, &profile));
  (void)result;
  // At scale 0.04 lineitem exceeds one morsel, so at least one stage fans
  // out to the shared pool.
  EXPECT_GT(profile.pool.parallel_loops, 0);
  EXPECT_GT(profile.pool.tasks_submitted, 0);
  int64_t stage_loops = 0;
  for (const ProfiledStage& stage : profile.stages()) {
    stage_loops += stage.pool.parallel_loops;
  }
  EXPECT_GT(stage_loops, 0);
  EXPECT_LE(stage_loops, profile.pool.parallel_loops);
}

// ---------- Profiling off / sink handling ----------

TEST_F(ProfileTpchTest, ProfileOffLeavesSinkUntouched) {
  NraOptions opts = NraOptions::Optimized();
  opts.profile = false;  // flag off, sink passed
  NraExecutor exec(catalog_, opts);
  QueryProfile profile;
  profile.output_rows = 42;  // sentinel
  ASSERT_OK_AND_ASSIGN(Table result,
                       exec.ExecuteSql(Query1Sql(), nullptr, &profile));
  (void)result;
  EXPECT_EQ(profile.output_rows, 42);
  EXPECT_TRUE(profile.stages().empty());
}

TEST_F(ProfileTpchTest, ProfileFlagWithoutSinkIsHarmless) {
  NraOptions opts = NraOptions::Optimized();
  opts.profile = true;  // flag on, no sink
  NraExecutor exec(catalog_, opts);
  ASSERT_OK_AND_ASSIGN(Table result, exec.ExecuteSql(Query1Sql()));
  EXPECT_GT(result.num_rows(), 0);
}

// ---------- IoSim attribution ----------

TEST_F(ProfileTpchTest, IoSimTotalsMatchSimulator) {
  IoSim sim;
  for (const std::string& name : catalog_.TableNames()) {
    sim.RegisterTable(*catalog_.GetTable(name));
  }
  IoSim::Install(&sim);
  for (const int threads : kThreadDegrees) {
    sim.Reset();
    NraOptions opts = NraOptions::Optimized();
    opts.num_threads = threads;
    opts.profile = true;
    NraExecutor exec(catalog_, opts);
    QueryProfile profile;
    const Result<Table> r = exec.ExecuteSql(Query1Sql(), nullptr, &profile);
    if (!r.ok()) {
      IoSim::Install(nullptr);
      FAIL() << r.status().ToString();
    }
    EXPECT_GT(profile.io_hits + profile.io_seq_misses +
                  profile.io_random_misses,
              0)
        << "threads=" << threads;
    EXPECT_EQ(profile.io_hits, sim.hits()) << "threads=" << threads;
    EXPECT_EQ(profile.io_seq_misses, sim.seq_misses())
        << "threads=" << threads;
    EXPECT_EQ(profile.io_random_misses, sim.random_misses())
        << "threads=" << threads;
    EXPECT_DOUBLE_EQ(profile.sim_io_millis, sim.SimMillis())
        << "threads=" << threads;
    // The base-table scans attribute their own accesses inside the stage
    // trees; summed, they equal the query totals (only scans touch the
    // simulator in this plan shape).
    int64_t tree_io = 0;
    for (const ProfiledStage& stage : profile.stages()) {
      if (!stage.has_tree) continue;
      std::vector<const ProfiledOperator*> work{&stage.tree};
      while (!work.empty()) {
        const ProfiledOperator* op = work.back();
        work.pop_back();
        tree_io += op->stats.io_hits + op->stats.io_seq_misses +
                   op->stats.io_random_misses;
        for (const ProfiledOperator& child : op->children) {
          work.push_back(&child);
        }
      }
    }
    EXPECT_EQ(tree_io, profile.io_hits + profile.io_seq_misses +
                           profile.io_random_misses)
        << "threads=" << threads;
  }
  IoSim::Install(nullptr);
}

// ---------- Fuzzed query corpus ----------

class ProfileFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProfileFuzzTest, StageListsAreThreadInvariant) {
  QueryGenerator gen(GetParam());
  Catalog catalog;
  gen.PopulateTables(&catalog);

  for (int i = 0; i < 8; ++i) {
    const std::string sql = gen.RandomQuery();
    SCOPED_TRACE(sql);
    for (const auto& [name, opts] : OptionVariants()) {
      CheckProfileThreadInvariant(catalog, sql, opts, name);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileFuzzTest,
                         ::testing::Range<uint64_t>(0, 5));

}  // namespace
}  // namespace nestra
