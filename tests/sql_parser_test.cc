#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace nestra {
namespace {

TEST(LexerTest, BasicTokens) {
  ASSERT_OK_AND_ASSIGN(std::vector<Token> toks,
                       Tokenize("select a, b from t where a >= 1.5"));
  ASSERT_EQ(toks.size(), 11u);
  EXPECT_EQ(toks[0].kind, TokenKind::kSelect);
  EXPECT_EQ(toks[1].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[1].text, "a");
  EXPECT_EQ(toks[8].kind, TokenKind::kGe);
  EXPECT_EQ(toks[9].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ(toks[9].float_value, 1.5);
  EXPECT_EQ(toks.back().kind, TokenKind::kEof);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  ASSERT_OK_AND_ASSIGN(std::vector<Token> toks, Tokenize("SeLeCt NOT In"));
  EXPECT_EQ(toks[0].kind, TokenKind::kSelect);
  EXPECT_EQ(toks[1].kind, TokenKind::kNot);
  EXPECT_EQ(toks[2].kind, TokenKind::kIn);
}

TEST(LexerTest, StringLiteralsAndEscapes) {
  ASSERT_OK_AND_ASSIGN(std::vector<Token> toks, Tokenize("'it''s'"));
  EXPECT_EQ(toks[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(toks[0].text, "it's");
}

TEST(LexerTest, IntLiteralOverflowIsAnError) {
  // INT64_MAX is 9223372036854775807; one past it used to lex as a
  // saturated INT64_MAX and produce silently wrong comparisons.
  const Result<std::vector<Token>> r = Tokenize("9223372036854775808");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().ToString().find("out of range"), std::string::npos)
      << r.status().ToString();
  // The boundary value itself still lexes.
  ASSERT_OK_AND_ASSIGN(std::vector<Token> toks,
                       Tokenize("9223372036854775807"));
  EXPECT_EQ(toks[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(toks[0].int_value, INT64_MAX);
  // Grossly over-long literals are rejected too.
  EXPECT_FALSE(Tokenize("select a from t where a = 99999999999999999999999")
                   .ok());
}

TEST(LexerTest, FloatLiteralOverflowIsAnError) {
  const Result<std::vector<Token>> r = Tokenize("1" + std::string(400, '0') +
                                                ".0");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Values merely losing precision (or underflowing to subnormals) are not
  // errors — strtod represents them as closely as a double can.
  ASSERT_OK_AND_ASSIGN(std::vector<Token> toks, Tokenize("0.1"));
  EXPECT_EQ(toks[0].kind, TokenKind::kFloatLiteral);
}

TEST(LexerTest, NotEqualsVariants) {
  ASSERT_OK_AND_ASSIGN(std::vector<Token> t1, Tokenize("a <> b"));
  ASSERT_OK_AND_ASSIGN(std::vector<Token> t2, Tokenize("a != b"));
  EXPECT_EQ(t1[1].kind, TokenKind::kNe);
  EXPECT_EQ(t2[1].kind, TokenKind::kNe);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(ParserTest, SimpleSelect) {
  ASSERT_OK_AND_ASSIGN(AstSelectPtr sel,
                       ParseSelect("select a, t.b from t where a < 3"));
  EXPECT_FALSE(sel->distinct);
  ASSERT_EQ(sel->items.size(), 2u);
  EXPECT_EQ(sel->items[1].column, "t.b");
  ASSERT_EQ(sel->from.size(), 1u);
  ASSERT_NE(sel->where, nullptr);
  EXPECT_EQ(sel->where->kind, AstCond::Kind::kCompare);
}

TEST(ParserTest, DistinctStarAndAliases) {
  ASSERT_OK_AND_ASSIGN(AstSelectPtr sel,
                       ParseSelect("select distinct * from t1 x, t2 as y"));
  EXPECT_TRUE(sel->distinct);
  EXPECT_TRUE(sel->select_star);
  ASSERT_EQ(sel->from.size(), 2u);
  EXPECT_EQ(sel->from[0].alias, "x");
  EXPECT_EQ(sel->from[1].alias, "y");
}

TEST(ParserTest, AndOrNotPrecedence) {
  ASSERT_OK_AND_ASSIGN(
      AstSelectPtr sel,
      ParseSelect("select a from t where a = 1 or a = 2 and not a = 3"));
  // OR is the top node; AND binds tighter; NOT tighter still.
  ASSERT_EQ(sel->where->kind, AstCond::Kind::kOr);
  ASSERT_EQ(sel->where->children.size(), 2u);
  EXPECT_EQ(sel->where->children[1]->kind, AstCond::Kind::kAnd);
  EXPECT_EQ(sel->where->children[1]->children[1]->kind, AstCond::Kind::kNot);
}

TEST(ParserTest, InSubquery) {
  ASSERT_OK_AND_ASSIGN(
      AstSelectPtr sel,
      ParseSelect("select a from t where a not in (select b from u)"));
  ASSERT_EQ(sel->where->kind, AstCond::Kind::kInSubquery);
  EXPECT_TRUE(sel->where->negated);
  ASSERT_NE(sel->where->subquery, nullptr);
  EXPECT_EQ(sel->where->subquery->items[0].column, "b");
}

TEST(ParserTest, ExistsForms) {
  ASSERT_OK_AND_ASSIGN(
      AstSelectPtr s1,
      ParseSelect("select a from t where exists (select * from u)"));
  EXPECT_EQ(s1->where->kind, AstCond::Kind::kExistsSubquery);
  EXPECT_FALSE(s1->where->negated);
  ASSERT_OK_AND_ASSIGN(
      AstSelectPtr s2,
      ParseSelect("select a from t where not exists (select * from u)"));
  EXPECT_EQ(s2->where->kind, AstCond::Kind::kExistsSubquery);
  EXPECT_TRUE(s2->where->negated);
}

TEST(ParserTest, QuantifiedSubqueries) {
  ASSERT_OK_AND_ASSIGN(
      AstSelectPtr sel,
      ParseSelect("select a from t where a > all (select b from u) and "
                  "a <= any (select b from u) and a = some (select b from u)"));
  ASSERT_EQ(sel->where->kind, AstCond::Kind::kAnd);
  const AstCond& all = *sel->where->children[0];
  EXPECT_EQ(all.kind, AstCond::Kind::kQuantifiedSubquery);
  EXPECT_EQ(all.quant, Quantifier::kAll);
  EXPECT_EQ(all.op, CmpOp::kGt);
  EXPECT_EQ(sel->where->children[1]->quant, Quantifier::kSome);
  EXPECT_EQ(sel->where->children[2]->quant, Quantifier::kSome);
}

TEST(ParserTest, BetweenDesugars) {
  ASSERT_OK_AND_ASSIGN(
      AstSelectPtr sel,
      ParseSelect("select a from t where a between 1 and 5"));
  ASSERT_EQ(sel->where->kind, AstCond::Kind::kAnd);
  EXPECT_EQ(sel->where->children[0]->op, CmpOp::kGe);
  EXPECT_EQ(sel->where->children[1]->op, CmpOp::kLe);
}

TEST(ParserTest, IsNullForms) {
  ASSERT_OK_AND_ASSIGN(
      AstSelectPtr sel,
      ParseSelect("select a from t where a is null and b is not null"));
  EXPECT_EQ(sel->where->children[0]->kind, AstCond::Kind::kIsNull);
  EXPECT_FALSE(sel->where->children[0]->negated);
  EXPECT_TRUE(sel->where->children[1]->negated);
}

TEST(ParserTest, NestedTwoLevels) {
  ASSERT_OK_AND_ASSIGN(AstSelectPtr sel, ParseSelect(testing_util::kQueryQ));
  ASSERT_EQ(sel->where->kind, AstCond::Kind::kAnd);
  const AstCond& notin = *sel->where->children[1];
  ASSERT_EQ(notin.kind, AstCond::Kind::kInSubquery);
  const AstSelect& sub = *notin.subquery;
  ASSERT_NE(sub.where, nullptr);
  // Inner-most block reachable.
  bool found_all = false;
  for (const AstCondPtr& c : sub.where->children) {
    if (c->kind == AstCond::Kind::kQuantifiedSubquery) found_all = true;
  }
  EXPECT_TRUE(found_all);
}

TEST(ParserTest, ParenthesizedConditions) {
  ASSERT_OK_AND_ASSIGN(
      AstSelectPtr sel,
      ParseSelect("select a from t where (a = 1 or a = 2) and b = 3"));
  ASSERT_EQ(sel->where->kind, AstCond::Kind::kAnd);
  EXPECT_EQ(sel->where->children[0]->kind, AstCond::Kind::kOr);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("select from t").ok());
  EXPECT_FALSE(ParseSelect("select a").ok());
  EXPECT_FALSE(ParseSelect("select a from t where").ok());
  EXPECT_FALSE(ParseSelect("select a from t where a in select b from u").ok());
  EXPECT_FALSE(ParseSelect("select a from t where a = 1 1").ok());
  EXPECT_FALSE(ParseSelect("select a from t where a >").ok());
}

TEST(ParserTest, InValueListDesugarsToOr) {
  ASSERT_OK_AND_ASSIGN(AstSelectPtr sel,
                       ParseSelect("select a from t where a in (1, 2, 3)"));
  ASSERT_EQ(sel->where->kind, AstCond::Kind::kOr);
  EXPECT_EQ(sel->where->children.size(), 3u);
  EXPECT_EQ(sel->where->children[0]->op, CmpOp::kEq);
}

TEST(ParserTest, NotInValueListDesugarsToNotOr) {
  ASSERT_OK_AND_ASSIGN(
      AstSelectPtr sel,
      ParseSelect("select a from t where a not in (1, 'x')"));
  ASSERT_EQ(sel->where->kind, AstCond::Kind::kNot);
  EXPECT_EQ(sel->where->children[0]->kind, AstCond::Kind::kOr);
}

TEST(ParserTest, SingleValueInListBecomesComparison) {
  ASSERT_OK_AND_ASSIGN(AstSelectPtr sel,
                       ParseSelect("select a from t where a in (7)"));
  EXPECT_EQ(sel->where->kind, AstCond::Kind::kCompare);
}

TEST(ParserTest, ToStringRoundTripParses) {
  ASSERT_OK_AND_ASSIGN(AstSelectPtr sel, ParseSelect(testing_util::kQueryQ));
  const std::string rendered = sel->ToString();
  ASSERT_OK_AND_ASSIGN(AstSelectPtr again, ParseSelect(rendered));
  EXPECT_EQ(again->ToString(), rendered);
}

}  // namespace
}  // namespace nestra
