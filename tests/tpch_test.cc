#include <gtest/gtest.h>

#include <set>

#include "common/date.h"
#include "tpch/random.h"
#include "tpch/tpch_gen.h"
#include "test_util.h"

namespace nestra {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(7);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(2);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

class TpchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.scale = 0.02;  // tiny for tests
    ASSERT_OK(PopulateTpch(&catalog_, config_));
  }
  TpchConfig config_;
  Catalog catalog_;
};

TEST_F(TpchTest, TablesRegisteredWithExpectedCardinalities) {
  ASSERT_OK_AND_ASSIGN(const Table* orders, catalog_.GetTable("orders"));
  ASSERT_OK_AND_ASSIGN(const Table* lineitem, catalog_.GetTable("lineitem"));
  ASSERT_OK_AND_ASSIGN(const Table* part, catalog_.GetTable("part"));
  ASSERT_OK_AND_ASSIGN(const Table* partsupp, catalog_.GetTable("partsupp"));
  EXPECT_EQ(orders->num_rows(), 300);
  EXPECT_EQ(part->num_rows(), 40);
  EXPECT_EQ(partsupp->num_rows(), 40 * 4);
  // Lineitem averages (1+7)/2 = 4 rows per order.
  EXPECT_GT(lineitem->num_rows(), 300 * 2);
  EXPECT_LT(lineitem->num_rows(), 300 * 7);
}

TEST_F(TpchTest, PrimaryKeysAreUniqueAndNotNull) {
  for (const auto& [table_name, pk] :
       std::vector<std::pair<std::string, std::string>>{
           {"orders", "o_orderkey"},
           {"lineitem", "l_rowid"},
           {"part", "p_partkey"},
           {"partsupp", "ps_rowid"}}) {
    ASSERT_OK_AND_ASSIGN(const Table* t, catalog_.GetTable(table_name));
    ASSERT_OK_AND_ASSIGN(const TableMetadata* meta,
                         catalog_.GetMetadata(table_name));
    EXPECT_EQ(meta->primary_key, pk);
    const int idx = t->schema().IndexOfExact(pk);
    ASSERT_GE(idx, 0);
    std::set<int64_t> seen;
    for (const Row& r : t->rows()) {
      ASSERT_FALSE(r[idx].is_null());
      EXPECT_TRUE(seen.insert(r[idx].int64()).second)
          << "duplicate PK in " << table_name;
    }
  }
}

TEST_F(TpchTest, ReferentialIntegrity) {
  ASSERT_OK_AND_ASSIGN(const Table* lineitem, catalog_.GetTable("lineitem"));
  ASSERT_OK_AND_ASSIGN(const Table* orders, catalog_.GetTable("orders"));
  ASSERT_OK_AND_ASSIGN(const Table* part, catalog_.GetTable("part"));
  const int64_t max_order = orders->num_rows();
  const int64_t max_part = part->num_rows();
  const int ok_idx = lineitem->schema().IndexOfExact("l_orderkey");
  const int pk_idx = lineitem->schema().IndexOfExact("l_partkey");
  for (const Row& r : lineitem->rows()) {
    EXPECT_GE(r[ok_idx].int64(), 1);
    EXPECT_LE(r[ok_idx].int64(), max_order);
    EXPECT_GE(r[pk_idx].int64(), 1);
    EXPECT_LE(r[pk_idx].int64(), max_part);
  }
}

TEST_F(TpchTest, LineitemSupplierComesFromPartsupp) {
  // The Query 2/3 correlation (ps_partkey = l_partkey AND ps_suppkey =
  // l_suppkey) must be satisfiable: every lineitem (partkey, suppkey) pair
  // exists in partsupp.
  ASSERT_OK_AND_ASSIGN(const Table* lineitem, catalog_.GetTable("lineitem"));
  ASSERT_OK_AND_ASSIGN(const Table* partsupp, catalog_.GetTable("partsupp"));
  std::set<std::pair<int64_t, int64_t>> pairs;
  const int pp = partsupp->schema().IndexOfExact("ps_partkey");
  const int ps = partsupp->schema().IndexOfExact("ps_suppkey");
  for (const Row& r : partsupp->rows()) {
    pairs.insert({r[pp].int64(), r[ps].int64()});
  }
  const int lp = lineitem->schema().IndexOfExact("l_partkey");
  const int ls = lineitem->schema().IndexOfExact("l_suppkey");
  for (const Row& r : lineitem->rows()) {
    EXPECT_TRUE(pairs.count({r[lp].int64(), r[ls].int64()}) > 0);
  }
}

TEST_F(TpchTest, DeterministicForSameSeed) {
  Catalog again;
  ASSERT_OK(PopulateTpch(&again, config_));
  for (const std::string& name : catalog_.TableNames()) {
    ASSERT_OK_AND_ASSIGN(const Table* a, catalog_.GetTable(name));
    ASSERT_OK_AND_ASSIGN(const Table* b, again.GetTable(name));
    EXPECT_TRUE(Table::BagEquals(*a, *b)) << name;
  }
}

TEST_F(TpchTest, NullInjection) {
  TpchConfig cfg = config_;
  cfg.null_l_extendedprice = 0.3;
  Catalog with_nulls;
  ASSERT_OK(PopulateTpch(&with_nulls, cfg));
  ASSERT_OK_AND_ASSIGN(const Table* lineitem, with_nulls.GetTable("lineitem"));
  const int idx = lineitem->schema().IndexOfExact("l_extendedprice");
  int64_t nulls = 0;
  for (const Row& r : lineitem->rows()) nulls += r[idx].is_null() ? 1 : 0;
  const double frac =
      static_cast<double>(nulls) / static_cast<double>(lineitem->num_rows());
  EXPECT_NEAR(frac, 0.3, 0.08);
  // Metadata: without declare_not_null nothing is NOT NULL except PKs.
  EXPECT_FALSE(with_nulls.IsNotNull("lineitem", "l_extendedprice"));
}

TEST_F(TpchTest, NotNullDeclarations) {
  TpchConfig cfg = config_;
  cfg.declare_not_null = true;
  Catalog c;
  ASSERT_OK(PopulateTpch(&c, cfg));
  EXPECT_TRUE(c.IsNotNull("lineitem", "l_extendedprice"));
  EXPECT_TRUE(c.IsNotNull("partsupp", "ps_supplycost"));
  EXPECT_TRUE(c.IsNotNull("orders", "o_totalprice"));
}

TEST_F(TpchTest, ColumnQuantileOrdersDates) {
  ASSERT_OK_AND_ASSIGN(const Table* orders, catalog_.GetTable("orders"));
  ASSERT_OK_AND_ASSIGN(Value lo, ColumnQuantile(*orders, "o_orderdate", 0.1));
  ASSERT_OK_AND_ASSIGN(Value hi, ColumnQuantile(*orders, "o_orderdate", 0.9));
  EXPECT_LT(lo.int64(), hi.int64());
  // Count rows in [lo, hi): should be ~80%.
  const int idx = orders->schema().IndexOfExact("o_orderdate");
  int64_t count = 0;
  for (const Row& r : orders->rows()) {
    if (r[idx].int64() >= lo.int64() && r[idx].int64() < hi.int64()) ++count;
  }
  EXPECT_NEAR(static_cast<double>(count) / orders->num_rows(), 0.8, 0.05);
}

}  // namespace
}  // namespace nestra
