#include <gtest/gtest.h>

#include "nested/nest.h"
#include "nested/unnest.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;

Table Flat() {
  return MakeTable({"g", "h", "x", "y"}, {
                                             {I(1), I(1), I(10), I(1)},
                                             {I(1), I(1), I(20), I(2)},
                                             {I(2), I(5), I(30), I(3)},
                                             {N(), I(7), I(40), I(4)},
                                             {N(), I(7), N(), N()},
                                         });
}

TEST(NestTest, SortAndHashAgree) {
  ASSERT_OK_AND_ASSIGN(NestedRelation by_sort,
                       Nest(Flat(), {"g", "h"}, {"x", "y"}, "grp",
                            NestMethod::kSort));
  ASSERT_OK_AND_ASSIGN(NestedRelation by_hash,
                       Nest(Flat(), {"g", "h"}, {"x", "y"}, "grp",
                            NestMethod::kHash));
  EXPECT_TRUE(NestedRelation::BagEquals(by_sort, by_hash));
}

TEST(NestTest, GroupsAndImplicitProjection) {
  ASSERT_OK_AND_ASSIGN(
      NestedRelation out,
      Nest(Flat(), {"g"}, {"x"}, "grp", NestMethod::kSort));
  // Groups: NULL, 1, 2 (NULL keys group together under deep equality).
  ASSERT_EQ(out.num_tuples(), 3);
  EXPECT_EQ(out.schema().atoms().num_fields(), 1);  // implicit projection
  EXPECT_EQ(out.schema().depth(), 1);
  // Sorted nest: NULL group first.
  EXPECT_TRUE(out.tuples()[0].atoms[0].is_null());
  EXPECT_EQ(out.tuples()[0].groups[0].size(), 2u);
  EXPECT_EQ(out.tuples()[1].atoms[0], I(1));
  EXPECT_EQ(out.tuples()[1].groups[0].size(), 2u);
  EXPECT_EQ(out.tuples()[2].groups[0].size(), 1u);
}

TEST(NestTest, DisjointnessEnforced) {
  EXPECT_FALSE(Nest(Flat(), {"g"}, {"g", "x"}, "grp").ok());
}

TEST(NestTest, UnknownAttrRejected) {
  EXPECT_FALSE(Nest(Flat(), {"zz"}, {"x"}, "grp").ok());
}

TEST(NestTest, ConsecutiveNestsDeepen) {
  // υ_{g},{h} after υ_{g,h},{x} gives a two-level relation (§4.2.1).
  ASSERT_OK_AND_ASSIGN(NestedRelation level1,
                       Nest(Flat(), {"g", "h"}, {"x"}, "inner"));
  ASSERT_OK_AND_ASSIGN(NestedRelation level2,
                       Nest(level1, {"g"}, {"h"}, "outer"));
  EXPECT_EQ(level2.schema().depth(), 2);
  // g=1 tuple: one (h=1) member that itself holds two x members.
  const NestedTuple* g1 = nullptr;
  for (const NestedTuple& t : level2.tuples()) {
    if (t.atoms[0] == I(1)) g1 = &t;
  }
  ASSERT_NE(g1, nullptr);
  ASSERT_EQ(g1->groups[0].size(), 1u);
  EXPECT_EQ(g1->groups[0][0].atoms[0], I(1));            // h value
  EXPECT_EQ(g1->groups[0][0].groups[0].size(), 2u);      // two x members
}

TEST(UnnestTest, InverseOfNestModuloEmptyGroups) {
  const Table flat = Flat();
  ASSERT_OK_AND_ASSIGN(NestedRelation nested,
                       Nest(flat, {"g", "h"}, {"x", "y"}, "grp"));
  ASSERT_OK_AND_ASSIGN(NestedRelation un, Unnest(nested, "grp"));
  ASSERT_OK_AND_ASSIGN(Table back, un.ToTable());
  EXPECT_TRUE(Table::BagEquals(flat, back));
}

TEST(UnnestTest, EmptyGroupTuplesDisappear) {
  auto member = std::make_shared<NestedSchema>(
      Schema({{"x", TypeId::kInt64}}));
  auto schema = std::make_shared<NestedSchema>(
      Schema({{"g", TypeId::kInt64}}));
  schema->AddGroup("grp", member);
  NestedRelation rel(schema);
  NestedTuple with_member{Row({I(1)}), {{NestedTuple{Row({I(9)}), {}}}}};
  NestedTuple empty{Row({I(2)}), {{}}};
  rel.tuples().push_back(with_member);
  rel.tuples().push_back(empty);
  ASSERT_OK_AND_ASSIGN(NestedRelation un, Unnest(rel, "grp"));
  EXPECT_EQ(un.num_tuples(), 1);
}

TEST(UnnestTest, UnknownGroupRejected) {
  ASSERT_OK_AND_ASSIGN(NestedRelation nested,
                       Nest(Flat(), {"g"}, {"x"}, "grp"));
  EXPECT_FALSE(Unnest(nested, "other").ok());
}

TEST(NestedRelationTest, FromToTableRoundTrip) {
  const Table flat = Flat();
  const NestedRelation rel = NestedRelation::FromTable(flat);
  EXPECT_EQ(rel.schema().depth(), 0);
  ASSERT_OK_AND_ASSIGN(Table back, rel.ToTable());
  EXPECT_TRUE(Table::BagEquals(flat, back));
}

TEST(NestedRelationTest, ToTableRejectsNested) {
  ASSERT_OK_AND_ASSIGN(NestedRelation nested,
                       Nest(Flat(), {"g"}, {"x"}, "grp"));
  EXPECT_FALSE(nested.ToTable().ok());
}

TEST(NestedRelationTest, BagEqualsIsOrderInsensitiveDeep) {
  ASSERT_OK_AND_ASSIGN(NestedRelation a, Nest(Flat(), {"g"}, {"x"}, "grp"));
  NestedRelation b = a;
  std::reverse(b.tuples().begin(), b.tuples().end());
  for (NestedTuple& t : b.tuples()) {
    std::reverse(t.groups[0].begin(), t.groups[0].end());
  }
  EXPECT_TRUE(NestedRelation::BagEquals(a, b));
}

}  // namespace
}  // namespace nestra
