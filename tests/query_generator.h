// Shared random-query generator for the differential tests: small tables
// (u, v, w, x) with NULLs, and nested queries drawn from five shapes
// covering every linking operator. Used by property_test.cc (strategy vs.
// oracle) and parallel_exec_test.cc (parallel vs. serial determinism).

#ifndef NESTRA_TESTS_QUERY_GENERATOR_H_
#define NESTRA_TESTS_QUERY_GENERATOR_H_

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>

#include "storage/catalog.h"
#include "tpch/random.h"
#include "test_util.h"

namespace nestra {
namespace testing_util {

class QueryGenerator {
 public:
  /// `key_links` biases the generated queries toward the proven-2VL fast
  /// path: linking and linked columns are sometimes the NULL-free primary
  /// keys instead of the usual nullable data columns. The default keeps the
  /// historical corpora byte-identical per seed (no extra RNG draws).
  explicit QueryGenerator(uint64_t seed, bool key_links = false)
      : rng_(seed), key_links_(key_links) {}

  void PopulateTables(Catalog* catalog) {
    for (const char* name : {"u", "v", "w", "x"}) {
      const int64_t rows = rng_.UniformInt(4, 24);
      const std::string prefix(1, name[0]);
      Table t = MakeTable({prefix + "k", prefix + "1", prefix + "2"}, {});
      for (int64_t i = 1; i <= rows; ++i) {
        Row r;
        r.Append(Value::Int64(i));
        r.Append(RandomCell());
        r.Append(RandomCell());
        t.AppendUnchecked(std::move(r));
      }
      ASSERT_OK(catalog->RegisterTable(name, std::move(t), prefix + "k"));
    }
  }

  std::string RandomQuery() {
    const int shape = static_cast<int>(rng_.UniformInt(0, 4));
    switch (shape) {
      case 0:
        return OneLevel();
      case 1:
        return TwoLevelLinear();
      case 2:
        return TreeQuery();
      case 3:
        return ThreeLevelLinear();
      default:
        return ChainUnderTree();
    }
  }

 private:
  // The column a link or subquery select item reads: the usual nullable data
  // column, or — under key_links_ — half the time the table's primary key,
  // whose non-NULL proof makes negative links antijoin-eligible.
  std::string C(const std::string& t, const char* col) {
    if (key_links_ && rng_.Bernoulli(0.5)) return t + "k";
    return t + col;
  }

  Value RandomCell() {
    if (rng_.Bernoulli(0.15)) return Value::Null();
    return Value::Int64(rng_.UniformInt(0, 6));
  }

  std::string RandomCmp() {
    static const char* kOps[] = {"=", "<>", "<", "<=", ">", ">="};
    return kOps[rng_.UniformInt(0, 5)];
  }

  // A linking predicate for `outer_col` against a subquery body. The outer
  // side is occasionally a constant, and the link is occasionally a scalar
  // aggregate (which needs the body's select item replaced).
  std::string Link(const std::string& outer_col, const std::string& body) {
    const std::string outer = rng_.Bernoulli(0.15)
                                  ? std::to_string(rng_.UniformInt(0, 6))
                                  : outer_col;
    switch (rng_.UniformInt(0, 6)) {
      case 0:
        return "exists (" + body + ")";
      case 1:
        return "not exists (" + body + ")";
      case 2:
        return outer + " in (" + body + ")";
      case 3:
        return outer + " not in (" + body + ")";
      case 4:
        return outer + " " + RandomCmp() + " any (" + body + ")";
      case 5:
        return outer + " " + RandomCmp() + " all (" + body + ")";
      default: {
        static const char* kAggs[] = {"count", "sum", "min", "max", "avg"};
        std::string agg(kAggs[rng_.UniformInt(0, 4)]);
        // Rewrite "select <col> from ..." into "select agg(<col>) from ...".
        const size_t sel = body.find("select ") + 7;
        const size_t end = body.find(" from");
        std::string column = body.substr(sel, end - sel);
        if (agg == "count" && rng_.Bernoulli(0.3)) column = "*";
        return outer + " " + RandomCmp() + " (" + body.substr(0, sel) + agg +
               "(" + column + ")" + body.substr(end) + ")";
      }
    }
  }

  // Optional correlated predicate tying `inner` to `outer`.
  std::string MaybeCorrelation(const std::string& inner,
                               const std::string& outer) {
    switch (rng_.UniformInt(0, 3)) {
      case 0:
        return "";  // non-correlated
      case 1:
        return " and " + inner + "1 = " + outer + "2";
      case 2:
        return " and " + inner + "1 " + RandomCmp() + " " + outer + "2";
      default:
        return " and " + inner + "2 = " + outer + "1";
    }
  }

  std::string MaybeLocal(const std::string& t) {
    if (rng_.Bernoulli(0.5)) return "";
    return " and " + t + "2 " + RandomCmp() + " " +
           std::to_string(rng_.UniformInt(0, 6));
  }

  std::string OneLevel() {
    std::ostringstream q;
    q << "select uk from u where uk >= 0" << MaybeLocal("u") << " and "
      << Link(C("u", "1"), "select " + C("v", "1") +
                               " from v where vk >= 0" + MaybeLocal("v") +
                               MaybeCorrelation("v", "u"));
    return q.str();
  }

  std::string TwoLevelLinear() {
    const std::string inner = "select " + C("w", "1") +
                              " from w where wk >= 0" + MaybeLocal("w") +
                              MaybeCorrelation("w", "v");
    const std::string middle = "select " + C("v", "1") +
                               " from v where vk >= 0" + MaybeLocal("v") +
                               MaybeCorrelation("v", "u") + " and " +
                               Link(C("v", "2"), inner);
    return "select uk from u where uk >= 0" + MaybeLocal("u") + " and " +
           Link(C("u", "1"), middle);
  }

  // u -> v -> w -> x, including occasional non-adjacent correlation of the
  // innermost block back to u (the Query-3 pattern).
  std::string ThreeLevelLinear() {
    std::string innermost = "select " + C("x", "1") +
                            " from x where xk >= 0" + MaybeLocal("x") +
                            MaybeCorrelation("x", "w");
    if (rng_.Bernoulli(0.4)) innermost += " and x2 = u1";
    const std::string inner = "select " + C("w", "1") +
                              " from w where wk >= 0" + MaybeLocal("w") +
                              MaybeCorrelation("w", "v") + " and " +
                              Link(C("w", "2"), innermost);
    const std::string middle = "select " + C("v", "1") +
                               " from v where vk >= 0" + MaybeLocal("v") +
                               MaybeCorrelation("v", "u") + " and " +
                               Link(C("v", "2"), inner);
    return "select uk from u where uk >= 0" + MaybeLocal("u") + " and " +
           Link(C("u", "1"), middle);
  }

  // Two siblings under the root, one of which has its own nested chain.
  std::string ChainUnderTree() {
    const std::string deep_inner = "select " + C("w", "1") +
                                   " from w where wk >= 0" + MaybeLocal("w") +
                                   MaybeCorrelation("w", "v");
    const std::string chain_child = "select " + C("v", "1") +
                                    " from v where vk >= 0" +
                                    MaybeCorrelation("v", "u") + " and " +
                                    Link(C("v", "2"), deep_inner);
    const std::string flat_child = "select " + C("x", "1") +
                                   " from x where xk >= 0" + MaybeLocal("x") +
                                   MaybeCorrelation("x", "u");
    return "select uk from u where uk >= 0 and " +
           Link(C("u", "1"), chain_child) + " and " +
           Link(C("u", "2"), flat_child);
  }

  std::string TreeQuery() {
    const std::string sub1 = "select " + C("v", "1") +
                             " from v where vk >= 0" + MaybeLocal("v") +
                             MaybeCorrelation("v", "u");
    const std::string sub2 = "select " + C("w", "1") +
                             " from w where wk >= 0" + MaybeLocal("w") +
                             MaybeCorrelation("w", "u");
    return "select uk from u where uk >= 0" + MaybeLocal("u") + " and " +
           Link(C("u", "1"), sub1) + " and " + Link(C("u", "2"), sub2);
  }

  Rng rng_;
  bool key_links_ = false;
};

}  // namespace testing_util
}  // namespace nestra

#endif  // NESTRA_TESTS_QUERY_GENERATOR_H_
