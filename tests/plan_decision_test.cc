// Satellite regression for the consolidated plan-decision predicates: the
// negative-link "proven two-valued antijoin" choice lives in ONE place
// (TakesTwoValuedAntijoin / FusedChainBypassesTwoValued in nra/rewrites.h)
// and EXPLAIN, the static verifier's plan outline, and the plan the
// executor actually runs must never disagree about it. Before the
// consolidation each layer re-derived the decision by hand; this test
// fails if any future change lets them drift apart again.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "nra/executor.h"
#include "nra/explain.h"
#include "nra/profile.h"
#include "plan/binder.h"
#include "verify/verifier.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::RegisterPaperRelations;
using testing_util::kQueryQ;

// The exact phrase ExplainNode prints for the decision — nothing else in
// EXPLAIN output contains it.
constexpr const char* kAntijoinPhrase =
    "two-valued antijoin (proven non-NULL member comparison)";

int CountOccurrences(const std::string& text, const std::string& needle) {
  int count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

bool HasStage(const QueryProfile& profile, const std::string& label) {
  for (const ProfiledStage& s : profile.stages()) {
    if (s.label == label) return true;
  }
  return false;
}

// True when block `id` ran through ANY nest/selection machinery — i.e. it
// did NOT take a join-only fast path (semijoin or antijoin).
bool RanNestSelect(const QueryProfile& profile, int id) {
  const std::string bid = std::to_string(id);
  return HasStage(profile, "nest[b" + bid + "]") ||
         HasStage(profile, "select[b" + bid + "]") ||
         HasStage(profile, "link-select[b" + bid + "]") ||
         HasStage(profile, "fused[b" + bid + "]") ||
         // The whole-chain single-sort pipeline evaluates every level in
         // one unlabeled-by-block stage.
         HasStage(profile, "fused nest+select");
}

std::vector<std::pair<std::string, NraOptions>> DecisionOptionSets() {
  std::vector<std::pair<std::string, NraOptions>> sets;
  sets.emplace_back("optimized", NraOptions::Optimized());
  sets.emplace_back("original", NraOptions::Original());
  {
    NraOptions o = NraOptions::Optimized();
    o.two_valued = false;
    sets.emplace_back("three-valued", o);
  }
  {
    NraOptions o = NraOptions::Optimized();
    o.rewrite_positive = true;
    sets.emplace_back("semijoin-rewrite", o);
  }
  {
    NraOptions o = NraOptions::Optimized();
    o.push_down_nest = true;
    sets.emplace_back("push-down", o);
  }
  {
    NraOptions o = NraOptions::Optimized();
    o.bottom_up_linear = true;
    sets.emplace_back("bottom-up", o);
  }
  {
    NraOptions o = NraOptions::Optimized();
    o.magic_restriction = true;
    sets.emplace_back("magic", o);
  }
  return sets;
}

class PlanDecisionTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterPaperRelations(&catalog_); }

  // The three layers for one (query, options) pair:
  //  1. EXPLAIN's antijoin-phrase count equals the outline's kAntijoin
  //     step count.
  //  2. Executing the query (staged AND pipelined) yields a profile where
  //     every kAntijoin step ran join-only and every nest-bearing step
  //     actually nested.
  void CheckLayersAgree(const std::string& sql, const std::string& set_name,
                        const NraOptions& options) {
    const std::string context = set_name + "\n" + sql;
    Result<QueryBlockPtr> bound = ParseAndBind(sql, catalog_);
    ASSERT_TRUE(bound.ok()) << context << "\n" << bound.status().ToString();
    const QueryBlockPtr root = std::move(bound).ValueOrDie();

    const std::string explain = ExplainQuery(*root, catalog_, options);
    const PlanVerifier verifier(catalog_, options);
    const std::vector<PlanStep> steps = verifier.Outline(*root);

    int outlined_antijoins = 0;
    for (const PlanStep& s : steps) {
      if (s.kind == PlanStepKind::kAntijoin) ++outlined_antijoins;
    }
    EXPECT_EQ(CountOccurrences(explain, kAntijoinPhrase), outlined_antijoins)
        << context << "\nEXPLAIN and Outline() disagree:\n"
        << explain;

    for (const bool pipelined : {false, true}) {
      NraOptions exec_opts = options;
      exec_opts.pipelined = pipelined;
      exec_opts.profile = true;
      NraExecutor exec(catalog_, exec_opts);
      QueryProfile profile;
      Result<Table> result = exec.ExecuteSql(sql, nullptr, &profile);
      ASSERT_TRUE(result.ok())
          << context << ": " << result.status().ToString();

      for (const PlanStep& s : steps) {
        const int id = s.child->id;
        const std::string join_label = "join[b" + std::to_string(id) + "]";
        if (s.kind == PlanStepKind::kAntijoin ||
            s.kind == PlanStepKind::kSemijoin) {
          EXPECT_TRUE(HasStage(profile, join_label))
              << context << ": outline promised a join-only fast path for "
              << "block " << id << " but no " << join_label << " stage ran";
          EXPECT_FALSE(RanNestSelect(profile, id))
              << context << ": outline promised a join-only fast path for "
              << "block " << id
              << " but the executed plan ran nest/selection stages";
        } else {
          EXPECT_TRUE(RanNestSelect(profile, id))
              << context << ": outline step for block " << id
              << " requires a nest/selection, but none ran";
        }
      }
    }
  }

  Catalog catalog_;
};

// r.d is r's primary key and s.e is NULL-free at load: the member
// comparison is proven two-valued, so the default plan antijoins.
constexpr const char* kProvenNotIn =
    "select r.a from r where r.d not in "
    "(select s.e from s where s.g = r.d)";

// r.b is nullable: the proof fails, the decision must be NO everywhere.
constexpr const char* kUnprovenNotIn =
    "select r.a from r where r.b not in "
    "(select s.e from s where s.g = r.d)";

// Positive link: antijoin can never apply (semijoin territory).
constexpr const char* kPositiveIn =
    "select r.a from r where r.d in "
    "(select s.e from s where s.g = r.d)";

// NOT EXISTS has no member comparison to prove anything about.
constexpr const char* kNotExists =
    "select r.a from r where not exists "
    "(select s.e from s where s.g = r.d)";

TEST_F(PlanDecisionTest, AllLayersAgreeOnEveryCorpusQuery) {
  const std::vector<const char*> corpus = {kProvenNotIn, kUnprovenNotIn,
                                           kPositiveIn, kNotExists, kQueryQ};
  for (const auto& [set_name, options] : DecisionOptionSets()) {
    for (const char* sql : corpus) {
      CheckLayersAgree(sql, set_name, options);
    }
  }
}

TEST_F(PlanDecisionTest, ProvenNotInTakesAntijoinByDefault) {
  Result<QueryBlockPtr> bound = ParseAndBind(kProvenNotIn, catalog_);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const QueryBlockPtr root = std::move(bound).ValueOrDie();

  const NraOptions options = NraOptions::Optimized();
  EXPECT_EQ(CountOccurrences(ExplainQuery(*root, catalog_, options),
                             kAntijoinPhrase),
            1);
  const std::vector<PlanStep> steps =
      PlanVerifier(catalog_, options).Outline(*root);
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].kind, PlanStepKind::kAntijoin);
}

TEST_F(PlanDecisionTest, DisablingTwoValuedDisablesAllThreeLayers) {
  Result<QueryBlockPtr> bound = ParseAndBind(kProvenNotIn, catalog_);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const QueryBlockPtr root = std::move(bound).ValueOrDie();

  NraOptions options = NraOptions::Optimized();
  options.two_valued = false;
  EXPECT_EQ(CountOccurrences(ExplainQuery(*root, catalog_, options),
                             kAntijoinPhrase),
            0);
  for (const PlanStep& s : PlanVerifier(catalog_, options).Outline(*root)) {
    EXPECT_NE(s.kind, PlanStepKind::kAntijoin);
  }

  options.profile = true;
  NraExecutor exec(catalog_, options);
  QueryProfile profile;
  ASSERT_OK(exec.ExecuteSql(kProvenNotIn, nullptr, &profile).status());
  EXPECT_TRUE(RanNestSelect(profile, root->children[0]->id));
}

}  // namespace
}  // namespace nestra
