#include <gtest/gtest.h>

#include "nra/executor.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;
using testing_util::RegisterPaperRelations;

class NraTest : public ::testing::TestWithParam<NraOptions> {
 protected:
  void SetUp() override { RegisterPaperRelations(&catalog_); }

  Table Run(const std::string& sql) {
    NraExecutor exec(catalog_, GetParam());
    Result<Table> r = exec.ExecuteSql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nquery: " << sql;
    return r.ok() ? std::move(r).ValueOrDie() : Table();
  }

  Catalog catalog_;
};

std::vector<NraOptions> AllConfigs() {
  std::vector<NraOptions> configs;
  configs.push_back(NraOptions::Original());
  configs.push_back(NraOptions::Optimized());
  NraOptions hash_nest = NraOptions::Original();
  hash_nest.nest_method = NestMethod::kHash;
  configs.push_back(hash_nest);
  NraOptions push_down = NraOptions::Optimized();
  push_down.push_down_nest = true;
  configs.push_back(push_down);
  NraOptions rewrite = NraOptions::Optimized();
  rewrite.rewrite_positive = true;
  configs.push_back(rewrite);
  NraOptions bottom_up = NraOptions::Optimized();
  bottom_up.bottom_up_linear = true;
  configs.push_back(bottom_up);
  NraOptions everything = NraOptions::Optimized();
  everything.push_down_nest = true;
  everything.rewrite_positive = true;
  everything.bottom_up_linear = true;
  configs.push_back(everything);
  return configs;
}

INSTANTIATE_TEST_SUITE_P(AllOptionConfigs, NraTest,
                         ::testing::ValuesIn(AllConfigs()));

TEST_P(NraTest, FlatQuery) {
  ExpectTablesEqual(MakeTable({"r.b", "r.c"}, {{I(3), I(4)}, {I(4), I(5)}}),
                    Run("select b, c from r where a > 1"));
}

TEST_P(NraTest, QueryQ) {
  // Hand-derived in linking_selection_test.cc; with the local predicate
  // r.a > 1, only r2 and r3 survive.
  ExpectTablesEqual(
      MakeTable({"r.b", "r.c", "r.d"}, {{I(3), I(4), I(2)}, {I(4), I(5), I(3)}}),
      Run(testing_util::kQueryQ));
}

TEST_P(NraTest, InSubqueryCorrelated) {
  // r rows whose d matches some s.g with e < 3: s1(e=1,g=2), s2(e=2,g=2).
  // r2 has d=2 -> {1,2} contains b=3? b must equal some e: 3 not in {1,2}.
  ExpectTablesEqual(
      MakeTable({"r.b"}, {}),
      Run("select b from r where b in (select e from s where s.g = r.d and "
          "e < 3)"));
}

TEST_P(NraTest, InSubqueryMatch) {
  // d in (select g from s where g < 3): the set is {2, 2}; only r2 (d=2)
  // qualifies, projecting c=4.
  ExpectTablesEqual(
      MakeTable({"r.c"}, {{I(4)}}),
      Run("select c from r where d in (select g from s where g < 3)"));
}

TEST_P(NraTest, ExistsCorrelated) {
  ExpectTablesEqual(
      MakeTable({"r.b"}, {{I(3)}, {N()}}),
      Run("select b from r where exists (select * from s where s.g = r.d)"));
}

TEST_P(NraTest, NotExistsCorrelated) {
  ExpectTablesEqual(
      MakeTable({"r.b"}, {{I(2)}, {I(4)}}),
      Run("select b from r where not exists "
          "(select * from s where s.g = r.d)"));
}

TEST_P(NraTest, AllWithNullsInSet) {
  // c >= all (select h from s where s.g = r.d):
  //  r1: d=1, empty -> TRUE. r2: d=2, {2,7}: 4>=2 true, 4>=7 false -> FALSE.
  //  r3: d=3, empty -> TRUE. r4: d=4, {3,null}: 5>=3 true, 5>=null unknown
  //  -> UNKNOWN -> dropped.
  ExpectTablesEqual(
      MakeTable({"r.d"}, {{I(1)}, {I(3)}}),
      Run("select d from r where c >= all (select h from s where s.g = r.d)"));
}

TEST_P(NraTest, SomeNonCorrelated) {
  // b > some (select e from s where f = 5): set {1,2,3,4}.
  // b=2>1 true; b=3 true; b=4 true; b=null unknown.
  ExpectTablesEqual(
      MakeTable({"r.d"}, {{I(1)}, {I(2)}, {I(3)}}),
      Run("select d from r where b > some (select e from s where f = 5)"));
}

TEST_P(NraTest, NotInNonCorrelatedWithNull) {
  // k not in (select h from s): {2,7,3,null} — every comparison against the
  // null member is UNKNOWN, so NO row qualifies (classic NOT IN trap).
  ExpectTablesEqual(MakeTable({"t.l"}, {}),
                    Run("select l from t where k not in (select h from s)"));
}

TEST_P(NraTest, NotInNonCorrelatedWithoutNull) {
  // k not in (select e from s): {1,2,3,4}; t rows have k=4 -> 4 in set ->
  // FALSE for both.
  ExpectTablesEqual(MakeTable({"t.l"}, {}),
                    Run("select l from t where k not in (select e from s)"));
  // j not in {1,2,3,4}: j=5 -> TRUE; j=null -> UNKNOWN.
  ExpectTablesEqual(MakeTable({"t.l"}, {{I(1)}}),
                    Run("select l from t where j not in (select e from s)"));
}

TEST_P(NraTest, TreeQueryMixedSiblings) {
  // Two subqueries directly under the root.
  //  r2: exists ok, but 3 NOT IN {5, null} is UNKNOWN -> dropped.
  //  r4: exists ok, c=5 matches no t.k -> empty set -> NOT IN true; b null.
  ExpectTablesEqual(
      MakeTable({"r.b"}, {{N()}}),
      Run("select b from r where "
          "exists (select * from s where s.g = r.d) and "
          "b not in (select j from t where t.k = r.c)"));
}

TEST_P(NraTest, TreeQueryNegativeSiblings) {
  // Both siblings negative: requires pseudo at the root + final key guard.
  //  r1: NOT EXISTS true (d=1); b=2 matches no t.k -> NOT IN {} true.
  //  r3: NOT EXISTS true; 4 NOT IN {5, null} UNKNOWN -> dropped.
  ExpectTablesEqual(
      MakeTable({"r.b"}, {{I(2)}}),
      Run("select b from r where "
          "not exists (select * from s where s.g = r.d) and "
          "b not in (select j from t where t.k = r.b)"));
}

TEST_P(NraTest, DistinctProjection) {
  ExpectTablesEqual(MakeTable({"s.g"}, {{I(2)}, {I(4)}}),
                    Run("select distinct g from s"));
}

TEST_P(NraTest, EmptyOuter) {
  ExpectTablesEqual(
      MakeTable({"r.b"}, {}),
      Run("select b from r where a > 100 and exists "
          "(select * from s where s.g = r.d)"));
}

TEST_P(NraTest, EmptyInnerTable) {
  // Subquery over an empty selection: EXISTS false everywhere, NOT EXISTS
  // true everywhere.
  ExpectTablesEqual(
      MakeTable({"r.d"}, {{I(1)}, {I(2)}, {I(3)}, {I(4)}}),
      Run("select d from r where not exists "
          "(select * from s where f = 99 and s.g = r.d)"));
}

TEST_P(NraTest, ThetaCorrelationOnly) {
  // Purely non-equi correlation exercises the nested-loop outer join path.
  // e=1 < b for b in {2,3,4}; r4's NULL b compares UNKNOWN everywhere.
  ExpectTablesEqual(
      MakeTable({"r.d"}, {{I(1)}, {I(2)}, {I(3)}}),
      Run("select d from r where exists (select * from s where s.e < r.b)"));
}

TEST_P(NraTest, StatsPopulated) {
  NraExecutor exec(catalog_, GetParam());
  NraStats stats;
  ASSERT_OK_AND_ASSIGN(Table out,
                       exec.ExecuteSql(testing_util::kQueryQ, &stats));
  EXPECT_EQ(stats.output_rows, out.num_rows());
  EXPECT_GE(stats.total_seconds(), 0.0);
}

}  // namespace
}  // namespace nestra
