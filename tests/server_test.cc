// Tests for the session/connection layer (src/server/): per-session options
// and prepared statements over a shared Catalog, the PREPARE/EXECUTE/
// DEALLOCATE statement forms, stale-plan invalidation after DDL, FIFO
// admission control, and per-session telemetry attribution.
//
// Concurrency-heavy coverage (shared-catalog stress, TSan races) lives in
// concurrent_session_test.cc; this file is about the layer's semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/date.h"
#include "nra/explain.h"
#include "server/admission.h"
#include "server/connection_manager.h"
#include "server/harness.h"
#include "server/session.h"
#include "storage/catalog.h"
#include "telemetry/engine_metrics.h"
#include "telemetry/metrics.h"
#include "telemetry/slow_query.h"
#include "test_util.h"

namespace nestra {
namespace {

using telemetry::MetricsRegistry;
using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;

struct TelemetryOffGuard {
  ~TelemetryOffGuard() {
    telemetry::SetMetricsEnabled(false);
    telemetry::SetSlowQuerySink({});
    MetricsRegistry::Global().ResetValues();
  }
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override { testing_util::RegisterPaperRelations(&catalog_); }

  Catalog catalog_;
};

// ---------- prepared statements ----------

TEST_F(ServerTest, PrepareExecuteBindsParameters) {
  ConnectionManager manager(&catalog_);
  std::unique_ptr<Session> session = manager.Connect();

  ASSERT_OK(session->Prepare(
      "q", "select a, b from r where a > $1 order by a"));
  // Each execution binds fresh values; cross-check against the literal SQL.
  for (const int64_t cut : {0, 1, 2, 99}) {
    ASSERT_OK_AND_ASSIGN(Table got,
                         session->ExecutePrepared("q", {Value::Int64(cut)}));
    ASSERT_OK_AND_ASSIGN(
        Table want,
        session->Query("select a, b from r where a > " +
                       std::to_string(cut) + " order by a"));
    testing_util::ExpectTablesEqual(want, got);
  }
  // Re-binding smaller-after-larger works (slots are overwritten, not
  // accumulated).
  ASSERT_OK_AND_ASSIGN(Table again,
                       session->ExecutePrepared("q", {Value::Int64(1)}));
  EXPECT_EQ(again.num_rows(), 2);
}

TEST_F(ServerTest, PreparedParameterInSubquery) {
  ConnectionManager manager(&catalog_);
  std::unique_ptr<Session> session = manager.Connect();
  ASSERT_OK(session->Prepare(
      "sub",
      "select a from r where exists ("
      "  select e from s where e = a and f = $1)"));
  ASSERT_OK_AND_ASSIGN(Table hit,
                       session->ExecutePrepared("sub", {Value::Int64(5)}));
  ASSERT_OK_AND_ASSIGN(
      Table want,
      session->Query("select a from r where exists ("
                     "  select e from s where e = a and f = 5)"));
  testing_util::ExpectTablesEqual(want, hit);
  ASSERT_OK_AND_ASSIGN(Table miss,
                       session->ExecutePrepared("sub", {Value::Int64(99)}));
  EXPECT_EQ(miss.num_rows(), 0);
}

TEST_F(ServerTest, ExecuteCoercesStringArgsForDateColumns) {
  std::vector<Field> fields;
  fields.emplace_back("cid", TypeId::kInt64, /*nullable=*/false);
  fields.emplace_back("d", TypeId::kDate, /*nullable=*/true);
  Table t{Schema(std::move(fields))};
  int64_t cid = 0;
  for (const char* day : {"1993-06-01", "1994-06-01", "1995-06-01"}) {
    ASSERT_OK_AND_ASSIGN(int64_t days, ParseDate(day));
    t.AppendUnchecked(Row({Value::Int64(++cid), Value::Date(days)}));
  }
  ASSERT_OK(catalog_.RegisterTable("cal", std::move(t), "cid"));

  ConnectionManager manager(&catalog_);
  std::unique_ptr<Session> session = manager.Connect();
  ASSERT_OK(session->Prepare("bydate", "select d from cal where d >= $1"));
  ASSERT_OK_AND_ASSIGN(
      Table got,
      session->ExecutePrepared("bydate", {Value::String("1994-01-01")}));
  EXPECT_EQ(got.num_rows(), 2);
  // A malformed date surfaces the parse error instead of comparing garbage.
  EXPECT_FALSE(
      session->ExecutePrepared("bydate", {Value::String("not-a-date")}).ok());
}

TEST_F(ServerTest, ExecuteChecksArgumentCount) {
  ConnectionManager manager(&catalog_);
  std::unique_ptr<Session> session = manager.Connect();
  ASSERT_OK(session->Prepare("q", "select a from r where a > $1 and b < $2"));
  const Result<Table> missing =
      session->ExecutePrepared("q", {Value::Int64(1)});
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("expects 2 parameter(s)"),
            std::string::npos);
  EXPECT_FALSE(session
                   ->ExecutePrepared("q", {Value::Int64(1), Value::Int64(2),
                                           Value::Int64(3)})
                   .ok());
  ASSERT_OK(session->ExecutePrepared("q", {Value::Int64(1), Value::Int64(9)})
                .status());
}

TEST_F(ServerTest, UnknownAndDeallocatedStatementsAreNotFound) {
  ConnectionManager manager(&catalog_);
  std::unique_ptr<Session> session = manager.Connect();
  EXPECT_TRUE(
      session->ExecutePrepared("nope", {}).status().code() == StatusCode::kNotFound);
  EXPECT_TRUE(session->Deallocate("nope").code() == StatusCode::kNotFound);

  ASSERT_OK(session->Prepare("q", "select a from r"));
  EXPECT_EQ(session->PreparedNames(), std::vector<std::string>{"q"});
  ASSERT_OK(session->Deallocate("q"));
  EXPECT_TRUE(session->PreparedNames().empty());
  EXPECT_TRUE(session->ExecutePrepared("q", {}).status().code() == StatusCode::kNotFound);
}

TEST_F(ServerTest, PreparedStatementsAreSessionLocal) {
  ConnectionManager manager(&catalog_);
  std::unique_ptr<Session> s1 = manager.Connect();
  std::unique_ptr<Session> s2 = manager.Connect();
  ASSERT_OK(s1->Prepare("q", "select a from r"));
  EXPECT_TRUE(s2->ExecutePrepared("q", {}).status().code() == StatusCode::kNotFound);
  ASSERT_OK(s1->ExecutePrepared("q", {}).status());
}

TEST_F(ServerTest, ParameterOutsidePrepareIsBindError) {
  ConnectionManager manager(&catalog_);
  std::unique_ptr<Session> session = manager.Connect();
  const Result<Table> direct = session->Query("select a from r where a > $1");
  ASSERT_FALSE(direct.ok());
  EXPECT_NE(direct.status().message().find("PREPARE"), std::string::npos);
}

// ---------- PREPARE / EXECUTE / DEALLOCATE statement forms ----------

TEST_F(ServerTest, StatementFormsRoundTrip) {
  ConnectionManager manager(&catalog_);
  std::unique_ptr<Session> session = manager.Connect();

  ASSERT_OK_AND_ASSIGN(
      Table prep,
      session->Query("PREPARE q AS select a from r where a > $1 order by a"));
  EXPECT_EQ(prep.num_rows(), 0);
  EXPECT_EQ(session->PreparedNames(), std::vector<std::string>{"q"});

  ASSERT_OK_AND_ASSIGN(Table got, session->Query("execute q (1)"));
  ASSERT_OK_AND_ASSIGN(Table want,
                       session->Query("select a from r where a > 1 order by a"));
  testing_util::ExpectTablesEqual(want, got);

  ASSERT_OK(session->Query("DEALLOCATE q").status());
  EXPECT_TRUE(session->Query("EXECUTE q (1)").status().code() == StatusCode::kNotFound);
}

TEST_F(ServerTest, ExecuteFormParsesLiteralArguments) {
  Table vals = MakeTable(
      {"mk", "n"}, {{I(1), I(-3)}, {I(2), I(0)}, {I(3), I(7)}, {I(4), N()}});
  ASSERT_OK(catalog_.RegisterTable("mix", std::move(vals), "mk"));
  ConnectionManager manager(&catalog_);
  std::unique_ptr<Session> session = manager.Connect();
  ASSERT_OK(session->Prepare("q", "select n from mix where n > $1"));

  ASSERT_OK_AND_ASSIGN(Table neg, session->Query("EXECUTE q (-4)"));
  EXPECT_EQ(neg.num_rows(), 3);
  ASSERT_OK_AND_ASSIGN(Table fl, session->Query("EXECUTE q (0.5)"));
  EXPECT_EQ(fl.num_rows(), 1);
  // NULL argument: comparison is never true under 3VL.
  ASSERT_OK_AND_ASSIGN(Table nl, session->Query("EXECUTE q (NULL)"));
  EXPECT_EQ(nl.num_rows(), 0);

  EXPECT_FALSE(session->Query("EXECUTE q (a)").ok());       // not a literal
  EXPECT_FALSE(session->Query("EXECUTE q (1").ok());        // unclosed
  EXPECT_FALSE(session->Query("EXECUTE q (1) extra").ok()); // trailing junk
  EXPECT_FALSE(session->Query("PREPARE q select").ok());    // missing AS
}

// ---------- stale-plan invalidation ----------

TEST_F(ServerTest, ExecuteAfterDropIsStaleNotUseAfterFree) {
  ConnectionManager manager(&catalog_);
  std::unique_ptr<Session> session = manager.Connect();
  ASSERT_OK(session->Prepare("q", "select a from r where a > $1"));
  ASSERT_OK(session->ExecutePrepared("q", {Value::Int64(0)}).status());

  ASSERT_OK(manager.DropTable("r"));
  const Result<Table> gone = session->ExecutePrepared("q", {Value::Int64(0)});
  ASSERT_FALSE(gone.ok());
  EXPECT_NE(gone.status().message().find("stale"), std::string::npos);
}

TEST_F(ServerTest, ExecuteAfterReRegisterIsStaleUntilRePrepared) {
  ConnectionManager manager(&catalog_);
  std::unique_ptr<Session> session = manager.Connect();
  ASSERT_OK(session->Prepare("q", "select a from r where a > $1"));

  // Drop + reload: same name, same shape — but the storage (and any plan
  // decisions derived from observed data) is new, so the plan must not be
  // silently reused.
  ASSERT_OK(manager.DropTable("r"));
  ASSERT_OK(manager.RegisterTable(
      "r", MakeTable({"a", "b", "c", "d"}, {{I(10), I(1), I(1), I(1)}}), "d"));
  const Result<Table> stale = session->ExecutePrepared("q", {Value::Int64(0)});
  ASSERT_FALSE(stale.ok());
  EXPECT_NE(stale.status().message().find("stale"), std::string::npos)
      << stale.status().ToString();

  ASSERT_OK(session->Prepare("q", "select a from r where a > $1"));
  ASSERT_OK_AND_ASSIGN(Table fresh,
                       session->ExecutePrepared("q", {Value::Int64(0)}));
  EXPECT_EQ(fresh.num_rows(), 1);
}

TEST_F(ServerTest, NotNullEditInvalidatesPreparedPlan) {
  ConnectionManager manager(&catalog_);
  std::unique_ptr<Session> session = manager.Connect();
  // NOT NULL proofs drive the two-valued fast path, so a constraint edit on
  // any referenced table — including one only touched by a subquery — must
  // invalidate.
  ASSERT_OK(session->Prepare(
      "q", "select a from r where b not in (select e from s where g = $1)"));
  ASSERT_OK(manager.AddNotNull("s", "h"));
  const Result<Table> stale = session->ExecutePrepared("q", {Value::Int64(2)});
  ASSERT_FALSE(stale.ok());
  EXPECT_NE(stale.status().message().find("'s' changed"), std::string::npos);
}

TEST_F(ServerTest, StatsChangeFlipsJoinStrategyAfterRePrepare) {
  // Cost-based planning bakes load-time statistics into the prepared plan.
  // Re-registering a table with the same schema but a different key density
  // flips the perfect (dense-array) hash-join decision, so the staleness
  // check must force a re-plan rather than run the old physical plan on the
  // new data.
  auto make_build = [](bool dense) {
    Table t = MakeTable({"bk", "b1"}, {});
    for (int64_t i = 1; i <= 2000; ++i) {
      Row r;
      r.Append(Value::Int64(dense ? i : i * 1000));
      r.Append(Value::Int64(i));
      t.AppendUnchecked(std::move(r));
    }
    return t;
  };
  Table probe = MakeTable({"pk", "p1"}, {});
  for (int64_t i = 1; i <= 3000; ++i) {
    Row r;
    r.Append(Value::Int64(i));
    r.Append(Value::Int64(i));
    probe.AppendUnchecked(std::move(r));
  }
  ASSERT_OK(catalog_.RegisterTable("probe", std::move(probe), "pk"));
  ASSERT_OK(catalog_.RegisterTable("build", make_build(/*dense=*/true), "bk"));
  ConnectionManager manager(&catalog_);
  std::unique_ptr<Session> session = manager.Connect();

  const std::string sql =
      "select p.pk from probe p where p.p1 in "
      "(select b.b1 from build b where b.bk = p.pk)";
  // Dense key 1..2000: the plan uses perfect dense-array keying.
  ASSERT_OK_AND_ASSIGN(
      std::string dense_plan,
      ExplainSql(sql, manager.catalog(), session->options()));
  EXPECT_NE(dense_plan.find("perfect dense-array hash"), std::string::npos)
      << dense_plan;
  ASSERT_OK(session->Prepare("q", sql));
  ASSERT_OK_AND_ASSIGN(Table dense_result, session->ExecutePrepared("q", {}));
  EXPECT_EQ(dense_result.num_rows(), 2000);

  // Sparse key i*1000: same schema, but the span/rows ratio now exceeds
  // kPerfectMaxSparsity — fresh plans must drop the dense array.
  ASSERT_OK(manager.DropTable("build"));
  ASSERT_OK(manager.RegisterTable("build", make_build(/*dense=*/false), "bk"));
  const Result<Table> stale = session->ExecutePrepared("q", {});
  ASSERT_FALSE(stale.ok());
  EXPECT_NE(stale.status().message().find("stale"), std::string::npos)
      << stale.status().ToString();
  ASSERT_OK_AND_ASSIGN(
      std::string sparse_plan,
      ExplainSql(sql, manager.catalog(), session->options()));
  EXPECT_EQ(sparse_plan.find("perfect dense-array hash"), std::string::npos)
      << sparse_plan;

  // Re-prepare re-plans from the fresh stats; the new result matches an ad
  // hoc query over the sparse data.
  ASSERT_OK(session->Prepare("q", sql));
  ASSERT_OK_AND_ASSIGN(Table reprepared, session->ExecutePrepared("q", {}));
  ASSERT_OK_AND_ASSIGN(Table adhoc, session->Query(sql));
  testing_util::ExpectTablesEqual(adhoc, reprepared);
}

// ---------- telemetry: parse/plan-once proof + attribution ----------

TEST_F(ServerTest, PreparedExecutionSkipsParseBindVerify) {
  TelemetryOffGuard guard;
  telemetry::SetMetricsEnabled(true);
  MetricsRegistry::Global().ResetValues();

  ConnectionManager manager(&catalog_);
  std::unique_ptr<Session> session = manager.Connect();
  ASSERT_OK(session->Prepare("q", "select a from r where a > $1"));

  const std::map<std::string, double> after_prepare =
      MetricsRegistry::Global().DeterministicValues();
  EXPECT_EQ(after_prepare.at("nestra_statements_parsed_total"), 1);
  EXPECT_EQ(after_prepare.at("nestra_statements_bound_total"), 1);
  EXPECT_EQ(after_prepare.at("nestra_statements_prepared_total"), 1);
  EXPECT_EQ(after_prepare.at("nestra_plans_verified_total"), 1);
  EXPECT_EQ(after_prepare.at("nestra_prepared_executions_total"), 0);

  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(session->ExecutePrepared("q", {Value::Int64(i)}).status());
  }
  const std::map<std::string, double> after_execs =
      MetricsRegistry::Global().DeterministicValues();
  // The proof: five executions moved only the execution counter — parse,
  // bind, and verify all stayed at their PREPARE-time values.
  EXPECT_EQ(after_execs.at("nestra_statements_parsed_total"), 1);
  EXPECT_EQ(after_execs.at("nestra_statements_bound_total"), 1);
  EXPECT_EQ(after_execs.at("nestra_plans_verified_total"), 1);
  EXPECT_EQ(after_execs.at("nestra_prepared_executions_total"), 5);
  EXPECT_EQ(after_execs.at("nestra_queries_total"), 5);

  // An ad-hoc statement, by contrast, pays parse + bind again.
  ASSERT_OK(session->Query("select a from r").status());
  const std::map<std::string, double> after_adhoc =
      MetricsRegistry::Global().DeterministicValues();
  EXPECT_EQ(after_adhoc.at("nestra_statements_parsed_total"), 2);
  EXPECT_EQ(after_adhoc.at("nestra_statements_bound_total"), 2);
}

TEST_F(ServerTest, SessionLabelledCounterAndStats) {
  TelemetryOffGuard guard;
  telemetry::SetMetricsEnabled(true);
  MetricsRegistry::Global().ResetValues();

  ConnectionManager manager(&catalog_);
  std::unique_ptr<Session> s1 = manager.Connect();
  std::unique_ptr<Session> s2 = manager.Connect();
  ASSERT_OK(s1->Query("select a from r").status());
  ASSERT_OK(s1->Query("select b from r").status());
  ASSERT_OK(s2->Query("select a from r").status());
  EXPECT_FALSE(s2->Query("select nope from r").ok());

  auto session_queries = [](const std::string& label) {
    return MetricsRegistry::Global()
        .GetCounter("nestra_session_queries_total",
                    "session=\"" + label + "\"",
                    "Statements executed OK, by session", false)
        ->Value();
  };
  EXPECT_EQ(session_queries(s1->label()), 2);
  EXPECT_EQ(session_queries(s2->label()), 1);
  EXPECT_EQ(s1->stats().queries, 2);
  EXPECT_EQ(s2->stats().queries, 1);
  EXPECT_EQ(s2->stats().errors, 1);
  EXPECT_EQ(manager.active_sessions(), 2);
  EXPECT_EQ(manager.sessions_opened_total(), 2);
  s2.reset();
  EXPECT_EQ(manager.active_sessions(), 1);
}

TEST_F(ServerTest, SlowQueryLogCarriesSessionId) {
  TelemetryOffGuard guard;
  std::vector<std::string> lines;
  std::mutex mu;
  telemetry::SetSlowQuerySink([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });

  ConnectionManager manager(&catalog_);
  std::unique_ptr<Session> session = manager.Connect();
  session->options().slow_query_ms = 1e-6;  // everything is slow
  ASSERT_OK(session->Query("select a from r").status());
  ASSERT_OK(session->Prepare("q", "select a from r where a > $1"));
  ASSERT_OK(session->ExecutePrepared("q", {Value::Int64(0)}).status());

  ASSERT_EQ(lines.size(), 2u);  // ad-hoc query + prepared execution
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("\"session\":\"" + session->label() + "\""),
              std::string::npos)
        << line;
  }
  // The prepared execution logs the PREPARE-time SQL, parameters and all.
  EXPECT_NE(lines[1].find("$1"), std::string::npos) << lines[1];
}

// ---------- admission control ----------

TEST(AdmissionTest, LimitBoundsInFlight) {
  Catalog catalog;
  testing_util::RegisterPaperRelations(&catalog);
  ServerOptions options;
  options.max_in_flight = 2;
  ConnectionManager manager(&catalog, options);

  std::vector<ClientScript> clients(8);
  for (ClientScript& c : clients) {
    c.statements = {testing_util::kQueryQ, "select a from r where a > 1"};
    c.repeat = 4;
  }
  const HarnessResult result = RunConcurrentClients(manager, clients);
  EXPECT_EQ(result.errors, 0);
  EXPECT_EQ(result.total_statements, 8 * 2 * 4);
  EXPECT_EQ(manager.admission().admitted_total(), 8 * 2 * 4);
  EXPECT_LE(manager.admission().peak_in_flight(), 2);
  EXPECT_EQ(manager.admission().in_flight(), 0);
  EXPECT_EQ(manager.admission().queue_depth(), 0);
}

TEST(AdmissionTest, UnlimitedAdmitsEverythingImmediately) {
  AdmissionController controller(0);
  std::vector<std::thread> threads;
  std::atomic<int> running{0};
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      AdmissionController::Slot slot(&controller);
      ++running;
      while (running.load() < 8) std::this_thread::yield();
    });
  }
  for (std::thread& t : threads) t.join();
  // All 8 were in flight at once: no limit ever blocked anyone.
  EXPECT_EQ(controller.peak_in_flight(), 8);
  EXPECT_EQ(controller.admitted_total(), 8);
}

TEST(AdmissionTest, WaitersAdmittedInFifoOrder) {
  AdmissionController controller(1);
  controller.Acquire();  // hold the only slot

  std::mutex mu;
  std::vector<int> order;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    // Start waiter i only after waiters 0..i-1 are provably queued, so
    // ticket numbers follow i.
    while (controller.queue_depth() < i) std::this_thread::yield();
    waiters.emplace_back([&, i] {
      AdmissionController::Slot slot(&controller);
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
  }
  while (controller.queue_depth() < 4) std::this_thread::yield();
  controller.Release();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(controller.peak_in_flight(), 1);
  EXPECT_EQ(controller.peak_queue_depth(), 4);
}

// ---------- harness fingerprint ----------

TEST(HarnessTest, HashTableIsOrderAndValueSensitive) {
  const Table a = MakeTable({"x", "y"}, {{I(1), I(2)}, {I(3), N()}});
  const Table same = MakeTable({"x", "y"}, {{I(1), I(2)}, {I(3), N()}});
  const Table reordered = MakeTable({"x", "y"}, {{I(3), N()}, {I(1), I(2)}});
  const Table renamed = MakeTable({"x", "z"}, {{I(1), I(2)}, {I(3), N()}});
  const Table differs = MakeTable({"x", "y"}, {{I(1), I(2)}, {I(3), I(0)}});
  EXPECT_EQ(HashTable(a), HashTable(same));
  EXPECT_NE(HashTable(a), HashTable(reordered));
  EXPECT_NE(HashTable(a), HashTable(renamed));
  EXPECT_NE(HashTable(a), HashTable(differs));
  // Field-boundary sensitivity: {"ab",""} vs {"a","b"}.
  const Table ab = MakeTable({"ab"}, {{I(1)}});
  const Table a_b = MakeTable({"a"}, {{I(1)}});
  EXPECT_NE(HashTable(ab), HashTable(a_b));
}

}  // namespace
}  // namespace nestra
