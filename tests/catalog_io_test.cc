#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "nra/executor.h"
#include "storage/catalog_io.h"
#include "tpch/tpch_gen.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::RegisterPaperRelations;

class CatalogIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/nestra_catalog_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(CatalogIoTest, RoundTripPaperRelations) {
  Catalog original;
  RegisterPaperRelations(&original);
  ASSERT_OK(SaveCatalog(original, dir_));

  Catalog loaded;
  ASSERT_OK(LoadCatalog(dir_, &loaded));
  EXPECT_EQ(loaded.TableNames(), original.TableNames());
  for (const std::string& name : original.TableNames()) {
    ASSERT_OK_AND_ASSIGN(const Table* a, original.GetTable(name));
    ASSERT_OK_AND_ASSIGN(const Table* b, loaded.GetTable(name));
    EXPECT_TRUE(a->schema().Equals(b->schema())) << name;
    EXPECT_TRUE(Table::BagEquals(*a, *b)) << name;
    ASSERT_OK_AND_ASSIGN(const TableMetadata* ma, original.GetMetadata(name));
    ASSERT_OK_AND_ASSIGN(const TableMetadata* mb, loaded.GetMetadata(name));
    EXPECT_EQ(ma->primary_key, mb->primary_key);
    EXPECT_EQ(ma->not_null_columns, mb->not_null_columns);
  }

  // Queries behave identically on the reloaded catalog.
  NraExecutor before(original);
  NraExecutor after(loaded);
  ASSERT_OK_AND_ASSIGN(Table r1, before.ExecuteSql(testing_util::kQueryQ));
  ASSERT_OK_AND_ASSIGN(Table r2, after.ExecuteSql(testing_util::kQueryQ));
  EXPECT_TRUE(Table::BagEquals(r1, r2));
}

TEST_F(CatalogIoTest, RoundTripTpchWithNullsAndConstraints) {
  Catalog original;
  TpchConfig config;
  config.scale = 0.01;
  config.null_l_extendedprice = 0.2;
  config.declare_not_null = true;  // on partsupp etc.
  ASSERT_OK(PopulateTpch(&original, config));
  ASSERT_OK(SaveCatalog(original, dir_));

  Catalog loaded;
  ASSERT_OK(LoadCatalog(dir_, &loaded));
  for (const std::string& name : original.TableNames()) {
    ASSERT_OK_AND_ASSIGN(const Table* a, original.GetTable(name));
    ASSERT_OK_AND_ASSIGN(const Table* b, loaded.GetTable(name));
    EXPECT_TRUE(Table::BagEquals(*a, *b)) << name;
  }
  EXPECT_TRUE(loaded.IsNotNull("partsupp", "ps_supplycost"));
  EXPECT_FALSE(loaded.IsNotNull("lineitem", "l_extendedprice"));
}

TEST_F(CatalogIoTest, LoadErrors) {
  Catalog c;
  EXPECT_FALSE(LoadCatalog(dir_ + "/missing", &c).ok());

  // Corrupt manifest.
  std::filesystem::create_directories(dir_);
  {
    std::ofstream out(dir_ + "/manifest.nestra");
    out << "table t\ncolumn a int64 null\n";  // no 'end'
  }
  EXPECT_FALSE(LoadCatalog(dir_, &c).ok());
  {
    std::ofstream out(dir_ + "/manifest.nestra");
    out << "bogus directive\n";
  }
  EXPECT_FALSE(LoadCatalog(dir_, &c).ok());
  {
    std::ofstream out(dir_ + "/manifest.nestra");
    out << "table t\ncolumn a wat null\nend\n";
  }
  EXPECT_FALSE(LoadCatalog(dir_, &c).ok());
}

TEST_F(CatalogIoTest, LoadIntoNonEmptyCatalogDetectsCollisions) {
  Catalog original;
  RegisterPaperRelations(&original);
  ASSERT_OK(SaveCatalog(original, dir_));
  Catalog loaded;
  RegisterPaperRelations(&loaded);  // same names already present
  EXPECT_FALSE(LoadCatalog(dir_, &loaded).ok());
}

}  // namespace
}  // namespace nestra
