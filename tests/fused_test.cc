#include <gtest/gtest.h>

#include "exec/sort.h"
#include "nested/fused_nest_select.h"
#include "nested/linking_selection.h"
#include "nested/nest.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;

// The Temp1 wide relation of the paper (see linking_selection_test.cc).
Table Temp1() {
  return MakeTable({"b", "c", "d", "e", "h", "i", "j", "l"},
                   {
                       {I(2), I(3), I(1), N(), N(), N(), N(), N()},
                       {I(3), I(4), I(2), I(1), I(2), I(1), N(), I(2)},
                       {I(3), I(4), I(2), I(2), I(7), I(2), I(5), I(1)},
                       {I(4), I(5), I(3), N(), N(), N(), N(), N()},
                       {N(), I(5), I(4), I(3), I(3), I(3), N(), N()},
                       {N(), I(5), I(4), I(4), N(), I(4), N(), N()},
                   });
}

Result<Table> RunFused(Table input, std::vector<FusedLevelSpec> levels) {
  auto sort = std::make_unique<SortNode>(
      std::make_unique<TableSourceNode>(std::move(input)),
      [&] {
        std::vector<SortKey> keys;
        for (const std::string& a : levels.back().nesting_attrs) {
          keys.push_back({a, true});
        }
        return keys;
      }());
  FusedNestSelectNode fused(std::move(sort), std::move(levels));
  return CollectTable(&fused);
}

TEST(FusedTest, TwoLevelsMatchMaterializedPipelineOnPaperData) {
  // Fused: single sort + one pass over both Query Q predicates.
  FusedLevelSpec outer;
  outer.nesting_attrs = {"b", "c", "d"};
  outer.pred =
      MakeLinkingPredicate(LinkOp::kNotIn, CmpOp::kEq, "b", "", "e", "i");
  outer.mode = SelectionMode::kStrict;
  FusedLevelSpec inner;
  inner.nesting_attrs = {"b", "c", "d", "e", "h", "i"};
  inner.pred =
      MakeLinkingPredicate(LinkOp::kAll, CmpOp::kGt, "h", "", "j", "l");
  inner.mode = SelectionMode::kPseudo;
  ASSERT_OK_AND_ASSIGN(Table fused, RunFused(Temp1(), {outer, inner}));

  ExpectTablesEqual(MakeTable({"b", "c", "d"},
                              {
                                  {I(2), I(3), I(1)},
                                  {I(3), I(4), I(2)},
                                  {I(4), I(5), I(3)},
                              }),
                    fused);
}

TEST(FusedTest, SingleLevelStrictMatchesLinkingSelect) {
  const Table input = Temp1();
  FusedLevelSpec level;
  level.nesting_attrs = {"b", "c", "d", "e", "h", "i"};
  level.pred =
      MakeLinkingPredicate(LinkOp::kAll, CmpOp::kGt, "h", "", "j", "l");
  level.mode = SelectionMode::kStrict;
  ASSERT_OK_AND_ASSIGN(Table fused, RunFused(input, {level}));

  ASSERT_OK_AND_ASSIGN(
      NestedRelation nested,
      Nest(input, {"b", "c", "d", "e", "h", "i"}, {"j", "l"}, "grp"));
  ASSERT_OK_AND_ASSIGN(
      Table materialized,
      LinkingSelect(nested,
                    MakeLinkingPredicate(LinkOp::kAll, CmpOp::kGt, "h", "grp",
                                         "j", "l"),
                    SelectionMode::kStrict));
  ExpectTablesEqual(materialized, fused);
}

TEST(FusedTest, SingleLevelPseudoPadsOutput) {
  const Table input = Temp1();
  FusedLevelSpec level;
  level.nesting_attrs = {"b", "c", "d", "e", "h", "i"};
  level.pred =
      MakeLinkingPredicate(LinkOp::kAll, CmpOp::kGt, "h", "", "j", "l");
  level.mode = SelectionMode::kPseudo;
  level.pad_attrs = {"e", "h", "i"};
  ASSERT_OK_AND_ASSIGN(Table fused, RunFused(input, {level}));

  ASSERT_OK_AND_ASSIGN(
      NestedRelation nested,
      Nest(input, {"b", "c", "d", "e", "h", "i"}, {"j", "l"}, "grp"));
  ASSERT_OK_AND_ASSIGN(
      Table materialized,
      LinkingSelect(nested,
                    MakeLinkingPredicate(LinkOp::kAll, CmpOp::kGt, "h", "grp",
                                         "j", "l"),
                    SelectionMode::kPseudo, {"e", "h", "i"}));
  ExpectTablesEqual(materialized, fused);
}

TEST(FusedTest, EmptyInputYieldsEmptyOutput) {
  Table input = MakeTable({"a", "b", "k"}, {});
  FusedLevelSpec level;
  level.nesting_attrs = {"a"};
  level.pred =
      MakeLinkingPredicate(LinkOp::kExists, CmpOp::kEq, "", "", "b", "k");
  level.mode = SelectionMode::kStrict;
  ASSERT_OK_AND_ASSIGN(Table out, RunFused(std::move(input), {level}));
  EXPECT_EQ(out.num_rows(), 0);
}

TEST(FusedTest, ExistsAndNotExists) {
  // Outer 1 has a real member, outer 2 only padding.
  Table input = MakeTable({"a", "b", "k"}, {
                                               {I(1), I(9), I(1)},
                                               {I(2), N(), N()},
                                           });
  FusedLevelSpec exists;
  exists.nesting_attrs = {"a"};
  exists.pred =
      MakeLinkingPredicate(LinkOp::kExists, CmpOp::kEq, "", "", "b", "k");
  exists.mode = SelectionMode::kStrict;
  ASSERT_OK_AND_ASSIGN(Table e, RunFused(input, {exists}));
  ExpectTablesEqual(MakeTable({"a"}, {{I(1)}}), e);

  FusedLevelSpec not_exists = exists;
  not_exists.pred =
      MakeLinkingPredicate(LinkOp::kNotExists, CmpOp::kEq, "", "", "b", "k");
  ASSERT_OK_AND_ASSIGN(Table ne, RunFused(input, {not_exists}));
  ExpectTablesEqual(MakeTable({"a"}, {{I(2)}}), ne);
}

TEST(FusedTest, GroupCountersTrackLevels) {
  Table input = MakeTable({"a", "b", "k"}, {
                                               {I(1), I(9), I(1)},
                                               {I(1), I(8), I(2)},
                                               {I(2), N(), N()},
                                           });
  auto sort = std::make_unique<SortNode>(
      std::make_unique<TableSourceNode>(std::move(input)),
      std::vector<SortKey>{{"a", true}});
  FusedLevelSpec level;
  level.nesting_attrs = {"a"};
  level.pred =
      MakeLinkingPredicate(LinkOp::kExists, CmpOp::kEq, "", "", "b", "k");
  level.mode = SelectionMode::kStrict;
  std::vector<FusedLevelSpec> levels{level};
  FusedNestSelectNode fused(std::move(sort), std::move(levels));
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&fused));
  EXPECT_EQ(out.num_rows(), 1);
  ASSERT_EQ(fused.groups_closed().size(), 1u);
  EXPECT_EQ(fused.groups_closed()[0], 2);
}

TEST(FusedTest, RejectsNonPrefixLevels) {
  Table input = MakeTable({"a", "b", "c", "k"}, {{I(1), I(2), I(3), I(4)}});
  FusedLevelSpec outer;
  outer.nesting_attrs = {"a"};
  outer.pred =
      MakeLinkingPredicate(LinkOp::kExists, CmpOp::kEq, "", "", "b", "k");
  FusedLevelSpec inner;
  inner.nesting_attrs = {"b", "c"};  // does not contain "a"
  inner.pred =
      MakeLinkingPredicate(LinkOp::kExists, CmpOp::kEq, "", "", "b", "k");
  auto sort = std::make_unique<SortNode>(
      std::make_unique<TableSourceNode>(std::move(input)),
      std::vector<SortKey>{{"b", true}, {"c", true}});
  FusedNestSelectNode fused(std::move(sort), {outer, inner});
  EXPECT_FALSE(fused.Open().ok());
}

}  // namespace
}  // namespace nestra
