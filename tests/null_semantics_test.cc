// Section 2 of the paper claims the classical rewrites are unsound under
// NULLs:
//   "Because of null values, R.A > ALL (select S.B ...) is not equal to an
//    antijoin of R and S on the condition R.A <= S.B. Furthermore, [it] is
//    not equal to R.A > (select max(S.B) ...) ... Readers can convince
//    themselves by assuming that R.A is 5 and S.B is {2, 3, 4, null}."
// These tests reproduce exactly that scenario and verify that the nested
// relational approach agrees with SQL (the nested-iteration oracle) while
// the antijoin and the MAX rewrite do not.

#include <gtest/gtest.h>

#include "baseline/count_rewrite.h"
#include "baseline/nested_iteration.h"
#include "baseline/unnest_semijoin.h"
#include "exec/hash_join.h"
#include "nra/executor.h"
#include "plan/binder.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;

class NullSemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // big: one row with A = 5. vals: B = {2, 3, 4, null}, all in group 1.
    ASSERT_OK(catalog_.RegisterTable(
        "big", MakeTable({"ka", "va"}, {{I(1), I(5)}}), "ka"));
    ASSERT_OK(catalog_.RegisterTable(
        "vals",
        MakeTable({"kb", "grp", "vb"}, {{I(1), I(1), I(2)},
                                        {I(2), I(1), I(3)},
                                        {I(3), I(1), I(4)},
                                        {I(4), I(1), N()}}),
        "kb"));
  }

  const char* kAllQuery =
      "select va from big where va > all "
      "(select vb from vals where vals.grp = big.ka)";

  Catalog catalog_;
};

TEST_F(NullSemanticsTest, SqlSemanticsRejectTheRow) {
  // 5 > ALL {2,3,4,null} is UNKNOWN: the oracle returns nothing.
  NestedIterationExecutor oracle(catalog_, {.use_indexes = false});
  ASSERT_OK_AND_ASSIGN(Table out, oracle.ExecuteSql(kAllQuery));
  EXPECT_EQ(out.num_rows(), 0);
}

TEST_F(NullSemanticsTest, NestedRelationalApproachAgreesWithSql) {
  for (const NraOptions& opts :
       {NraOptions::Original(), NraOptions::Optimized()}) {
    NraExecutor exec(catalog_, opts);
    ASSERT_OK_AND_ASSIGN(Table out, exec.ExecuteSql(kAllQuery));
    EXPECT_EQ(out.num_rows(), 0) << opts.ToString();
  }
}

TEST_F(NullSemanticsTest, AntijoinRewriteKeepsTheRowWrongly) {
  // Antijoin of big and vals on va <= vb (the negated ALL comparison):
  // the NULL member compares UNKNOWN = "no match", so the row SURVIVES the
  // antijoin — differing from SQL. This is the paper's first claim.
  auto l = std::make_unique<TableSourceNode>(
      MakeTable({"big.ka", "big.va"}, {{I(1), I(5)}}));
  auto r = std::make_unique<TableSourceNode>(
      MakeTable({"vals.grp", "vals.vb"},
                {{I(1), I(2)}, {I(1), I(3)}, {I(1), I(4)}, {I(1), N()}}));
  HashJoinNode anti(std::move(l), std::move(r), JoinType::kLeftAnti,
                    {{"big.ka", "vals.grp"}},
                    Cmp(CmpOp::kLe, Col("big.va"), Col("vals.vb")));
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&anti));
  EXPECT_EQ(out.num_rows(), 1);  // wrong vs SQL, by design of the rewrite
}

TEST_F(NullSemanticsTest, MaxRewriteKeepsTheRowWrongly) {
  // MAX ignores the NULL: max{2,3,4,null} = 4 and 5 > 4, so the rewrite
  // keeps the row — the paper's second claim.
  ASSERT_OK_AND_ASSIGN(QueryBlockPtr root, ParseAndBind(kAllQuery, catalog_));
  ASSERT_OK_AND_ASSIGN(Table out, ExecuteAggRewrite(*root, catalog_));
  EXPECT_EQ(out.num_rows(), 1);  // diverges from the (empty) oracle result
}

TEST_F(NullSemanticsTest, SystemARefusesAntijoinWithoutNotNull) {
  // Without a NOT NULL constraint on vals.vb, the modelled System A cannot
  // use the antijoin (the Query 1 discussion in Section 5.2).
  ASSERT_OK_AND_ASSIGN(QueryBlockPtr root, ParseAndBind(kAllQuery, catalog_));
  SemiAntiUnnester unnester(catalog_);
  const std::string reason = unnester.CheckApplicable(*root);
  EXPECT_NE(reason.find("NOT NULL"), std::string::npos) << reason;
}

TEST_F(NullSemanticsTest, AntijoinIsCorrectWhenColumnsAreNotNull) {
  // Drop the NULL row and declare the constraint: now ALL == antijoin and
  // every strategy agrees. 5 > ALL {2,3,4} is TRUE.
  ASSERT_OK(catalog_.DropTable("vals"));
  ASSERT_OK(catalog_.RegisterTable(
      "vals",
      MakeTable({"kb", "grp", "vb"},
                {{I(1), I(1), I(2)}, {I(2), I(1), I(3)}, {I(3), I(1), I(4)}}),
      "kb", {"vb", "grp"}));
  ASSERT_OK(catalog_.AddNotNull("big", "va"));

  NestedIterationExecutor oracle(catalog_, {.use_indexes = false});
  ASSERT_OK_AND_ASSIGN(Table expected, oracle.ExecuteSql(kAllQuery));
  EXPECT_EQ(expected.num_rows(), 1);

  ASSERT_OK_AND_ASSIGN(QueryBlockPtr root, ParseAndBind(kAllQuery, catalog_));
  SemiAntiUnnester unnester(catalog_);
  ASSERT_EQ(unnester.CheckApplicable(*root), "");
  ASSERT_OK_AND_ASSIGN(Table anti_out, unnester.Execute(*root));
  ExpectTablesEqual(expected, anti_out);

  NraExecutor nra(catalog_);
  ASSERT_OK_AND_ASSIGN(Table nra_out, nra.ExecuteSql(kAllQuery));
  ExpectTablesEqual(expected, nra_out);
}

TEST_F(NullSemanticsTest, NullLinkingAttributeAlsoBreaksAntijoin) {
  // A NULL on the OUTER side: null > ALL {2} is UNKNOWN (drop), but the
  // antijoin's null <= 2 is UNKNOWN = no match (keep).
  ASSERT_OK(catalog_.DropTable("big"));
  ASSERT_OK(catalog_.RegisterTable(
      "big", MakeTable({"ka", "va"}, {{I(1), N()}}), "ka"));
  NestedIterationExecutor oracle(catalog_, {.use_indexes = false});
  ASSERT_OK_AND_ASSIGN(Table expected, oracle.ExecuteSql(kAllQuery));
  EXPECT_EQ(expected.num_rows(), 0);
  for (const NraOptions& opts :
       {NraOptions::Original(), NraOptions::Optimized()}) {
    NraExecutor exec(catalog_, opts);
    ASSERT_OK_AND_ASSIGN(Table out, exec.ExecuteSql(kAllQuery));
    EXPECT_EQ(out.num_rows(), 0) << opts.ToString();
  }
}

TEST_F(NullSemanticsTest, NotInVersusAntijoinOnNullProbe) {
  // k NOT IN {...} with a NULL k: SQL drops (UNKNOWN); a plain antijoin
  // keeps. The NRA pipeline must agree with SQL.
  ASSERT_OK(catalog_.RegisterTable(
      "probe", MakeTable({"pk", "pv"}, {{I(1), N()}, {I(2), I(9)}}), "pk"));
  const char* q =
      "select pk from probe where pv not in (select vb from vals where vb is "
      "not null)";
  NestedIterationExecutor oracle(catalog_, {.use_indexes = false});
  ASSERT_OK_AND_ASSIGN(Table expected, oracle.ExecuteSql(q));
  // pv=9: 9 NOT IN {2,3,4} -> TRUE; pv=null -> UNKNOWN.
  ExpectTablesEqual(MakeTable({"probe.pk"}, {{I(2)}}), expected);
  NraExecutor nra(catalog_);
  ASSERT_OK_AND_ASSIGN(Table out, nra.ExecuteSql(q));
  ExpectTablesEqual(expected, out);
}

}  // namespace
}  // namespace nestra
