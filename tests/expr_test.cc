#include <gtest/gtest.h>

#include "expr/evaluator.h"
#include "expr/expr.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::I;
using testing_util::N;

Schema TwoIntSchema() {
  return Schema({{"r.a", TypeId::kInt64}, {"r.b", TypeId::kInt64}});
}

TEST(ExprTest, ColumnRefBindsAndEvaluates) {
  ExprPtr e = Col("b");
  ASSERT_OK(e->Bind(TwoIntSchema()));
  EXPECT_EQ(e->Eval(Row({I(1), I(7)})), I(7));
}

TEST(ExprTest, ColumnRefBindFailure) {
  ExprPtr e = Col("nope");
  EXPECT_FALSE(e->Bind(TwoIntSchema()).ok());
}

TEST(ExprTest, ComparisonThreeValued) {
  ExprPtr e = Cmp(CmpOp::kGt, Col("a"), Col("b"));
  ASSERT_OK(e->Bind(TwoIntSchema()));
  EXPECT_EQ(e->EvalBool(Row({I(3), I(2)})), TriBool::kTrue);
  EXPECT_EQ(e->EvalBool(Row({I(2), I(3)})), TriBool::kFalse);
  EXPECT_EQ(e->EvalBool(Row({N(), I(3)})), TriBool::kUnknown);
}

TEST(ExprTest, AndShortCircuitsOnFalse) {
  // a > b AND a = null -> False when a <= b regardless of the Unknown.
  ExprPtr e = MakeAnd([] {
    std::vector<ExprPtr> v;
    v.push_back(Cmp(CmpOp::kGt, Col("a"), Col("b")));
    v.push_back(Cmp(CmpOp::kEq, Col("a"), Lit(N())));
    return v;
  }());
  ASSERT_OK(e->Bind(TwoIntSchema()));
  EXPECT_EQ(e->EvalBool(Row({I(1), I(2)})), TriBool::kFalse);
  EXPECT_EQ(e->EvalBool(Row({I(3), I(2)})), TriBool::kUnknown);
}

TEST(ExprTest, OrKleene) {
  std::vector<ExprPtr> v;
  v.push_back(Cmp(CmpOp::kGt, Col("a"), Col("b")));
  v.push_back(Cmp(CmpOp::kEq, Col("a"), Lit(N())));
  ExprPtr e = MakeOr(std::move(v));
  ASSERT_OK(e->Bind(TwoIntSchema()));
  EXPECT_EQ(e->EvalBool(Row({I(3), I(2)})), TriBool::kTrue);
  EXPECT_EQ(e->EvalBool(Row({I(1), I(2)})), TriBool::kUnknown);
}

TEST(ExprTest, NotUnknownStaysUnknown) {
  ExprPtr e = MakeNot(Cmp(CmpOp::kEq, Col("a"), Lit(N())));
  ASSERT_OK(e->Bind(TwoIntSchema()));
  EXPECT_EQ(e->EvalBool(Row({I(1), I(1)})), TriBool::kUnknown);
}

TEST(ExprTest, IsNullIsTwoValued) {
  ExprPtr e = IsNull(Col("a"));
  ASSERT_OK(e->Bind(TwoIntSchema()));
  EXPECT_EQ(e->EvalBool(Row({N(), I(1)})), TriBool::kTrue);
  EXPECT_EQ(e->EvalBool(Row({I(1), I(1)})), TriBool::kFalse);
  ExprPtr ne = IsNotNull(Col("a"));
  ASSERT_OK(ne->Bind(TwoIntSchema()));
  EXPECT_EQ(ne->EvalBool(Row({N(), I(1)})), TriBool::kFalse);
}

TEST(ExprTest, CloneIsDeepAndRebindable) {
  ExprPtr e = Cmp(CmpOp::kLt, Col("a"), LitInt(5));
  ExprPtr c = e->Clone();
  ASSERT_OK(c->Bind(TwoIntSchema()));
  EXPECT_EQ(c->EvalBool(Row({I(3), I(0)})), TriBool::kTrue);
  // Original remains unbound and independent.
  ASSERT_OK(e->Bind(TwoIntSchema()));
}

TEST(ExprTest, MakeAndFlattens) {
  std::vector<ExprPtr> inner;
  inner.push_back(IsNull(Col("a")));
  inner.push_back(IsNull(Col("b")));
  std::vector<ExprPtr> outer;
  outer.push_back(MakeAnd(std::move(inner)));
  outer.push_back(IsNotNull(Col("a")));
  ExprPtr e = MakeAnd(std::move(outer));
  const auto* a = dynamic_cast<const AndExpr*>(e.get());
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->children().size(), 3u);
}

TEST(ExprTest, EmptyAndIsTrueEmptyOrIsFalse) {
  ExprPtr t = MakeAnd({});
  ExprPtr f = MakeOr({});
  ASSERT_OK(t->Bind(TwoIntSchema()));
  ASSERT_OK(f->Bind(TwoIntSchema()));
  EXPECT_EQ(t->EvalBool(Row({I(1), I(1)})), TriBool::kTrue);
  EXPECT_EQ(f->EvalBool(Row({I(1), I(1)})), TriBool::kFalse);
}

TEST(EvaluatorTest, SplitConjunction) {
  std::vector<ExprPtr> v;
  v.push_back(IsNull(Col("a")));
  v.push_back(IsNull(Col("b")));
  v.push_back(IsNotNull(Col("a")));
  ExprPtr e = MakeAnd(std::move(v));
  const std::vector<ExprPtr> parts = SplitConjunction(std::move(e));
  EXPECT_EQ(parts.size(), 3u);
}

TEST(EvaluatorTest, SplitNonAndYieldsSingle) {
  const std::vector<ExprPtr> parts = SplitConjunction(IsNull(Col("a")));
  EXPECT_EQ(parts.size(), 1u);
}

TEST(EvaluatorTest, ReferencesOnly) {
  ExprPtr e = Cmp(CmpOp::kEq, Col("r.a"), Col("s.x"));
  const Schema r({{"r.a", TypeId::kInt64}});
  const Schema rs({{"r.a", TypeId::kInt64}, {"s.x", TypeId::kInt64}});
  EXPECT_FALSE(ReferencesOnly(*e, r));
  EXPECT_TRUE(ReferencesOnly(*e, rs));
  EXPECT_TRUE(ReferencesAny(*e, r));
}

TEST(EvaluatorTest, DecomposeJoinCondition) {
  const Schema left({{"r.a", TypeId::kInt64}, {"r.b", TypeId::kInt64}});
  const Schema right({{"s.x", TypeId::kInt64}, {"s.y", TypeId::kInt64}});
  std::vector<ExprPtr> conjuncts;
  conjuncts.push_back(Eq(Col("r.a"), Col("s.x")));          // equi
  conjuncts.push_back(Eq(Col("s.y"), Col("r.b")));          // equi, flipped
  conjuncts.push_back(Cmp(CmpOp::kNe, Col("r.a"), Col("s.y")));  // residual
  conjuncts.push_back(Eq(Col("r.a"), Col("r.b")));          // left-only
  JoinCondition c =
      DecomposeJoinCondition(std::move(conjuncts), left, right);
  ASSERT_EQ(c.equi.size(), 2u);
  EXPECT_EQ(c.equi[0].left, "r.a");
  EXPECT_EQ(c.equi[0].right, "s.x");
  EXPECT_EQ(c.equi[1].left, "r.b");
  EXPECT_EQ(c.equi[1].right, "s.y");
  EXPECT_TRUE(c.HasResidual());
}

TEST(EvaluatorTest, BoundPredicateNullIsAlwaysTrue) {
  ASSERT_OK_AND_ASSIGN(BoundPredicate p,
                       BoundPredicate::Make(nullptr, TwoIntSchema()));
  EXPECT_TRUE(p.Matches(Row({N(), N()})));
  EXPECT_TRUE(p.always_true());
}

}  // namespace
}  // namespace nestra
