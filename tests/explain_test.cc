#include <gtest/gtest.h>

#include <string>

#include "nra/executor.h"
#include "nra/explain.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::RegisterPaperRelations;

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterPaperRelations(&catalog_); }

  std::string Explain(const std::string& sql,
                      NraOptions options = NraOptions::Optimized()) {
    Result<std::string> r = ExplainSql(sql, catalog_, options);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : std::string();
  }

  Catalog catalog_;
};

TEST_F(ExplainTest, FlatQuery) {
  const std::string plan = Explain("select b from r where a > 1");
  EXPECT_NE(plan.find("flat query"), std::string::npos) << plan;
}

TEST_F(ExplainTest, QueryQUsesFusedChain) {
  const std::string plan = Explain(testing_util::kQueryQ);
  EXPECT_NE(plan.find("single-sort fused pipeline"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("r.b <> ALL {s.e} (strict)"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("s.h > ALL {t.j} (pseudo)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("nested iteration"), std::string::npos) << plan;
}

TEST_F(ExplainTest, OriginalModeUsesRecursivePath) {
  const std::string plan =
      Explain(testing_util::kQueryQ, NraOptions::Original());
  EXPECT_NE(plan.find("recursive Algorithm 1"), std::string::npos) << plan;
  EXPECT_NE(plan.find("nest then select"), std::string::npos) << plan;
}

TEST_F(ExplainTest, VirtualCartesianProduct) {
  const std::string plan =
      Explain("select d from r where b > some (select e from s)");
  EXPECT_NE(plan.find("virtual Cartesian product"), std::string::npos)
      << plan;
}

TEST_F(ExplainTest, PositiveRewriteReported) {
  NraOptions opts = NraOptions::Optimized();
  opts.rewrite_positive = true;
  const std::string plan = Explain(
      "select b from r where exists (select * from s where s.g = r.d)",
      opts);
  EXPECT_NE(plan.find("semijoin rewrite (4.2.5)"), std::string::npos) << plan;
}

TEST_F(ExplainTest, PushDownReported) {
  NraOptions opts = NraOptions::Optimized();
  opts.push_down_nest = true;
  const std::string plan = Explain(
      "select b from r where b not in (select e from s where s.g = r.d)",
      opts);
  EXPECT_NE(plan.find("nest pushed below join (4.2.4)"), std::string::npos)
      << plan;
}

TEST_F(ExplainTest, BottomUpReported) {
  NraOptions opts = NraOptions::Optimized();
  opts.bottom_up_linear = true;
  const std::string plan = Explain(
      "select b from r where b not in (select e from s where s.g = r.d)",
      opts);
  EXPECT_NE(plan.find("bottom-up linear-correlated pipeline"),
            std::string::npos)
      << plan;
}

TEST_F(ExplainTest, InferredPropertiesReported) {
  const std::string plan = Explain(testing_util::kQueryQ);
  EXPECT_NE(plan.find("=== Inferred properties ==="), std::string::npos)
      << plan;
  // r.c and r.d are NULL-free at load (d is the key); r.a and r.b are not.
  EXPECT_NE(plan.find("block 1 properties: non-null={r.a, r.c, r.d}"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("keys={r.d}"), std::string::npos) << plan;
  // Query Q's middle link compares the nullable r.b: three-valued.
  EXPECT_NE(plan.find("link r.b <> ALL {s.e}: three-valued "
                      "(linking attribute 'r.b' may be NULL)"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("=== Plan verification ===\nverify: 10 rules, "
                      "0 errors, 0 warnings"),
            std::string::npos)
      << plan;
}

TEST_F(ExplainTest, TwoValuedAntijoinReported) {
  const std::string sql =
      "select r.a from r where r.d not in (select s.e from s where s.g = r.d)";
  const std::string plan = Explain(sql);
  EXPECT_NE(plan.find("two-valued antijoin "
                      "(proven non-NULL member comparison)"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("link r.d <> ALL {s.e}: two-valued "
                      "(both operands proven non-NULL)"),
            std::string::npos)
      << plan;
  // Disabling the fast path restores the fused 3VL pipeline.
  NraOptions three_valued = NraOptions::Optimized();
  three_valued.two_valued = false;
  const std::string slow = Explain(sql, three_valued);
  EXPECT_EQ(slow.find("two-valued antijoin"), std::string::npos) << slow;
  EXPECT_NE(slow.find("single-sort fused pipeline"), std::string::npos)
      << slow;
}

TEST_F(ExplainTest, NativePlanReported) {
  const std::string plan = Explain(
      "select b from r where exists (select * from s where s.g = r.d)");
  EXPECT_NE(plan.find("semijoin/antijoin pipeline"), std::string::npos)
      << plan;
}

TEST_F(ExplainTest, FinishDecorations) {
  const std::string plan =
      Explain("select distinct b from r order by b limit 2");
  EXPECT_NE(plan.find("order-by"), std::string::npos) << plan;
  EXPECT_NE(plan.find("distinct"), std::string::npos) << plan;
  EXPECT_NE(plan.find("limit 2"), std::string::npos) << plan;
}

TEST_F(ExplainTest, InvalidSqlPropagates) {
  EXPECT_FALSE(ExplainSql("select nope from r", catalog_).ok());
}

// Golden test on the deterministic parts of EXPLAIN ANALYZE: stage labels,
// phase attribution and row counts are identical on every machine and
// thread count; timings are not asserted.
TEST_F(ExplainTest, ExplainAnalyzeQueryQ) {
  ASSERT_OK_AND_ASSIGN(
      std::string text,
      ExplainAnalyzeSql(testing_util::kQueryQ, catalog_,
                        NraOptions::Optimized()));
  // Static plan first, then the profile.
  EXPECT_NE(text.find("single-sort fused pipeline"), std::string::npos)
      << text;
  EXPECT_NE(text.find("=== Execution profile ==="), std::string::npos)
      << text;
  // Block bases with their exact (filtered) cardinalities: r.a > 1 keeps 2
  // of 4 rows, s.f = 5 keeps all 4, t has no local predicate.
  EXPECT_NE(text.find("stage base[r]  phase=unnest-join rows_out=2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("stage base[s]  phase=unnest-join rows_out=4"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("stage base[t]  phase=unnest-join rows_out=2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("stage join[b2]"), std::string::npos) << text;
  EXPECT_NE(text.find("stage join[b3]"), std::string::npos) << text;
  EXPECT_NE(text.find("stage fused nest+select  phase=linking-selection"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("FusedNestSelect"), std::string::npos) << text;
  EXPECT_NE(text.find("phase=nest"), std::string::npos) << text;
  EXPECT_NE(text.find("stage finish  phase=post-processing"),
            std::string::npos)
      << text;
  // The profiled output cardinality matches a plain execution.
  NraExecutor exec(catalog_, NraOptions::Optimized());
  ASSERT_OK_AND_ASSIGN(Table expected, exec.ExecuteSql(testing_util::kQueryQ));
  EXPECT_NE(text.find("Query profile: " +
                      std::to_string(expected.num_rows()) + " rows"),
            std::string::npos)
      << text;
}

TEST_F(ExplainTest, ExplainAnalyzeCompoundStatement) {
  ASSERT_OK_AND_ASSIGN(
      std::string text,
      ExplainAnalyzeSql("select b from r union all select c from r",
                        catalog_));
  // Each branch's stages carry a branch prefix.
  EXPECT_NE(text.find("stage branch0: base[r]"), std::string::npos) << text;
  EXPECT_NE(text.find("stage branch1: base[r]"), std::string::npos) << text;
  EXPECT_NE(text.find("Query profile: 8 rows"), std::string::npos) << text;
}

}  // namespace
}  // namespace nestra
