#include <gtest/gtest.h>

#include "nra/explain.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::RegisterPaperRelations;

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterPaperRelations(&catalog_); }

  std::string Explain(const std::string& sql,
                      NraOptions options = NraOptions::Optimized()) {
    Result<std::string> r = ExplainSql(sql, catalog_, options);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : std::string();
  }

  Catalog catalog_;
};

TEST_F(ExplainTest, FlatQuery) {
  const std::string plan = Explain("select b from r where a > 1");
  EXPECT_NE(plan.find("flat query"), std::string::npos) << plan;
}

TEST_F(ExplainTest, QueryQUsesFusedChain) {
  const std::string plan = Explain(testing_util::kQueryQ);
  EXPECT_NE(plan.find("single-sort fused pipeline"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("r.b <> ALL {s.e} (strict)"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("s.h > ALL {t.j} (pseudo)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("nested iteration"), std::string::npos) << plan;
}

TEST_F(ExplainTest, OriginalModeUsesRecursivePath) {
  const std::string plan =
      Explain(testing_util::kQueryQ, NraOptions::Original());
  EXPECT_NE(plan.find("recursive Algorithm 1"), std::string::npos) << plan;
  EXPECT_NE(plan.find("nest then select"), std::string::npos) << plan;
}

TEST_F(ExplainTest, VirtualCartesianProduct) {
  const std::string plan =
      Explain("select d from r where b > some (select e from s)");
  EXPECT_NE(plan.find("virtual Cartesian product"), std::string::npos)
      << plan;
}

TEST_F(ExplainTest, PositiveRewriteReported) {
  NraOptions opts = NraOptions::Optimized();
  opts.rewrite_positive = true;
  const std::string plan = Explain(
      "select b from r where exists (select * from s where s.g = r.d)",
      opts);
  EXPECT_NE(plan.find("semijoin rewrite (4.2.5)"), std::string::npos) << plan;
}

TEST_F(ExplainTest, PushDownReported) {
  NraOptions opts = NraOptions::Optimized();
  opts.push_down_nest = true;
  const std::string plan = Explain(
      "select b from r where b not in (select e from s where s.g = r.d)",
      opts);
  EXPECT_NE(plan.find("nest pushed below join (4.2.4)"), std::string::npos)
      << plan;
}

TEST_F(ExplainTest, BottomUpReported) {
  NraOptions opts = NraOptions::Optimized();
  opts.bottom_up_linear = true;
  const std::string plan = Explain(
      "select b from r where b not in (select e from s where s.g = r.d)",
      opts);
  EXPECT_NE(plan.find("bottom-up linear-correlated pipeline"),
            std::string::npos)
      << plan;
}

TEST_F(ExplainTest, NativePlanReported) {
  const std::string plan = Explain(
      "select b from r where exists (select * from s where s.g = r.d)");
  EXPECT_NE(plan.find("semijoin/antijoin pipeline"), std::string::npos)
      << plan;
}

TEST_F(ExplainTest, FinishDecorations) {
  const std::string plan =
      Explain("select distinct b from r order by b limit 2");
  EXPECT_NE(plan.find("order-by"), std::string::npos) << plan;
  EXPECT_NE(plan.find("distinct"), std::string::npos) << plan;
  EXPECT_NE(plan.find("limit 2"), std::string::npos) << plan;
}

TEST_F(ExplainTest, InvalidSqlPropagates) {
  EXPECT_FALSE(ExplainSql("select nope from r", catalog_).ok());
}

}  // namespace
}  // namespace nestra
