// Top-level GROUP BY / HAVING / aggregate select lists — applied after the
// WHERE phase, so they compose with every subquery evaluation strategy
// (all executors share FinalizeRootOutput).

#include <gtest/gtest.h>

#include "baseline/native_optimizer.h"
#include "baseline/nested_iteration.h"
#include "nra/executor.h"
#include "plan/binder.h"
#include "sql/parser.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;
using testing_util::RegisterPaperRelations;

TEST(GroupByParserTest, ClauseOrder) {
  ASSERT_OK_AND_ASSIGN(
      AstSelectPtr sel,
      ParseSelect("select g, count(*) from s where f = 5 group by g "
                  "having count(*) > 1 order by g limit 10"));
  ASSERT_EQ(sel->items.size(), 2u);
  EXPECT_FALSE(sel->items[0].is_agg);
  EXPECT_TRUE(sel->items[1].is_agg);
  EXPECT_EQ(sel->group_by, (std::vector<std::string>{"g"}));
  ASSERT_NE(sel->having, nullptr);
  EXPECT_EQ(sel->having->kind, AstCond::Kind::kCompare);
  EXPECT_TRUE(sel->having->lhs.is_agg);
  EXPECT_EQ(sel->limit, 10);
}

TEST(GroupByParserTest, AggregatesOnlyInHavingNotWhere) {
  // count(...) in WHERE parses as an unknown-table column reference and
  // fails to bind, never as an aggregate.
  ASSERT_OK_AND_ASSIGN(
      AstSelectPtr sel,
      ParseSelect("select g from s where f = 5 group by g"));
  EXPECT_EQ(sel->having, nullptr);
}

TEST(GroupByParserTest, RoundTrip) {
  const char* sql =
      "SELECT g, max(h) FROM s GROUP BY g HAVING count(*) >= 2 ORDER BY g";
  ASSERT_OK_AND_ASSIGN(AstSelectPtr sel, ParseSelect(sql));
  ASSERT_OK_AND_ASSIGN(AstSelectPtr again, ParseSelect(sel->ToString()));
  EXPECT_EQ(again->ToString(), sel->ToString());
}

class GroupByTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterPaperRelations(&catalog_); }

  Table Run(const std::string& sql) {
    NraExecutor exec(catalog_);
    Result<Table> r = exec.ExecuteSql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << sql;
    return r.ok() ? std::move(r).ValueOrDie() : Table();
  }

  Catalog catalog_;
};

TEST_F(GroupByTest, BasicGrouping) {
  // s: g=2 -> {e=1,e=2}, g=4 -> {e=3,e=4}.
  const Table out = Run("select g, count(*), sum(e) from s group by g");
  ExpectTablesEqual(
      MakeTable({"s.g", "count(*)", "sum(s.e)"},
                {{I(2), I(2), I(3)}, {I(4), I(2), I(7)}}),
      out);
}

TEST_F(GroupByTest, AggregatesIgnoreNulls) {
  // h values: g=2 -> {2,7}; g=4 -> {3,null}.
  const Table out =
      Run("select g, count(h), max(h), min(h) from s group by g");
  ExpectTablesEqual(
      MakeTable({"s.g", "count(s.h)", "max(s.h)", "min(s.h)"},
                {{I(2), I(2), I(7), I(2)}, {I(4), I(1), I(3), I(3)}}),
      out);
}

TEST_F(GroupByTest, NullsFormTheirOwnGroup) {
  // r.b: {2, 3, 4, null} with r.a {1,2,3,null}.
  const Table out = Run("select b, count(*) from r group by b");
  EXPECT_EQ(out.num_rows(), 4);  // three values + the NULL group
}

TEST_F(GroupByTest, GlobalAggregateWithoutGroupBy) {
  const Table out = Run("select count(*), max(h) from s");
  ExpectTablesEqual(MakeTable({"count(*)", "max(s.h)"}, {{I(4), I(7)}}), out);
}

TEST_F(GroupByTest, GlobalAggregateOverEmptyInput) {
  const Table out = Run("select count(*), max(h) from s where f = 99");
  ExpectTablesEqual(MakeTable({"count(*)", "max(s.h)"}, {{I(0), N()}}), out);
}

TEST_F(GroupByTest, HavingFilters) {
  const Table out =
      Run("select g from s group by g having max(h) > 5");
  ExpectTablesEqual(MakeTable({"s.g"}, {{I(2)}}), out);
}

TEST_F(GroupByTest, HavingWithHiddenAggregate) {
  // The HAVING aggregate is not in the select list.
  const Table out =
      Run("select g from s group by g having count(h) < 2 and g is not null");
  ExpectTablesEqual(MakeTable({"s.g"}, {{I(4)}}), out);
}

TEST_F(GroupByTest, GroupingComposesWithSubqueries) {
  // Group the NOT EXISTS survivors of the paper data.
  const char* sql =
      "select c, count(*) from r "
      "where not exists (select * from s where s.g = r.d) "
      "group by c";
  // NOT EXISTS keeps r1 (c=3) and r3 (c=5).
  const Table out = Run(sql);
  ExpectTablesEqual(
      MakeTable({"r.c", "count(*)"}, {{I(3), I(1)}, {I(5), I(1)}}), out);

  // And every strategy agrees (they share the finalization).
  NestedIterationExecutor oracle(catalog_, {.use_indexes = false});
  ASSERT_OK_AND_ASSIGN(Table oracle_out, oracle.ExecuteSql(sql));
  ExpectTablesEqual(out, oracle_out);
  ASSERT_OK_AND_ASSIGN(Table native, ExecuteNativeSql(sql, catalog_));
  ExpectTablesEqual(out, native);
}

TEST_F(GroupByTest, OrderByGroupColumnAndLimit) {
  const Table out =
      Run("select g, count(*) from s group by g order by g desc limit 1");
  ASSERT_EQ(out.num_rows(), 1);
  EXPECT_EQ(out.rows()[0], Row({I(4), I(2)}));
}

TEST_F(GroupByTest, BinderErrors) {
  // Non-grouped column in the select list.
  EXPECT_FALSE(ParseAndBind("select e, count(*) from s group by g",
                            catalog_)
                   .ok());
  // Non-grouped column in HAVING.
  EXPECT_FALSE(
      ParseAndBind("select g from s group by g having e > 1", catalog_).ok());
  // GROUP BY in a subquery.
  EXPECT_FALSE(ParseAndBind("select b from r where b in "
                            "(select e from s group by e)",
                            catalog_)
                   .ok());
  // Subquery in HAVING.
  EXPECT_FALSE(ParseAndBind("select g from s group by g having "
                            "exists (select * from t)",
                            catalog_)
                   .ok());
  // SELECT * with GROUP BY.
  EXPECT_FALSE(ParseAndBind("select * from s group by g", catalog_).ok());
  // ORDER BY a non-grouping column.
  EXPECT_FALSE(ParseAndBind("select g from s group by g order by e",
                            catalog_)
                   .ok());
}

TEST_F(GroupByTest, DuplicateAggregatesShareOneComputation) {
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr root,
      ParseAndBind("select g, max(h) from s group by g having max(h) > 1",
                   catalog_));
  EXPECT_EQ(root->aggregates.size(), 1u);  // deduplicated
  EXPECT_EQ(root->aggregates[0].output_name, "max(s.h)");
}

}  // namespace
}  // namespace nestra
