// Equivalence of pipelined (stage-DAG) and staged execution: for every
// query, option set, engine (row / vectorized), and parallelism degree,
// running with `NraOptions::pipelined` must produce results ROW-EXACTLY
// equal to the staged run — same row order, same value representations —
// and an identical EXPLAIN ANALYZE stage list. The DAG only changes *when*
// whole stages run (independent pipelines overlap on the shared pool),
// never what they produce (DESIGN.md §11): every task is internally
// deterministic and task-local profiles merge in creation order, which the
// builders arrange to equal the staged emission order.
//
// Also covered here: the StageDag scheduler itself (error-first semantics,
// failure-skip cascades, stats merging) and the PipelineRole operator
// classification that documents where pipeline boundaries fall.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/date.h"
#include "exec/aggregate.h"
#include "exec/distinct.h"
#include "exec/hash_join.h"
#include "exec/limit.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "nested/fused_nest_select.h"
#include "nra/executor.h"
#include "nra/pipeline.h"
#include "nra/profile.h"
#include "query_generator.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::QueryGenerator;

constexpr int kThreadDegrees[] = {1, 2, 8};

void ExpectRowExact(const Table& staged, const Table& pipelined,
                    const std::string& context) {
  ASSERT_EQ(staged.num_rows(), pipelined.num_rows()) << context;
  for (int64_t i = 0; i < staged.num_rows(); ++i) {
    ASSERT_TRUE(staged.rows()[static_cast<size_t>(i)] ==
                pipelined.rows()[static_cast<size_t>(i)])
        << context << "\nfirst divergence at row " << i << "\nstaged:\n"
        << staged.ToString() << "pipelined:\n"
        << pipelined.ToString();
  }
}

void ExpectSameStages(const QueryProfile& staged,
                      const QueryProfile& pipelined,
                      const std::string& context) {
  ASSERT_EQ(staged.stages().size(), pipelined.stages().size()) << context;
  for (size_t i = 0; i < staged.stages().size(); ++i) {
    const ProfiledStage& s = staged.stages()[i];
    const ProfiledStage& p = pipelined.stages()[i];
    EXPECT_EQ(s.label, p.label) << context << " (stage " << i << ")";
    EXPECT_EQ(s.phase, p.phase) << context << " (stage " << i << ")";
    EXPECT_EQ(s.rows_out, p.rows_out) << context << " (stage " << i << ")";
  }
}

std::vector<std::pair<std::string, NraOptions>> OptionVariants() {
  std::vector<std::pair<std::string, NraOptions>> configs;
  configs.emplace_back("optimized", NraOptions::Optimized());
  configs.emplace_back("original", NraOptions::Original());
  {
    NraOptions o = NraOptions::Optimized();
    o.push_down_nest = true;
    o.rewrite_positive = true;
    o.bottom_up_linear = true;
    configs.emplace_back("all-rewrites", o);
  }
  {
    NraOptions o = NraOptions::Optimized();
    o.magic_restriction = true;
    configs.emplace_back("magic", o);
  }
  return configs;
}

void CheckPipelinedMatchesStaged(const Catalog& catalog,
                                 const std::string& sql) {
  for (const auto& [name, base] : OptionVariants()) {
    for (const bool vectorized : {false, true}) {
      for (const int threads : kThreadDegrees) {
        const std::string context =
            name + (vectorized ? "/vec" : "/row") +
            "/threads=" + std::to_string(threads) + "\n" + sql;

        NraOptions staged_opts = base;
        staged_opts.num_threads = threads;
        staged_opts.vectorized = vectorized;
        staged_opts.pipelined = false;
        staged_opts.profile = true;
        NraExecutor staged_exec(catalog, staged_opts);
        QueryProfile staged_profile;
        NraStats staged_stats;
        Result<Table> staged =
            staged_exec.ExecuteSql(sql, &staged_stats, &staged_profile);
        ASSERT_TRUE(staged.ok())
            << context << ": " << staged.status().ToString();

        NraOptions pipe_opts = staged_opts;
        pipe_opts.pipelined = true;
        NraExecutor pipe_exec(catalog, pipe_opts);
        QueryProfile pipe_profile;
        NraStats pipe_stats;
        Result<Table> pipelined =
            pipe_exec.ExecuteSql(sql, &pipe_stats, &pipe_profile);
        ASSERT_TRUE(pipelined.ok())
            << context << ": " << pipelined.status().ToString();

        ExpectRowExact(*staged, *pipelined, context);
        ExpectSameStages(staged_profile, pipe_profile, context);
        // The deterministic NraStats fields must agree too (timings are
        // wall-clock and may not).
        EXPECT_EQ(staged_stats.intermediate_rows, pipe_stats.intermediate_rows)
            << context;
        EXPECT_EQ(staged_stats.output_rows, pipe_stats.output_rows) << context;
      }
    }
  }
}

// ---------- The paper's experiment queries on TPC-H data ----------

class PipelinedTpchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig config;
    config.scale = 0.04;
    config.declare_not_null = true;
    ASSERT_OK(PopulateTpch(&catalog_, config));
  }

  std::string Query1Sql() {
    const Table* orders = *catalog_.GetTable("orders");
    const Value lo = *ColumnQuantile(*orders, "o_orderdate", 0.2);
    const Value hi = *ColumnQuantile(*orders, "o_orderdate", 0.8);
    return MakeQuery1(FormatDate(lo.int64()), FormatDate(hi.int64()));
  }

  Catalog catalog_;
};

TEST_F(PipelinedTpchTest, Query1) {
  CheckPipelinedMatchesStaged(catalog_, Query1Sql());
}

TEST_F(PipelinedTpchTest, Query2aMixed) {
  CheckPipelinedMatchesStaged(
      catalog_,
      MakeQuery2(10, 40, 5000, 25, OuterLink::kAny, InnerLink::kNotExists));
}

TEST_F(PipelinedTpchTest, Query3aMixed) {
  CheckPipelinedMatchesStaged(
      catalog_, MakeQuery3(10, 40, 5000, 25, OuterLink::kAll,
                           InnerLink::kExists, Query3Variant::kVariantA));
}

TEST_F(PipelinedTpchTest, Query3bNegative) {
  CheckPipelinedMatchesStaged(
      catalog_, MakeQuery3(10, 40, 5000, 25, OuterLink::kAll,
                           InnerLink::kNotExists, Query3Variant::kVariantB));
}

// ---------- Fuzzed query corpus ----------

class PipelinedFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelinedFuzzTest, PipelinedIsBitIdenticalToStaged) {
  QueryGenerator gen(GetParam());
  Catalog catalog;
  gen.PopulateTables(&catalog);

  for (int i = 0; i < 8; ++i) {
    const std::string sql = gen.RandomQuery();
    SCOPED_TRACE(sql);
    CheckPipelinedMatchesStaged(catalog, sql);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinedFuzzTest,
                         ::testing::Range<uint64_t>(0, 8));

// ---------- StageDag scheduler unit tests ----------

TEST(StageDagTest, RunsTasksRespectingDependencies) {
  for (const int threads : kThreadDegrees) {
    StageDag dag;
    std::atomic<int> order{0};
    std::vector<int> seen(3, -1);
    const int a = dag.AddTask("a", {}, [&](NraStats*, QueryProfile*) {
      seen[0] = order.fetch_add(1);
      return Status::OK();
    });
    const int b = dag.AddTask("b", {a}, [&](NraStats*, QueryProfile*) {
      seen[1] = order.fetch_add(1);
      return Status::OK();
    });
    dag.AddTask("c", {a, b}, [&](NraStats*, QueryProfile*) {
      seen[2] = order.fetch_add(1);
      return Status::OK();
    });
    ASSERT_OK(dag.Run(threads, nullptr, nullptr));
    EXPECT_LT(seen[0], seen[1]) << "threads=" << threads;
    EXPECT_LT(seen[1], seen[2]) << "threads=" << threads;
  }
}

TEST(StageDagTest, IndependentTasksAllRunAndStatsMerge) {
  for (const int threads : kThreadDegrees) {
    StageDag dag;
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i) {
      dag.AddTask("t" + std::to_string(i), {},
                  [&, i](NraStats* s, QueryProfile*) {
                    ran.fetch_add(1);
                    s->join_seconds += 1.0;
                    s->intermediate_rows = i;
                    return Status::OK();
                  });
    }
    NraStats stats;
    ASSERT_OK(dag.Run(threads, &stats, nullptr));
    EXPECT_EQ(ran.load(), 16) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(stats.join_seconds, 16.0) << "threads=" << threads;
    EXPECT_EQ(stats.intermediate_rows, 15) << "threads=" << threads;
  }
}

TEST(StageDagTest, FailureSkipsDependentsAndSurfacesFirstError) {
  for (const int threads : kThreadDegrees) {
    StageDag dag;
    std::atomic<bool> dependent_ran{false};
    const int bad = dag.AddTask("bad", {}, [](NraStats*, QueryProfile*) {
      return Status::Internal("boom");
    });
    const int child =
        dag.AddTask("child", {bad}, [&](NraStats*, QueryProfile*) {
          dependent_ran.store(true);
          return Status::OK();
        });
    dag.AddTask("grandchild", {child}, [&](NraStats*, QueryProfile*) {
      dependent_ran.store(true);
      return Status::OK();
    });
    const Status s = dag.Run(threads, nullptr, nullptr);
    EXPECT_FALSE(s.ok()) << "threads=" << threads;
    EXPECT_NE(s.ToString().find("boom"), std::string::npos)
        << "threads=" << threads;
    EXPECT_FALSE(dependent_ran.load()) << "threads=" << threads;
  }
}

TEST(StageDagTest, ProfilesMergeInCreationOrder) {
  // Two independent tasks can complete in either real-time order under a
  // parallel schedule, but the merged profile must always list stages in
  // task-creation order — that is the whole bit-identity contract.
  for (const int threads : kThreadDegrees) {
    StageDag dag;
    dag.AddTask("first", {}, [](NraStats*, QueryProfile* p) {
      StageTimer timer(p, QueryPhase::kUnnestJoin, "stage-first");
      timer.Finish(1);
      return Status::OK();
    });
    dag.AddTask("second", {}, [](NraStats*, QueryProfile* p) {
      StageTimer timer(p, QueryPhase::kNest, "stage-second");
      timer.Finish(2);
      return Status::OK();
    });
    QueryProfile profile;
    ASSERT_OK(dag.Run(threads, nullptr, &profile));
    ASSERT_EQ(profile.stages().size(), 2u) << "threads=" << threads;
    EXPECT_EQ(profile.stages()[0].label, "stage-first");
    EXPECT_EQ(profile.stages()[1].label, "stage-second");
    EXPECT_EQ(profile.stages()[0].rows_out, 1);
    EXPECT_EQ(profile.stages()[1].rows_out, 2);
  }
}

// ---------- PipelineRole classification ----------

TEST(PipelineRoleTest, OperatorsReportTheirDocumentedRoles) {
  const Schema schema{{{"a", TypeId::kInt64, false}}};
  Table table{schema};
  auto source = [&] { return std::make_unique<TableSourceNode>(table); };

  EXPECT_EQ(source()->role(), PipelineRole::kSource);
  EXPECT_EQ(ScanNode(&table, "t").role(), PipelineRole::kSource);
  EXPECT_EQ(SortNode(source(), {{"a", true}}, 1, false).role(),
            PipelineRole::kBreaker);
  EXPECT_EQ(AggregateNode(source(), {"a"}, {}).role(),
            PipelineRole::kBreaker);
  EXPECT_EQ(DistinctNode(source()).role(), PipelineRole::kSerialStreaming);
  EXPECT_EQ(LimitNode(source(), 1).role(), PipelineRole::kSerialStreaming);
  EXPECT_EQ(HashJoinNode(source(), source(), JoinType::kInner, {}, nullptr)
                .role(),
            PipelineRole::kBreaker);
  EXPECT_EQ(FusedNestSelectNode(source(), {}).role(),
            PipelineRole::kSerialStreaming);

  EXPECT_STREQ(PipelineRoleLabel(PipelineRole::kSource), "source");
  EXPECT_STREQ(PipelineRoleLabel(PipelineRole::kStreaming), "streaming");
  EXPECT_STREQ(PipelineRoleLabel(PipelineRole::kSerialStreaming),
               "serial-streaming");
  EXPECT_STREQ(PipelineRoleLabel(PipelineRole::kBreaker), "breaker");
}

}  // namespace
}  // namespace nestra
