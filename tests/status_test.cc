#include <gtest/gtest.h>

#include <string>

#include "common/status.h"
#include "test_util.h"

namespace nestra {
namespace {

TEST(StatusTest, OkByDefault) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::BindError("x").code(), StatusCode::kBindError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  const Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "Parse error: bad token");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(std::move(r).ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  // Constructing a Result from an OK status is a bug; it must surface as an
  // error rather than a crash or an empty success.
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

namespace macros {

Status Fails() { return Status::InvalidArgument("boom"); }
Status Succeeds() { return Status::OK(); }
Result<int> Gives(int v) { return v; }
Result<int> Errors() { return Status::NotFound("gone"); }

Status UseReturnNotOk(bool fail) {
  NESTRA_RETURN_NOT_OK(fail ? Fails() : Succeeds());
  return Status::OK();
}

Result<int> UseAssignOrReturn(bool fail) {
  NESTRA_ASSIGN_OR_RETURN(int a, fail ? Errors() : Gives(1));
  NESTRA_ASSIGN_OR_RETURN(int b, Gives(2));  // two in one scope: no clash
  return a + b;
}

}  // namespace macros

TEST(MacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(macros::UseReturnNotOk(false).ok());
  EXPECT_EQ(macros::UseReturnNotOk(true).code(),
            StatusCode::kInvalidArgument);
}

TEST(MacroTest, AssignOrReturnPropagates) {
  const Result<int> ok = macros::UseAssignOrReturn(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 3);
  const Result<int> bad = macros::UseAssignOrReturn(true);
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kTypeError,
        StatusCode::kParseError, StatusCode::kBindError,
        StatusCode::kNotImplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

}  // namespace
}  // namespace nestra
