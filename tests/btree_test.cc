#include <gtest/gtest.h>

#include <map>
#include <set>

#include "storage/btree_index.h"
#include "tpch/random.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;

TEST(BTreeTest, EmptyTree) {
  BTreeIndex tree(4);
  std::string why;
  EXPECT_TRUE(tree.Validate(&why)) << why;
  EXPECT_EQ(tree.num_keys(), 0);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.Lookup(CmpOp::kEq, I(1)).empty());
  EXPECT_TRUE(tree.Range(Value::Null(), true, Value::Null(), true).empty());
}

TEST(BTreeTest, BasicInsertAndLookup) {
  BTreeIndex tree(4);
  for (int64_t k : {5, 1, 9, 3, 7}) tree.Insert(I(k), k * 10);
  std::string why;
  ASSERT_TRUE(tree.Validate(&why)) << why;
  EXPECT_EQ(tree.Lookup(CmpOp::kEq, I(3)), (std::vector<int64_t>{30}));
  EXPECT_EQ(tree.Lookup(CmpOp::kLt, I(5)).size(), 2u);
  EXPECT_EQ(tree.Lookup(CmpOp::kLe, I(5)).size(), 3u);
  EXPECT_EQ(tree.Lookup(CmpOp::kGt, I(5)).size(), 2u);
  EXPECT_EQ(tree.Lookup(CmpOp::kGe, I(5)).size(), 3u);
  EXPECT_EQ(tree.Lookup(CmpOp::kNe, I(5)).size(), 4u);
}

TEST(BTreeTest, DuplicateKeysShareAnEntry) {
  BTreeIndex tree(4);
  tree.Insert(I(1), 100);
  tree.Insert(I(1), 101);
  tree.Insert(I(1), 102);
  EXPECT_EQ(tree.num_keys(), 1);
  EXPECT_EQ(tree.num_entries(), 3);
  EXPECT_EQ(tree.Lookup(CmpOp::kEq, I(1)).size(), 3u);
  std::string why;
  EXPECT_TRUE(tree.Validate(&why)) << why;
}

TEST(BTreeTest, SplitsGrowHeight) {
  BTreeIndex tree(3);  // tiny nodes force deep trees
  for (int64_t k = 0; k < 200; ++k) tree.Insert(I(k), k);
  EXPECT_GT(tree.height(), 3);
  std::string why;
  ASSERT_TRUE(tree.Validate(&why)) << why;
  // Full ascending range enumerates everything in order.
  const std::vector<int64_t> all =
      tree.Range(Value::Null(), true, Value::Null(), true);
  ASSERT_EQ(all.size(), 200u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], static_cast<int64_t>(i));
  }
}

TEST(BTreeTest, NullKeysIgnored) {
  const Table t = MakeTable({"k"}, {{I(1)}, {N()}, {I(2)}});
  const BTreeIndex tree(t, 0, 4);
  EXPECT_EQ(tree.num_entries(), 2);
  EXPECT_TRUE(tree.Lookup(CmpOp::kEq, N()).empty());
}

TEST(BTreeTest, RangeBounds) {
  BTreeIndex tree(4);
  for (int64_t k = 1; k <= 10; ++k) tree.Insert(I(k), k);
  EXPECT_EQ(tree.Range(I(3), true, I(7), true).size(), 5u);
  EXPECT_EQ(tree.Range(I(3), false, I(7), false).size(), 3u);
  EXPECT_EQ(tree.Range(I(3), true, I(3), true).size(), 1u);
  EXPECT_EQ(tree.Range(I(11), true, Value::Null(), true).size(), 0u);
  EXPECT_EQ(tree.Range(Value::Null(), true, I(0), true).size(), 0u);
}

class BTreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreePropertyTest, AgreesWithReferenceMultimap) {
  Rng rng(GetParam());
  const int max_keys = static_cast<int>(rng.UniformInt(3, 16));
  BTreeIndex tree(max_keys);
  std::multimap<int64_t, int64_t> reference;

  const int64_t inserts = rng.UniformInt(100, 800);
  for (int64_t i = 0; i < inserts; ++i) {
    const int64_t key = rng.UniformInt(-50, 50);
    tree.Insert(I(key), i);
    reference.emplace(key, i);
  }
  std::string why;
  ASSERT_TRUE(tree.Validate(&why)) << why << " (max_keys " << max_keys << ")";
  ASSERT_EQ(tree.num_entries(), static_cast<int64_t>(reference.size()));

  for (int trial = 0; trial < 40; ++trial) {
    const int64_t probe = rng.UniformInt(-60, 60);
    // Equality.
    {
      std::multiset<int64_t> expected;
      auto [lo, hi] = reference.equal_range(probe);
      for (auto it = lo; it != hi; ++it) expected.insert(it->second);
      const std::vector<int64_t> got = tree.Lookup(CmpOp::kEq, I(probe));
      EXPECT_EQ(std::multiset<int64_t>(got.begin(), got.end()), expected);
    }
    // Order probes.
    for (const CmpOp op : {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe,
                           CmpOp::kNe}) {
      std::multiset<int64_t> expected;
      for (const auto& [k, v] : reference) {
        if (IsTrue(Value::Apply(op, I(k), I(probe)))) expected.insert(v);
      }
      const std::vector<int64_t> got = tree.Lookup(op, I(probe));
      EXPECT_EQ(std::multiset<int64_t>(got.begin(), got.end()), expected)
          << "op " << CmpOpToString(op) << " probe " << probe;
    }
    // Random range.
    {
      int64_t a = rng.UniformInt(-60, 60);
      int64_t b = rng.UniformInt(-60, 60);
      if (a > b) std::swap(a, b);
      const bool lo_inc = rng.Bernoulli(0.5);
      const bool hi_inc = rng.Bernoulli(0.5);
      std::multiset<int64_t> expected;
      for (const auto& [k, v] : reference) {
        const bool above = lo_inc ? k >= a : k > a;
        const bool below = hi_inc ? k <= b : k < b;
        if (above && below) expected.insert(v);
      }
      const std::vector<int64_t> got = tree.Range(I(a), lo_inc, I(b), hi_inc);
      EXPECT_EQ(std::multiset<int64_t>(got.begin(), got.end()), expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreePropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

TEST(BTreeTest, WorksOverStringsAndMixedTotalOrder) {
  BTreeIndex tree(4);
  tree.Insert(Value::String("beta"), 1);
  tree.Insert(Value::String("alpha"), 2);
  tree.Insert(Value::String("gamma"), 3);
  std::string why;
  ASSERT_TRUE(tree.Validate(&why)) << why;
  EXPECT_EQ(tree.Lookup(CmpOp::kLt, Value::String("beta")),
            (std::vector<int64_t>{2}));
}

}  // namespace
}  // namespace nestra
