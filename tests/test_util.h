#ifndef NESTRA_TESTS_TEST_UTIL_H_
#define NESTRA_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/table.h"
#include "storage/catalog.h"

namespace nestra {
namespace testing_util {

#define ASSERT_OK(expr)                                            \
  do {                                                             \
    const ::nestra::Status _st = (expr);                           \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                       \
  } while (false)

#define EXPECT_OK(expr)                                            \
  do {                                                             \
    const ::nestra::Status _st = (expr);                           \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                       \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                            \
  ASSERT_OK_AND_ASSIGN_IMPL(NESTRA_CONCAT(_r_, __COUNTER__), lhs, expr)

#define ASSERT_OK_AND_ASSIGN_IMPL(result, lhs, expr)               \
  auto result = (expr);                                            \
  ASSERT_TRUE(result.ok()) << result.status().ToString();          \
  lhs = std::move(result).ValueOrDie()

/// Shorthand value constructors for table literals.
inline Value I(int64_t v) { return Value::Int64(v); }
inline Value F(double v) { return Value::Float64(v); }
inline Value S(std::string v) { return Value::String(std::move(v)); }
inline Value N() { return Value::Null(); }

/// Builds a table of int64 columns (NULLs via N()).
inline Table MakeTable(const std::vector<std::string>& columns,
                       const std::vector<std::vector<Value>>& rows) {
  std::vector<Field> fields;
  for (const std::string& c : columns) {
    fields.emplace_back(c, TypeId::kInt64, /*nullable=*/true);
  }
  Table t{Schema(std::move(fields))};
  for (const auto& r : rows) t.AppendUnchecked(Row(r));
  return t;
}

/// The paper's Figure 1 base relations. Primary keys: R.D, S.I, T.L.
/// R(A,B,C,D) = {(1,2,3,1), (2,3,4,2), (3,4,5,3), (null,null,5,4)}
/// S(E,F,G,H,I) = {(1,5,2,2,1), (2,5,2,7,2), (3,5,4,3,3), (4,5,4,null,4)}
/// T(J,K,L) = {(5,4,1), (null,4,2)}
inline void RegisterPaperRelations(Catalog* catalog) {
  Table r = MakeTable({"a", "b", "c", "d"}, {
                                                {I(1), I(2), I(3), I(1)},
                                                {I(2), I(3), I(4), I(2)},
                                                {I(3), I(4), I(5), I(3)},
                                                {N(), N(), I(5), I(4)},
                                            });
  Table s = MakeTable({"e", "f", "g", "h", "i"},
                      {
                          {I(1), I(5), I(2), I(2), I(1)},
                          {I(2), I(5), I(2), I(7), I(2)},
                          {I(3), I(5), I(4), I(3), I(3)},
                          {I(4), I(5), I(4), N(), I(4)},
                      });
  Table t = MakeTable({"j", "k", "l"}, {
                                           {I(5), I(4), I(1)},
                                           {N(), I(4), I(2)},
                                       });
  ASSERT_OK(catalog->RegisterTable("r", std::move(r), "d"));
  ASSERT_OK(catalog->RegisterTable("s", std::move(s), "i"));
  ASSERT_OK(catalog->RegisterTable("t", std::move(t), "l"));
}

/// The paper's two-level Query Q (Section 2) over the figure-1 relations,
/// spelled in this library's SQL subset.
inline const char* kQueryQ =
    "select r.b, r.c, r.d from r "
    "where r.a > 1 and r.b not in ("
    "  select s.e from s where s.f = 5 and r.d = s.g and s.h > all ("
    "    select t.j from t where t.k = r.c and t.l <> s.i))";

/// Expects bag equality and prints both tables on mismatch.
inline void ExpectTablesEqual(const Table& expected, const Table& actual) {
  EXPECT_TRUE(Table::BagEquals(expected, actual))
      << "expected:\n"
      << expected.ToString() << "actual:\n"
      << actual.ToString();
}

}  // namespace testing_util
}  // namespace nestra

#endif  // NESTRA_TESTS_TEST_UTIL_H_
