#include <gtest/gtest.h>

#include "baseline/count_rewrite.h"
#include "baseline/native_optimizer.h"
#include "baseline/nested_iteration.h"
#include "baseline/unnest_semijoin.h"
#include "plan/binder.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;
using testing_util::RegisterPaperRelations;

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterPaperRelations(&catalog_); }
  Catalog catalog_;
};

TEST_F(BaselineTest, NestedIterationQueryQ) {
  NestedIterationExecutor exec(catalog_);
  NestedIterStats stats;
  ASSERT_OK_AND_ASSIGN(Table out,
                       exec.ExecuteSql(testing_util::kQueryQ, &stats));
  ExpectTablesEqual(
      MakeTable({"r.b", "r.c", "r.d"},
                {{I(3), I(4), I(2)}, {I(4), I(5), I(3)}}),
      out);
  EXPECT_EQ(stats.outer_tuples, 2);  // r.a > 1 leaves r2, r3
  EXPECT_GT(stats.subquery_evals, 0);
}

TEST_F(BaselineTest, NestedIterationWithAndWithoutIndexesAgree) {
  NestedIterationExecutor with_idx(catalog_, {.use_indexes = true});
  NestedIterationExecutor without_idx(catalog_, {.use_indexes = false});
  const char* queries[] = {
      testing_util::kQueryQ,
      "select b from r where exists (select * from s where s.g = r.d)",
      "select d from r where c >= all (select h from s where s.g = r.d)",
      "select l from t where k not in (select h from s)",
  };
  for (const char* q : queries) {
    NestedIterStats s1, s2;
    ASSERT_OK_AND_ASSIGN(Table a, with_idx.ExecuteSql(q, &s1));
    ASSERT_OK_AND_ASSIGN(Table b, without_idx.ExecuteSql(q, &s2));
    EXPECT_TRUE(Table::BagEquals(a, b)) << q;
  }
  // The indexed run actually probes indexes on the equi-correlated queries.
  NestedIterStats stats;
  ASSERT_OK_AND_ASSIGN(
      Table out,
      with_idx.ExecuteSql(
          "select b from r where exists (select * from s where s.g = r.d)",
          &stats));
  EXPECT_GT(stats.index_probes, 0);
}

TEST_F(BaselineTest, BTreeProbeForInequalityCorrelation) {
  // No equality correlation: the indexed nested iteration probes a B+-tree
  // with the flipped comparison and must agree with the plain scan.
  const char* queries[] = {
      "select d from r where exists (select * from s where s.e < r.b)",
      "select d from r where not exists (select * from s where s.e >= r.c)",
      "select d from r where b > some (select e from s where s.e <= r.d)",
  };
  for (const char* q : queries) {
    NestedIterationExecutor with_idx(catalog_, {.use_indexes = true});
    NestedIterationExecutor without_idx(catalog_, {.use_indexes = false});
    NestedIterStats stats;
    ASSERT_OK_AND_ASSIGN(Table a, with_idx.ExecuteSql(q, &stats));
    ASSERT_OK_AND_ASSIGN(Table b, without_idx.ExecuteSql(q));
    EXPECT_TRUE(Table::BagEquals(a, b)) << q;
    EXPECT_GT(stats.index_probes, 0) << q;  // the B+-tree path actually ran
  }
}

TEST_F(BaselineTest, SemiAntiPositivePipeline) {
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr root,
      ParseAndBind(
          "select b from r where exists (select * from s where s.g = r.d)",
          catalog_));
  SemiAntiUnnester unnester(catalog_);
  EXPECT_EQ(unnester.CheckApplicable(*root), "");
  ASSERT_OK_AND_ASSIGN(Table out, unnester.Execute(*root));
  ExpectTablesEqual(MakeTable({"r.b"}, {{I(3)}, {N()}}), out);
}

TEST_F(BaselineTest, SemiAntiNotExists) {
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr root,
      ParseAndBind("select b from r where not exists "
                   "(select * from s where s.g = r.d)",
                   catalog_));
  SemiAntiUnnester unnester(catalog_);
  EXPECT_EQ(unnester.CheckApplicable(*root), "");
  ASSERT_OK_AND_ASSIGN(Table out, unnester.Execute(*root));
  ExpectTablesEqual(MakeTable({"r.b"}, {{I(2)}, {I(4)}}), out);
}

TEST_F(BaselineTest, AntijoinForAllRequiresNotNull) {
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr root,
      ParseAndBind(
          "select d from r where c >= all (select h from s where s.g = r.d)",
          catalog_));
  SemiAntiUnnester unnester(catalog_);
  // s.h is nullable: System A refuses the antijoin.
  EXPECT_NE(unnester.CheckApplicable(*root), "");
  EXPECT_FALSE(unnester.Execute(*root).ok());

  // Declaring NOT NULL (and on the linking side) flips the decision — and
  // on THIS data the antijoin would give a wrong answer, which is exactly
  // why the constraint is required; see null_semantics_test.cc.
  ASSERT_OK(catalog_.AddNotNull("s", "h"));
  ASSERT_OK(catalog_.AddNotNull("r", "c"));
  EXPECT_EQ(unnester.CheckApplicable(*root), "");
}

TEST_F(BaselineTest, SemiAntiRejectsNonAdjacentCorrelation) {
  ASSERT_OK_AND_ASSIGN(QueryBlockPtr root,
                       ParseAndBind(testing_util::kQueryQ, catalog_));
  SemiAntiUnnester unnester(catalog_);
  const std::string reason = unnester.CheckApplicable(*root);
  EXPECT_NE(reason.find("non-adjacent"), std::string::npos) << reason;
}

TEST_F(BaselineTest, SemiAntiRejectsTreeQueries) {
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr root,
      ParseAndBind("select b from r where "
                   "exists (select * from s where s.g = r.d) and "
                   "exists (select * from t where t.k = r.c)",
                   catalog_));
  SemiAntiUnnester unnester(catalog_);
  EXPECT_NE(unnester.CheckApplicable(*root), "");
}

TEST_F(BaselineTest, NativeOptimizerChoices) {
  // Positive one-level: pipeline.
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr positive,
      ParseAndBind(
          "select b from r where exists (select * from s where s.g = r.d)",
          catalog_));
  EXPECT_EQ(ChooseNativePlan(*positive, catalog_).kind,
            NativePlanKind::kSemiAntiPipeline);

  // ALL over a nullable column: nested iteration.
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr all_q,
      ParseAndBind(
          "select d from r where c >= all (select h from s where s.g = r.d)",
          catalog_));
  EXPECT_EQ(ChooseNativePlan(*all_q, catalog_).kind,
            NativePlanKind::kNestedIteration);
}

TEST_F(BaselineTest, NativeMatchesOracleEverywhere) {
  NestedIterationExecutor oracle(catalog_, {.use_indexes = false});
  const char* queries[] = {
      "select b from r where exists (select * from s where s.g = r.d)",
      "select b from r where not exists (select * from s where s.g = r.d)",
      "select d from r where d in (select g from s where g < 3)",
      testing_util::kQueryQ,
  };
  for (const char* q : queries) {
    ASSERT_OK_AND_ASSIGN(Table expected, oracle.ExecuteSql(q));
    NativePlanChoice choice;
    ASSERT_OK_AND_ASSIGN(Table actual,
                         ExecuteNativeSql(q, catalog_, {}, &choice));
    EXPECT_TRUE(Table::BagEquals(expected, actual))
        << q << "\nplan: " << choice.explanation;
  }
}

TEST_F(BaselineTest, AggRewriteApplicability) {
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr good,
      ParseAndBind(
          "select d from r where c >= all (select h from s where s.g = r.d)",
          catalog_));
  EXPECT_EQ(AggRewriteApplicable(*good), "");

  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr eq_all,
      ParseAndBind(
          "select d from r where c = all (select h from s where s.g = r.d)",
          catalog_));
  EXPECT_NE(AggRewriteApplicable(*eq_all), "");

  ASSERT_OK_AND_ASSIGN(QueryBlockPtr two_level,
                       ParseAndBind(testing_util::kQueryQ, catalog_));
  EXPECT_NE(AggRewriteApplicable(*two_level), "");
}

TEST_F(BaselineTest, AggRewriteCorrectWithoutNulls) {
  // Restrict the subquery to non-null h values: rewrite agrees with oracle.
  const char* q =
      "select d from r where c >= all "
      "(select h from s where s.g = r.d and h is not null)";
  ASSERT_OK_AND_ASSIGN(QueryBlockPtr root, ParseAndBind(q, catalog_));
  ASSERT_OK_AND_ASSIGN(Table rewritten, ExecuteAggRewrite(*root, catalog_));
  NestedIterationExecutor oracle(catalog_, {.use_indexes = false});
  ASSERT_OK_AND_ASSIGN(Table expected, oracle.ExecuteSql(q));
  ExpectTablesEqual(expected, rewritten);
}

}  // namespace
}  // namespace nestra
