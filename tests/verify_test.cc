// Static plan verifier: clean bills of health for the paper / TPC-H query
// corpora under every option set, and targeted detection of hand-corrupted
// plans (one per documented rule id).

#include "verify/verifier.h"

#include <gtest/gtest.h>

#include "nra/executor.h"
#include "nra/explain.h"
#include "plan/binder.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::RegisterPaperRelations;
using testing_util::kQueryQ;

// Every measured configuration plus each §4.2.x flag in isolation.
std::vector<NraOptions> AllOptionSets() {
  std::vector<NraOptions> sets{NraOptions::Original(), NraOptions::Optimized()};
  NraOptions o = NraOptions::Optimized();
  o.push_down_nest = true;
  sets.push_back(o);
  o = NraOptions::Optimized();
  o.rewrite_positive = true;
  sets.push_back(o);
  o = NraOptions::Optimized();
  o.bottom_up_linear = true;
  sets.push_back(o);
  o = NraOptions::Original();
  o.nest_method = NestMethod::kHash;
  o.magic_restriction = true;
  sets.push_back(o);
  return sets;
}

class VerifyTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterPaperRelations(&catalog_); }

  QueryBlockPtr Bind(const std::string& sql) {
    Result<QueryBlockPtr> bound = ParseAndBind(sql, catalog_);
    EXPECT_TRUE(bound.ok()) << sql << "\n" << bound.status().ToString();
    return bound.ok() ? std::move(bound).ValueOrDie() : nullptr;
  }

  Catalog catalog_;
};

TEST(VerifyDiagnosticTest, Formatting) {
  const VerifyDiagnostic d{VerifySeverity::kError, 2, verify_rules::kNestSets,
                           "N1 and N2 overlap on 's.e'"};
  EXPECT_EQ(d.ToString(), "error [nest-sets] block 2: N1 and N2 overlap on 's.e'");

  VerifyReport report;
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.clean());
  EXPECT_OK(report.ToStatus());

  report.Add({VerifySeverity::kWarning, 3,
              verify_rules::kCartesianProduct, "pricey"});
  EXPECT_TRUE(report.ok());  // warnings do not fail verification
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.num_errors(), 0);
  EXPECT_EQ(report.num_warnings(), 1);
  EXPECT_OK(report.ToStatus());

  report.Add(d);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.num_errors(), 1);
  EXPECT_TRUE(report.HasRule(verify_rules::kNestSets));
  EXPECT_FALSE(report.HasRule(verify_rules::kKeySurvival));
  EXPECT_EQ(report.CountRule(verify_rules::kCartesianProduct), 1);
  EXPECT_EQ(report.Summary(), "verify: 10 rules, 1 error, 1 warning");
  const Status st = report.ToStatus();
  EXPECT_FALSE(st.ok());
  // Only error-severity diagnostics surface in the status message.
  EXPECT_NE(st.ToString().find("nest-sets"), std::string::npos);
  EXPECT_EQ(st.ToString().find("cartesian-product"), std::string::npos);
}

TEST_F(VerifyTest, PaperCorpusCleanUnderEveryOptionSet) {
  const std::vector<std::string> corpus = {
      kQueryQ,
      "select r.a from r where r.b in (select s.e from s where s.g = r.d)",
      "select r.a from r where r.b not in (select s.e from s where s.g = r.d)",
      "select b from r where exists (select * from s where s.g = r.d)",
      "select b from r where not exists (select * from s where s.g = r.d)",
      "select r.a from r where r.c > (select count(*) from s where s.g = r.d)",
      "select r.a from r where r.b in (select s.e from s)",
      "select r.a from r where r.b > all (select s.g from s where s.g = r.d)",
      "select r.c, count(*) from r where r.b in "
      "(select s.e from s where s.g = r.d) group by r.c order by r.c",
  };
  for (const NraOptions& opts : AllOptionSets()) {
    const PlanVerifier verifier(catalog_, opts);
    for (const std::string& sql : corpus) {
      const QueryBlockPtr root = Bind(sql);
      ASSERT_NE(root, nullptr);
      const VerifyReport report = verifier.Verify(*root);
      EXPECT_TRUE(report.clean())
          << sql << "\n(" << opts.ToString() << ")\n" << report.ToString();
    }
  }
}

TEST_F(VerifyTest, CorruptedOverlappingNestSets) {
  const QueryBlockPtr root =
      Bind("select r.a from r where r.b in (select s.e from s where s.g = r.d)");
  ASSERT_NE(root, nullptr);
  ASSERT_EQ(root->children.size(), 1u);

  // Point the subquery's linked attribute at an *outer* column: N2 now
  // intersects the retained prefix N1, violating the nest's disjointness.
  root->children[0]->linked_attr = "r.b";

  const PlanVerifier verifier(catalog_);
  const VerifyReport report = verifier.Verify(*root);
  EXPECT_FALSE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.HasRule(verify_rules::kNestSets)) << report.ToString();
}

TEST_F(VerifyTest, CorruptedStrictUnderNegativeLink) {
  // A strict-safe chain: both links positive, so the inner selection is
  // planned strict. Flipping the middle link to NOT IN *after* outlining
  // leaves a strict step under a pending negative operator.
  const QueryBlockPtr root = Bind(
      "select r.a from r where r.b in (select s.e from s where s.g = r.d and "
      "s.h in (select t.j from t where t.k = s.i))");
  ASSERT_NE(root, nullptr);

  const PlanVerifier verifier(catalog_, NraOptions::Original());
  const std::vector<PlanStep> steps = verifier.Outline(*root);
  ASSERT_EQ(steps.size(), 2u);
  {
    VerifyReport before;
    verifier.CheckOutline(steps, &before);
    EXPECT_TRUE(before.clean()) << before.ToString();
  }

  root->children[0]->link_op = LinkOp::kNotIn;

  VerifyReport report;
  verifier.CheckOutline(steps, &report);
  EXPECT_FALSE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.HasRule(verify_rules::kLinkMode)) << report.ToString();
}

TEST_F(VerifyTest, CorruptedDroppedKeyAttribute) {
  const QueryBlockPtr root =
      Bind("select r.a from r where r.b in (select s.e from s where s.g = r.d)");
  ASSERT_NE(root, nullptr);
  ASSERT_EQ(root->children.size(), 1u);

  // Without the subquery's key, a NULL-padded tuple is indistinguishable
  // from a genuinely matching one after the outer join.
  root->children[0]->key_attr.clear();

  const PlanVerifier verifier(catalog_);
  const VerifyReport report = verifier.Verify(*root);
  EXPECT_FALSE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.HasRule(verify_rules::kKeySurvival)) << report.ToString();
}

TEST_F(VerifyTest, CorruptedTableNotInCatalog) {
  const QueryBlockPtr root =
      Bind("select r.a from r where r.b in (select s.e from s where s.g = r.d)");
  ASSERT_NE(root, nullptr);
  ASSERT_EQ(root->children.size(), 1u);

  // Retarget the subquery at a table the catalog has never heard of.
  root->children[0]->tables[0].table = "phantom";

  const PlanVerifier verifier(catalog_);
  const VerifyReport report = verifier.Verify(*root);
  EXPECT_FALSE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.HasRule(verify_rules::kSchemaResolve)) << report.ToString();
}

TEST_F(VerifyTest, CorruptedLinkingAttributeUnresolvable) {
  const QueryBlockPtr root =
      Bind("select r.a from r where r.b in (select s.e from s where s.g = r.d)");
  ASSERT_NE(root, nullptr);
  ASSERT_EQ(root->children.size(), 1u);

  // The link's outer operand must resolve in some ancestor block.
  root->children[0]->linking_attr = "r.zzz";

  const PlanVerifier verifier(catalog_);
  const VerifyReport report = verifier.Verify(*root);
  EXPECT_FALSE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.HasRule(verify_rules::kLinkSchema)) << report.ToString();
}

TEST_F(VerifyTest, CorruptedPositiveRewriteMissingOperand) {
  const QueryBlockPtr root =
      Bind("select r.a from r where r.b in (select s.e from s where s.g = r.d)");
  ASSERT_NE(root, nullptr);
  ASSERT_EQ(root->children.size(), 1u);

  // With the §4.2.5 positive-semijoin rewrite enabled the executor builds
  // the extra join condition A θ B from the link operands; blank the inner
  // one and the precondition check must flag the plan.
  NraOptions opts = NraOptions::Optimized();
  opts.rewrite_positive = true;
  root->children[0]->linked_attr.clear();

  const PlanVerifier verifier(catalog_, opts);
  const VerifyReport report = verifier.Verify(*root);
  EXPECT_FALSE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.HasRule(verify_rules::kRewritePrecond))
      << report.ToString();
}

TEST_F(VerifyTest, NullLinkingFiresWhenComparisonProvablyUnknown) {
  // `s.h IS NULL` proves the linked attribute always-NULL among qualifying
  // rows, so the IN member comparison can only ever evaluate to UNKNOWN: the
  // link is constant-valued regardless of the data.
  const QueryBlockPtr root = Bind(
      "select r.a from r where r.b in (select s.h from s where s.h is null)");
  ASSERT_NE(root, nullptr);
  const PlanVerifier verifier(catalog_);
  const VerifyReport report = verifier.Verify(*root);
  EXPECT_TRUE(report.HasRule(verify_rules::kNullLinking)) << report.ToString();
  EXPECT_TRUE(report.ok());  // warning severity: the plan still runs
}

TEST_F(VerifyTest, NullLinkingSilentWhenComparisonCanDecide) {
  // Same shape with IS NOT NULL: the member comparison can decide, so the
  // warning must not fire (the linking side r.b may still be NULL — that
  // makes the link three-valued, not constant).
  const QueryBlockPtr root = Bind(
      "select r.a from r where r.b in "
      "(select s.h from s where s.h is not null)");
  ASSERT_NE(root, nullptr);
  const VerifyReport report = PlanVerifier(catalog_).Verify(*root);
  EXPECT_FALSE(report.HasRule(verify_rules::kNullLinking)) << report.ToString();
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST_F(VerifyTest, ScalarCardFiresWhenNoKeyPinned) {
  // A bare scalar subquery binds as θ SOME; nothing pins a key of s, so the
  // at-most-one-row requirement is unprovable and SOME would silently accept
  // where SQL demands a runtime cardinality error.
  const QueryBlockPtr root =
      Bind("select d from r where b = (select e from s)");
  ASSERT_NE(root, nullptr);
  ASSERT_EQ(root->children.size(), 1u);
  EXPECT_TRUE(root->children[0]->is_scalar_link);
  const VerifyReport report = PlanVerifier(catalog_).Verify(*root);
  EXPECT_TRUE(report.HasRule(verify_rules::kScalarCard)) << report.ToString();
  EXPECT_FALSE(report.ok());  // error severity
}

TEST_F(VerifyTest, ScalarCardSilentWhenKeyPinned) {
  // s.i is the primary key of s: a literal or correlated equality on it
  // bounds the qualifying set to at most one member per outer binding.
  for (const char* sql :
       {"select d from r where b = (select e from s where s.i = 2)",
        "select d from r where b = (select e from s where s.i = r.d)"}) {
    const QueryBlockPtr root = Bind(sql);
    ASSERT_NE(root, nullptr);
    ASSERT_EQ(root->children.size(), 1u);
    EXPECT_TRUE(root->children[0]->is_scalar_link) << sql;
    const VerifyReport report = PlanVerifier(catalog_).Verify(*root);
    EXPECT_FALSE(report.HasRule(verify_rules::kScalarCard))
        << sql << "\n" << report.ToString();
    EXPECT_TRUE(report.ok()) << sql << "\n" << report.ToString();
  }
}

TEST_F(VerifyTest, DeadPseudoFiresOnDeclaredNonNullUnreadPad) {
  // Query Q's inner selection runs in pseudo mode, padding the middle
  // block's attributes {s.e..s.i}. Nothing upward reads s.f; once s.f is
  // declared NOT NULL the padding on it is provably dead.
  ASSERT_OK(catalog_.AddNotNull("s", "f"));
  const QueryBlockPtr root = Bind(kQueryQ);
  ASSERT_NE(root, nullptr);
  const PlanVerifier verifier(catalog_, NraOptions::Original());
  const VerifyReport report = verifier.Verify(*root);
  EXPECT_TRUE(report.HasRule(verify_rules::kDeadPseudo)) << report.ToString();
  EXPECT_TRUE(report.ok());  // advisory warning
  EXPECT_NE(report.ToString().find("s.f"), std::string::npos)
      << report.ToString();
}

TEST_F(VerifyTest, DeadPseudoSilentWithoutDeclaredConstraint) {
  // Same query, no NOT NULL declaration: s.f happens to be NULL-free in the
  // data, but the advisory rule deliberately ignores observed facts — the
  // "remove the pad attribute" advice must stay valid when data changes.
  const QueryBlockPtr root = Bind(kQueryQ);
  ASSERT_NE(root, nullptr);
  const PlanVerifier verifier(catalog_, NraOptions::Original());
  const VerifyReport report = verifier.Verify(*root);
  EXPECT_FALSE(report.HasRule(verify_rules::kDeadPseudo)) << report.ToString();
}

TEST_F(VerifyTest, TwoValuedAntijoinOutlinedAndGuarded) {
  // r.d (primary key) NOT IN s.e (NULL-free at load): the member comparison
  // is proven two-valued, so the default plan runs a plain antijoin.
  const QueryBlockPtr root = Bind(
      "select r.a from r where r.d not in (select s.e from s where s.g = r.d)");
  ASSERT_NE(root, nullptr);
  const PlanVerifier verifier(catalog_, NraOptions::Optimized());
  const std::vector<PlanStep> steps = verifier.Outline(*root);
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].kind, PlanStepKind::kAntijoin);
  EXPECT_EQ(steps[0].mode, SelectionMode::kStrict);
  {
    VerifyReport before;
    verifier.CheckOutline(steps, &before);
    EXPECT_TRUE(before.clean()) << before.ToString();
  }

  // Corrupt the plan: an antijoin step for a *positive* link is wrong in
  // every data set (it would keep non-matching rows only).
  root->children[0]->link_op = LinkOp::kIn;
  VerifyReport report;
  verifier.CheckOutline(steps, &report);
  EXPECT_FALSE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.HasRule(verify_rules::kLinkMode)) << report.ToString();

  // With the fast path disabled the same query outlines as before this
  // optimization existed — no antijoin step anywhere.
  root->children[0]->link_op = LinkOp::kNotIn;
  NraOptions three_valued = NraOptions::Optimized();
  three_valued.two_valued = false;
  const PlanVerifier slow(catalog_, three_valued);
  for (const PlanStep& s : slow.Outline(*root)) {
    EXPECT_NE(s.kind, PlanStepKind::kAntijoin);
  }
}

TEST_F(VerifyTest, ExecutorRejectsCorruptedPlanUpFront) {
  const QueryBlockPtr root =
      Bind("select r.a from r where r.b in (select s.e from s where s.g = r.d)");
  ASSERT_NE(root, nullptr);
  root->children[0]->linked_attr = "r.b";

  NraExecutor exec(catalog_, NraOptions::Optimized());
  const Result<Table> result = exec.Execute(*root);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("plan verification failed"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("nest-sets"), std::string::npos)
      << result.status().ToString();

  // With verification disabled the corrupted plan reaches the executor and
  // fails (or succeeds wrongly) further down — the flag only gates the check.
  NraOptions unchecked = NraOptions::Optimized();
  unchecked.verify_plans = false;
  NraExecutor raw(catalog_, unchecked);
  const Result<Table> raw_result = raw.Execute(*root);
  if (!raw_result.ok()) {
    EXPECT_EQ(raw_result.status().ToString().find("plan verification"),
              std::string::npos)
        << raw_result.status().ToString();
  }
}

TEST_F(VerifyTest, ExplainReportsVerificationSection) {
  Result<std::string> text = ExplainSql(kQueryQ, catalog_, NraOptions::Optimized());
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("=== Plan verification ==="), std::string::npos) << *text;
  EXPECT_NE(text->find("clean (0 diagnostics)"), std::string::npos) << *text;
}

TEST(VerifyTpchTest, ExperimentQueriesClean) {
  Catalog catalog;
  TpchConfig config;
  config.scale = 0.01;
  ASSERT_OK(PopulateTpch(&catalog, config));

  const std::vector<std::string> corpus = {
      MakeQuery1("1993-01-01", "1997-01-01"),
      MakeQuery2(10, 40, 5000, 25, OuterLink::kAny, InnerLink::kNotExists),
      MakeQuery2(10, 40, 5000, 25, OuterLink::kAll, InnerLink::kNotExists),
      MakeQuery3(10, 40, 5000, 25, OuterLink::kAll, InnerLink::kExists,
                 Query3Variant::kVariantA),
      MakeQuery3(10, 40, 5000, 25, OuterLink::kAny, InnerLink::kNotExists,
                 Query3Variant::kVariantB),
  };
  for (const NraOptions& opts : AllOptionSets()) {
    const PlanVerifier verifier(catalog, opts);
    for (const std::string& sql : corpus) {
      ASSERT_OK_AND_ASSIGN(const QueryBlockPtr root,
                           ParseAndBind(sql, catalog));
      const VerifyReport report = verifier.Verify(*root);
      EXPECT_TRUE(report.clean())
          << sql << "\n(" << opts.ToString() << ")\n" << report.ToString();
    }
  }
}

}  // namespace
}  // namespace nestra
