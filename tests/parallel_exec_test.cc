// Determinism of the morsel-parallel execution engine: for every query and
// every option set, running with num_threads ∈ {2, 8} must produce results
// ROW-EXACTLY equal to the serial num_threads = 1 run — same row order,
// same value representations (int64 vs float64), not merely bag-equal.
// This is the engine's contract (DESIGN.md): per-morsel output slots are
// concatenated in morsel index order, partitioned hash-join builds insert
// in arrival order, and the parallel merge sort is stable, so scheduling
// can never leak into results.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/date.h"
#include "nra/executor.h"
#include "query_generator.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::QueryGenerator;

constexpr int kParallelDegrees[] = {2, 8};

// Row-exact equality: deep Value::operator== per cell, so a result that
// drifted to a different-but-numerically-equal representation (or a
// different row order) fails.
void ExpectRowExact(const Table& serial, const Table& parallel,
                    const std::string& context) {
  ASSERT_EQ(serial.num_rows(), parallel.num_rows()) << context;
  for (int64_t i = 0; i < serial.num_rows(); ++i) {
    ASSERT_TRUE(serial.rows()[static_cast<size_t>(i)] ==
                parallel.rows()[static_cast<size_t>(i)])
        << context << "\nfirst divergence at row " << i << "\nserial:\n"
        << serial.ToString() << "parallel:\n"
        << parallel.ToString();
  }
}

std::vector<std::pair<std::string, NraOptions>> OptionVariants() {
  std::vector<std::pair<std::string, NraOptions>> configs;
  configs.emplace_back("optimized", NraOptions::Optimized());
  configs.emplace_back("original", NraOptions::Original());
  {
    NraOptions o = NraOptions::Optimized();
    o.push_down_nest = true;
    o.rewrite_positive = true;
    o.bottom_up_linear = true;
    configs.emplace_back("all-rewrites", o);
  }
  {
    NraOptions o = NraOptions::Optimized();
    o.magic_restriction = true;
    configs.emplace_back("magic", o);
  }
  return configs;
}

void CheckParallelMatchesSerial(const Catalog& catalog,
                                const std::string& sql) {
  for (const auto& [name, base] : OptionVariants()) {
    NraOptions serial_opts = base;
    serial_opts.num_threads = 1;
    NraExecutor serial_exec(catalog, serial_opts);
    Result<Table> serial = serial_exec.ExecuteSql(sql);
    ASSERT_TRUE(serial.ok()) << name << ": " << serial.status().ToString();
    for (const int threads : kParallelDegrees) {
      NraOptions par_opts = base;
      par_opts.num_threads = threads;
      NraExecutor par_exec(catalog, par_opts);
      Result<Table> parallel = par_exec.ExecuteSql(sql);
      ASSERT_TRUE(parallel.ok())
          << name << "/threads=" << threads << ": "
          << parallel.status().ToString();
      ExpectRowExact(*serial, *parallel,
                     name + "/threads=" + std::to_string(threads) + "\n" +
                         sql);
    }
  }
}

// ---------- The paper's experiment queries on TPC-H data ----------

class ParallelTpchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig config;
    config.scale = 0.04;  // 600 orders / 80 parts: seconds, not minutes
    config.declare_not_null = true;
    ASSERT_OK(PopulateTpch(&catalog_, config));
  }

  std::string Query1Sql() {
    const Table* orders = *catalog_.GetTable("orders");
    const Value lo = *ColumnQuantile(*orders, "o_orderdate", 0.2);
    const Value hi = *ColumnQuantile(*orders, "o_orderdate", 0.8);
    return MakeQuery1(FormatDate(lo.int64()), FormatDate(hi.int64()));
  }

  Catalog catalog_;
};

TEST_F(ParallelTpchTest, Query1) {
  CheckParallelMatchesSerial(catalog_, Query1Sql());
}

TEST_F(ParallelTpchTest, Query2aMixed) {
  CheckParallelMatchesSerial(
      catalog_,
      MakeQuery2(10, 40, 5000, 25, OuterLink::kAny, InnerLink::kNotExists));
}

TEST_F(ParallelTpchTest, Query2bNegative) {
  CheckParallelMatchesSerial(
      catalog_,
      MakeQuery2(10, 40, 5000, 25, OuterLink::kAll, InnerLink::kNotExists));
}

TEST_F(ParallelTpchTest, Query3aMixed) {
  CheckParallelMatchesSerial(
      catalog_, MakeQuery3(10, 40, 5000, 25, OuterLink::kAll,
                           InnerLink::kExists, Query3Variant::kVariantA));
}

TEST_F(ParallelTpchTest, Query3bNegative) {
  CheckParallelMatchesSerial(
      catalog_, MakeQuery3(10, 40, 5000, 25, OuterLink::kAll,
                           InnerLink::kNotExists, Query3Variant::kVariantB));
}

TEST_F(ParallelTpchTest, Query3cPositive) {
  CheckParallelMatchesSerial(
      catalog_, MakeQuery3(10, 40, 5000, 25, OuterLink::kAny,
                           InnerLink::kExists, Query3Variant::kVariantC));
}

// ---------- Fuzzed query corpus ----------

class ParallelFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelFuzzTest, ParallelIsBitIdenticalToSerial) {
  QueryGenerator gen(GetParam());
  Catalog catalog;
  gen.PopulateTables(&catalog);

  for (int i = 0; i < 12; ++i) {
    const std::string sql = gen.RandomQuery();
    SCOPED_TRACE(sql);
    CheckParallelMatchesSerial(catalog, sql);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelFuzzTest,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace nestra
