// Concurrent stats invalidation (TSan target, label: slow_stats): client
// sessions keep executing cost-planned queries — ad hoc and prepared —
// while a DDL thread re-registers the build-side table with alternating
// dense / sparse key layouts. Each re-registration replaces the TableStats
// and flips the perfect (dense-array) hash-join decision, so this races
// stats collection, stats reads in the planner, and the prepared-statement
// version check against each other. Ad hoc queries must always succeed
// (they re-plan from whatever stats version they admit under); prepared
// executions must either succeed or fail with the stale-plan error — never
// crash, never read freed stats.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "nra/executor.h"
#include "server/connection_manager.h"
#include "server/session.h"
#include "storage/catalog.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::MakeTable;

constexpr int64_t kProbeRows = 3000;
constexpr int64_t kBuildRows = 2048;

Table MakeProbe() {
  Table t = MakeTable({"pk", "p1"}, {});
  for (int64_t i = 1; i <= kProbeRows; ++i) {
    Row r;
    r.Append(Value::Int64(i));
    r.Append(Value::Int64(i));
    t.AppendUnchecked(std::move(r));
  }
  return t;
}

// Dense layout: key 1..kBuildRows (perfect-join eligible). Sparse layout:
// key i*1000 (span exceeds kPerfectMaxSparsity × rows — ineligible). Both
// carry the same b1 payload, so ad hoc results are layout-independent.
Table MakeBuild(bool dense) {
  Table t = MakeTable({"bk", "b1"}, {});
  for (int64_t i = 1; i <= kBuildRows; ++i) {
    Row r;
    r.Append(Value::Int64(dense ? i : i * 1000));
    r.Append(Value::Int64(i));
    t.AppendUnchecked(std::move(r));
  }
  return t;
}

// Correlates on bk — the column whose layout (dense vs. sparse) the DDL
// thread keeps flipping — so each re-registration really flips the perfect
// dense-array keying decision for freshly planned queries.
constexpr const char* kQuerySql =
    "select p.pk from probe p where p.p1 in "
    "(select b.b1 from build b where b.bk = p.pk)";

TEST(StatsStressTest, ConcurrentQueriesSurviveStatsInvalidation) {
  Catalog catalog;
  ASSERT_OK(catalog.RegisterTable("probe", MakeProbe(), "pk"));
  ASSERT_OK(catalog.RegisterTable("build", MakeBuild(/*dense=*/true), "bk"));

  // Per-layout reference row counts, computed serially before the race.
  // The schema lock gives every racing query one consistent layout, so its
  // result must equal one of these two.
  int64_t dense_rows = 0;
  int64_t sparse_rows = 0;
  {
    NraExecutor exec(catalog, NraOptions::Optimized());
    ASSERT_OK_AND_ASSIGN(Table t, exec.ExecuteSql(kQuerySql));
    dense_rows = t.num_rows();
  }
  ASSERT_OK(catalog.DropTable("build"));
  ASSERT_OK(catalog.RegisterTable("build", MakeBuild(/*dense=*/false), "bk"));
  {
    NraExecutor exec(catalog, NraOptions::Optimized());
    ASSERT_OK_AND_ASSIGN(Table t, exec.ExecuteSql(kQuerySql));
    sparse_rows = t.num_rows();
  }
  ASSERT_NE(dense_rows, sparse_rows);  // the flip is observable in rows too

  ConnectionManager manager(&catalog);

  constexpr int kClientThreads = 3;
  constexpr int kQueriesPerClient = 30;
  constexpr int kReRegisters = 20;

  std::atomic<int> stale_failures{0};
  std::atomic<int> prepared_ok{0};
  std::atomic<bool> failed{false};

  const auto plausible = [dense_rows, sparse_rows](int64_t rows) {
    return rows == dense_rows || rows == sparse_rows;
  };

  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&manager, &stale_failures, &prepared_ok, &failed,
                          &plausible, c] {
      std::unique_ptr<Session> session = manager.Connect();
      session->options().num_threads = 1 + (c % 2);
      session->options().vectorized = (c % 2) == 0;
      const std::string name = "q" + std::to_string(c);
      if (!session->Prepare(name, kQuerySql).ok()) {
        failed.store(true);
        return;
      }
      for (int i = 0; i < kQueriesPerClient; ++i) {
        // Ad hoc: re-plans under the admission-time stats, must succeed.
        const Result<Table> adhoc = session->Query(kQuerySql);
        if (!adhoc.ok() || !plausible(adhoc.ValueOrDie().num_rows())) {
          failed.store(true);
          return;
        }
        // Prepared: succeeds against the prepare-time table version, or
        // fails stale once the DDL thread swapped it — both are correct;
        // anything else (wrong rows, other errors) is a bug. Re-prepare
        // after a stale failure and keep going.
        const Result<Table> prep = session->ExecutePrepared(name, {});
        if (prep.ok()) {
          prepared_ok.fetch_add(1);
          if (!plausible(prep.ValueOrDie().num_rows())) {
            failed.store(true);
            return;
          }
        } else {
          stale_failures.fetch_add(1);
          if (prep.status().ToString().find("stale") == std::string::npos) {
            failed.store(true);
            return;
          }
          if (!session->Prepare(name, kQuerySql).ok()) {
            failed.store(true);
            return;
          }
        }
      }
    });
  }

  std::thread ddl([&manager, &failed] {
    for (int i = 0; i < kReRegisters; ++i) {
      const bool dense = (i % 2) == 0;
      // Drop + register under ONE exclusive schema-lock hold, so no query
      // ever observes the table missing — only old layout or new layout.
      const Status st = manager.Ddl([dense](Catalog* c) {
        NESTRA_RETURN_NOT_OK(c->DropTable("build"));
        return c->RegisterTable("build", MakeBuild(dense), "bk");
      });
      if (!st.ok()) {
        failed.store(true);
        return;
      }
      std::this_thread::yield();
    }
  });

  for (std::thread& t : clients) t.join();
  ddl.join();
  ASSERT_FALSE(failed.load());
  // Every prepared execution resolved one way or the other.
  EXPECT_EQ(prepared_ok.load() + stale_failures.load(),
            kClientThreads * kQueriesPerClient);

  // Quiesced: the DDL thread's last layout is sparse (kReRegisters even,
  // final i = kReRegisters - 1 odd), so a fresh cost-based query plans
  // against the sparse stats and returns its reference rows.
  std::unique_ptr<Session> session = manager.Connect();
  ASSERT_OK_AND_ASSIGN(Table final_result, session->Query(kQuerySql));
  EXPECT_EQ(final_result.num_rows(), sparse_rows);
}

}  // namespace
}  // namespace nestra
