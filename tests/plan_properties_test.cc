// Static plan-property analyzer: unit tests for the nullability / key /
// cardinality dataflow (DESIGN.md §10), soundness of the non-NULL proofs
// against actual execution over the fuzz corpus, and bit-identity of the
// proven-2VL fast path with the 3VL pipelines across engines and threads.

#include "verify/properties.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "nra/executor.h"
#include "plan/binder.h"
#include "query_generator.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::MakeTable;
using testing_util::QueryGenerator;
using testing_util::RegisterPaperRelations;

class PropertiesTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterPaperRelations(&catalog_); }

  QueryBlockPtr Bind(const std::string& sql) {
    Result<QueryBlockPtr> bound = ParseAndBind(sql, catalog_);
    EXPECT_TRUE(bound.ok()) << sql << "\n" << bound.status().ToString();
    return bound.ok() ? std::move(bound).ValueOrDie() : nullptr;
  }

  Catalog catalog_;
};

TEST_F(PropertiesTest, SeedsFromDeclaredAndObservedConstraints) {
  // r(a,b,c,d): d is the declared key; c is NULL-free in the data; a and b
  // each hold a NULL.
  const QueryBlockPtr root = Bind("select a from r");
  ASSERT_NE(root, nullptr);
  const PropertyAnalyzer analyzer(catalog_);
  const BlockProperties props = analyzer.Analyze(*root);
  EXPECT_FALSE(props.NonNull("r.a"));
  EXPECT_FALSE(props.NonNull("r.b"));
  EXPECT_TRUE(props.NonNull("r.c"));   // observed at load
  EXPECT_TRUE(props.NonNull("r.d"));   // declared (primary key)
  ASSERT_EQ(props.keys.size(), 1u);
  EXPECT_EQ(props.keys[0], std::vector<std::string>{"r.d"});
  EXPECT_EQ(props.card, CardBound::kMany);

  // The declared-only analyzer ignores the load-time scan.
  const PropertyAnalyzer declared(catalog_, /*declared_only=*/true);
  const BlockProperties strict = declared.Analyze(*root);
  EXPECT_FALSE(strict.NonNull("r.c"));
  EXPECT_TRUE(strict.NonNull("r.d"));
}

TEST_F(PropertiesTest, ComparisonConjunctsProveOperandsNonNull) {
  // An UNKNOWN comparison never qualifies a row, so among qualifying rows
  // both column operands of `a > 1` and `a < b` are non-NULL.
  const QueryBlockPtr root = Bind("select c from r where a > 1 and a < b");
  ASSERT_NE(root, nullptr);
  const BlockProperties props = PropertyAnalyzer(catalog_).Analyze(*root);
  EXPECT_TRUE(props.NonNull("r.a"));
  EXPECT_TRUE(props.NonNull("r.b"));
}

TEST_F(PropertiesTest, IsNullTransfersToExtremesAndContradictionsToZero) {
  {
    const QueryBlockPtr root = Bind("select c from r where a is null");
    ASSERT_NE(root, nullptr);
    const BlockProperties props = PropertyAnalyzer(catalog_).Analyze(*root);
    EXPECT_TRUE(props.AlwaysNull("r.a"));
    EXPECT_EQ(props.card, CardBound::kMany);
  }
  {
    // d is the declared key: `d IS NULL` contradicts NOT NULL, so the
    // qualifying set is provably empty.
    const QueryBlockPtr root = Bind("select c from r where d is null");
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(PropertyAnalyzer(catalog_).Analyze(*root).card,
              CardBound::kZero);
  }
  {
    // A comparison against an always-NULL operand can only be UNKNOWN.
    const QueryBlockPtr root =
        Bind("select c from r where a is null and a > 1");
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(PropertyAnalyzer(catalog_).Analyze(*root).card,
              CardBound::kZero);
  }
}

TEST_F(PropertiesTest, PinnedKeyBoundsCardinalityToOne) {
  const QueryBlockPtr root = Bind("select c from r where d = 2");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(PropertyAnalyzer(catalog_).Analyze(*root).card,
            CardBound::kAtMostOne);

  // Pinning a non-key column proves nothing about cardinality.
  const QueryBlockPtr loose = Bind("select c from r where b = 2");
  ASSERT_NE(loose, nullptr);
  EXPECT_EQ(PropertyAnalyzer(catalog_).Analyze(*loose).card,
            CardBound::kMany);
}

TEST_F(PropertiesTest, LinkFactsCoverTheLatticeCorners) {
  const PropertyAnalyzer analyzer(catalog_);
  const auto link_facts = [&](const std::string& sql) {
    const QueryBlockPtr root = Bind(sql);
    EXPECT_NE(root, nullptr);
    EXPECT_EQ(root->children.size(), 1u);
    return analyzer.AnalyzeLink(*root->children[0], {root.get()});
  };

  // Emptiness tests carry no member comparison.
  EXPECT_TRUE(
      link_facts("select a from r where exists (select e from s)").two_valued);
  // Both operands proven (declared key vs observed NULL-free column).
  EXPECT_TRUE(
      link_facts("select a from r where d in (select e from s)").two_valued);
  // Nullable linking side: three-valued but not constant.
  {
    const LinkFacts f =
        link_facts("select a from r where b in (select e from s)");
    EXPECT_FALSE(f.two_valued);
    EXPECT_FALSE(f.always_unknown);
  }
  // Provably-NULL linked side: the comparison is constant UNKNOWN.
  {
    const LinkFacts f = link_facts(
        "select a from r where d in (select h from s where h is null)");
    EXPECT_TRUE(f.always_unknown);
  }
  // Aggregates fold empty groups to NULL: conservatively three-valued.
  {
    const LinkFacts f =
        link_facts("select a from r where d > (select max(e) from s)");
    EXPECT_FALSE(f.two_valued);
  }
}

TEST_F(PropertiesTest, IncomparableTypesAreAlwaysUnknown) {
  // A string column compared against an int subquery: Value::Compare
  // returns no ordering across classes, so the member comparison is
  // constant UNKNOWN (and the qualifying set of a block with such a local
  // comparison is provably empty).
  Catalog catalog;
  Table names{Schema({Field("id", TypeId::kInt64, /*nullable=*/false),
                      Field("label", TypeId::kString, /*nullable=*/true)})};
  {
    Row row;
    row.Append(Value::Int64(1));
    row.Append(Value::String("one"));
    names.AppendUnchecked(std::move(row));
  }
  ASSERT_OK(catalog.RegisterTable("names", std::move(names), "id"));
  RegisterPaperRelations(&catalog);

  ASSERT_OK_AND_ASSIGN(
      const QueryBlockPtr root,
      ParseAndBind("select n.id from names n where n.label in "
                   "(select s.e from s)",
                   catalog));
  ASSERT_EQ(root->children.size(), 1u);
  const PropertyAnalyzer analyzer(catalog);
  const LinkFacts facts = analyzer.AnalyzeLink(*root->children[0], {root.get()});
  EXPECT_TRUE(facts.always_unknown) << facts.reason;
}

TEST_F(PropertiesTest, NegativeLinkEligibilityRequiresStrictSafePath) {
  // Identical leaf link; what differs is the enclosing operator. Under a
  // positive parent the leaf may drop rows (strict), under a negative one a
  // dropped row would flip the outer NOT IN — ineligible.
  const QueryBlockPtr safe = Bind(
      "select r.a from r where r.d in (select s.e from s where s.g = r.d and "
      "s.i not in (select t.l from t where t.k = s.i))");
  ASSERT_NE(safe, nullptr);
  const QueryBlock& safe_leaf = *safe->children[0]->children[0];
  EXPECT_TRUE(NegativeLinkRunsTwoValued(
      safe_leaf, {safe.get(), safe->children[0].get()}, catalog_));

  const QueryBlockPtr unsafe = Bind(
      "select r.a from r where r.d not in (select s.e from s where s.g = r.d "
      "and s.i not in (select t.l from t where t.k = s.i))");
  ASSERT_NE(unsafe, nullptr);
  const QueryBlock& unsafe_leaf = *unsafe->children[0]->children[0];
  EXPECT_FALSE(NegativeLinkRunsTwoValued(
      unsafe_leaf, {unsafe.get(), unsafe->children[0].get()}, catalog_));

  // NOT EXISTS needs no member-comparison proof at all: nullable columns
  // everywhere, still eligible.
  const QueryBlockPtr ne = Bind(
      "select r.a from r where not exists "
      "(select s.h from s where s.g = r.b)");
  ASSERT_NE(ne, nullptr);
  EXPECT_TRUE(
      NegativeLinkRunsTwoValued(*ne->children[0], {ne.get()}, catalog_));
}

// Soundness of the static facts against real execution: over the fuzz corpus
// (biased toward key-column links), any output column the analyzer proves
// non-NULL for the root block must contain no NULL at runtime — in the row
// and vectorized engines, serial and parallel.
class PropertiesFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertiesFuzzTest, ProvenNonNullColumnsNeverYieldNull) {
  QueryGenerator gen(GetParam(), /*key_links=*/true);
  Catalog catalog;
  gen.PopulateTables(&catalog);
  const PropertyAnalyzer analyzer(catalog);

  for (int i = 0; i < 20; ++i) {
    const std::string sql = gen.RandomQuery();
    SCOPED_TRACE(sql);
    ASSERT_OK_AND_ASSIGN(const QueryBlockPtr root,
                         ParseAndBind(sql, catalog));
    const BlockProperties props = analyzer.Analyze(*root);

    for (const bool vectorized : {false, true}) {
      for (const int threads : {1, 2, 8}) {
        NraOptions opts = NraOptions::Optimized();
        opts.vectorized = vectorized;
        opts.num_threads = threads;
        NraExecutor exec(catalog, opts);
        ASSERT_OK_AND_ASSIGN(const Table result, exec.Execute(*root));
        for (int c = 0; c < result.schema().num_fields(); ++c) {
          const std::string& name = result.schema().fields()[c].name;
          if (!props.NonNull(name)) continue;
          for (const Row& row : result.rows()) {
            ASSERT_FALSE(row[c].is_null())
                << name << " proven non-null but NULL at runtime "
                << "(vectorized=" << vectorized << " threads=" << threads
                << ")\n"
                << result.ToString();
          }
        }
      }
    }
  }
}

// The tentpole contract: with the proofs in place, the proven-2VL fast path
// (antijoin links + null-check-free kernels) returns exactly what the 3VL
// pipelines return, per engine and thread count.
TEST_P(PropertiesFuzzTest, TwoValuedFastPathMatchesThreeValued) {
  QueryGenerator gen(GetParam(), /*key_links=*/true);
  Catalog catalog;
  gen.PopulateTables(&catalog);

  for (int i = 0; i < 20; ++i) {
    const std::string sql = gen.RandomQuery();
    SCOPED_TRACE(sql);
    for (const bool vectorized : {false, true}) {
      for (const int threads : {1, 2, 8}) {
        NraOptions slow = NraOptions::Optimized();
        slow.vectorized = vectorized;
        slow.num_threads = threads;
        slow.two_valued = false;
        NraOptions fast = slow;
        fast.two_valued = true;

        NraExecutor slow_exec(catalog, slow);
        NraExecutor fast_exec(catalog, fast);
        ASSERT_OK_AND_ASSIGN(const Table expected, slow_exec.ExecuteSql(sql));
        ASSERT_OK_AND_ASSIGN(const Table actual, fast_exec.ExecuteSql(sql));
        ExpectTablesEqual(expected, actual);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertiesFuzzTest,
                         ::testing::Values(11, 23, 37, 59, 71));

}  // namespace
}  // namespace nestra
