#include <gtest/gtest.h>

#include "exec/aggregate.h"
#include "exec/distinct.h"
#include "exec/filter.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;

TEST(ScanTest, QualifiesSchema) {
  const Table t = MakeTable({"a"}, {{I(1)}, {I(2)}});
  ScanNode scan(&t, "r");
  EXPECT_EQ(scan.output_schema().field(0).name, "r.a");
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&scan));
  EXPECT_EQ(out.num_rows(), 2);
}

TEST(FilterTest, UnknownFiltersOut) {
  const Table t = MakeTable({"a"}, {{I(1)}, {N()}, {I(5)}});
  auto scan = std::make_unique<ScanNode>(&t, "r");
  FilterNode filter(std::move(scan), Cmp(CmpOp::kGt, Col("a"), LitInt(2)));
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&filter));
  ExpectTablesEqual(MakeTable({"r.a"}, {{I(5)}}), out);
}

TEST(ProjectTest, ReorderAndRename) {
  const Table t = MakeTable({"a", "b"}, {{I(1), I(2)}});
  auto scan = std::make_unique<ScanNode>(&t, "r");
  ProjectNode proj(std::move(scan), {"b", "a"}, {"x", "y"});
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&proj));
  EXPECT_EQ(out.schema().field(0).name, "x");
  EXPECT_EQ(out.rows()[0], Row({I(2), I(1)}));
}

TEST(SortTest, MultiKeyWithNullsFirst) {
  const Table t = MakeTable({"a", "b"},
                            {{I(2), I(1)}, {N(), I(9)}, {I(1), I(5)},
                             {I(1), I(2)}});
  auto scan = std::make_unique<ScanNode>(&t, "");
  SortNode sort(std::move(scan), {{"a", true}, {"b", false}});
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&sort));
  EXPECT_TRUE(out.rows()[0][0].is_null());
  EXPECT_EQ(out.rows()[1], Row({I(1), I(5)}));
  EXPECT_EQ(out.rows()[2], Row({I(1), I(2)}));
  EXPECT_EQ(out.rows()[3], Row({I(2), I(1)}));
}

TEST(SortTest, DescendingPutsNullsLast) {
  const Table t = MakeTable({"a"}, {{I(1)}, {N()}, {I(3)}});
  auto scan = std::make_unique<ScanNode>(&t, "");
  SortNode sort(std::move(scan), {{"a", false}});
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&sort));
  EXPECT_EQ(out.rows()[0], Row({I(3)}));
  EXPECT_TRUE(out.rows()[2][0].is_null());
}

TEST(DistinctTest, DeduplicatesWithNulls) {
  const Table t =
      MakeTable({"a"}, {{I(1)}, {N()}, {I(1)}, {N()}, {I(2)}});
  auto scan = std::make_unique<ScanNode>(&t, "");
  DistinctNode d(std::move(scan));
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&d));
  EXPECT_EQ(out.num_rows(), 3);
}

TEST(AggregateTest, GroupByWithNullGroup) {
  const Table t = MakeTable({"g", "v"}, {{I(1), I(10)},
                                         {I(1), I(20)},
                                         {N(), I(5)},
                                         {N(), N()},
                                         {I(2), N()}});
  auto scan = std::make_unique<ScanNode>(&t, "");
  AggregateNode agg(std::move(scan), {"g"},
                    {{AggFunc::kCountStar, "", "cnt"},
                     {AggFunc::kCount, "v", "cnt_v"},
                     {AggFunc::kMax, "v", "max_v"},
                     {AggFunc::kSum, "v", "sum_v"}});
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&agg));
  ASSERT_EQ(out.num_rows(), 3);
  // Sorted output: NULL group first.
  EXPECT_EQ(out.rows()[0], Row({N(), I(2), I(1), I(5), I(5)}));
  EXPECT_EQ(out.rows()[1], Row({I(1), I(2), I(2), I(20), I(30)}));
  EXPECT_EQ(out.rows()[2], Row({I(2), I(1), I(0), N(), N()}));
}

TEST(AggregateTest, ScalarAggregateOverEmptyInput) {
  const Table t = MakeTable({"v"}, {});
  auto scan = std::make_unique<ScanNode>(&t, "");
  AggregateNode agg(std::move(scan), {},
                    {{AggFunc::kCountStar, "", "cnt"},
                     {AggFunc::kMax, "v", "max_v"}});
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&agg));
  ASSERT_EQ(out.num_rows(), 1);
  EXPECT_EQ(out.rows()[0], Row({I(0), N()}));
}

TEST(AggregateTest, AvgIsFloat) {
  const Table t = MakeTable({"v"}, {{I(1)}, {I(2)}});
  auto scan = std::make_unique<ScanNode>(&t, "");
  AggregateNode agg(std::move(scan), {}, {{AggFunc::kAvg, "v", "avg_v"}});
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&agg));
  EXPECT_DOUBLE_EQ(out.rows()[0][0].float64(), 1.5);
}

TEST(AggregateTest, MinIgnoresNulls) {
  const Table t = MakeTable({"v"}, {{N()}, {I(4)}, {I(2)}, {N()}});
  auto scan = std::make_unique<ScanNode>(&t, "");
  AggregateNode agg(std::move(scan), {}, {{AggFunc::kMin, "v", "m"}});
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&agg));
  EXPECT_EQ(out.rows()[0][0], I(2));
}

TEST(TableSourceTest, Replays) {
  TableSourceNode src(MakeTable({"a"}, {{I(1)}, {I(2)}}));
  ASSERT_OK_AND_ASSIGN(Table out1, CollectTable(&src));
  ASSERT_OK_AND_ASSIGN(Table out2, CollectTable(&src));  // reopen
  EXPECT_EQ(out1.num_rows(), 2);
  EXPECT_EQ(out2.num_rows(), 2);
}

}  // namespace
}  // namespace nestra
