// Minimal JSON validity checker shared by the telemetry tests.
//
// Enough of RFC 8259 to confirm trace / metrics / slow-query documents
// parse: objects, arrays, strings with escapes, numbers, true/false/null.
// Returns false on any syntax error. No DOM — callers that need values use
// string probes on the (already validated) text.

#ifndef NESTRA_TESTS_JSON_CHECKER_H_
#define NESTRA_TESTS_JSON_CHECKER_H_

#include <cctype>
#include <string>

namespace nestra {
namespace testing_util {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    if (!Value()) return false;
    Ws();
    return pos_ == text_.size();
  }

 private:
  void Ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    Ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool String() {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
            ++pos_;
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
    }
    return false;
  }
  bool Number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::string(".eE+-").find(text_[pos_]) != std::string::npos)) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    Ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      if (Eat('}')) return true;
      do {
        Ws();
        if (!String() || !Eat(':') || !Value()) return false;
      } while (Eat(','));
      return Eat('}');
    }
    if (c == '[') {
      ++pos_;
      if (Eat(']')) return true;
      do {
        if (!Value()) return false;
      } while (Eat(','));
      return Eat(']');
    }
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace testing_util
}  // namespace nestra

#endif  // NESTRA_TESTS_JSON_CHECKER_H_
