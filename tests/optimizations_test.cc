// Equivalence of every optimization path (§4.2) with the original approach
// and with the nested-iteration oracle, plus precondition checks.

#include <gtest/gtest.h>

#include "baseline/nested_iteration.h"
#include "nra/executor.h"
#include "nra/planner.h"
#include "nra/rewrites.h"
#include "plan/binder.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;
using testing_util::RegisterPaperRelations;

class OptimizationsTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterPaperRelations(&catalog_); }
  Catalog catalog_;
};

const char* kQueries[] = {
    // Linear correlated, one level, positive.
    "select b from r where exists (select * from s where s.g = r.d)",
    "select b from r where d in (select g from s where f = 5)",
    "select d from r where b > some (select e from s where s.g = r.d)",
    // Linear correlated, one level, negative.
    "select b from r where not exists (select * from s where s.g = r.d)",
    "select d from r where c >= all (select h from s where s.g = r.d)",
    "select b from r where b not in (select e from s where s.g = r.d)",
    // Two-level linear correlated (child correlated to parent only).
    "select b from r where b not in ("
    "  select e from s where s.g = r.d and s.h > all ("
    "    select j from t where t.l = s.i))",
    // Two-level with non-adjacent correlation (Query Q).
    testing_util::kQueryQ,
    // Mixed two-level.
    "select b from r where d in ("
    "  select g from s where exists ("
    "    select * from t where t.l = s.i))",
    // Tree query.
    "select b from r where "
    "  exists (select * from s where s.g = r.d) and "
    "  b not in (select j from t where t.k = r.c)",
    // Non-correlated subquery (virtual Cartesian product).
    "select d from r where b > some (select e from s)",
};

TEST_F(OptimizationsTest, EveryConfigurationMatchesTheOracle) {
  NestedIterationExecutor oracle(catalog_, {.use_indexes = false});
  std::vector<std::pair<std::string, NraOptions>> configs;
  configs.emplace_back("original", NraOptions::Original());
  configs.emplace_back("optimized", NraOptions::Optimized());
  {
    NraOptions o = NraOptions::Original();
    o.nest_method = NestMethod::kHash;
    configs.emplace_back("original+hash-nest", o);
  }
  {
    NraOptions o = NraOptions::Optimized();
    o.push_down_nest = true;
    configs.emplace_back("push-down-nest", o);
  }
  {
    NraOptions o = NraOptions::Optimized();
    o.rewrite_positive = true;
    configs.emplace_back("positive-rewrite", o);
  }
  {
    NraOptions o = NraOptions::Optimized();
    o.bottom_up_linear = true;
    configs.emplace_back("bottom-up-linear", o);
  }
  {
    NraOptions o = NraOptions::Original();
    o.push_down_nest = true;
    o.rewrite_positive = true;
    o.bottom_up_linear = true;
    configs.emplace_back("original+all-rewrites", o);
  }
  {
    NraOptions o = NraOptions::Optimized();
    o.magic_restriction = true;
    configs.emplace_back("magic-restriction", o);
  }

  for (const char* q : kQueries) {
    ASSERT_OK_AND_ASSIGN(Table expected, oracle.ExecuteSql(q));
    for (const auto& [name, opts] : configs) {
      NraExecutor exec(catalog_, opts);
      Result<Table> actual = exec.ExecuteSql(q);
      ASSERT_TRUE(actual.ok())
          << name << " failed on: " << q << "\n"
          << actual.status().ToString();
      EXPECT_TRUE(Table::BagEquals(expected, *actual))
          << "config " << name << " diverged on: " << q << "\nexpected:\n"
          << expected.ToString() << "actual:\n"
          << actual->ToString();
    }
  }
}

TEST_F(OptimizationsTest, LinearCorrelationDetection) {
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr linear,
      ParseAndBind("select b from r where b not in ("
                   "  select e from s where s.g = r.d and s.h > all ("
                   "    select j from t where t.l = s.i))",
                   catalog_));
  EXPECT_TRUE(linear->IsLinearCorrelated());

  ASSERT_OK_AND_ASSIGN(QueryBlockPtr query_q,
                       ParseAndBind(testing_util::kQueryQ, catalog_));
  EXPECT_TRUE(query_q->IsLinear());
  EXPECT_FALSE(query_q->IsLinearCorrelated());  // t is correlated to r too
}

TEST_F(OptimizationsTest, StrictSafeRule) {
  ASSERT_OK_AND_ASSIGN(QueryBlockPtr query_q,
                       ParseAndBind(testing_util::kQueryQ, catalog_));
  const QueryBlock* root = query_q.get();
  const QueryBlock* s = root->children[0].get();
  // At the root: always strict-safe.
  EXPECT_TRUE(StrictSafe({root}));
  // Below the NOT IN link: not safe (failing S tuples must be padded).
  EXPECT_FALSE(StrictSafe({root, s}));

  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr positive,
      ParseAndBind("select b from r where d in ("
                   "  select g from s where exists ("
                   "    select * from t where t.l = s.i))",
                   catalog_));
  const QueryBlock* ps = positive->children[0].get();
  EXPECT_TRUE(StrictSafe({positive.get(), ps}));  // IN above: positive
}

TEST_F(OptimizationsTest, AllEquiCorrelationDetection) {
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr root,
      ParseAndBind(
          "select b from r where exists (select * from s where s.g = r.d)",
          catalog_));
  ASSERT_OK_AND_ASSIGN(Table outer, EvalBlockBase(*root, catalog_));
  ASSERT_OK_AND_ASSIGN(Table inner,
                       EvalBlockBase(*root->children[0], catalog_));
  std::vector<std::string> ok, ik;
  EXPECT_TRUE(AllEquiCorrelation(*root->children[0], outer.schema(),
                                 inner.schema(), &ok, &ik));
  EXPECT_EQ(ok, (std::vector<std::string>{"r.d"}));
  EXPECT_EQ(ik, (std::vector<std::string>{"s.g"}));

  // Non-equi correlation is rejected.
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr theta,
      ParseAndBind(
          "select b from r where exists (select * from s where s.e < r.b)",
          catalog_));
  ASSERT_OK_AND_ASSIGN(Table outer2, EvalBlockBase(*theta, catalog_));
  ASSERT_OK_AND_ASSIGN(Table inner2,
                       EvalBlockBase(*theta->children[0], catalog_));
  EXPECT_FALSE(AllEquiCorrelation(*theta->children[0], outer2.schema(),
                                  inner2.schema(), &ok, &ik));
}

TEST_F(OptimizationsTest, HashLinkSelectMatchesJoinNestSelect) {
  // Direct unit check of §4.2.4 on the paper data: exists with equi
  // correlation.
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr root,
      ParseAndBind(
          "select b from r where exists (select * from s where s.g = r.d)",
          catalog_));
  const QueryBlock& child = *root->children[0];
  ASSERT_OK_AND_ASSIGN(Table outer, EvalBlockBase(*root, catalog_));
  ASSERT_OK_AND_ASSIGN(Table inner, EvalBlockBase(child, catalog_));
  ASSERT_OK_AND_ASSIGN(
      Table reduced,
      HashLinkSelect(outer, inner, {"r.d"}, {"s.g"}, child,
                     SelectionMode::kStrict, {}));
  // Should match r2 and r4 (the rows whose d has matching s.g).
  ASSERT_OK_AND_ASSIGN(Table projected, reduced.Project({"r.b"}));
  EXPECT_TRUE(Table::BagEquals(MakeTable({"r.b"}, {{I(3)}, {N()}}),
                               projected));
}

TEST_F(OptimizationsTest, PositiveLinkJoinConditionForms) {
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr in_q,
      ParseAndBind("select b from r where d in (select g from s)", catalog_));
  ASSERT_OK_AND_ASSIGN(ExprPtr cond,
                       PositiveLinkJoinCondition(*in_q->children[0]));
  ASSERT_NE(cond, nullptr);
  EXPECT_EQ(cond->ToString(), "r.d = s.g");

  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr exists_q,
      ParseAndBind("select b from r where exists (select * from s)",
                   catalog_));
  ASSERT_OK_AND_ASSIGN(ExprPtr none,
                       PositiveLinkJoinCondition(*exists_q->children[0]));
  EXPECT_EQ(none, nullptr);

  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr all_q,
      ParseAndBind("select b from r where c > all (select h from s)",
                   catalog_));
  EXPECT_FALSE(PositiveLinkJoinCondition(*all_q->children[0]).ok());
}

}  // namespace
}  // namespace nestra
