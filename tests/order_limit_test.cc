#include <gtest/gtest.h>

#include "baseline/native_optimizer.h"
#include "baseline/nested_iteration.h"
#include "nra/executor.h"
#include "plan/binder.h"
#include "sql/parser.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;
using testing_util::RegisterPaperRelations;

TEST(OrderLimitParserTest, OrderByForms) {
  ASSERT_OK_AND_ASSIGN(
      AstSelectPtr sel,
      ParseSelect("select a from t order by a desc, b asc, c"));
  ASSERT_EQ(sel->order_by.size(), 3u);
  EXPECT_FALSE(sel->order_by[0].ascending);
  EXPECT_TRUE(sel->order_by[1].ascending);
  EXPECT_TRUE(sel->order_by[2].ascending);
  EXPECT_EQ(sel->limit, -1);
}

TEST(OrderLimitParserTest, Limit) {
  ASSERT_OK_AND_ASSIGN(AstSelectPtr sel,
                       ParseSelect("select a from t limit 7"));
  EXPECT_EQ(sel->limit, 7);
}

TEST(OrderLimitParserTest, RoundTrip) {
  const char* sql = "SELECT a FROM t WHERE a > 1 ORDER BY a DESC, b LIMIT 3";
  ASSERT_OK_AND_ASSIGN(AstSelectPtr sel, ParseSelect(sql));
  ASSERT_OK_AND_ASSIGN(AstSelectPtr again, ParseSelect(sel->ToString()));
  EXPECT_EQ(again->ToString(), sel->ToString());
}

TEST(OrderLimitParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("select a from t order a").ok());
  EXPECT_FALSE(ParseSelect("select a from t limit x").ok());
  EXPECT_FALSE(ParseSelect("select a from t limit").ok());
}

class OrderLimitExecTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterPaperRelations(&catalog_); }
  Catalog catalog_;
};

TEST_F(OrderLimitExecTest, SubqueryOrderByRejected) {
  EXPECT_FALSE(ParseAndBind("select b from r where b in "
                            "(select e from s order by e)",
                            catalog_)
                   .ok());
  EXPECT_FALSE(ParseAndBind("select b from r where b in "
                            "(select e from s limit 1)",
                            catalog_)
                   .ok());
}

TEST_F(OrderLimitExecTest, OrderByProducesSortedOutput) {
  NraExecutor exec(catalog_);
  ASSERT_OK_AND_ASSIGN(Table out,
                       exec.ExecuteSql("select d from r order by d desc"));
  ASSERT_EQ(out.num_rows(), 4);
  EXPECT_EQ(out.rows()[0][0], I(4));
  EXPECT_EQ(out.rows()[3][0], I(1));
}

TEST_F(OrderLimitExecTest, OrderByNonSelectedColumn) {
  // Order by c while selecting only d: r rows have (c, d) =
  // (3,1),(4,2),(5,3),(5,4); descending c with key tiebreak is stable.
  NraExecutor exec(catalog_);
  ASSERT_OK_AND_ASSIGN(Table out,
                       exec.ExecuteSql("select d from r order by c, d"));
  EXPECT_EQ(out.rows()[0][0], I(1));
  EXPECT_EQ(out.rows()[1][0], I(2));
  EXPECT_EQ(out.rows()[2][0], I(3));
  EXPECT_EQ(out.rows()[3][0], I(4));
}

TEST_F(OrderLimitExecTest, NullsFirstAscending) {
  NraExecutor exec(catalog_);
  ASSERT_OK_AND_ASSIGN(Table out,
                       exec.ExecuteSql("select b from r order by b"));
  EXPECT_TRUE(out.rows()[0][0].is_null());
  EXPECT_EQ(out.rows()[3][0], I(4));
}

TEST_F(OrderLimitExecTest, LimitTruncates) {
  NraExecutor exec(catalog_);
  ASSERT_OK_AND_ASSIGN(Table out,
                       exec.ExecuteSql("select d from r order by d limit 2"));
  ASSERT_EQ(out.num_rows(), 2);
  EXPECT_EQ(out.rows()[0][0], I(1));
  EXPECT_EQ(out.rows()[1][0], I(2));
}

TEST_F(OrderLimitExecTest, LimitZeroAndOversized) {
  NraExecutor exec(catalog_);
  ASSERT_OK_AND_ASSIGN(Table zero,
                       exec.ExecuteSql("select d from r limit 0"));
  EXPECT_EQ(zero.num_rows(), 0);
  ASSERT_OK_AND_ASSIGN(Table all,
                       exec.ExecuteSql("select d from r limit 999"));
  EXPECT_EQ(all.num_rows(), 4);
}

TEST_F(OrderLimitExecTest, WorksWithSubqueriesAcrossStrategies) {
  const char* sql =
      "select b, d from r "
      "where not exists (select * from s where s.g = r.d) "
      "order by d desc limit 1";
  // NOT EXISTS keeps r1 (d=1) and r3 (d=3); ordered desc, limit 1 -> d=3.
  const Table expected = MakeTable({"r.b", "r.d"}, {{I(4), I(3)}});

  NraExecutor nra(catalog_);
  ASSERT_OK_AND_ASSIGN(Table a, nra.ExecuteSql(sql));
  EXPECT_EQ(a.rows(), expected.rows());

  NraExecutor orig(catalog_, NraOptions::Original());
  ASSERT_OK_AND_ASSIGN(Table b, orig.ExecuteSql(sql));
  EXPECT_EQ(b.rows(), expected.rows());

  NestedIterationExecutor iter(catalog_);
  ASSERT_OK_AND_ASSIGN(Table c, iter.ExecuteSql(sql));
  EXPECT_EQ(c.rows(), expected.rows());

  ASSERT_OK_AND_ASSIGN(Table d, ExecuteNativeSql(sql, catalog_));
  EXPECT_EQ(d.rows(), expected.rows());
}

TEST_F(OrderLimitExecTest, DistinctPreservesSortOrder) {
  NraExecutor exec(catalog_);
  ASSERT_OK_AND_ASSIGN(
      Table out, exec.ExecuteSql("select distinct g from s order by g desc"));
  ASSERT_EQ(out.num_rows(), 2);
  EXPECT_EQ(out.rows()[0][0], I(4));
  EXPECT_EQ(out.rows()[1][0], I(2));
}

}  // namespace
}  // namespace nestra
