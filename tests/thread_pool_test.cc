// The morsel-parallel substrate: the shared ThreadPool, the ParallelForEach
// / ParallelForMorsels fan-out primitives, and the parallel stable merge
// sort. The load-bearing property everywhere is determinism: results must
// be identical to the serial path for every thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel_sort.h"
#include "common/thread_pool.h"
#include "tpch/random.h"

namespace nestra {
namespace {

TEST(ResolveNumThreadsTest, Resolution) {
  EXPECT_EQ(ResolveNumThreads(1), 1);
  EXPECT_EQ(ResolveNumThreads(7), 7);
  EXPECT_GE(ResolveNumThreads(0), 1);   // auto: at least one thread
  EXPECT_GE(ResolveNumThreads(-3), 1);  // negative behaves like auto
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3);
  std::atomic<int> counter{0};
  std::mutex mu;
  std::condition_variable cv;
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (counter.fetch_add(1) + 1 == kTasks) {
        // Notify under the lock: the waiter may otherwise destroy cv
        // between its predicate check and this call.
        std::lock_guard<std::mutex> guard(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return counter.load() == kTasks; });
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, EnsureWorkersGrowsButNeverShrinks) {
  ThreadPool pool(1);
  pool.EnsureWorkers(4);
  EXPECT_EQ(pool.num_workers(), 4);
  pool.EnsureWorkers(2);
  EXPECT_EQ(pool.num_workers(), 4);
}

TEST(ThreadPoolTest, SharedPoolExists) {
  ThreadPool* shared = ThreadPool::Shared();
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared, ThreadPool::Shared());  // same instance every time
}

TEST(ParallelForEachTest, CoversEveryUnitExactlyOnce) {
  for (const int threads : {1, 2, 5, 8}) {
    for (const int64_t units : {0L, 1L, 7L, 100L, 1000L}) {
      std::vector<std::atomic<int>> hits(static_cast<size_t>(units));
      for (auto& h : hits) h.store(0);
      ParallelForEach(units, threads,
                      [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
      for (int64_t i = 0; i < units; ++i) {
        EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
            << "unit " << i << " threads=" << threads;
      }
    }
  }
}

TEST(MorselCountTest, Bounds) {
  EXPECT_EQ(MorselCount(0, 8), 0);
  EXPECT_EQ(MorselCount(-5, 8), 0);
  EXPECT_EQ(MorselCount(100, 1), 1);   // serial: one morsel
  EXPECT_EQ(MorselCount(100, 8), 1);   // under the 1024-row grain
  EXPECT_GE(MorselCount(100000, 4), 4);
  EXPECT_LE(MorselCount(100000, 4), 4 * 8);
  EXPECT_EQ(MorselCount(1, 8), 1);
}

TEST(ParallelForMorselsTest, RangesPartitionTheInputInOrder) {
  for (const int threads : {1, 3, 8}) {
    for (const int64_t total : {0L, 1L, 1023L, 1024L, 10000L, 50001L}) {
      const int64_t morsels = MorselCount(total, threads);
      std::vector<std::pair<int64_t, int64_t>> ranges(
          static_cast<size_t>(morsels), {-1, -1});
      ParallelForMorsels(total, threads,
                         [&](int64_t m, int64_t begin, int64_t end) {
                           ranges[static_cast<size_t>(m)] = {begin, end};
                         });
      int64_t expected_begin = 0;
      for (const auto& [begin, end] : ranges) {
        if (begin < 0) continue;  // empty trailing morsel never invoked
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LT(begin, end);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, total < 0 ? 0 : total)
          << "threads=" << threads << " total=" << total;
    }
  }
}

TEST(ParallelStableSortTest, MatchesSerialStableSortExactly) {
  Rng rng(20050614);
  for (const int threads : {1, 2, 4, 8}) {
    for (const int64_t n : {0L, 1L, 100L, 8192L, 50000L}) {
      std::vector<int64_t> serial;
      serial.reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) serial.push_back(rng.UniformInt(0, 99));
      std::vector<int64_t> parallel = serial;
      const auto less = [](int64_t a, int64_t b) { return a < b; };
      std::stable_sort(serial.begin(), serial.end(), less);
      ParallelStableSort(&parallel, less, threads);
      EXPECT_EQ(parallel, serial) << "threads=" << threads << " n=" << n;
    }
  }
}

TEST(ParallelStableSortTest, PreservesInputOrderWithinEqualKeys) {
  // Elements carry (key, original index); sorting by key only must keep the
  // indices ascending inside every key run — for every thread count, which
  // is exactly what makes the parallel sort's output unique.
  Rng rng(7);
  constexpr int64_t kN = 40000;  // above the serial cutoff
  std::vector<std::pair<int64_t, int64_t>> input;
  input.reserve(kN);
  for (int64_t i = 0; i < kN; ++i) input.push_back({rng.UniformInt(0, 9), i});
  for (const int threads : {2, 8}) {
    std::vector<std::pair<int64_t, int64_t>> v = input;
    ParallelStableSort(
        &v, [](const auto& a, const auto& b) { return a.first < b.first; },
        threads);
    for (size_t i = 1; i < v.size(); ++i) {
      ASSERT_LE(v[i - 1].first, v[i].first);
      if (v[i - 1].first == v[i].first) {
        ASSERT_LT(v[i - 1].second, v[i].second) << "instability at " << i;
      }
    }
  }
}

TEST(ParallelStableSortTest, MoveOnlyElements) {
  // The sort moves elements (never copies); unique_ptr payloads prove it.
  constexpr int64_t kN = 20000;
  std::vector<std::unique_ptr<int64_t>> v;
  v.reserve(kN);
  for (int64_t i = 0; i < kN; ++i) {
    v.push_back(std::make_unique<int64_t>(kN - i));
  }
  ParallelStableSort(
      &v, [](const auto& a, const auto& b) { return *a < *b; }, 4);
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_NE(v[static_cast<size_t>(i)], nullptr);
    EXPECT_EQ(*v[static_cast<size_t>(i)], i + 1);
  }
}


TEST(ThreadPoolTest, TryRunOneDrainsQueuedTasksInline) {
  // A pool with zero live workers can still make progress: TryRunOne runs
  // queued tasks on the calling thread, one per call, and reports an empty
  // queue without blocking.
  ThreadPool pool(0);
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) {
    pool.Submit([&] { ran.fetch_add(1); });
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(pool.TryRunOne());
    EXPECT_EQ(ran.load(), i + 1);
  }
  EXPECT_FALSE(pool.TryRunOne());
  EXPECT_EQ(ran.load(), 5);
}

TEST(ThreadPoolTest, NestedParallelForEachCompletes) {
  // Nested fan-out on the bounded shared pool: every outer unit spawns an
  // inner ParallelForEach. Before waiting loops helped drain the queue this
  // deadlocked when all workers sat in outer bodies waiting for inner
  // helpers nobody was free to run. Completion (and the exact visit count)
  // is the assertion; a hang fails via the test timeout.
  constexpr int64_t kOuter = 8;
  constexpr int64_t kInner = 16;
  for (const int threads : {2, 4, 8}) {
    std::atomic<int64_t> visits{0};
    ParallelForEach(kOuter, threads, [&](int64_t) {
      ParallelForEach(kInner, threads,
                      [&](int64_t) { visits.fetch_add(1); });
    });
    EXPECT_EQ(visits.load(), kOuter * kInner) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, DoublyNestedParallelForEachCompletes) {
  // One level deeper, mirroring a pipelined DAG task whose body runs a
  // morsel loop that itself sorts in parallel.
  constexpr int64_t kN = 4;
  std::atomic<int64_t> visits{0};
  ParallelForEach(kN, 4, [&](int64_t) {
    ParallelForEach(kN, 4, [&](int64_t) {
      ParallelForEach(kN, 4, [&](int64_t) { visits.fetch_add(1); });
    });
  });
  EXPECT_EQ(visits.load(), kN * kN * kN);
}

}  // namespace
}  // namespace nestra
