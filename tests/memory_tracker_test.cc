// Properties of the memory-accounting subsystem (DESIGN.md §14):
//
//  * unit semantics of the tracker primitives — charge/release/fold, the
//    soft limit, the session/process roll-up, the TLS installers;
//  * accounted logical bytes are a proven lower bound for what the
//    materialized containers actually hold live at spot-check points;
//  * the reported query peak is run-to-run deterministic at fixed
//    (engine, threads, options), for {row, vectorized} x threads {1,2,8}
//    and both the staged and pipelined schedulers;
//  * EXPLAIN ANALYZE shows per-stage mem=/peak= for hash join, sort, and
//    nest stages, and those numbers match the profile JSON;
//  * with the limit off, accounting changes no observable behavior; with a
//    tiny limit the query fails loudly with ResourceExhausted and no
//    partial results — including under 8 concurrent limited sessions.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/date.h"
#include "common/memory_tracker.h"
#include "common/table.h"
#include "nra/executor.h"
#include "nra/profile.h"
#include "server/connection_manager.h"
#include "server/session.h"
#include "storage/catalog.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::I;
using testing_util::S;

// ---------- Tracker primitives ----------

TEST(MemoryAcctTest, TracksCurrentAndPeak) {
  MemoryAcct acct;
  acct.Add(100);
  acct.Add(50);
  EXPECT_EQ(acct.cur(), 150);
  EXPECT_EQ(acct.peak(), 150);
  acct.Release(120);
  EXPECT_EQ(acct.cur(), 30);
  EXPECT_EQ(acct.peak(), 150);
  acct.Add(10);
  EXPECT_EQ(acct.peak(), 150);  // peak only moves on new highs
  acct.Reset();
  EXPECT_EQ(acct.cur(), 0);
  EXPECT_EQ(acct.peak(), 0);
}

TEST(QueryMemoryTrackerTest, ChargeReleaseAndFold) {
  QueryMemoryTracker tracker(/*limit=*/0);
  EXPECT_OK(tracker.Charge(1000));
  EXPECT_EQ(tracker.current(), 1000);
  EXPECT_EQ(tracker.peak(), 0);  // peak is stage-folded, not charge-driven
  EXPECT_OK(tracker.FoldStage(700));
  EXPECT_OK(tracker.FoldStage(400));  // smaller fold cannot lower the peak
  EXPECT_EQ(tracker.peak(), 700);
  tracker.Release(1000);
  EXPECT_EQ(tracker.current(), 0);
}

TEST(QueryMemoryTrackerTest, SoftLimitFailsLoudly) {
  QueryMemoryTracker tracker(/*limit=*/500);
  EXPECT_OK(tracker.Charge(400));
  const Status over = tracker.Charge(200);
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(over.message().find("max_query_mem"), std::string::npos)
      << over.ToString();
  // A failed charge has still landed; the caller (or the destructor)
  // releases it, so session/process gauges never drift.
  EXPECT_EQ(tracker.current(), 600);
  const Status fold = tracker.FoldStage(501);
  EXPECT_EQ(fold.code(), StatusCode::kResourceExhausted);
  EXPECT_OK(tracker.FoldStage(500));  // exactly at the limit is allowed
}

TEST(QueryMemoryTrackerTest, FoldsIntoSessionOnDestruction) {
  SessionMemoryTracker session("test-session");
  {
    ScopedSessionMemory scoped_session(&session);
    QueryMemoryTracker q1(0);
    EXPECT_OK(q1.Charge(300));
    EXPECT_OK(q1.FoldStage(300));
    EXPECT_EQ(session.current(), 300);
    // q1 destructs with live bytes (as a failed query would): the residual
    // is released and the peak folds into the session.
  }
  EXPECT_EQ(session.current(), 0);
  EXPECT_EQ(session.peak(), 300);
  EXPECT_EQ(session.cumulative(), 300);
  EXPECT_EQ(session.queries(), 1);
  {
    ScopedSessionMemory scoped_session(&session);
    QueryMemoryTracker q2(0);
    EXPECT_OK(q2.FoldStage(120));
  }
  EXPECT_EQ(session.peak(), 300);         // max across queries
  EXPECT_EQ(session.cumulative(), 420);   // sum across queries
  EXPECT_EQ(session.queries(), 2);
}

TEST(MemoryTrackerTest, ScopedInstallersNestAndRestore) {
  EXPECT_EQ(CurrentQueryMemory(), nullptr);
  QueryMemoryTracker outer(0);
  QueryMemoryTracker inner(0);
  {
    ScopedQueryMemory a(&outer);
    EXPECT_EQ(CurrentQueryMemory(), &outer);
    {
      ScopedQueryMemory b(&inner);
      EXPECT_EQ(CurrentQueryMemory(), &inner);
    }
    EXPECT_EQ(CurrentQueryMemory(), &outer);
  }
  EXPECT_EQ(CurrentQueryMemory(), nullptr);
}

TEST(MemoryTrackerTest, DumpHierarchyListsLiveSessions) {
  SessionMemoryTracker session("dump-probe");
  {
    ScopedSessionMemory scoped(&session);
    QueryMemoryTracker q(0);
    EXPECT_OK(q.FoldStage(64));
  }
  const std::string dump = DumpMemoryHierarchy();
  EXPECT_NE(dump.find("process: current="), std::string::npos) << dump;
  EXPECT_NE(dump.find("session dump-probe:"), std::string::npos) << dump;
  EXPECT_NE(dump.find("cumulative=64B"), std::string::npos) << dump;
}

// ---------- Accounted bytes vs. live container contents ----------

TEST(MemoryTrackerTest, LogicalBytesBoundLiveContainers) {
  // Logical sizes must cover at least the row headers and every owned
  // string payload — the dominant live allocations of a materialized
  // table. (They deliberately exclude allocator slack, which is what makes
  // them deterministic.)
  Schema schema({Field("id", TypeId::kInt64, /*nullable=*/false),
                 Field("name", TypeId::kString, /*nullable=*/false)});
  std::vector<Row> rows;
  int64_t string_payload = 0;
  for (int i = 0; i < 100; ++i) {
    const std::string name(static_cast<size_t>(i % 17) + 1, 'x');
    string_payload += static_cast<int64_t>(name.size());
    rows.push_back(Row({I(i), S(name)}));
  }
  Table table(schema, std::move(rows));
  const int64_t lower_bound =
      table.num_rows() * static_cast<int64_t>(sizeof(Row)) + string_payload;
  EXPECT_GE(TableBytes(table), lower_bound);
  // And per row: RowBytes covers the header plus each value header.
  const Row& r = table.rows().front();
  EXPECT_GE(RowBytes(r),
            static_cast<int64_t>(sizeof(Row)) +
                static_cast<int64_t>(r.values().size() * sizeof(Value)));
  EXPECT_EQ(ValueBytes(S("abcd")),
            static_cast<int64_t>(sizeof(Value)) + 4);
}

// ---------- End-to-end properties on TPC-H ----------

class MemoryTpchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig config;
    config.scale = 0.04;
    config.declare_not_null = true;
    ASSERT_OK(PopulateTpch(&catalog_, config));
  }

  std::string Query1Sql() {
    const Table* orders = *catalog_.GetTable("orders");
    const Value lo = *ColumnQuantile(*orders, "o_orderdate", 0.2);
    const Value hi = *ColumnQuantile(*orders, "o_orderdate", 0.8);
    return MakeQuery1(FormatDate(lo.int64()), FormatDate(hi.int64()));
  }

  Catalog catalog_;
};

TEST_F(MemoryTpchTest, PeakIsRunToRunDeterministic) {
  const std::string sql = Query1Sql();
  for (const bool vectorized : {false, true}) {
    for (const int threads : {1, 2, 8}) {
      for (const bool pipelined : {false, true}) {
        NraOptions opts;
        opts.vectorized = vectorized;
        opts.num_threads = threads;
        opts.pipelined = pipelined;
        int64_t ref_peak = -1;
        for (int run = 0; run < 3; ++run) {
          NraExecutor exec(catalog_, opts);
          NraStats stats;
          ASSERT_OK_AND_ASSIGN(Table result, exec.ExecuteSql(sql, &stats));
          ASSERT_GT(result.num_rows(), 0);
          EXPECT_GT(stats.peak_mem_bytes, 0)
              << "vec=" << vectorized << " threads=" << threads
              << " pipelined=" << pipelined;
          if (run == 0) {
            ref_peak = stats.peak_mem_bytes;
          } else {
            EXPECT_EQ(stats.peak_mem_bytes, ref_peak)
                << "vec=" << vectorized << " threads=" << threads
                << " pipelined=" << pipelined << " run=" << run;
          }
        }
      }
    }
  }
}

TEST_F(MemoryTpchTest, RowAndVectorizedEnginesAccountComparably) {
  // Engines exchange the same logical rows, so the per-stage *result* bytes
  // (mem_bytes: content of the materialized stage output) are identical
  // across engines. Stage *peaks* legitimately differ: operators stage
  // their intermediates differently (the row hash join buffers pending
  // matches row-wise, the vectorized one in batches), so the query peak is
  // engine-specific — deterministic per engine (proven by
  // PeakIsRunToRunDeterministic) and close across engines.
  const std::string sql = Query1Sql();
  int64_t peaks[2] = {0, 0};
  std::map<std::string, int64_t> stage_mem[2];
  for (const bool vectorized : {false, true}) {
    NraOptions opts;
    opts.vectorized = vectorized;
    opts.num_threads = 1;
    opts.pipelined = false;
    opts.profile = true;
    NraExecutor exec(catalog_, opts);
    QueryProfile profile;
    NraStats stats;
    ASSERT_OK_AND_ASSIGN(Table result,
                         exec.ExecuteSql(sql, &stats, &profile));
    (void)result;
    const int i = vectorized ? 1 : 0;
    peaks[i] = stats.peak_mem_bytes;
    for (const ProfiledStage& stage : profile.stages()) {
      stage_mem[i][stage.label] = stage.mem_bytes;
    }
  }
  // Same stages, same materialized result bytes per stage — including the
  // base scans, which take engine-specific fast paths.
  EXPECT_EQ(stage_mem[0], stage_mem[1]);
  for (const auto& [label, bytes] : stage_mem[0]) {
    EXPECT_GT(bytes, 0) << "stage " << label << " reports no result bytes";
  }
  // Peaks are engine-specific but must stay in the same ballpark (within
  // 10% of each other): a larger gap would mean one engine stopped
  // accounting some materialization entirely.
  EXPECT_GT(peaks[0], 0);
  EXPECT_GT(peaks[1], 0);
  const double ratio = static_cast<double>(std::max(peaks[0], peaks[1])) /
                       static_cast<double>(std::min(peaks[0], peaks[1]));
  EXPECT_LT(ratio, 1.10) << "row peak=" << peaks[0]
                         << " vectorized peak=" << peaks[1];
}

TEST_F(MemoryTpchTest, ExplainAnalyzeShowsPerStageMemMatchingJson) {
  NraOptions opts;
  opts.profile = true;
  opts.num_threads = 1;
  NraExecutor exec(catalog_, opts);
  QueryProfile profile;
  NraStats stats;
  ASSERT_OK_AND_ASSIGN(Table result,
                       exec.ExecuteSql(Query1Sql(), &stats, &profile));
  (void)result;

  const std::string text = profile.ToString();
  const std::string json = profile.ToJson();
  // The query total appears in both renderings and equals NraStats.
  EXPECT_GT(profile.peak_mem_bytes, 0);
  EXPECT_EQ(profile.peak_mem_bytes, stats.peak_mem_bytes);
  EXPECT_NE(text.find("peak_mem=" + std::to_string(profile.peak_mem_bytes) +
                      "B"),
            std::string::npos)
      << text;
  EXPECT_NE(json.find("\"peak_mem_bytes\":" +
                      std::to_string(profile.peak_mem_bytes)),
            std::string::npos)
      << json;

  // Every stage that materializes reports bytes, and text and JSON agree
  // number for number. Query 1 runs hash joins, the fused path's sort, and
  // nest work — all covered by the stage list.
  int stages_with_mem = 0;
  for (const ProfiledStage& stage : profile.stages()) {
    if (stage.peak_mem_bytes == 0) continue;
    ++stages_with_mem;
    EXPECT_NE(text.find(" mem=" + std::to_string(stage.mem_bytes) +
                        " peak=" + std::to_string(stage.peak_mem_bytes)),
              std::string::npos)
        << stage.label << "\n"
        << text;
    EXPECT_NE(json.find("\"mem_bytes\":" + std::to_string(stage.mem_bytes) +
                        ",\"peak_bytes\":" +
                        std::to_string(stage.peak_mem_bytes)),
              std::string::npos)
        << stage.label << "\n"
        << json;
    // A stage's footprint can never exceed the query peak.
    EXPECT_LE(stage.peak_mem_bytes, profile.peak_mem_bytes) << stage.label;
  }
  EXPECT_GT(stages_with_mem, 0) << text;

  // Per-operator annotations: the join/sort trees expose their own peaks,
  // and the rendered tree carries mem=/peak= for them.
  bool saw_operator_peak = false;
  for (const ProfiledStage& stage : profile.stages()) {
    if (stage.has_tree && stage.tree.stats.peak_mem_bytes > 0) {
      saw_operator_peak = true;
    }
    for (const ProfiledOperator& child : stage.tree.children) {
      if (child.stats.peak_mem_bytes > 0) saw_operator_peak = true;
    }
  }
  EXPECT_TRUE(saw_operator_peak);
}

TEST_F(MemoryTpchTest, LimitOffChangesNothing) {
  const std::string sql = Query1Sql();
  Table no_limit_result;
  NraStats no_limit_stats;
  {
    NraOptions opts;  // max_query_mem defaults to 0 (off)
    NraExecutor exec(catalog_, opts);
    ASSERT_OK_AND_ASSIGN(no_limit_result,
                         exec.ExecuteSql(sql, &no_limit_stats));
  }
  {
    NraOptions opts;
    opts.max_query_mem = int64_t{1} << 40;  // on, but unreachable
    NraExecutor exec(catalog_, opts);
    NraStats stats;
    ASSERT_OK_AND_ASSIGN(Table result, exec.ExecuteSql(sql, &stats));
    EXPECT_TRUE(Table::BagEquals(no_limit_result, result));
    EXPECT_EQ(stats.peak_mem_bytes, no_limit_stats.peak_mem_bytes);
  }
}

TEST_F(MemoryTpchTest, TinyLimitFailsWithResourceExhausted) {
  for (const bool pipelined : {false, true}) {
    NraOptions opts;
    opts.pipelined = pipelined;
    opts.max_query_mem = 64;  // no real query fits in 64 accounted bytes
    NraExecutor exec(catalog_, opts);
    NraStats stats;
    const Result<Table> result = exec.ExecuteSql(Query1Sql(), &stats);
    ASSERT_FALSE(result.ok()) << "pipelined=" << pipelined;
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << result.status().ToString();
    EXPECT_NE(result.status().message().find("max_query_mem"),
              std::string::npos)
        << result.status().ToString();
  }
}

// ---------- Concurrent limited sessions through the server layer ----------

TEST_F(MemoryTpchTest, ConcurrentSessionsEnforceLimitsIndependently) {
  ServerOptions server_options;
  server_options.max_in_flight = 4;  // force some queries to queue
  ConnectionManager manager(&catalog_, server_options);
  const std::string sql = Query1Sql();

  constexpr int kSessions = 8;
  std::vector<std::unique_ptr<Session>> sessions;
  for (int i = 0; i < kSessions; ++i) {
    sessions.push_back(manager.Connect());
    // Even sessions run unlimited, odd sessions get an impossible limit.
    if (i % 2 == 1) sessions.back()->options().max_query_mem = 64;
  }

  std::atomic<int> ok_count{0};
  std::atomic<int> exhausted_count{0};
  std::atomic<int> other_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      const Result<Table> result = sessions[static_cast<size_t>(i)]->Query(sql);
      if (result.ok()) {
        ok_count.fetch_add(1);
      } else if (result.status().code() == StatusCode::kResourceExhausted) {
        exhausted_count.fetch_add(1);
      } else {
        other_count.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ok_count.load(), kSessions / 2);
  EXPECT_EQ(exhausted_count.load(), kSessions / 2);
  EXPECT_EQ(other_count.load(), 0);

  // No torn state: every admission ticket was released (failed queries
  // included), the in-flight gauge is back to zero, and the gate's
  // high-water mark respected the configured bound.
  const AdmissionController& admission = manager.admission();
  EXPECT_EQ(admission.in_flight(), 0);
  EXPECT_EQ(admission.admitted_total(), kSessions);
  EXPECT_LE(admission.peak_in_flight(), server_options.max_in_flight);

  // Session roll-ups: the unlimited sessions folded real peaks; every
  // session's live bytes drained back to zero.
  for (int i = 0; i < kSessions; ++i) {
    const SessionMemoryTracker& mem = sessions[static_cast<size_t>(i)]->memory();
    EXPECT_EQ(mem.current(), 0) << "session " << i;
    EXPECT_GE(mem.queries(), 1) << "session " << i;
    if (i % 2 == 0) {
      EXPECT_GT(mem.cumulative(), 0) << "session " << i;
    }
  }

  // And the unlimited sessions all saw the same deterministic peak.
  int64_t ref_peak = -1;
  for (int i = 0; i < kSessions; i += 2) {
    const int64_t peak = sessions[static_cast<size_t>(i)]->memory().peak();
    if (ref_peak < 0) {
      ref_peak = peak;
    } else {
      EXPECT_EQ(peak, ref_peak) << "session " << i;
    }
  }
}

}  // namespace
}  // namespace nestra
