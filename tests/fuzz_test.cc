// Robustness fuzzing: the SQL front end must never crash or hang on
// arbitrary input — every outcome is either a parsed statement or a clean
// error Status. Random inputs come in three flavors: raw bytes, token soup
// from the SQL vocabulary, and mutations of valid queries.

#include <gtest/gtest.h>

#include <string>

#include "plan/binder.h"
#include "sql/parser.h"
#include "storage/csv_io.h"
#include "tpch/random.h"
#include "verify/verifier.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::RegisterPaperRelations;

// Whatever the binder accepts, the static verifier must accept too: the
// binder is supposed to establish exactly the invariants the verifier
// re-derives, so a verifier error on a successfully-bound fuzz query means
// one of the two has drifted.
void ExpectVerifies(const QueryBlock& root, const Catalog& catalog,
                    const std::string& input) {
  for (const NraOptions& opts :
       {NraOptions::Original(), NraOptions::Optimized()}) {
    const PlanVerifier verifier(catalog, opts);
    const VerifyReport report = verifier.Verify(root);
    EXPECT_TRUE(report.ok())
        << input << "\n(" << opts.ToString() << ")\n" << report.ToString();
  }
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, RawBytesNeverCrashTheParser) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const int64_t len = rng.UniformInt(0, 120);
    std::string input;
    for (int64_t j = 0; j < len; ++j) {
      input += static_cast<char>(rng.UniformInt(32, 126));
    }
    const Result<AstSelectPtr> r = ParseSelect(input);
    if (r.ok()) {
      // Anything that parses must render and reparse.
      EXPECT_TRUE(ParseSelect((*r)->ToString()).ok()) << input;
    }
  }
}

TEST_P(FuzzTest, TokenSoupNeverCrashesParserOrBinder) {
  static const char* kVocab[] = {
      "select", "distinct", "from",  "where",  "and",   "or",    "not",
      "in",     "exists",   "all",   "any",    "some",  "is",    "null",
      "between", "group",   "by",    "having", "order", "asc",   "desc",
      "limit",  "count",    "max",   "min",    "sum",   "avg",   "(",
      ")",      ",",        ".",     "*",      "=",     "<>",    "<",
      "<=",     ">",        ">=",    "r",      "s",     "t",     "a",
      "b",      "c",        "d",     "e",      "g",     "h",     "i",
      "j",      "k",        "l",     "1",      "42",    "3.5",   "'x'",
  };
  Catalog catalog;
  RegisterPaperRelations(&catalog);

  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 300; ++i) {
    std::string input = "select";
    const int64_t len = rng.UniformInt(1, 30);
    for (int64_t j = 0; j < len; ++j) {
      input += " ";
      input += kVocab[rng.UniformInt(0, std::size(kVocab) - 1)];
    }
    const Result<QueryBlockPtr> bound = ParseAndBind(input, catalog);
    if (bound.ok()) ExpectVerifies(**bound, catalog, input);
  }
}

TEST_P(FuzzTest, MutatedValidQueriesNeverCrash) {
  Catalog catalog;
  RegisterPaperRelations(&catalog);
  const std::string base = testing_util::kQueryQ;

  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 200; ++i) {
    std::string mutated = base;
    const int64_t edits = rng.UniformInt(1, 5);
    for (int64_t e = 0; e < edits; ++e) {
      const size_t pos =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(
                                                    mutated.size() - 1)));
      switch (rng.UniformInt(0, 2)) {
        case 0:  // flip a character
          mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        case 1:  // delete a character
          mutated.erase(pos, 1);
          break;
        default:  // duplicate a slice
          mutated.insert(pos, mutated.substr(
                                  pos, static_cast<size_t>(
                                           rng.UniformInt(1, 8))));
          break;
      }
      if (mutated.empty()) mutated = "select";
    }
    const Result<QueryBlockPtr> bound = ParseAndBind(mutated, catalog);
    if (bound.ok()) ExpectVerifies(**bound, catalog, mutated);
  }
}

TEST_P(FuzzTest, CsvReaderNeverCrashes) {
  const Schema schema({{"a", TypeId::kInt64},
                       {"b", TypeId::kString},
                       {"c", TypeId::kFloat64},
                       {"d", TypeId::kDate}});
  Rng rng(GetParam() + 3000);
  for (int i = 0; i < 200; ++i) {
    std::string input = rng.Bernoulli(0.5) ? "a,b,c,d\n" : "";
    const int64_t len = rng.UniformInt(0, 200);
    for (int64_t j = 0; j < len; ++j) {
      static const char kChars[] = "abc123,\"\n\r'.-";
      input += kChars[rng.UniformInt(0, sizeof(kChars) - 2)];
    }
    const Result<Table> r = ReadCsv(input, schema);
    (void)r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace nestra
