#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/date.h"
#include "storage/csv_io.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::I;
using testing_util::N;

Schema MixedSchema() {
  return Schema({
      {"id", TypeId::kInt64, false},
      {"name", TypeId::kString, true},
      {"price", TypeId::kFloat64, true},
      {"day", TypeId::kDate, true},
  });
}

TEST(CsvIoTest, RoundTripWithNullsQuotesAndDates) {
  Table t{MixedSchema()};
  t.AppendUnchecked(Row({I(1), Value::String("plain"), Value::Float64(1.5),
                         Value::Date(*ParseDate("1995-03-17"))}));
  t.AppendUnchecked(Row({I(2), Value::String("comma, quote\" and\nnewline"),
                         N(), N()}));
  t.AppendUnchecked(Row({I(3), N(), Value::Float64(-2.25),
                         Value::Date(*ParseDate("1970-01-01"))}));

  const std::string csv = WriteCsv(t);
  ASSERT_OK_AND_ASSIGN(Table back, ReadCsv(csv, MixedSchema()));
  EXPECT_TRUE(Table::BagEquals(t, back)) << csv;
}

TEST(CsvIoTest, FloatsRoundTripBitExactly) {
  // Doubles whose shortest decimal form needs the full 17 digits must come
  // back from a write/read cycle with the identical bit pattern.
  Table t{MixedSchema()};
  int64_t id = 0;
  for (const double d : {0.1, 1e-17, 1.0 / 3.0, 1e300, -2.5e-300,
                         12345678.901234567, 0.30000000000000004}) {
    t.AppendUnchecked(Row({I(++id), N(), Value::Float64(d), N()}));
  }
  const std::string csv = WriteCsv(t);
  ASSERT_OK_AND_ASSIGN(Table back, ReadCsv(csv, MixedSchema()));
  ASSERT_EQ(back.num_rows(), t.num_rows());
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    const size_t row = static_cast<size_t>(i);
    EXPECT_EQ(back.rows()[row][2].float64(), t.rows()[row][2].float64())
        << csv;
  }
}

TEST(CsvIoTest, ReadsBasicInput) {
  const std::string csv =
      "id,name,price,day\n"
      "7,widget,3.5,1992-06-01\n"
      "8,,,\n";
  ASSERT_OK_AND_ASSIGN(Table t, ReadCsv(csv, MixedSchema()));
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.rows()[0][0], I(7));
  EXPECT_EQ(t.rows()[0][1], Value::String("widget"));
  EXPECT_EQ(t.rows()[0][3], Value::Date(*ParseDate("1992-06-01")));
  EXPECT_TRUE(t.rows()[1][1].is_null());   // empty unquoted -> NULL
  EXPECT_TRUE(t.rows()[1][2].is_null());
}

TEST(CsvIoTest, QuotedEmptyStringIsNotNull) {
  const std::string csv = "id,name,price,day\n1,\"\",,\n";
  ASSERT_OK_AND_ASSIGN(Table t, ReadCsv(csv, MixedSchema()));
  ASSERT_FALSE(t.rows()[0][1].is_null());
  EXPECT_EQ(t.rows()[0][1], Value::String(""));
}

TEST(CsvIoTest, HeaderValidation) {
  EXPECT_FALSE(ReadCsv("id,nope,price,day\n", MixedSchema()).ok());
  EXPECT_FALSE(ReadCsv("id,name\n", MixedSchema()).ok());
  EXPECT_FALSE(ReadCsv("", MixedSchema()).ok());
}

TEST(CsvIoTest, QualifiedSchemaNamesMatchUnqualifiedHeader) {
  const Schema qualified({{"t.id", TypeId::kInt64}});
  ASSERT_OK_AND_ASSIGN(Table t, ReadCsv("id\n42\n", qualified));
  EXPECT_EQ(t.rows()[0][0], I(42));
}

TEST(CsvIoTest, TypeErrors) {
  EXPECT_FALSE(ReadCsv("id,name,price,day\nxx,a,1,1992-01-01\n",
                       MixedSchema())
                   .ok());
  EXPECT_FALSE(ReadCsv("id,name,price,day\n1,a,zz,1992-01-01\n",
                       MixedSchema())
                   .ok());
  EXPECT_FALSE(ReadCsv("id,name,price,day\n1,a,1,not-a-date\n",
                       MixedSchema())
                   .ok());
}

TEST(CsvIoTest, ArityErrors) {
  EXPECT_FALSE(ReadCsv("id,name,price,day\n1,a\n", MixedSchema()).ok());
}

TEST(CsvIoTest, UnterminatedQuote) {
  EXPECT_FALSE(ReadCsv("id,name,price,day\n1,\"oops,1,\n", MixedSchema()).ok());
}

TEST(CsvIoTest, FileRoundTrip) {
  Table t{MixedSchema()};
  t.AppendUnchecked(Row({I(1), Value::String("x"), N(), N()}));
  const std::string path = ::testing::TempDir() + "/nestra_csv_test.csv";
  ASSERT_OK(WriteCsvFile(t, path));
  ASSERT_OK_AND_ASSIGN(Table back, ReadCsvFile(path, MixedSchema()));
  EXPECT_TRUE(Table::BagEquals(t, back));
  std::remove(path.c_str());
}

TEST(CsvIoTest, MissingFile) {
  EXPECT_FALSE(ReadCsvFile("/no/such/file.csv", MixedSchema()).ok());
}

TEST(CsvIoTest, CrlfLineEndings) {
  ASSERT_OK_AND_ASSIGN(
      Table t, ReadCsv("id,name,price,day\r\n1,a,2.0,1993-01-01\r\n",
                       MixedSchema()));
  EXPECT_EQ(t.num_rows(), 1);
}

TEST(CsvIoTest, IntOverflowIsAnError) {
  // One past INT64_MAX: strtoll would saturate; the reader must refuse
  // instead of loading a silently-wrong value.
  const Result<Table> r = ReadCsv(
      "id,name,price,day\n9223372036854775808,a,1.0,1993-01-01\n",
      MixedSchema());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The boundary values themselves load fine.
  ASSERT_OK_AND_ASSIGN(
      Table ok,
      ReadCsv("id,name,price,day\n9223372036854775807,a,1.0,1993-01-01\n"
              "-9223372036854775808,b,1.0,1993-01-01\n",
              MixedSchema()));
  EXPECT_EQ(ok.rows()[0][0].int64(), INT64_MAX);
  EXPECT_EQ(ok.rows()[1][0].int64(), INT64_MIN);
}

TEST(CsvIoTest, FloatOverflowIsAnError) {
  const Result<Table> r = ReadCsv(
      "id,name,price,day\n1,a,1" + std::string(400, '0') + ".0,1993-01-01\n",
      MixedSchema());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Underflow to subnormal/zero is not an error.
  ASSERT_OK_AND_ASSIGN(Table ok,
                       ReadCsv("id,name,price,day\n1,a,1e-400,1993-01-01\n",
                               MixedSchema()));
  EXPECT_EQ(ok.num_rows(), 1);
}

TEST(CsvIoTest, CarriageReturnInStringRoundTrips) {
  Table t{MixedSchema()};
  t.AppendUnchecked(Row({I(1), Value::String("line\rwith\r\nreturns"), N(),
                         N()}));
  const std::string csv = WriteCsv(t);
  // A bare \r inside an unquoted cell would terminate the record early, so
  // the writer must have quoted it.
  ASSERT_NE(csv.find("\"line\rwith\r\nreturns\""), std::string::npos) << csv;
  ASSERT_OK_AND_ASSIGN(Table back, ReadCsv(csv, MixedSchema()));
  ASSERT_EQ(back.num_rows(), 1);
  EXPECT_EQ(back.rows()[0][1].string(), "line\rwith\r\nreturns");
}

TEST(CsvIoTest, FinalQuotedEmptyStringRowSurvives) {
  // Regression: the trailing-newline heuristic used to swallow a final
  // record consisting of one quoted empty string, silently dropping a row
  // on round trip of single-string-column tables.
  const Schema one_string{{{"s", TypeId::kString, true}}};
  Table t{one_string};
  t.AppendUnchecked(Row({Value::String("x")}));
  t.AppendUnchecked(Row({Value::String("")}));
  const std::string csv = WriteCsv(t);
  ASSERT_OK_AND_ASSIGN(Table back, ReadCsv(csv, one_string));
  ASSERT_EQ(back.num_rows(), 2);
  EXPECT_TRUE(Table::BagEquals(t, back)) << csv;
  // A genuine trailing newline still doesn't create a phantom row, and an
  // unquoted empty final line still reads as NULL elsewhere in the file.
  ASSERT_OK_AND_ASSIGN(Table just_x, ReadCsv("s\nx\n", one_string));
  EXPECT_EQ(just_x.num_rows(), 1);
}

TEST(CsvIoTest, SkipsUtf8ByteOrderMark) {
  // Spreadsheet exports routinely prepend EF BB BF; without the skip the
  // BOM becomes part of the first header name and the schema match fails.
  Table t{MixedSchema()};
  t.AppendUnchecked(Row({I(7), Value::String("bom"), Value::Float64(0.5),
                         Value::Date(*ParseDate("2001-09-09"))}));
  const std::string csv = WriteCsv(t);
  ASSERT_OK_AND_ASSIGN(Table back,
                       ReadCsv("\xEF\xBB\xBF" + csv, MixedSchema()));
  EXPECT_TRUE(Table::BagEquals(t, back));

  // The BOM is consumed only at the very start: the same bytes later in
  // the stream are ordinary cell content.
  const Schema one_string{{{"s", TypeId::kString, true}}};
  ASSERT_OK_AND_ASSIGN(Table data,
                       ReadCsv("s\n\xEF\xBB\xBFx\n", one_string));
  ASSERT_EQ(data.num_rows(), 1);
  EXPECT_EQ(data.rows()[0][0].string(), "\xEF\xBB\xBFx");

  // A BOM-only file still degrades to the usual header-mismatch error
  // instead of crashing or matching an empty header.
  EXPECT_FALSE(ReadCsv("\xEF\xBB\xBF", MixedSchema()).ok());
}

TEST(CsvIoTest, BomFileRoundTripsThroughDisk) {
  Table t{MixedSchema()};
  t.AppendUnchecked(Row({I(1), Value::String("a"), N(), N()}));
  t.AppendUnchecked(Row({I(2), N(), Value::Float64(3.5), N()}));
  const std::string path = ::testing::TempDir() + "nestra_bom_test.csv";
  {
    // Write the file the way an external tool would: BOM, then the CSV.
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const std::string payload = "\xEF\xBB\xBF" + WriteCsv(t);
    std::fwrite(payload.data(), 1, payload.size(), f);
    std::fclose(f);
  }
  ASSERT_OK_AND_ASSIGN(Table back, ReadCsvFile(path, MixedSchema()));
  EXPECT_TRUE(Table::BagEquals(t, back));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nestra
