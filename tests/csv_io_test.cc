#include <gtest/gtest.h>

#include <cstdio>

#include "common/date.h"
#include "storage/csv_io.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::I;
using testing_util::N;

Schema MixedSchema() {
  return Schema({
      {"id", TypeId::kInt64, false},
      {"name", TypeId::kString, true},
      {"price", TypeId::kFloat64, true},
      {"day", TypeId::kDate, true},
  });
}

TEST(CsvIoTest, RoundTripWithNullsQuotesAndDates) {
  Table t{MixedSchema()};
  t.AppendUnchecked(Row({I(1), Value::String("plain"), Value::Float64(1.5),
                         Value::Date(*ParseDate("1995-03-17"))}));
  t.AppendUnchecked(Row({I(2), Value::String("comma, quote\" and\nnewline"),
                         N(), N()}));
  t.AppendUnchecked(Row({I(3), N(), Value::Float64(-2.25),
                         Value::Date(*ParseDate("1970-01-01"))}));

  const std::string csv = WriteCsv(t);
  ASSERT_OK_AND_ASSIGN(Table back, ReadCsv(csv, MixedSchema()));
  EXPECT_TRUE(Table::BagEquals(t, back)) << csv;
}

TEST(CsvIoTest, FloatsRoundTripBitExactly) {
  // Doubles whose shortest decimal form needs the full 17 digits must come
  // back from a write/read cycle with the identical bit pattern.
  Table t{MixedSchema()};
  int64_t id = 0;
  for (const double d : {0.1, 1e-17, 1.0 / 3.0, 1e300, -2.5e-300,
                         12345678.901234567, 0.30000000000000004}) {
    t.AppendUnchecked(Row({I(++id), N(), Value::Float64(d), N()}));
  }
  const std::string csv = WriteCsv(t);
  ASSERT_OK_AND_ASSIGN(Table back, ReadCsv(csv, MixedSchema()));
  ASSERT_EQ(back.num_rows(), t.num_rows());
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    const size_t row = static_cast<size_t>(i);
    EXPECT_EQ(back.rows()[row][2].float64(), t.rows()[row][2].float64())
        << csv;
  }
}

TEST(CsvIoTest, ReadsBasicInput) {
  const std::string csv =
      "id,name,price,day\n"
      "7,widget,3.5,1992-06-01\n"
      "8,,,\n";
  ASSERT_OK_AND_ASSIGN(Table t, ReadCsv(csv, MixedSchema()));
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.rows()[0][0], I(7));
  EXPECT_EQ(t.rows()[0][1], Value::String("widget"));
  EXPECT_EQ(t.rows()[0][3], Value::Date(*ParseDate("1992-06-01")));
  EXPECT_TRUE(t.rows()[1][1].is_null());   // empty unquoted -> NULL
  EXPECT_TRUE(t.rows()[1][2].is_null());
}

TEST(CsvIoTest, QuotedEmptyStringIsNotNull) {
  const std::string csv = "id,name,price,day\n1,\"\",,\n";
  ASSERT_OK_AND_ASSIGN(Table t, ReadCsv(csv, MixedSchema()));
  ASSERT_FALSE(t.rows()[0][1].is_null());
  EXPECT_EQ(t.rows()[0][1], Value::String(""));
}

TEST(CsvIoTest, HeaderValidation) {
  EXPECT_FALSE(ReadCsv("id,nope,price,day\n", MixedSchema()).ok());
  EXPECT_FALSE(ReadCsv("id,name\n", MixedSchema()).ok());
  EXPECT_FALSE(ReadCsv("", MixedSchema()).ok());
}

TEST(CsvIoTest, QualifiedSchemaNamesMatchUnqualifiedHeader) {
  const Schema qualified({{"t.id", TypeId::kInt64}});
  ASSERT_OK_AND_ASSIGN(Table t, ReadCsv("id\n42\n", qualified));
  EXPECT_EQ(t.rows()[0][0], I(42));
}

TEST(CsvIoTest, TypeErrors) {
  EXPECT_FALSE(ReadCsv("id,name,price,day\nxx,a,1,1992-01-01\n",
                       MixedSchema())
                   .ok());
  EXPECT_FALSE(ReadCsv("id,name,price,day\n1,a,zz,1992-01-01\n",
                       MixedSchema())
                   .ok());
  EXPECT_FALSE(ReadCsv("id,name,price,day\n1,a,1,not-a-date\n",
                       MixedSchema())
                   .ok());
}

TEST(CsvIoTest, ArityErrors) {
  EXPECT_FALSE(ReadCsv("id,name,price,day\n1,a\n", MixedSchema()).ok());
}

TEST(CsvIoTest, UnterminatedQuote) {
  EXPECT_FALSE(ReadCsv("id,name,price,day\n1,\"oops,1,\n", MixedSchema()).ok());
}

TEST(CsvIoTest, FileRoundTrip) {
  Table t{MixedSchema()};
  t.AppendUnchecked(Row({I(1), Value::String("x"), N(), N()}));
  const std::string path = ::testing::TempDir() + "/nestra_csv_test.csv";
  ASSERT_OK(WriteCsvFile(t, path));
  ASSERT_OK_AND_ASSIGN(Table back, ReadCsvFile(path, MixedSchema()));
  EXPECT_TRUE(Table::BagEquals(t, back));
  std::remove(path.c_str());
}

TEST(CsvIoTest, MissingFile) {
  EXPECT_FALSE(ReadCsvFile("/no/such/file.csv", MixedSchema()).ok());
}

TEST(CsvIoTest, CrlfLineEndings) {
  ASSERT_OK_AND_ASSIGN(
      Table t, ReadCsv("id,name,price,day\r\n1,a,2.0,1993-01-01\r\n",
                       MixedSchema()));
  EXPECT_EQ(t.num_rows(), 1);
}

}  // namespace
}  // namespace nestra
