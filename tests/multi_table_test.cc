// Blocks whose FROM clause names several tables: the block-local join is
// part of T_i = sigma_i(R_i) and everything else (linking, correlation,
// emptiness detection via the FIRST table's key) must keep working.

#include <gtest/gtest.h>

#include "baseline/native_optimizer.h"
#include "baseline/nested_iteration.h"
#include "nra/executor.h"
#include "plan/binder.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;

class MultiTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // customers(ck, region) / accounts(ak, owner_ck, balance) /
    // flags(fk, f_ck, level)
    ASSERT_OK(catalog_.RegisterTable(
        "customers",
        MakeTable({"ck", "region"},
                  {{I(1), I(10)}, {I(2), I(10)}, {I(3), I(20)}, {I(4), N()}}),
        "ck"));
    ASSERT_OK(catalog_.RegisterTable(
        "accounts",
        MakeTable({"ak", "owner_ck", "balance"}, {{I(1), I(1), I(100)},
                                                  {I(2), I(1), I(250)},
                                                  {I(3), I(2), N()},
                                                  {I(4), I(3), I(50)}}),
        "ak"));
    ASSERT_OK(catalog_.RegisterTable(
        "flags",
        MakeTable({"fk", "f_ck", "level"},
                  {{I(1), I(1), I(7)}, {I(2), I(3), I(2)}, {I(3), I(9), I(5)}}),
        "fk"));
  }

  void CheckAgainstOracle(const std::string& sql) {
    NestedIterationExecutor oracle(catalog_, {.use_indexes = false});
    ASSERT_OK_AND_ASSIGN(Table expected, oracle.ExecuteSql(sql));
    for (const NraOptions& opts :
         {NraOptions::Original(), NraOptions::Optimized()}) {
      NraExecutor exec(catalog_, opts);
      ASSERT_OK_AND_ASSIGN(Table actual, exec.ExecuteSql(sql));
      EXPECT_TRUE(Table::BagEquals(expected, actual))
          << sql << "\n"
          << opts.ToString() << "\nexpected:\n"
          << expected.ToString() << "actual:\n"
          << actual.ToString();
    }
    ASSERT_OK_AND_ASSIGN(Table native, ExecuteNativeSql(sql, catalog_));
    EXPECT_TRUE(Table::BagEquals(expected, native)) << sql;
  }

  Catalog catalog_;
};

TEST_F(MultiTableTest, RootJoinTwoTables) {
  // Plain join in the outer block.
  NraExecutor exec(catalog_);
  ASSERT_OK_AND_ASSIGN(
      Table out,
      exec.ExecuteSql("select ck, balance from customers, accounts "
                      "where owner_ck = ck and balance > 80"));
  ExpectTablesEqual(MakeTable({"customers.ck", "accounts.balance"},
                              {{I(1), I(100)}, {I(1), I(250)}}),
                    out);
}

TEST_F(MultiTableTest, RootJoinWithSubquery) {
  CheckAgainstOracle(
      "select ck, ak from customers, accounts "
      "where owner_ck = ck and "
      "not exists (select * from flags where f_ck = ck)");
}

TEST_F(MultiTableTest, SubqueryWithTwoTables) {
  // The subquery block joins accounts and flags internally; its key is the
  // FIRST table's PK (accounts.ak).
  CheckAgainstOracle(
      "select ck from customers where region > all ("
      "  select level from accounts, flags "
      "  where f_ck = owner_ck and owner_ck = ck)");
}

TEST_F(MultiTableTest, SubqueryTwoTablesPositive) {
  CheckAgainstOracle(
      "select ck from customers where ck in ("
      "  select owner_ck from accounts, flags "
      "  where f_ck = owner_ck and level > 1)");
}

TEST_F(MultiTableTest, TwoLevelWithMultiTableMiddleBlock) {
  CheckAgainstOracle(
      "select ck from customers where region >= some ("
      "  select level from flags, accounts "
      "  where f_ck = owner_ck and owner_ck = ck and "
      "        balance > all (select ak from accounts a2 "
      "                       where a2.owner_ck = f_ck))");
}

TEST_F(MultiTableTest, CartesianInsideBlock) {
  // No join predicate between the block's tables: a true (block-local)
  // Cartesian product.
  CheckAgainstOracle(
      "select ck from customers where exists ("
      "  select * from accounts, flags where owner_ck = ck)");
}

TEST_F(MultiTableTest, BinderQualifiesBothTables) {
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr root,
      ParseAndBind("select ck from customers c, accounts a "
                   "where a.owner_ck = c.ck",
                   catalog_));
  EXPECT_EQ(root->tables.size(), 2u);
  EXPECT_EQ(root->key_attr, "c.ck");  // first table's PK
  EXPECT_EQ(root->attributes.size(), 5u);
}

}  // namespace
}  // namespace nestra
