// Regression tests for the hash-key equality bug: `Value::Apply(kEq)`
// equates int64 1 with float64 1.0 (SQL comparison semantics), but the deep
// `Value::Hash()`/`operator==` pair deliberately does not — and every
// hash-keyed operator used to key its tables with the deep pair. A probe
// with a float64 key could therefore miss build rows that the nested-loop
// join (which compares with Apply(kEq)) matches. All hash-keyed operators
// now use the SQL comparator from common/hash_key.h; each test pins one of
// them against its order-insensitive oracle on mixed int64/float64 keys.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/hash_key.h"
#include "common/value.h"
#include "exec/aggregate.h"
#include "exec/distinct.h"
#include "exec/hash_join.h"
#include "exec/nested_loop_join.h"
#include "exec/set_ops.h"
#include "expr/expr.h"
#include "nested/nest.h"
#include "storage/hash_index.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::F;
using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;

TEST(SqlHashTest, NumericallyEqualValuesHashEqual) {
  // The invariant every Sql* functor rests on: Apply(kEq) true ⇒ equal
  // SqlHash.
  EXPECT_EQ(Value::Int64(1).SqlHash(), Value::Float64(1.0).SqlHash());
  EXPECT_EQ(Value::Int64(-7).SqlHash(), Value::Float64(-7.0).SqlHash());
  EXPECT_EQ(Value::Int64(0).SqlHash(), Value::Float64(0.0).SqlHash());
  EXPECT_EQ(Value::Float64(0.0).SqlHash(), Value::Float64(-0.0).SqlHash());
  EXPECT_EQ(Value::Null().SqlHash(), Value::Null().SqlHash());
  EXPECT_EQ(Value::String("ab").SqlHash(), Value::String("ab").SqlHash());
  // Sanity: the deep pair still distinguishes the representations (that is
  // its documented contract — see Value::Hash).
  EXPECT_FALSE(Value::Int64(1) == Value::Float64(1.0));
}

TEST(SqlHashTest, FunctorsMatchSqlComparison) {
  const SqlValueEq eq;
  EXPECT_TRUE(eq(Value::Int64(3), Value::Float64(3.0)));
  EXPECT_TRUE(eq(Value::Null(), Value::Null()));  // NULL groups together
  EXPECT_FALSE(eq(Value::Int64(3), Value::Float64(3.5)));
  EXPECT_FALSE(eq(Value::Int64(3), Value::Null()));
  const SqlValueKeyEq key_eq;
  EXPECT_TRUE(key_eq({Value::Int64(1), Value::Null()},
                     {Value::Float64(1.0), Value::Null()}));
  EXPECT_FALSE(key_eq({Value::Int64(1)}, {Value::Int64(1), Value::Int64(1)}));
  const SqlValueKeyHash key_hash;
  EXPECT_EQ(key_hash({Value::Int64(1), Value::Int64(2)}),
            key_hash({Value::Float64(1.0), Value::Float64(2.0)}));
}

// ---------- Hash join vs. nested-loop join ----------

// Left: int64 keys. Right: float64 keys of equal numeric value (plus a
// fractional key, a NULL, and an unmatched key). The nested-loop join
// evaluates `l.k = r.k` with Value::Apply and is the semantics oracle.
struct MixedKeyFixture {
  Table left = MakeTable({"l.k", "l.v"}, {{I(1), I(10)},
                                          {I(2), I(20)},
                                          {N(), I(30)},
                                          {I(4), I(40)},
                                          {I(5), I(50)}});
  Table right = MakeTable({"r.k", "r.w"}, {{F(1.0), I(100)},
                                           {F(1.0), I(101)},
                                           {F(2.5), I(102)},
                                           {N(), I(103)},
                                           {F(4.0), I(104)},
                                           {F(9.0), I(105)}});

  Result<Table> RunHash(JoinType type) {
    auto l = std::make_unique<TableSourceNode>(left);
    auto r = std::make_unique<TableSourceNode>(right);
    HashJoinNode join(std::move(l), std::move(r), type, {{"l.k", "r.k"}},
                      nullptr);
    return CollectTable(&join);
  }

  Result<Table> RunNlj(JoinType type) {
    auto l = std::make_unique<TableSourceNode>(left);
    auto r = std::make_unique<TableSourceNode>(right);
    auto cond = std::make_unique<Comparison>(CmpOp::kEq,
                                             std::make_unique<ColumnRef>("l.k"),
                                             std::make_unique<ColumnRef>("r.k"));
    NestedLoopJoinNode join(std::move(l), std::move(r), type, std::move(cond));
    return CollectTable(&join);
  }
};

TEST(HashKeyEqualityTest, HashJoinMatchesNestedLoopOnMixedIntFloatKeys) {
  // kLeftAntiNullAware is excluded: the nested-loop join treats it as a
  // plain antijoin (nested_loop_join.cc), so it is not an oracle for the
  // hash join's NOT-IN semantics. That type gets its own test below.
  for (const JoinType type :
       {JoinType::kInner, JoinType::kLeftOuter, JoinType::kLeftSemi,
        JoinType::kLeftAnti}) {
    MixedKeyFixture f;
    ASSERT_OK_AND_ASSIGN(Table hash_out, f.RunHash(type));
    ASSERT_OK_AND_ASSIGN(Table nlj_out, f.RunNlj(type));
    EXPECT_TRUE(Table::BagEquals(nlj_out, hash_out))
        << "join type " << JoinTypeToString(type) << "\nNLJ (oracle):\n"
        << nlj_out.ToString() << "hash join:\n"
        << hash_out.ToString();
  }
}

TEST(HashKeyEqualityTest, NullAwareAntiJoinUsesNumericEquality) {
  // NOT-IN semantics: a NULL key on the build side makes `l.k NOT IN right`
  // UNKNOWN for every probe, and a NULL probe key is likewise dropped.
  MixedKeyFixture f;
  ASSERT_OK_AND_ASSIGN(Table with_null, f.RunHash(JoinType::kLeftAntiNullAware));
  EXPECT_EQ(with_null.num_rows(), 0) << with_null.ToString();

  // With the build-side NULL removed, only probes with no numeric match
  // survive — int64 5 must be recognized as matching nothing, while int64
  // 1 and 4 must hash-match the float64 build keys 1.0 and 4.0. The NULL
  // probe still drops (NULL NOT IN {non-empty} is UNKNOWN).
  MixedKeyFixture no_null;
  no_null.right = MakeTable({"r.k", "r.w"}, {{F(1.0), I(100)},
                                             {F(2.5), I(102)},
                                             {F(4.0), I(104)}});
  ASSERT_OK_AND_ASSIGN(Table out, no_null.RunHash(JoinType::kLeftAntiNullAware));
  ASSERT_EQ(out.num_rows(), 2) << out.ToString();
  EXPECT_EQ(out.rows()[0][0], I(2));
  EXPECT_EQ(out.rows()[1][0], I(5));

  // NOT IN over an empty build side keeps every probe, NULL included.
  MixedKeyFixture empty;
  empty.right = MakeTable({"r.k", "r.w"}, {});
  ASSERT_OK_AND_ASSIGN(Table all, empty.RunHash(JoinType::kLeftAntiNullAware));
  EXPECT_EQ(all.num_rows(), 5) << all.ToString();
}

TEST(HashKeyEqualityTest, InnerJoinFindsFloatMatchesForIntProbes) {
  // The concrete pre-fix failure: int64 probes missed float64 build keys.
  MixedKeyFixture f;
  ASSERT_OK_AND_ASSIGN(Table out, f.RunHash(JoinType::kInner));
  EXPECT_EQ(out.num_rows(), 3);  // 1↔1.0 (twice), 4↔4.0
}

// ---------- Nest (hash method vs. sort method) ----------

TEST(HashKeyEqualityTest, HashNestMatchesSortNestOnMixedKeys) {
  // Rows 0 and 1 carry numerically equal keys in different representations;
  // sort-based nest (TotalOrderCompare) always grouped them together, the
  // hash-based nest must now agree.
  const Table input = MakeTable({"k", "v"}, {{I(1), I(10)},
                                             {F(1.0), I(11)},
                                             {I(2), I(20)},
                                             {F(2.5), I(25)},
                                             {N(), I(30)},
                                             {N(), I(31)}});
  ASSERT_OK_AND_ASSIGN(NestedRelation by_sort,
                       Nest(input, {"k"}, {"v"}, "g", NestMethod::kSort));
  ASSERT_OK_AND_ASSIGN(NestedRelation by_hash,
                       Nest(input, {"k"}, {"v"}, "g", NestMethod::kHash));
  EXPECT_EQ(by_sort.num_tuples(), 4);  // {1,1.0}, {2}, {2.5}, {NULL,NULL}
  EXPECT_EQ(by_hash.num_tuples(), 4);
  EXPECT_TRUE(NestedRelation::BagEquals(by_sort, by_hash))
      << "sort:\n" << by_sort.ToString() << "hash:\n" << by_hash.ToString();
}

// ---------- Distinct / aggregate / set ops / index ----------

TEST(HashKeyEqualityTest, DistinctDeduplicatesAcrossRepresentations) {
  // Row::Compare (the SQL comparator) says (1) == (1.0); DistinctNode's
  // hash set must agree with it.
  auto src = std::make_unique<TableSourceNode>(
      MakeTable({"k"}, {{I(1)}, {F(1.0)}, {I(2)}, {N()}, {N()}}));
  DistinctNode distinct(std::move(src));
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&distinct));
  EXPECT_EQ(out.num_rows(), 3);  // {1}, {2}, {NULL}
}

TEST(HashKeyEqualityTest, GroupByMergesNumericallyEqualKeys) {
  auto src = std::make_unique<TableSourceNode>(MakeTable(
      {"k", "v"}, {{I(1), I(10)}, {F(1.0), I(32)}, {I(3), I(100)}}));
  AggregateNode agg(std::move(src), {"k"},
                    {{AggFunc::kSum, "v", "total"}});
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&agg));
  ASSERT_EQ(out.num_rows(), 2);
  // One group holds 10 + 32, keyed by whichever representation arrived
  // first; the other holds 100.
  bool saw_42 = false;
  for (const Row& r : out.rows()) {
    if (r[1].AsDouble().value_or(0) == 42.0) saw_42 = true;
  }
  EXPECT_TRUE(saw_42) << out.ToString();
}

TEST(HashKeyEqualityTest, SetOpsCompareNumerically) {
  const Table ints = MakeTable({"k"}, {{I(1)}, {I(2)}, {I(3)}});
  const Table floats = MakeTable({"k"}, {{F(1.0)}, {F(2.5)}, {F(3.0)}});
  ASSERT_OK_AND_ASSIGN(Table inter, Intersect(ints, floats));
  EXPECT_EQ(inter.num_rows(), 2);  // 1 and 3
  ASSERT_OK_AND_ASSIGN(Table except, Except(ints, floats));
  EXPECT_EQ(except.num_rows(), 1);  // only 2 survives
  ASSERT_OK_AND_ASSIGN(Table uni, UnionDistinct(ints, floats));
  EXPECT_EQ(uni.num_rows(), 4);  // 1, 2, 2.5, 3
}

TEST(HashKeyEqualityTest, HashIndexAnswersCrossRepresentationProbes) {
  const Table t = MakeTable({"k", "v"}, {{I(1), I(10)}, {I(2), I(20)},
                                         {I(1), I(11)}, {N(), I(30)}});
  const HashIndex index(t, /*column=*/0);
  EXPECT_EQ(index.Lookup(Value::Float64(1.0)).size(), 2u);
  EXPECT_EQ(index.Lookup(Value::Int64(2)).size(), 1u);
  EXPECT_EQ(index.Lookup(Value::Float64(2.5)).size(), 0u);
  EXPECT_EQ(index.Lookup(Value::Null()).size(), 0u);  // never indexed
}

// ---------- Value::ToString round trips (satellite bugfix) ----------

TEST(ValueToStringTest, DoublesRoundTripExactly) {
  // The old "%.6g"-style formatting lost precision, corrupting CSV and
  // catalog round trips. Shortest-round-trip formatting must parse back to
  // the identical bit pattern.
  for (const double d :
       {0.1, 1e-17, 1.0 / 3.0, 1e300, -2.5e-300, 12345678.91011121,
        123456.789, -0.0, 3.141592653589793}) {
    const std::string s = Value::Float64(d).ToString();
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), d) << "formatted as " << s;
  }
  EXPECT_EQ(Value::Float64(1.0).ToString(), "1");
  EXPECT_EQ(Value::Float64(0.1).ToString(), "0.1");
}

}  // namespace
}  // namespace nestra
