// Differential (property-based) testing: random tables with NULLs, random
// nested queries over every linking operator, and the invariant that every
// evaluation strategy returns exactly what the tuple-iteration oracle
// returns.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "baseline/native_optimizer.h"
#include "baseline/nested_iteration.h"
#include "nra/executor.h"
#include "query_generator.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::QueryGenerator;

class PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertyTest, AllStrategiesMatchTheOracle) {
  QueryGenerator gen(GetParam());
  Catalog catalog;
  gen.PopulateTables(&catalog);

  NestedIterationExecutor oracle(catalog, {.use_indexes = false});
  NestedIterationExecutor indexed(catalog, {.use_indexes = true});

  std::vector<std::pair<std::string, NraOptions>> configs;
  configs.emplace_back("original", NraOptions::Original());
  configs.emplace_back("optimized", NraOptions::Optimized());
  {
    NraOptions o = NraOptions::Optimized();
    o.push_down_nest = true;
    o.rewrite_positive = true;
    o.bottom_up_linear = true;
    configs.emplace_back("all-rewrites", o);
  }
  {
    NraOptions o = NraOptions::Original();
    o.nest_method = NestMethod::kHash;
    configs.emplace_back("hash-nest", o);
  }
  {
    NraOptions o = NraOptions::Optimized();
    o.magic_restriction = true;
    configs.emplace_back("magic", o);
  }

  for (int i = 0; i < 25; ++i) {
    const std::string sql = gen.RandomQuery();
    SCOPED_TRACE(sql);
    ASSERT_OK_AND_ASSIGN(Table expected, oracle.ExecuteSql(sql));

    ASSERT_OK_AND_ASSIGN(Table via_index, indexed.ExecuteSql(sql));
    EXPECT_TRUE(Table::BagEquals(expected, via_index));

    for (const auto& [name, opts] : configs) {
      NraExecutor exec(catalog, opts);
      Result<Table> actual = exec.ExecuteSql(sql);
      ASSERT_TRUE(actual.ok()) << name << ": " << actual.status().ToString();
      EXPECT_TRUE(Table::BagEquals(expected, *actual))
          << name << " diverged; expected " << expected.num_rows()
          << " rows, got " << actual->num_rows() << "\nexpected:\n"
          << expected.ToString() << "actual:\n"
          << actual->ToString();
    }

    NativePlanChoice choice;
    Result<Table> native = ExecuteNativeSql(sql, catalog, {}, &choice);
    ASSERT_TRUE(native.ok()) << native.status().ToString();
    EXPECT_TRUE(Table::BagEquals(expected, *native))
        << "native (" << choice.explanation << ") diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Range<uint64_t>(0, 16));

}  // namespace
}  // namespace nestra
