// Arithmetic expressions across the stack: Expr evaluation semantics, the
// scalar grammar, and end-to-end behaviour inside WHERE / HAVING /
// correlated predicates.

#include <gtest/gtest.h>

#include "baseline/nested_iteration.h"
#include "nra/executor.h"
#include "sql/parser.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;
using testing_util::RegisterPaperRelations;

Schema TwoIntSchema() {
  return Schema({{"x", TypeId::kInt64}, {"y", TypeId::kInt64}});
}

TEST(ArithmeticExprTest, IntegerOps) {
  ExprPtr e = Arith(ArithOp::kAdd, Col("x"), Col("y"));
  ASSERT_OK(e->Bind(TwoIntSchema()));
  EXPECT_EQ(e->Eval(Row({I(2), I(3)})), I(5));

  ExprPtr m = Arith(ArithOp::kMul, Col("x"), LitInt(4));
  ASSERT_OK(m->Bind(TwoIntSchema()));
  EXPECT_EQ(m->Eval(Row({I(3), I(0)})), I(12));

  ExprPtr s = Arith(ArithOp::kSub, Col("x"), Col("y"));
  ASSERT_OK(s->Bind(TwoIntSchema()));
  EXPECT_EQ(s->Eval(Row({I(2), I(5)})), I(-3));
}

TEST(ArithmeticExprTest, DivisionAlwaysFloatAndNullOnZero) {
  ExprPtr d = Arith(ArithOp::kDiv, Col("x"), Col("y"));
  ASSERT_OK(d->Bind(TwoIntSchema()));
  const Value v = d->Eval(Row({I(7), I(2)}));
  ASSERT_TRUE(v.is_float());
  EXPECT_DOUBLE_EQ(v.float64(), 3.5);
  EXPECT_TRUE(d->Eval(Row({I(7), I(0)})).is_null());
}

TEST(ArithmeticExprTest, NullAndNonNumericPropagate) {
  ExprPtr e = Arith(ArithOp::kAdd, Col("x"), Col("y"));
  ASSERT_OK(e->Bind(TwoIntSchema()));
  EXPECT_TRUE(e->Eval(Row({N(), I(1)})).is_null());
  ExprPtr s = Arith(ArithOp::kAdd, LitString("a"), LitInt(1));
  ASSERT_OK(s->Bind(TwoIntSchema()));
  EXPECT_TRUE(s->Eval(Row({I(0), I(0)})).is_null());
}

TEST(ArithmeticExprTest, MixedTypesPromoteToFloat) {
  ExprPtr e = Arith(ArithOp::kAdd, LitInt(1), LitFloat(0.5));
  ASSERT_OK(e->Bind(TwoIntSchema()));
  const Value v = e->Eval(Row({I(0), I(0)}));
  ASSERT_TRUE(v.is_float());
  EXPECT_DOUBLE_EQ(v.float64(), 1.5);
}

TEST(ArithmeticParserTest, PrecedenceAndParens) {
  ASSERT_OK_AND_ASSIGN(AstSelectPtr sel,
                       ParseSelect("select a from t where a + 2 * 3 = 7"));
  EXPECT_EQ(sel->where->lhs.ToString(), "(a + (2 * 3))");
  ASSERT_OK_AND_ASSIGN(
      AstSelectPtr paren,
      ParseSelect("select a from t where a = (b + 1) * 2"));
  EXPECT_EQ(paren->where->rhs.ToString(), "((b + 1) * 2)");
}

TEST(ArithmeticParserTest, UnaryMinus) {
  ASSERT_OK_AND_ASSIGN(AstSelectPtr sel,
                       ParseSelect("select a from t where a > -5"));
  EXPECT_EQ(sel->where->rhs.literal, Value::Int64(-5));
  ASSERT_OK_AND_ASSIGN(AstSelectPtr neg,
                       ParseSelect("select a from t where -a < 0"));
  EXPECT_EQ(neg->where->lhs.ToString(), "(0 - a)");
}

TEST(ArithmeticParserTest, RoundTrip) {
  const char* sql = "SELECT a FROM t WHERE a * 2 + 1 >= b / 4 - 3";
  ASSERT_OK_AND_ASSIGN(AstSelectPtr sel, ParseSelect(sql));
  ASSERT_OK_AND_ASSIGN(AstSelectPtr again, ParseSelect(sel->ToString()));
  EXPECT_EQ(again->ToString(), sel->ToString());
}

class ArithmeticEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterPaperRelations(&catalog_); }

  Table Run(const std::string& sql) {
    NraExecutor exec(catalog_);
    Result<Table> r = exec.ExecuteSql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << sql;
    return r.ok() ? std::move(r).ValueOrDie() : Table();
  }

  Catalog catalog_;
};

TEST_F(ArithmeticEndToEndTest, WhereClause) {
  // r: (a,d) = (1,1),(2,2),(3,3),(null,4). a + d > 4 keeps a=3 (3+3=6);
  // a=2: 4 not > 4; null propagates to UNKNOWN.
  ExpectTablesEqual(MakeTable({"r.d"}, {{I(3)}}),
                    Run("select d from r where a + d > 4"));
}

TEST_F(ArithmeticEndToEndTest, CorrelatedPredicateWithArithmetic) {
  const char* sql =
      "select d from r where exists (select * from s where s.e + 1 = r.b)";
  // e+1 in {2,3,4,5}; b values 2,3,4 match; null b is UNKNOWN.
  ExpectTablesEqual(MakeTable({"r.d"}, {{I(1)}, {I(2)}, {I(3)}}), Run(sql));
  // The oracle agrees.
  NestedIterationExecutor oracle(catalog_, {.use_indexes = false});
  ASSERT_OK_AND_ASSIGN(Table expected, oracle.ExecuteSql(sql));
  ExpectTablesEqual(expected, Run(sql));
}

TEST_F(ArithmeticEndToEndTest, HavingWithArithmeticOverAggregates) {
  // Average via sum/count compared against a threshold.
  const Table out = Run(
      "select g from s group by g having sum(e) / count(e) >= 3.5");
  // g=2: (1+2)/2 = 1.5; g=4: (3+4)/2 = 3.5.
  ExpectTablesEqual(MakeTable({"s.g"}, {{I(4)}}), out);
}

TEST_F(ArithmeticEndToEndTest, DateArithmetic) {
  // Dates are epoch days: d + 1 shifts by one day. Register a date table.
  Table events{Schema({{"k", TypeId::kInt64, false},
                       {"day", TypeId::kDate, true}})};
  events.AppendUnchecked(Row({I(1), Value::Date(100)}));
  events.AppendUnchecked(Row({I(2), Value::Date(200)}));
  ASSERT_OK(catalog_.RegisterTable("events", std::move(events), "k"));
  const Table out = Run("select k from events where day + 50 < 200");
  ExpectTablesEqual(MakeTable({"events.k"}, {{I(1)}}), out);
}

TEST_F(ArithmeticEndToEndTest, PredicateStartingWithParenthesizedScalar) {
  // '(' at condition level backtracks from the boolean reading to the
  // scalar one.
  ExpectTablesEqual(MakeTable({"r.d"}, {{I(3)}}),
                    Run("select d from r where (a + d) * 1 > 4"));
  ExpectTablesEqual(MakeTable({"r.d"}, {{I(1)}, {I(2)}}),
                    Run("select d from r where (a = 1 or a = 2) and d < 9"));
}

TEST_F(ArithmeticEndToEndTest, BinderRejectsAggregateInWhere) {
  EXPECT_FALSE(NraExecutor(catalog_)
                   .ExecuteSql("select d from r where b > max(c) + 1")
                   .ok());
}

TEST_F(ArithmeticEndToEndTest, ArithmeticLinkingSideRejected) {
  EXPECT_FALSE(NraExecutor(catalog_)
                   .ExecuteSql("select d from r where b + 1 in "
                               "(select e from s)")
                   .ok());
}

}  // namespace
}  // namespace nestra
