// Golden tests for the paper's Example 1 (Figures 1 and 2): the relations
// R, S, T; Temp1 = the projected double left outer join; Temp2 = the nest;
// Temp3 = the pseudo linking selection; Temp4 = the strict linking
// selection; plus the second nesting level completing Query Q's predicates.

#include <gtest/gtest.h>

#include "exec/hash_join.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "nested/linking_predicate.h"
#include "nested/linking_selection.h"
#include "nested/nest.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;
using testing_util::RegisterPaperRelations;

// Temp1(B,C,D,E,H,I,J,L), derived by hand from Figure 1:
//  * R.D=S.G matches r2->(s1,s2) and r4->(s3,s4); r1, r3 get NULL padding;
//  * T.K=R.C AND T.L<>S.I matches (r2,s1)->t2 and (r2,s2)->t1 only.
Table Temp1() {
  return MakeTable({"b", "c", "d", "e", "h", "i", "j", "l"},
                   {
                       {I(2), I(3), I(1), N(), N(), N(), N(), N()},
                       {I(3), I(4), I(2), I(1), I(2), I(1), N(), I(2)},
                       {I(3), I(4), I(2), I(2), I(7), I(2), I(5), I(1)},
                       {I(4), I(5), I(3), N(), N(), N(), N(), N()},
                       {N(), I(5), I(4), I(3), I(3), I(3), N(), N()},
                       {N(), I(5), I(4), I(4), N(), I(4), N(), N()},
                   });
}

LinkingPredicate InnerPred() {
  // S.H > ALL {T.J}, emptiness via T.L (NOT the SQL NOT IN yet).
  return MakeLinkingPredicate(LinkOp::kAll, CmpOp::kGt, "h", "grp", "j", "l");
}

LinkingPredicate OuterPred() {
  // R.B NOT IN {S.E}  ==  R.B <> ALL {S.E}, emptiness via S.I.
  return MakeLinkingPredicate(LinkOp::kNotIn, CmpOp::kEq, "b", "grp", "e",
                              "i");
}

TEST(PaperExample, Temp1ViaOuterHashJoins) {
  Catalog catalog;
  RegisterPaperRelations(&catalog);
  ASSERT_OK_AND_ASSIGN(const Table* r, catalog.GetTable("r"));
  ASSERT_OK_AND_ASSIGN(const Table* s, catalog.GetTable("s"));
  ASSERT_OK_AND_ASSIGN(const Table* t, catalog.GetTable("t"));

  auto rs = std::make_unique<HashJoinNode>(
      std::make_unique<ScanNode>(r, ""), std::make_unique<ScanNode>(s, ""),
      JoinType::kLeftOuter, std::vector<EquiPair>{{"d", "g"}}, nullptr);
  auto rst = std::make_unique<HashJoinNode>(
      std::move(rs), std::make_unique<ScanNode>(t, ""), JoinType::kLeftOuter,
      std::vector<EquiPair>{{"c", "k"}},
      Cmp(CmpOp::kNe, Col("l"), Col("i")));
  ProjectNode proj(std::move(rst),
                   {"b", "c", "d", "e", "h", "i", "j", "l"});
  ASSERT_OK_AND_ASSIGN(Table temp1, CollectTable(&proj));
  ExpectTablesEqual(Temp1(), temp1);
}

TEST(PaperExample, Temp2NestStructure) {
  ASSERT_OK_AND_ASSIGN(
      NestedRelation temp2,
      Nest(Temp1(), {"b", "c", "d", "e", "h", "i"}, {"j", "l"}, "grp"));
  ASSERT_EQ(temp2.num_tuples(), 6);
  // Every group has exactly one member here (r2's two S partners each match
  // exactly one T row; everything else is padding).
  for (const NestedTuple& t : temp2.tuples()) {
    EXPECT_EQ(t.groups[0].size(), 1u);
  }
}

TEST(PaperExample, Temp3PseudoSelection) {
  ASSERT_OK_AND_ASSIGN(
      NestedRelation temp2,
      Nest(Temp1(), {"b", "c", "d", "e", "h", "i"}, {"j", "l"}, "grp"));
  ASSERT_OK_AND_ASSIGN(
      Table temp3,
      LinkingSelect(temp2, InnerPred(), SelectionMode::kPseudo,
                    {"e", "h", "i"}));
  // Figure 2(b): the (3,4,2,1,2,1) tuple fails (2 > ALL {null} is UNKNOWN)
  // and is kept with S attributes padded; the empty-group tuples pass
  // because their T.L is NULL; (3,4,2,2,7,2) passes outright (7 > 5).
  ExpectTablesEqual(MakeTable({"b", "c", "d", "e", "h", "i"},
                              {
                                  {I(2), I(3), I(1), N(), N(), N()},
                                  {I(3), I(4), I(2), N(), N(), N()},
                                  {I(3), I(4), I(2), I(2), I(7), I(2)},
                                  {I(4), I(5), I(3), N(), N(), N()},
                                  {N(), I(5), I(4), I(3), I(3), I(3)},
                                  {N(), I(5), I(4), I(4), N(), I(4)},
                              }),
                    temp3);
}

TEST(PaperExample, Temp4StrictSelection) {
  ASSERT_OK_AND_ASSIGN(
      NestedRelation temp2,
      Nest(Temp1(), {"b", "c", "d", "e", "h", "i"}, {"j", "l"}, "grp"));
  ASSERT_OK_AND_ASSIGN(
      Table temp4,
      LinkingSelect(temp2, InnerPred(), SelectionMode::kStrict));
  // Figure 2(c): the failing tuple is discarded outright.
  ExpectTablesEqual(MakeTable({"b", "c", "d", "e", "h", "i"},
                              {
                                  {I(2), I(3), I(1), N(), N(), N()},
                                  {I(3), I(4), I(2), I(2), I(7), I(2)},
                                  {I(4), I(5), I(3), N(), N(), N()},
                                  {N(), I(5), I(4), I(3), I(3), I(3)},
                                  {N(), I(5), I(4), I(4), N(), I(4)},
                              }),
                    temp4);
}

TEST(PaperExample, SecondLevelCompletesQueryQPredicates) {
  ASSERT_OK_AND_ASSIGN(
      NestedRelation temp2,
      Nest(Temp1(), {"b", "c", "d", "e", "h", "i"}, {"j", "l"}, "grp"));
  ASSERT_OK_AND_ASSIGN(
      Table temp3,
      LinkingSelect(temp2, InnerPred(), SelectionMode::kPseudo,
                    {"e", "h", "i"}));
  ASSERT_OK_AND_ASSIGN(NestedRelation nested2,
                       Nest(temp3, {"b", "c", "d"}, {"e", "i"}, "grp"));
  ASSERT_OK_AND_ASSIGN(
      Table result,
      LinkingSelect(nested2, OuterPred(), SelectionMode::kStrict));
  // (2,3,1): empty set -> TRUE. (3,4,2): {2} and 3<>2 -> TRUE.
  // (4,5,3): empty -> TRUE. (null,5,4): null <> 3 UNKNOWN -> dropped.
  ExpectTablesEqual(MakeTable({"b", "c", "d"},
                              {
                                  {I(2), I(3), I(1)},
                                  {I(3), I(4), I(2)},
                                  {I(4), I(5), I(3)},
                              }),
                    result);
}

// ------- LinkingAccumulator unit semantics -------

TEST(LinkingAccumulatorTest, AllOverEmptyIsTrue) {
  LinkingAccumulator acc(
      MakeLinkingPredicate(LinkOp::kAll, CmpOp::kGt, "a", "g", "b", "k"));
  acc.Reset(I(5));
  EXPECT_EQ(acc.Result(), TriBool::kTrue);
}

TEST(LinkingAccumulatorTest, SomeOverEmptyIsFalse) {
  LinkingAccumulator acc(
      MakeLinkingPredicate(LinkOp::kSome, CmpOp::kGt, "a", "g", "b", "k"));
  acc.Reset(I(5));
  EXPECT_EQ(acc.Result(), TriBool::kFalse);
}

TEST(LinkingAccumulatorTest, PaperNullExample) {
  // 5 > ALL {2, 3, 4, null} is UNKNOWN (Section 2's running example).
  LinkingAccumulator acc(
      MakeLinkingPredicate(LinkOp::kAll, CmpOp::kGt, "a", "g", "b", "k"));
  acc.Reset(I(5));
  acc.Add(I(1), I(2));
  acc.Add(I(2), I(3));
  acc.Add(I(3), I(4));
  acc.Add(I(4), N());
  EXPECT_EQ(acc.Result(), TriBool::kUnknown);
}

TEST(LinkingAccumulatorTest, NullKeyMembersDoNotCount) {
  LinkingAccumulator acc(
      MakeLinkingPredicate(LinkOp::kNotExists, CmpOp::kEq, "", "g", "b", "k"));
  acc.Reset(N());
  acc.Add(N(), I(1));  // padding member
  EXPECT_EQ(acc.Result(), TriBool::kTrue);
  acc.Add(I(7), I(1));  // real member
  EXPECT_EQ(acc.Result(), TriBool::kFalse);
}

TEST(LinkingAccumulatorTest, DecidedShortCircuits) {
  LinkingAccumulator all(
      MakeLinkingPredicate(LinkOp::kAll, CmpOp::kGt, "a", "g", "b", "k"));
  all.Reset(I(5));
  all.Add(I(1), I(9));  // 5 > 9 false
  EXPECT_TRUE(all.Decided());
  EXPECT_EQ(all.Result(), TriBool::kFalse);

  LinkingAccumulator some(
      MakeLinkingPredicate(LinkOp::kIn, CmpOp::kEq, "a", "g", "b", "k"));
  some.Reset(I(5));
  some.Add(I(1), I(5));
  EXPECT_TRUE(some.Decided());
  EXPECT_EQ(some.Result(), TriBool::kTrue);
}

TEST(LinkingAccumulatorTest, InWithNullsIsUnknownNotFalse) {
  // 5 IN {1, null}: unknown (not false) — matters for NOT IN.
  LinkingAccumulator acc(
      MakeLinkingPredicate(LinkOp::kIn, CmpOp::kEq, "a", "g", "b", "k"));
  acc.Reset(I(5));
  acc.Add(I(1), I(1));
  acc.Add(I(2), N());
  EXPECT_EQ(acc.Result(), TriBool::kUnknown);
}

TEST(LinkingSelectionTest, StrictDropsUnknown) {
  // One tuple whose predicate is UNKNOWN: strict drops, pseudo pads.
  const Table flat = MakeTable({"a", "b", "k"}, {{I(5), N(), I(1)}});
  ASSERT_OK_AND_ASSIGN(NestedRelation nested,
                       Nest(flat, {"a"}, {"b", "k"}, "grp"));
  const LinkingPredicate pred =
      MakeLinkingPredicate(LinkOp::kAll, CmpOp::kGt, "a", "grp", "b", "k");
  ASSERT_OK_AND_ASSIGN(Table strict,
                       LinkingSelect(nested, pred, SelectionMode::kStrict));
  EXPECT_EQ(strict.num_rows(), 0);
  ASSERT_OK_AND_ASSIGN(
      Table pseudo,
      LinkingSelect(nested, pred, SelectionMode::kPseudo, {"a"}));
  ASSERT_EQ(pseudo.num_rows(), 1);
  EXPECT_TRUE(pseudo.rows()[0][0].is_null());
}

}  // namespace
}  // namespace nestra
