// Set operations: the table-level combinators and compound SQL statements.

#include <gtest/gtest.h>

#include "exec/set_ops.h"
#include "nra/executor.h"
#include "sql/parser.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;
using testing_util::RegisterPaperRelations;

Table A() { return MakeTable({"x"}, {{I(1)}, {I(2)}, {I(2)}, {N()}}); }
Table B() { return MakeTable({"y"}, {{I(2)}, {I(3)}, {N()}}); }

TEST(SetOpsTest, UnionAllConcatenates) {
  ASSERT_OK_AND_ASSIGN(Table out, UnionAll(A(), B()));
  EXPECT_EQ(out.num_rows(), 7);
  EXPECT_EQ(out.schema().field(0).name, "x");  // left names win
}

TEST(SetOpsTest, UnionDeduplicatesIncludingNulls) {
  ASSERT_OK_AND_ASSIGN(Table out, UnionDistinct(A(), B()));
  ExpectTablesEqual(MakeTable({"x"}, {{I(1)}, {I(2)}, {I(3)}, {N()}}), out);
}

TEST(SetOpsTest, IntersectIsASet) {
  ASSERT_OK_AND_ASSIGN(Table out, Intersect(A(), B()));
  ExpectTablesEqual(MakeTable({"x"}, {{I(2)}, {N()}}), out);
}

TEST(SetOpsTest, ExceptRemovesAndDeduplicates) {
  ASSERT_OK_AND_ASSIGN(Table out, Except(A(), B()));
  ExpectTablesEqual(MakeTable({"x"}, {{I(1)}}), out);
  ASSERT_OK_AND_ASSIGN(Table other, Except(B(), A()));
  ExpectTablesEqual(MakeTable({"y"}, {{I(3)}}), other);
}

TEST(SetOpsTest, IncompatibleInputsRejected) {
  const Table two_cols = MakeTable({"a", "b"}, {});
  EXPECT_FALSE(UnionAll(A(), two_cols).ok());
  Table string_col{Schema({{"s", TypeId::kString}})};
  EXPECT_FALSE(Intersect(A(), string_col).ok());
}

TEST(SetOpsParserTest, CompoundForms) {
  ASSERT_OK_AND_ASSIGN(
      AstStatementPtr stmt,
      ParseStatement("select a from t union select b from u union all "
                     "select c from v except select d from w"));
  ASSERT_EQ(stmt->selects.size(), 4u);
  EXPECT_EQ(stmt->ops[0], AstStatement::SetOp::kUnion);
  EXPECT_EQ(stmt->ops[1], AstStatement::SetOp::kUnionAll);
  EXPECT_EQ(stmt->ops[2], AstStatement::SetOp::kExcept);
  // Round trip.
  ASSERT_OK_AND_ASSIGN(AstStatementPtr again, ParseStatement(stmt->ToString()));
  EXPECT_EQ(again->ToString(), stmt->ToString());
}

TEST(SetOpsParserTest, SingleSelectStillWorks) {
  ASSERT_OK_AND_ASSIGN(AstStatementPtr stmt,
                       ParseStatement("select a from t where a > 1"));
  EXPECT_FALSE(stmt->IsCompound());
}

TEST(SetOpsParserTest, OrderByInCompoundRejected) {
  EXPECT_FALSE(ParseStatement("select a from t order by a union "
                              "select b from u")
                   .ok());
  EXPECT_FALSE(ParseStatement("select a from t union select b from u "
                              "limit 3")
                   .ok());
}

class CompoundExecTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterPaperRelations(&catalog_); }
  Catalog catalog_;
};

TEST_F(CompoundExecTest, UnionOfSubqueryResults) {
  NraExecutor exec(catalog_);
  // NOT EXISTS keeps b {2,4}; EXISTS keeps b {3,null}: union of both is all.
  ASSERT_OK_AND_ASSIGN(
      Table out,
      exec.ExecuteStatementSql(
          "select b from r where not exists (select * from s where s.g = r.d)"
          " union "
          "select b from r where exists (select * from s where s.g = r.d)"));
  ExpectTablesEqual(MakeTable({"r.b"}, {{I(2)}, {I(3)}, {I(4)}, {N()}}), out);
}

TEST_F(CompoundExecTest, IntersectAndExcept) {
  NraExecutor exec(catalog_);
  ASSERT_OK_AND_ASSIGN(
      Table inter,
      exec.ExecuteStatementSql("select g from s intersect select d from r"));
  ExpectTablesEqual(MakeTable({"s.g"}, {{I(2)}, {I(4)}}), inter);
  ASSERT_OK_AND_ASSIGN(
      Table except,
      exec.ExecuteStatementSql("select d from r except select g from s"));
  ExpectTablesEqual(MakeTable({"r.d"}, {{I(1)}, {I(3)}}), except);
}

TEST_F(CompoundExecTest, SingleStatementPathUnchanged) {
  NraExecutor exec(catalog_);
  NraStats stats;
  ASSERT_OK_AND_ASSIGN(Table a,
                       exec.ExecuteStatementSql(testing_util::kQueryQ, &stats));
  ASSERT_OK_AND_ASSIGN(Table b, exec.ExecuteSql(testing_util::kQueryQ));
  EXPECT_TRUE(Table::BagEquals(a, b));
  EXPECT_EQ(stats.output_rows, a.num_rows());
}

TEST_F(CompoundExecTest, MismatchedBranchesRejected) {
  NraExecutor exec(catalog_);
  EXPECT_FALSE(exec.ExecuteStatementSql("select b, c from r union "
                                        "select e from s")
                   .ok());
}

}  // namespace
}  // namespace nestra
