#include <gtest/gtest.h>

#include "exec/hash_join.h"
#include "exec/index_join.h"
#include "exec/nested_loop_join.h"
#include "exec/scan.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;

// Helper that builds the join over distinctly named columns.
struct JoinFixture {
  Table left = MakeTable({"l.k", "l.v"},
                         {{I(1), I(10)}, {I(2), I(20)}, {N(), I(30)},
                          {I(4), I(40)}});
  Table right = MakeTable({"r.k", "r.w"},
                          {{I(1), I(100)}, {I(1), I(101)}, {N(), I(102)},
                           {I(4), I(103)}});

  Result<Table> Run(JoinType type, ExprPtr residual = nullptr) {
    auto l = std::make_unique<TableSourceNode>(left);
    auto r = std::make_unique<TableSourceNode>(right);
    HashJoinNode join(std::move(l), std::move(r), type, {{"l.k", "r.k"}},
                      std::move(residual));
    return CollectTable(&join);
  }
};

TEST(HashJoinTest, InnerSkipsNullKeys) {
  JoinFixture f;
  ASSERT_OK_AND_ASSIGN(Table out, f.Run(JoinType::kInner));
  // (1,1),(1,1),(4,4): 3 matches; NULL keys never match.
  EXPECT_EQ(out.num_rows(), 3);
}

TEST(HashJoinTest, LeftOuterPadsNonMatching) {
  JoinFixture f;
  ASSERT_OK_AND_ASSIGN(Table out, f.Run(JoinType::kLeftOuter));
  // 3 matches + padded rows for l.k=2 and l.k=NULL.
  EXPECT_EQ(out.num_rows(), 5);
  int padded = 0;
  for (const Row& r : out.rows()) {
    if (r[2].is_null() && r[3].is_null()) ++padded;
  }
  EXPECT_EQ(padded, 2);
}

TEST(HashJoinTest, LeftSemiEmitsEachLeftOnce) {
  JoinFixture f;
  ASSERT_OK_AND_ASSIGN(Table out, f.Run(JoinType::kLeftSemi));
  ExpectTablesEqual(MakeTable({"l.k", "l.v"}, {{I(1), I(10)}, {I(4), I(40)}}),
                    out);
}

TEST(HashJoinTest, LeftAntiKeepsNullKeyRows) {
  JoinFixture f;
  ASSERT_OK_AND_ASSIGN(Table out, f.Run(JoinType::kLeftAnti));
  // The classical antijoin: UNKNOWN counts as "no match", so the NULL-key
  // left row survives — the precise behaviour that makes antijoin != NOT IN.
  ExpectTablesEqual(MakeTable({"l.k", "l.v"}, {{I(2), I(20)}, {N(), I(30)}}),
                    out);
}

TEST(HashJoinTest, NullAwareAntiDropsEverythingWhenBuildHasNullKey) {
  JoinFixture f;
  // Build side contains a NULL key => NOT IN semantics: every probe row is
  // UNKNOWN or matched, nothing survives.
  ASSERT_OK_AND_ASSIGN(Table out, f.Run(JoinType::kLeftAntiNullAware));
  EXPECT_EQ(out.num_rows(), 0);
}

TEST(HashJoinTest, NullAwareAntiWithoutBuildNulls) {
  JoinFixture f;
  f.right = MakeTable({"r.k", "r.w"}, {{I(1), I(100)}});
  ASSERT_OK_AND_ASSIGN(Table out, f.Run(JoinType::kLeftAntiNullAware));
  // l.k=2 and l.k=4 not in {1}: kept. l.k=NULL: UNKNOWN: dropped.
  ExpectTablesEqual(MakeTable({"l.k", "l.v"}, {{I(2), I(20)}, {I(4), I(40)}}),
                    out);
}

TEST(HashJoinTest, NullAwareAntiEmptyBuildKeepsAll) {
  JoinFixture f;
  f.right = MakeTable({"r.k", "r.w"}, {});
  ASSERT_OK_AND_ASSIGN(Table out, f.Run(JoinType::kLeftAntiNullAware));
  EXPECT_EQ(out.num_rows(), 4);  // NOT IN over the empty set is TRUE
}

TEST(HashJoinTest, ResidualPredicate) {
  JoinFixture f;
  ASSERT_OK_AND_ASSIGN(
      Table out,
      f.Run(JoinType::kInner, Cmp(CmpOp::kGt, Col("r.w"), LitInt(100))));
  // Only (1,101) and (4,103) pass the residual.
  EXPECT_EQ(out.num_rows(), 2);
}

TEST(HashJoinTest, NoEquiPairsIsCrossWithCondition) {
  auto l = std::make_unique<TableSourceNode>(
      MakeTable({"l.a"}, {{I(1)}, {I(5)}}));
  auto r = std::make_unique<TableSourceNode>(
      MakeTable({"r.b"}, {{I(3)}, {I(4)}}));
  HashJoinNode join(std::move(l), std::move(r), JoinType::kInner, {},
                    Cmp(CmpOp::kLt, Col("l.a"), Col("r.b")));
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&join));
  EXPECT_EQ(out.num_rows(), 2);  // (1,3) and (1,4)
}

TEST(NestedLoopJoinTest, MatchesHashJoinOnEquality) {
  JoinFixture f;
  auto l = std::make_unique<TableSourceNode>(f.left);
  auto r = std::make_unique<TableSourceNode>(f.right);
  NestedLoopJoinNode nlj(std::move(l), std::move(r), JoinType::kLeftOuter,
                         Eq(Col("l.k"), Col("r.k")));
  ASSERT_OK_AND_ASSIGN(Table nlj_out, CollectTable(&nlj));
  ASSERT_OK_AND_ASSIGN(Table hash_out, f.Run(JoinType::kLeftOuter));
  EXPECT_TRUE(Table::BagEquals(nlj_out, hash_out));
}

TEST(NestedLoopJoinTest, CrossProductWithNullCondition) {
  auto l = std::make_unique<TableSourceNode>(MakeTable({"a"}, {{I(1)}, {I(2)}}));
  auto r = std::make_unique<TableSourceNode>(MakeTable({"b"}, {{I(3)}}));
  NestedLoopJoinNode nlj(std::move(l), std::move(r), JoinType::kInner,
                         nullptr);
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&nlj));
  EXPECT_EQ(out.num_rows(), 2);
}

TEST(NestedLoopJoinTest, LeftOuterCrossPadsOnEmptyRight) {
  auto l = std::make_unique<TableSourceNode>(MakeTable({"a"}, {{I(1)}}));
  auto r = std::make_unique<TableSourceNode>(MakeTable({"b"}, {}));
  NestedLoopJoinNode nlj(std::move(l), std::move(r), JoinType::kLeftOuter,
                         nullptr);
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&nlj));
  ASSERT_EQ(out.num_rows(), 1);
  EXPECT_TRUE(out.rows()[0][1].is_null());
}

TEST(IndexJoinTest, SemiProbesIndex) {
  const Table right = MakeTable({"k", "w"}, {{I(1), I(7)}, {I(2), I(8)}});
  const HashIndex index(right, 0);
  auto l = std::make_unique<TableSourceNode>(
      MakeTable({"l.k"}, {{I(1)}, {I(3)}, {N()}}));
  IndexJoinNode join(std::move(l), &right, "r", &index, "l.k",
                     JoinType::kLeftSemi, nullptr);
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&join));
  ExpectTablesEqual(MakeTable({"l.k"}, {{I(1)}}), out);
  EXPECT_EQ(join.probe_count(), 3);
}

TEST(IndexJoinTest, LeftOuterWithResidual) {
  const Table right = MakeTable({"k", "w"}, {{I(1), I(7)}, {I(1), I(9)}});
  const HashIndex index(right, 0);
  auto l = std::make_unique<TableSourceNode>(MakeTable({"l.k"}, {{I(1)}}));
  IndexJoinNode join(std::move(l), &right, "r", &index, "l.k",
                     JoinType::kLeftOuter,
                     Cmp(CmpOp::kGt, Col("r.w"), LitInt(8)));
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&join));
  ASSERT_EQ(out.num_rows(), 1);
  EXPECT_EQ(out.rows()[0][2], I(9));
}

TEST(IndexJoinTest, AntiJoin) {
  const Table right = MakeTable({"k"}, {{I(1)}});
  const HashIndex index(right, 0);
  auto l = std::make_unique<TableSourceNode>(
      MakeTable({"l.k"}, {{I(1)}, {I(2)}}));
  IndexJoinNode join(std::move(l), &right, "r", &index, "l.k",
                     JoinType::kLeftAnti, nullptr);
  ASSERT_OK_AND_ASSIGN(Table out, CollectTable(&join));
  ExpectTablesEqual(MakeTable({"l.k"}, {{I(2)}}), out);
}

}  // namespace
}  // namespace nestra
