#include <gtest/gtest.h>

#include <cstdlib>

#include "common/date.h"
#include "common/row.h"
#include "common/schema.h"
#include "common/table.h"
#include "common/tribool.h"
#include "common/value.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;

// ---------- TriBool ----------

TEST(TriBoolTest, KleeneAnd) {
  EXPECT_EQ(And(TriBool::kTrue, TriBool::kTrue), TriBool::kTrue);
  EXPECT_EQ(And(TriBool::kTrue, TriBool::kFalse), TriBool::kFalse);
  EXPECT_EQ(And(TriBool::kTrue, TriBool::kUnknown), TriBool::kUnknown);
  EXPECT_EQ(And(TriBool::kFalse, TriBool::kUnknown), TriBool::kFalse);
  EXPECT_EQ(And(TriBool::kUnknown, TriBool::kUnknown), TriBool::kUnknown);
}

TEST(TriBoolTest, KleeneOr) {
  EXPECT_EQ(Or(TriBool::kFalse, TriBool::kFalse), TriBool::kFalse);
  EXPECT_EQ(Or(TriBool::kTrue, TriBool::kUnknown), TriBool::kTrue);
  EXPECT_EQ(Or(TriBool::kFalse, TriBool::kUnknown), TriBool::kUnknown);
  EXPECT_EQ(Or(TriBool::kUnknown, TriBool::kUnknown), TriBool::kUnknown);
}

TEST(TriBoolTest, KleeneNot) {
  EXPECT_EQ(Not(TriBool::kTrue), TriBool::kFalse);
  EXPECT_EQ(Not(TriBool::kFalse), TriBool::kTrue);
  EXPECT_EQ(Not(TriBool::kUnknown), TriBool::kUnknown);
}

TEST(TriBoolTest, FilterSemantics) {
  EXPECT_TRUE(IsTrue(TriBool::kTrue));
  EXPECT_FALSE(IsTrue(TriBool::kUnknown));
  EXPECT_FALSE(IsTrue(TriBool::kFalse));
}

// ---------- Value ----------

TEST(ValueTest, NullComparisonsAreUnknown) {
  EXPECT_EQ(Value::Apply(CmpOp::kEq, N(), I(1)), TriBool::kUnknown);
  EXPECT_EQ(Value::Apply(CmpOp::kNe, I(1), N()), TriBool::kUnknown);
  EXPECT_EQ(Value::Apply(CmpOp::kLt, N(), N()), TriBool::kUnknown);
}

TEST(ValueTest, IntComparisons) {
  EXPECT_EQ(Value::Apply(CmpOp::kLt, I(1), I(2)), TriBool::kTrue);
  EXPECT_EQ(Value::Apply(CmpOp::kGe, I(2), I(2)), TriBool::kTrue);
  EXPECT_EQ(Value::Apply(CmpOp::kNe, I(2), I(2)), TriBool::kFalse);
  EXPECT_EQ(Value::Apply(CmpOp::kGt, I(5), I(7)), TriBool::kFalse);
}

TEST(ValueTest, CrossTypeNumericComparison) {
  EXPECT_EQ(Value::Apply(CmpOp::kEq, I(2), Value::Float64(2.0)),
            TriBool::kTrue);
  EXPECT_EQ(Value::Apply(CmpOp::kLt, I(2), Value::Float64(2.5)),
            TriBool::kTrue);
}

TEST(ValueTest, StringVsNumericIsUnknown) {
  EXPECT_EQ(Value::Apply(CmpOp::kEq, Value::String("x"), I(1)),
            TriBool::kUnknown);
}

TEST(ValueTest, StringComparison) {
  EXPECT_EQ(Value::Apply(CmpOp::kLt, Value::String("abc"),
                         Value::String("abd")),
            TriBool::kTrue);
  EXPECT_EQ(Value::Apply(CmpOp::kEq, Value::String("a"), Value::String("a")),
            TriBool::kTrue);
}

TEST(ValueTest, TotalOrderNullsFirst) {
  EXPECT_LT(Value::TotalOrderCompare(N(), I(-100)), 0);
  EXPECT_EQ(Value::TotalOrderCompare(N(), N()), 0);
  EXPECT_GT(Value::TotalOrderCompare(Value::String("a"), I(5)), 0);
}

TEST(ValueTest, DeepEqualityTreatsNullEqual) {
  EXPECT_EQ(N(), N());
  EXPECT_NE(N(), I(0));
  EXPECT_NE(I(1), Value::Float64(1.0));  // deep equality is typed
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(I(42).Hash(), I(42).Hash());
  EXPECT_EQ(N().Hash(), N().Hash());
  EXPECT_EQ(Value::String("xy").Hash(), Value::String("xy").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(I(7).ToString(), "7");
  EXPECT_EQ(N().ToString(), "null");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
}

TEST(ValueTest, FloatToStringRoundTrips) {
  // Shortest-round-trip formatting (not fixed precision): parsing the text
  // back must reproduce the exact double, including values the old
  // 6-significant-digit rendering corrupted.
  for (const double d : {0.1, 1e-17, 1.0 / 3.0, 1e300, -1e300, 2.5e-308,
                         123456.789, 12345678.901234567, -0.0,
                         3.141592653589793}) {
    const std::string s = Value::Float64(d).ToString();
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), d) << "rendered as " << s;
  }
  // Integral doubles still render compactly.
  EXPECT_EQ(Value::Float64(2.0).ToString(), "2");
  EXPECT_EQ(Value::Float64(-0.5).ToString(), "-0.5");
}

TEST(CmpOpTest, FlipAndNegate) {
  EXPECT_EQ(FlipCmpOp(CmpOp::kLt), CmpOp::kGt);
  EXPECT_EQ(FlipCmpOp(CmpOp::kGe), CmpOp::kLe);
  EXPECT_EQ(FlipCmpOp(CmpOp::kEq), CmpOp::kEq);
  EXPECT_EQ(NegateCmpOp(CmpOp::kLt), CmpOp::kGe);
  EXPECT_EQ(NegateCmpOp(CmpOp::kEq), CmpOp::kNe);
  EXPECT_EQ(NegateCmpOp(CmpOp::kGe), CmpOp::kLt);
}

// ---------- Date ----------

TEST(DateTest, RoundTrip) {
  ASSERT_OK_AND_ASSIGN(int64_t days, ParseDate("1995-03-17"));
  EXPECT_EQ(FormatDate(days), "1995-03-17");
}

TEST(DateTest, EpochIsZero) {
  ASSERT_OK_AND_ASSIGN(int64_t days, ParseDate("1970-01-01"));
  EXPECT_EQ(days, 0);
}

TEST(DateTest, KnownOffsets) {
  ASSERT_OK_AND_ASSIGN(int64_t d1, ParseDate("1970-01-02"));
  EXPECT_EQ(d1, 1);
  ASSERT_OK_AND_ASSIGN(int64_t d2, ParseDate("1969-12-31"));
  EXPECT_EQ(d2, -1);
  ASSERT_OK_AND_ASSIGN(int64_t d3, ParseDate("2000-03-01"));
  ASSERT_OK_AND_ASSIGN(int64_t d4, ParseDate("2000-02-29"));  // leap year
  EXPECT_EQ(d3 - d4, 1);
}

TEST(DateTest, OrderingMatchesCalendar) {
  ASSERT_OK_AND_ASSIGN(int64_t a, ParseDate("1992-01-01"));
  ASSERT_OK_AND_ASSIGN(int64_t b, ParseDate("1998-08-02"));
  EXPECT_LT(a, b);
}

TEST(DateTest, RejectsBadInput) {
  EXPECT_FALSE(ParseDate("hello").ok());
  EXPECT_FALSE(ParseDate("1995-13-01").ok());
  EXPECT_FALSE(ParseDate("1995-02-30").ok());
  EXPECT_FALSE(ParseDate("2001-02-29").ok());  // not a leap year
}

// ---------- Schema ----------

TEST(SchemaTest, ResolveExact) {
  Schema s({{"r.a", TypeId::kInt64}, {"r.b", TypeId::kInt64}});
  ASSERT_OK_AND_ASSIGN(int idx, s.Resolve("r.b"));
  EXPECT_EQ(idx, 1);
}

TEST(SchemaTest, ResolveUnqualifiedSuffix) {
  Schema s({{"r.a", TypeId::kInt64}, {"s.b", TypeId::kInt64}});
  ASSERT_OK_AND_ASSIGN(int idx, s.Resolve("b"));
  EXPECT_EQ(idx, 1);
}

TEST(SchemaTest, AmbiguousUnqualified) {
  Schema s({{"r.a", TypeId::kInt64}, {"s.a", TypeId::kInt64}});
  const Result<int> r = s.Resolve("a");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST(SchemaTest, NotFound) {
  Schema s({{"r.a", TypeId::kInt64}});
  EXPECT_EQ(s.Resolve("zz").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(s.Resolve("x.a").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, QualifyReplacesExistingQualifier) {
  Schema s({{"x.a", TypeId::kInt64}, {"b", TypeId::kString}});
  const Schema q = s.Qualify("r");
  EXPECT_EQ(q.field(0).name, "r.a");
  EXPECT_EQ(q.field(1).name, "r.b");
}

TEST(SchemaTest, ConcatAndSelect) {
  Schema a({{"x", TypeId::kInt64}});
  Schema b({{"y", TypeId::kFloat64}, {"z", TypeId::kString}});
  const Schema c = Schema::Concat(a, b);
  EXPECT_EQ(c.num_fields(), 3);
  const Schema sel = c.Select({2, 0});
  EXPECT_EQ(sel.field(0).name, "z");
  EXPECT_EQ(sel.field(1).name, "x");
}

// ---------- Row / Table ----------

TEST(RowTest, ConcatSelectNulls) {
  const Row a({I(1), I(2)});
  const Row b({I(3)});
  const Row c = Row::Concat(a, b);
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c[2], I(3));
  const Row n = Row::Nulls(2);
  EXPECT_TRUE(n[0].is_null());
  EXPECT_EQ(c.Select({2, 0}), Row({I(3), I(1)}));
}

TEST(RowTest, CompareOnKeys) {
  const Row a({I(1), I(9), I(3)});
  const Row b({I(1), I(0), I(4)});
  EXPECT_EQ(Row::CompareOn(a, b, {0}), 0);
  EXPECT_GT(Row::CompareOn(a, b, {1}), 0);
  EXPECT_LT(Row::CompareOn(a, b, {0, 2}), 0);
}

TEST(TableTest, AppendChecksArity) {
  Table t{Schema({{"a", TypeId::kInt64}})};
  EXPECT_OK(t.Append(Row({I(1)})));
  EXPECT_FALSE(t.Append(Row({I(1), I(2)})).ok());
}

TEST(TableTest, BagEqualsIgnoresOrder) {
  const Table a = MakeTable({"x"}, {{I(1)}, {I(2)}, {I(2)}});
  const Table b = MakeTable({"x"}, {{I(2)}, {I(1)}, {I(2)}});
  const Table c = MakeTable({"x"}, {{I(2)}, {I(1)}, {I(1)}});
  EXPECT_TRUE(Table::BagEquals(a, b));
  EXPECT_FALSE(Table::BagEquals(a, c));
}

TEST(TableTest, ProjectByName) {
  const Table t = MakeTable({"r.a", "r.b"}, {{I(1), I(2)}});
  ASSERT_OK_AND_ASSIGN(Table p, t.Project({"b"}));
  EXPECT_EQ(p.schema().field(0).name, "r.b");
  EXPECT_EQ(p.rows()[0][0], I(2));
}

TEST(TableTest, PrettyPrintTruncates) {
  Table t = MakeTable({"x"}, {});
  for (int i = 0; i < 100; ++i) t.AppendUnchecked(Row({I(i)}));
  const std::string s = t.ToString(5);
  EXPECT_NE(s.find("(95 more rows)"), std::string::npos);
}

}  // namespace
}  // namespace nestra
