// Table/column statistics and the cost-driven physical decisions built on
// them (DESIGN.md §13): load-time stats collection, the bottom-up
// estimator, zone-map granule pruning, the perfect (dense-array) hash join
// and build-side swap, and the est-vs-actual stage estimates surfaced
// through QueryProfile. The heart of the suite is identity: every
// cost-based choice is a physical optimization, so results must stay
// ROW-EXACTLY equal to the cost_based=false plan across num_threads
// {1, 2, 8} × {row, vectorized} — and the stats-soundness property test
// checks actual per-stage rows never exceed the propagated upper bounds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nra/executor.h"
#include "nra/explain.h"
#include "nra/profile.h"
#include "plan/binder.h"
#include "plan/stats/estimator.h"
#include "storage/catalog.h"
#include "storage/table_stats.h"
#include "telemetry/engine_metrics.h"
#include "telemetry/metrics.h"
#include "query_generator.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;
using testing_util::QueryGenerator;

// Row-exact equality (same contract as parallel_exec_test): deep
// Value::operator== per cell, so order drift or representation drift fails.
void ExpectRowExact(const Table& want, const Table& got,
                    const std::string& context) {
  ASSERT_EQ(want.num_rows(), got.num_rows()) << context;
  for (int64_t i = 0; i < want.num_rows(); ++i) {
    ASSERT_TRUE(want.rows()[static_cast<size_t>(i)] ==
                got.rows()[static_cast<size_t>(i)])
        << context << "\nfirst divergence at row " << i;
  }
}

// ---------- load-time collection ----------

TEST(TableStatsTest, CollectsColumnRangesNullsAndDistinct) {
  Table t = MakeTable({"k", "v", "s"}, {});
  for (int64_t i = 1; i <= 2500; ++i) {
    Row r;
    r.Append(Value::Int64(i));
    r.Append(i % 10 == 0 ? Value::Null() : Value::Int64(i % 100));
    r.Append(Value::String("tag" + std::to_string(i % 7)));
    t.AppendUnchecked(std::move(r));
  }
  const TableStats stats = CollectTableStats(t);
  ASSERT_EQ(stats.row_count, 2500);
  ASSERT_EQ(stats.columns.size(), 3u);

  const ColumnStats& k = stats.columns[0];
  EXPECT_EQ(k.null_count, 0);
  EXPECT_TRUE(k.has_range);
  EXPECT_TRUE(k.integer_only);
  EXPECT_EQ(k.min_i64, 1);
  EXPECT_EQ(k.max_i64, 2500);
  EXPECT_TRUE(k.distinct_exact);
  EXPECT_EQ(k.distinct, 2500);

  const ColumnStats& v = stats.columns[1];
  EXPECT_EQ(v.null_count, 250);
  EXPECT_EQ(v.non_null_count, 2250);
  EXPECT_TRUE(v.integer_only);
  EXPECT_EQ(v.min_i64, 1);   // i % 100, multiples of 10 are NULL, 0 never
  EXPECT_EQ(v.max_i64, 99);  // appears as a non-NULL value here
  EXPECT_EQ(v.distinct, 90);

  const ColumnStats& s = stats.columns[2];
  EXPECT_FALSE(s.has_range);  // strings carry no numeric range
  EXPECT_EQ(s.distinct, 7);
}

TEST(TableStatsTest, ZoneMapTracksPerGranuleRanges) {
  // Sorted values, so each granule's [min, max] is a tight window.
  Table t = MakeTable({"k", "v"}, {});
  const int64_t rows = 3 * kZoneGranuleRows + 100;
  for (int64_t i = 0; i < rows; ++i) {
    Row r;
    r.Append(Value::Int64(i + 1));
    r.Append(Value::Int64(i));
    t.AppendUnchecked(std::move(r));
  }
  const TableStats stats = CollectTableStats(t);
  ASSERT_EQ(stats.zones.num_granules, 4);
  ASSERT_EQ(stats.zones.num_columns, 2);
  for (int64_t g = 0; g < 4; ++g) {
    const ZoneEntry& z = stats.zones.At(g, 1);
    ASSERT_TRUE(z.has_range);
    EXPECT_EQ(z.min, static_cast<double>(g * kZoneGranuleRows));
    const int64_t last = std::min(rows, (g + 1) * kZoneGranuleRows) - 1;
    EXPECT_EQ(z.max, static_cast<double>(last));
  }
}

TEST(TableStatsTest, AllNullGranuleIsMarked) {
  Table t = MakeTable({"k", "v"}, {});
  for (int64_t i = 0; i < 2 * kZoneGranuleRows; ++i) {
    Row r;
    r.Append(Value::Int64(i + 1));
    // Second granule entirely NULL.
    r.Append(i < kZoneGranuleRows ? Value::Int64(i) : Value::Null());
    t.AppendUnchecked(std::move(r));
  }
  const TableStats stats = CollectTableStats(t);
  ASSERT_EQ(stats.zones.num_granules, 2);
  EXPECT_TRUE(stats.zones.At(0, 1).has_range);
  EXPECT_FALSE(stats.zones.At(0, 1).all_null);
  EXPECT_TRUE(stats.zones.At(1, 1).all_null);
}

TEST(TableStatsTest, CatalogServesStatsAndRefreshesOnReRegister) {
  Catalog catalog;
  Table t = MakeTable({"k", "v"}, {{I(1), I(10)}, {I(2), I(20)}});
  ASSERT_OK(catalog.RegisterTable("t", std::move(t), "k"));
  {
    ASSERT_OK_AND_ASSIGN(const TableStats* stats, catalog.GetStats("t"));
    EXPECT_EQ(stats->row_count, 2);
    EXPECT_EQ(stats->columns[1].max_i64, 20);
  }
  Table t2 = MakeTable({"k", "v"}, {{I(1), I(10)}, {I(2), I(999)}});
  ASSERT_OK(catalog.DropTable("t"));
  ASSERT_OK(catalog.RegisterTable("t", std::move(t2), "k"));
  {
    ASSERT_OK_AND_ASSIGN(const TableStats* stats, catalog.GetStats("t"));
    EXPECT_EQ(stats->columns[1].max_i64, 999);
  }
  EXPECT_FALSE(catalog.GetStats("missing").ok());
}

// ---------- cost decisions (estimator + shared predicates) ----------

// `probe` (3000 rows, pk dense) links into `dim` (2048 rows, dk dense
// 1..2048): the child base clears kCostMinBuildRows and its key column is
// dense, so JoinWithChild gets perfect (dense-array) keying.
void RegisterJoinTables(Catalog* catalog) {
  Table probe = MakeTable({"pk", "p1"}, {});
  for (int64_t i = 1; i <= 3000; ++i) {
    Row r;
    r.Append(Value::Int64(i));
    r.Append(Value::Int64(i));
    probe.AppendUnchecked(std::move(r));
  }
  ASSERT_OK(catalog->RegisterTable("probe", std::move(probe), "pk"));

  Table dim = MakeTable({"dk", "d1", "d2"}, {});
  for (int64_t i = 1; i <= 2048; ++i) {
    Row r;
    r.Append(Value::Int64(i));
    r.Append(Value::Int64(i));
    r.Append(Value::Int64(1 + (i % 400)));  // 400 distinct, fanout ~5
    dim.AppendUnchecked(std::move(r));
  }
  ASSERT_OK(catalog->RegisterTable("dim", std::move(dim), "dk"));

  Table small = MakeTable({"sk", "s1"}, {});
  for (int64_t i = 1; i <= 400; ++i) {
    Row r;
    r.Append(Value::Int64(i));
    r.Append(Value::Int64(i));
    small.AppendUnchecked(std::move(r));
  }
  ASSERT_OK(catalog->RegisterTable("small", std::move(small), "sk"));
}

constexpr const char* kPerfectJoinSql =
    "select p.pk from probe p where p.p1 in "
    "(select d.d1 from dim d where d.dk = p.pk)";

// Child base (2048 rows) > 2 × outer (400 rows): the build side swaps.
constexpr const char* kBuildSwapSql =
    "select s.sk from small s where s.s1 in "
    "(select d.d1 from dim d where d.d2 = s.sk)";

TEST(CostDecisionTest, ChoosesPerfectKeyingForDenseChildKey) {
  Catalog catalog;
  RegisterJoinTables(&catalog);
  ASSERT_OK_AND_ASSIGN(QueryBlockPtr root,
                       ParseAndBind(kPerfectJoinSql, catalog));
  const std::vector<const QueryBlock*> path{root.get()};
  const JoinBuildHints hints =
      ChoosesJoinStrategy(*root->children[0], path, catalog);
  EXPECT_TRUE(hints.perfect);
  EXPECT_FALSE(hints.build_left);
  EXPECT_EQ(hints.perfect_min, 1);
  EXPECT_EQ(hints.perfect_max, 2048);
  EXPECT_EQ(hints.est_right_rows, 2048);
}

TEST(CostDecisionTest, SwapsBuildSideWhenChildDwarfsOuter) {
  Catalog catalog;
  RegisterJoinTables(&catalog);
  ASSERT_OK_AND_ASSIGN(QueryBlockPtr root,
                       ParseAndBind(kBuildSwapSql, catalog));
  const std::vector<const QueryBlock*> path{root.get()};
  const JoinBuildHints hints =
      ChoosesJoinStrategy(*root->children[0], path, catalog);
  EXPECT_TRUE(hints.build_left);
  // After the swap the build side is the 400-row outer — too small for
  // dense-array keying (kCostMinBuildRows).
  EXPECT_FALSE(hints.perfect);
}

TEST(CostDecisionTest, SparseOrMissingStatsStayGeneric) {
  Catalog catalog;
  RegisterJoinTables(&catalog);
  // Re-register dim with a sparse key: span 2048000 > 8 × 2048 rows.
  Table sparse = MakeTable({"dk", "d1", "d2"}, {});
  for (int64_t i = 1; i <= 2048; ++i) {
    Row r;
    r.Append(Value::Int64(i * 1000));
    r.Append(Value::Int64(i));
    r.Append(Value::Int64(1 + (i % 400)));
    sparse.AppendUnchecked(std::move(r));
  }
  ASSERT_OK(catalog.DropTable("dim"));
  ASSERT_OK(catalog.RegisterTable("dim", std::move(sparse), "dk"));
  ASSERT_OK_AND_ASSIGN(QueryBlockPtr root,
                       ParseAndBind(kPerfectJoinSql, catalog));
  const std::vector<const QueryBlock*> path{root.get()};
  EXPECT_TRUE(
      ChoosesJoinStrategy(*root->children[0], path, catalog).IsDefault());
}

TEST(CostDecisionTest, ExplainShowsPerfectStrategyOnlyWhenChosen) {
  Catalog catalog;
  RegisterJoinTables(&catalog);
  NraOptions opts = NraOptions::Optimized();
  ASSERT_OK_AND_ASSIGN(std::string dense,
                       ExplainSql(kPerfectJoinSql, catalog, opts));
  EXPECT_NE(dense.find("perfect dense-array hash"), std::string::npos)
      << dense;
  opts.cost_based = false;
  ASSERT_OK_AND_ASSIGN(std::string off,
                       ExplainSql(kPerfectJoinSql, catalog, opts));
  EXPECT_EQ(off.find("perfect dense-array hash"), std::string::npos) << off;
  opts.cost_based = true;
  ASSERT_OK_AND_ASSIGN(std::string swap,
                       ExplainSql(kBuildSwapSql, catalog, opts));
  EXPECT_NE(swap.find("build=left"), std::string::npos) << swap;
}

// ---------- identity: cost-based plans change nothing but speed ----------

struct EngineCombo {
  int threads;
  bool vectorized;
};

constexpr EngineCombo kCombos[] = {
    {1, false}, {1, true}, {2, false}, {2, true}, {8, false}, {8, true}};

// Runs `sql` with cost_based off (serial row engine) as the reference, then
// asserts every (threads, engine, cost_based) combination reproduces it
// row-exactly.
void ExpectCostIdentity(const Catalog& catalog, const std::string& sql) {
  NraOptions ref_opts = NraOptions::Optimized();
  ref_opts.cost_based = false;
  ref_opts.num_threads = 1;
  NraExecutor ref_exec(catalog, ref_opts);
  ASSERT_OK_AND_ASSIGN(Table reference, ref_exec.ExecuteSql(sql));

  for (const EngineCombo& combo : kCombos) {
    for (const bool cost_based : {false, true}) {
      NraOptions opts = NraOptions::Optimized();
      opts.cost_based = cost_based;
      opts.num_threads = combo.threads;
      opts.vectorized = combo.vectorized;
      NraExecutor exec(catalog, opts);
      ASSERT_OK_AND_ASSIGN(Table got, exec.ExecuteSql(sql));
      ExpectRowExact(reference, got,
                     sql + "\nthreads=" + std::to_string(combo.threads) +
                         " vectorized=" + std::to_string(combo.vectorized) +
                         " cost_based=" + std::to_string(cost_based));
    }
  }
}

TEST(CostIdentityTest, PerfectJoinMatchesGenericEverywhere) {
  Catalog catalog;
  RegisterJoinTables(&catalog);
  ExpectCostIdentity(catalog, kPerfectJoinSql);
}

TEST(CostIdentityTest, BuildSwapMatchesDefaultEverywhere) {
  Catalog catalog;
  RegisterJoinTables(&catalog);
  ExpectCostIdentity(catalog, kBuildSwapSql);
}

TEST(CostIdentityTest, NullKeysFallBackAndStayIdentical) {
  Catalog catalog;
  RegisterJoinTables(&catalog);
  // NULLs in both the outer linking column and the child key column: the
  // perfect build skips NULL keys and the NOT IN epilogue must still see
  // build_has_null_key_.
  Table nt = MakeTable({"nk", "n1"}, {});
  for (int64_t i = 1; i <= 1500; ++i) {
    Row r;
    r.Append(Value::Int64(i));
    r.Append(i % 5 == 0 ? Value::Null() : Value::Int64(i));
    nt.AppendUnchecked(std::move(r));
  }
  ASSERT_OK(catalog.RegisterTable("nt", std::move(nt), "nk"));
  ExpectCostIdentity(catalog,
                     "select p.pk from probe p where p.p1 not in "
                     "(select n.n1 from nt n where n.nk = p.pk)");
}

// ---------- zone-map pruning ----------

class ZonePruneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 16 granules of sorted values: a high-cut predicate provably empties
    // most of them. kMinPruneGranules needs >= 8 granules before the
    // pruned scan path engages at all.
    Table t = MakeTable({"zk", "zv", "zs"}, {});
    const int64_t rows = 16 * kZoneGranuleRows;
    for (int64_t i = 0; i < rows; ++i) {
      Row r;
      r.Append(Value::Int64(i + 1));
      r.Append(Value::Int64(i));
      r.Append(i % 97 == 0 ? Value::Null() : Value::Int64(i % 97));
      t.AppendUnchecked(std::move(r));
    }
    ASSERT_OK(catalog_.RegisterTable("zt", std::move(t), "zk"));
  }

  Catalog catalog_;
};

TEST_F(ZonePruneTest, PrunedScanIsRowExactAcrossEnginesAndThreads) {
  ExpectCostIdentity(catalog_,
                     "select z.zk, z.zs from zt z where z.zv >= 15000");
  ExpectCostIdentity(catalog_,
                     "select z.zk from zt z where z.zv = 4242");
  // IS NOT NULL terms and string-free residuals mix with the range term.
  ExpectCostIdentity(
      catalog_,
      "select z.zk from zt z where z.zv < 800 and z.zs is not null");
}

TEST_F(ZonePruneTest, PruningSkipsGranulesDeterministically) {
  telemetry::SetMetricsEnabled(true);
  telemetry::MetricsRegistry::Global().ResetValues();
  const telemetry::EngineMetrics& m = telemetry::Metrics();

  std::vector<double> pruned_per_combo;
  for (const EngineCombo& combo : kCombos) {
    const double before = m.zone_granules_pruned_total->Value();
    const double scanned_before = m.zone_granules_scanned_total->Value();
    NraOptions opts = NraOptions::Optimized();
    opts.num_threads = combo.threads;
    opts.vectorized = combo.vectorized;
    NraExecutor exec(catalog_, opts);
    ASSERT_OK_AND_ASSIGN(
        Table got,
        exec.ExecuteSql("select z.zk from zt z where z.zv >= 15000"));
    EXPECT_EQ(got.num_rows(), 16 * kZoneGranuleRows - 15000);
    pruned_per_combo.push_back(m.zone_granules_pruned_total->Value() -
                               before);
    // Every granule is either scanned or pruned — no third bucket.
    EXPECT_EQ((m.zone_granules_scanned_total->Value() - scanned_before) +
                  pruned_per_combo.back(),
              16.0);
  }
  telemetry::SetMetricsEnabled(false);
  telemetry::MetricsRegistry::Global().ResetValues();

  // values 15000.. live in granules 14 and 15: 14 of 16 pruned, and the
  // count is identical for every engine × thread combination.
  for (const double pruned : pruned_per_combo) {
    EXPECT_EQ(pruned, 14.0);
  }
}

TEST_F(ZonePruneTest, SmallTablesNeverPrune) {
  telemetry::SetMetricsEnabled(true);
  telemetry::MetricsRegistry::Global().ResetValues();
  const telemetry::EngineMetrics& m = telemetry::Metrics();
  Catalog catalog;
  testing_util::RegisterPaperRelations(&catalog);
  NraExecutor exec(catalog, NraOptions::Optimized());
  ASSERT_OK_AND_ASSIGN(Table got,
                       exec.ExecuteSql("select r.a from r where r.a > 2"));
  EXPECT_EQ(got.num_rows(), 1);
  // Below kMinPruneGranules the pre-stats scan runs byte for byte: the
  // zone counters never move, so tier-1 plans and IoSim charges are
  // untouched at test scale.
  EXPECT_EQ(m.zone_granules_pruned_total->Value(), 0.0);
  EXPECT_EQ(m.zone_granules_scanned_total->Value(), 0.0);
  telemetry::SetMetricsEnabled(false);
  telemetry::MetricsRegistry::Global().ResetValues();
}

// ---------- est vs. actual in the profile ----------

TEST(StageEstimateTest, ProfileCarriesEstimatesAndRendersThem) {
  Catalog catalog;
  RegisterJoinTables(&catalog);
  NraOptions opts = NraOptions::Optimized();
  opts.profile = true;
  NraExecutor exec(catalog, opts);
  QueryProfile profile;
  ASSERT_OK_AND_ASSIGN(Table result,
                       exec.ExecuteSql(kPerfectJoinSql, nullptr, &profile));
  (void)result;
  ASSERT_FALSE(profile.estimates.empty());
  // The base scans have point estimates; every estimate is a sound bound.
  bool rendered_any = false;
  for (const ProfiledStage& stage : profile.stages()) {
    const auto it = profile.estimates.find(stage.label);
    if (it == profile.estimates.end()) continue;
    rendered_any = true;
    ASSERT_GE(it->second.bound, 0.0) << stage.label;
    EXPECT_LE(static_cast<double>(stage.rows_out), it->second.bound + 0.5)
        << stage.label;
  }
  EXPECT_TRUE(rendered_any);
  const std::string text = profile.ToString();
  EXPECT_NE(text.find(" est"), std::string::npos) << text;
  const std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"est_rows"), std::string::npos) << json;
}

TEST(StageEstimateTest, ExplainAnalyzePrintsEstVsActual) {
  Catalog catalog;
  RegisterJoinTables(&catalog);
  ASSERT_OK_AND_ASSIGN(
      std::string text,
      ExplainAnalyzeSql(kPerfectJoinSql, catalog, NraOptions::Optimized()));
  EXPECT_NE(text.find("rows_out="), std::string::npos);
  EXPECT_NE(text.find(" est"), std::string::npos) << text;
}

// ---------- stats soundness over the fuzz corpus ----------

// For every generated query and every routing family, each profiled
// stage's actual rows_out must respect the estimator's propagated upper
// bound. A violation means a "sound" bound wasn't.
class StatsSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatsSoundnessTest, ActualRowsNeverExceedPropagatedBounds) {
  QueryGenerator gen(GetParam());
  Catalog catalog;
  gen.PopulateTables(&catalog);

  std::vector<NraOptions> variants;
  variants.push_back(NraOptions::Optimized());
  {
    NraOptions o = NraOptions::Optimized();
    o.push_down_nest = true;
    o.rewrite_positive = true;
    variants.push_back(o);
  }
  {
    NraOptions o = NraOptions::Optimized();
    o.bottom_up_linear = true;
    variants.push_back(o);
  }
  for (NraOptions& o : variants) o.profile = true;

  for (int q = 0; q < 25; ++q) {
    const std::string sql = gen.RandomQuery();
    for (const NraOptions& opts : variants) {
      NraExecutor exec(catalog, opts);
      QueryProfile profile;
      const Result<Table> result = exec.ExecuteSql(sql, nullptr, &profile);
      if (!result.ok()) continue;  // generator shapes the binder rejects
      for (const ProfiledStage& stage : profile.stages()) {
        const auto it = profile.estimates.find(stage.label);
        if (it == profile.estimates.end() || it->second.bound < 0) continue;
        EXPECT_LE(static_cast<double>(stage.rows_out), it->second.bound + 0.5)
            << sql << "\nstage " << stage.label << " rows_out="
            << stage.rows_out << " bound=" << it->second.bound << " ("
            << opts.ToString() << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsSoundnessTest,
                         ::testing::Values(11, 23, 37, 58));

}  // namespace
}  // namespace nestra
