// Concurrency tests for the shared-state layers: the Catalog under
// concurrent DDL + lookups, the slow-query log under many writers, and the
// headline contract of the session subsystem — N concurrent sessions over
// one shared Catalog/ThreadPool produce results bit-identical to a serial
// run of the same statements.
//
// This suite is part of the TSan CI job: the catalog and slow-query tests
// exist precisely to fail under -fsanitize=thread if the shared_mutex /
// write-serialization fixes regress.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "json_checker.h"
#include "query_generator.h"
#include "server/connection_manager.h"
#include "server/harness.h"
#include "server/session.h"
#include "storage/catalog.h"
#include "telemetry/slow_query.h"
#include "test_util.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

namespace nestra {
namespace {

using testing_util::I;
using testing_util::JsonChecker;
using testing_util::MakeTable;
using testing_util::N;

// ---------- Catalog: concurrent DDL vs. lookups ----------

// Regression for the Catalog data race: RegisterTable used to mutate the
// table map (and run its NULL scan) with no synchronization against readers.
// Under TSan this test fails on the old code; on the fixed code it must be
// clean AND observe consistent values.
TEST(CatalogConcurrencyTest, ConcurrentRegisterAndLookup) {
  Catalog catalog;
  // Stable tables the readers hammer while writers churn other names.
  ASSERT_OK(catalog.RegisterTable(
      "stable", MakeTable({"k", "v"}, {{I(1), I(10)}, {I(2), N()}}), "k"));
  ASSERT_OK(catalog.RegisterTable(
      "probe", MakeTable({"k"}, {{I(1)}, {I(2)}, {I(3)}}), "k"));

  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kTablesPerWriter = 24;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&catalog, w] {
      for (int i = 0; i < kTablesPerWriter; ++i) {
        const std::string name =
            "t" + std::to_string(w) + "_" + std::to_string(i);
        // Rows include NULLs so registration's NULL scan runs concurrently
        // with readers (the scan must happen outside the exclusive lock,
        // on the argument, not on shared state).
        Table t = MakeTable({"a", "b"},
                            {{I(i), N()}, {I(i + 1), I(i)}, {I(i + 2), N()}});
        ASSERT_OK(catalog.RegisterTable(name, std::move(t)));
        ASSERT_OK(catalog.AddNotNull(name, "a"));
        if (i % 3 == 0) ASSERT_OK(catalog.DropTable(name));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&catalog, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        EXPECT_TRUE(catalog.HasTable("stable"));
        const Result<const Table*> t = catalog.GetTable("stable");
        ASSERT_TRUE(t.ok());
        EXPECT_EQ((*t)->num_rows(), 2);
        // PK is proven NOT NULL, data column is not (it has a NULL).
        EXPECT_TRUE(catalog.ProvenNotNull("stable", "k"));
        EXPECT_FALSE(catalog.ProvenNotNull("stable", "v"));
        EXPECT_GE(catalog.TableNames().size(), 2u);
        EXPECT_GE(catalog.TableVersion("stable"), 1u);
        EXPECT_EQ(catalog.TableVersion("no_such_table"), 0u);
        const Result<const HashIndex*> idx = catalog.GetHashIndex("probe", "k");
        ASSERT_TRUE(idx.ok());
      }
    });
  }
  // Writers finish first; then release the readers.
  for (int i = 0; i < kWriters; ++i) threads[i].join();
  stop.store(true, std::memory_order_release);
  for (int i = kWriters; i < kWriters + kReaders; ++i) threads[i].join();

  // 1/3 of each writer's tables were dropped again.
  int survivors = 0;
  for (const std::string& name : catalog.TableNames()) {
    if (name[0] == 't') ++survivors;
  }
  EXPECT_EQ(survivors, kWriters * kTablesPerWriter * 2 / 3);
}

TEST(CatalogConcurrencyTest, ConcurrentIndexBuildsReturnOneIndex) {
  Catalog catalog;
  Table t = MakeTable({"k", "v"}, {});
  for (int i = 0; i < 256; ++i) {
    t.AppendUnchecked(Row({I(i), I(i % 7)}));
  }
  ASSERT_OK(catalog.RegisterTable("big", std::move(t), "k"));

  constexpr int kThreads = 8;
  std::vector<const HashIndex*> hash_seen(kThreads, nullptr);
  std::vector<const SortedIndex*> sorted_seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      // All threads race to build the same lazily-cached indexes.
      const Result<const HashIndex*> h = catalog.GetHashIndex("big", "v");
      ASSERT_TRUE(h.ok());
      hash_seen[i] = *h;
      const Result<const SortedIndex*> s = catalog.GetSortedIndex("big", "v");
      ASSERT_TRUE(s.ok());
      sorted_seen[i] = *s;
    });
  }
  for (std::thread& th : threads) th.join();
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(hash_seen[i], hash_seen[0]) << "thread " << i;
    EXPECT_EQ(sorted_seen[i], sorted_seen[0]) << "thread " << i;
  }
}

// ---------- slow-query log: many writers, no torn lines ----------

TEST(SlowQueryConcurrencyTest, ManyWritersProduceOnlyWholeJsonLines) {
  const std::string path =
      ::testing::TempDir() + "nestra_slow_concurrent.jsonl";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("NESTRA_SLOW_QUERY_LOG", path.c_str(), 1), 0);

  constexpr int kThreads = 8;
  constexpr int kLines = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        telemetry::SlowQueryRecord rec;
        // Long, distinctive payloads: if whole-line writes were not
        // serialized, interleavings would corrupt the JSON below.
        rec.sql = "select \"pad\" from t" + std::to_string(t) +
                  " where x = " + std::to_string(i) + " and y in (" +
                  std::string(512, 'q') + ")";
        rec.session = "s" + std::to_string(t + 1);
        rec.total_ms = t * 1000 + i;
        rec.output_rows = i;
        rec.num_threads = kThreads;
        telemetry::LogSlowQuery(rec);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  unsetenv("NESTRA_SLOW_QUERY_LOG");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  int total = 0;
  std::map<std::string, int> per_session;
  std::string line;
  while (std::getline(in, line)) {
    ++total;
    ASSERT_TRUE(JsonChecker(line).Valid()) << "torn line: " << line;
    ASSERT_EQ(line.rfind("{\"event\":\"slow_query\"", 0), 0u) << line;
    const size_t at = line.find("\"session\":\"");
    ASSERT_NE(at, std::string::npos) << line;
    const size_t begin = at + 11;
    ++per_session[line.substr(begin, line.find('"', begin) - begin)];
  }
  EXPECT_EQ(total, kThreads * kLines);
  EXPECT_EQ(per_session.size(), static_cast<size_t>(kThreads));
  for (const auto& [session, count] : per_session) {
    EXPECT_EQ(count, kLines) << session;
  }
  std::remove(path.c_str());
}

// ---------- sessions: concurrent == serial, bit for bit ----------

std::vector<std::string> StressStatements() {
  std::vector<std::string> statements;
  testing_util::QueryGenerator gen(20260809);
  for (int i = 0; i < 6; ++i) statements.push_back(gen.RandomQuery());
  statements.push_back(MakeQuery1("1994-01-01", "1995-01-01"));
  statements.push_back(MakeQuery2(1, 25, 500, 10, OuterLink::kAny,
                                  InnerLink::kNotExists));
  statements.push_back(MakeQuery3(1, 25, 500, 10, OuterLink::kAll,
                                  InnerLink::kExists,
                                  Query3Variant::kVariantA));
  return statements;
}

void PopulateStressCatalog(Catalog* catalog) {
  testing_util::QueryGenerator gen(20260809);
  gen.PopulateTables(catalog);
  TpchConfig config;
  config.scale = 0.02;
  config.declare_not_null = true;
  ASSERT_OK(PopulateTpch(catalog, config));
}

TEST(ConcurrentSessionTest, EightSessionsMatchSerialBitForBit) {
  Catalog catalog;
  PopulateStressCatalog(&catalog);
  const std::vector<std::string> statements = StressStatements();

  for (const bool vectorized : {false, true}) {
    for (const int threads : {1, 2, 8}) {
      ServerOptions options;
      options.max_in_flight = 4;
      options.session_defaults.vectorized = vectorized;
      options.session_defaults.num_threads = threads;
      const std::string config = std::string("vectorized=") +
                                 (vectorized ? "true" : "false") +
                                 " threads=" + std::to_string(threads);

      // Serial baseline: one session, statements in order.
      ConnectionManager serial_manager(&catalog, options);
      std::vector<uint64_t> serial_hashes;
      {
        std::unique_ptr<Session> session = serial_manager.Connect();
        for (const std::string& sql : statements) {
          ASSERT_OK_AND_ASSIGN(Table t, session->Query(sql));
          serial_hashes.push_back(HashTable(t));
        }
      }

      // 8 concurrent sessions, same script each, sharing catalog + pool.
      ConnectionManager manager(&catalog, options);
      std::vector<ClientScript> clients(8);
      for (ClientScript& c : clients) {
        c.statements = statements;
        c.repeat = 2;
      }
      const HarnessResult result = RunConcurrentClients(manager, clients);
      ASSERT_EQ(result.errors, 0) << config;
      ASSERT_EQ(result.total_statements,
                static_cast<int64_t>(8 * 2 * statements.size()))
          << config;
      for (size_t c = 0; c < clients.size(); ++c) {
        for (size_t i = 0; i < result.per_client[c].size(); ++i) {
          const HarnessResult::Outcome& out = result.per_client[c][i];
          ASSERT_TRUE(out.ok) << config << " client " << c << ": " << out.error;
          EXPECT_EQ(out.hash, serial_hashes[i % statements.size()])
              << config << " client " << c << " statement " << i << ": "
              << statements[i % statements.size()];
        }
      }
      EXPECT_LE(manager.admission().peak_in_flight(), 4) << config;
      EXPECT_EQ(manager.admission().admitted_total(),
                static_cast<int64_t>(8 * 2 * statements.size()))
          << config;
    }
  }
}

TEST(ConcurrentSessionTest, ConcurrentPreparedExecutionsMatchSerial) {
  Catalog catalog;
  PopulateStressCatalog(&catalog);
  const std::string parameterized =
      "select uk from u where uk >= $1 and u1 in ("
      "  select v1 from v where vk >= 0 and v2 = u2)";

  ServerOptions options;
  options.max_in_flight = 4;
  ConnectionManager manager(&catalog, options);

  // Serial truth for each argument value, via the literal SQL.
  std::vector<uint64_t> want;
  {
    std::unique_ptr<Session> session = manager.Connect();
    for (int arg = 0; arg < 4; ++arg) {
      ASSERT_OK_AND_ASSIGN(
          Table t,
          session->Query("select uk from u where uk >= " +
                         std::to_string(arg) + " and u1 in ("
                         "  select v1 from v where vk >= 0 and v2 = u2)"));
      want.push_back(HashTable(t));
    }
  }

  std::vector<ClientScript> clients(8);
  for (ClientScript& c : clients) {
    c.setup = [&parameterized](Session& session) {
      return session.Prepare("q", parameterized);
    };
    for (int arg = 0; arg < 4; ++arg) {
      c.statements.push_back("EXECUTE q (" + std::to_string(arg) + ")");
    }
    c.repeat = 3;
  }
  const HarnessResult result = RunConcurrentClients(manager, clients);
  ASSERT_EQ(result.errors, 0);
  for (const std::vector<HarnessResult::Outcome>& outcomes :
       result.per_client) {
    ASSERT_EQ(outcomes.size(), 12u);
    for (size_t i = 0; i < outcomes.size(); ++i) {
      ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
      EXPECT_EQ(outcomes[i].hash, want[i % want.size()]) << "statement " << i;
    }
  }
}

TEST(ConcurrentSessionTest, DdlIsSerializedAgainstRunningQueries) {
  Catalog catalog;
  PopulateStressCatalog(&catalog);
  ConnectionManager manager(&catalog);

  std::atomic<bool> stop{false};
  // One thread churns DDL on tables no query references...
  std::thread ddl([&] {
    int i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::string name = "churn" + std::to_string(i++ % 4);
      if (manager.catalog().HasTable(name)) {
        ASSERT_OK(manager.DropTable(name));
      } else {
        ASSERT_OK(manager.RegisterTable(
            name, MakeTable({"a"}, {{I(i)}, {N()}})));
      }
    }
  });
  // ...while sessions keep querying the stable ones. The exclusive schema
  // lock must only delay them, never break them.
  std::vector<ClientScript> clients(4);
  for (ClientScript& c : clients) {
    c.statements = {
        "select uk from u where uk >= 0 and exists ("
        "  select vk from v where v1 = u1)",
        "select wk from w where w1 > 2",
    };
    c.repeat = 20;
  }
  const HarnessResult result = RunConcurrentClients(manager, clients);
  stop.store(true, std::memory_order_release);
  ddl.join();
  EXPECT_EQ(result.errors, 0);
  EXPECT_EQ(result.total_statements, 4 * 2 * 20);
}

}  // namespace
}  // namespace nestra
