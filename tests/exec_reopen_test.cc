// Reopen discipline for every operator kind: Open() starts a fresh run.
// A second Open()+drain must (a) produce exactly the rows of the first run
// and (b) report a fresh per-run OperatorStats block — only open_calls is
// cumulative. This pins the row→batch adapter fix: the adapter's saw-EOF
// latch and the per-run counters are reset by ExecNode::Open, so a reopened
// adapter-fallback operator (aggregate, distinct, the joins) drained via
// NextBatch does not replay as instantly-empty and does not double-count
// rows_out. The one deliberate exception — TableSourceNode after
// TakeAllRows moved its rows out — must fail LOUDLY on reopen instead of
// silently replaying an emptied table.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/aggregate.h"
#include "exec/distinct.h"
#include "exec/exec_node.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/index_join.h"
#include "exec/limit.h"
#include "exec/nested_loop_join.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "expr/expr.h"
#include "storage/hash_index.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::I;
using testing_util::MakeTable;
using testing_util::N;

Table LeftTable() {
  return MakeTable({"a", "b"},
                   {{I(1), I(10)},
                    {I(2), I(20)},
                    {I(2), I(21)},
                    {I(3), N()},
                    {N(), I(40)}});
}

Table RightTable() {
  return MakeTable({"x", "y"},
                   {{I(1), I(100)}, {I(2), I(200)}, {I(4), I(400)}});
}

struct RunSnapshot {
  std::vector<Row> rows;
  OperatorStats stats;
};

// One full Open → drain → Close cycle through the chosen protocol. The
// stats snapshot is taken BEFORE Close so timing fields don't blur it.
Status DrainOnce(ExecNode* node, bool use_batches, RunSnapshot* out) {
  out->rows.clear();
  NESTRA_RETURN_NOT_OK(node->Open());
  if (use_batches) {
    RowBatch batch;
    bool eof = false;
    while (true) {
      NESTRA_RETURN_NOT_OK(node->NextBatch(&batch, &eof));
      if (eof) break;
      for (int64_t i = 0; i < batch.num_rows(); ++i) {
        out->rows.push_back(batch.TakeRow(i));
      }
    }
  } else {
    Row row;
    bool eof = false;
    while (true) {
      NESTRA_RETURN_NOT_OK(node->Next(&row, &eof));
      if (eof) break;
      out->rows.push_back(std::move(row));
      row = Row();
    }
  }
  out->stats = node->stats();
  node->Close();
  return Status::OK();
}

void ExpectSameRows(const RunSnapshot& first, const RunSnapshot& second,
                    const std::string& context) {
  ASSERT_EQ(first.rows.size(), second.rows.size()) << context;
  for (size_t i = 0; i < first.rows.size(); ++i) {
    EXPECT_TRUE(first.rows[i] == second.rows[i])
        << context << ": divergence at row " << i;
  }
}

// Builds the node twice-drains it under both protocols, asserting the
// second run is indistinguishable from the first (rows AND per-run stats).
void CheckReopen(const std::string& kind,
                 const std::function<ExecNodePtr()>& build) {
  for (const bool use_batches : {false, true}) {
    const std::string context =
        kind + (use_batches ? " (batch protocol)" : " (row protocol)");
    ExecNodePtr node = build();
    RunSnapshot first;
    RunSnapshot second;
    SCOPED_TRACE(context);
    ASSERT_OK(DrainOnce(node.get(), use_batches, &first));
    ASSERT_OK(DrainOnce(node.get(), use_batches, &second));

    ASSERT_FALSE(first.rows.empty()) << context << ": vacuous test";
    ExpectSameRows(first, second, context);

    EXPECT_EQ(first.stats.open_calls, 1) << context;
    EXPECT_EQ(second.stats.open_calls, 2) << context;
    // Everything else is per-run: identical counts, no accumulation.
    EXPECT_EQ(first.stats.rows_out, second.stats.rows_out) << context;
    EXPECT_EQ(first.stats.next_calls, second.stats.next_calls) << context;
    EXPECT_EQ(first.stats.batches_out, second.stats.batches_out) << context;
    EXPECT_EQ(first.stats.adapter_batches, second.stats.adapter_batches)
        << context;
    EXPECT_EQ(first.stats.build_rows, second.stats.build_rows) << context;
    EXPECT_EQ(first.stats.probe_rows, second.stats.probe_rows) << context;
    EXPECT_EQ(first.stats.sort_rows, second.stats.sort_rows) << context;
    EXPECT_EQ(first.stats.rows_out,
              static_cast<int64_t>(first.rows.size()))
        << context;
  }
}

ExecNodePtr Src() {
  return std::make_unique<TableSourceNode>(LeftTable());
}

ExecNodePtr RightSrc() {
  return std::make_unique<TableSourceNode>(RightTable());
}

TEST(ExecReopenTest, TableSource) {
  CheckReopen("TableSource", [] { return Src(); });
}

class ExecReopenScanTest : public ::testing::Test {
 protected:
  Table table_ = LeftTable();
};

TEST_F(ExecReopenScanTest, Scan) {
  CheckReopen("Scan", [&] { return std::make_unique<ScanNode>(&table_, "t"); });
}

TEST(ExecReopenTest, Filter) {
  CheckReopen("Filter", [] {
    return std::make_unique<FilterNode>(
        Src(), std::make_unique<Comparison>(CmpOp::kGt, Col("a"), LitInt(1)));
  });
}

TEST(ExecReopenTest, Project) {
  CheckReopen("Project", [] {
    return std::make_unique<ProjectNode>(Src(),
                                         std::vector<std::string>{"b", "a"});
  });
}

TEST(ExecReopenTest, Sort) {
  CheckReopen("Sort", [] {
    return std::make_unique<SortNode>(
        Src(), std::vector<SortKey>{{"b", false}, {"a", true}});
  });
}

TEST(ExecReopenTest, Distinct) {
  CheckReopen("Distinct", [] {
    return std::make_unique<DistinctNode>(std::make_unique<ProjectNode>(
        Src(), std::vector<std::string>{"a"}));
  });
}

TEST(ExecReopenTest, Limit) {
  CheckReopen("Limit", [] { return std::make_unique<LimitNode>(Src(), 3); });
}

TEST(ExecReopenTest, Aggregate) {
  CheckReopen("Aggregate", [] {
    return std::make_unique<AggregateNode>(
        Src(), std::vector<std::string>{"a"},
        std::vector<AggSpec>{{AggFunc::kCountStar, "", "cnt"},
                             {AggFunc::kSum, "b", "sum_b"}});
  });
}

TEST(ExecReopenTest, HashJoin) {
  CheckReopen("HashJoin", [] {
    return std::make_unique<HashJoinNode>(
        Src(), RightSrc(), JoinType::kLeftOuter,
        std::vector<EquiPair>{{"a", "x"}}, /*residual=*/nullptr);
  });
}

TEST(ExecReopenTest, NestedLoopJoin) {
  CheckReopen("NestedLoopJoin", [] {
    return std::make_unique<NestedLoopJoinNode>(
        Src(), RightSrc(), JoinType::kInner, /*condition=*/nullptr);
  });
}

class ExecReopenIndexJoinTest : public ::testing::Test {
 protected:
  Table right_ = RightTable();
  HashIndex index_{right_, right_.schema().IndexOfExact("x")};
};

TEST_F(ExecReopenIndexJoinTest, IndexJoin) {
  CheckReopen("IndexJoin", [&] {
    return std::make_unique<IndexJoinNode>(
        Src(), &right_, "r", &index_, "a", JoinType::kLeftOuter,
        /*residual=*/nullptr);
  });
}

// The deliberate exception: after TakeAllRows bulk-moved the rows out, a
// reopen cannot replay them — it must fail loudly, never return an empty
// result that looks like a legitimate run.
TEST(ExecReopenTest, TableSourceAfterTakeAllRowsFailsLoudly) {
  TableSourceNode node(LeftTable());
  ASSERT_OK(node.Open());
  std::vector<Row> rows;
  ASSERT_TRUE(node.TakeAllRows(&rows));
  EXPECT_EQ(rows.size(), 5u);
  node.Close();

  const Status reopen = node.Open();
  EXPECT_FALSE(reopen.ok());
  EXPECT_NE(reopen.ToString().find("TakeAllRows"), std::string::npos)
      << reopen.ToString();
}

// TakeAllRows after partial emission must refuse (the hybrid would drop the
// already-emitted prefix), leaving plain iteration intact.
TEST(ExecReopenTest, TakeAllRowsRefusesAfterPartialEmission) {
  TableSourceNode node(LeftTable());
  ASSERT_OK(node.Open());
  Row row;
  bool eof = false;
  ASSERT_OK(node.Next(&row, &eof));
  ASSERT_FALSE(eof);

  std::vector<Row> rows;
  EXPECT_FALSE(node.TakeAllRows(&rows));
  EXPECT_TRUE(rows.empty());

  int64_t remaining = 0;
  while (true) {
    ASSERT_OK(node.Next(&row, &eof));
    if (eof) break;
    ++remaining;
  }
  EXPECT_EQ(remaining, 4);
  node.Close();

  // Never taken, so reopen still works and replays everything.
  RunSnapshot replay;
  ASSERT_OK(DrainOnce(&node, /*use_batches=*/false, &replay));
  EXPECT_EQ(replay.rows.size(), 5u);
}

}  // namespace
}  // namespace nestra
