#include <gtest/gtest.h>

#include "plan/binder.h"
#include "plan/tree_expr.h"
#include "test_util.h"

namespace nestra {
namespace {

using testing_util::RegisterPaperRelations;

class TreeExprTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterPaperRelations(&catalog_); }
  Catalog catalog_;
};

TEST_F(TreeExprTest, QueryQMatchesFigure3a) {
  ASSERT_OK_AND_ASSIGN(QueryBlockPtr root,
                       ParseAndBind(testing_util::kQueryQ, catalog_));
  const TreeExpression tree = TreeExpression::Build(*root);

  ASSERT_EQ(tree.nodes().size(), 3u);
  EXPECT_EQ(tree.nodes()[0]->id, 1);  // T1: R
  EXPECT_EQ(tree.nodes()[1]->id, 2);  // T2: S
  EXPECT_EQ(tree.nodes()[2]->id, 3);  // T3: T

  // Two tree edges; T3 is correlated to both T2 (adjacent) and T1
  // (non-adjacent). The T1 correlation folds onto the (T2,T3) edge because
  // the (T1,T2) edge is already labeled with r.d = s.g — so the structure
  // stays a tree, exactly as drawn in Figure 3(a).
  ASSERT_EQ(tree.edges().size(), 2u);
  EXPECT_FALSE(tree.IsGraph());

  const TreeExprEdge& e12 = tree.edges()[0];
  EXPECT_EQ(e12.from_id, 1);
  EXPECT_EQ(e12.to_id, 2);
  EXPECT_EQ(e12.linking_label, "r.b <> ALL {s.e}");
  ASSERT_EQ(e12.correlated_labels.size(), 1u);
  EXPECT_EQ(e12.correlated_labels[0], "r.d = s.g");

  const TreeExprEdge& e23 = tree.edges()[1];
  EXPECT_EQ(e23.from_id, 2);
  EXPECT_EQ(e23.to_id, 3);
  EXPECT_EQ(e23.linking_label, "s.h > ALL {t.j}");
  EXPECT_EQ(e23.correlated_labels.size(), 2u);
}

TEST_F(TreeExprTest, NonAdjacentCorrelationWithUnlabeledPathAddsExtraEdge) {
  // The middle block is NOT correlated; the leaf is correlated to the root
  // only. The (T1,T2) edge stays unlabeled so an extra T1->T3 edge appears
  // and the structure is a graph.
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr root,
      ParseAndBind("select b from r where b in ("
                   "  select e from s where h > all ("
                   "    select j from t where t.k = r.c))",
                   catalog_));
  const TreeExpression tree = TreeExpression::Build(*root);
  ASSERT_EQ(tree.edges().size(), 3u);
  EXPECT_TRUE(tree.IsGraph());
  const TreeExprEdge& extra = tree.edges()[2];
  EXPECT_TRUE(extra.extra);
  EXPECT_EQ(extra.from_id, 1);
  EXPECT_EQ(extra.to_id, 3);
}

TEST_F(TreeExprTest, LinkingLabels) {
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr root,
      ParseAndBind("select b from r where "
                   "exists (select * from s where s.g = r.d) and "
                   "b not in (select j from t where t.k = r.c)",
                   catalog_));
  const TreeExpression tree = TreeExpression::Build(*root);
  ASSERT_EQ(tree.edges().size(), 2u);
  EXPECT_EQ(tree.edges()[0].linking_label, "EXISTS {s.i}");
  EXPECT_EQ(tree.edges()[1].linking_label, "r.b <> ALL {t.j}");
}

TEST_F(TreeExprTest, ToDotRendersGraph) {
  ASSERT_OK_AND_ASSIGN(QueryBlockPtr root,
                       ParseAndBind(testing_util::kQueryQ, catalog_));
  const std::string dot = TreeExpression::Build(*root).ToDot();
  EXPECT_NE(dot.find("digraph tree_expression"), std::string::npos);
  EXPECT_NE(dot.find("T1 -> T2"), std::string::npos);
  EXPECT_NE(dot.find("T2 -> T3"), std::string::npos);
  EXPECT_NE(dot.find("L: r.b <> ALL {s.e}"), std::string::npos) << dot;
  EXPECT_EQ(dot.find("style=dashed"), std::string::npos);  // tree, no extras

  // The graph case renders the extra edge dashed.
  ASSERT_OK_AND_ASSIGN(
      QueryBlockPtr graph,
      ParseAndBind("select b from r where b in ("
                   "  select e from s where h > all ("
                   "    select j from t where t.k = r.c))",
                   catalog_));
  const std::string graph_dot = TreeExpression::Build(*graph).ToDot();
  EXPECT_NE(graph_dot.find("style=dashed"), std::string::npos) << graph_dot;
}

TEST_F(TreeExprTest, ToStringMentionsAllNodes) {
  ASSERT_OK_AND_ASSIGN(QueryBlockPtr root,
                       ParseAndBind(testing_util::kQueryQ, catalog_));
  const std::string s = TreeExpression::Build(*root).ToString();
  EXPECT_NE(s.find("T1"), std::string::npos);
  EXPECT_NE(s.find("T2"), std::string::npos);
  EXPECT_NE(s.find("T3"), std::string::npos);
  EXPECT_NE(s.find("L: "), std::string::npos);
  EXPECT_NE(s.find("C: "), std::string::npos);
}

}  // namespace
}  // namespace nestra
