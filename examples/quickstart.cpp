// Quickstart: build a catalog, run a nested SQL query with the nested
// relational executor, and inspect the plan structures.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <iostream>

#include "nra/executor.h"
#include "plan/binder.h"
#include "plan/tree_expr.h"
#include "storage/catalog.h"

using namespace nestra;

namespace {

Status RunDemo() {
  // 1. Register base tables. Every relation needs a unique non-NULL primary
  //    key — the nested relational approach uses it to tell an empty
  //    subquery result apart from NULL attribute values.
  Catalog catalog;

  Table employees{Schema({
      {"emp_id", TypeId::kInt64, /*nullable=*/false},
      {"name", TypeId::kString, false},
      {"dept_id", TypeId::kInt64, true},
      {"salary", TypeId::kInt64, true},
  })};
  employees.AppendUnchecked(Row({Value::Int64(1), Value::String("ada"),
                                 Value::Int64(10), Value::Int64(120)}));
  employees.AppendUnchecked(Row({Value::Int64(2), Value::String("grace"),
                                 Value::Int64(10), Value::Int64(140)}));
  employees.AppendUnchecked(Row({Value::Int64(3), Value::String("edsger"),
                                 Value::Int64(20), Value::Int64(110)}));
  employees.AppendUnchecked(Row({Value::Int64(4), Value::String("barbara"),
                                 Value::Int64(20), Value::Null()}));
  NESTRA_RETURN_NOT_OK(catalog.RegisterTable("employees", std::move(employees),
                                             "emp_id"));

  Table bonuses{Schema({
      {"bonus_id", TypeId::kInt64, false},
      {"b_emp_id", TypeId::kInt64, false},
      {"amount", TypeId::kInt64, true},
  })};
  bonuses.AppendUnchecked(
      Row({Value::Int64(1), Value::Int64(1), Value::Int64(15)}));
  bonuses.AppendUnchecked(
      Row({Value::Int64(2), Value::Int64(1), Value::Int64(5)}));
  bonuses.AppendUnchecked(
      Row({Value::Int64(3), Value::Int64(3), Value::Null()}));
  NESTRA_RETURN_NOT_OK(
      catalog.RegisterTable("bonuses", std::move(bonuses), "bonus_id"));

  // 2. A nested query with a negative linking operator: employees whose
  //    salary exceeds EVERY one of their bonuses (vacuously true when they
  //    have none — and UNKNOWN, i.e. filtered, when a bonus is NULL).
  const std::string sql =
      "select name, salary from employees "
      "where salary > all (select amount from bonuses "
      "                    where b_emp_id = emp_id)";
  std::cout << "SQL:\n  " << sql << "\n\n";

  // 3. Inspect the bound query-block tree and the paper's tree expression.
  NESTRA_ASSIGN_OR_RETURN(QueryBlockPtr root, ParseAndBind(sql, catalog));
  std::cout << "Query blocks:\n" << root->ToString() << "\n";
  std::cout << "Tree expression:\n"
            << TreeExpression::Build(*root).ToString() << "\n";

  // 4. Execute with the nested relational approach (optimized = single
  //    sort + fused nest/linking-selection pass).
  NraExecutor executor(catalog, NraOptions::Optimized());
  NraStats stats;
  NESTRA_ASSIGN_OR_RETURN(Table result, executor.Execute(*root, &stats));
  std::cout << "Result:\n" << result.ToString();
  std::cout << "\nStats: " << stats.ToString() << "\n";
  // ada's bonuses are {15, 5} and 120 > both -> kept. grace has none ->
  // vacuous ALL -> kept. edsger's bonus is NULL -> UNKNOWN -> dropped.
  // barbara's salary is NULL but her bonus set is empty -> kept.
  return Status::OK();
}

}  // namespace

int main() {
  const Status st = RunDemo();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
