// Runs the paper's evaluation queries (Section 5.2) on generated TPC-H
// data, printing each strategy's result size, timing breakdown and plan
// choice — a miniature of the benchmark harness with readable output.
//
//   $ ./examples/tpch_subqueries [scale]     (default scale 0.1)

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "baseline/native_optimizer.h"
#include "common/date.h"
#include "nra/executor.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace nestra;

namespace {

Status RunQuery(const Catalog& catalog, const std::string& title,
                const std::string& sql) {
  std::cout << "---- " << title << " ----\n" << sql << "\n";

  NativePlanChoice choice;
  NestedIterStats iter_stats;
  NESTRA_ASSIGN_OR_RETURN(
      Table native, ExecuteNativeSql(sql, catalog, {}, &choice, &iter_stats));
  std::cout << "native   : " << native.num_rows()
            << " rows (plan: " << choice.explanation << ")\n";

  for (const auto& [name, options] :
       {std::pair<const char*, NraOptions>{"original ",
                                           NraOptions::Original()},
        std::pair<const char*, NraOptions>{"optimized",
                                           NraOptions::Optimized()}}) {
    NraExecutor exec(catalog, options);
    NraStats stats;
    NESTRA_ASSIGN_OR_RETURN(Table out, exec.ExecuteSql(sql, &stats));
    std::cout << name << ": " << out.num_rows() << " rows (" << stats.ToString()
              << ")";
    std::cout << (Table::BagEquals(out, native) ? "" : "  ** MISMATCH **")
              << "\n";
  }
  std::cout << "\n";
  return Status::OK();
}

Status RunDemo(double scale) {
  TpchConfig config;
  config.scale = scale;
  config.declare_not_null = true;
  Catalog catalog;
  NESTRA_RETURN_NOT_OK(PopulateTpch(&catalog, config));
  NESTRA_ASSIGN_OR_RETURN(const Table* orders, catalog.GetTable("orders"));
  NESTRA_ASSIGN_OR_RETURN(const Table* lineitem, catalog.GetTable("lineitem"));
  std::cout << "TPC-H subset at scale " << scale << ": "
            << orders->num_rows() << " orders, " << lineitem->num_rows()
            << " lineitems\n\n";

  NESTRA_ASSIGN_OR_RETURN(Value lo, ColumnQuantile(*orders, "o_orderdate", 0.3));
  NESTRA_ASSIGN_OR_RETURN(Value hi, ColumnQuantile(*orders, "o_orderdate", 0.7));
  NESTRA_RETURN_NOT_OK(RunQuery(
      catalog, "Query 1 (theta-ALL, Figure 4)",
      MakeQuery1(FormatDate(lo.int64()), FormatDate(hi.int64()))));

  NESTRA_RETURN_NOT_OK(
      RunQuery(catalog, "Query 2a (mixed ANY / NOT EXISTS, Figure 5)",
               MakeQuery2(10, 40, 5000, 25, OuterLink::kAny,
                          InnerLink::kNotExists)));
  NESTRA_RETURN_NOT_OK(
      RunQuery(catalog, "Query 2b (negative ALL / NOT EXISTS, Figure 6)",
               MakeQuery2(10, 40, 5000, 25, OuterLink::kAll,
                          InnerLink::kNotExists)));
  NESTRA_RETURN_NOT_OK(RunQuery(
      catalog, "Query 3a(a) (mixed ALL / EXISTS, Figure 7)",
      MakeQuery3(10, 40, 5000, 25, OuterLink::kAll, InnerLink::kExists,
                 Query3Variant::kVariantA)));
  NESTRA_RETURN_NOT_OK(RunQuery(
      catalog, "Query 3b(b) (negative, <> correlation, Figure 8)",
      MakeQuery3(10, 40, 5000, 25, OuterLink::kAll, InnerLink::kNotExists,
                 Query3Variant::kVariantB)));
  NESTRA_RETURN_NOT_OK(RunQuery(
      catalog, "Query 3c(c) (positive ANY / EXISTS, Figure 9)",
      MakeQuery3(10, 40, 5000, 25, OuterLink::kAny, InnerLink::kExists,
                 Query3Variant::kVariantC)));
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  const Status st = RunDemo(scale);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
