// Interactive SQL shell over the nestra engine.
//
//   $ ./examples/nestra_shell
//   nestra> \gen tpch 0.05
//   nestra> select o_orderkey from orders where o_totalprice > all (
//             select l_extendedprice from lineitem
//             where l_orderkey = o_orderkey) limit 5;
//   nestra> \explain select ...;
//
// The shell is one Session from a ConnectionManager, so everything it runs
// goes through the same admission gate and schema lock as any other client.
//
// Commands:
//   \gen tpch [scale]          generate + register the TPC-H subset
//   \load <table> <file.csv> <col:type,...> [pk]
//                              register a table from CSV
//                              (types: int, float, string, date)
//   \save <dir>                persist the catalog (manifest + CSVs)
//   \open <dir>                load a persisted catalog
//   \tables                    list registered tables
//   \schema <table>            show a table's schema and row count
//   \mode original|optimized   switch the NRA executor configuration
//   \oracle on|off             cross-check results against nested iteration
//   \prepare <name> <sql>      parse+bind+verify once; use $1,$2,... in sql
//   \execute <name> [args]     run a prepared statement (args comma-
//                              separated literals: 5, 1.5, 'x', NULL)
//   \deallocate <name>         drop a prepared statement
//   \session                   session id, options, prepared statements,
//                              admission-control stats, cumulative memory
//   \memory                    live process -> session memory hierarchy
//                              (accounted logical bytes; see
//                              src/common/memory_tracker.h)
//   \explain <sql>             show the plan without running
//   \verify [sql]              static verification + inferred properties
//                              (nullability / keys / cardinality) for <sql>,
//                              or for the last executed statement
//   \metrics [json]            dump the process metrics registry
//                              (Prometheus text by default)
//   \slow <ms>                 log queries slower than <ms> (0 disables)
//   \quit                      exit
// Anything else is SQL, terminated by ';'. A statement may start with
// `EXPLAIN <select...>` (plan only), `EXPLAIN ANALYZE <select...>`
// (execute with profiling and print the per-operator profile), or the
// statement forms `PREPARE <name> AS <select>`, `EXECUTE <name> (args)`,
// `DEALLOCATE <name>`.

#include <cctype>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/nested_iteration.h"
#include "nra/explain.h"
#include "server/connection_manager.h"
#include "server/session.h"
#include "storage/catalog.h"
#include "storage/catalog_io.h"
#include "storage/csv_io.h"
#include "telemetry/metrics.h"
#include "tpch/tpch_gen.h"

using namespace nestra;

namespace {

// Strips a leading case-insensitive keyword (followed by whitespace) and
// returns true when it was present.
bool ConsumeKeyword(std::string* sql, const std::string& keyword) {
  size_t at = sql->find_first_not_of(" \t\n\r");
  if (at == std::string::npos) return false;
  if (sql->size() - at < keyword.size() + 1) return false;
  for (size_t i = 0; i < keyword.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>((*sql)[at + i])) !=
        keyword[i]) {
      return false;
    }
  }
  const char next = (*sql)[at + keyword.size()];
  if (next != ' ' && next != '\t' && next != '\n' && next != '\r') {
    return false;
  }
  sql->erase(0, at + keyword.size() + 1);
  return true;
}

std::vector<std::string> SplitWords(const std::string& line) {
  std::istringstream iss(line);
  std::vector<std::string> words;
  std::string w;
  while (iss >> w) words.push_back(w);
  return words;
}

Result<Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<Field> fields;
  std::istringstream iss(spec);
  std::string item;
  while (std::getline(iss, item, ',')) {
    const size_t colon = item.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("expected col:type, got '" + item + "'");
    }
    const std::string name = item.substr(0, colon);
    const std::string type = item.substr(colon + 1);
    TypeId id;
    if (type == "int") {
      id = TypeId::kInt64;
    } else if (type == "float") {
      id = TypeId::kFloat64;
    } else if (type == "string") {
      id = TypeId::kString;
    } else if (type == "date") {
      id = TypeId::kDate;
    } else {
      return Status::InvalidArgument("unknown type '" + type + "'");
    }
    fields.emplace_back(name, id, /*nullable=*/true);
  }
  if (fields.empty()) return Status::InvalidArgument("empty schema spec");
  return Schema(std::move(fields));
}

class Shell {
 public:
  Shell() : manager_(&catalog_), session_(manager_.Connect()) {}

  int Run() {
    std::cout << "nestra shell — \\gen tpch to load data, \\quit to exit\n";
    std::string buffer;
    while (true) {
      std::cout << (buffer.empty() ? "nestra> " : "   ...> ") << std::flush;
      std::string line;
      if (!std::getline(std::cin, line)) break;
      if (buffer.empty() && !line.empty() && line[0] == '\\') {
        if (!HandleCommand(line)) break;
        continue;
      }
      buffer += line + "\n";
      const size_t semi = buffer.find(';');
      if (semi == std::string::npos) continue;
      const std::string sql = buffer.substr(0, semi);
      buffer.clear();
      RunSql(sql);
    }
    return 0;
  }

 private:
  static void Report(const Status& status) {
    std::cout << status.ToString() << "\n";
  }

  NraOptions& options() { return session_->options(); }

  // Rest of `line` after the first `n` whitespace-separated words.
  static std::string RestAfterWords(const std::string& line, int n) {
    size_t at = 0;
    for (int i = 0; i < n; ++i) {
      at = line.find_first_not_of(" \t", at);
      if (at == std::string::npos) return "";
      at = line.find_first_of(" \t", at);
      if (at == std::string::npos) return "";
    }
    at = line.find_first_not_of(" \t", at);
    return at == std::string::npos ? "" : line.substr(at);
  }

  // Returns false to quit.
  bool HandleCommand(const std::string& line) {
    const std::vector<std::string> words = SplitWords(line);
    const std::string& cmd = words[0];
    if (cmd == "\\quit" || cmd == "\\q") return false;
    if (cmd == "\\tables") {
      for (const std::string& name : catalog_.TableNames()) {
        std::cout << "  " << name << "\n";
      }
      return true;
    }
    if (cmd == "\\save" && words.size() >= 2) {
      Report(SaveCatalog(catalog_, words[1]));
      return true;
    }
    if (cmd == "\\open" && words.size() >= 2) {
      Report(manager_.Ddl(
          [&](Catalog* catalog) { return LoadCatalog(words[1], catalog); }));
      return true;
    }
    if (cmd == "\\gen") {
      TpchConfig config;
      config.scale = words.size() > 2 ? std::atof(words[2].c_str()) : 0.05;
      config.declare_not_null = true;
      Report(manager_.Ddl(
          [&](Catalog* catalog) { return PopulateTpch(catalog, config); }));
      return true;
    }
    if (cmd == "\\schema" && words.size() >= 2) {
      const Result<const Table*> t = catalog_.GetTable(words[1]);
      if (!t.ok()) {
        std::cout << t.status().ToString() << "\n";
      } else {
        std::cout << (*t)->schema().ToString() << "  (" << (*t)->num_rows()
                  << " rows)\n";
      }
      return true;
    }
    if (cmd == "\\load" && words.size() >= 4) {
      const Result<Schema> schema = ParseSchemaSpec(words[3]);
      if (!schema.ok()) {
        std::cout << schema.status().ToString() << "\n";
        return true;
      }
      const Result<Table> table = ReadCsvFile(words[2], *schema);
      if (!table.ok()) {
        std::cout << table.status().ToString() << "\n";
        return true;
      }
      const std::string pk = words.size() > 4 ? words[4] : "";
      Report(manager_.RegisterTable(words[1], std::move(*table), pk));
      return true;
    }
    if (cmd == "\\mode" && words.size() >= 2) {
      if (words[1] == "original") {
        options() = NraOptions::Original();
      } else if (words[1] == "optimized") {
        options() = NraOptions::Optimized();
      } else {
        std::cout << "unknown mode '" << words[1] << "'\n";
        return true;
      }
      std::cout << options().ToString() << "\n";
      return true;
    }
    if (cmd == "\\oracle" && words.size() >= 2) {
      oracle_check_ = words[1] == "on";
      std::cout << "oracle cross-check " << (oracle_check_ ? "on" : "off")
                << "\n";
      return true;
    }
    if (cmd == "\\prepare" && words.size() >= 3) {
      Report(session_->Prepare(words[1], RestAfterWords(line, 2)));
      return true;
    }
    if (cmd == "\\execute" && words.size() >= 2) {
      const std::string args = RestAfterWords(line, 2);
      RunSql("EXECUTE " + words[1] + (args.empty() ? "" : " (" + args + ")"));
      return true;
    }
    if (cmd == "\\deallocate" && words.size() >= 2) {
      Report(session_->Deallocate(words[1]));
      return true;
    }
    if (cmd == "\\session") {
      const Session::Stats& stats = session_->stats();
      const AdmissionController& admission = manager_.admission();
      std::cout << "session " << session_->label() << "\n  "
                << options().ToString() << "\n  statements ok=" << stats.queries
                << " errors=" << stats.errors
                << " prepares=" << stats.prepares
                << " prepared_executions=" << stats.prepared_executions
                << "\n  prepared:";
      for (const std::string& name : session_->PreparedNames()) {
        std::cout << " " << name;
      }
      std::cout << "\n  admission: max_in_flight="
                << admission.max_in_flight()
                << " admitted=" << admission.admitted_total()
                << " peak_in_flight=" << admission.peak_in_flight()
                << " peak_queue=" << admission.peak_queue_depth()
                << "; active_sessions=" << manager_.active_sessions() << "\n";
      const SessionMemoryTracker& mem = session_->memory();
      std::cout << "  memory: peak=" << mem.peak() << "B cumulative="
                << mem.cumulative() << "B over " << mem.queries()
                << " queries\n";
      return true;
    }
    if (cmd == "\\memory") {
      std::cout << DumpMemoryHierarchy();
      return true;
    }
    if (cmd == "\\metrics") {
      std::cout << (words.size() > 1 && words[1] == "json"
                        ? telemetry::DumpMetricsJson()
                        : telemetry::DumpMetricsPrometheus());
      return true;
    }
    if (cmd == "\\slow" && words.size() >= 2) {
      options().slow_query_ms = std::atof(words[1].c_str());
      if (options().slow_query_ms > 0) {
        std::cout << "logging queries slower than " << options().slow_query_ms
                  << " ms\n";
      } else {
        std::cout << "slow-query log off\n";
      }
      return true;
    }
    if (cmd == "\\explain") {
      const size_t sql_at = line.find(' ');
      if (sql_at == std::string::npos) {
        std::cout << "usage: \\explain <sql>\n";
        return true;
      }
      std::string sql = line.substr(sql_at + 1);
      if (!sql.empty() && sql.back() == ';') sql.pop_back();
      const Result<std::string> plan = ExplainSql(sql, catalog_, options());
      std::cout << (plan.ok() ? *plan : plan.status().ToString()) << "\n";
      return true;
    }
    if (cmd == "\\verify") {
      const size_t sql_at = line.find(' ');
      std::string sql =
          sql_at == std::string::npos ? last_sql_ : line.substr(sql_at + 1);
      if (!sql.empty() && sql.back() == ';') sql.pop_back();
      if (sql.find_first_not_of(" \t\n\r") == std::string::npos) {
        std::cout << "usage: \\verify <sql>  (or run a statement first)\n";
        return true;
      }
      const Result<std::string> text =
          ExplainVerifySql(sql, catalog_, options());
      std::cout << (text.ok() ? *text : text.status().ToString()) << "\n";
      return true;
    }
    std::cout << "unknown command: " << line << "\n";
    return true;
  }

  void RunSql(std::string sql) {
    if (ConsumeKeyword(&sql, "EXPLAIN")) {
      const bool analyze = ConsumeKeyword(&sql, "ANALYZE");
      last_sql_ = sql;  // the bare SELECT, so \verify replays it
      const Result<std::string> text =
          analyze ? ExplainAnalyzeSql(sql, catalog_, options())
                  : ExplainSql(sql, catalog_, options());
      std::cout << (text.ok() ? *text : text.status().ToString()) << "\n";
      return;
    }
    last_sql_ = sql;
    NraStats stats;
    const Result<Table> result = session_->Query(sql, &stats);
    if (!result.ok()) {
      std::cout << result.status().ToString() << "\n";
      return;
    }
    {
      // PREPARE / DEALLOCATE return an empty columnless table; a result
      // print would just be noise.
      std::string head = sql;
      if (ConsumeKeyword(&head, "PREPARE") ||
          ConsumeKeyword(&head, "DEALLOCATE")) {
        std::cout << "OK\n";
        return;
      }
    }
    std::cout << result->ToString(25);
    std::cout << result->num_rows() << " row(s); " << stats.ToString() << "\n";
    if (oracle_check_) {
      NestedIterationExecutor oracle(catalog_, {.use_indexes = false});
      const Result<Table> check = oracle.ExecuteSql(sql);
      if (check.ok()) {
        std::cout << "oracle: "
                  << (Table::BagEquals(*result, *check) ? "agrees"
                                                        : "** DISAGREES **")
                  << "\n";
      }
    }
  }

  Catalog catalog_;
  ConnectionManager manager_;
  std::unique_ptr<Session> session_;
  bool oracle_check_ = false;
  std::string last_sql_;  // for bare \verify
};

}  // namespace

int main() {
  // The shell is interactive, so counter upkeep is never the bottleneck;
  // keeping the registry live makes \metrics useful out of the box.
  telemetry::SetMetricsEnabled(true);
  Shell shell;
  return shell.Run();
}
