// Demonstrates Section 2's central claim: the classical rewrites of
// theta-ALL / NOT IN subqueries are UNSOUND in the presence of NULLs, while
// the nested relational approach preserves SQL's three-valued semantics.
//
// The paper's own example: R.A = 5 against S.B = {2, 3, 4, null}.
//   SQL        : 5 > ALL {2,3,4,null}  ==  UNKNOWN  -> row filtered out
//   antijoin   : no S.B with 5 <= B matches        -> row kept (wrong)
//   MAX rewrite: max ignores NULL, 5 > 4           -> row kept (wrong)
//
//   $ ./examples/null_semantics

#include <cstdio>
#include <iostream>

#include "baseline/count_rewrite.h"
#include "baseline/nested_iteration.h"
#include "baseline/unnest_semijoin.h"
#include "exec/hash_join.h"
#include "nra/executor.h"
#include "plan/binder.h"
#include "storage/catalog.h"

using namespace nestra;

namespace {

Status RunDemo() {
  Catalog catalog;
  {
    Table big{Schema({{"ka", TypeId::kInt64, false},
                      {"va", TypeId::kInt64, true}})};
    big.AppendUnchecked(Row({Value::Int64(1), Value::Int64(5)}));
    NESTRA_RETURN_NOT_OK(catalog.RegisterTable("big", std::move(big), "ka"));

    Table vals{Schema({{"kb", TypeId::kInt64, false},
                       {"grp", TypeId::kInt64, false},
                       {"vb", TypeId::kInt64, true}})};
    int64_t k = 0;
    for (const Value& v : {Value::Int64(2), Value::Int64(3), Value::Int64(4),
                           Value::Null()}) {
      vals.AppendUnchecked(Row({Value::Int64(++k), Value::Int64(1), v}));
    }
    NESTRA_RETURN_NOT_OK(catalog.RegisterTable("vals", std::move(vals), "kb"));
  }

  const std::string sql =
      "select va from big where va > all "
      "(select vb from vals where vals.grp = big.ka)";
  std::cout << "Query: " << sql << "\n";
  std::cout << "Data : big.va = 5, subquery set = {2, 3, 4, null}\n\n";

  // 1. SQL semantics (tuple iteration, no rewriting).
  NestedIterationExecutor oracle(catalog, {.use_indexes = false});
  NESTRA_ASSIGN_OR_RETURN(Table sql_result, oracle.ExecuteSql(sql));
  std::cout << "SQL semantics (oracle)      : " << sql_result.num_rows()
            << " rows   (5 > ALL {2,3,4,null} is UNKNOWN)\n";

  // 2. The nested relational approach — must agree.
  NraExecutor nra(catalog);
  NESTRA_ASSIGN_OR_RETURN(Table nra_result, nra.ExecuteSql(sql));
  std::cout << "Nested relational approach  : " << nra_result.num_rows()
            << " rows   (agrees with SQL)\n";

  // 3. The antijoin rewrite — keeps the row, wrongly.
  {
    auto left = std::make_unique<TableSourceNode>(
        Table{Schema({{"big.ka", TypeId::kInt64}, {"big.va", TypeId::kInt64}}),
              {Row({Value::Int64(1), Value::Int64(5)})}});
    Table right{Schema({{"vals.grp", TypeId::kInt64},
                        {"vals.vb", TypeId::kInt64}})};
    for (const Value& v : {Value::Int64(2), Value::Int64(3), Value::Int64(4),
                           Value::Null()}) {
      right.AppendUnchecked(Row({Value::Int64(1), v}));
    }
    HashJoinNode anti(std::move(left),
                      std::make_unique<TableSourceNode>(std::move(right)),
                      JoinType::kLeftAnti, {{"big.ka", "vals.grp"}},
                      Cmp(CmpOp::kLe, Col("big.va"), Col("vals.vb")));
    NESTRA_ASSIGN_OR_RETURN(Table anti_result, CollectTable(&anti));
    std::cout << "Antijoin rewrite            : " << anti_result.num_rows()
              << " rows   (WRONG: null <= comparisons look like non-matches)"
              << "\n";
  }

  // 4. The MIN/MAX aggregate rewrite — also keeps the row, wrongly.
  NESTRA_ASSIGN_OR_RETURN(QueryBlockPtr root, ParseAndBind(sql, catalog));
  NESTRA_ASSIGN_OR_RETURN(Table agg_result, ExecuteAggRewrite(*root, catalog));
  std::cout << "MAX rewrite (Kim/Ganski)    : " << agg_result.num_rows()
            << " rows   (WRONG: MAX ignores the NULL member)\n";

  // 5. And this is why the modelled System A refuses the antijoin without a
  //    NOT NULL constraint on the linked attribute.
  SemiAntiUnnester unnester(catalog);
  std::cout << "\nSystem A's antijoin check  : "
            << unnester.CheckApplicable(*root) << "\n";
  return Status::OK();
}

}  // namespace

int main() {
  const Status st = RunDemo();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
