// Reproduces the paper's running example end to end:
//   * Figure 1 — base relations R, S, T and Temp1 (the projected double
//     left outer join);
//   * Figure 2 — Temp2 (nest), Temp3 (pseudo linking selection), Temp4
//     (strict linking selection);
//   * Figure 3 — the tree expression for Query Q;
//   * Query Q itself executed by the nested relational approach and by the
//     nested-iteration baseline.
//
//   $ ./examples/paper_example

#include <cstdio>
#include <iostream>

#include "baseline/nested_iteration.h"
#include "exec/hash_join.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "nested/linking_selection.h"
#include "nested/nest.h"
#include "nra/executor.h"
#include "plan/binder.h"
#include "plan/tree_expr.h"
#include "storage/catalog.h"

using namespace nestra;

namespace {

Table IntTable(const std::vector<std::string>& cols,
               const std::vector<std::vector<Value>>& rows) {
  std::vector<Field> fields;
  for (const std::string& c : cols) fields.emplace_back(c, TypeId::kInt64);
  Table t{Schema(std::move(fields))};
  for (const auto& r : rows) t.AppendUnchecked(Row(r));
  return t;
}

Status RunDemo() {
  const Value kNull = Value::Null();
  auto I = [](int64_t v) { return Value::Int64(v); };

  Catalog catalog;
  NESTRA_RETURN_NOT_OK(catalog.RegisterTable(
      "r",
      IntTable({"a", "b", "c", "d"}, {{I(1), I(2), I(3), I(1)},
                                      {I(2), I(3), I(4), I(2)},
                                      {I(3), I(4), I(5), I(3)},
                                      {kNull, kNull, I(5), I(4)}}),
      "d"));
  NESTRA_RETURN_NOT_OK(catalog.RegisterTable(
      "s",
      IntTable({"e", "f", "g", "h", "i"}, {{I(1), I(5), I(2), I(2), I(1)},
                                           {I(2), I(5), I(2), I(7), I(2)},
                                           {I(3), I(5), I(4), I(3), I(3)},
                                           {I(4), I(5), I(4), kNull, I(4)}}),
      "i"));
  NESTRA_RETURN_NOT_OK(catalog.RegisterTable(
      "t", IntTable({"j", "k", "l"}, {{I(5), I(4), I(1)}, {kNull, I(4), I(2)}}),
      "l"));

  std::cout << "=== Figure 1: base relations ===\n";
  for (const char* name : {"r", "s", "t"}) {
    NESTRA_ASSIGN_OR_RETURN(const Table* t, catalog.GetTable(name));
    std::cout << "Relation " << name << ":\n" << t->ToString();
  }

  // Temp1 = pi_{B,C,D,E,H,I,J,L}((R LOJ_{d=g} S) LOJ_{k=c AND l<>i} T)
  NESTRA_ASSIGN_OR_RETURN(const Table* r, catalog.GetTable("r"));
  NESTRA_ASSIGN_OR_RETURN(const Table* s, catalog.GetTable("s"));
  NESTRA_ASSIGN_OR_RETURN(const Table* t, catalog.GetTable("t"));
  auto rs = std::make_unique<HashJoinNode>(
      std::make_unique<ScanNode>(r, ""), std::make_unique<ScanNode>(s, ""),
      JoinType::kLeftOuter, std::vector<EquiPair>{{"d", "g"}}, nullptr);
  auto rst = std::make_unique<HashJoinNode>(
      std::move(rs), std::make_unique<ScanNode>(t, ""), JoinType::kLeftOuter,
      std::vector<EquiPair>{{"c", "k"}}, Cmp(CmpOp::kNe, Col("l"), Col("i")));
  ProjectNode proj(std::move(rst), {"b", "c", "d", "e", "h", "i", "j", "l"});
  NESTRA_ASSIGN_OR_RETURN(Table temp1, CollectTable(&proj));
  std::cout << "\nTemp1 (Figure 1(d)):\n" << temp1.ToString();

  // Temp2 = nest by {B,C,D,E,H,I} keeping {J,L}.
  NESTRA_ASSIGN_OR_RETURN(
      NestedRelation temp2,
      Nest(temp1, {"b", "c", "d", "e", "h", "i"}, {"j", "l"}, "grp"));
  std::cout << "\nTemp2 (Figure 2(a)) — nested relation:\n"
            << temp2.ToString();

  // Temp3: pseudo-selection sigma-bar_{S.H > ALL {T.J} (or T.L is null),
  // padding {S.E, S.H, S.I}}.
  const LinkingPredicate inner_pred =
      MakeLinkingPredicate(LinkOp::kAll, CmpOp::kGt, "h", "grp", "j", "l");
  NESTRA_ASSIGN_OR_RETURN(
      Table temp3, LinkingSelect(temp2, inner_pred, SelectionMode::kPseudo,
                                 {"e", "h", "i"}));
  std::cout << "\nTemp3 (Figure 2(b)) — pseudo linking selection:\n"
            << temp3.ToString();

  // Temp4: the strict variant drops the failing tuple instead.
  NESTRA_ASSIGN_OR_RETURN(
      Table temp4, LinkingSelect(temp2, inner_pred, SelectionMode::kStrict));
  std::cout << "\nTemp4 (Figure 2(c)) — strict linking selection:\n"
            << temp4.ToString();

  // Query Q (Section 2).
  const std::string query_q =
      "select r.b, r.c, r.d from r "
      "where r.a > 1 and r.b not in ("
      "  select s.e from s where s.f = 5 and r.d = s.g and s.h > all ("
      "    select t.j from t where t.k = r.c and t.l <> s.i))";
  std::cout << "\n=== Query Q ===\n" << query_q << "\n";

  NESTRA_ASSIGN_OR_RETURN(QueryBlockPtr root, ParseAndBind(query_q, catalog));
  std::cout << "\nTree expression (Figure 3(a)):\n"
            << TreeExpression::Build(*root).ToString();

  NraExecutor nra(catalog, NraOptions::Optimized());
  NESTRA_ASSIGN_OR_RETURN(Table nra_result, nra.Execute(*root));
  std::cout << "\nNested relational result:\n" << nra_result.ToString();

  NestedIterationExecutor oracle(catalog, {.use_indexes = false});
  NESTRA_ASSIGN_OR_RETURN(Table oracle_result, oracle.Execute(*root));
  std::cout << "\nNested iteration (SQL semantics oracle):\n"
            << oracle_result.ToString();

  std::cout << "\nAgree: "
            << (Table::BagEquals(nra_result, oracle_result) ? "yes" : "NO")
            << "\n";
  return Status::OK();
}

}  // namespace

int main() {
  const Status st = RunDemo();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
