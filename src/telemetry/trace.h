#ifndef NESTRA_TELEMETRY_TRACE_H_
#define NESTRA_TELEMETRY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace nestra {
namespace telemetry {

/// \brief Chrome trace_event sink: begin/end spans rendered as complete
/// ("ph":"X") events, one JSON object per line, loadable in Perfetto /
/// chrome://tracing.
///
/// Tracks map to threads: every thread that records a span gets a small
/// sequential tid (0 = first recording thread, typically the query thread;
/// pool workers land on their own tracks), plus a thread_name metadata
/// event so the viewer labels the lanes. Timestamps are steady-clock
/// microseconds since the first InstallTraceSink call, so spans from all
/// threads share one timebase.
///
/// Like metrics, tracing is globally gated: TraceEnabled() is one relaxed
/// atomic load, and a disabled TraceSpan constructor does no clock read and
/// no allocation. Spans buffer in per-thread arrays (one mutex per thread
/// buffer, uncontended except against Flush) and FlushTrace() rewrites the
/// whole file, so the JSON on disk is always complete and well-formed.
/// Flush runs automatically at process exit.

/// True when a sink is installed. One relaxed atomic load.
bool TraceEnabled();

/// Enables tracing into `path` (JSON written by FlushTrace / at exit).
/// Re-installing the same path is a cheap no-op; a new path starts a new
/// trace. Also installed automatically from NESTRA_TRACE_JSON on first
/// TraceEnabled() check when the variable is set.
void InstallTraceSink(const std::string& path);

/// Disables tracing and drops buffered events (test hygiene).
void UninstallTraceSink();

/// Writes every buffered event to the installed path. Idempotent; called
/// at process exit automatically.
void FlushTrace();

/// Microseconds since the trace timebase origin for a caller-held steady
/// clock timestamp (lets callers reuse a timestamp they already took).
double TraceTimeUs(std::chrono::steady_clock::time_point tp);

/// Labels the calling thread's track in the trace viewer ("pool-worker",
/// ...). Threads that never call this show as "thread-<tid>".
void SetCurrentThreadName(const std::string& name);

/// Records one complete event directly (callers that time a region
/// themselves, e.g. stage timers). `phase_label` and `rows` annotate the
/// event's args; pass nullptr / -1 to omit.
void RecordCompleteEvent(const char* category, const std::string& name,
                         double ts_us, double dur_us, int64_t rows,
                         const char* phase_label);

/// \brief RAII span: records a complete event covering construction to
/// End() (or destruction). When tracing is off, construction is a single
/// relaxed load.
class TraceSpan {
 public:
  TraceSpan(const char* category, std::string name);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  bool active() const { return active_; }

  /// Annotates the event with an output-row count.
  void set_rows(int64_t rows) { rows_ = rows; }

  /// Ends the span now (destructor becomes a no-op).
  void End();

 private:
  bool active_ = false;
  const char* category_ = nullptr;
  std::string name_;
  int64_t rows_ = -1;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace telemetry
}  // namespace nestra

#endif  // NESTRA_TELEMETRY_TRACE_H_
