#include "telemetry/engine_metrics.h"

#include <string>
#include <vector>

namespace nestra {
namespace telemetry {

const char* const kPhaseLabels[kNumPhases] = {
    "unattributed", "unnest-join", "nest", "linking-selection",
    "post-processing"};

const EngineMetrics& Metrics() {
  static const EngineMetrics* metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    auto* m = new EngineMetrics();

    m->queries_total =
        reg.GetCounter("nestra_queries_total", "",
                       "Queries executed successfully", true);
    m->query_errors_total =
        reg.GetCounter("nestra_query_errors_total", "",
                       "Queries that returned an error", true);
    m->rows_out_total =
        reg.GetCounter("nestra_rows_out_total", "",
                       "Result rows returned to callers", true);
    m->intermediate_rows_total = reg.GetCounter(
        "nestra_intermediate_rows_total", "",
        "Peak intermediate (wide join) rows per query, summed", true);
    m->plans_verified_total =
        reg.GetCounter("nestra_plans_verified_total", "",
                       "Plans checked by the static verifier", true);
    m->verify_failures_total =
        reg.GetCounter("nestra_verify_failures_total", "",
                       "Plans the static verifier rejected", true);
    m->pipelined_queries_total = reg.GetCounter(
        "nestra_pipelined_queries_total", "",
        "Queries scheduled through the pipeline stage DAG", true);
    m->pipeline_tasks_total =
        reg.GetCounter("nestra_pipeline_tasks_total", "",
                       "Pipeline DAG tasks executed (or skipped)", true);
    m->statements_parsed_total =
        reg.GetCounter("nestra_statements_parsed_total", "",
                       "SQL statements parsed successfully", true);
    m->statements_bound_total =
        reg.GetCounter("nestra_statements_bound_total", "",
                       "SELECT blocks bound against the catalog", true);
    m->statements_prepared_total =
        reg.GetCounter("nestra_statements_prepared_total", "",
                       "PREPAREs completed (parse+bind+verify paid once)",
                       true);
    m->prepared_executions_total = reg.GetCounter(
        "nestra_prepared_executions_total", "",
        "EXECUTEs of prepared statements (bind values + run only)", true);
    m->mem_limit_exceeded_total = reg.GetCounter(
        "nestra_mem_limit_exceeded_total", "",
        "Queries failed by the max_query_mem soft limit", true);
    m->query_ms = reg.GetHistogram(
        "nestra_query_ms", "", "Query wall time in milliseconds",
        {0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
         10000});
    m->query_peak_mem_bytes = reg.GetHistogram(
        "nestra_query_peak_mem_bytes", "",
        "Deterministic per-query peak accounted bytes",
        {4096, 16384, 65536, 262144, 1048576, 4194304, 16777216, 67108864,
         268435456, 1073741824});

    for (int p = 0; p < kNumPhases; ++p) {
      const std::string label =
          std::string("phase=\"") + kPhaseLabels[p] + "\"";
      m->phase_rows_total[p] = reg.GetCounter(
          "nestra_phase_rows_total", label,
          "Rows produced by executor stages, by paper phase", true);
      m->phase_stages_total[p] = reg.GetCounter(
          "nestra_phase_stages_total", label,
          "Executor stages run, by paper phase", true);
      m->phase_seconds_total[p] = reg.GetCounter(
          "nestra_phase_seconds_total", label,
          "Stage wall time in seconds, by paper phase", false);
    }
    m->nest_groups_peak = reg.GetGauge(
        "nestra_nest_groups_peak", "",
        "Largest group count any nest stage has produced", true);

    m->io_hits_total = reg.GetCounter(
        "nestra_io_hits_total", "", "IoSim buffer-pool page hits", true);
    m->io_seq_misses_total =
        reg.GetCounter("nestra_io_seq_misses_total", "",
                       "IoSim sequential page misses", true);
    m->io_random_misses_total =
        reg.GetCounter("nestra_io_random_misses_total", "",
                       "IoSim random page misses", true);
    m->io_sim_millis_total =
        reg.GetCounter("nestra_io_sim_millis_total", "",
                       "IoSim simulated I/O latency in milliseconds", false);
    m->zone_granules_scanned_total =
        reg.GetCounter("nestra_zone_granules_scanned_total", "",
                       "Base-scan granules actually scanned after zone-map "
                       "pruning", true);
    m->zone_granules_pruned_total =
        reg.GetCounter("nestra_zone_granules_pruned_total", "",
                       "Base-scan granules skipped by zone-map min/max "
                       "pruning", true);

    m->pool_parallel_loops_total =
        reg.GetCounter("nestra_pool_parallel_loops_total", "",
                       "Morsel-parallel loops run on the shared pool", false);
    m->pool_tasks_total =
        reg.GetCounter("nestra_pool_tasks_total", "",
                       "Helper tasks submitted to the shared pool", false);
    m->pool_wait_seconds_total = reg.GetCounter(
        "nestra_pool_wait_seconds_total", "",
        "Seconds callers waited for pool helpers to drain", false);

    m->batches_total =
        reg.GetCounter("nestra_batches_total", "",
                       "Non-empty RowBatches produced by operators", false);
    m->adapter_batches_total = reg.GetCounter(
        "nestra_adapter_batches_total", "",
        "Batches produced by the row-at-a-time adapter", false);
    m->join_build_rows_total =
        reg.GetCounter("nestra_join_build_rows_total", "",
                       "Hash-join build-side rows inserted", false);
    m->join_probe_rows_total =
        reg.GetCounter("nestra_join_probe_rows_total", "",
                       "Join probe rows", false);
    m->sort_rows_total = reg.GetCounter("nestra_sort_rows_total", "",
                                        "Rows physically sorted", false);
    return m;
  }();
  return *metrics;
}

}  // namespace telemetry
}  // namespace nestra
