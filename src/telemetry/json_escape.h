#ifndef NESTRA_TELEMETRY_JSON_ESCAPE_H_
#define NESTRA_TELEMETRY_JSON_ESCAPE_H_

#include <cstdio>
#include <sstream>
#include <string>

namespace nestra {
namespace telemetry {
namespace internal {

/// Minimal JSON string-body escaping shared by the telemetry writers
/// (metrics JSON, trace events, slow-query log). Standard-library only.
inline void JsonEscapeTo(const std::string& in, std::ostringstream* oss) {
  for (const char c : in) {
    switch (c) {
      case '"':
        *oss << "\\\"";
        break;
      case '\\':
        *oss << "\\\\";
        break;
      case '\n':
        *oss << "\\n";
        break;
      case '\r':
        *oss << "\\r";
        break;
      case '\t':
        *oss << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *oss << buf;
        } else {
          *oss << c;
        }
    }
  }
}

inline std::string JsonEscaped(const std::string& in) {
  std::ostringstream oss;
  JsonEscapeTo(in, &oss);
  return oss.str();
}

}  // namespace internal
}  // namespace telemetry
}  // namespace nestra

#endif  // NESTRA_TELEMETRY_JSON_ESCAPE_H_
