#include "telemetry/slow_query.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <utility>

#include "telemetry/json_escape.h"
#include "telemetry/metrics.h"

namespace nestra {
namespace telemetry {

namespace {

struct SinkState {
  std::mutex mu;
  std::function<void(const std::string&)> sink;  // empty = default
};

SinkState& State() {
  static SinkState* state = new SinkState();
  return *state;
}

void DefaultSink(const std::string& line) {
  // Serialize whole-line writes: concurrent sessions logging through the
  // append-mode FILE* would otherwise tear lines (fprintf is not atomic for
  // lines longer than the stdio buffer), corrupting the one-JSON-object-
  // per-line contract downstream parsers rely on.
  static std::mutex* write_mu = new std::mutex();
  std::lock_guard<std::mutex> lock(*write_mu);
  const char* path = std::getenv("NESTRA_SLOW_QUERY_LOG");
  if (path != nullptr && path[0] != '\0') {
    std::FILE* f = std::fopen(path, "a");
    if (f != nullptr) {
      std::fprintf(f, "%s\n", line.c_str());
      std::fclose(f);
      return;
    }
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace

std::string SlowQueryJsonLine(const SlowQueryRecord& record) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(3);
  oss << "{\"event\":\"slow_query\",";
  if (!record.session.empty()) {
    oss << "\"session\":\"";
    internal::JsonEscapeTo(record.session, &oss);
    oss << "\",";
  }
  oss << "\"sql\":\"";
  internal::JsonEscapeTo(record.sql, &oss);
  oss << "\",\"total_ms\":" << record.total_ms
      << ",\"join_ms\":" << record.join_ms
      << ",\"nest_select_ms\":" << record.nest_select_ms
      << ",\"rows\":" << record.output_rows
      << ",\"peak_mem_bytes\":" << record.peak_mem_bytes
      << ",\"threads\":" << record.num_threads << ",\"engine\":\""
      << (record.vectorized ? "vectorized" : "row") << "\",\"ok\":"
      << (record.ok ? "true" : "false") << "}";
  return oss.str();
}

void LogSlowQuery(const SlowQueryRecord& record) {
  const std::string line = SlowQueryJsonLine(record);
  if (MetricsEnabled()) {
    // Registered lazily: the counter only exists once a slow query fired.
    static Counter* slow_queries = MetricsRegistry::Global().GetCounter(
        "nestra_slow_queries_total", "",
        "Queries whose wall time exceeded NraOptions::slow_query_ms",
        /*deterministic=*/false);
    slow_queries->Add(1);
  }
  SinkState& state = State();
  std::function<void(const std::string&)> sink;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    sink = state.sink;
  }
  if (sink) {
    // Custom sinks get the same one-writer-at-a-time guarantee as the
    // default file sink. A dedicated mutex (not state.mu) keeps a sink that
    // calls SetSlowQuerySink or LogSlowQuery re-entrantly from deadlocking
    // against sink replacement.
    static std::mutex* call_mu = new std::mutex();
    std::lock_guard<std::mutex> call_lock(*call_mu);
    sink(line);
  } else {
    DefaultSink(line);
  }
}

void SetSlowQuerySink(std::function<void(const std::string&)> sink) {
  SinkState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.sink = std::move(sink);
}

}  // namespace telemetry
}  // namespace nestra
