#ifndef NESTRA_TELEMETRY_METRICS_H_
#define NESTRA_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nestra {
namespace telemetry {

/// \brief Process-wide metrics: monotonic counters, gauges, and fixed-bucket
/// latency histograms, exposed as Prometheus text and JSON.
///
/// Design constraints, in order:
///
///  * **Lock-cheap writes.** A counter update is one relaxed fetch_add on a
///    cache-line-padded shard picked by a thread-local index, so concurrent
///    workers never contend on the same line. Readers merge the shards on
///    snapshot — snapshots are rare, updates are not.
///  * **Off means off.** The whole registry sits behind one process-wide
///    enable flag (a relaxed atomic bool). Disabled, every update is a
///    single load-and-branch; no clocks are read anywhere on behalf of
///    metrics (stage wall-time feeds reuse timestamps their callers already
///    take for other reasons).
///  * **Deterministic counters.** Metrics register with a `deterministic`
///    flag: `true` promises the merged value is identical across
///    `num_threads` settings and row-vs-vectorized engines for the same
///    query sequence (rows, queries, IoSim totals). Timings, pool activity
///    and batch counts are declared `false`. Tests snapshot only the
///    deterministic subset (DeterministicValues) and compare bit-for-bit.
///
/// This library depends only on the standard library so any layer —
/// including common/ (thread pool) — can feed it without a link cycle.
class MetricsRegistry;

/// True when the registry accepts updates. One relaxed atomic load.
bool MetricsEnabled();

/// Turns the registry on or off process-wide. Also turned on implicitly
/// when an at-exit dump is requested via NESTRA_METRICS_JSON /
/// NESTRA_METRICS_PROM (see MetricsRegistry::Global).
void SetMetricsEnabled(bool enabled);

namespace internal {

constexpr int kMetricShards = 16;

/// One cache line per shard; every mutation is a relaxed RMW on the shard
/// owned by the calling thread's slot.
struct alignas(64) MetricShard {
  std::atomic<double> value{0};
};

/// Stable per-thread shard slot in [0, kMetricShards).
int ThisThreadShard();

}  // namespace internal

/// Monotonic counter. Add() is wait-free and contention-free across
/// threads; Value() merges the shards (not linearizable with respect to
/// concurrent Add — callers snapshot quiescent points).
class Counter {
 public:
  void Add(double delta) {
    if (!MetricsEnabled()) return;
    shards_[internal::ThisThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  double Value() const;

  /// Test-only: zeroes every shard (callers quiesce writers first).
  void ResetValue();

 private:
  internal::MetricShard shards_[internal::kMetricShards];
};

/// Point-in-time value. Set/UpdateMax are lock-free; UpdateMax keeps the
/// largest value ever observed (used for peak group counts).
class Gauge {
 public:
  void Set(double value) {
    if (!MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }

  void UpdateMax(double value);

  double Value() const { return value_.load(std::memory_order_relaxed); }

  void ResetValue() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram (Prometheus semantics: cumulative `le` buckets
/// plus +Inf, with _sum and _count). Observe() is two relaxed RMWs plus a
/// bucket increment on this thread's shard.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  /// Per-bucket cumulative counts, merged; last entry is the +Inf bucket
  /// (== Count()).
  std::vector<int64_t> CumulativeCounts() const;
  const std::vector<double>& bounds() const { return bounds_; }
  double Sum() const;
  int64_t Count() const;

  void ResetValue();

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<int64_t>> buckets;  // bounds_.size() + 1
    std::atomic<double> sum{0};
  };

  std::vector<double> bounds_;  // strictly increasing upper bounds
  std::vector<Shard> shards_;
};

/// \brief Registration-ordered metric registry with a process-global
/// instance. Get*() registers on first use and returns the same object for
/// the same (name, labels) after that; returned pointers live for the
/// registry's lifetime, so hot paths cache them.
class MetricsRegistry {
 public:
  /// The process-wide registry. First access also reads the at-exit dump
  /// environment: NESTRA_METRICS_JSON / NESTRA_METRICS_PROM name files that
  /// receive DumpMetricsJson / DumpMetricsPrometheus when the process
  /// exits, and their presence enables the registry.
  static MetricsRegistry& Global();

  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// `labels` is either empty or a pre-rendered Prometheus label set like
  /// `phase="nest"` (the registry does not parse it). `deterministic`
  /// declares the cross-thread/cross-engine bit-identity contract above.
  Counter* GetCounter(const std::string& name, const std::string& labels,
                      const std::string& help, bool deterministic);
  Gauge* GetGauge(const std::string& name, const std::string& labels,
                  const std::string& help, bool deterministic);
  Histogram* GetHistogram(const std::string& name, const std::string& labels,
                          const std::string& help,
                          std::vector<double> bounds);

  /// Prometheus text exposition (# HELP / # TYPE, _bucket/_sum/_count for
  /// histograms).
  std::string ToPrometheusText() const;

  /// JSON object, schema "nestra-metrics-v1".
  std::string ToJson() const;

  /// Sample name (`name{labels}`) -> merged value for every metric
  /// registered `deterministic` (counters and gauges). The unit of the
  /// telemetry determinism tests.
  std::map<std::string, double> DeterministicValues() const;

  /// Test-only: zeroes every metric's value (registrations survive).
  void ResetValues();

 private:
  struct Entry;
  Entry* FindOrCreate(const std::string& name, const std::string& labels,
                      const std::string& help, int kind, bool deterministic,
                      std::vector<double> bounds);

  mutable std::mutex mu_;  // guards registration and iteration, not updates
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Shorthands for the global registry's expositions.
std::string DumpMetricsPrometheus();
std::string DumpMetricsJson();

/// Renders one label pair `key="value"`, escaping the value per the
/// Prometheus text exposition format (backslash, double quote, and newline
/// become \\, \", and \n). Use for any label value that is not a
/// compile-time literal — the registry stores label sets pre-rendered and
/// never re-escapes them.
std::string PrometheusLabel(const std::string& key, const std::string& value);

}  // namespace telemetry
}  // namespace nestra

#endif  // NESTRA_TELEMETRY_METRICS_H_
