#include "telemetry/trace.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <utility>
#include <vector>

#include "telemetry/json_escape.h"

namespace nestra {
namespace telemetry {

namespace {

using Clock = std::chrono::steady_clock;

struct TraceEvent {
  const char* category;
  std::string name;
  double ts_us;
  double dur_us;
  int64_t rows;        // -1 = omit
  const char* phase;   // nullptr = omit
};

/// Per-thread span buffer. Heap-allocated and registered once per thread,
/// never freed: events must survive the thread (pool workers park between
/// queries, and a worker could in principle exit before the flush).
struct ThreadBuffer {
  std::mutex mu;  // uncontended except against Flush/Clear
  int tid = 0;
  std::string name;
  std::vector<TraceEvent> events;
};

std::atomic<bool> g_trace_enabled{false};

struct TraceState {
  std::mutex mu;
  std::string path;
  Clock::time_point origin;
  bool atexit_registered = false;
  std::vector<ThreadBuffer*> buffers;  // registration order == tid order
};

TraceState& State() {
  static TraceState* state = new TraceState();  // leaked, like the pool
  return *state;
}

ThreadBuffer& ThisThreadBuffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto* b = new ThreadBuffer();
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    b->tid = static_cast<int>(state.buffers.size());
    b->name = "thread-" + std::to_string(b->tid);
    state.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

// Auto-install from the environment at load time, so any binary can be
// traced without code changes: NESTRA_TRACE_JSON=/tmp/trace.json ./bench_x
struct TraceEnvInit {
  TraceEnvInit() {
    const char* path = std::getenv("NESTRA_TRACE_JSON");
    if (path != nullptr && path[0] != '\0') InstallTraceSink(path);
  }
};
TraceEnvInit g_trace_env_init;

void AppendEventJson(const TraceEvent& e, int tid, std::ostringstream* oss) {
  *oss << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ",\"cat\":\""
       << e.category << "\",\"name\":\"";
  internal::JsonEscapeTo(e.name, oss);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\",\"ts\":%.3f,\"dur\":%.3f", e.ts_us,
                e.dur_us);
  *oss << buf;
  if (e.rows >= 0 || e.phase != nullptr) {
    *oss << ",\"args\":{";
    if (e.rows >= 0) *oss << "\"rows\":" << e.rows;
    if (e.phase != nullptr) {
      if (e.rows >= 0) *oss << ",";
      *oss << "\"phase\":\"" << e.phase << "\"";
    }
    *oss << "}";
  }
  *oss << "}";
}

}  // namespace

bool TraceEnabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void InstallTraceSink(const std::string& path) {
  TraceState& state = State();
  bool clear = false;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (g_trace_enabled.load(std::memory_order_relaxed) &&
        state.path == path) {
      return;  // idempotent per-query re-install from NraOptions::trace_path
    }
    clear = state.path != path && !state.path.empty();
    state.path = path;
    state.origin = Clock::now();
    if (!state.atexit_registered) {
      state.atexit_registered = true;
      std::atexit(&FlushTrace);
    }
  }
  if (clear) {
    std::lock_guard<std::mutex> lock(state.mu);
    for (ThreadBuffer* b : state.buffers) {
      std::lock_guard<std::mutex> buffer_lock(b->mu);
      b->events.clear();
    }
  }
  g_trace_enabled.store(true, std::memory_order_relaxed);
}

void UninstallTraceSink() {
  g_trace_enabled.store(false, std::memory_order_relaxed);
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.path.clear();
  for (ThreadBuffer* b : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(b->mu);
    b->events.clear();
  }
}

double TraceTimeUs(Clock::time_point tp) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return std::chrono::duration<double, std::micro>(tp - state.origin).count();
}

void SetCurrentThreadName(const std::string& name) {
  ThreadBuffer& buffer = ThisThreadBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.name = name;
}

void RecordCompleteEvent(const char* category, const std::string& name,
                         double ts_us, double dur_us, int64_t rows,
                         const char* phase_label) {
  if (!TraceEnabled()) return;
  ThreadBuffer& buffer = ThisThreadBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(
      {category, name, ts_us, dur_us, rows, phase_label});
}

void FlushTrace() {
  TraceState& state = State();
  std::string path;
  std::vector<ThreadBuffer*> buffers;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.path.empty()) return;
    path = state.path;
    buffers = state.buffers;
  }
  std::ostringstream oss;
  oss << "{\"traceEvents\":[";
  bool first = true;
  for (ThreadBuffer* b : buffers) {
    std::lock_guard<std::mutex> buffer_lock(b->mu);
    if (b->events.empty()) continue;
    oss << (first ? "\n" : ",\n")
        << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << b->tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    internal::JsonEscapeTo(b->name, &oss);
    oss << "\"}}";
    first = false;
    for (const TraceEvent& e : b->events) {
      oss << ",\n";
      AppendEventJson(e, b->tid, &oss);
    }
  }
  oss << "\n]}\n";
  const std::string text = oss.str();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

TraceSpan::TraceSpan(const char* category, std::string name) {
  if (!TraceEnabled()) return;
  active_ = true;
  category_ = category;
  name_ = std::move(name);
  start_ = Clock::now();
}

void TraceSpan::End() {
  if (!active_) return;
  active_ = false;
  const Clock::time_point end = Clock::now();
  const double dur_us =
      std::chrono::duration<double, std::micro>(end - start_).count();
  RecordCompleteEvent(category_, name_, TraceTimeUs(start_), dur_us, rows_,
                      nullptr);
}

TraceSpan::~TraceSpan() { End(); }

}  // namespace telemetry
}  // namespace nestra
