#include "telemetry/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "telemetry/json_escape.h"

namespace nestra {
namespace telemetry {

namespace {

std::atomic<bool> g_metrics_enabled{false};

// %.17g round-trips doubles exactly while printing integral values (the
// common case for counters) without a trailing mantissa.
std::string FormatNumber(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace internal {

int ThisThreadShard() {
  // Threads take sequential slots mod kMetricShards. Slots are stable for a
  // thread's lifetime, so a thread always hits the same cache line.
  static std::atomic<int> next{0};
  thread_local const int slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

}  // namespace internal

double Counter::Value() const {
  double total = 0;
  for (const internal::MetricShard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::ResetValue() {
  for (internal::MetricShard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void Gauge::UpdateMax(double value) {
  if (!MetricsEnabled()) return;
  double cur = value_.load(std::memory_order_relaxed);
  while (value > cur &&
         !value_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      shards_(internal::kMetricShards) {
  for (Shard& shard : shards_) {
    shard.buckets = std::vector<std::atomic<int64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Observe(double value) {
  if (!MetricsEnabled()) return;
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  Shard& shard = shards_[static_cast<size_t>(internal::ThisThreadShard())];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::CumulativeCounts() const {
  std::vector<int64_t> counts(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < counts.size(); ++i) {
      counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  // Per-bucket -> cumulative (Prometheus `le` semantics).
  for (size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];
  return counts;
}

double Histogram::Sum() const {
  double total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    for (const std::atomic<int64_t>& b : shard.buckets) {
      total += b.load(std::memory_order_relaxed);
    }
  }
  return total;
}

void Histogram::ResetValue() {
  for (Shard& shard : shards_) {
    for (std::atomic<int64_t>& b : shard.buckets) {
      b.store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

struct MetricsRegistry::Entry {
  enum Kind { kCounter = 0, kGauge = 1, kHistogram = 2 };

  std::string name;
  std::string labels;  // pre-rendered, e.g. `phase="nest"`; may be empty
  std::string help;
  int kind = kCounter;
  bool deterministic = false;
  Counter counter;
  Gauge gauge;
  std::unique_ptr<Histogram> histogram;

  std::string SampleName() const {
    return labels.empty() ? name : name + "{" + labels + "}";
  }
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked: worker threads may still update counters during static
  // destruction.
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    const char* json = std::getenv("NESTRA_METRICS_JSON");
    const char* prom = std::getenv("NESTRA_METRICS_PROM");
    if ((json != nullptr && json[0] != '\0') ||
        (prom != nullptr && prom[0] != '\0')) {
      SetMetricsEnabled(true);
      std::atexit([] {
        auto write = [](const char* env, const std::string& text) {
          const char* path = std::getenv(env);
          if (path == nullptr || path[0] == '\0') return;
          std::FILE* f = std::fopen(path, "w");
          if (f == nullptr) return;
          std::fwrite(text.data(), 1, text.size(), f);
          std::fclose(f);
        };
        write("NESTRA_METRICS_JSON", DumpMetricsJson());
        write("NESTRA_METRICS_PROM", DumpMetricsPrometheus());
      });
    }
    return r;
  }();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    const std::string& name, const std::string& labels,
    const std::string& help, int kind, bool deterministic,
    std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Entry>& e : entries_) {
    if (e->name == name && e->labels == labels) return e.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->help = help;
  entry->kind = kind;
  entry->deterministic = deterministic;
  if (kind == Entry::kHistogram) {
    entry->histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels,
                                     const std::string& help,
                                     bool deterministic) {
  return &FindOrCreate(name, labels, help, Entry::kCounter, deterministic, {})
              ->counter;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& labels,
                                 const std::string& help,
                                 bool deterministic) {
  return &FindOrCreate(name, labels, help, Entry::kGauge, deterministic, {})
              ->gauge;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& labels,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  return FindOrCreate(name, labels, help, Entry::kHistogram,
                      /*deterministic=*/false, std::move(bounds))
      ->histogram.get();
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream oss;
  std::string last_family;
  for (const std::unique_ptr<Entry>& e : entries_) {
    if (e->name != last_family) {
      last_family = e->name;
      oss << "# HELP " << e->name << " " << e->help << "\n";
      oss << "# TYPE " << e->name << " "
          << (e->kind == Entry::kCounter
                  ? "counter"
                  : e->kind == Entry::kGauge ? "gauge" : "histogram")
          << "\n";
    }
    switch (e->kind) {
      case Entry::kCounter:
        oss << e->SampleName() << " " << FormatNumber(e->counter.Value())
            << "\n";
        break;
      case Entry::kGauge:
        oss << e->SampleName() << " " << FormatNumber(e->gauge.Value())
            << "\n";
        break;
      case Entry::kHistogram: {
        const Histogram& h = *e->histogram;
        const std::vector<int64_t> counts = h.CumulativeCounts();
        const std::string comma = e->labels.empty() ? "" : ",";
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          oss << e->name << "_bucket{" << e->labels << comma
              << "le=\"" << FormatNumber(h.bounds()[i]) << "\"} " << counts[i]
              << "\n";
        }
        oss << e->name << "_bucket{" << e->labels << comma << "le=\"+Inf\"} "
            << counts.back() << "\n";
        oss << e->name << "_sum" << (e->labels.empty() ? "" : "{" + e->labels + "}")
            << " " << FormatNumber(h.Sum()) << "\n";
        oss << e->name << "_count"
            << (e->labels.empty() ? "" : "{" + e->labels + "}") << " "
            << h.Count() << "\n";
        break;
      }
    }
  }
  return oss.str();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream oss;
  oss << "{\"schema\":\"nestra-metrics-v1\",\"metrics\":[";
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = *entries_[i];
    if (i > 0) oss << ",";
    oss << "{\"name\":\"";
    internal::JsonEscapeTo(e.SampleName(), &oss);
    oss << "\",\"kind\":\""
        << (e.kind == Entry::kCounter
                ? "counter"
                : e.kind == Entry::kGauge ? "gauge" : "histogram")
        << "\",\"deterministic\":" << (e.deterministic ? "true" : "false");
    switch (e.kind) {
      case Entry::kCounter:
        oss << ",\"value\":" << FormatNumber(e.counter.Value());
        break;
      case Entry::kGauge:
        oss << ",\"value\":" << FormatNumber(e.gauge.Value());
        break;
      case Entry::kHistogram: {
        const Histogram& h = *e.histogram;
        const std::vector<int64_t> counts = h.CumulativeCounts();
        oss << ",\"buckets\":[";
        for (size_t b = 0; b < h.bounds().size(); ++b) {
          if (b > 0) oss << ",";
          oss << "{\"le\":" << FormatNumber(h.bounds()[b])
              << ",\"count\":" << counts[b] << "}";
        }
        oss << "],\"sum\":" << FormatNumber(h.Sum())
            << ",\"count\":" << h.Count();
        break;
      }
    }
    oss << "}";
  }
  oss << "]}";
  return oss.str();
}

std::map<std::string, double> MetricsRegistry::DeterministicValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> values;
  for (const std::unique_ptr<Entry>& e : entries_) {
    if (!e->deterministic) continue;
    if (e->kind == Entry::kCounter) {
      values[e->SampleName()] = e->counter.Value();
    } else if (e->kind == Entry::kGauge) {
      values[e->SampleName()] = e->gauge.Value();
    }
  }
  return values;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Entry>& e : entries_) {
    e->counter.ResetValue();
    e->gauge.ResetValue();
    if (e->histogram != nullptr) e->histogram->ResetValue();
  }
}

std::string DumpMetricsPrometheus() {
  return MetricsRegistry::Global().ToPrometheusText();
}

std::string PrometheusLabel(const std::string& key, const std::string& value) {
  std::string out = key;
  out += "=\"";
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

std::string DumpMetricsJson() { return MetricsRegistry::Global().ToJson(); }

}  // namespace telemetry
}  // namespace nestra
