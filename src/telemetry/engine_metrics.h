#ifndef NESTRA_TELEMETRY_ENGINE_METRICS_H_
#define NESTRA_TELEMETRY_ENGINE_METRICS_H_

#include "telemetry/metrics.h"

namespace nestra {
namespace telemetry {

/// Number of QueryPhase values (exec/operator_stats.h). The phase-labelled
/// families below are indexed by static_cast<int>(QueryPhase); the label
/// strings mirror QueryPhaseLabel() (telemetry sits below exec in the link
/// order, so the labels are duplicated here and pinned by a test).
constexpr int kNumPhases = 5;
extern const char* const kPhaseLabels[kNumPhases];

/// \brief Pre-registered handles for every process-lifetime metric the
/// engine feeds, so hot paths pay one pointer indirection instead of a
/// registry lookup. Obtain via Metrics(); handles live forever.
///
/// `deterministic` metrics (see MetricsRegistry) carry counts that are
/// bit-identical across num_threads and row/vectorized engines for the
/// same query sequence; timing-, pool- and batch-shaped metrics are not.
struct EngineMetrics {
  // Query lifecycle (executor).
  Counter* queries_total;             // det
  Counter* query_errors_total;        // det
  Counter* rows_out_total;            // det
  Counter* intermediate_rows_total;   // det
  Counter* plans_verified_total;      // det
  Counter* verify_failures_total;     // det
  Counter* pipelined_queries_total;   // det
  Counter* pipeline_tasks_total;      // det
  Counter* mem_limit_exceeded_total;  // det
  Histogram* query_ms;                // latency distribution
  Histogram* query_peak_mem_bytes;    // det (logical bytes, see
                                      // common/memory_tracker.h)

  // Statement lifecycle phases (SQL entry points + the server session
  // layer). Prepared-statement re-execution must leave parsed/bound/
  // prepared flat while prepared_executions_total grows — the observable
  // proof that EXECUTE skips parse+plan+verify.
  Counter* statements_parsed_total;    // det
  Counter* statements_bound_total;     // det
  Counter* statements_prepared_total;  // det
  Counter* prepared_executions_total;  // det

  // Per-phase stage accounting (§5.2 split), fed by StageTimer.
  Counter* phase_rows_total[kNumPhases];     // det
  Counter* phase_stages_total[kNumPhases];   // det
  Counter* phase_seconds_total[kNumPhases];  // wall time, non-det
  Gauge* nest_groups_peak;                   // det (max nest-stage groups)

  // IoSim page accounting (executor-sampled deltas). Totals are exact under
  // concurrency (relaxed atomics, every access charged once).
  Counter* io_hits_total;           // det
  Counter* io_seq_misses_total;     // det
  Counter* io_random_misses_total;  // det
  Counter* io_sim_millis_total;     // simulated latency, non-det (fp order)

  // Zone-map pruning on base scans (cost_based planner). Granule counts are
  // decided from load-time stats, so they are identical across engines and
  // thread counts for the same query sequence.
  Counter* zone_granules_scanned_total;  // det
  Counter* zone_granules_pruned_total;   // det

  // Shared thread pool (executor-sampled deltas of GlobalPoolStats).
  Counter* pool_parallel_loops_total;  // non-det (depends on num_threads)
  Counter* pool_tasks_total;           // non-det
  Counter* pool_wait_seconds_total;    // non-det

  // Operator-tree roll-ups (flushed per stage from OperatorStats).
  Counter* batches_total;          // non-det (row engine produces none)
  Counter* adapter_batches_total;  // non-det
  Counter* join_build_rows_total;  // non-det (fused scan paths skip trees)
  Counter* join_probe_rows_total;  // non-det
  Counter* sort_rows_total;        // non-det
};

/// The lazily-registered global handles.
const EngineMetrics& Metrics();

}  // namespace telemetry
}  // namespace nestra

#endif  // NESTRA_TELEMETRY_ENGINE_METRICS_H_
