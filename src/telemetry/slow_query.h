#ifndef NESTRA_TELEMETRY_SLOW_QUERY_H_
#define NESTRA_TELEMETRY_SLOW_QUERY_H_

#include <cstdint>
#include <functional>
#include <string>

namespace nestra {
namespace telemetry {

/// \brief One slow-query observation, emitted by the executor when a query's
/// wall time exceeds NraOptions::slow_query_ms.
struct SlowQueryRecord {
  std::string sql;
  double total_ms = 0;
  double join_ms = 0;         ///< unnest-join phase (NraStats::join_seconds)
  double nest_select_ms = 0;  ///< nest + linking-selection phase
  int64_t output_rows = 0;
  /// Deterministic peak accounted bytes (NraStats::peak_mem_bytes); 0 when
  /// the query failed before any stage folded.
  int64_t peak_mem_bytes = 0;
  int num_threads = 1;
  bool vectorized = false;
  bool ok = true;  ///< false when the query errored after the threshold
  /// Session label ("s3") when the query ran through a server Session;
  /// empty for direct library callers (then the JSON omits the field, so
  /// pre-session log consumers see byte-identical lines).
  std::string session;
};

/// The record as one line of structured JSON (no trailing newline):
/// {"event":"slow_query","session":...,"sql":...,"total_ms":...,
///  "join_ms":...,"nest_select_ms":...,"rows":...,"peak_mem_bytes":...,
///  "threads":...,"engine":"row|vectorized","ok":true}
/// `session` appears only when set; every other field is always present.
/// The line schema is documented for external consumers in bench/README.md
/// and pinned by tests/telemetry_test.cc.
std::string SlowQueryJsonLine(const SlowQueryRecord& record);

/// Routes the record to the configured sink and bumps the
/// nestra_slow_queries_total counter (when metrics are enabled).
void LogSlowQuery(const SlowQueryRecord& record);

/// Replaces the sink the JSON lines go to. An empty function restores the
/// default: append to the file named by NESTRA_SLOW_QUERY_LOG, else stderr.
void SetSlowQuerySink(std::function<void(const std::string& json_line)> sink);

}  // namespace telemetry
}  // namespace nestra

#endif  // NESTRA_TELEMETRY_SLOW_QUERY_H_
