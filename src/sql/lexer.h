#ifndef NESTRA_SQL_LEXER_H_
#define NESTRA_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace nestra {

/// \brief Token kinds for the SQL subset. Keywords are case-insensitive and
/// get their own kinds; everything else that looks like a word is kIdent.
enum class TokenKind {
  kEof,
  kIdent,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,  // single-quoted; also used for date literals
  kParam,          // $n prepared-statement parameter (int_value = n, 1-based)
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,   // multiplication or SELECT * / COUNT(*)
  kPlus,
  kMinus,
  kSlash,
  kEq,    // =
  kNe,    // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  // Keywords.
  kSelect,
  kDistinct,
  kFrom,
  kWhere,
  kAs,
  kAnd,
  kOr,
  kNot,
  kIn,
  kExists,
  kAll,
  kAny,
  kSome,
  kIs,
  kNull,
  kBetween,
  kOrder,
  kBy,
  kAsc,
  kDesc,
  kLimit,
  kGroup,
  kHaving,
  kUnion,
  kIntersect,
  kExcept,
};

const char* TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;    // identifier spelling (original case) or literal text
  int64_t int_value = 0;
  double float_value = 0;
  int position = 0;  // byte offset in the input, for error messages
};

/// Tokenizes `sql`; returns ParseError with position info on bad input.
/// The token list always ends with a kEof token.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace nestra

#endif  // NESTRA_SQL_LEXER_H_
