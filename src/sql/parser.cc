#include "sql/parser.h"

#include <cctype>

#include "sql/lexer.h"

namespace nestra {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<AstSelectPtr> ParseSingle() {
    NESTRA_ASSIGN_OR_RETURN(AstSelectPtr sel, ParseSelectStmt());
    if (!Check(TokenKind::kEof)) {
      return Error("trailing input after statement");
    }
    return sel;
  }

  Result<AstStatementPtr> ParseCompound() {
    auto stmt = std::make_unique<AstStatement>();
    NESTRA_ASSIGN_OR_RETURN(AstSelectPtr first, ParseSelectStmt());
    stmt->selects.push_back(std::move(first));
    while (Check(TokenKind::kUnion) || Check(TokenKind::kIntersect) ||
           Check(TokenKind::kExcept)) {
      AstStatement::SetOp op;
      if (Match(TokenKind::kUnion)) {
        op = Match(TokenKind::kAll) ? AstStatement::SetOp::kUnionAll
                                    : AstStatement::SetOp::kUnion;
      } else if (Match(TokenKind::kIntersect)) {
        op = AstStatement::SetOp::kIntersect;
      } else {
        Advance();  // EXCEPT
        op = AstStatement::SetOp::kExcept;
      }
      NESTRA_ASSIGN_OR_RETURN(AstSelectPtr next, ParseSelectStmt());
      stmt->ops.push_back(op);
      stmt->selects.push_back(std::move(next));
    }
    if (!Check(TokenKind::kEof)) {
      return Error("trailing input after statement");
    }
    if (stmt->IsCompound()) {
      for (const AstSelectPtr& sel : stmt->selects) {
        if (!sel->order_by.empty() || sel->limit >= 0) {
          return Status::ParseError(
              "ORDER BY / LIMIT are not supported in compound (set "
              "operation) statements");
        }
      }
    }
    return stmt;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Peek2() const {
    return tokens_[pos_ + 1 < tokens_.size() ? pos_ + 1 : pos_];
  }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " (near position " +
                              std::to_string(Peek().position) + ", got " +
                              TokenKindToString(Peek().kind) + ")");
  }

  Status Expect(TokenKind kind, const char* what) {
    if (Match(kind)) return Status::OK();
    return Error(std::string("expected ") + what);
  }

  // Parses "agg(col)" / "count(*)"; the caller verified the lookahead.
  Result<std::pair<LinkAgg, std::string>> ParseAggCall() {
    LinkAgg func;
    if (!AggNameToFunc(Advance().text, &func)) {
      return Error("expected an aggregate function name");
    }
    NESTRA_RETURN_NOT_OK(Expect(TokenKind::kLParen, "("));
    std::string column;
    if (Match(TokenKind::kStar)) {
      if (func != LinkAgg::kCount) {
        return Error("'*' argument is only valid for count()");
      }
      func = LinkAgg::kCountStar;
    } else {
      NESTRA_ASSIGN_OR_RETURN(column, ParseColumnName());
    }
    NESTRA_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
    return std::make_pair(func, std::move(column));
  }

  bool AtAggCall() {
    LinkAgg ignored;
    return Check(TokenKind::kIdent) && Peek2().kind == TokenKind::kLParen &&
           AggNameToFunc(Peek().text, &ignored);
  }

  Result<AstSelectItem> ParseSelectItem() {
    AstSelectItem item;
    if (AtAggCall()) {
      NESTRA_ASSIGN_OR_RETURN(auto call, ParseAggCall());
      item.is_agg = true;
      item.agg = call.first;
      item.column = std::move(call.second);
      return item;
    }
    NESTRA_ASSIGN_OR_RETURN(item.column, ParseColumnName());
    return item;
  }

  Result<std::string> ParseColumnName() {
    if (!Check(TokenKind::kIdent)) return Error("expected column name");
    std::string name = Advance().text;
    if (Match(TokenKind::kDot)) {
      if (!Check(TokenKind::kIdent)) {
        return Error("expected column name after '.'");
      }
      name += "." + Advance().text;
    }
    return name;
  }

  static bool AggNameToFunc(const std::string& ident, LinkAgg* out) {
    std::string lower = ident;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == "count") {
      *out = LinkAgg::kCount;
    } else if (lower == "sum") {
      *out = LinkAgg::kSum;
    } else if (lower == "min") {
      *out = LinkAgg::kMin;
    } else if (lower == "max") {
      *out = LinkAgg::kMax;
    } else if (lower == "avg") {
      *out = LinkAgg::kAvg;
    } else {
      return false;
    }
    return true;
  }

  Result<AstSelectPtr> ParseSelectStmt() {
    NESTRA_RETURN_NOT_OK(Expect(TokenKind::kSelect, "SELECT"));
    auto sel = std::make_unique<AstSelect>();
    sel->distinct = Match(TokenKind::kDistinct);
    if (Match(TokenKind::kStar)) {
      sel->select_star = true;
    } else {
      do {
        NESTRA_ASSIGN_OR_RETURN(AstSelectItem item, ParseSelectItem());
        sel->items.push_back(std::move(item));
      } while (Match(TokenKind::kComma));
    }
    NESTRA_RETURN_NOT_OK(Expect(TokenKind::kFrom, "FROM"));
    do {
      if (!Check(TokenKind::kIdent)) return Error("expected table name");
      AstTableRef ref;
      ref.table = Advance().text;
      if (Match(TokenKind::kAs)) {
        if (!Check(TokenKind::kIdent)) return Error("expected alias after AS");
        ref.alias = Advance().text;
      } else if (Check(TokenKind::kIdent)) {
        ref.alias = Advance().text;
      }
      sel->from.push_back(std::move(ref));
    } while (Match(TokenKind::kComma));
    if (Match(TokenKind::kWhere)) {
      NESTRA_ASSIGN_OR_RETURN(sel->where, ParseOr());
    }
    if (Match(TokenKind::kGroup)) {
      NESTRA_RETURN_NOT_OK(Expect(TokenKind::kBy, "BY"));
      do {
        NESTRA_ASSIGN_OR_RETURN(std::string col, ParseColumnName());
        sel->group_by.push_back(std::move(col));
      } while (Match(TokenKind::kComma));
    }
    if (Match(TokenKind::kHaving)) {
      // HAVING conditions may use aggregate operands.
      in_having_ = true;
      Result<AstCondPtr> having = ParseOr();
      in_having_ = false;
      if (!having.ok()) return having.status();
      sel->having = std::move(having).ValueOrDie();
    }
    if (Match(TokenKind::kOrder)) {
      NESTRA_RETURN_NOT_OK(Expect(TokenKind::kBy, "BY"));
      do {
        AstOrderItem item;
        NESTRA_ASSIGN_OR_RETURN(item.column, ParseColumnName());
        if (Match(TokenKind::kDesc)) {
          item.ascending = false;
        } else {
          Match(TokenKind::kAsc);  // optional
        }
        sel->order_by.push_back(std::move(item));
      } while (Match(TokenKind::kComma));
    }
    if (Match(TokenKind::kLimit)) {
      if (!Check(TokenKind::kIntLiteral)) {
        return Error("expected integer after LIMIT");
      }
      sel->limit = Advance().int_value;
      if (sel->limit < 0) return Error("LIMIT must be non-negative");
    }
    return sel;
  }

  Result<AstCondPtr> ParseOr() {
    NESTRA_ASSIGN_OR_RETURN(AstCondPtr first, ParseAnd());
    if (!Check(TokenKind::kOr)) return first;
    auto node = std::make_unique<AstCond>();
    node->kind = AstCond::Kind::kOr;
    node->children.push_back(std::move(first));
    while (Match(TokenKind::kOr)) {
      NESTRA_ASSIGN_OR_RETURN(AstCondPtr next, ParseAnd());
      node->children.push_back(std::move(next));
    }
    return node;
  }

  Result<AstCondPtr> ParseAnd() {
    NESTRA_ASSIGN_OR_RETURN(AstCondPtr first, ParseUnary());
    if (!Check(TokenKind::kAnd)) return first;
    auto node = std::make_unique<AstCond>();
    node->kind = AstCond::Kind::kAnd;
    node->children.push_back(std::move(first));
    while (Match(TokenKind::kAnd)) {
      NESTRA_ASSIGN_OR_RETURN(AstCondPtr next, ParseUnary());
      node->children.push_back(std::move(next));
    }
    return node;
  }

  Result<AstCondPtr> ParseUnary() {
    if (Check(TokenKind::kNot) && Peek2().kind != TokenKind::kExists) {
      Advance();
      NESTRA_ASSIGN_OR_RETURN(AstCondPtr child, ParseUnary());
      auto node = std::make_unique<AstCond>();
      node->kind = AstCond::Kind::kNot;
      node->children.push_back(std::move(child));
      return node;
    }
    return ParseAtom();
  }

  Result<AstCondPtr> ParseAtom() {
    // [NOT] EXISTS (select)
    if (Check(TokenKind::kExists) ||
        (Check(TokenKind::kNot) && Peek2().kind == TokenKind::kExists)) {
      const bool negated = Match(TokenKind::kNot);
      NESTRA_RETURN_NOT_OK(Expect(TokenKind::kExists, "EXISTS"));
      NESTRA_RETURN_NOT_OK(Expect(TokenKind::kLParen, "("));
      NESTRA_ASSIGN_OR_RETURN(AstSelectPtr sub, ParseSelectStmt());
      NESTRA_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
      auto node = std::make_unique<AstCond>();
      node->kind = AstCond::Kind::kExistsSubquery;
      node->negated = negated;
      node->subquery = std::move(sub);
      return node;
    }
    // '(' opens either a boolean group ("(a = 1 OR b = 2) AND ...") or a
    // parenthesized scalar ("(a + 1) * 2 > 4"). Try the boolean reading
    // first and backtrack to the scalar grammar if it does not parse.
    if (Check(TokenKind::kLParen) && Peek2().kind != TokenKind::kSelect) {
      const size_t saved = pos_;
      Advance();
      Result<AstCondPtr> inner = ParseOr();
      if (inner.ok() && Match(TokenKind::kRParen)) {
        return std::move(inner).ValueOrDie();
      }
      pos_ = saved;  // fall through: parse as a scalar comparison
    }

    NESTRA_ASSIGN_OR_RETURN(AstOperand lhs, ParseOperand());

    // lhs IS [NOT] NULL
    if (Match(TokenKind::kIs)) {
      const bool negated = Match(TokenKind::kNot);
      NESTRA_RETURN_NOT_OK(Expect(TokenKind::kNull, "NULL"));
      auto node = std::make_unique<AstCond>();
      node->kind = AstCond::Kind::kIsNull;
      node->negated = negated;
      node->lhs = std::move(lhs);
      return node;
    }

    // lhs [NOT] IN (select)  |  lhs [NOT] IN (value, ...)
    if (Check(TokenKind::kIn) ||
        (Check(TokenKind::kNot) && Peek2().kind == TokenKind::kIn)) {
      const bool negated = Match(TokenKind::kNot);
      NESTRA_RETURN_NOT_OK(Expect(TokenKind::kIn, "IN"));
      NESTRA_RETURN_NOT_OK(Expect(TokenKind::kLParen, "("));
      if (Check(TokenKind::kSelect)) {
        NESTRA_ASSIGN_OR_RETURN(AstSelectPtr sub, ParseSelectStmt());
        NESTRA_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
        auto node = std::make_unique<AstCond>();
        node->kind = AstCond::Kind::kInSubquery;
        node->negated = negated;
        node->lhs = std::move(lhs);
        node->subquery = std::move(sub);
        return node;
      }
      // Value list: desugar `x IN (a, b)` to `x = a OR x = b` (and wrap in
      // NOT for the negated form). Kleene logic keeps the NULL semantics
      // right: `x NOT IN (1, null)` stays UNKNOWN-or-false, never true.
      auto disjunction = std::make_unique<AstCond>();
      disjunction->kind = AstCond::Kind::kOr;
      do {
        NESTRA_ASSIGN_OR_RETURN(AstOperand value, ParseOperand());
        auto eq = std::make_unique<AstCond>();
        eq->kind = AstCond::Kind::kCompare;
        eq->op = CmpOp::kEq;
        eq->lhs = lhs;
        eq->rhs = std::move(value);
        disjunction->children.push_back(std::move(eq));
      } while (Match(TokenKind::kComma));
      NESTRA_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
      if (disjunction->children.size() == 1) {
        AstCondPtr single = std::move(disjunction->children[0]);
        disjunction = std::move(single);
      }
      if (!negated) return disjunction;
      auto node = std::make_unique<AstCond>();
      node->kind = AstCond::Kind::kNot;
      node->children.push_back(std::move(disjunction));
      return node;
    }

    // lhs BETWEEN a AND b -> lhs >= a AND lhs <= b
    if (Match(TokenKind::kBetween)) {
      NESTRA_ASSIGN_OR_RETURN(AstOperand lo, ParseOperand());
      NESTRA_RETURN_NOT_OK(Expect(TokenKind::kAnd, "AND"));
      NESTRA_ASSIGN_OR_RETURN(AstOperand hi, ParseOperand());
      auto ge = std::make_unique<AstCond>();
      ge->kind = AstCond::Kind::kCompare;
      ge->op = CmpOp::kGe;
      ge->lhs = lhs;
      ge->rhs = std::move(lo);
      auto le = std::make_unique<AstCond>();
      le->kind = AstCond::Kind::kCompare;
      le->op = CmpOp::kLe;
      le->lhs = std::move(lhs);
      le->rhs = std::move(hi);
      auto node = std::make_unique<AstCond>();
      node->kind = AstCond::Kind::kAnd;
      node->children.push_back(std::move(ge));
      node->children.push_back(std::move(le));
      return node;
    }

    // Comparison operator.
    CmpOp op;
    if (Match(TokenKind::kEq)) {
      op = CmpOp::kEq;
    } else if (Match(TokenKind::kNe)) {
      op = CmpOp::kNe;
    } else if (Match(TokenKind::kLt)) {
      op = CmpOp::kLt;
    } else if (Match(TokenKind::kLe)) {
      op = CmpOp::kLe;
    } else if (Match(TokenKind::kGt)) {
      op = CmpOp::kGt;
    } else if (Match(TokenKind::kGe)) {
      op = CmpOp::kGe;
    } else {
      return Error("expected comparison operator, IS, IN or BETWEEN");
    }

    // cmp ALL|ANY|SOME (select)
    if (Check(TokenKind::kAll) || Check(TokenKind::kAny) ||
        Check(TokenKind::kSome)) {
      const Quantifier quant =
          Check(TokenKind::kAll) ? Quantifier::kAll : Quantifier::kSome;
      Advance();
      NESTRA_RETURN_NOT_OK(Expect(TokenKind::kLParen, "("));
      NESTRA_ASSIGN_OR_RETURN(AstSelectPtr sub, ParseSelectStmt());
      NESTRA_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
      auto node = std::make_unique<AstCond>();
      node->kind = AstCond::Kind::kQuantifiedSubquery;
      node->op = op;
      node->quant = quant;
      node->lhs = std::move(lhs);
      node->subquery = std::move(sub);
      return node;
    }

    // cmp (select ...): scalar (aggregate) subquery.
    if (Check(TokenKind::kLParen) && Peek2().kind == TokenKind::kSelect) {
      Advance();
      NESTRA_ASSIGN_OR_RETURN(AstSelectPtr sub, ParseSelectStmt());
      NESTRA_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
      auto node = std::make_unique<AstCond>();
      node->kind = AstCond::Kind::kScalarSubquery;
      node->op = op;
      node->lhs = std::move(lhs);
      node->subquery = std::move(sub);
      return node;
    }

    NESTRA_ASSIGN_OR_RETURN(AstOperand rhs, ParseOperand());
    auto node = std::make_unique<AstCond>();
    node->kind = AstCond::Kind::kCompare;
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  // Scalar grammar with arithmetic:
  //   operand := term (('+'|'-') term)*
  //   term    := atom (('*'|'/') atom)*
  //   atom    := '-' atom | agg-call (HAVING) | column | literal
  //            | '(' operand ')'
  Result<AstOperand> ParseOperand() {
    NESTRA_ASSIGN_OR_RETURN(AstOperand lhs, ParseTerm());
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      const ArithOp op = Advance().kind == TokenKind::kPlus ? ArithOp::kAdd
                                                            : ArithOp::kSub;
      NESTRA_ASSIGN_OR_RETURN(AstOperand rhs, ParseTerm());
      lhs = AstOperand::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<AstOperand> ParseTerm() {
    NESTRA_ASSIGN_OR_RETURN(AstOperand lhs, ParseScalarAtom());
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash)) {
      const ArithOp op = Advance().kind == TokenKind::kStar ? ArithOp::kMul
                                                            : ArithOp::kDiv;
      NESTRA_ASSIGN_OR_RETURN(AstOperand rhs, ParseScalarAtom());
      lhs = AstOperand::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<AstOperand> ParseScalarAtom() {
    if (Match(TokenKind::kMinus)) {
      // Negative literals fold; everything else becomes 0 - x.
      if (Check(TokenKind::kIntLiteral)) {
        return AstOperand::Lit(Value::Int64(-Advance().int_value));
      }
      if (Check(TokenKind::kFloatLiteral)) {
        return AstOperand::Lit(Value::Float64(-Advance().float_value));
      }
      NESTRA_ASSIGN_OR_RETURN(AstOperand inner, ParseScalarAtom());
      return AstOperand::Arith(ArithOp::kSub,
                               AstOperand::Lit(Value::Int64(0)),
                               std::move(inner));
    }
    if (in_having_ && AtAggCall()) {
      NESTRA_ASSIGN_OR_RETURN(auto call, ParseAggCall());
      return AstOperand::Agg(call.first, std::move(call.second));
    }
    if (Check(TokenKind::kIdent)) {
      NESTRA_ASSIGN_OR_RETURN(std::string col, ParseColumnName());
      return AstOperand::Column(std::move(col));
    }
    if (Check(TokenKind::kIntLiteral)) {
      return AstOperand::Lit(Value::Int64(Advance().int_value));
    }
    if (Check(TokenKind::kFloatLiteral)) {
      return AstOperand::Lit(Value::Float64(Advance().float_value));
    }
    if (Check(TokenKind::kStringLiteral)) {
      return AstOperand::Lit(Value::String(Advance().text));
    }
    if (Check(TokenKind::kNull)) {
      Advance();
      return AstOperand::Lit(Value::Null());
    }
    if (Check(TokenKind::kParam)) {
      return AstOperand::Param(static_cast<int>(Advance().int_value));
    }
    if (Check(TokenKind::kLParen) && Peek2().kind != TokenKind::kSelect) {
      Advance();
      NESTRA_ASSIGN_OR_RETURN(AstOperand inner, ParseOperand());
      NESTRA_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
      return inner;
    }
    return Error("expected column, literal or scalar expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  bool in_having_ = false;
};

}  // namespace

Result<AstSelectPtr> ParseSelect(const std::string& sql) {
  NESTRA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseSingle();
}

Result<AstStatementPtr> ParseStatement(const std::string& sql) {
  NESTRA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseCompound();
}

}  // namespace nestra
