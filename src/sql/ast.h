#ifndef NESTRA_SQL_AST_H_
#define NESTRA_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"
#include "expr/expr.h"  // ArithOp
#include "nested/linking_predicate.h"

namespace nestra {

struct AstSelect;
using AstSelectPtr = std::unique_ptr<AstSelect>;

/// \brief A scalar operand in a condition: a (possibly qualified) column
/// reference, a literal, an aggregate call `agg(col)` / `count(*)` (HAVING
/// only), or a binary arithmetic combination of operands. Copyable
/// (children are shared), since desugaring duplicates operands.
struct AstOperand {
  bool is_column = false;
  std::string column;
  Value literal;
  bool is_agg = false;  // HAVING only
  LinkAgg agg = LinkAgg::kCount;
  bool is_arith = false;
  ArithOp arith_op = ArithOp::kAdd;
  std::shared_ptr<AstOperand> lhs;  // is_arith only
  std::shared_ptr<AstOperand> rhs;
  bool is_param = false;  // $n prepared-statement parameter
  int param_index = 0;    // 1-based, as written in the SQL

  static AstOperand Column(std::string name) {
    AstOperand o;
    o.is_column = true;
    o.column = std::move(name);
    return o;
  }
  static AstOperand Lit(Value v) {
    AstOperand o;
    o.literal = std::move(v);
    return o;
  }
  static AstOperand Agg(LinkAgg func, std::string column) {
    AstOperand o;
    o.is_agg = true;
    o.agg = func;
    o.column = std::move(column);  // empty for COUNT(*)
    return o;
  }
  static AstOperand Param(int index) {
    AstOperand o;
    o.is_param = true;
    o.param_index = index;
    return o;
  }
  static AstOperand Arith(ArithOp op, AstOperand lhs_in, AstOperand rhs_in) {
    AstOperand o;
    o.is_arith = true;
    o.arith_op = op;
    o.lhs = std::make_shared<AstOperand>(std::move(lhs_in));
    o.rhs = std::make_shared<AstOperand>(std::move(rhs_in));
    return o;
  }

  std::string ToString() const;
};

struct AstCond;
using AstCondPtr = std::unique_ptr<AstCond>;

/// \brief A WHERE-clause condition node. Subquery predicates (IN, EXISTS,
/// theta ALL/ANY) are first-class atoms here; the binder later requires them
/// to appear only as top-level conjuncts (the standard unnesting-friendly
/// form, which covers every query in the paper).
struct AstCond {
  enum class Kind {
    kAnd,
    kOr,
    kNot,
    kCompare,             // lhs op rhs
    kIsNull,              // lhs IS [NOT] NULL
    kExistsSubquery,      // [NOT] EXISTS (subquery)
    kInSubquery,          // lhs [NOT] IN (subquery)
    kQuantifiedSubquery,  // lhs op ALL|ANY|SOME (subquery)
    kScalarSubquery,      // lhs op (subquery)   [subquery selects agg(col)]
  };

  Kind kind = Kind::kCompare;
  std::vector<AstCondPtr> children;  // kAnd / kOr / kNot
  CmpOp op = CmpOp::kEq;             // kCompare / kQuantifiedSubquery
  AstOperand lhs;
  AstOperand rhs;                          // kCompare only
  bool negated = false;                    // IS NOT NULL / NOT IN / NOT EXISTS
  Quantifier quant = Quantifier::kAll;     // kQuantifiedSubquery
  AstSelectPtr subquery;

  std::string ToString() const;
};

struct AstTableRef {
  std::string table;
  std::string alias;  // empty when none given

  const std::string& effective_alias() const {
    return alias.empty() ? table : alias;
  }
};

/// \brief One ORDER BY item.
struct AstOrderItem {
  std::string column;
  bool ascending = true;
};

/// \brief One SELECT-list item: a column or an aggregate call. Aggregates
/// in a multi-item select list require GROUP BY (top-level queries); a
/// single aggregate item with no GROUP BY is a scalar aggregate (used by
/// scalar subqueries, or a one-row global aggregate at the top level).
struct AstSelectItem {
  bool is_agg = false;
  LinkAgg agg = LinkAgg::kCount;
  std::string column;  // column name, or agg argument (empty for COUNT(*))

  std::string ToString() const;
};

/// \brief A (possibly nested) SELECT statement of the supported subset:
///   SELECT [DISTINCT] items | * FROM t [alias], ... [WHERE cond]
///   [GROUP BY col, ...] [HAVING cond]
///   [ORDER BY col [ASC|DESC], ...] [LIMIT n]
/// GROUP BY / HAVING / ORDER BY / LIMIT are only allowed on the outermost
/// query; a subquery's select list is a single column (linking) or a single
/// aggregate (scalar subquery).
struct AstSelect {
  bool distinct = false;
  bool select_star = false;
  std::vector<AstSelectItem> items;  // empty iff select_star
  std::vector<AstTableRef> from;
  AstCondPtr where;  // may be null
  std::vector<std::string> group_by;
  AstCondPtr having;  // may be null; operands may be aggregates
  std::vector<AstOrderItem> order_by;
  int64_t limit = -1;  // -1 = no limit

  bool IsSingleAggregate() const {
    return items.size() == 1 && items[0].is_agg;
  }
  bool HasAggregates() const {
    for (const AstSelectItem& i : items) {
      if (i.is_agg) return true;
    }
    return false;
  }

  std::string ToString() const;
};

/// \brief A compound statement: one SELECT, or several combined with set
/// operations (left-associative; ORDER BY / LIMIT are not supported on
/// compound statements).
struct AstStatement {
  enum class SetOp { kUnionAll, kUnion, kIntersect, kExcept };

  std::vector<AstSelectPtr> selects;  // >= 1
  std::vector<SetOp> ops;             // size == selects.size() - 1

  bool IsCompound() const { return selects.size() > 1; }

  std::string ToString() const;
};

using AstStatementPtr = std::unique_ptr<AstStatement>;

const char* SetOpToString(AstStatement::SetOp op);

}  // namespace nestra

#endif  // NESTRA_SQL_AST_H_
