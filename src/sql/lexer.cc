#include "sql/lexer.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <map>

namespace nestra {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof:
      return "<eof>";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kIntLiteral:
      return "integer literal";
    case TokenKind::kFloatLiteral:
      return "float literal";
    case TokenKind::kStringLiteral:
      return "string literal";
    case TokenKind::kParam:
      return "parameter";
    case TokenKind::kComma:
      return ",";
    case TokenKind::kDot:
      return ".";
    case TokenKind::kLParen:
      return "(";
    case TokenKind::kRParen:
      return ")";
    case TokenKind::kStar:
      return "*";
    case TokenKind::kPlus:
      return "+";
    case TokenKind::kMinus:
      return "-";
    case TokenKind::kSlash:
      return "/";
    case TokenKind::kEq:
      return "=";
    case TokenKind::kNe:
      return "<>";
    case TokenKind::kLt:
      return "<";
    case TokenKind::kLe:
      return "<=";
    case TokenKind::kGt:
      return ">";
    case TokenKind::kGe:
      return ">=";
    case TokenKind::kSelect:
      return "SELECT";
    case TokenKind::kDistinct:
      return "DISTINCT";
    case TokenKind::kFrom:
      return "FROM";
    case TokenKind::kWhere:
      return "WHERE";
    case TokenKind::kAs:
      return "AS";
    case TokenKind::kAnd:
      return "AND";
    case TokenKind::kOr:
      return "OR";
    case TokenKind::kNot:
      return "NOT";
    case TokenKind::kIn:
      return "IN";
    case TokenKind::kExists:
      return "EXISTS";
    case TokenKind::kAll:
      return "ALL";
    case TokenKind::kAny:
      return "ANY";
    case TokenKind::kSome:
      return "SOME";
    case TokenKind::kIs:
      return "IS";
    case TokenKind::kNull:
      return "NULL";
    case TokenKind::kBetween:
      return "BETWEEN";
    case TokenKind::kOrder:
      return "ORDER";
    case TokenKind::kBy:
      return "BY";
    case TokenKind::kAsc:
      return "ASC";
    case TokenKind::kDesc:
      return "DESC";
    case TokenKind::kLimit:
      return "LIMIT";
    case TokenKind::kGroup:
      return "GROUP";
    case TokenKind::kHaving:
      return "HAVING";
    case TokenKind::kUnion:
      return "UNION";
    case TokenKind::kIntersect:
      return "INTERSECT";
    case TokenKind::kExcept:
      return "EXCEPT";
  }
  return "?";
}

namespace {

TokenKind KeywordKind(const std::string& upper) {
  static const std::map<std::string, TokenKind> kKeywords = {
      {"SELECT", TokenKind::kSelect},   {"DISTINCT", TokenKind::kDistinct},
      {"FROM", TokenKind::kFrom},       {"WHERE", TokenKind::kWhere},
      {"AS", TokenKind::kAs},           {"AND", TokenKind::kAnd},
      {"OR", TokenKind::kOr},           {"NOT", TokenKind::kNot},
      {"IN", TokenKind::kIn},           {"EXISTS", TokenKind::kExists},
      {"ALL", TokenKind::kAll},         {"ANY", TokenKind::kAny},
      {"SOME", TokenKind::kSome},       {"IS", TokenKind::kIs},
      {"NULL", TokenKind::kNull},       {"BETWEEN", TokenKind::kBetween},
      {"ORDER", TokenKind::kOrder},     {"BY", TokenKind::kBy},
      {"ASC", TokenKind::kAsc},         {"DESC", TokenKind::kDesc},
      {"LIMIT", TokenKind::kLimit},     {"GROUP", TokenKind::kGroup},
      {"HAVING", TokenKind::kHaving}, {"UNION", TokenKind::kUnion},
      {"INTERSECT", TokenKind::kIntersect},
      {"EXCEPT", TokenKind::kExcept},
  };
  const auto it = kKeywords.find(upper);
  return it == kKeywords.end() ? TokenKind::kIdent : it->second;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = static_cast<int>(i);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      tok.text = sql.substr(i, j - i);
      std::string upper = tok.text;
      for (char& ch : upper) ch = static_cast<char>(std::toupper(ch));
      tok.kind = KeywordKind(upper);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j < n && sql[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      tok.text = sql.substr(i, j - i);
      if (is_float) {
        tok.kind = TokenKind::kFloatLiteral;
        errno = 0;
        tok.float_value = std::strtod(tok.text.c_str(), nullptr);
        // strtod sets ERANGE for subnormal underflow too; only genuine
        // overflow (±HUGE_VAL) loses the value.
        if (errno == ERANGE && (tok.float_value == HUGE_VAL ||
                                tok.float_value == -HUGE_VAL)) {
          return Status::InvalidArgument(
              "float literal out of range at position " + std::to_string(i) +
              ": '" + tok.text + "'");
        }
      } else {
        tok.kind = TokenKind::kIntLiteral;
        // Without the errno check strtoll silently saturates to INT64_MAX,
        // turning an over-long literal into a wrong answer instead of an
        // error.
        errno = 0;
        tok.int_value = std::strtoll(tok.text.c_str(), nullptr, 10);
        if (errno == ERANGE) {
          return Status::InvalidArgument(
              "integer literal out of range at position " + std::to_string(i) +
              ": '" + tok.text + "'");
        }
      }
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string text;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // escaped quote
            text += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text += sql[j++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at position " +
                                  std::to_string(i));
      }
      tok.kind = TokenKind::kStringLiteral;
      tok.text = std::move(text);
      i = j;
    } else {
      switch (c) {
        case '$': {
          // $n prepared-statement parameter, 1-based (PostgreSQL style).
          size_t j = i + 1;
          while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) {
            ++j;
          }
          if (j == i + 1) {
            return Status::ParseError(
                "expected parameter number after '$' at position " +
                std::to_string(i));
          }
          tok.kind = TokenKind::kParam;
          tok.text = sql.substr(i, j - i);
          errno = 0;
          tok.int_value = std::strtoll(tok.text.c_str() + 1, nullptr, 10);
          if (errno == ERANGE || tok.int_value < 1) {
            return Status::ParseError("parameter number out of range at "
                                      "position " +
                                      std::to_string(i) + ": '" + tok.text +
                                      "'");
          }
          i = j;
          break;
        }
        case ',':
          tok.kind = TokenKind::kComma;
          ++i;
          break;
        case '.':
          tok.kind = TokenKind::kDot;
          ++i;
          break;
        case '(':
          tok.kind = TokenKind::kLParen;
          ++i;
          break;
        case ')':
          tok.kind = TokenKind::kRParen;
          ++i;
          break;
        case '*':
          tok.kind = TokenKind::kStar;
          ++i;
          break;
        case '+':
          tok.kind = TokenKind::kPlus;
          ++i;
          break;
        case '-':
          tok.kind = TokenKind::kMinus;
          ++i;
          break;
        case '/':
          tok.kind = TokenKind::kSlash;
          ++i;
          break;
        case '=':
          tok.kind = TokenKind::kEq;
          ++i;
          break;
        case '!':
          if (i + 1 < n && sql[i + 1] == '=') {
            tok.kind = TokenKind::kNe;
            i += 2;
          } else {
            return Status::ParseError("unexpected '!' at position " +
                                      std::to_string(i));
          }
          break;
        case '<':
          if (i + 1 < n && sql[i + 1] == '>') {
            tok.kind = TokenKind::kNe;
            i += 2;
          } else if (i + 1 < n && sql[i + 1] == '=') {
            tok.kind = TokenKind::kLe;
            i += 2;
          } else {
            tok.kind = TokenKind::kLt;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && sql[i + 1] == '=') {
            tok.kind = TokenKind::kGe;
            i += 2;
          } else {
            tok.kind = TokenKind::kGt;
            ++i;
          }
          break;
        default:
          return Status::ParseError(std::string("unexpected character '") + c +
                                    "' at position " + std::to_string(i));
      }
    }
    out.push_back(std::move(tok));
  }
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.position = static_cast<int>(n);
  out.push_back(eof);
  return out;
}

}  // namespace nestra
