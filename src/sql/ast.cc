#include "sql/ast.h"

#include <sstream>

namespace nestra {

std::string AstOperand::ToString() const {
  if (is_arith) {
    return "(" + lhs->ToString() + " " + ArithOpToString(arith_op) + " " +
           rhs->ToString() + ")";
  }
  if (is_agg) {
    if (agg == LinkAgg::kCountStar) return "count(*)";
    return std::string(LinkAggToString(agg)) + "(" + column + ")";
  }
  if (is_param) return "$" + std::to_string(param_index);
  if (is_column) return column;
  if (literal.is_string()) return "'" + literal.string() + "'";
  return literal.ToString();
}

std::string AstSelectItem::ToString() const {
  if (!is_agg) return column;
  if (agg == LinkAgg::kCountStar) return "count(*)";
  return std::string(LinkAggToString(agg)) + "(" + column + ")";
}

std::string AstCond::ToString() const {
  std::ostringstream oss;
  switch (kind) {
    case Kind::kAnd:
    case Kind::kOr: {
      const char* sep = kind == Kind::kAnd ? " AND " : " OR ";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) oss << sep;
        oss << "(" << children[i]->ToString() << ")";
      }
      break;
    }
    case Kind::kNot:
      oss << "NOT (" << children[0]->ToString() << ")";
      break;
    case Kind::kCompare:
      oss << lhs.ToString() << " " << CmpOpToString(op) << " "
          << rhs.ToString();
      break;
    case Kind::kIsNull:
      oss << lhs.ToString() << (negated ? " IS NOT NULL" : " IS NULL");
      break;
    case Kind::kExistsSubquery:
      oss << (negated ? "NOT EXISTS (" : "EXISTS (") << subquery->ToString()
          << ")";
      break;
    case Kind::kInSubquery:
      oss << lhs.ToString() << (negated ? " NOT IN (" : " IN (")
          << subquery->ToString() << ")";
      break;
    case Kind::kQuantifiedSubquery:
      oss << lhs.ToString() << " " << CmpOpToString(op) << " "
          << (quant == Quantifier::kAll ? "ALL" : "ANY") << " ("
          << subquery->ToString() << ")";
      break;
    case Kind::kScalarSubquery:
      oss << lhs.ToString() << " " << CmpOpToString(op) << " ("
          << subquery->ToString() << ")";
      break;
  }
  return oss.str();
}

std::string AstSelect::ToString() const {
  std::ostringstream oss;
  oss << "SELECT ";
  if (distinct) oss << "DISTINCT ";
  if (select_star) {
    oss << "*";
  } else {
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) oss << ", ";
      oss << items[i].ToString();
    }
  }
  oss << " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << from[i].table;
    if (!from[i].alias.empty()) oss << " " << from[i].alias;
  }
  if (where != nullptr) oss << " WHERE " << where->ToString();
  if (!group_by.empty()) {
    oss << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) oss << ", ";
      oss << group_by[i];
    }
  }
  if (having != nullptr) oss << " HAVING " << having->ToString();
  if (!order_by.empty()) {
    oss << " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) oss << ", ";
      oss << order_by[i].column << (order_by[i].ascending ? "" : " DESC");
    }
  }
  if (limit >= 0) oss << " LIMIT " << limit;
  return oss.str();
}

const char* SetOpToString(AstStatement::SetOp op) {
  switch (op) {
    case AstStatement::SetOp::kUnionAll:
      return "UNION ALL";
    case AstStatement::SetOp::kUnion:
      return "UNION";
    case AstStatement::SetOp::kIntersect:
      return "INTERSECT";
    case AstStatement::SetOp::kExcept:
      return "EXCEPT";
  }
  return "?";
}

std::string AstStatement::ToString() const {
  std::ostringstream oss;
  for (size_t i = 0; i < selects.size(); ++i) {
    if (i > 0) oss << " " << SetOpToString(ops[i - 1]) << " ";
    oss << selects[i]->ToString();
  }
  return oss.str();
}

}  // namespace nestra
