#ifndef NESTRA_SQL_PARSER_H_
#define NESTRA_SQL_PARSER_H_

#include <string>

#include "sql/ast.h"

namespace nestra {

/// \brief Parses the SQL subset needed by the paper's workload:
///
///   SELECT [DISTINCT] col, ... | *
///   FROM table [[AS] alias], ...
///   [WHERE cond]
///
///   cond    := or
///   or      := and (OR and)*
///   and     := unary (AND unary)*
///   unary   := NOT unary | atom
///   atom    := '(' cond ')'
///            | [NOT] EXISTS '(' select ')'
///            | operand IS [NOT] NULL
///            | operand [NOT] IN '(' select ')'
///            | operand BETWEEN operand AND operand      (desugared)
///            | operand cmp (ALL|ANY|SOME) '(' select ')'
///            | operand cmp operand
///   operand := column | int | float | 'string'
///
/// String literals double as date literals; the binder coerces them against
/// date-typed columns.
Result<AstSelectPtr> ParseSelect(const std::string& sql);

/// Parses a statement that may combine several SELECTs with
/// `UNION [ALL] | INTERSECT | EXCEPT` (left-associative). A compound
/// statement may not carry ORDER BY / LIMIT on its branches.
Result<AstStatementPtr> ParseStatement(const std::string& sql);

}  // namespace nestra

#endif  // NESTRA_SQL_PARSER_H_
