#include "tpch/queries.h"

#include <sstream>

namespace nestra {

std::string MakeQuery1(const std::string& date_lo,
                       const std::string& date_hi) {
  std::ostringstream q;
  q << "select o_orderkey, o_orderpriority from orders "
    << "where o_orderdate >= '" << date_lo << "' and o_orderdate < '"
    << date_hi << "' and o_totalprice > all ("
    << "select l_extendedprice from lineitem "
    << "where l_orderkey = o_orderkey and l_commitdate < l_receiptdate "
    << "and l_shipdate < l_commitdate)";
  return q.str();
}

namespace {

const char* OuterLinkSql(OuterLink link) {
  return link == OuterLink::kAny ? "any" : "all";
}

const char* InnerLinkSql(InnerLink link) {
  return link == InnerLink::kExists ? "exists" : "not exists";
}

}  // namespace

std::string MakeQuery2(int64_t size_lo, int64_t size_hi, int64_t availqty_max,
                       int64_t quantity, OuterLink outer, InnerLink inner) {
  std::ostringstream q;
  q << "select p_partkey, p_name from part "
    << "where p_size >= " << size_lo << " and p_size <= " << size_hi
    << " and p_retailprice < " << OuterLinkSql(outer) << " ("
    << "select ps_supplycost from partsupp "
    << "where ps_partkey = p_partkey and ps_availqty < " << availqty_max
    << " and " << InnerLinkSql(inner) << " ("
    << "select * from lineitem "
    << "where ps_partkey = l_partkey and ps_suppkey = l_suppkey "
    << "and l_quantity = " << quantity << "))";
  return q.str();
}

std::string MakeQuery3(int64_t size_lo, int64_t size_hi, int64_t availqty_max,
                       int64_t quantity, OuterLink outer, InnerLink inner,
                       Query3Variant variant) {
  const char* part_op = variant == Query3Variant::kVariantB ? "<>" : "=";
  const char* supp_op = variant == Query3Variant::kVariantC ? "<>" : "=";
  std::ostringstream q;
  q << "select p_partkey, p_name from part "
    << "where p_size >= " << size_lo << " and p_size <= " << size_hi
    << " and p_retailprice < " << OuterLinkSql(outer) << " ("
    << "select ps_supplycost from partsupp "
    << "where ps_partkey = p_partkey and ps_availqty < " << availqty_max
    << " and " << InnerLinkSql(inner) << " ("
    << "select * from lineitem "
    << "where p_partkey " << part_op << " l_partkey "
    << "and ps_suppkey " << supp_op << " l_suppkey "
    << "and l_quantity = " << quantity << "))";
  return q.str();
}

}  // namespace nestra
