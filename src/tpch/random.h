#ifndef NESTRA_TPCH_RANDOM_H_
#define NESTRA_TPCH_RANDOM_H_

#include <cstdint>

namespace nestra {

/// \brief Deterministic xoshiro256**-style PRNG for data generation.
/// Identical seeds produce identical tables on every platform, which the
/// experiment harness relies on.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p.
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
};

}  // namespace nestra

#endif  // NESTRA_TPCH_RANDOM_H_
