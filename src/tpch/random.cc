#include "tpch/random.h"

namespace nestra {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Next() % span);
}

double Rng::UniformDouble(double lo, double hi) {
  const double unit = static_cast<double>(Next() >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

bool Rng::Bernoulli(double p) {
  return UniformDouble(0.0, 1.0) < p;
}

}  // namespace nestra
