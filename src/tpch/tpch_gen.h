#ifndef NESTRA_TPCH_TPCH_GEN_H_
#define NESTRA_TPCH_TPCH_GEN_H_

#include <cstdint>
#include <string>

#include "storage/catalog.h"

namespace nestra {

/// \brief Scale configuration for the TPC-H subset used by the paper's
/// workload (orders, lineitem, part, partsupp).
///
/// The paper runs TPC-H at scale factor 1 (1.5M orders / 6M lineitem / 200K
/// part / 800K partsupp) on 2005 server hardware; the default here is a
/// 1/100 scale that keeps the paper's table-size RATIOS while running in
/// seconds on a laptop. Benches override `scale` to sweep the paper's X
/// axes.
struct TpchConfig {
  /// Multiplies every base cardinality. 1.0 reproduces the defaults below.
  double scale = 1.0;

  int64_t num_orders = 15000;    // SF1: 1,500,000
  int64_t num_parts = 2000;      // SF1: 200,000
  int64_t num_suppliers = 100;   // SF1: 10,000
  int suppliers_per_part = 4;    // partsupp = 4 rows per part (TPC-H)
  int max_lineitems_per_order = 7;  // avg 4 -> SF1: ~6,000,000

  /// Fraction of NULLs injected into the columns the paper's NULL-semantics
  /// discussion hinges on. TPC-H itself has no NULLs; the experiments that
  /// need them ("if the NOT NULL constraint is dropped") set these > 0.
  double null_l_extendedprice = 0.0;
  double null_ps_supplycost = 0.0;

  uint64_t seed = 20050614;  // SIGMOD'05 conference date

  /// Register NOT NULL metadata for l_extendedprice / ps_supplycost (the
  /// toggle System A's antijoin decision depends on). Only meaningful when
  /// the corresponding null fraction is 0.
  bool declare_not_null = false;
};

/// \brief Generates the four tables and registers them in `catalog` with
/// primary keys (o_orderkey, l_rowid, p_partkey, ps_rowid) and, optionally,
/// the NOT NULL declarations.
///
/// Column inventory (exactly the attributes the paper's queries touch, plus
/// keys):
///   orders   (o_orderkey, o_orderdate, o_totalprice, o_orderpriority)
///   lineitem (l_rowid, l_orderkey, l_partkey, l_suppkey, l_quantity,
///             l_extendedprice, l_shipdate, l_commitdate, l_receiptdate)
///   part     (p_partkey, p_name, p_size, p_retailprice)
///   partsupp (ps_rowid, ps_partkey, ps_suppkey, ps_availqty, ps_supplycost)
Status PopulateTpch(Catalog* catalog, const TpchConfig& config);

/// The q-quantile (0..1) of a column under the total order, for deriving
/// selectivity-controlling constants exactly as the paper does ("this size
/// is controlled by changing constants on the selections").
Result<Value> ColumnQuantile(const Table& table, const std::string& column,
                             double q);

}  // namespace nestra

#endif  // NESTRA_TPCH_TPCH_GEN_H_
