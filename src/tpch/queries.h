#ifndef NESTRA_TPCH_QUERIES_H_
#define NESTRA_TPCH_QUERIES_H_

#include <string>

namespace nestra {

/// \brief Builders for the paper's three experiment queries (Section 5.2),
/// parameterized by the selectivity-controlling constants (the paper's X1,
/// X2, Y, Z). Tests, benches and examples share these so the SQL under
/// measurement is identical everywhere.

/// Query 1: one-level ALL subquery over orders/lineitem.
///   select o_orderkey, o_orderpriority from orders
///   where o_orderdate >= X1 and o_orderdate < X2 and o_totalprice > all (
///     select l_extendedprice from lineitem
///     where l_orderkey = o_orderkey and l_commitdate < l_receiptdate
///       and l_shipdate < l_commitdate)
std::string MakeQuery1(const std::string& date_lo, const std::string& date_hi);

/// Which operator links the first and second block of Query 2/3.
enum class OuterLink { kAny, kAll };
/// Which operator links the second and third block.
enum class InnerLink { kExists, kNotExists };

/// Query 2 (linear correlated): part/partsupp/lineitem.
///   select p_partkey, p_name from part
///   where p_size >= X1 and p_size <= X2 and p_retailprice < [any|all] (
///     select ps_supplycost from partsupp
///     where ps_partkey = p_partkey and ps_availqty < Y
///       and [not] exists (
///         select * from lineitem
///         where ps_partkey = l_partkey and ps_suppkey = l_suppkey
///           and l_quantity = Z))
/// Query 2a = (kAny, kNotExists); Query 2b = (kAll, kNotExists).
std::string MakeQuery2(int64_t size_lo, int64_t size_hi, int64_t availqty_max,
                       int64_t quantity, OuterLink outer, InnerLink inner);

/// Correlated-predicate variants of Query 3's third block (Section 5.2):
///  kVariantA: p_partkey =  l_partkey and ps_suppkey =  l_suppkey
///  kVariantB: p_partkey <> l_partkey and ps_suppkey =  l_suppkey
///  kVariantC: p_partkey =  l_partkey and ps_suppkey <> l_suppkey
enum class Query3Variant { kVariantA, kVariantB, kVariantC };

/// Query 3: like Query 2 but the third block is correlated to BOTH outer
/// blocks (p_partkey replaces ps_partkey), making it a general two-level
/// nested query. 3a = (kAll, kExists); 3b = (kAll, kNotExists);
/// 3c = (kAny, kExists).
std::string MakeQuery3(int64_t size_lo, int64_t size_hi, int64_t availqty_max,
                       int64_t quantity, OuterLink outer, InnerLink inner,
                       Query3Variant variant);

}  // namespace nestra

#endif  // NESTRA_TPCH_QUERIES_H_
