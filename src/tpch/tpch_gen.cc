#include "tpch/tpch_gen.h"

#include <algorithm>
#include <cmath>

#include "common/date.h"
#include "tpch/random.h"

namespace nestra {

namespace {

const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};

int64_t Scaled(int64_t base, double scale) {
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(
                                  static_cast<double>(base) * scale)));
}

}  // namespace

Status PopulateTpch(Catalog* catalog, const TpchConfig& config) {
  Rng rng(config.seed);

  const int64_t num_orders = Scaled(config.num_orders, config.scale);
  const int64_t num_parts = Scaled(config.num_parts, config.scale);
  const int64_t num_suppliers = Scaled(config.num_suppliers, config.scale);

  int64_t date_lo, date_hi;
  {
    NESTRA_ASSIGN_OR_RETURN(date_lo, DaysFromCivil(1992, 1, 1));
    NESTRA_ASSIGN_OR_RETURN(date_hi, DaysFromCivil(1998, 8, 2));
  }

  // --- orders ---
  Table orders{Schema({
      {"o_orderkey", TypeId::kInt64, /*nullable=*/false},
      {"o_orderdate", TypeId::kDate, false},
      {"o_totalprice", TypeId::kFloat64, false},
      {"o_orderpriority", TypeId::kString, false},
  })};
  orders.Reserve(static_cast<size_t>(num_orders));
  for (int64_t k = 1; k <= num_orders; ++k) {
    Row r;
    r.Append(Value::Int64(k));
    r.Append(Value::Date(rng.UniformInt(date_lo, date_hi)));
    r.Append(Value::Float64(std::round(
                 rng.UniformDouble(10000.0, 500000.0) * 100.0) /
             100.0));
    r.Append(Value::String(kPriorities[rng.UniformInt(0, 4)]));
    orders.AppendUnchecked(std::move(r));
  }

  // --- lineitem ---
  Table lineitem{Schema({
      {"l_rowid", TypeId::kInt64, false},
      {"l_orderkey", TypeId::kInt64, false},
      {"l_partkey", TypeId::kInt64, false},
      {"l_suppkey", TypeId::kInt64, false},
      {"l_quantity", TypeId::kInt64, false},
      {"l_extendedprice", TypeId::kFloat64,
       config.null_l_extendedprice > 0.0},
      {"l_shipdate", TypeId::kDate, false},
      {"l_commitdate", TypeId::kDate, false},
      {"l_receiptdate", TypeId::kDate, false},
  })};
  int64_t rowid = 0;
  for (int64_t ok = 1; ok <= num_orders; ++ok) {
    const int64_t count = rng.UniformInt(1, config.max_lineitems_per_order);
    for (int64_t i = 0; i < count; ++i) {
      Row r;
      r.Append(Value::Int64(++rowid));
      r.Append(Value::Int64(ok));
      const int64_t partkey = rng.UniformInt(1, num_parts);
      r.Append(Value::Int64(partkey));
      // TPC-H picks the supplier from the part's partsupp suppliers; doing
      // the same keeps the Query 2/3 correlation (ps_suppkey = l_suppkey)
      // selective but non-empty.
      const int64_t si = rng.UniformInt(0, config.suppliers_per_part - 1);
      const int64_t suppkey =
          (partkey + si * (num_suppliers / config.suppliers_per_part + 1)) %
              num_suppliers +
          1;
      r.Append(Value::Int64(suppkey));
      r.Append(Value::Int64(rng.UniformInt(1, 50)));
      if (rng.Bernoulli(config.null_l_extendedprice)) {
        r.Append(Value::Null());
      } else {
        r.Append(Value::Float64(
            std::round(rng.UniformDouble(900.0, 105000.0) * 100.0) / 100.0));
      }
      const int64_t ship = rng.UniformInt(date_lo, date_hi);
      // commitdate / receiptdate within +/- 30 days of shipdate so the
      // Query 1 inner conditions (l_shipdate < l_commitdate <
      // l_receiptdate) have tunable, partial selectivity.
      r.Append(Value::Date(ship));
      r.Append(Value::Date(ship + rng.UniformInt(-30, 30)));
      r.Append(Value::Date(ship + rng.UniformInt(-15, 45)));
      lineitem.AppendUnchecked(std::move(r));
    }
  }

  // --- part ---
  Table part{Schema({
      {"p_partkey", TypeId::kInt64, false},
      {"p_name", TypeId::kString, false},
      {"p_size", TypeId::kInt64, false},
      {"p_retailprice", TypeId::kFloat64, false},
  })};
  part.Reserve(static_cast<size_t>(num_parts));
  for (int64_t k = 1; k <= num_parts; ++k) {
    Row r;
    r.Append(Value::Int64(k));
    r.Append(Value::String("part#" + std::to_string(k)));
    r.Append(Value::Int64(rng.UniformInt(1, 50)));
    r.Append(Value::Float64(
        std::round(rng.UniformDouble(900.0, 2000.0) * 100.0) / 100.0));
    part.AppendUnchecked(std::move(r));
  }

  // --- partsupp ---
  Table partsupp{Schema({
      {"ps_rowid", TypeId::kInt64, false},
      {"ps_partkey", TypeId::kInt64, false},
      {"ps_suppkey", TypeId::kInt64, false},
      {"ps_availqty", TypeId::kInt64, false},
      {"ps_supplycost", TypeId::kFloat64, config.null_ps_supplycost > 0.0},
  })};
  partsupp.Reserve(static_cast<size_t>(num_parts) *
                   static_cast<size_t>(config.suppliers_per_part));
  rowid = 0;
  for (int64_t pk = 1; pk <= num_parts; ++pk) {
    for (int si = 0; si < config.suppliers_per_part; ++si) {
      Row r;
      r.Append(Value::Int64(++rowid));
      r.Append(Value::Int64(pk));
      const int64_t suppkey =
          (pk + si * (num_suppliers / config.suppliers_per_part + 1)) %
              num_suppliers +
          1;
      r.Append(Value::Int64(suppkey));
      r.Append(Value::Int64(rng.UniformInt(1, 9999)));
      if (rng.Bernoulli(config.null_ps_supplycost)) {
        r.Append(Value::Null());
      } else {
        r.Append(Value::Float64(
            std::round(rng.UniformDouble(500.0, 1800.0) * 100.0) / 100.0));
      }
      partsupp.AppendUnchecked(std::move(r));
    }
  }

  std::set<std::string> lineitem_nn, partsupp_nn;
  if (config.declare_not_null) {
    if (config.null_l_extendedprice == 0.0) {
      lineitem_nn.insert("l_extendedprice");
    }
    if (config.null_ps_supplycost == 0.0) {
      partsupp_nn.insert("ps_supplycost");
    }
  }
  // Correlation/linking columns of TPC-H are NOT NULL by spec; declare them
  // so the native optimizer's antijoin checks behave like System A's.
  if (config.declare_not_null) {
    lineitem_nn.insert({"l_orderkey", "l_partkey", "l_suppkey", "l_quantity"});
    partsupp_nn.insert({"ps_partkey", "ps_suppkey", "ps_availqty"});
  }

  NESTRA_RETURN_NOT_OK(
      catalog->RegisterTable("orders", std::move(orders), "o_orderkey",
                             config.declare_not_null
                                 ? std::set<std::string>{"o_orderdate",
                                                         "o_totalprice"}
                                 : std::set<std::string>{}));
  NESTRA_RETURN_NOT_OK(catalog->RegisterTable("lineitem", std::move(lineitem),
                                              "l_rowid",
                                              std::move(lineitem_nn)));
  NESTRA_RETURN_NOT_OK(
      catalog->RegisterTable("part", std::move(part), "p_partkey",
                             config.declare_not_null
                                 ? std::set<std::string>{"p_size",
                                                         "p_retailprice"}
                                 : std::set<std::string>{}));
  NESTRA_RETURN_NOT_OK(catalog->RegisterTable("partsupp", std::move(partsupp),
                                              "ps_rowid",
                                              std::move(partsupp_nn)));
  return Status::OK();
}

Result<Value> ColumnQuantile(const Table& table, const std::string& column,
                             double q) {
  NESTRA_ASSIGN_OR_RETURN(int idx, table.schema().Resolve(column));
  std::vector<Value> values;
  values.reserve(static_cast<size_t>(table.num_rows()));
  for (const Row& r : table.rows()) {
    if (!r[idx].is_null()) values.push_back(r[idx]);
  }
  if (values.empty()) {
    return Status::InvalidArgument("quantile of an all-NULL column");
  }
  std::sort(values.begin(), values.end(), [](const Value& a, const Value& b) {
    return Value::TotalOrderCompare(a, b) < 0;
  });
  q = std::clamp(q, 0.0, 1.0);
  const size_t pos = std::min(values.size() - 1,
                              static_cast<size_t>(q * (values.size() - 1)));
  return values[pos];
}

}  // namespace nestra
