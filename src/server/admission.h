#ifndef NESTRA_SERVER_ADMISSION_H_
#define NESTRA_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace nestra {

/// \brief FIFO admission gate bounding the number of in-flight queries.
///
/// Sessions acquire a slot before executing a query and release it after.
/// Admission is strictly first-come-first-served by ticket number: a waiter
/// is only admitted when every earlier ticket has been admitted AND the
/// in-flight count is below the limit, so a burst of cheap queries cannot
/// starve an earlier expensive one (fair queueing, not a bare semaphore).
/// The engine-internal morsel/pipeline tasks a query spawns on the shared
/// ThreadPool are not admission-controlled — the gate bounds *queries*, and
/// the pool's fixed worker count bounds CPU.
///
/// A non-positive limit admits everything immediately (stats still track).
class AdmissionController {
 public:
  explicit AdmissionController(int max_in_flight) : max_(max_in_flight) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks until admitted. Pair every Acquire with one Release (or use
  /// Slot below).
  void Acquire();
  void Release();

  /// RAII admission slot.
  class Slot {
   public:
    explicit Slot(AdmissionController* controller) : controller_(controller) {
      if (controller_ != nullptr) controller_->Acquire();
    }
    ~Slot() {
      if (controller_ != nullptr) controller_->Release();
    }
    Slot(const Slot&) = delete;
    Slot& operator=(const Slot&) = delete;

   private:
    AdmissionController* controller_;
  };

  int max_in_flight() const { return max_; }
  int in_flight() const;
  /// Waiters not yet admitted.
  int queue_depth() const;
  int64_t admitted_total() const;
  /// High-water marks, for asserting the limit actually bound execution.
  int peak_in_flight() const;
  int peak_queue_depth() const;

 private:
  const int max_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_ticket_ = 0;  // issued to the next Acquire
  uint64_t serving_ = 0;      // tickets below this have been admitted
  int in_flight_ = 0;
  int64_t admitted_total_ = 0;
  int peak_in_flight_ = 0;
  int peak_queue_depth_ = 0;
};

}  // namespace nestra

#endif  // NESTRA_SERVER_ADMISSION_H_
