#ifndef NESTRA_SERVER_SESSION_H_
#define NESTRA_SERVER_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/memory_tracker.h"
#include "nra/executor.h"
#include "nra/options.h"
#include "plan/query_block.h"

namespace nestra {

class ConnectionManager;

/// \brief One client connection: per-session options over the shared
/// Catalog, plus the prepared-statement registry.
///
/// Obtained from ConnectionManager::Connect(). A session is single-threaded
/// (one statement at a time); concurrency comes from many sessions, each
/// on its own client thread. Every statement executes under the manager's
/// admission gate and shared schema lock.
///
/// Prepared statements: `Prepare` pays parse + bind + plan-verify once and
/// records the catalog versions of every referenced table; `ExecutePrepared`
/// only stores the argument values into the plan's shared parameter slots
/// and runs. If any referenced table changed since PREPARE (re-register,
/// drop, NOT NULL edit — anything that could invalidate the plan or its
/// captured table pointers), EXECUTE fails loudly with InvalidArgument
/// ("stale") instead of reading freed storage; re-Prepare to re-plan.
///
/// Query() also accepts the statement forms directly:
///   PREPARE <name> AS <select-statement>
///   EXECUTE <name> [(arg, ...)]       -- literals: int, float, 'string', NULL
///   DEALLOCATE <name>
class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  int64_t id() const { return id_; }
  /// "s<id>" — stamped into metrics labels, slow-query log lines, and trace
  /// span names.
  const std::string& label() const { return label_; }

  /// Per-session engine options (engine choice, threads, slow-query
  /// threshold, ...). Mutating session_label is not supported; it is
  /// re-stamped before every statement.
  NraOptions& options() { return options_; }
  const NraOptions& options() const { return options_; }

  /// Executes one statement: SELECT (incl. compound set operations), or the
  /// PREPARE / EXECUTE / DEALLOCATE forms above (which return an empty
  /// table for PREPARE / DEALLOCATE).
  Result<Table> Query(const std::string& sql, NraStats* stats = nullptr);

  /// Parse + bind + verify `sql` (a SELECT, possibly with $n parameters)
  /// once, storing it under `name`. Re-preparing an existing name replaces
  /// it.
  Status Prepare(const std::string& name, const std::string& sql);

  /// Binds `args` to the statement's $n slots (by position: args[0] is $1)
  /// and executes. String arguments for parameters compared against DATE
  /// columns are coerced to dates here (the bind-time literal coercion
  /// cannot see EXECUTE-time values).
  Result<Table> ExecutePrepared(const std::string& name,
                                const std::vector<Value>& args,
                                NraStats* stats = nullptr);

  Status Deallocate(const std::string& name);
  std::vector<std::string> PreparedNames() const;

  /// Per-session counters (monotonic over the session's lifetime).
  struct Stats {
    int64_t queries = 0;   // statements executed OK (incl. prepared)
    int64_t errors = 0;
    int64_t prepares = 0;
    int64_t prepared_executions = 0;
  };
  const Stats& stats() const { return stats_; }

  /// The session's node in the process memory hierarchy: live/peak/
  /// cumulative accounted bytes and query count across every statement this
  /// session ran. Registered for the session's lifetime, so `\memory` in
  /// the shell (DumpMemoryHierarchy) lists it even when idle.
  const SessionMemoryTracker& memory() const { return mem_; }

 private:
  friend class ConnectionManager;

  Session(ConnectionManager* manager, int64_t id);

  struct Prepared {
    std::string sql;
    QueryBlockPtr root;
    std::shared_ptr<std::vector<Value>> slots;
    int num_params = 0;
    std::set<int> date_params;  // 0-based slots needing string->date coercion
    // (table, Catalog::TableVersion at prepare time) for every table the
    // block tree references; any mismatch at EXECUTE means stale.
    std::vector<std::pair<std::string, uint64_t>> table_versions;
    NraOptions options;  // session options snapshot at prepare time
  };

  Result<Table> RunPrepared(Prepared& ps, const std::vector<Value>& args,
                            NraStats* stats);
  // Feeds the per-session memory metrics from one finished statement.
  void RecordQueryMemory(const NraStats& stats);
  // Query() helpers for the PREPARE/EXECUTE/DEALLOCATE statement forms.
  Result<Table> QueryPrepareForm(const std::string& sql);
  Result<Table> QueryExecuteForm(const std::string& sql, NraStats* stats);
  Result<Table> QueryDeallocateForm(const std::string& sql);

  ConnectionManager* manager_;
  const int64_t id_;
  const std::string label_;
  SessionMemoryTracker mem_;  // after label_: constructed from it
  NraOptions options_;
  std::map<std::string, Prepared> prepared_;
  Stats stats_;
};

}  // namespace nestra

#endif  // NESTRA_SERVER_SESSION_H_
