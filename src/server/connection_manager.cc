#include "server/connection_manager.h"

#include <mutex>
#include <utility>

#include "server/session.h"

namespace nestra {

ConnectionManager::ConnectionManager(Catalog* catalog, ServerOptions options)
    : catalog_(catalog),
      options_(std::move(options)),
      admission_(options_.max_in_flight) {}

ConnectionManager::~ConnectionManager() = default;

std::unique_ptr<Session> ConnectionManager::Connect() {
  const int64_t id = next_session_id_.fetch_add(1, std::memory_order_acq_rel)
                     + 1;
  active_sessions_.fetch_add(1, std::memory_order_acq_rel);
  sessions_opened_.fetch_add(1, std::memory_order_acq_rel);
  // Session's constructor is private; it friend-declares the manager.
  return std::unique_ptr<Session>(new Session(this, id));
}

Status ConnectionManager::RegisterTable(const std::string& name, Table table,
                                        const std::string& primary_key,
                                        std::set<std::string> not_null_columns) {
  std::unique_lock<std::shared_mutex> lock(schema_mu_);
  return catalog_->RegisterTable(name, std::move(table), primary_key,
                                 std::move(not_null_columns));
}

Status ConnectionManager::DropTable(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(schema_mu_);
  return catalog_->DropTable(name);
}

Status ConnectionManager::AddNotNull(const std::string& table_name,
                                     const std::string& column) {
  std::unique_lock<std::shared_mutex> lock(schema_mu_);
  return catalog_->AddNotNull(table_name, column);
}

Status ConnectionManager::DropNotNull(const std::string& table_name,
                                      const std::string& column) {
  std::unique_lock<std::shared_mutex> lock(schema_mu_);
  return catalog_->DropNotNull(table_name, column);
}

Status ConnectionManager::Ddl(const std::function<Status(Catalog*)>& fn) {
  std::unique_lock<std::shared_mutex> lock(schema_mu_);
  return fn(catalog_);
}

}  // namespace nestra
