#include "server/session.h"

#include <cctype>
#include <chrono>
#include <mutex>
#include <shared_mutex>

#include "common/date.h"
#include "common/thread_pool.h"
#include "plan/binder.h"
#include "server/connection_manager.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "telemetry/engine_metrics.h"
#include "telemetry/slow_query.h"
#include "telemetry/trace.h"
#include "verify/verifier.h"

namespace nestra {

namespace {

using Clock = std::chrono::steady_clock;

// First word of `sql`, uppercased — enough to route the PREPARE / EXECUTE /
// DEALLOCATE statement forms without tokenizing plain SELECTs twice.
std::string FirstWordUpper(const std::string& sql) {
  size_t i = 0;
  while (i < sql.size() &&
         std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  std::string word;
  while (i < sql.size() &&
         std::isalpha(static_cast<unsigned char>(sql[i]))) {
    word += static_cast<char>(
        std::toupper(static_cast<unsigned char>(sql[i++])));
  }
  return word;
}

void CountError() {
  if (telemetry::MetricsEnabled()) {
    telemetry::Metrics().query_errors_total->Add(1);
  }
}

void CollectReferencedTables(const QueryBlock& block,
                             std::set<std::string>* out) {
  for (const QueryBlock::TableRef& ref : block.tables) out->insert(ref.table);
  for (const QueryBlockPtr& child : block.children) {
    CollectReferencedTables(*child, out);
  }
}

}  // namespace

Session::Session(ConnectionManager* manager, int64_t id)
    : manager_(manager),
      id_(id),
      label_("s" + std::to_string(id)),
      mem_(label_),
      options_(manager->options().session_defaults) {
  options_.session_label = label_;
}

// Publishes one finished statement's memory numbers: the session gauge
// keeps the largest per-query peak, the counter accumulates peaks so
// rate() shows memory pressure per session over time.
void Session::RecordQueryMemory(const NraStats& stats) {
  if (!telemetry::MetricsEnabled()) return;
  telemetry::MetricsRegistry::Global()
      .GetGauge("nestra_session_peak_mem_bytes",
                telemetry::PrometheusLabel("session", label_),
                "Largest per-query peak accounted bytes, by session",
                /*deterministic=*/true)
      ->UpdateMax(static_cast<double>(stats.peak_mem_bytes));
  telemetry::MetricsRegistry::Global()
      .GetCounter("nestra_session_mem_bytes_total",
                  telemetry::PrometheusLabel("session", label_),
                  "Sum of per-query peak accounted bytes, by session",
                  /*deterministic=*/true)
      ->Add(static_cast<double>(stats.peak_mem_bytes));
}

Session::~Session() {
  manager_->active_sessions_.fetch_sub(1, std::memory_order_acq_rel);
}

Result<Table> Session::Query(const std::string& sql, NraStats* stats) {
  // The label is re-stamped every statement so callers tweaking options()
  // wholesale (options() = NraOptions::Original()) keep their attribution.
  options_.session_label = label_;
  const std::string word = FirstWordUpper(sql);
  if (word == "PREPARE") return QueryPrepareForm(sql);
  if (word == "EXECUTE") return QueryExecuteForm(sql, stats);
  if (word == "DEALLOCATE") return QueryDeallocateForm(sql);

  NraStats local;
  if (stats == nullptr) stats = &local;
  AdmissionController::Slot slot(&manager_->admission_);
  std::shared_lock<std::shared_mutex> schema_lock(manager_->schema_mu_);
  telemetry::TraceSpan span("session", label_ + ":query");
  // The executor's query tracker (created inside Execute) picks up this
  // session as its parent via the thread-local installed here, folding the
  // query's bytes into the session totals on destruction.
  ScopedSessionMemory scoped_mem(&mem_);
  NraExecutor executor(*manager_->catalog_, options_);
  Result<Table> result = executor.ExecuteStatementSql(sql, stats);
  RecordQueryMemory(*stats);
  if (result.ok()) {
    ++stats_.queries;
    if (telemetry::MetricsEnabled()) {
      telemetry::MetricsRegistry::Global()
          .GetCounter("nestra_session_queries_total",
                      telemetry::PrometheusLabel("session", label_),
                      "Statements executed OK, by session",
                      /*deterministic=*/false)
          ->Add(1);
    }
  } else {
    ++stats_.errors;
  }
  return result;
}

Status Session::Prepare(const std::string& name, const std::string& sql) {
  options_.session_label = label_;
  telemetry::TraceSpan span("session", label_ + ":prepare:" + name);
  // Prepare reads the catalog (bind + verify + version capture); the shared
  // schema lock keeps DDL from changing tables mid-prepare.
  std::shared_lock<std::shared_mutex> schema_lock(manager_->schema_mu_);

  Result<AstSelectPtr> ast = ParseSelect(sql);
  if (!ast.ok()) {
    ++stats_.errors;
    CountError();
    return ast.status();
  }
  ParamBinding params;
  Result<QueryBlockPtr> root = BindQuery(**ast, *manager_->catalog_, &params);
  if (!root.ok()) {
    ++stats_.errors;
    CountError();
    return root.status();
  }
  const bool metrics = telemetry::MetricsEnabled();
  if (metrics) {
    const telemetry::EngineMetrics& m = telemetry::Metrics();
    m.statements_parsed_total->Add(1);
    m.statements_bound_total->Add(1);
  }
  // Verify once, here; ExecutePrepared runs with verify_plans off, so the
  // verifier (and its plans_verified_total counter) never re-runs per
  // EXECUTE — the observable half of "parse+plan+verify paid once".
  if (options_.verify_plans) {
    Status verified = VerifyPlan(**root, *manager_->catalog_, options_);
    if (metrics) {
      const telemetry::EngineMetrics& m = telemetry::Metrics();
      m.plans_verified_total->Add(1);
      if (!verified.ok()) {
        m.verify_failures_total->Add(1);
        m.query_errors_total->Add(1);
      }
    }
    if (!verified.ok()) {
      ++stats_.errors;
      return verified;
    }
  }

  Prepared ps;
  ps.sql = sql;
  ps.root = std::move(*root);
  ps.slots = params.slots;
  ps.num_params = params.count;
  ps.date_params = params.date_params;
  std::set<std::string> tables;
  CollectReferencedTables(*ps.root, &tables);
  for (const std::string& t : tables) {
    ps.table_versions.emplace_back(t, manager_->catalog_->TableVersion(t));
  }
  ps.options = options_;
  prepared_[name] = std::move(ps);
  ++stats_.prepares;
  if (metrics) telemetry::Metrics().statements_prepared_total->Add(1);
  return Status::OK();
}

Result<Table> Session::ExecutePrepared(const std::string& name,
                                       const std::vector<Value>& args,
                                       NraStats* stats) {
  const auto it = prepared_.find(name);
  if (it == prepared_.end()) {
    ++stats_.errors;
    CountError();
    return Status::NotFound("no prepared statement named '" + name +
                            "' in session " + label_);
  }
  Result<Table> result = RunPrepared(it->second, args, stats);
  if (result.ok()) {
    ++stats_.queries;
    ++stats_.prepared_executions;
    if (telemetry::MetricsEnabled()) {
      const telemetry::EngineMetrics& m = telemetry::Metrics();
      m.prepared_executions_total->Add(1);
      telemetry::MetricsRegistry::Global()
          .GetCounter("nestra_session_queries_total",
                      telemetry::PrometheusLabel("session", label_),
                      "Statements executed OK, by session",
                      /*deterministic=*/false)
          ->Add(1);
    }
  } else {
    ++stats_.errors;
    CountError();
  }
  return result;
}

Result<Table> Session::RunPrepared(Prepared& ps,
                                   const std::vector<Value>& args,
                                   NraStats* stats) {
  if (static_cast<int>(args.size()) != ps.num_params) {
    return Status::InvalidArgument(
        "prepared statement expects " + std::to_string(ps.num_params) +
        " parameter(s), got " + std::to_string(args.size()));
  }
  // Bind-time date coercion cannot see EXECUTE-time values, so string
  // arguments destined for DATE comparisons are coerced here.
  std::vector<Value> bound = args;
  for (int slot : ps.date_params) {
    if (slot < static_cast<int>(bound.size()) && bound[slot].is_string()) {
      NESTRA_ASSIGN_OR_RETURN(int64_t days,
                              ParseDate(bound[slot].string()));
      bound[slot] = Value::Date(days);
    }
  }

  AdmissionController::Slot slot(&manager_->admission_);
  std::shared_lock<std::shared_mutex> schema_lock(manager_->schema_mu_);
  // Staleness check under the schema lock, so no DDL can slip between the
  // version comparison and execution. Any change to a referenced table —
  // re-register, drop, NOT NULL edit — invalidates the plan (its table
  // pointers, observed-NULL proofs, and plan-shape decisions were captured
  // at prepare time).
  for (const auto& [table, version] : ps.table_versions) {
    const uint64_t now = manager_->catalog_->TableVersion(table);
    if (now != version) {
      return Status::InvalidArgument(
          "prepared statement is stale: table '" + table +
          "' changed since PREPARE (version " + std::to_string(version) +
          " -> " + std::to_string(now) + "); PREPARE it again");
    }
  }
  *ps.slots = std::move(bound);

  NraOptions exec_options = ps.options;
  exec_options.session_label = label_;
  // Verified once at Prepare; see there.
  exec_options.verify_plans = false;
  telemetry::TraceSpan span("session", label_ + ":execute");
  const bool slow_log = exec_options.slow_query_ms > 0;
  Clock::time_point start;
  if (slow_log) start = Clock::now();
  NraStats local;
  if (stats == nullptr) stats = &local;
  ScopedSessionMemory scoped_mem(&mem_);
  NraExecutor executor(*manager_->catalog_, exec_options);
  Result<Table> result = executor.Execute(*ps.root, stats);
  RecordQueryMemory(*stats);
  if (slow_log) {
    const double total_ms =
        std::chrono::duration<double>(Clock::now() - start).count() * 1e3;
    if (total_ms > exec_options.slow_query_ms) {
      telemetry::SlowQueryRecord rec;
      rec.sql = ps.sql;
      rec.total_ms = total_ms;
      rec.join_ms = stats->join_seconds * 1e3;
      rec.nest_select_ms = stats->nest_select_seconds * 1e3;
      rec.output_rows = stats->output_rows;
      rec.peak_mem_bytes = stats->peak_mem_bytes;
      rec.num_threads = ResolveNumThreads(exec_options.num_threads);
      rec.vectorized = exec_options.vectorized;
      rec.ok = result.ok();
      rec.session = label_;
      telemetry::LogSlowQuery(rec);
    }
  }
  return result;
}

Status Session::Deallocate(const std::string& name) {
  if (prepared_.erase(name) == 0) {
    return Status::NotFound("no prepared statement named '" + name +
                            "' in session " + label_);
  }
  return Status::OK();
}

std::vector<std::string> Session::PreparedNames() const {
  std::vector<std::string> out;
  out.reserve(prepared_.size());
  for (const auto& [name, _] : prepared_) out.push_back(name);
  return out;
}

Result<Table> Session::QueryPrepareForm(const std::string& sql) {
  NESTRA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  // PREPARE <name> AS <select-statement>
  if (tokens.size() < 4 || tokens[1].kind != TokenKind::kIdent ||
      tokens[2].kind != TokenKind::kAs) {
    return Status::ParseError("expected PREPARE <name> AS <select>");
  }
  NESTRA_RETURN_NOT_OK(
      Prepare(tokens[1].text, sql.substr(tokens[3].position)));
  return Table();
}

Result<Table> Session::QueryExecuteForm(const std::string& sql,
                                        NraStats* stats) {
  NESTRA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  // EXECUTE <name> [( literal, ... )]
  if (tokens.size() < 2 || tokens[1].kind != TokenKind::kIdent) {
    return Status::ParseError("expected EXECUTE <name> [(arg, ...)]");
  }
  const std::string& name = tokens[1].text;
  std::vector<Value> args;
  size_t i = 2;
  if (i < tokens.size() && tokens[i].kind == TokenKind::kLParen) {
    ++i;
    while (i < tokens.size() && tokens[i].kind != TokenKind::kRParen) {
      bool negate = false;
      if (tokens[i].kind == TokenKind::kMinus) {
        negate = true;
        ++i;
      }
      if (i >= tokens.size()) break;
      const Token& t = tokens[i];
      switch (t.kind) {
        case TokenKind::kIntLiteral:
          args.push_back(Value::Int64(negate ? -t.int_value : t.int_value));
          break;
        case TokenKind::kFloatLiteral:
          args.push_back(
              Value::Float64(negate ? -t.float_value : t.float_value));
          break;
        case TokenKind::kStringLiteral:
          if (negate) {
            return Status::ParseError(
                "cannot negate a string EXECUTE argument");
          }
          args.push_back(Value::String(t.text));
          break;
        case TokenKind::kNull:
          if (negate) {
            return Status::ParseError("cannot negate NULL");
          }
          args.push_back(Value::Null());
          break;
        default:
          return Status::ParseError(
              "EXECUTE arguments must be literals (int, float, 'string', "
              "NULL)");
      }
      ++i;
      if (i < tokens.size() && tokens[i].kind == TokenKind::kComma) ++i;
    }
    if (i >= tokens.size() || tokens[i].kind != TokenKind::kRParen) {
      return Status::ParseError("expected ')' closing EXECUTE arguments");
    }
    ++i;
  }
  if (i < tokens.size() && tokens[i].kind != TokenKind::kEof) {
    return Status::ParseError("unexpected input after EXECUTE arguments");
  }
  return ExecutePrepared(name, args, stats);
}

Result<Table> Session::QueryDeallocateForm(const std::string& sql) {
  NESTRA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  if (tokens.size() < 2 || tokens[1].kind != TokenKind::kIdent ||
      (tokens.size() > 2 && tokens[2].kind != TokenKind::kEof)) {
    return Status::ParseError("expected DEALLOCATE <name>");
  }
  NESTRA_RETURN_NOT_OK(Deallocate(tokens[1].text));
  return Table();
}

}  // namespace nestra
