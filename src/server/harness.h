#ifndef NESTRA_SERVER_HARNESS_H_
#define NESTRA_SERVER_HARNESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/table.h"
#include "server/connection_manager.h"
#include "server/session.h"

namespace nestra {

/// \brief One simulated client: a statement script run through its own
/// Session, in order, `repeat` times.
struct ClientScript {
  std::vector<std::string> statements;
  int repeat = 1;
  /// Optional per-session setup (engine options, PREPAREs) run right after
  /// Connect, before timing starts.
  std::function<Status(Session&)> setup;
};

/// \brief Per-statement outcome plus aggregate load metrics for one
/// concurrent run.
struct HarnessResult {
  struct Outcome {
    bool ok = false;
    std::string error;    // status message when !ok
    uint64_t hash = 0;    // result fingerprint (HashTable) when ok
    int64_t rows = 0;
    double latency_ms = 0;
  };
  /// per_client[c][i]: client c's i-th statement execution (scripts repeat
  /// back-to-back, so i runs over repeat * statements.size() entries).
  std::vector<std::vector<Outcome>> per_client;
  int64_t total_statements = 0;
  int64_t errors = 0;
  double wall_seconds = 0;
  double qps = 0;     // completed statements / wall
  double p50_ms = 0;  // statement latency percentiles across all clients —
  double p99_ms = 0;  // tail latency, not min-of-N
};

/// Order-sensitive fingerprint of a result table: schema + every value, so
/// two tables hash equal iff they are bit-identical (same rows, same order,
/// same types). Used by the bit-identical-to-serial gates.
uint64_t HashTable(const Table& table);

/// Runs every client script on its own thread, each with its own Session
/// from `manager`, and aggregates latency/throughput. The harness only
/// drives sessions — admission control and the schema lock come from the
/// manager, exactly as for any other caller.
HarnessResult RunConcurrentClients(ConnectionManager& manager,
                                   const std::vector<ClientScript>& clients);

}  // namespace nestra

#endif  // NESTRA_SERVER_HARNESS_H_
