#ifndef NESTRA_SERVER_CONNECTION_MANAGER_H_
#define NESTRA_SERVER_CONNECTION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>

#include "nra/options.h"
#include "server/admission.h"
#include "storage/catalog.h"

namespace nestra {

class Session;

/// \brief Server-level configuration shared by every session.
struct ServerOptions {
  /// Maximum concurrently executing queries across all sessions; waiters
  /// queue FIFO (see AdmissionController). <= 0 means unlimited.
  int max_in_flight = 0;
  /// Template for each new session's NraOptions (the session's label is
  /// stamped on top).
  NraOptions session_defaults;
};

/// \brief Owns the concurrency policy around one shared Catalog: hands out
/// sessions, gates query admission, and serializes DDL against running
/// queries.
///
/// The manager does not own the catalog (benches and the shell keep theirs
/// on the stack); it owns the locks that make sharing it safe:
///  * `schema lock` — every query executes under a shared lock, every DDL
///    wrapper under an exclusive one, so a DropTable can never free storage
///    an in-flight query is scanning. The Catalog's own shared_mutex guards
///    its map against torn reads; this coarser lock guards the *duration of
///    a query* against table storage vanishing.
///  * admission — a FIFO gate bounding in-flight queries (ServerOptions).
///
/// All DDL must go through the manager once sessions exist (enforced
/// repo-wide by tools/lint_engine_invariants.py's catalog-mutation check).
/// Do not call Session::Query from inside a Ddl callback — the exclusive
/// schema lock is held and the query's shared acquisition would deadlock.
class ConnectionManager {
 public:
  explicit ConnectionManager(Catalog* catalog, ServerOptions options = {});
  ~ConnectionManager();

  ConnectionManager(const ConnectionManager&) = delete;
  ConnectionManager& operator=(const ConnectionManager&) = delete;

  /// Opens a session with a fresh id ("s1", "s2", ...). Sessions must not
  /// outlive the manager. A Session is single-threaded; open one per client
  /// thread.
  std::unique_ptr<Session> Connect();

  // DDL wrappers: exclusive against every running query.
  Status RegisterTable(const std::string& name, Table table,
                       const std::string& primary_key = "",
                       std::set<std::string> not_null_columns = {});
  Status DropTable(const std::string& name);
  Status AddNotNull(const std::string& table_name, const std::string& column);
  Status DropNotNull(const std::string& table_name, const std::string& column);
  /// Bulk catalog mutation (PopulateTpch, LoadCatalog, ...) under the
  /// exclusive schema lock.
  Status Ddl(const std::function<Status(Catalog*)>& fn);

  const Catalog& catalog() const { return *catalog_; }
  AdmissionController& admission() { return admission_; }
  const ServerOptions& options() const { return options_; }

  int active_sessions() const {
    return active_sessions_.load(std::memory_order_acquire);
  }
  int64_t sessions_opened_total() const {
    return sessions_opened_.load(std::memory_order_acquire);
  }

 private:
  friend class Session;

  Catalog* catalog_;
  ServerOptions options_;
  AdmissionController admission_;
  // Queries shared, DDL exclusive (see class comment).
  std::shared_mutex schema_mu_;
  std::atomic<int64_t> next_session_id_{0};
  std::atomic<int> active_sessions_{0};
  std::atomic<int64_t> sessions_opened_{0};
};

}  // namespace nestra

#endif  // NESTRA_SERVER_CONNECTION_MANAGER_H_
