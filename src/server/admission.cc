#include "server/admission.h"

#include <algorithm>

namespace nestra {

void AdmissionController::Acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t ticket = next_ticket_++;
  const int depth = static_cast<int>(next_ticket_ - serving_);
  peak_queue_depth_ = std::max(peak_queue_depth_, depth);
  cv_.wait(lock, [&] {
    return ticket == serving_ && (max_ <= 0 || in_flight_ < max_);
  });
  ++serving_;
  ++in_flight_;
  ++admitted_total_;
  peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
  // The next ticket holder may also fit under the limit — let it check.
  cv_.notify_all();
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  --in_flight_;
  cv_.notify_all();
}

int AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

int AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(next_ticket_ - serving_);
}

int64_t AdmissionController::admitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_total_;
}

int AdmissionController::peak_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_in_flight_;
}

int AdmissionController::peak_queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_queue_depth_;
}

}  // namespace nestra
