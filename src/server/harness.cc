#include "server/harness.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace nestra {

namespace {

using Clock = std::chrono::steady_clock;

constexpr uint64_t kHashOffset = 1469598103934665603ULL;
constexpr uint64_t kHashPrime = 1099511628211ULL;

void HashBytes(const std::string& s, uint64_t* h) {
  for (const char c : s) {
    *h ^= static_cast<unsigned char>(c);
    *h *= kHashPrime;
  }
  // Field separator so {"ab","c"} and {"a","bc"} differ.
  *h ^= 0xff;
  *h *= kHashPrime;
}

}  // namespace

uint64_t HashTable(const Table& table) {
  uint64_t h = kHashOffset;
  for (const Field& f : table.schema().fields()) {
    HashBytes(f.name, &h);
    HashBytes(std::to_string(static_cast<int>(f.type)), &h);
  }
  for (const Row& row : table.rows()) {
    for (const Value& v : row.values()) {
      HashBytes(v.is_null() ? "\x01NULL" : v.ToString(), &h);
    }
    h ^= 0xfe;
    h *= kHashPrime;
  }
  HashBytes(std::to_string(table.num_rows()), &h);
  return h;
}

HarnessResult RunConcurrentClients(ConnectionManager& manager,
                                   const std::vector<ClientScript>& clients) {
  HarnessResult result;
  result.per_client.resize(clients.size());
  std::vector<std::string> setup_errors(clients.size());

  const Clock::time_point wall_start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients.size());
  for (size_t c = 0; c < clients.size(); ++c) {
    threads.emplace_back([&, c] {
      const ClientScript& script = clients[c];
      std::vector<HarnessResult::Outcome>& outcomes = result.per_client[c];
      std::unique_ptr<Session> session = manager.Connect();
      if (script.setup) {
        const Status s = script.setup(*session);
        if (!s.ok()) {
          setup_errors[c] = s.message();
          return;
        }
      }
      outcomes.reserve(script.statements.size() *
                       static_cast<size_t>(std::max(1, script.repeat)));
      for (int r = 0; r < std::max(1, script.repeat); ++r) {
        for (const std::string& sql : script.statements) {
          HarnessResult::Outcome out;
          const Clock::time_point start = Clock::now();
          Result<Table> table = session->Query(sql);
          out.latency_ms =
              std::chrono::duration<double>(Clock::now() - start).count() *
              1e3;
          if (table.ok()) {
            out.ok = true;
            out.hash = HashTable(*table);
            out.rows = table->num_rows();
          } else {
            out.error = table.status().message();
          }
          outcomes.push_back(std::move(out));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall_start).count();

  std::vector<double> latencies;
  for (size_t c = 0; c < result.per_client.size(); ++c) {
    if (!setup_errors[c].empty()) {
      // Surface a failed setup as one failed statement so callers notice.
      HarnessResult::Outcome out;
      out.error = "setup: " + setup_errors[c];
      result.per_client[c].push_back(std::move(out));
    }
    for (const HarnessResult::Outcome& out : result.per_client[c]) {
      ++result.total_statements;
      if (!out.ok) ++result.errors;
      latencies.push_back(out.latency_ms);
    }
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const auto pct = [&](double p) {
      const size_t idx = static_cast<size_t>(
          p * static_cast<double>(latencies.size() - 1) + 0.5);
      return latencies[std::min(idx, latencies.size() - 1)];
    };
    result.p50_ms = pct(0.50);
    result.p99_ms = pct(0.99);
  }
  if (result.wall_seconds > 0) {
    result.qps =
        static_cast<double>(result.total_statements) / result.wall_seconds;
  }
  return result;
}

}  // namespace nestra
