#ifndef NESTRA_NESTED_LINKING_SELECTION_H_
#define NESTRA_NESTED_LINKING_SELECTION_H_

#include <string>
#include <vector>

#include "common/table.h"
#include "nested/linking_predicate.h"
#include "nested/nested_relation.h"

namespace nestra {

/// \brief Which selection of Definition 5 to apply.
///
/// kStrict is the usual selection σ_C: keep exactly the tuples where C is
/// TRUE. kPseudo is the pseudo-selection σ̄_{C,A}: keep passing tuples
/// unchanged, and keep *failing* tuples too but with the attributes in A
/// padded to NULL. The paper uses kPseudo whenever a negative or mixed
/// linking predicate still has enclosing predicates to compute (a failing
/// inner set must not delete the outer tuple — it must merely not count as a
/// member at the next level, which the NULLed primary key achieves), and
/// kStrict for the last unfinished predicate or when all remaining
/// predicates are positive.
enum class SelectionMode { kStrict, kPseudo };

/// \brief Applies the linking selection for `pred` to a nested relation and
/// consumes the predicate's group: the output contains the input's atom
/// attributes only (the paper composes each linking selection with a
/// projection onto the atoms, cf. Figures 2(b)/2(c) where "the projection
/// operation ... is omitted").
///
/// `pad_attrs` (atom attribute names) is only used in kPseudo mode.
/// The relation must be one-level with exactly the predicate's group.
Result<Table> LinkingSelect(const NestedRelation& input,
                            const LinkingPredicate& pred, SelectionMode mode,
                            const std::vector<std::string>& pad_attrs = {});

/// \brief Non-consuming variant used by the paper-figure tests: returns the
/// nested relation with failing tuples dropped (kStrict) or padded
/// (kPseudo), groups retained.
Result<NestedRelation> LinkingSelectNested(
    const NestedRelation& input, const LinkingPredicate& pred,
    SelectionMode mode, const std::vector<std::string>& pad_attrs = {});

}  // namespace nestra

#endif  // NESTRA_NESTED_LINKING_SELECTION_H_
