#ifndef NESTRA_NESTED_UNNEST_H_
#define NESTRA_NESTED_UNNEST_H_

#include <string>

#include "nested/nested_relation.h"

namespace nestra {

/// \brief The inverse of nest: flattens the named group, producing one tuple
/// per (parent, member) pair. A tuple whose group is empty disappears (the
/// standard unnest; information loss on empty groups is the classical reason
/// unnest is only a one-sided inverse of nest).
///
/// The member's atoms are appended after the parent atoms; the member's own
/// groups (if any) become groups of the output, so unnesting a two-level
/// relation yields a one-level relation.
Result<NestedRelation> Unnest(const NestedRelation& input,
                              const std::string& group_name);

}  // namespace nestra

#endif  // NESTRA_NESTED_UNNEST_H_
