#ifndef NESTRA_NESTED_NESTED_RELATION_H_
#define NESTRA_NESTED_NESTED_RELATION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "nested/nested_schema.h"

namespace nestra {

/// \brief A nested tuple: atomic values plus, per subschema, a set of child
/// nested tuples (Definition 2). Stored as a vector; set-vs-bag does not
/// affect any linking predicate, see Nest() docs.
struct NestedTuple {
  Row atoms;
  std::vector<std::vector<NestedTuple>> groups;  // parallel to schema groups

  bool operator==(const NestedTuple& other) const;
};

/// \brief A finite set of nested tuples over a NestedSchema.
class NestedRelation {
 public:
  NestedRelation() : schema_(std::make_shared<NestedSchema>()) {}
  explicit NestedRelation(std::shared_ptr<const NestedSchema> schema)
      : schema_(std::move(schema)) {}

  const NestedSchema& schema() const { return *schema_; }
  std::shared_ptr<const NestedSchema> shared_schema() const { return schema_; }

  const std::vector<NestedTuple>& tuples() const { return tuples_; }
  std::vector<NestedTuple>& tuples() { return tuples_; }
  int64_t num_tuples() const { return static_cast<int64_t>(tuples_.size()); }

  /// A flat table viewed as a depth-0 nested relation.
  static NestedRelation FromTable(const Table& table);

  /// Back to a flat table; fails unless depth() == 0.
  Result<Table> ToTable() const;

  /// Order-insensitive deep equality (atoms ordered by total order, groups
  /// compared as sorted bags). Intended for tests.
  static bool BagEquals(const NestedRelation& a, const NestedRelation& b);

  /// Multi-line rendering: one line per tuple, groups in braces — the format
  /// used by the paper-figure golden tests.
  std::string ToString() const;

 private:
  std::shared_ptr<const NestedSchema> schema_;
  std::vector<NestedTuple> tuples_;
};

}  // namespace nestra

#endif  // NESTRA_NESTED_NESTED_RELATION_H_
