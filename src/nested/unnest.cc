#include "nested/unnest.h"

namespace nestra {

Result<NestedRelation> Unnest(const NestedRelation& input,
                              const std::string& group_name) {
  NESTRA_ASSIGN_OR_RETURN(int gidx, input.schema().GroupIndex(group_name));
  const NestedSchema& member_schema = *input.schema().groups()[gidx].schema;

  // Output atoms: parent atoms ++ member atoms. Output groups: parent's other
  // groups, then the member's groups.
  Schema out_atoms =
      Schema::Concat(input.schema().atoms(), member_schema.atoms());
  std::vector<NestedSchema::Group> out_groups;
  for (int i = 0; i < input.schema().num_groups(); ++i) {
    if (i != gidx) out_groups.push_back(input.schema().groups()[i]);
  }
  const size_t parent_group_count = out_groups.size();
  for (const auto& g : member_schema.groups()) out_groups.push_back(g);

  auto out_schema = std::make_shared<NestedSchema>(std::move(out_atoms),
                                                   std::move(out_groups));
  NestedRelation out(std::move(out_schema));

  for (const NestedTuple& t : input.tuples()) {
    for (const NestedTuple& m : t.groups[gidx]) {
      NestedTuple o;
      o.atoms = Row::Concat(t.atoms, m.atoms);
      o.groups.reserve(parent_group_count + m.groups.size());
      for (size_t i = 0; i < t.groups.size(); ++i) {
        if (static_cast<int>(i) != gidx) o.groups.push_back(t.groups[i]);
      }
      for (const auto& g : m.groups) o.groups.push_back(g);
      out.tuples().push_back(std::move(o));
    }
  }
  return out;
}

}  // namespace nestra
