#include "nested/nest.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "common/hash_key.h"
#include "common/parallel_sort.h"

namespace nestra {

namespace {

Result<std::vector<int>> ResolveAll(const Schema& schema,
                                    const std::vector<std::string>& names) {
  std::vector<int> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    NESTRA_ASSIGN_OR_RETURN(int idx, schema.Resolve(n));
    out.push_back(idx);
  }
  return out;
}

}  // namespace

Result<NestedRelation> Nest(const NestedRelation& input,
                            const std::vector<std::string>& nesting_attrs,
                            const std::vector<std::string>& nested_attrs,
                            const std::string& group_name, NestMethod method,
                            int num_threads) {
  const Schema& atoms = input.schema().atoms();
  NESTRA_ASSIGN_OR_RETURN(std::vector<int> n1, ResolveAll(atoms, nesting_attrs));
  NESTRA_ASSIGN_OR_RETURN(std::vector<int> n2, ResolveAll(atoms, nested_attrs));
  for (int i : n1) {
    for (int j : n2) {
      if (i == j) {
        return Status::InvalidArgument(
            "nest: N1 and N2 must be disjoint; both contain " +
            atoms.field(i).name);
      }
    }
  }

  // Member schema: N2 atoms plus the input's existing groups (consecutive
  // nests deepen the relation).
  auto member_schema = std::make_shared<NestedSchema>(
      atoms.Select(n2), input.schema().groups());
  auto out_schema = std::make_shared<NestedSchema>(atoms.Select(n1));
  out_schema->AddGroup(group_name, member_schema);

  NestedRelation out(out_schema);

  auto make_member = [&](const NestedTuple& t) {
    NestedTuple m;
    m.atoms = t.atoms.Select(n2);
    m.groups = t.groups;
    return m;
  };
  auto make_key = [&](const NestedTuple& t) {
    std::vector<Value> key;
    key.reserve(n1.size());
    for (int idx : n1) key.push_back(t.atoms[idx]);
    return key;
  };

  if (method == NestMethod::kHash) {
    std::unordered_map<std::vector<Value>, int64_t, SqlValueKeyHash,
                       SqlValueKeyEq>
        group_of;
    for (const NestedTuple& t : input.tuples()) {
      // Single hash lookup per tuple: try_emplace leaves the key intact when
      // the group already exists.
      const auto [it, inserted] = group_of.try_emplace(
          make_key(t), static_cast<int64_t>(out.tuples().size()));
      if (inserted) {
        NestedTuple g;
        g.atoms = t.atoms.Select(n1);
        g.groups.push_back({make_member(t)});
        out.tuples().push_back(std::move(g));
      } else {
        // The group tuple was created with exactly one (new) group level;
        // members of consecutive nests live inside the member schema.
        NESTRA_DCHECK(out.tuples()[it->second].groups.size() == 1);
        out.tuples()[it->second].groups[0].push_back(make_member(t));
      }
    }
    return out;
  }

  // Sort-based: order tuple indices by N1 and cut runs. The stable order is
  // unique, so the parallel sort reproduces the serial group order exactly.
  std::vector<int64_t> order(input.tuples().size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  ParallelStableSort(
      &order,
      [&](int64_t a, int64_t b) {
        return Row::CompareOn(input.tuples()[a].atoms, input.tuples()[b].atoms,
                              n1) < 0;
      },
      num_threads);
  for (size_t i = 0; i < order.size(); ++i) {
    const NestedTuple& t = input.tuples()[order[i]];
    const bool new_group =
        i == 0 ||
        Row::CompareOn(input.tuples()[order[i - 1]].atoms, t.atoms, n1) != 0;
    if (new_group) {
      NestedTuple g;
      g.atoms = t.atoms.Select(n1);
      g.groups.push_back({});
      out.tuples().push_back(std::move(g));
    }
    // A run boundary always created the group this member lands in.
    NESTRA_DCHECK(!out.tuples().empty() &&
                  out.tuples().back().groups.size() == 1);
    out.tuples().back().groups[0].push_back(make_member(t));
  }
  return out;
}

Result<NestedRelation> Nest(const Table& input,
                            const std::vector<std::string>& nesting_attrs,
                            const std::vector<std::string>& nested_attrs,
                            const std::string& group_name, NestMethod method,
                            int num_threads) {
  return Nest(NestedRelation::FromTable(input), nesting_attrs, nested_attrs,
              group_name, method, num_threads);
}

}  // namespace nestra
