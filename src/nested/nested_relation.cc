#include "nested/nested_relation.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace nestra {

namespace {

// Deep total order on nested tuples (atoms lexicographic, then groups as
// sorted sequences) used to canonicalize for BagEquals.
int CompareNestedTuples(const NestedTuple& a, const NestedTuple& b);

int CompareGroups(const std::vector<NestedTuple>& a,
                  const std::vector<NestedTuple>& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = CompareNestedTuples(a[i], b[i]);
    if (c != 0) return c;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

int CompareNestedTuples(const NestedTuple& a, const NestedTuple& b) {
  const int c = Row::Compare(a.atoms, b.atoms);
  if (c != 0) return c;
  const size_t n = std::min(a.groups.size(), b.groups.size());
  for (size_t i = 0; i < n; ++i) {
    const int g = CompareGroups(a.groups[i], b.groups[i]);
    if (g != 0) return g;
  }
  if (a.groups.size() != b.groups.size()) {
    return a.groups.size() < b.groups.size() ? -1 : 1;
  }
  return 0;
}

void Canonicalize(NestedTuple* t) {
  for (auto& g : t->groups) {
    for (NestedTuple& child : g) Canonicalize(&child);
    std::sort(g.begin(), g.end(),
              [](const NestedTuple& x, const NestedTuple& y) {
                return CompareNestedTuples(x, y) < 0;
              });
  }
}

void RenderTuple(const NestedTuple& t, std::ostringstream* oss) {
  *oss << "(";
  for (int i = 0; i < t.atoms.size(); ++i) {
    if (i > 0) *oss << ", ";
    *oss << t.atoms[i].ToString();
  }
  for (const auto& g : t.groups) {
    if (!t.atoms.empty() || &g != &t.groups.front()) *oss << ", ";
    *oss << "{";
    for (size_t i = 0; i < g.size(); ++i) {
      if (i > 0) *oss << ", ";
      RenderTuple(g[i], oss);
    }
    *oss << "}";
  }
  *oss << ")";
}

}  // namespace

bool NestedTuple::operator==(const NestedTuple& other) const {
  return CompareNestedTuples(*this, other) == 0;
}

NestedRelation NestedRelation::FromTable(const Table& table) {
  auto schema = std::make_shared<NestedSchema>(table.schema());
  NestedRelation out(std::move(schema));
  out.tuples_.reserve(static_cast<size_t>(table.num_rows()));
  for (const Row& r : table.rows()) {
    out.tuples_.push_back(NestedTuple{r, {}});
  }
  return out;
}

Result<Table> NestedRelation::ToTable() const {
  if (schema_->depth() != 0) {
    return Status::InvalidArgument(
        "ToTable requires a flat (depth 0) nested relation; depth is " +
        std::to_string(schema_->depth()));
  }
  Table out(schema_->atoms());
  out.Reserve(tuples_.size());
  for (const NestedTuple& t : tuples_) out.AppendUnchecked(t.atoms);
  return out;
}

bool NestedRelation::BagEquals(const NestedRelation& a,
                               const NestedRelation& b) {
  if (!a.schema().Equals(b.schema())) return false;
  if (a.num_tuples() != b.num_tuples()) return false;
  std::vector<NestedTuple> ta = a.tuples_;
  std::vector<NestedTuple> tb = b.tuples_;
  for (NestedTuple& t : ta) Canonicalize(&t);
  for (NestedTuple& t : tb) Canonicalize(&t);
  auto less = [](const NestedTuple& x, const NestedTuple& y) {
    return CompareNestedTuples(x, y) < 0;
  };
  std::sort(ta.begin(), ta.end(), less);
  std::sort(tb.begin(), tb.end(), less);
  for (size_t i = 0; i < ta.size(); ++i) {
    if (CompareNestedTuples(ta[i], tb[i]) != 0) return false;
  }
  return true;
}

std::string NestedRelation::ToString() const {
  std::ostringstream oss;
  oss << schema_->ToString() << "\n";
  for (const NestedTuple& t : tuples_) {
    RenderTuple(t, &oss);
    oss << "\n";
  }
  return oss.str();
}

}  // namespace nestra
