#ifndef NESTRA_NESTED_NESTED_SCHEMA_H_
#define NESTRA_NESTED_NESTED_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"

namespace nestra {

/// \brief A (possibly) nested relational schema, Definition 1 of the paper:
/// atomic attributes plus named subschemas. depth() is 0 for a flat schema
/// and 1 + max subschema depth otherwise.
class NestedSchema {
 public:
  struct Group {
    std::string name;
    std::shared_ptr<const NestedSchema> schema;
  };

  NestedSchema() = default;
  explicit NestedSchema(Schema atoms) : atoms_(std::move(atoms)) {}
  NestedSchema(Schema atoms, std::vector<Group> groups)
      : atoms_(std::move(atoms)), groups_(std::move(groups)) {}

  const Schema& atoms() const { return atoms_; }
  const std::vector<Group>& groups() const { return groups_; }
  int num_groups() const { return static_cast<int>(groups_.size()); }

  /// Definition 1: depth of the schema.
  int depth() const;

  /// Index of the named group, or error.
  Result<int> GroupIndex(const std::string& name) const;

  void AddGroup(std::string name, std::shared_ptr<const NestedSchema> schema) {
    groups_.push_back({std::move(name), std::move(schema)});
  }

  bool Equals(const NestedSchema& other) const;

  std::string ToString() const;

 private:
  Schema atoms_;
  std::vector<Group> groups_;
};

}  // namespace nestra

#endif  // NESTRA_NESTED_NESTED_SCHEMA_H_
