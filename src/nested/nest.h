#ifndef NESTRA_NESTED_NEST_H_
#define NESTRA_NESTED_NEST_H_

#include <string>
#include <vector>

#include "common/table.h"
#include "nested/nested_relation.h"

namespace nestra {

/// \brief Physical implementation choice for the nest operator. The paper
/// observes nest is "like a group-by: the two obvious options are sorting
/// and hashing"; the ablation bench compares them.
enum class NestMethod { kSort, kHash };

/// \brief The paper's redefined nest operator (Definition 3):
/// `υ_{N1,N2}(r)` — nest `r` by the nesting attributes N1, keeping the
/// nested attributes N2, with an implicit projection onto N1 ∪ N2.
///
/// N1 and N2 must be disjoint attribute lists of `input`'s atoms. Existing
/// groups of `input` travel into the new members, so two consecutive nests
/// produce a two-level nested relation exactly as in §4.2.1.
///
/// Members are kept as a bag rather than a set: duplicates cannot change any
/// linking-predicate outcome (quantifications are idempotent per value) and
/// deduplication would cost an extra hash pass.
///
/// kSort produces groups in ascending N1 order; kHash produces them in
/// first-appearance order. Both yield BagEquals-identical results. Group-key
/// matching follows the SQL comparator (common/hash_key.h), so both methods
/// form the same groups even on mixed int64/float64 key columns.
///
/// `num_threads > 1` parallelizes the kSort method's sort (the hash build is
/// inherently order-dependent and stays serial); the output is identical to
/// the serial run.
Result<NestedRelation> Nest(const NestedRelation& input,
                            const std::vector<std::string>& nesting_attrs,
                            const std::vector<std::string>& nested_attrs,
                            const std::string& group_name,
                            NestMethod method = NestMethod::kSort,
                            int num_threads = 1);

/// Convenience overload for a flat table input.
Result<NestedRelation> Nest(const Table& input,
                            const std::vector<std::string>& nesting_attrs,
                            const std::vector<std::string>& nested_attrs,
                            const std::string& group_name,
                            NestMethod method = NestMethod::kSort,
                            int num_threads = 1);

}  // namespace nestra

#endif  // NESTRA_NESTED_NEST_H_
