#include "nested/linking_selection.h"

namespace nestra {

namespace {

Result<std::vector<int>> ResolvePadAttrs(
    const Schema& atoms, const std::vector<std::string>& pad_attrs) {
  std::vector<int> out;
  out.reserve(pad_attrs.size());
  for (const std::string& a : pad_attrs) {
    NESTRA_ASSIGN_OR_RETURN(int idx, atoms.Resolve(a));
    out.push_back(idx);
  }
  return out;
}

}  // namespace

Result<Table> LinkingSelect(const NestedRelation& input,
                            const LinkingPredicate& pred, SelectionMode mode,
                            const std::vector<std::string>& pad_attrs) {
  NESTRA_ASSIGN_OR_RETURN(BoundLinkingPredicate bound,
                          BoundLinkingPredicate::Make(pred, input.schema()));
  std::vector<int> pad_idx;
  if (mode == SelectionMode::kPseudo) {
    NESTRA_ASSIGN_OR_RETURN(pad_idx,
                            ResolvePadAttrs(input.schema().atoms(), pad_attrs));
  }

  // Padded atoms become nullable.
  std::vector<Field> fields = input.schema().atoms().fields();
  for (int i : pad_idx) fields[i].nullable = true;
  Table out{Schema(std::move(fields))};
  out.Reserve(static_cast<size_t>(input.num_tuples()));

  for (const NestedTuple& t : input.tuples()) {
    const TriBool r = bound.Eval(t);
    if (IsTrue(r)) {
      out.AppendUnchecked(t.atoms);
    } else if (mode == SelectionMode::kPseudo) {
      Row padded = t.atoms;
      for (int i : pad_idx) padded[i] = Value::Null();
      out.AppendUnchecked(std::move(padded));
    }
    // kStrict + not TRUE: dropped (UNKNOWN filters out, SQL WHERE style).
  }
  return out;
}

Result<NestedRelation> LinkingSelectNested(
    const NestedRelation& input, const LinkingPredicate& pred,
    SelectionMode mode, const std::vector<std::string>& pad_attrs) {
  NESTRA_ASSIGN_OR_RETURN(BoundLinkingPredicate bound,
                          BoundLinkingPredicate::Make(pred, input.schema()));
  std::vector<int> pad_idx;
  if (mode == SelectionMode::kPseudo) {
    NESTRA_ASSIGN_OR_RETURN(pad_idx,
                            ResolvePadAttrs(input.schema().atoms(), pad_attrs));
  }

  NestedRelation out(input.shared_schema());
  out.tuples().reserve(static_cast<size_t>(input.num_tuples()));
  for (const NestedTuple& t : input.tuples()) {
    const TriBool r = bound.Eval(t);
    if (IsTrue(r)) {
      out.tuples().push_back(t);
    } else if (mode == SelectionMode::kPseudo) {
      NestedTuple padded = t;
      for (int i : pad_idx) padded.atoms[i] = Value::Null();
      out.tuples().push_back(std::move(padded));
    }
  }
  return out;
}

}  // namespace nestra
