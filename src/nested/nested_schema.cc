#include "nested/nested_schema.h"

#include <algorithm>
#include <sstream>

namespace nestra {

int NestedSchema::depth() const {
  int max_child = -1;
  for (const Group& g : groups_) {
    max_child = std::max(max_child, g.schema->depth());
  }
  return max_child + 1;  // no groups -> depth 0
}

Result<int> NestedSchema::GroupIndex(const std::string& name) const {
  for (int i = 0; i < num_groups(); ++i) {
    if (groups_[i].name == name) return i;
  }
  return Status::NotFound("nested group not found: " + name);
}

bool NestedSchema::Equals(const NestedSchema& other) const {
  if (!atoms_.Equals(other.atoms_)) return false;
  if (groups_.size() != other.groups_.size()) return false;
  for (size_t i = 0; i < groups_.size(); ++i) {
    if (groups_[i].name != other.groups_[i].name) return false;
    if (!groups_[i].schema->Equals(*other.groups_[i].schema)) return false;
  }
  return true;
}

std::string NestedSchema::ToString() const {
  std::ostringstream oss;
  oss << "(";
  for (int i = 0; i < atoms_.num_fields(); ++i) {
    if (i > 0) oss << ", ";
    oss << atoms_.field(i).name;
  }
  for (const Group& g : groups_) {
    if (atoms_.num_fields() > 0 || &g != &groups_.front()) oss << ", ";
    oss << g.name << ": " << g.schema->ToString();
  }
  oss << ")";
  return oss.str();
}

}  // namespace nestra
