#ifndef NESTRA_NESTED_FUSED_NEST_SELECT_H_
#define NESTRA_NESTED_FUSED_NEST_SELECT_H_

#include <string>
#include <vector>

#include "exec/exec_node.h"
#include "nested/linking_predicate.h"
#include "nested/linking_selection.h"

namespace nestra {

/// \brief One nesting level of the fused evaluator. Levels are listed
/// outermost first; each level's `nesting_attrs` must be a superset of the
/// previous level's (the paper's observation that "higher levels nest by a
/// prefix of the nesting attributes used by lower levels", §4.2.1), and the
/// input stream must be sorted by the innermost level's nesting attributes.
///
/// The linking predicate's attribute names all refer to columns of the flat
/// input schema: `linking_attr` must be functionally determined by this
/// level's nesting attributes, and `linked_attr`/`member_key_attr` by the
/// next level's (they are read from the representative row of the inner
/// group when it closes).
struct FusedLevelSpec {
  std::vector<std::string> nesting_attrs;
  LinkingPredicate pred;
  SelectionMode mode = SelectionMode::kPseudo;
  /// Outermost level only: in kPseudo mode a failing group is still emitted,
  /// with these columns (names within `nesting_attrs`) nulled — the
  /// streaming form of the pseudo-selection, used when the fused evaluator
  /// runs as one stage of a larger (tree-query) pipeline. Inner levels need
  /// no pad list: a failing inner group simply contributes no member.
  std::vector<std::string> pad_attrs;
};

/// \brief The optimized nested relational evaluator: all nest operations in
/// a single (external) sort, then one streaming pass that pipelines every
/// nest with its linking selection (§4.2.1 + §4.2.2).
///
/// Group boundaries are detected by key-prefix change; when an inner group
/// closes, its predicate result decides whether the group contributes a
/// member to the enclosing level:
///  * result TRUE  -> contributes (member key, linked value) read from the
///                    group's representative row;
///  * otherwise    -> contributes nothing. (For a pseudo-selection this is
///    the NULL-padded member whose NULL key excludes it from the
///    quantification; for a strict selection the tuple is dropped — in the
///    streaming form both reduce to "no member", and the outer group still
///    exists because its rows were seen. The two modes therefore coincide
///    here, which is exactly why the paper restricts strict mode to
///    positions where the distinction cannot matter.)
///
/// The outermost level emits its nesting-attribute prefix for groups whose
/// predicate is TRUE. Output schema = outermost nesting attributes.
class FusedNestSelectNode final : public ExecNode {
 public:
  /// `child` must produce rows sorted by `levels.back().nesting_attrs`.
  FusedNestSelectNode(ExecNodePtr child, std::vector<FusedLevelSpec> levels);

  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "FusedNestSelect"; }
  PipelineRole role() const override {
    return PipelineRole::kSerialStreaming;
  }
  std::string detail() const override;
  std::vector<ExecNode*> children() const override { return {child_.get()}; }

  /// Groups closed at each level so far (bench counter; index 0 = outermost).
  const std::vector<int64_t>& groups_closed() const { return groups_closed_; }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* out, bool* eof) override;
  Status NextBatchImpl(RowBatch* out, bool* eof) override;
  void CloseImpl() override { child_->Close(); }

 private:
  struct LevelState {
    std::vector<int> key_idx;    // group key columns (flat schema)
    int linking_idx = -1;        // pred's outer attribute (flat schema)
    int linked_idx = -1;         // pred's member attribute (flat schema)
    int member_key_idx = -1;     // pred's member primary key (flat schema)
    std::vector<int> pad_idx;    // output positions to null on pseudo fail
    LinkingAccumulator acc;
    Row rep;                     // representative (first) row of open group
    bool open = false;

    // Batched form: instead of copying the full (wide) representative row,
    // each open group keeps only the values FinalizeLevel actually reads —
    // the level-0 output prefix, or the member key/linked value fed to the
    // enclosing accumulator.
    std::vector<Value> rep_out;  // level 0: values at output_idx_
    Value rep_member;            // level > 0: value at parent member_key_idx
    Value rep_linked;            // level > 0: value at parent linked_idx
  };

  // Closes level `i`, feeding the member upward or emitting at level 0.
  // Returns true if an output row was produced (stored in pending_).
  bool FinalizeLevel(int i);

  // Opens a group at level `i` with `row` as representative.
  void OpenLevel(int i, const Row& row);

  // Batched equivalents, reading cells of input_ / emitting into `out`.
  void FinalizeLevelBatch(int i, RowBatch* out);
  void OpenLevelBatch(int i, int64_t r);
  // True when level `i`'s group key differs between row `r` of input_ and
  // the previous stream row (row r-1, or prev_keys_ across batches).
  bool KeyChangedBatch(int i, int64_t r) const;
  void ProcessBatchRow(int64_t r, RowBatch* out);

  ExecNodePtr child_;
  std::vector<FusedLevelSpec> specs_;
  Schema schema_;
  std::vector<int> output_idx_;  // outermost nesting attrs in flat schema

  std::vector<LevelState> levels_;
  Row prev_row_;
  bool has_prev_ = false;
  bool input_done_ = false;
  bool pending_valid_ = false;
  Row pending_;
  std::vector<int64_t> groups_closed_;

  // Batched-consumption state. The innermost level's nesting attributes
  // contain every level's (§4.2.1 prefix property), so prev_keys_ holds
  // just those columns' values for the last row of the previous batch;
  // per-level key compares go through key_slot_ (position of each level
  // key in the innermost key list).
  RowBatch input_;
  std::vector<Value> prev_keys_;
  std::vector<std::vector<size_t>> key_slot_;
};

}  // namespace nestra

#endif  // NESTRA_NESTED_FUSED_NEST_SELECT_H_
