#ifndef NESTRA_NESTED_LINKING_PREDICATE_H_
#define NESTRA_NESTED_LINKING_PREDICATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/tribool.h"
#include "common/value.h"
#include "nested/nested_relation.h"

namespace nestra {

/// \brief Surface-SQL linking operators (the paper's taxonomy). EXISTS,
/// SOME/ANY and IN are *positive*; NOT EXISTS, ALL and NOT IN are *negative*.
enum class LinkOp { kExists, kNotExists, kIn, kNotIn, kSome, kAll };

const char* LinkOpToString(LinkOp op);
bool IsPositiveLinkOp(LinkOp op);

/// \brief Quantifier of an algebraic linking predicate.
enum class Quantifier { kSome, kAll };

/// \brief Aggregate function of a *scalar-aggregate* linking predicate —
/// the extension of the paper's framework to `A θ (SELECT agg(B) ...)`
/// subqueries: the same nest groups the members, but instead of
/// quantifying the comparison the group is folded to a single value first.
/// SQL semantics: aggregates ignore NULL inputs; MIN/MAX/SUM/AVG over an
/// empty (or all-NULL) group are NULL (so the comparison is UNKNOWN) while
/// COUNT/COUNT(*) are 0.
enum class LinkAgg { kCount, kCountStar, kSum, kMin, kMax, kAvg };

const char* LinkAggToString(LinkAgg agg);

/// \brief Definition 4: a linking predicate over a nested relation — either
/// `A θ L {B}` (quantified comparison of an atomic attribute against a
/// nested one) or `{B} = ∅` / `{B} ≠ ∅` (emptiness tests, the algebraic
/// forms of NOT EXISTS / EXISTS).
///
/// Emptiness of the subquery result for a given tuple is detected via the
/// inner block's primary key (`member_key_attr`): outer-join padding leaves
/// it NULL, and a NULL key means "not a real member". Only real members
/// participate in the quantification — this is the paper's Example 1 rule
/// ("linking selection only compares the linking attribute to the linked
/// attribute whose corresponding primary key is not null").
struct LinkingPredicate {
  enum class Kind { kQuantified, kEmpty, kNotEmpty, kAggregate };

  Kind kind = Kind::kQuantified;
  CmpOp op = CmpOp::kEq;               // kQuantified / kAggregate
  Quantifier quant = Quantifier::kAll;  // kQuantified only
  LinkAgg agg = LinkAgg::kCount;        // kAggregate only
  std::string linking_attr;  // outer atomic attribute A (not kEmpty forms)
  /// SQL also allows a constant on the outer side ("5 < ALL (...)",
  /// "0 = (SELECT count(*) ...)"); when set, linking_attr is ignored.
  bool linking_is_const = false;
  Value linking_const;
  std::string group_name;    // which subschema holds the members
  std::string linked_attr;   // member attribute B (empty for COUNT(*))
  std::string member_key_attr;  // member primary-key attribute

  /// True for NOT EXISTS / ALL / NOT IN forms — the ones whose evaluation
  /// needs the pseudo-selection when further predicates are pending.
  bool IsNegative() const;

  std::string ToString() const;
};

/// Translates a SQL linking operator into its algebraic form:
/// IN -> = SOME, NOT IN -> <> ALL, EXISTS -> {B} != empty,
/// NOT EXISTS -> {B} = empty, theta SOME / theta ALL -> themselves.
/// `cmp` is ignored for IN/NOT IN/EXISTS/NOT EXISTS.
LinkingPredicate MakeLinkingPredicate(LinkOp op, CmpOp cmp,
                                      std::string linking_attr,
                                      std::string group_name,
                                      std::string linked_attr,
                                      std::string member_key_attr);

/// Builds the scalar-aggregate form `A θ agg{B}`. `linked_attr` is empty
/// for COUNT(*).
LinkingPredicate MakeAggregateLinkingPredicate(LinkAgg agg, CmpOp cmp,
                                               std::string linking_attr,
                                               std::string group_name,
                                               std::string linked_attr,
                                               std::string member_key_attr);

/// \brief Column indices of a LinkingPredicate resolved against a concrete
/// one-level nested schema, for repeated evaluation.
struct BoundLinkingPredicate {
  LinkingPredicate pred;
  int group_index = -1;
  int linking_idx = -1;  // in parent atoms; -1 for emptiness predicates
  int linked_idx = -1;   // in member atoms; -1 for emptiness predicates
  int key_idx = -1;      // in member atoms

  static Result<BoundLinkingPredicate> Make(const LinkingPredicate& pred,
                                            const NestedSchema& schema);

  /// Evaluates the predicate for one nested tuple under SQL three-valued
  /// logic:
  ///  * SOME over the empty set is False, ALL over the empty set is True;
  ///  * a NULL on either side of a member comparison contributes Unknown;
  ///  * EXISTS / NOT EXISTS are two-valued on the member count.
  TriBool Eval(const NestedTuple& tuple) const;
};

/// \brief Incremental evaluation state for one group — the engine of the
/// fused (pipelined) nest+linking-selection of §4.2.2. Feed members one at a
/// time; Result() at any point equals BoundLinkingPredicate::Eval over the
/// members fed so far.
class LinkingAccumulator {
 public:
  LinkingAccumulator() = default;
  explicit LinkingAccumulator(const LinkingPredicate& pred);

  /// Resets for a new group with the given outer linking value (ignored for
  /// emptiness predicates).
  void Reset(const Value& linking_value);

  /// Adds one member: `key` the member's primary-key value, `linked` the
  /// member's linked-attribute value. NULL-key members are padding and do
  /// not count.
  void Add(const Value& key, const Value& linked);

  TriBool Result() const;

  /// True when no further member can change the outcome (short-circuit:
  /// a False for ALL, a True for SOME, a first member for EXISTS forms).
  bool Decided() const;

 private:
  LinkingPredicate::Kind kind_ = LinkingPredicate::Kind::kQuantified;
  CmpOp op_ = CmpOp::kEq;
  Quantifier quant_ = Quantifier::kAll;
  LinkAgg agg_ = LinkAgg::kCount;
  Value linking_value_;
  TriBool acc_ = TriBool::kTrue;
  int64_t member_count_ = 0;
  // Aggregate state (kAggregate only).
  int64_t agg_inputs_ = 0;  // non-NULL linked inputs
  double sum_ = 0;
  bool sum_is_int_ = true;
  Value extreme_;
};

}  // namespace nestra

#endif  // NESTRA_NESTED_LINKING_PREDICATE_H_
