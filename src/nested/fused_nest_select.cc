#include "nested/fused_nest_select.h"

#include <algorithm>

namespace nestra {

FusedNestSelectNode::FusedNestSelectNode(ExecNodePtr child,
                                         std::vector<FusedLevelSpec> levels)
    : child_(std::move(child)), specs_(std::move(levels)) {
  // Output schema: the outermost level's nesting attributes. Resolution
  // errors surface at Open(); construct a best-effort schema here.
  const Schema& in = child_->output_schema();
  std::vector<Field> fields;
  if (!specs_.empty()) {
    for (const std::string& a : specs_[0].nesting_attrs) {
      const Result<int> idx = in.Resolve(a);
      fields.push_back(idx.ok() ? in.field(*idx) : Field(a, TypeId::kInt64));
    }
  }
  schema_ = Schema(std::move(fields));
}

Status FusedNestSelectNode::OpenImpl() {
  NESTRA_RETURN_NOT_OK(child_->Open());
  if (specs_.empty()) {
    return Status::InvalidArgument("FusedNestSelect requires >= 1 level");
  }
  const Schema& in = child_->output_schema();

  levels_.clear();
  levels_.resize(specs_.size());
  groups_closed_.assign(specs_.size(), 0);
  for (size_t i = 0; i < specs_.size(); ++i) {
    LevelState& st = levels_[i];
    for (const std::string& a : specs_[i].nesting_attrs) {
      NESTRA_ASSIGN_OR_RETURN(int idx, in.Resolve(a));
      st.key_idx.push_back(idx);
    }
    const LinkingPredicate& p = specs_[i].pred;
    NESTRA_ASSIGN_OR_RETURN(st.member_key_idx, in.Resolve(p.member_key_attr));
    if (p.kind == LinkingPredicate::Kind::kQuantified ||
        p.kind == LinkingPredicate::Kind::kAggregate) {
      if (!p.linking_is_const) {
        NESTRA_ASSIGN_OR_RETURN(st.linking_idx, in.Resolve(p.linking_attr));
      }
      if (!p.linked_attr.empty()) {  // empty for COUNT(*)
        NESTRA_ASSIGN_OR_RETURN(st.linked_idx, in.Resolve(p.linked_attr));
      }
    }
    st.acc = LinkingAccumulator(p);
    // Containment check: each level's keys must include the previous
    // level's keys (prefix property of §4.2.1).
    if (i > 0) {
      for (int k : levels_[i - 1].key_idx) {
        const bool found = std::find(st.key_idx.begin(), st.key_idx.end(),
                                     k) != st.key_idx.end();
        if (!found) {
          return Status::InvalidArgument(
              "FusedNestSelect: level " + std::to_string(i) +
              " nesting attributes do not contain level " +
              std::to_string(i - 1) + "'s");
        }
      }
    }
  }

  output_idx_ = levels_[0].key_idx;
  // Pad positions are indices into the OUTPUT row (level-0 prefix).
  for (const std::string& a : specs_[0].pad_attrs) {
    NESTRA_ASSIGN_OR_RETURN(int flat, in.Resolve(a));
    for (size_t k = 0; k < output_idx_.size(); ++k) {
      if (output_idx_[k] == flat) {
        levels_[0].pad_idx.push_back(static_cast<int>(k));
      }
    }
  }
  has_prev_ = false;
  input_done_ = false;
  pending_valid_ = false;
  return Status::OK();
}

void FusedNestSelectNode::OpenLevel(int i, const Row& row) {
  LevelState& st = levels_[i];
  st.open = true;
  st.rep = row;
  st.acc.Reset(st.linking_idx >= 0 ? row[st.linking_idx]
                                   : specs_[i].pred.linking_const);
}

bool FusedNestSelectNode::FinalizeLevel(int i) {
  LevelState& st = levels_[i];
  st.open = false;
  ++groups_closed_[i];
  const TriBool r = st.acc.Result();
  if (i == 0) {
    if (IsTrue(r)) {
      pending_ = st.rep.Select(output_idx_);
      pending_valid_ = true;
      return true;
    }
    if (specs_[0].mode == SelectionMode::kPseudo) {
      pending_ = st.rep.Select(output_idx_);
      for (int k : st.pad_idx) pending_[k] = Value::Null();
      pending_valid_ = true;
      return true;
    }
    return false;
  }
  // Contribute a member to the enclosing level. The member's key and linked
  // values are this group's constants, read from the representative row; a
  // failing group contributes nothing (see class comment).
  LevelState& parent = levels_[i - 1];
  if (IsTrue(r)) {
    parent.acc.Add(st.rep[parent.member_key_idx],
                   parent.linked_idx >= 0 ? st.rep[parent.linked_idx]
                                          : Value::Null());
  }
  return false;
}

Status FusedNestSelectNode::NextImpl(Row* out, bool* eof) {
  const int m = static_cast<int>(levels_.size());
  while (true) {
    if (pending_valid_) {
      *out = std::move(pending_);
      pending_valid_ = false;
      *eof = false;
      return Status::OK();
    }
    if (input_done_) {
      *eof = true;
      return Status::OK();
    }

    Row row;
    bool child_eof = false;
    NESTRA_RETURN_NOT_OK(child_->Next(&row, &child_eof));

    if (child_eof) {
      input_done_ = true;
      if (has_prev_) {
        // Close everything, innermost first.
        for (int i = m - 1; i >= 0; --i) FinalizeLevel(i);
      }
      continue;  // pending_ may now hold the last output
    }

    if (!has_prev_) {
      for (int i = 0; i < m; ++i) OpenLevel(i, row);
      // The innermost level's members are the stream rows themselves.
      LevelState& inner = levels_[m - 1];
      inner.acc.Add(row[inner.member_key_idx],
                    inner.linked_idx >= 0 ? row[inner.linked_idx]
                                          : Value::Null());
      prev_row_ = std::move(row);
      has_prev_ = true;
      continue;
    }

    // Outermost level whose group key changed.
    int boundary = m;  // m = no change anywhere
    for (int i = 0; i < m; ++i) {
      if (Row::CompareOn(prev_row_, row, levels_[i].key_idx) != 0) {
        boundary = i;
        break;
      }
    }
    if (boundary < m) {
      for (int i = m - 1; i >= boundary; --i) FinalizeLevel(i);
      for (int i = boundary; i < m; ++i) OpenLevel(i, row);
    }
    LevelState& inner = levels_[m - 1];
    inner.acc.Add(row[inner.member_key_idx],
                  inner.linked_idx >= 0 ? row[inner.linked_idx]
                                        : Value::Null());
    prev_row_ = std::move(row);
  }
}

std::string FusedNestSelectNode::detail() const {
  std::string d = "levels=" + std::to_string(specs_.size()) + " groups=[";
  for (size_t i = 0; i < groups_closed_.size(); ++i) {
    if (i > 0) d += ',';
    d += std::to_string(groups_closed_[i]);
  }
  d += ']';
  return d;
}

}  // namespace nestra
