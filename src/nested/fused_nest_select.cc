#include "nested/fused_nest_select.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace nestra {

namespace {
// Group-boundary test between two cells of the same column, matching
// Value::TotalOrderCompare equality (double equality is !(x<y) && !(x>y),
// so NaNs compare "equal"; int cells compare exactly).
bool CellsDiffer(const ColumnVector& col, int64_t a, int64_t b) {
  const bool an = col.IsNull(a);
  const bool bn = col.IsNull(b);
  if (an || bn) return an != bn;
  if (col.generic()) {
    return Value::TotalOrderCompare(col.values()[a], col.values()[b]) != 0;
  }
  switch (col.type()) {
    case TypeId::kInt64:
    case TypeId::kDate:
      return col.ints()[a] != col.ints()[b];
    case TypeId::kFloat64: {
      const double x = col.doubles()[a];
      const double y = col.doubles()[b];
      return x < y || x > y;
    }
    case TypeId::kString:
      return col.strings()[a] != col.strings()[b];
  }
  return false;
}
}  // namespace

FusedNestSelectNode::FusedNestSelectNode(ExecNodePtr child,
                                         std::vector<FusedLevelSpec> levels)
    : child_(std::move(child)), specs_(std::move(levels)) {
  // Output schema: the outermost level's nesting attributes. Resolution
  // errors surface at Open(); construct a best-effort schema here.
  const Schema& in = child_->output_schema();
  std::vector<Field> fields;
  if (!specs_.empty()) {
    for (const std::string& a : specs_[0].nesting_attrs) {
      const Result<int> idx = in.Resolve(a);
      fields.push_back(idx.ok() ? in.field(*idx) : Field(a, TypeId::kInt64));
    }
  }
  schema_ = Schema(std::move(fields));
}

Status FusedNestSelectNode::OpenImpl() {
  NESTRA_RETURN_NOT_OK(child_->Open());
  if (specs_.empty()) {
    return Status::InvalidArgument("FusedNestSelect requires >= 1 level");
  }
  const Schema& in = child_->output_schema();

  levels_.clear();
  levels_.resize(specs_.size());
  groups_closed_.assign(specs_.size(), 0);
  for (size_t i = 0; i < specs_.size(); ++i) {
    LevelState& st = levels_[i];
    for (const std::string& a : specs_[i].nesting_attrs) {
      NESTRA_ASSIGN_OR_RETURN(int idx, in.Resolve(a));
      st.key_idx.push_back(idx);
    }
    const LinkingPredicate& p = specs_[i].pred;
    NESTRA_ASSIGN_OR_RETURN(st.member_key_idx, in.Resolve(p.member_key_attr));
    if (p.kind == LinkingPredicate::Kind::kQuantified ||
        p.kind == LinkingPredicate::Kind::kAggregate) {
      if (!p.linking_is_const) {
        NESTRA_ASSIGN_OR_RETURN(st.linking_idx, in.Resolve(p.linking_attr));
      }
      if (!p.linked_attr.empty()) {  // empty for COUNT(*)
        NESTRA_ASSIGN_OR_RETURN(st.linked_idx, in.Resolve(p.linked_attr));
      }
    }
    st.acc = LinkingAccumulator(p);
    // Containment check: each level's keys must include the previous
    // level's keys (prefix property of §4.2.1).
    if (i > 0) {
      for (int k : levels_[i - 1].key_idx) {
        const bool found = std::find(st.key_idx.begin(), st.key_idx.end(),
                                     k) != st.key_idx.end();
        if (!found) {
          return Status::InvalidArgument(
              "FusedNestSelect: level " + std::to_string(i) +
              " nesting attributes do not contain level " +
              std::to_string(i - 1) + "'s");
        }
      }
    }
  }

  output_idx_ = levels_[0].key_idx;
  // Pad positions are indices into the OUTPUT row (level-0 prefix).
  for (const std::string& a : specs_[0].pad_attrs) {
    NESTRA_ASSIGN_OR_RETURN(int flat, in.Resolve(a));
    for (size_t k = 0; k < output_idx_.size(); ++k) {
      if (output_idx_[k] == flat) {
        levels_[0].pad_idx.push_back(static_cast<int>(k));
      }
    }
  }
  has_prev_ = false;
  input_done_ = false;
  pending_valid_ = false;

  // Batched consumption: map each level's key columns to their position in
  // the innermost key list (a superset of every level's keys, per the
  // containment check above), so cross-batch boundary state is just the
  // innermost key values of the last row seen.
  prev_keys_.clear();
  key_slot_.assign(levels_.size(), {});
  const std::vector<int>& inner_keys = levels_.back().key_idx;
  for (size_t i = 0; i < levels_.size(); ++i) {
    for (const int k : levels_[i].key_idx) {
      const auto it = std::find(inner_keys.begin(), inner_keys.end(), k);
      NESTRA_DCHECK(it != inner_keys.end());
      key_slot_[i].push_back(static_cast<size_t>(it - inner_keys.begin()));
    }
  }
  return Status::OK();
}

void FusedNestSelectNode::OpenLevel(int i, const Row& row) {
  LevelState& st = levels_[i];
  st.open = true;
  st.rep = row;
  st.acc.Reset(st.linking_idx >= 0 ? row[st.linking_idx]
                                   : specs_[i].pred.linking_const);
}

bool FusedNestSelectNode::FinalizeLevel(int i) {
  LevelState& st = levels_[i];
  st.open = false;
  ++groups_closed_[i];
  const TriBool r = st.acc.Result();
  if (i == 0) {
    if (IsTrue(r)) {
      pending_ = st.rep.Select(output_idx_);
      pending_valid_ = true;
      return true;
    }
    if (specs_[0].mode == SelectionMode::kPseudo) {
      pending_ = st.rep.Select(output_idx_);
      for (int k : st.pad_idx) pending_[k] = Value::Null();
      pending_valid_ = true;
      return true;
    }
    return false;
  }
  // Contribute a member to the enclosing level. The member's key and linked
  // values are this group's constants, read from the representative row; a
  // failing group contributes nothing (see class comment).
  LevelState& parent = levels_[i - 1];
  if (IsTrue(r)) {
    parent.acc.Add(st.rep[parent.member_key_idx],
                   parent.linked_idx >= 0 ? st.rep[parent.linked_idx]
                                          : Value::Null());
  }
  return false;
}

Status FusedNestSelectNode::NextImpl(Row* out, bool* eof) {
  const int m = static_cast<int>(levels_.size());
  while (true) {
    if (pending_valid_) {
      *out = std::move(pending_);
      pending_valid_ = false;
      *eof = false;
      return Status::OK();
    }
    if (input_done_) {
      *eof = true;
      return Status::OK();
    }

    Row row;
    bool child_eof = false;
    NESTRA_RETURN_NOT_OK(child_->Next(&row, &child_eof));

    if (child_eof) {
      input_done_ = true;
      if (has_prev_) {
        // Close everything, innermost first.
        for (int i = m - 1; i >= 0; --i) FinalizeLevel(i);
      }
      continue;  // pending_ may now hold the last output
    }

    if (!has_prev_) {
      for (int i = 0; i < m; ++i) OpenLevel(i, row);
      // The innermost level's members are the stream rows themselves.
      LevelState& inner = levels_[m - 1];
      inner.acc.Add(row[inner.member_key_idx],
                    inner.linked_idx >= 0 ? row[inner.linked_idx]
                                          : Value::Null());
      prev_row_ = std::move(row);
      has_prev_ = true;
      continue;
    }

    // Outermost level whose group key changed.
    int boundary = m;  // m = no change anywhere
    for (int i = 0; i < m; ++i) {
      if (Row::CompareOn(prev_row_, row, levels_[i].key_idx) != 0) {
        boundary = i;
        break;
      }
    }
    if (boundary < m) {
      for (int i = m - 1; i >= boundary; --i) FinalizeLevel(i);
      for (int i = boundary; i < m; ++i) OpenLevel(i, row);
    }
    LevelState& inner = levels_[m - 1];
    inner.acc.Add(row[inner.member_key_idx],
                  inner.linked_idx >= 0 ? row[inner.linked_idx]
                                        : Value::Null());
    prev_row_ = std::move(row);
  }
}

void FusedNestSelectNode::OpenLevelBatch(int i, int64_t r) {
  LevelState& st = levels_[i];
  st.open = true;
  st.acc.Reset(st.linking_idx >= 0 ? input_.column(st.linking_idx).GetValue(r)
                                   : specs_[i].pred.linking_const);
  if (i == 0) {
    st.rep_out.clear();
    for (const int k : output_idx_) {
      st.rep_out.push_back(input_.column(k).GetValue(r));
    }
    return;
  }
  const LevelState& parent = levels_[i - 1];
  st.rep_member = input_.column(parent.member_key_idx).GetValue(r);
  st.rep_linked = parent.linked_idx >= 0
                      ? input_.column(parent.linked_idx).GetValue(r)
                      : Value::Null();
}

void FusedNestSelectNode::FinalizeLevelBatch(int i, RowBatch* out) {
  LevelState& st = levels_[i];
  st.open = false;
  ++groups_closed_[i];
  const TriBool r = st.acc.Result();
  if (i == 0) {
    const bool pass = IsTrue(r);
    if (!pass && specs_[0].mode != SelectionMode::kPseudo) return;
    Row row(std::vector<Value>(st.rep_out.begin(), st.rep_out.end()));
    if (!pass) {
      for (const int k : st.pad_idx) row[k] = Value::Null();
    }
    out->AppendRow(std::move(row));
    return;
  }
  LevelState& parent = levels_[i - 1];
  if (IsTrue(r)) parent.acc.Add(st.rep_member, st.rep_linked);
}

bool FusedNestSelectNode::KeyChangedBatch(int i, int64_t r) const {
  const LevelState& st = levels_[i];
  if (r > 0) {
    for (const int k : st.key_idx) {
      if (CellsDiffer(input_.column(k), r - 1, r)) return true;
    }
    return false;
  }
  // First row of a batch: compare against the saved innermost key values
  // of the previous batch's last row.
  for (size_t j = 0; j < st.key_idx.size(); ++j) {
    const Value& prev = prev_keys_[key_slot_[i][j]];
    if (Value::TotalOrderCompare(prev,
                                 input_.column(st.key_idx[j]).GetValue(r)) !=
        0) {
      return true;
    }
  }
  return false;
}

void FusedNestSelectNode::ProcessBatchRow(int64_t r, RowBatch* out) {
  const int m = static_cast<int>(levels_.size());
  if (!has_prev_) {
    for (int i = 0; i < m; ++i) OpenLevelBatch(i, r);
    has_prev_ = true;
  } else {
    int boundary = m;
    for (int i = 0; i < m; ++i) {
      if (KeyChangedBatch(i, r)) {
        boundary = i;
        break;
      }
    }
    if (boundary < m) {
      for (int i = m - 1; i >= boundary; --i) FinalizeLevelBatch(i, out);
      for (int i = boundary; i < m; ++i) OpenLevelBatch(i, r);
    }
  }
  LevelState& inner = levels_[m - 1];
  inner.acc.Add(input_.column(inner.member_key_idx).GetValue(r),
                inner.linked_idx >= 0
                    ? input_.column(inner.linked_idx).GetValue(r)
                    : Value::Null());
}

Status FusedNestSelectNode::NextBatchImpl(RowBatch* out, bool* eof) {
  const int m = static_cast<int>(levels_.size());
  while (out->empty()) {
    if (input_done_) break;
    bool child_eof = false;
    NESTRA_RETURN_NOT_OK(child_->NextBatch(&input_, &child_eof));
    if (child_eof) {
      input_done_ = true;
      if (has_prev_) {
        for (int i = m - 1; i >= 0; --i) FinalizeLevelBatch(i, out);
      }
      break;
    }
    const int64_t n = input_.num_rows();
    for (int64_t r = 0; r < n; ++r) ProcessBatchRow(r, out);
    // Boundary state for the next batch's first row.
    const LevelState& inner = levels_[m - 1];
    prev_keys_.clear();
    for (const int k : inner.key_idx) {
      prev_keys_.push_back(input_.column(k).GetValue(n - 1));
    }
  }
  *eof = out->empty();
  return Status::OK();
}

std::string FusedNestSelectNode::detail() const {
  std::string d = "levels=" + std::to_string(specs_.size()) + " groups=[";
  for (size_t i = 0; i < groups_closed_.size(); ++i) {
    if (i > 0) d += ',';
    d += std::to_string(groups_closed_[i]);
  }
  d += ']';
  return d;
}

}  // namespace nestra
