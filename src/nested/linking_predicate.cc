#include "nested/linking_predicate.h"

#include <sstream>

namespace nestra {

const char* LinkOpToString(LinkOp op) {
  switch (op) {
    case LinkOp::kExists:
      return "EXISTS";
    case LinkOp::kNotExists:
      return "NOT EXISTS";
    case LinkOp::kIn:
      return "IN";
    case LinkOp::kNotIn:
      return "NOT IN";
    case LinkOp::kSome:
      return "SOME";
    case LinkOp::kAll:
      return "ALL";
  }
  return "?";
}

bool IsPositiveLinkOp(LinkOp op) {
  switch (op) {
    case LinkOp::kExists:
    case LinkOp::kIn:
    case LinkOp::kSome:
      return true;
    case LinkOp::kNotExists:
    case LinkOp::kNotIn:
    case LinkOp::kAll:
      return false;
  }
  return false;
}

const char* LinkAggToString(LinkAgg agg) {
  switch (agg) {
    case LinkAgg::kCount:
      return "count";
    case LinkAgg::kCountStar:
      return "count(*)";
    case LinkAgg::kSum:
      return "sum";
    case LinkAgg::kMin:
      return "min";
    case LinkAgg::kMax:
      return "max";
    case LinkAgg::kAvg:
      return "avg";
  }
  return "?";
}

bool LinkingPredicate::IsNegative() const {
  switch (kind) {
    case Kind::kEmpty:
      return true;
    case Kind::kNotEmpty:
      return false;
    case Kind::kQuantified:
      return quant == Quantifier::kAll;
    case Kind::kAggregate:
      // An empty group can still satisfy the predicate (COUNT = 0 directly;
      // the others because UNKNOWN padding upstream must not erase the
      // tuple); treat like a negative operator so pseudo-selection is used.
      return true;
  }
  return true;
}

std::string LinkingPredicate::ToString() const {
  std::ostringstream oss;
  switch (kind) {
    case Kind::kEmpty:
      oss << "{" << group_name << "} = empty";
      break;
    case Kind::kNotEmpty:
      oss << "{" << group_name << "} != empty";
      break;
    case Kind::kQuantified:
      oss << linking_attr << " " << CmpOpToString(op) << " "
          << (quant == Quantifier::kAll ? "ALL" : "SOME") << " {"
          << linked_attr << "}";
      break;
    case Kind::kAggregate:
      oss << linking_attr << " " << CmpOpToString(op) << " "
          << LinkAggToString(agg) << "{" << linked_attr << "}";
      break;
  }
  return oss.str();
}

LinkingPredicate MakeLinkingPredicate(LinkOp op, CmpOp cmp,
                                      std::string linking_attr,
                                      std::string group_name,
                                      std::string linked_attr,
                                      std::string member_key_attr) {
  LinkingPredicate p;
  p.group_name = std::move(group_name);
  p.member_key_attr = std::move(member_key_attr);
  switch (op) {
    case LinkOp::kExists:
      p.kind = LinkingPredicate::Kind::kNotEmpty;
      return p;
    case LinkOp::kNotExists:
      p.kind = LinkingPredicate::Kind::kEmpty;
      return p;
    case LinkOp::kIn:
      p.kind = LinkingPredicate::Kind::kQuantified;
      p.op = CmpOp::kEq;
      p.quant = Quantifier::kSome;
      break;
    case LinkOp::kNotIn:
      p.kind = LinkingPredicate::Kind::kQuantified;
      p.op = CmpOp::kNe;
      p.quant = Quantifier::kAll;
      break;
    case LinkOp::kSome:
      p.kind = LinkingPredicate::Kind::kQuantified;
      p.op = cmp;
      p.quant = Quantifier::kSome;
      break;
    case LinkOp::kAll:
      p.kind = LinkingPredicate::Kind::kQuantified;
      p.op = cmp;
      p.quant = Quantifier::kAll;
      break;
  }
  p.linking_attr = std::move(linking_attr);
  p.linked_attr = std::move(linked_attr);
  return p;
}

LinkingPredicate MakeAggregateLinkingPredicate(LinkAgg agg, CmpOp cmp,
                                               std::string linking_attr,
                                               std::string group_name,
                                               std::string linked_attr,
                                               std::string member_key_attr) {
  LinkingPredicate p;
  p.kind = LinkingPredicate::Kind::kAggregate;
  p.agg = agg;
  p.op = cmp;
  p.linking_attr = std::move(linking_attr);
  p.group_name = std::move(group_name);
  p.linked_attr = std::move(linked_attr);
  p.member_key_attr = std::move(member_key_attr);
  return p;
}

Result<BoundLinkingPredicate> BoundLinkingPredicate::Make(
    const LinkingPredicate& pred, const NestedSchema& schema) {
  BoundLinkingPredicate out;
  out.pred = pred;
  NESTRA_ASSIGN_OR_RETURN(out.group_index,
                          schema.GroupIndex(pred.group_name));
  const NestedSchema& member = *schema.groups()[out.group_index].schema;
  NESTRA_ASSIGN_OR_RETURN(out.key_idx,
                          member.atoms().Resolve(pred.member_key_attr));
  if (pred.kind == LinkingPredicate::Kind::kQuantified ||
      pred.kind == LinkingPredicate::Kind::kAggregate) {
    if (!pred.linking_is_const) {
      NESTRA_ASSIGN_OR_RETURN(out.linking_idx,
                              schema.atoms().Resolve(pred.linking_attr));
    }
    if (!pred.linked_attr.empty()) {  // empty for COUNT(*)
      NESTRA_ASSIGN_OR_RETURN(out.linked_idx,
                              member.atoms().Resolve(pred.linked_attr));
    }
  }
  return out;
}

TriBool BoundLinkingPredicate::Eval(const NestedTuple& tuple) const {
  LinkingAccumulator acc(pred);
  acc.Reset(linking_idx >= 0 ? tuple.atoms[linking_idx]
                             : pred.linking_const);
  for (const NestedTuple& m : tuple.groups[group_index]) {
    acc.Add(m.atoms[key_idx],
            linked_idx >= 0 ? m.atoms[linked_idx] : Value::Null());
    if (acc.Decided()) break;
  }
  return acc.Result();
}

LinkingAccumulator::LinkingAccumulator(const LinkingPredicate& pred)
    : kind_(pred.kind), op_(pred.op), quant_(pred.quant), agg_(pred.agg) {
  Reset(Value::Null());
}

void LinkingAccumulator::Reset(const Value& linking_value) {
  linking_value_ = linking_value;
  acc_ = quant_ == Quantifier::kAll ? TriBool::kTrue : TriBool::kFalse;
  member_count_ = 0;
  agg_inputs_ = 0;
  sum_ = 0;
  sum_is_int_ = true;
  extreme_ = Value::Null();
}

void LinkingAccumulator::Add(const Value& key, const Value& linked) {
  if (key.is_null()) return;  // outer-join padding: not a real member
  ++member_count_;
  switch (kind_) {
    case LinkingPredicate::Kind::kEmpty:
    case LinkingPredicate::Kind::kNotEmpty:
      return;
    case LinkingPredicate::Kind::kQuantified: {
      const TriBool cmp = Value::Apply(op_, linking_value_, linked);
      acc_ = quant_ == Quantifier::kAll ? And(acc_, cmp) : Or(acc_, cmp);
      return;
    }
    case LinkingPredicate::Kind::kAggregate: {
      if (agg_ == LinkAgg::kCountStar) return;  // counts members, above
      if (linked.is_null()) return;             // aggregates ignore NULLs
      ++agg_inputs_;
      switch (agg_) {
        case LinkAgg::kCount:
        case LinkAgg::kCountStar:
          break;
        case LinkAgg::kSum:
        case LinkAgg::kAvg:
          if (!linked.is_int()) sum_is_int_ = false;
          sum_ += linked.AsDouble().value_or(0);
          break;
        case LinkAgg::kMin:
          if (extreme_.is_null() ||
              Value::TotalOrderCompare(linked, extreme_) < 0) {
            extreme_ = linked;
          }
          break;
        case LinkAgg::kMax:
          if (extreme_.is_null() ||
              Value::TotalOrderCompare(linked, extreme_) > 0) {
            extreme_ = linked;
          }
          break;
      }
      return;
    }
  }
}

TriBool LinkingAccumulator::Result() const {
  switch (kind_) {
    case LinkingPredicate::Kind::kEmpty:
      return MakeTriBool(member_count_ == 0);
    case LinkingPredicate::Kind::kNotEmpty:
      return MakeTriBool(member_count_ > 0);
    case LinkingPredicate::Kind::kQuantified:
      // SOME over empty = False, ALL over empty = True: the initial acc_.
      return acc_;
    case LinkingPredicate::Kind::kAggregate: {
      Value agg_value;
      switch (agg_) {
        case LinkAgg::kCountStar:
          agg_value = Value::Int64(member_count_);
          break;
        case LinkAgg::kCount:
          agg_value = Value::Int64(agg_inputs_);
          break;
        case LinkAgg::kSum:
          if (agg_inputs_ == 0) {
            agg_value = Value::Null();
          } else if (sum_is_int_) {
            agg_value = Value::Int64(static_cast<int64_t>(sum_));
          } else {
            agg_value = Value::Float64(sum_);
          }
          break;
        case LinkAgg::kAvg:
          agg_value = agg_inputs_ == 0
                          ? Value::Null()
                          : Value::Float64(sum_ / static_cast<double>(
                                                      agg_inputs_));
          break;
        case LinkAgg::kMin:
        case LinkAgg::kMax:
          agg_value = extreme_;  // NULL when no non-NULL inputs
          break;
      }
      return Value::Apply(op_, linking_value_, agg_value);
    }
  }
  return TriBool::kUnknown;
}

bool LinkingAccumulator::Decided() const {
  switch (kind_) {
    case LinkingPredicate::Kind::kEmpty:
    case LinkingPredicate::Kind::kNotEmpty:
      return member_count_ > 0;
    case LinkingPredicate::Kind::kQuantified:
      return quant_ == Quantifier::kAll ? IsFalse(acc_) : IsTrue(acc_);
    case LinkingPredicate::Kind::kAggregate:
      return false;  // the fold needs every member
  }
  return false;
}

}  // namespace nestra
