#ifndef NESTRA_VERIFY_PROPERTIES_H_
#define NESTRA_VERIFY_PROPERTIES_H_

#include <map>
#include <string>
#include <vector>

#include "common/value.h"
#include "plan/query_block.h"
#include "storage/catalog.h"

namespace nestra {

/// \brief Nullability lattice for one attribute (DESIGN.md §10). kNullable
/// is the no-knowledge element; kNonNull and kAlwaysNull are the two proven
/// extremes. Facts follow Guagliardo/Libkin's algebraic NULL semantics: a
/// comparison conjunct proves its column operands non-NULL among qualifying
/// rows (an UNKNOWN comparison never qualifies), IS NULL proves always-NULL,
/// IS NOT NULL proves non-NULL.
enum class Nullability { kNullable, kNonNull, kAlwaysNull };

const char* NullabilityToString(Nullability n);

/// \brief Bound on a block's qualifying-set cardinality: kZero (provably
/// empty — e.g. a comparison against a NULL literal or type-incomparable
/// operands is always UNKNOWN), kAtMostOne (a key is pinned by equalities),
/// or kMany (no bound).
enum class CardBound { kZero, kAtMostOne, kMany };

const char* CardBoundToString(CardBound c);

struct AttributeProps {
  Nullability nullability = Nullability::kNullable;
  TypeId type = TypeId::kInt64;
};

/// \brief Facts inferred for one query block's base relation after its local
/// predicate σ_i. Attribute names are qualified "alias.column".
struct BlockProperties {
  int block_id = 0;
  std::map<std::string, AttributeProps> attrs;
  /// Schema order of `attrs` keys (maps are sorted; rendering wants schema
  /// order).
  std::vector<std::string> attr_order;
  /// Attribute sets that are unique keys of the filtered base relation (one
  /// compound key per block when every FROM table declares a primary key).
  std::vector<std::vector<std::string>> keys;
  CardBound card = CardBound::kMany;

  bool NonNull(const std::string& attr) const;
  bool AlwaysNull(const std::string& attr) const;

  /// "non-null={r.c, r.d} nullable={r.a, r.b} keys={r.d} card=many" — one
  /// line, no trailing newline. always-null printed only when non-empty.
  std::string ToString() const;
};

/// \brief Facts about one block's linking predicate toward its parent.
struct LinkFacts {
  /// The member comparison (linking side θ linked side) can never evaluate
  /// to UNKNOWN: both operands proven non-NULL and type-comparable. EXISTS
  /// and NOT EXISTS have no member comparison and are trivially two-valued.
  bool two_valued = false;
  /// The member comparison can never be TRUE or FALSE — always UNKNOWN
  /// (an operand is provably NULL, or the operand types are incomparable).
  bool always_unknown = false;
  /// Human-readable justification (two_valued) or obstruction (otherwise).
  std::string reason;
};

/// \brief Bottom-up property inference over bound query blocks.
///
/// Nullability seeds from the catalog: declared NOT NULL constraints
/// (primary keys and `not_null_columns`) plus the load-time observed
/// non-NULL column scans (sound for execution because catalog tables are
/// immutable once registered). Pass `declared_only` to restrict seeding to
/// declared constraints — advisory rules (dead-pseudo) use this so their
/// "remove the padding attribute" advice stays valid when data changes.
class PropertyAnalyzer {
 public:
  explicit PropertyAnalyzer(const Catalog& catalog, bool declared_only = false)
      : catalog_(catalog), declared_only_(declared_only) {}

  /// Properties of `block`'s base relation after σ_i and the correlated
  /// predicates C_ij (both run before the linking selection; an UNKNOWN
  /// conjunct excludes the row from every qualifying set and group, so
  /// comparison conjuncts prove their local operands non-NULL).
  BlockProperties Analyze(const QueryBlock& block) const;

  /// Facts about `child`'s linking predicate. `ancestors` lists the
  /// enclosing blocks, root first, ending at the direct parent (used to
  /// resolve the linking attribute's owning block).
  LinkFacts AnalyzeLink(const QueryBlock& child,
                        const std::vector<const QueryBlock*>& ancestors) const;

  /// True when `child`'s qualifying set provably has at most one member per
  /// outer binding: some key of the block is fully pinned by local literal
  /// equalities and/or correlated equality predicates.
  bool AtMostOneMember(const QueryBlock& child) const;

 private:
  bool BaseNonNull(const std::string& table, const std::string& column) const;

  const Catalog& catalog_;
  bool declared_only_ = false;
};

/// \brief Executor-facing eligibility test for the proven-2VL fast path:
/// `child`'s negative link may run as a plain hash / nested-loop antijoin,
/// bit-identical to the 3VL nest + pseudo-selection route. Requires a leaf,
/// non-aggregate, negative link on a strict-safe path (every enclosing link
/// positive, so dropping a failing tuple is sound), and — for NOT IN and
/// θ ALL — a two-valued member comparison per AnalyzeLink. NOT EXISTS has
/// no member comparison and qualifies unconditionally. `path` lists the
/// enclosing blocks, root first, ending at `child`'s parent.
bool NegativeLinkRunsTwoValued(const QueryBlock& child,
                               const std::vector<const QueryBlock*>& path,
                               const Catalog& catalog);

}  // namespace nestra

#endif  // NESTRA_VERIFY_PROPERTIES_H_
