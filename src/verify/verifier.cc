#include "verify/verifier.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/check.h"
#include "nra/cost.h"
#include "nra/rewrites.h"
#include "verify/properties.h"

namespace nestra {

namespace {

// Mirrors the executor's NestedAttrsFor: N2 of the nest for a child link is
// (linked attribute, key attribute), deduplicated. The verifier recomputes
// it independently so drift between planner and executor is caught by the
// outline checks rather than silently inherited.
std::vector<std::string> NestedAttrsFor(const QueryBlock& child) {
  std::vector<std::string> n2;
  if (!child.linked_attr.empty()) n2.push_back(child.linked_attr);
  if (child.key_attr != child.linked_attr) n2.push_back(child.key_attr);
  return n2;
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

// Name-resolution schema over a block's qualified attribute list (types are
// irrelevant for resolution).
Schema SchemaOf(const std::vector<std::string>& attributes) {
  std::vector<Field> fields;
  fields.reserve(attributes.size());
  for (const std::string& a : attributes) fields.emplace_back(a, TypeId::kInt64);
  return Schema(std::move(fields));
}

// True when `name` resolves in some ancestor's attributes (nearest first,
// matching the binder's scope-chain order).
const QueryBlock* ResolveInAncestors(
    const std::string& name, const std::vector<const QueryBlock*>& ancestors) {
  for (auto it = ancestors.rbegin(); it != ancestors.rend(); ++it) {
    if (SchemaOf((*it)->attributes).Resolve(name).ok()) return *it;
  }
  return nullptr;
}

// StrictSafe over an explicit path (root..current), recomputed locally: the
// strict selection may drop tuples only when every link on the path (the
// links of the non-root blocks) is positive.
bool PathStrictSafe(const std::vector<const QueryBlock*>& path) {
  for (size_t i = 1; i < path.size(); ++i) {
    if (!path[i]->LinkIsPositive()) return false;
  }
  return true;
}

// Structural form of the §4.2.4 equi-correlation test: every correlated
// predicate is `outer_col = child_col` with the sides resolving exclusively
// on their own side. `ancestors` is root..parent.
bool EquiCorrelationSplit(const QueryBlock& child,
                          const std::vector<const QueryBlock*>& ancestors,
                          std::vector<std::string>* outer_cols) {
  outer_cols->clear();
  if (child.correlated_preds.empty()) return false;
  const Schema own = SchemaOf(child.attributes);
  for (const ExprPtr& p : child.correlated_preds) {
    const auto* cmp = dynamic_cast<const Comparison*>(p.get());
    if (cmp == nullptr || cmp->op() != CmpOp::kEq) return false;
    const auto* l = dynamic_cast<const ColumnRef*>(&cmp->lhs());
    const auto* r = dynamic_cast<const ColumnRef*>(&cmp->rhs());
    if (l == nullptr || r == nullptr) return false;
    const bool l_own = own.Resolve(l->name()).ok();
    const bool r_own = own.Resolve(r->name()).ok();
    const bool l_anc = ResolveInAncestors(l->name(), ancestors) != nullptr;
    const bool r_anc = ResolveInAncestors(r->name(), ancestors) != nullptr;
    if (l_anc && !l_own && r_own && !r_anc) {
      outer_cols->push_back(l->name());
    } else if (r_anc && !r_own && l_own && !l_anc) {
      outer_cols->push_back(r->name());
    } else {
      return false;
    }
  }
  return true;
}

// All correlated predicates are column = column equalities (the shape the
// executor's AllEquiCorrelation starts from), regardless of how the sides
// split.
bool LooksEquiCorrelated(const QueryBlock& child) {
  if (child.correlated_preds.empty()) return false;
  for (const ExprPtr& p : child.correlated_preds) {
    const auto* cmp = dynamic_cast<const Comparison*>(p.get());
    if (cmp == nullptr || cmp->op() != CmpOp::kEq) return false;
    if (dynamic_cast<const ColumnRef*>(&cmp->lhs()) == nullptr) return false;
    if (dynamic_cast<const ColumnRef*>(&cmp->rhs()) == nullptr) return false;
  }
  return true;
}

// Root..leaf chain of a linear query (every block has at most one child).
std::vector<const QueryBlock*> FlattenLinear(const QueryBlock& root) {
  std::vector<const QueryBlock*> chain;
  const QueryBlock* node = &root;
  while (true) {
    chain.push_back(node);
    if (node->children.empty()) break;
    NESTRA_DCHECK(node->children.size() == 1);
    node = node->children[0].get();
  }
  return chain;
}

void AddDiagnostic(VerifyReport* report, VerifySeverity severity, int block_id,
                   const char* rule_id, std::string message) {
  report->Add({severity, block_id, rule_id, std::move(message)});
}

void AddError(VerifyReport* report, int block_id, const char* rule_id,
              std::string message) {
  AddDiagnostic(report, VerifySeverity::kError, block_id, rule_id,
                std::move(message));
}

void AddWarning(VerifyReport* report, int block_id, const char* rule_id,
                std::string message) {
  AddDiagnostic(report, VerifySeverity::kWarning, block_id, rule_id,
                std::move(message));
}

}  // namespace

const char* VerifySeverityToString(VerifySeverity severity) {
  return severity == VerifySeverity::kError ? "error" : "warning";
}

std::string VerifyDiagnostic::ToString() const {
  std::ostringstream oss;
  oss << VerifySeverityToString(severity) << " [" << rule_id << "] block "
      << block_id << ": " << message;
  return oss.str();
}

void VerifyReport::Add(VerifyDiagnostic d) {
  if (d.severity == VerifySeverity::kError) {
    ++num_errors_;
  } else {
    ++num_warnings_;
  }
  ++rule_counts_[d.rule_id];
  diagnostics_.push_back(std::move(d));
}

int VerifyReport::CountRule(const std::string& rule_id) const {
  const auto it = rule_counts_.find(rule_id);
  return it == rule_counts_.end() ? 0 : it->second;
}

std::string VerifyReport::Summary() const {
  std::ostringstream oss;
  oss << "verify: " << verify_rules::kNumRules << " rules, " << num_errors_
      << (num_errors_ == 1 ? " error, " : " errors, ") << num_warnings_
      << (num_warnings_ == 1 ? " warning" : " warnings");
  return oss.str();
}

std::string VerifyReport::ToString() const {
  std::ostringstream oss;
  for (const VerifyDiagnostic& d : diagnostics_) oss << d.ToString() << "\n";
  return oss.str();
}

Status VerifyReport::ToStatus() const {
  if (ok()) return Status::OK();
  std::ostringstream oss;
  oss << "plan verification failed: ";
  bool first = true;
  for (const VerifyDiagnostic& d : diagnostics_) {
    if (d.severity != VerifySeverity::kError) continue;
    if (!first) oss << "; ";
    first = false;
    oss << d.ToString();
  }
  return Status::InvalidArgument(oss.str());
}

VerifyReport PlanVerifier::Verify(const QueryBlock& root) const {
  VerifyReport report;

  // Alias uniqueness is global: attribute qualification (and with it every
  // set comparison below) depends on it.
  {
    std::set<std::string> aliases;
    std::vector<const QueryBlock*> stack{&root};
    while (!stack.empty()) {
      const QueryBlock* b = stack.back();
      stack.pop_back();
      for (const QueryBlock::TableRef& ref : b->tables) {
        if (!aliases.insert(ref.alias).second) {
          AddError(&report, b->id, verify_rules::kSchemaResolve,
                   "table alias '" + ref.alias +
                       "' is not unique across the query");
        }
      }
      for (const auto& c : b->children) stack.push_back(c.get());
    }
  }

  std::vector<const QueryBlock*> ancestors;
  CheckTree(root, &ancestors, &report);
  CheckRootOutput(root, &report);

  // §4.2.3: the bottom-up pipeline trusts correlated_block_ids adjacency;
  // cross-check it against the predicates' actual column references.
  if (options_.bottom_up_linear && root.IsLinearCorrelated()) {
    const std::vector<const QueryBlock*> chain = FlattenLinear(root);
    for (size_t k = 1; k < chain.size(); ++k) {
      const QueryBlock& block = *chain[k];
      const Schema own = SchemaOf(block.attributes);
      const Schema parent = SchemaOf(chain[k - 1]->attributes);
      for (const ExprPtr& p : block.correlated_preds) {
        std::vector<std::string> cols;
        p->CollectColumns(&cols);
        for (const std::string& c : cols) {
          if (!own.Resolve(c).ok() && !parent.Resolve(c).ok()) {
            AddError(&report, block.id, verify_rules::kRewritePrecond,
                     "bottom-up linear pipeline (4.2.3) requires adjacent "
                     "correlation, but column '" +
                         c + "' of block " + std::to_string(block.id) +
                         " resolves in neither the block nor its parent");
          }
        }
      }
    }
  }

  const std::vector<PlanStep> outline = Outline(root);
  CheckOutline(outline, &report);
  CheckDeadPseudo(outline, &report);
  return report;
}

void PlanVerifier::CheckTree(const QueryBlock& block,
                             std::vector<const QueryBlock*>* ancestors,
                             VerifyReport* report) const {
  // --- schema-resolve: the block's attribute list matches its FROM tables.
  bool tables_ok = !block.tables.empty();
  if (block.tables.empty()) {
    AddError(report, block.id, verify_rules::kSchemaResolve,
             "block has no FROM tables");
  }
  std::vector<std::string> expected;
  for (const QueryBlock::TableRef& ref : block.tables) {
    const Result<const Table*> table = catalog_.GetTable(ref.table);
    if (!table.ok()) {
      AddError(report, block.id, verify_rules::kSchemaResolve,
               "table '" + ref.table + "' is not in the catalog");
      tables_ok = false;
      continue;
    }
    const Schema qualified = (*table)->schema().Qualify(ref.alias);
    for (const Field& f : qualified.fields()) expected.push_back(f.name);
  }
  if (tables_ok && expected != block.attributes) {
    AddError(report, block.id, verify_rules::kSchemaResolve,
             "attribute list does not match the qualified schemas of the "
             "block's FROM tables");
  }

  // --- key-survival: the key attribute used for emptiness detection.
  if (block.key_attr.empty()) {
    AddError(report, block.id, verify_rules::kKeySurvival,
             "block has no key attribute; empty-subquery detection via "
             "NULL-padded keys is impossible");
  } else {
    if (!Contains(block.attributes, block.key_attr)) {
      AddError(report, block.id, verify_rules::kKeySurvival,
               "key attribute '" + block.key_attr +
                   "' is not among the block's attributes");
    }
    if (tables_ok) {
      const Result<const TableMetadata*> meta =
          catalog_.GetMetadata(block.tables[0].table);
      if (meta.ok()) {
        const std::string expected_key = (*meta)->primary_key.empty()
            ? std::string()
            : block.tables[0].alias + "." + (*meta)->primary_key;
        if (expected_key.empty()) {
          AddError(report, block.id, verify_rules::kKeySurvival,
                   "first FROM table '" + block.tables[0].table +
                       "' has no declared primary key");
        } else if (block.key_attr != expected_key) {
          AddError(report, block.id, verify_rules::kKeySurvival,
                   "key attribute '" + block.key_attr +
                       "' is not the first table's primary key ('" +
                       expected_key + "')");
        }
      }
    }
  }

  // --- schema-resolve: local predicate columns resolve in the block.
  const Schema own = SchemaOf(block.attributes);
  if (block.local_pred != nullptr) {
    std::vector<std::string> cols;
    block.local_pred->CollectColumns(&cols);
    for (const std::string& c : cols) {
      if (!own.Resolve(c).ok()) {
        AddError(report, block.id, verify_rules::kSchemaResolve,
                 "column '" + c +
                     "' of the local predicate does not resolve in the "
                     "block's schema");
      }
    }
  }

  // --- schema-resolve: correlated predicates resolve, reference at least
  // one ancestor, and agree with the cached correlated_block_ids.
  std::set<int> referenced;
  for (const ExprPtr& p : block.correlated_preds) {
    std::vector<std::string> cols;
    p->CollectColumns(&cols);
    bool touches_ancestor = false;
    for (const std::string& c : cols) {
      if (own.Resolve(c).ok()) continue;  // binder scope order: block first
      const QueryBlock* anc = ResolveInAncestors(c, *ancestors);
      if (anc == nullptr) {
        AddError(report, block.id, verify_rules::kSchemaResolve,
                 "column '" + c +
                     "' of a correlated predicate resolves in neither the "
                     "block nor any ancestor block");
      } else {
        referenced.insert(anc->id);
        touches_ancestor = true;
      }
    }
    if (!touches_ancestor) {
      AddError(report, block.id, verify_rules::kSchemaResolve,
               "correlated predicate references no ancestor block (it "
               "belongs in the local predicate)");
    }
  }
  const std::set<int> cached(block.correlated_block_ids.begin(),
                             block.correlated_block_ids.end());
  if (referenced != cached) {
    AddError(report, block.id, verify_rules::kSchemaResolve,
             "correlated_block_ids do not match the blocks actually "
             "referenced by the correlated predicates");
  }

  if (!ancestors->empty()) {
    CheckLink(block, *ancestors, report);
    CheckLinkProperties(block, *ancestors, report);
    CheckRewritePreconditions(block, *ancestors, report);
    if (block.correlated_preds.empty() && !block.IsLeaf()) {
      AddWarning(report, block.id, verify_rules::kCartesianProduct,
                 "non-correlated block is not a leaf: its subtree joins "
                 "with the outer relation as a true Cartesian product");
    }
  }

  ancestors->push_back(&block);
  for (const auto& child : block.children) {
    CheckTree(*child, ancestors, report);
  }
  ancestors->pop_back();
}

void PlanVerifier::CheckRootOutput(const QueryBlock& root,
                                   VerifyReport* report) const {
  const Schema own = SchemaOf(root.attributes);
  if (root.select_list.empty()) {
    AddError(report, root.id, verify_rules::kSchemaResolve,
             "root block has an empty select list");
  }
  if (root.IsGrouped()) {
    std::set<std::string> allowed(root.group_by.begin(), root.group_by.end());
    for (const QueryBlock::RootAgg& a : root.aggregates) {
      allowed.insert(a.output_name);
      if (!a.column.empty() && !own.Resolve(a.column).ok()) {
        AddError(report, root.id, verify_rules::kSchemaResolve,
                 "aggregate argument '" + a.column +
                     "' does not resolve in the root block's schema");
      }
    }
    for (const std::string& g : root.group_by) {
      if (!own.Resolve(g).ok()) {
        AddError(report, root.id, verify_rules::kSchemaResolve,
                 "grouping column '" + g +
                     "' does not resolve in the root block's schema");
      }
    }
    for (const std::string& s : root.select_list) {
      if (allowed.count(s) == 0) {
        AddError(report, root.id, verify_rules::kSchemaResolve,
                 "select item '" + s +
                     "' is neither a grouping column nor an aggregate "
                     "output");
      }
    }
    for (const QueryBlock::OrderItem& o : root.order_by) {
      if (allowed.count(o.column) == 0) {
        AddError(report, root.id, verify_rules::kSchemaResolve,
                 "ORDER BY column '" + o.column +
                     "' is neither a grouping column nor an aggregate "
                     "output");
      }
    }
    if (root.having != nullptr) {
      std::vector<std::string> cols;
      root.having->CollectColumns(&cols);
      for (const std::string& c : cols) {
        if (allowed.count(c) == 0) {
          AddError(report, root.id, verify_rules::kSchemaResolve,
                   "HAVING column '" + c +
                       "' is neither a grouping column nor an aggregate "
                       "output");
        }
      }
    }
  } else {
    for (const std::string& s : root.select_list) {
      if (!own.Resolve(s).ok()) {
        AddError(report, root.id, verify_rules::kSchemaResolve,
                 "select item '" + s +
                     "' does not resolve in the root block's schema");
      }
    }
    for (const QueryBlock::OrderItem& o : root.order_by) {
      if (!own.Resolve(o.column).ok()) {
        AddError(report, root.id, verify_rules::kSchemaResolve,
                 "ORDER BY column '" + o.column +
                     "' does not resolve in the root block's schema");
      }
    }
  }
}

void PlanVerifier::CheckLink(const QueryBlock& block,
                             const std::vector<const QueryBlock*>& ancestors,
                             VerifyReport* report) const {
  const Schema own = SchemaOf(block.attributes);
  const auto check_linking_side = [&]() {
    if (block.linking_is_const) return;
    if (block.linking_attr.empty()) {
      AddError(report, block.id, verify_rules::kLinkSchema,
               "link has no outer operand (neither a linking attribute nor "
               "a constant)");
      return;
    }
    if (ResolveInAncestors(block.linking_attr, ancestors) == nullptr) {
      AddError(report, block.id, verify_rules::kLinkSchema,
               "linking attribute '" + block.linking_attr +
                   "' does not resolve in any ancestor block");
    }
  };

  if (block.is_aggregate_link) {
    if (block.linked_attr.empty()) {
      if (block.agg != LinkAgg::kCountStar) {
        AddError(report, block.id, verify_rules::kLinkSchema,
                 "aggregate link has no argument column (only COUNT(*) may "
                 "omit it)");
      }
    } else if (!own.Resolve(block.linked_attr).ok()) {
      AddError(report, block.id, verify_rules::kLinkSchema,
               "aggregate argument '" + block.linked_attr +
                   "' is not an attribute of the block");
    }
    check_linking_side();
    return;
  }

  switch (block.link_op) {
    case LinkOp::kExists:
    case LinkOp::kNotExists:
      // Emptiness testing reads the block's key through the nest.
      if (!block.key_attr.empty() && block.linked_attr != block.key_attr) {
        AddError(report, block.id, verify_rules::kLinkSchema,
                 "EXISTS link must use the block's key attribute '" +
                     block.key_attr + "' as its linked attribute (found '" +
                     block.linked_attr + "')");
      }
      break;
    case LinkOp::kIn:
    case LinkOp::kNotIn:
    case LinkOp::kSome:
    case LinkOp::kAll:
      if (block.linked_attr.empty()) {
        AddError(report, block.id, verify_rules::kLinkSchema,
                 "quantified link has no linked attribute (the subquery's "
                 "select item)");
      } else if (!own.Resolve(block.linked_attr).ok()) {
        AddError(report, block.id, verify_rules::kLinkSchema,
                 "linked attribute '" + block.linked_attr +
                     "' is not an attribute of the block");
      }
      check_linking_side();
      break;
  }
}

void PlanVerifier::CheckLinkProperties(
    const QueryBlock& block, const std::vector<const QueryBlock*>& ancestors,
    VerifyReport* report) const {
  const PropertyAnalyzer analyzer(catalog_);
  const LinkFacts facts = analyzer.AnalyzeLink(block, ancestors);
  if (facts.always_unknown) {
    AddWarning(report, block.id, verify_rules::kNullLinking,
               "linking predicate can only ever evaluate to UNKNOWN (" +
                   facts.reason +
                   "); the link is constant-valued regardless of the data");
  }
  // scalar-card guards the binder's non-aggregate scalar-subquery binding:
  // it is evaluated as `θ SOME`, which silently diverges from SQL scalar
  // semantics if the subquery ever yields two rows — so reject the plan
  // unless the at-most-one bound is provable.
  if (block.is_scalar_link && !analyzer.AtMostOneMember(block)) {
    AddError(report, block.id, verify_rules::kScalarCard,
             "scalar subquery is not provably limited to one row per outer "
             "binding: no key of block " +
                 std::to_string(block.id) +
                 " is pinned by equality predicates; it may yield multiple "
                 "rows at runtime");
  }
}

void PlanVerifier::CheckDeadPseudo(const std::vector<PlanStep>& steps,
                                   VerifyReport* report) const {
  if (steps.empty()) return;

  // Conservative upward read set: every attribute any linking selection,
  // correlated predicate, key probe, or root output phase might read after
  // the padding happened. Local predicates run strictly before any padding
  // and are deliberately excluded.
  std::set<std::string> read;
  const QueryBlock* root =
      steps[0].path.empty() ? steps[0].parent : steps[0].path[0];
  std::vector<const QueryBlock*> stack{root};
  while (!stack.empty()) {
    const QueryBlock* b = stack.back();
    stack.pop_back();
    for (const ExprPtr& p : b->correlated_preds) {
      std::vector<std::string> cols;
      p->CollectColumns(&cols);
      read.insert(cols.begin(), cols.end());
    }
    if (!b->linking_attr.empty()) read.insert(b->linking_attr);
    if (!b->linked_attr.empty()) read.insert(b->linked_attr);
    if (!b->key_attr.empty()) read.insert(b->key_attr);
    read.insert(b->select_list.begin(), b->select_list.end());
    read.insert(b->group_by.begin(), b->group_by.end());
    for (const QueryBlock::RootAgg& a : b->aggregates) {
      if (!a.column.empty()) read.insert(a.column);
    }
    for (const QueryBlock::OrderItem& o : b->order_by) read.insert(o.column);
    if (b->having != nullptr) {
      std::vector<std::string> cols;
      b->having->CollectColumns(&cols);
      read.insert(cols.begin(), cols.end());
    }
    for (const auto& c : b->children) stack.push_back(c.get());
  }

  // Declared constraints only (not the load-time observed scans): the
  // "remove this pad attribute" advice must stay valid when data changes.
  const auto declared_non_null = [&](const QueryBlock& owner,
                                     const std::string& attr) {
    for (const QueryBlock::TableRef& ref : owner.tables) {
      const std::string prefix = ref.alias + ".";
      if (attr.compare(0, prefix.size(), prefix) == 0) {
        return catalog_.IsNotNull(ref.table, attr.substr(prefix.size()));
      }
    }
    return false;
  };

  for (const PlanStep& s : steps) {
    if (s.mode != SelectionMode::kPseudo || s.streaming) continue;
    std::vector<std::string> removable;
    for (const std::string& a : s.pad_attrs) {
      if (read.count(a) > 0) continue;
      if (!declared_non_null(*s.parent, a)) continue;
      removable.push_back(a);
    }
    if (removable.empty()) continue;
    std::ostringstream list;
    for (size_t i = 0; i < removable.size(); ++i) {
      if (i > 0) list << ", ";
      list << removable[i];
    }
    AddWarning(report, s.child->id, verify_rules::kDeadPseudo,
               "pseudo-selection for the link of block " +
                   std::to_string(s.child->id) +
                   " pads declared NOT NULL attributes {" + list.str() +
                   "} that nothing upward reads; they are removable from "
                   "the pad set A");
  }
}

void PlanVerifier::CheckRewritePreconditions(
    const QueryBlock& block, const std::vector<const QueryBlock*>& ancestors,
    VerifyReport* report) const {
  // §4.2.5 positive-semijoin rewrite: when the executor would take it
  // (flag-forced or cost-gated — shared predicate), the extra join
  // condition A θ B must be constructible.
  {
    const bool strict_safe = PathStrictSafe(ancestors);
    if (TakesSemijoinRewrite(block, ancestors, strict_safe, catalog_,
                             options_) &&
        !block.is_aggregate_link &&
        (block.link_op == LinkOp::kIn || block.link_op == LinkOp::kSome)) {
      if (block.linked_attr.empty()) {
        AddError(report, block.id, verify_rules::kRewritePrecond,
                 "positive-semijoin rewrite (4.2.5) needs the link's inner "
                 "operand, but the block has no linked attribute");
      }
      if (!block.linking_is_const && block.linking_attr.empty()) {
        AddError(report, block.id, verify_rules::kRewritePrecond,
                 "positive-semijoin rewrite (4.2.5) needs the link's outer "
                 "operand, but the block has neither a linking attribute "
                 "nor a constant");
      }
    }
  }

  // §4.2.4 nest push-down: enabled (flag or cost gate) + equality-shaped
  // correlation that does not split cleanly into outer/inner sides silently
  // falls back to the outer-join plan — worth a warning, not an error.
  if (TakesNestPushDown(block, ancestors, catalog_, options_) &&
      LooksEquiCorrelated(block)) {
    std::vector<std::string> outer_cols;
    if (!EquiCorrelationSplit(block, ancestors, &outer_cols)) {
      AddWarning(report, block.id, verify_rules::kRewritePrecond,
                 "nest push-down (4.2.4) is enabled and the correlation is "
                 "equality-shaped, but it does not split into outer/inner "
                 "sides; the executor falls back to the outer-join plan");
    }
  }
}

std::vector<PlanStep> PlanVerifier::Outline(const QueryBlock& root) const {
  std::vector<PlanStep> steps;
  if (root.children.empty()) return steps;

  // §4.2.3 bottom-up pipeline (innermost level first; strict throughout).
  if (options_.bottom_up_linear && root.IsLinearCorrelated()) {
    const std::vector<const QueryBlock*> chain = FlattenLinear(root);
    for (int k = static_cast<int>(chain.size()) - 2; k >= 0; --k) {
      PlanStep s;
      s.parent = chain[k];
      s.child = chain[k + 1];
      s.order = PlanStepOrder::kBottomUp;
      s.mode = SelectionMode::kStrict;
      std::vector<std::string> outer_cols;
      std::vector<const QueryBlock*> path(chain.begin(),
                                          chain.begin() + k + 1);
      s.kind = EquiCorrelationSplit(*s.child, path, &outer_cols)
                   ? PlanStepKind::kHashLinkSelect
                   : PlanStepKind::kNestSelect;
      s.nesting_attrs = s.kind == PlanStepKind::kHashLinkSelect
                            ? outer_cols
                            : s.parent->attributes;
      s.nested_attrs = NestedAttrsFor(*s.child);
      s.path = std::move(path);
      steps.push_back(std::move(s));
    }
    return steps;
  }

  // §4.2.1 + §4.2.2 single-sort fused pipeline over a whole linear chain.
  if (options_.fused && root.IsLinear() && !options_.push_down_nest &&
      !options_.rewrite_positive) {
    const std::vector<const QueryBlock*> chain = FlattenLinear(root);
    bool all_correlated = true;
    for (size_t i = 1; i < chain.size(); ++i) {
      all_correlated = all_correlated && !chain[i]->correlated_preds.empty();
    }
    // Proven-2VL bypass: when the chain's leaf link can run as a plain
    // antijoin, the recursive route (below) takes it; the fused pipeline
    // would evaluate the same link through 3VL member handling. Shared
    // predicate — the executor and EXPLAIN call the same function.
    if (FusedChainBypassesTwoValued(chain, catalog_, options_)) {
      all_correlated = false;
    }
    // Same routing for a cost-gated §4.2.5/§4.2.4 rewrite on the leaf.
    if (FusedChainBypassesForCost(chain, catalog_, options_)) {
      all_correlated = false;
    }
    if (all_correlated) {
      std::vector<std::string> prefix;
      for (size_t k = 0; k + 1 < chain.size(); ++k) {
        for (const std::string& a : chain[k]->attributes) {
          prefix.push_back(a);
        }
        PlanStep s;
        s.parent = chain[k];
        s.child = chain[k + 1];
        s.kind = PlanStepKind::kNestSelect;
        s.streaming = true;
        s.mode = k == 0 ? SelectionMode::kStrict : SelectionMode::kPseudo;
        s.nesting_attrs = prefix;
        s.nested_attrs = NestedAttrsFor(*s.child);
        s.path.assign(chain.begin(), chain.begin() + k + 1);
        steps.push_back(std::move(s));
      }
      return steps;
    }
  }

  // Recursive Algorithm 1.
  std::vector<const QueryBlock*> path{&root};
  OutlineNode(root, root.attributes, &path, &steps);
  return steps;
}

void PlanVerifier::OutlineNode(const QueryBlock& node,
                               std::vector<std::string> retained,
                               std::vector<const QueryBlock*>* path,
                               std::vector<PlanStep>* steps) const {
  for (const auto& child_ptr : node.children) {
    const QueryBlock& child = *child_ptr;
    const bool strict_safe = PathStrictSafe(*path);
    const SelectionMode mode =
        strict_safe ? SelectionMode::kStrict : SelectionMode::kPseudo;

    PlanStep s;
    s.parent = &node;
    s.child = &child;
    s.mode = mode;
    s.path = *path;

    if (TakesSemijoinRewrite(child, *path, strict_safe, catalog_,
                             options_)) {
      s.kind = PlanStepKind::kSemijoin;
      s.mode = SelectionMode::kStrict;
      steps->push_back(std::move(s));
      continue;
    }

    if (TakesTwoValuedAntijoin(child, *path, catalog_, options_)) {
      s.kind = PlanStepKind::kAntijoin;
      s.mode = SelectionMode::kStrict;
      steps->push_back(std::move(s));
      continue;
    }

    if (child.IsLeaf() && child.correlated_preds.empty()) {
      // Virtual Cartesian product: one shared group, no grouping key.
      s.kind = PlanStepKind::kHashLinkSelect;
      s.nested_attrs = NestedAttrsFor(child);
      s.pad_attrs = node.attributes;
      steps->push_back(std::move(s));
      continue;
    }

    if (TakesNestPushDown(child, *path, catalog_, options_)) {
      std::vector<std::string> outer_cols;
      if (EquiCorrelationSplit(child, *path, &outer_cols)) {
        s.kind = PlanStepKind::kHashLinkSelect;
        s.nesting_attrs = std::move(outer_cols);
        s.nested_attrs = NestedAttrsFor(child);
        s.pad_attrs = node.attributes;
        steps->push_back(std::move(s));
        continue;
      }
    }

    // Outer join, recurse, then nest by the retained prefix + select.
    std::vector<std::string> retained_child = retained;
    for (const std::string& a : child.attributes) {
      retained_child.push_back(a);
    }
    path->push_back(&child);
    OutlineNode(child, std::move(retained_child), path, steps);
    path->pop_back();

    s.kind = PlanStepKind::kNestSelect;
    s.nesting_attrs = retained;
    s.nested_attrs = NestedAttrsFor(child);
    s.pad_attrs = node.attributes;
    steps->push_back(std::move(s));
  }
}

void PlanVerifier::CheckOutline(const std::vector<PlanStep>& steps,
                                VerifyReport* report) const {
  for (const PlanStep& s : steps) {
    NESTRA_DCHECK(s.parent != nullptr && s.child != nullptr);
    const QueryBlock& child = *s.child;
    const QueryBlock& parent = *s.parent;

    if (s.kind == PlanStepKind::kAntijoin) {
      // The antijoin evaluates a negative link with 2VL member handling and
      // drops failing tuples outright. Sound only on a strict-safe path,
      // and only when the member comparison can never go UNKNOWN.
      if (child.LinkIsPositive() || !PathStrictSafe(s.path)) {
        AddError(report, child.id, verify_rules::kLinkMode,
                 "two-valued antijoin rewrite applies to a negative link on "
                 "a strict-safe path, but the link is positive or an "
                 "enclosing negative linking operator is pending");
      } else if (!NegativeLinkRunsTwoValued(child, s.path, catalog_)) {
        // The call above is deliberately NOT the shared TakesTwoValuedAntijoin
        // predicate: CheckOutline re-validates the property from first
        // principles so a bug in the shared decision gate cannot also blind
        // its checker. (Allowlisted in tools/lint_engine_invariants.py.)
        AddError(report, child.id, verify_rules::kRewritePrecond,
                 "two-valued antijoin rewrite requires a proven two-valued "
                 "member comparison (non-NULL operands), which does not "
                 "hold for the link of block " +
                     std::to_string(child.id));
      }
      continue;
    }

    if (s.kind == PlanStepKind::kSemijoin) {
      // The semijoin drops failing tuples outright — it is a strict
      // selection in disguise and inherits the same soundness condition.
      if (!child.LinkIsPositive() || !PathStrictSafe(s.path)) {
        AddError(report, child.id, verify_rules::kLinkMode,
                 "semijoin rewrite drops failing tuples, but the link (or "
                 "an enclosing link) is negative; the pseudo-selection "
                 "plan is required");
      }
      continue;
    }

    // --- link-mode: strict only where no negative operator is pending.
    const bool negative_pending =
        s.order == PlanStepOrder::kTopDown && !PathStrictSafe(s.path);
    if (s.mode == SelectionMode::kStrict && negative_pending) {
      AddError(report, child.id, verify_rules::kLinkMode,
               "strict selection for the link of block " +
                   std::to_string(child.id) +
                   ", but an enclosing negative linking operator is still "
                   "pending; the pseudo-selection with NULL padding is "
                   "required");
    }
    if (s.mode == SelectionMode::kPseudo && !s.streaming) {
      // A must be exactly the enclosing block's attributes, so the padded
      // tuple's key and linked value read as NULL upward.
      if (parent.key_attr.empty() ||
          !Contains(s.pad_attrs, parent.key_attr)) {
        AddError(report, child.id, verify_rules::kKeySurvival,
                 "pseudo-selection pad set for the link of block " +
                     std::to_string(child.id) +
                     " does not include the enclosing block's key "
                     "attribute; padded tuples would be undetectable");
      } else {
        const std::set<std::string> pad(s.pad_attrs.begin(),
                                        s.pad_attrs.end());
        const std::set<std::string> enclosing(parent.attributes.begin(),
                                              parent.attributes.end());
        if (pad != enclosing) {
          AddError(report, child.id, verify_rules::kLinkMode,
                   "pseudo-selection pad set A must be exactly the "
                   "enclosing block's attribute set");
        }
      }
    }

    // --- nest-sets: υ_{N1,N2} well-formedness.
    if (s.nested_attrs.empty()) {
      AddError(report, child.id, verify_rules::kNestSets,
               "nest set N2 is empty: the link has neither a linked "
               "attribute nor a key attribute");
    }
    for (const std::string& a : s.nested_attrs) {
      if (Contains(s.nesting_attrs, a)) {
        AddError(report, child.id, verify_rules::kNestSets,
                 "nest sets N1 and N2 overlap on '" + a + "'");
      }
      if (!a.empty() && !Contains(child.attributes, a)) {
        AddError(report, child.id, verify_rules::kNestSets,
                 "nested attribute '" + a + "' is not an attribute of block " +
                     std::to_string(child.id));
      }
    }
    for (size_t i = 0; i < s.nesting_attrs.size(); ++i) {
      for (size_t j = i + 1; j < s.nesting_attrs.size(); ++j) {
        if (s.nesting_attrs[i] == s.nesting_attrs[j]) {
          AddError(report, child.id, verify_rules::kNestSets,
                   "nest set N1 lists '" + s.nesting_attrs[i] +
                       "' more than once");
        }
      }
    }
    // Closure under the implicit projection onto N1 ∪ N2: the linking
    // selection still needs the outer operand after the nest.
    if (s.kind == PlanStepKind::kNestSelect && !child.linking_is_const &&
        !child.linking_attr.empty() &&
        !Contains(s.nesting_attrs, child.linking_attr)) {
      AddError(report, child.id, verify_rules::kNestSets,
               "linking attribute '" + child.linking_attr +
                   "' does not survive the nest's implicit projection "
                   "(missing from N1)");
    }

    // --- key-survival at the step level.
    if (child.key_attr.empty()) {
      AddError(report, child.id, verify_rules::kKeySurvival,
               "block " + std::to_string(child.id) +
                   " has no key attribute; the linking selection cannot "
                   "distinguish an empty subquery from a padded one");
    } else if (!Contains(s.nested_attrs, child.key_attr)) {
      AddError(report, child.id, verify_rules::kKeySurvival,
               "key attribute '" + child.key_attr + "' of block " +
                   std::to_string(child.id) +
                   " does not survive to the linking selection (missing "
                   "from N2)");
    }
  }
}

Status VerifyPlan(const QueryBlock& root, const Catalog& catalog,
                  const NraOptions& options) {
  const PlanVerifier verifier(catalog, options);
  return verifier.Verify(root).ToStatus();
}

}  // namespace nestra
