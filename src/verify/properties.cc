#include "verify/properties.h"

#include <algorithm>
#include <sstream>

namespace nestra {

const char* NullabilityToString(Nullability n) {
  switch (n) {
    case Nullability::kNullable:
      return "nullable";
    case Nullability::kNonNull:
      return "non-null";
    case Nullability::kAlwaysNull:
      return "always-null";
  }
  return "?";
}

const char* CardBoundToString(CardBound c) {
  switch (c) {
    case CardBound::kZero:
      return "0";
    case CardBound::kAtMostOne:
      return "<=1";
    case CardBound::kMany:
      return "many";
  }
  return "?";
}

bool BlockProperties::NonNull(const std::string& attr) const {
  const auto it = attrs.find(attr);
  return it != attrs.end() && it->second.nullability == Nullability::kNonNull;
}

bool BlockProperties::AlwaysNull(const std::string& attr) const {
  const auto it = attrs.find(attr);
  return it != attrs.end() &&
         it->second.nullability == Nullability::kAlwaysNull;
}

std::string BlockProperties::ToString() const {
  const auto render = [&](Nullability n) {
    std::ostringstream os;
    bool first = true;
    for (const std::string& a : attr_order) {
      const auto it = attrs.find(a);
      if (it == attrs.end() || it->second.nullability != n) continue;
      if (!first) os << ", ";
      os << a;
      first = false;
    }
    return os.str();
  };
  std::ostringstream os;
  os << "non-null={" << render(Nullability::kNonNull) << "} nullable={"
     << render(Nullability::kNullable) << "}";
  const std::string always = render(Nullability::kAlwaysNull);
  if (!always.empty()) os << " always-null={" << always << "}";
  os << " keys={";
  for (size_t k = 0; k < keys.size(); ++k) {
    if (k > 0) os << ", ";
    if (keys[k].size() > 1) os << "(";
    for (size_t i = 0; i < keys[k].size(); ++i) {
      if (i > 0) os << ", ";
      os << keys[k][i];
    }
    if (keys[k].size() > 1) os << ")";
  }
  os << "} card=" << CardBoundToString(card);
  return os.str();
}

namespace {

// Comparability classes of Value::Compare: kInt64/kFloat64/kDate compare
// numerically among themselves (dates are stored as int64 day numbers);
// strings only compare to strings. A cross-class comparison is always
// UNKNOWN.
enum class CmpClass { kNumeric, kString };

CmpClass ClassOfType(TypeId t) {
  return t == TypeId::kString ? CmpClass::kString : CmpClass::kNumeric;
}

CmpClass ClassOfValue(const Value& v) {
  return v.is_string() ? CmpClass::kString : CmpClass::kNumeric;
}

// Flattens a conjunction into its leaf conjuncts (no clone; borrowed refs).
void CollectConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (const auto* conj = dynamic_cast<const AndExpr*>(&e)) {
    for (const ExprPtr& c : conj->children()) CollectConjuncts(*c, out);
    return;
  }
  out->push_back(&e);
}

struct TransferState {
  BlockProperties* props;
  /// Set when some conjunct is provably never-TRUE (always UNKNOWN or
  /// contradicted), making the qualifying set empty.
  bool provably_empty = false;
};

// Applies one conjunct's facts to the block attributes it references.
// Attributes of other blocks (correlated sides) are simply absent from
// `props->attrs` and ignored. SQL filter semantics keep a row only when the
// conjunct is TRUE, so: a comparison proves its column operands non-NULL
// (UNKNOWN never qualifies); IS NULL proves always-NULL; IS NOT NULL proves
// non-NULL; a comparison against a NULL literal, between incomparable
// classes, or over an always-NULL attribute is never TRUE.
void TransferConjunct(const Expr& e, TransferState* state) {
  BlockProperties& props = *state->props;
  if (const auto* cmp = dynamic_cast<const Comparison*>(&e)) {
    const Expr* sides[2] = {&cmp->lhs(), &cmp->rhs()};
    CmpClass classes[2];
    bool known[2] = {false, false};
    for (int i = 0; i < 2; ++i) {
      if (const auto* col = dynamic_cast<const ColumnRef*>(sides[i])) {
        const auto it = props.attrs.find(col->name());
        if (it == props.attrs.end()) continue;  // other block's attribute
        if (it->second.nullability == Nullability::kAlwaysNull) {
          state->provably_empty = true;
        } else {
          it->second.nullability = Nullability::kNonNull;
        }
        classes[i] = ClassOfType(it->second.type);
        known[i] = true;
      } else if (const auto* lit = dynamic_cast<const Literal*>(sides[i])) {
        if (lit->value().is_null()) {
          state->provably_empty = true;
          continue;
        }
        classes[i] = ClassOfValue(lit->value());
        known[i] = true;
      }
    }
    if (known[0] && known[1] && classes[0] != classes[1]) {
      state->provably_empty = true;
    }
    return;
  }
  if (const auto* isnull = dynamic_cast<const IsNullExpr*>(&e)) {
    const auto* col = dynamic_cast<const ColumnRef*>(&isnull->child());
    if (col == nullptr) return;
    const auto it = props.attrs.find(col->name());
    if (it == props.attrs.end()) return;
    if (isnull->negated()) {
      // IS NOT NULL: a NULL value never qualifies.
      if (it->second.nullability == Nullability::kAlwaysNull) {
        state->provably_empty = true;
      } else {
        it->second.nullability = Nullability::kNonNull;
      }
    } else {
      // IS NULL: a non-NULL value never qualifies.
      if (it->second.nullability == Nullability::kNonNull) {
        state->provably_empty = true;
      } else {
        it->second.nullability = Nullability::kAlwaysNull;
      }
    }
  }
}

// "k = <literal>" or "k = other-block column": equality conjuncts that pin
// one attribute per outer binding. Collects the pinned local attributes.
void CollectPinnedAttrs(const Expr& e, const BlockProperties& props,
                        std::set<std::string>* pinned) {
  const auto* cmp = dynamic_cast<const Comparison*>(&e);
  if (cmp == nullptr || cmp->op() != CmpOp::kEq) return;
  const Expr* sides[2] = {&cmp->lhs(), &cmp->rhs()};
  for (int i = 0; i < 2; ++i) {
    const auto* col = dynamic_cast<const ColumnRef*>(sides[i]);
    if (col == nullptr || props.attrs.count(col->name()) == 0) continue;
    const Expr* other = sides[1 - i];
    const bool other_is_literal = dynamic_cast<const Literal*>(other) != nullptr;
    const auto* other_col = dynamic_cast<const ColumnRef*>(other);
    const bool other_is_outer =
        other_col != nullptr && props.attrs.count(other_col->name()) == 0;
    if (other_is_literal || other_is_outer) pinned->insert(col->name());
  }
}

}  // namespace

bool PropertyAnalyzer::BaseNonNull(const std::string& table,
                                   const std::string& column) const {
  return declared_only_ ? catalog_.IsNotNull(table, column)
                        : catalog_.ProvenNotNull(table, column);
}

BlockProperties PropertyAnalyzer::Analyze(const QueryBlock& block) const {
  BlockProperties props;
  props.block_id = block.id;
  // Seed from the catalog schemas and constraints.
  bool all_tables_keyed = !block.tables.empty();
  std::vector<std::string> compound_key;
  for (const QueryBlock::TableRef& ref : block.tables) {
    const Result<const Table*> table = catalog_.GetTable(ref.table);
    if (!table.ok()) continue;  // unresolved table: schema-resolve's job
    const Result<const TableMetadata*> meta = catalog_.GetMetadata(ref.table);
    for (const Field& f : (*table)->schema().fields()) {
      const std::string qualified = ref.alias + "." + f.name;
      AttributeProps ap;
      ap.type = f.type;
      ap.nullability = BaseNonNull(ref.table, f.name) ? Nullability::kNonNull
                                                      : Nullability::kNullable;
      props.attrs.emplace(qualified, ap);
      props.attr_order.push_back(qualified);
    }
    if (meta.ok() && !(*meta)->primary_key.empty()) {
      compound_key.push_back(ref.alias + "." + (*meta)->primary_key);
    } else {
      all_tables_keyed = false;
    }
  }
  if (all_tables_keyed) props.keys.push_back(compound_key);

  // Transfer the local predicate and the correlated predicates: both run
  // before the linking selection, and an UNKNOWN conjunct excludes the row
  // from every group / qualifying set.
  TransferState state{&props, false};
  std::vector<const Expr*> conjuncts;
  if (block.local_pred != nullptr) {
    CollectConjuncts(*block.local_pred, &conjuncts);
  }
  for (const ExprPtr& c : block.correlated_preds) {
    CollectConjuncts(*c, &conjuncts);
  }
  for (const Expr* c : conjuncts) TransferConjunct(*c, &state);

  // Cardinality bound.
  if (state.provably_empty) {
    props.card = CardBound::kZero;
  } else {
    std::set<std::string> pinned;
    for (const Expr* c : conjuncts) CollectPinnedAttrs(*c, props, &pinned);
    for (const std::vector<std::string>& key : props.keys) {
      const bool covered =
          std::all_of(key.begin(), key.end(), [&](const std::string& k) {
            return pinned.count(k) > 0;
          });
      if (covered) {
        props.card = CardBound::kAtMostOne;
        break;
      }
    }
  }
  return props;
}

LinkFacts PropertyAnalyzer::AnalyzeLink(
    const QueryBlock& child,
    const std::vector<const QueryBlock*>& ancestors) const {
  LinkFacts facts;
  // Aggregate links keep the binder's default link_op (kExists), so this
  // check must precede the emptiness-test branch.
  if (child.is_aggregate_link) {
    // MIN/MAX/SUM/AVG over an empty or all-NULL group are NULL, so the
    // comparison can go UNKNOWN even over non-NULL inputs. Conservative.
    facts.reason = "aggregate link (empty group folds to NULL)";
    return facts;
  }
  if (child.link_op == LinkOp::kExists || child.link_op == LinkOp::kNotExists) {
    facts.two_valued = true;
    facts.reason = "emptiness test, no member comparison";
    return facts;
  }

  // Outer operand: a constant, or an attribute of some enclosing block.
  Nullability outer_null = Nullability::kNullable;
  CmpClass outer_class = CmpClass::kNumeric;
  bool outer_known = false;
  std::string outer_label;
  if (child.linking_is_const) {
    outer_label = "constant " + child.linking_const.ToString();
    outer_null = child.linking_const.is_null() ? Nullability::kAlwaysNull
                                               : Nullability::kNonNull;
    outer_class = ClassOfValue(child.linking_const);
    outer_known = !child.linking_const.is_null();
  } else {
    outer_label = "linking attribute '" + child.linking_attr + "'";
    for (auto it = ancestors.rbegin(); it != ancestors.rend(); ++it) {
      const BlockProperties props = Analyze(**it);
      const auto found = props.attrs.find(child.linking_attr);
      if (found == props.attrs.end()) continue;
      outer_null = found->second.nullability;
      outer_class = ClassOfType(found->second.type);
      outer_known = true;
      break;
    }
  }

  // Inner operand: the child's linked attribute after σ and C.
  const BlockProperties child_props = Analyze(child);
  const auto linked = child_props.attrs.find(child.linked_attr);
  const Nullability inner_null = linked != child_props.attrs.end()
                                     ? linked->second.nullability
                                     : Nullability::kNullable;
  const CmpClass inner_class = linked != child_props.attrs.end()
                                   ? ClassOfType(linked->second.type)
                                   : CmpClass::kNumeric;
  const bool inner_known = linked != child_props.attrs.end();

  if (outer_null == Nullability::kAlwaysNull) {
    facts.always_unknown = true;
    facts.reason = outer_label + " is provably NULL";
    return facts;
  }
  if (inner_null == Nullability::kAlwaysNull) {
    facts.always_unknown = true;
    facts.reason =
        "linked attribute '" + child.linked_attr + "' is provably NULL";
    return facts;
  }
  if (outer_known && inner_known && outer_class != inner_class) {
    facts.always_unknown = true;
    facts.reason = outer_label + " and linked attribute '" +
                   child.linked_attr + "' have incomparable types";
    return facts;
  }
  if (outer_null != Nullability::kNonNull) {
    facts.reason = outer_label + " may be NULL";
    return facts;
  }
  if (inner_null != Nullability::kNonNull) {
    facts.reason =
        "linked attribute '" + child.linked_attr + "' may be NULL";
    return facts;
  }
  facts.two_valued = true;
  facts.reason = "both operands proven non-NULL";
  return facts;
}

bool PropertyAnalyzer::AtMostOneMember(const QueryBlock& child) const {
  const BlockProperties props = Analyze(child);
  return props.card != CardBound::kMany;
}

bool NegativeLinkRunsTwoValued(const QueryBlock& child,
                               const std::vector<const QueryBlock*>& path,
                               const Catalog& catalog) {
  if (path.empty() || !child.IsLeaf()) return false;
  if (child.is_aggregate_link || child.LinkIsPositive()) return false;
  // Strict-safe path: the antijoin drops failing outer tuples for good, so
  // every enclosing link must be positive.
  for (size_t i = 1; i < path.size(); ++i) {
    if (!path[i]->LinkIsPositive()) return false;
  }
  if (child.link_op == LinkOp::kNotExists) return true;
  const PropertyAnalyzer analyzer(catalog);
  return analyzer.AnalyzeLink(child, path).two_valued;
}

}  // namespace nestra
