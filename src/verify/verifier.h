#ifndef NESTRA_VERIFY_VERIFIER_H_
#define NESTRA_VERIFY_VERIFIER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "nested/linking_selection.h"
#include "nra/options.h"
#include "plan/query_block.h"
#include "storage/catalog.h"

namespace nestra {

/// Rule identifiers, stable across releases (documented in DESIGN.md with
/// their paper references).
namespace verify_rules {
/// Selection-mode consistency: strict σ_C only where no enclosing negative
/// operator is pending; pseudo σ̄_{C,A} pads exactly the subquery-side
/// attribute set A (paper §4, Definition of the pseudo-selection).
inline constexpr const char kLinkMode[] = "link-mode";
/// Linking predicate well-formedness: the operator's outer/inner operands
/// exist and resolve on the correct side (paper §2, linking predicates).
inline constexpr const char kLinkSchema[] = "link-schema";
/// Nest operator υ_{N1,N2}: N1 ∩ N2 = ∅, N2 non-empty, and every attribute
/// the linking selection reads survives the implicit projection onto
/// N1 ∪ N2 (paper §3, nest definition).
inline constexpr const char kNestSets[] = "nest-sets";
/// Every outer-joined block contributes a key attribute that survives to
/// its linking selection, so empty subqueries are detectable through
/// NULL-padded keys (paper §4, empty-set handling).
inline constexpr const char kKeySurvival[] = "key-survival";
/// Schema propagation: every attribute referenced by local / correlated /
/// linking predicates and the root output resolves at its point of use.
inline constexpr const char kSchemaResolve[] = "schema-resolve";
/// Preconditions of the enabled §4.2.3–§4.2.5 rewrites actually hold.
inline constexpr const char kRewritePrecond[] = "rewrite-precond";
/// A non-correlated, non-leaf block forces a materialized Cartesian
/// product (warning: legal but expensive).
inline constexpr const char kCartesianProduct[] = "cartesian-product";
/// A linking predicate whose member comparison can only ever evaluate to
/// UNKNOWN (an operand is provably NULL, or the operand types are
/// incomparable): the link is constant-valued regardless of the data
/// (warning — legal SQL, almost certainly a query bug).
inline constexpr const char kNullLinking[] = "null-linking";
/// A scalar (non-aggregate) subquery whose cardinality bound is not
/// provably <= 1 per outer binding: it may yield more than one row at
/// runtime (error; SQL requires at most one).
inline constexpr const char kScalarCard[] = "scalar-card";
/// A pseudo-selection pads attributes that are declared NOT NULL and play
/// no role upward (not the key, not read by any enclosing predicate or
/// link): the padding is dead weight and the attribute is removable from
/// the pad set (warning, advisory). Uses declared constraints only, so the
/// advice survives data changes.
inline constexpr const char kDeadPseudo[] = "dead-pseudo";

/// Every registered rule id, in documentation order. EXPLAIN's summary line
/// and tools/lint_engine_invariants.py consume this registry.
inline constexpr const char* kAllRules[] = {
    kLinkMode,   kLinkSchema,     kNestSets,   kKeySurvival, kSchemaResolve,
    kRewritePrecond, kCartesianProduct, kNullLinking, kScalarCard, kDeadPseudo,
};
inline constexpr int kNumRules = sizeof(kAllRules) / sizeof(kAllRules[0]);
}  // namespace verify_rules

enum class VerifySeverity { kWarning, kError };

const char* VerifySeverityToString(VerifySeverity severity);

/// One structured finding of the verifier.
struct VerifyDiagnostic {
  VerifySeverity severity = VerifySeverity::kError;
  int block_id = 0;
  std::string rule_id;
  std::string message;

  /// "error [nest-sets] block 2: ..." — one line, no trailing newline.
  std::string ToString() const;
};

/// \brief Diagnostics container, indexed by rule id: Add() maintains
/// severity tallies and per-rule counts so HasRule / the EXPLAIN summary
/// line are O(log #distinct-rules) instead of a scan per query.
class VerifyReport {
 public:
  void Add(VerifyDiagnostic d);

  const std::vector<VerifyDiagnostic>& diagnostics() const {
    return diagnostics_;
  }
  /// No error-severity diagnostics (warnings allowed).
  bool ok() const { return num_errors_ == 0; }
  /// No diagnostics at all.
  bool clean() const { return diagnostics_.empty(); }
  int num_errors() const { return num_errors_; }
  int num_warnings() const { return num_warnings_; }
  bool HasRule(const std::string& rule_id) const {
    return rule_counts_.count(rule_id) > 0;
  }
  int CountRule(const std::string& rule_id) const;

  /// "verify: 10 rules, 0 errors, 2 warnings" — the cheap one-liner EXPLAIN
  /// prints (rule count = the registry size, not the rules that fired).
  std::string Summary() const;
  /// One diagnostic per line.
  std::string ToString() const;
  /// OK when ok(); otherwise an InvalidArgument carrying every error.
  Status ToStatus() const;

 private:
  std::vector<VerifyDiagnostic> diagnostics_;
  std::map<std::string, int> rule_counts_;
  int num_errors_ = 0;
  int num_warnings_ = 0;
};

/// How one linking selection of the plan evaluates its nest + selection.
enum class PlanStepKind {
  kNestSelect,      // nest by the retained prefix, then linking selection
  kHashLinkSelect,  // §4.2.4 push-down / virtual Cartesian product
  kSemijoin,        // §4.2.5 positive rewrite (no nest at all)
  kAntijoin,        // proven-2VL negative-link rewrite (no nest at all)
};

/// Evaluation order of the step relative to its enclosing links. In the
/// top-down orders an enclosing negative operator may still need a failing
/// tuple (pseudo mode required); in the §4.2.3 bottom-up order nothing is
/// pending below, so the strict selection is always sound.
enum class PlanStepOrder { kTopDown, kBottomUp };

/// \brief One linking-selection step, mirroring NraExecutor's decisions: the
/// nest υ_{N1,N2} for `child`'s link evaluated against `parent`'s level.
struct PlanStep {
  const QueryBlock* parent = nullptr;
  const QueryBlock* child = nullptr;
  PlanStepKind kind = PlanStepKind::kNestSelect;
  PlanStepOrder order = PlanStepOrder::kTopDown;
  /// True for inner levels of the single-sort fused pipeline (§4.2.1): the
  /// pseudo-selection's padding is implicit there (a failing group simply
  /// contributes no member), so no pad list is required.
  bool streaming = false;
  SelectionMode mode = SelectionMode::kStrict;
  std::vector<std::string> nesting_attrs;  // N1
  std::vector<std::string> nested_attrs;   // N2
  std::vector<std::string> pad_attrs;      // A (pseudo mode)
  /// Enclosing blocks, root first, ending at `parent`. CheckOutline
  /// recomputes the required selection mode from the links on this path.
  std::vector<const QueryBlock*> path;
};

/// \brief Static verifier for bound QueryBlock plans (run before execution).
///
/// Verify() checks the tree-level invariants (schemas, linking predicates,
/// keys, rewrite preconditions), derives the plan outline the executor
/// would choose under `options`, and checks every step of it. Outline() and
/// CheckOutline() are exposed separately so tests (and future external
/// planners) can validate a hand-built or mutated plan against a tree.
class PlanVerifier {
 public:
  PlanVerifier(const Catalog& catalog,
               NraOptions options = NraOptions::Optimized())
      : catalog_(catalog), options_(options) {}

  VerifyReport Verify(const QueryBlock& root) const;

  /// The linking-selection steps NraExecutor would run for `root` under the
  /// verifier's options, in evaluation order.
  std::vector<PlanStep> Outline(const QueryBlock& root) const;

  /// Per-step invariants (link-mode, nest-sets, key-survival) over an
  /// explicit outline. `steps` may have been produced from a different (or
  /// since-mutated) tree than the blocks its pointers reference; the
  /// required selection mode is recomputed from the current link operators.
  void CheckOutline(const std::vector<PlanStep>& steps,
                    VerifyReport* report) const;

 private:
  void CheckTree(const QueryBlock& block,
                 std::vector<const QueryBlock*>* ancestors,
                 VerifyReport* report) const;
  void CheckRootOutput(const QueryBlock& root, VerifyReport* report) const;
  void CheckLink(const QueryBlock& block,
                 const std::vector<const QueryBlock*>& ancestors,
                 VerifyReport* report) const;
  /// Property-driven rules: null-linking (member comparison provably always
  /// UNKNOWN) and scalar-card (scalar subquery not provably <= 1 row).
  void CheckLinkProperties(const QueryBlock& block,
                           const std::vector<const QueryBlock*>& ancestors,
                           VerifyReport* report) const;
  /// dead-pseudo over the derived outline: pad attributes that are declared
  /// NOT NULL and unread upward are flagged removable.
  void CheckDeadPseudo(const std::vector<PlanStep>& steps,
                       VerifyReport* report) const;
  void CheckRewritePreconditions(const QueryBlock& block,
                                 const std::vector<const QueryBlock*>& ancestors,
                                 VerifyReport* report) const;
  void OutlineNode(const QueryBlock& node,
                   std::vector<std::string> retained,
                   std::vector<const QueryBlock*>* path,
                   std::vector<PlanStep>* steps) const;

  const Catalog& catalog_;
  NraOptions options_;
};

/// Convenience wrapper: runs the verifier and converts the report to a
/// Status (used by NraExecutor::Execute).
Status VerifyPlan(const QueryBlock& root, const Catalog& catalog,
                  const NraOptions& options);

}  // namespace nestra

#endif  // NESTRA_VERIFY_VERIFIER_H_
