#ifndef NESTRA_NRA_EXPLAIN_H_
#define NESTRA_NRA_EXPLAIN_H_

#include <string>

#include "nra/options.h"
#include "plan/query_block.h"
#include "storage/catalog.h"

namespace nestra {

/// \brief Renders the evaluation strategy the nested relational executor
/// will use for a bound query under `options`, without executing it:
/// the query-block tree, the paper's tree expression, the chosen pipeline
/// (single-sort fused / bottom-up linear / recursive) and, per linking
/// predicate, the selection mode (strict vs pseudo) and any applied rewrite
/// (virtual Cartesian product, nest push-down, positive semijoin).
///
/// Also reports the plan the modelled native optimizer ("System A") would
/// pick, with its reason — handy for understanding the benchmark series.
std::string ExplainQuery(const QueryBlock& root, const Catalog& catalog,
                         const NraOptions& options = NraOptions::Optimized());

/// Parse + bind + explain.
Result<std::string> ExplainSql(const std::string& sql, const Catalog& catalog,
                               const NraOptions& options =
                                   NraOptions::Optimized());

/// \brief Only the static-analysis sections of EXPLAIN: the per-block
/// inferred properties (nullability / keys / cardinality, per-link
/// two-valued facts) and the plan-verification report with its rule and
/// diagnostic counts. Backs the shell's \verify meta-command.
std::string ExplainVerifyQuery(const QueryBlock& root, const Catalog& catalog,
                               const NraOptions& options =
                                   NraOptions::Optimized());

/// Parse + bind + ExplainVerifyQuery.
Result<std::string> ExplainVerifySql(const std::string& sql,
                                     const Catalog& catalog,
                                     const NraOptions& options =
                                         NraOptions::Optimized());

/// \brief EXPLAIN ANALYZE: renders the static plan, then executes the query
/// with profiling enabled (options.profile is forced on) and appends the
/// per-stage operator profile — rows in/out, Next() calls, wall time, hash
/// build/probe and sort volumes, simulated-I/O attribution, thread-pool
/// usage, and the paper-phase (unnest-join / nest / linking-selection /
/// post-processing) time and row split.
Result<std::string> ExplainAnalyzeQuery(
    const QueryBlock& root, const Catalog& catalog,
    const NraOptions& options = NraOptions::Optimized());

/// Parse + bind + execute + profile. Accepts compound statements
/// (UNION/INTERSECT/EXCEPT), profiling each branch.
Result<std::string> ExplainAnalyzeSql(
    const std::string& sql, const Catalog& catalog,
    const NraOptions& options = NraOptions::Optimized());

}  // namespace nestra

#endif  // NESTRA_NRA_EXPLAIN_H_
