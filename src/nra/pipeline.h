#ifndef NESTRA_NRA_PIPELINE_H_
#define NESTRA_NRA_PIPELINE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "nra/options.h"
#include "nra/profile.h"

namespace nestra {

/// \brief Event-scheduled stage DAG: the push-based execution model of
/// DESIGN.md §11.
///
/// NraExecutor decomposes a query's staged plan into tasks — one per
/// pipeline ending in a breaker (a base-table evaluation, a hash-join
/// build+probe, a nest, the final sort+finish) — wired with explicit
/// dependencies, then calls Run(). Independent tasks execute concurrently
/// on the shared ThreadPool; a task starts the moment its last dependency
/// finishes (event-driven, no phase barriers).
///
/// Determinism contract: each task writes only state its dependents read
/// after the dependency edge (the scheduler's mutex orders the hand-off),
/// and every task is internally deterministic (morsel-index-ordered
/// concatenation, per the engine-wide rule). The DAG therefore changes
/// *when* stages run, never what they produce: results, NraStats, and the
/// profile's stage list are bit-identical to the staged path.
///
/// To keep the profile deterministic under concurrency, every task records
/// stages into a task-local QueryProfile; Run() merges them in task
/// *creation* order, which the executor's builders arrange to equal the
/// staged path's emission order. NraStats merge the same way: the timing
/// phases accumulate (+=), intermediate_rows / output_rows max-merge
/// (matching the staged paths, which track a running maximum or assign the
/// final value of a row-monotone sequence).
class StageDag {
 public:
  /// A task body runs one pipeline. `stats` is never null (task-local,
  /// merged later); `profile` is the task-local profile, or null when the
  /// query is not being profiled — the same contract the staged helpers
  /// already follow.
  using TaskBody = std::function<Status(NraStats* stats, QueryProfile*)>;

  /// Adds a task and returns its id (ids are dense, in creation order).
  /// `deps` must name earlier ids only — the DAG is built topologically
  /// sorted by construction.
  int AddTask(std::string label, std::vector<int> deps, TaskBody body);

  int num_tasks() const { return static_cast<int>(tasks_.size()); }

  /// Executes the DAG and blocks until every task finished or was skipped.
  ///
  /// With num_threads <= 1 tasks run inline in creation order, stopping at
  /// the first error — byte-for-byte the staged schedule. Otherwise the
  /// calling thread participates: it seeds the ready set, runs ready tasks
  /// itself, and while starved helps drain unrelated pool work
  /// (ThreadPool::TryRunOne) so nested parallel loops inside task bodies
  /// can never deadlock the pool. A failed task skips its transitive
  /// dependents; the first error in creation order is returned.
  ///
  /// On success, task-local stats and profiles are merged in creation
  /// order into `stats` / `profile` (either may be null).
  Status Run(int num_threads, NraStats* stats, QueryProfile* profile);

 private:
  struct Task {
    std::string label;
    std::vector<int> deps;
    TaskBody body;
  };

  std::vector<Task> tasks_;
};

}  // namespace nestra

#endif  // NESTRA_NRA_PIPELINE_H_
