#ifndef NESTRA_NRA_REWRITES_H_
#define NESTRA_NRA_REWRITES_H_

#include <string>
#include <vector>

#include "nested/linking_selection.h"
#include "nra/options.h"
#include "plan/query_block.h"
#include "storage/catalog.h"
#include "verify/properties.h"

namespace nestra {

/// \brief THE decision point for the proven-2VL antijoin rewrite: true when
/// the executor runs `child`'s negative link as a plain antijoin instead of
/// nest + pseudo-selection. Every consumer — NraExecutor (staged and
/// pipelined), PlanVerifier::Outline, ExplainQuery — must call this one
/// predicate so the executed plan, the verifier outline, and EXPLAIN can
/// never disagree (tools/lint_engine_invariants.py rejects new direct
/// NegativeLinkRunsTwoValued call sites outside this header; the verifier's
/// CheckOutline keeps one as an independent re-validation). `path` lists the
/// enclosing blocks, root first, ending at `child`'s parent.
inline bool TakesTwoValuedAntijoin(const QueryBlock& child,
                                   const std::vector<const QueryBlock*>& path,
                                   const Catalog& catalog,
                                   const NraOptions& options) {
  return options.two_valued && NegativeLinkRunsTwoValued(child, path, catalog);
}

/// \brief The fused-chain bypass, in the same shared form: a linear chain
/// whose leaf link takes the two-valued antijoin must route through the
/// recursive path (the single-sort fused pipeline would push the same link
/// through 3VL member handling). `chain` is the linear chain root-first;
/// chains shorter than two blocks have no link and never bypass.
inline bool FusedChainBypassesTwoValued(
    const std::vector<const QueryBlock*>& chain, const Catalog& catalog,
    const NraOptions& options) {
  if (chain.size() < 2) return false;
  const std::vector<const QueryBlock*> leaf_path(chain.begin(),
                                                 chain.end() - 1);
  return TakesTwoValuedAntijoin(*chain.back(), leaf_path, catalog, options);
}

/// \brief §4.2.4 nest push-down, in executable form. Instead of
/// `σ_L(υ_{N1,N2}(rel ⟕_C inner))`, the inner relation is grouped once by
/// its correlation key (a hash-based nest pushed below the join) and the
/// linking predicate is evaluated per outer row against the row's single
/// group. Requires every correlated predicate to be an equality — the same
/// precondition as pushing a group-by past a join.
///
/// `child` supplies the linking predicate fields (link_op/link_cmp/
/// linking_attr resolve in `outer`; linked_attr/key_attr in `inner`).
/// In kPseudo mode failing rows are kept with `pad_attrs` nulled; in
/// kStrict mode they are dropped.
///
/// With `num_threads > 1` the per-outer-row evaluation runs over row-range
/// morsels (each with its own accumulator) against the shared read-only
/// group table; per-morsel outputs are concatenated in morsel order, so the
/// result is identical to the serial pass.
Result<Table> HashLinkSelect(Table outer, const Table& inner,
                             const std::vector<std::string>& outer_key_cols,
                             const std::vector<std::string>& inner_key_cols,
                             const QueryBlock& child, SelectionMode mode,
                             const std::vector<std::string>& pad_attrs,
                             int num_threads = 1);

/// \brief §4.2.5 positive-operator rewrite: builds the extra join condition
/// `A θ B` for IN / θ SOME links (nullptr for EXISTS, whose semijoin
/// condition is the correlation alone). The caller combines it with the
/// correlated predicates and runs a LeftSemi join:
/// σ_{AθSOME{B}}(υ_{A,B}(R ⟕_C S)) ≡ R ⋉_{C ∧ AθB} S.
Result<ExprPtr> PositiveLinkJoinCondition(const QueryBlock& child);

/// \brief Proven-2VL negative-operator rewrite: builds the extra antijoin
/// condition that matches inner rows *violating* the negative link —
/// `A = B` for NOT IN, `A ¬θ B` for θ ALL, nullptr for NOT EXISTS (the
/// correlation alone). The caller combines it with the correlated
/// predicates and runs a LeftAnti join:
/// σ_{AθALL{B}}(υ_{A,B}(R ⟕_C S)) ≡ R ▷_{C ∧ A¬θB} S — equivalent only
/// when the member comparison is two-valued (see
/// NegativeLinkRunsTwoValued); an UNKNOWN member makes 3VL NOT IN / ALL
/// reject the tuple while the antijoin would keep it.
Result<ExprPtr> AntiLinkJoinCondition(const QueryBlock& child);

/// Magic-set restriction: semijoins `child_base` with the distinct
/// equality-correlation keys of `outer`, discarding inner tuples that
/// cannot match any outer tuple. Returns the input unchanged when the
/// child's correlation is not purely equality-based.
Result<Table> MagicRestrict(const Table& outer, Table child_base,
                            const QueryBlock& child);

/// True when dropping failing tuples while computing a predicate at the end
/// of `path` (root..current node) cannot erase information an enclosing
/// negative predicate still needs: every link on the path (the links of the
/// non-root blocks) is positive. The root itself is always strict-safe.
bool StrictSafe(const std::vector<const QueryBlock*>& path);

}  // namespace nestra

#endif  // NESTRA_NRA_REWRITES_H_
