#include "nra/rewrites.h"

#include <unordered_map>

#include "common/hash_key.h"
#include "common/thread_pool.h"
#include "exec/distinct.h"
#include "exec/hash_join.h"
#include "exec/project.h"
#include "nested/linking_predicate.h"
#include "nra/planner.h"

namespace nestra {

Result<Table> HashLinkSelect(Table outer, const Table& inner,
                             const std::vector<std::string>& outer_key_cols,
                             const std::vector<std::string>& inner_key_cols,
                             const QueryBlock& child, SelectionMode mode,
                             const std::vector<std::string>& pad_attrs,
                             int num_threads) {
  const Schema& os = outer.schema();
  const Schema& is = inner.schema();

  std::vector<int> okeys, ikeys;
  for (const std::string& c : outer_key_cols) {
    NESTRA_ASSIGN_OR_RETURN(int idx, os.Resolve(c));
    okeys.push_back(idx);
  }
  for (const std::string& c : inner_key_cols) {
    NESTRA_ASSIGN_OR_RETURN(int idx, is.Resolve(c));
    ikeys.push_back(idx);
  }

  const LinkingPredicate pred = child.MakeLinkPredicate(/*group_name=*/"g");
  int linking_idx = -1;
  int linked_idx = -1;
  NESTRA_ASSIGN_OR_RETURN(int member_key_idx, is.Resolve(child.key_attr));
  if (pred.kind == LinkingPredicate::Kind::kQuantified ||
      pred.kind == LinkingPredicate::Kind::kAggregate) {
    if (!pred.linking_is_const) {
      NESTRA_ASSIGN_OR_RETURN(linking_idx, os.Resolve(pred.linking_attr));
    }
    if (!pred.linked_attr.empty()) {
      NESTRA_ASSIGN_OR_RETURN(linked_idx, is.Resolve(pred.linked_attr));
    }
  }

  std::vector<int> pad_idx;
  if (mode == SelectionMode::kPseudo) {
    for (const std::string& a : pad_attrs) {
      NESTRA_ASSIGN_OR_RETURN(int idx, os.Resolve(a));
      pad_idx.push_back(idx);
    }
  }

  // The pushed-down nest: group the inner relation by its correlation key,
  // keeping only (member key, linked value) — the implicit projection of
  // Definition 3.
  struct Member {
    Value key;
    Value linked;
  };
  std::unordered_map<std::vector<Value>, std::vector<Member>, SqlValueKeyHash,
                     SqlValueKeyEq>
      groups;
  // Sized for the worst case (every inner row its own group) up front: one
  // allocation instead of log(n) rehashes of Value-vector keys.
  groups.max_load_factor(0.7F);
  groups.reserve(inner.rows().size());
  for (const Row& r : inner.rows()) {
    std::vector<Value> key;
    key.reserve(ikeys.size());
    bool has_null = false;
    for (int idx : ikeys) {
      if (r[idx].is_null()) has_null = true;
      key.push_back(r[idx]);
    }
    if (has_null) continue;  // can never equal-match an outer key
    groups[std::move(key)].push_back(
        {r[member_key_idx],
         linked_idx >= 0 ? r[linked_idx] : Value::Null()});
  }

  std::vector<Field> fields = outer.schema().fields();
  for (int i : pad_idx) fields[i].nullable = true;
  Table out{Schema(std::move(fields))};
  out.Reserve(outer.rows().size());

  // Per-outer-row evaluation in row-range morsels against the read-only
  // group table. Each morsel owns its accumulator and output slot; slots
  // concatenated in morsel order reproduce the serial output exactly.
  static const std::vector<Member> kEmpty;
  const int64_t n = static_cast<int64_t>(outer.rows().size());
  std::vector<std::vector<Row>> slots(
      static_cast<size_t>(MorselCount(n, num_threads)));
  ParallelForMorsels(n, num_threads, [&](int64_t morsel, int64_t begin,
                                         int64_t end) {
    std::vector<Row>& slot = slots[static_cast<size_t>(morsel)];
    LinkingAccumulator acc(pred);
    std::vector<Value> key;  // reused across rows; find() never keeps it
    key.reserve(okeys.size());
    for (int64_t i = begin; i < end; ++i) {
      Row& r = outer.rows()[static_cast<size_t>(i)];
      const std::vector<Member>* members = &kEmpty;
      bool probe_null = false;
      key.clear();
      for (int idx : okeys) {
        if (r[idx].is_null()) probe_null = true;
        key.push_back(r[idx]);
      }
      if (!probe_null) {
        const auto it = groups.find(key);
        if (it != groups.end()) members = &it->second;
      }
      acc.Reset(linking_idx >= 0 ? r[linking_idx] : pred.linking_const);
      for (const Member& m : *members) {
        acc.Add(m.key, m.linked);
        if (acc.Decided()) break;
      }
      if (IsTrue(acc.Result())) {
        slot.push_back(std::move(r));
      } else if (mode == SelectionMode::kPseudo) {
        for (int i : pad_idx) r[i] = Value::Null();
        slot.push_back(std::move(r));
      }
    }
  });
  for (std::vector<Row>& slot : slots) {
    for (Row& r : slot) out.AppendUnchecked(std::move(r));
  }
  return out;
}

Result<ExprPtr> PositiveLinkJoinCondition(const QueryBlock& child) {
  switch (child.link_op) {
    case LinkOp::kExists:
      return ExprPtr(nullptr);
    case LinkOp::kIn:
      return Cmp(CmpOp::kEq, child.LinkingExpr(), Col(child.linked_attr));
    case LinkOp::kSome:
      return Cmp(child.link_cmp, child.LinkingExpr(),
                 Col(child.linked_attr));
    case LinkOp::kNotExists:
    case LinkOp::kNotIn:
    case LinkOp::kAll:
      return Status::InvalidArgument(
          "positive-link rewrite requested for negative operator " +
          std::string(LinkOpToString(child.link_op)));
  }
  return Status::Internal("unreachable");
}

Result<ExprPtr> AntiLinkJoinCondition(const QueryBlock& child) {
  // The comparison negation (¬θ), not the operand swap of FlipCmpOp.
  const auto negate = [](CmpOp op) {
    switch (op) {
      case CmpOp::kEq:
        return CmpOp::kNe;
      case CmpOp::kNe:
        return CmpOp::kEq;
      case CmpOp::kLt:
        return CmpOp::kGe;
      case CmpOp::kLe:
        return CmpOp::kGt;
      case CmpOp::kGt:
        return CmpOp::kLe;
      case CmpOp::kGe:
        return CmpOp::kLt;
    }
    return CmpOp::kEq;
  };
  switch (child.link_op) {
    case LinkOp::kNotExists:
      return ExprPtr(nullptr);
    case LinkOp::kNotIn:
      return Cmp(CmpOp::kEq, child.LinkingExpr(), Col(child.linked_attr));
    case LinkOp::kAll:
      // A θ ALL {B} fails exactly on a member with A ¬θ B (two-valued
      // comparison assumed; the empty set passes both sides).
      return Cmp(negate(child.link_cmp), child.LinkingExpr(),
                 Col(child.linked_attr));
    case LinkOp::kExists:
    case LinkOp::kIn:
    case LinkOp::kSome:
      return Status::InvalidArgument(
          "anti-link rewrite requested for positive operator " +
          std::string(LinkOpToString(child.link_op)));
  }
  return Status::Internal("unreachable");
}

Result<Table> MagicRestrict(const Table& outer, Table child_base,
                            const QueryBlock& child) {
  std::vector<std::string> okeys, ikeys;
  if (!AllEquiCorrelation(child, outer.schema(), child_base.schema(), &okeys,
                          &ikeys)) {
    return child_base;
  }
  // Magic set: the distinct correlation-key combinations of the outer.
  ExecNodePtr magic = std::make_unique<ProjectNode>(
      std::make_unique<TableSourceNode>(outer), okeys);
  magic = std::make_unique<DistinctNode>(std::move(magic));

  std::vector<EquiPair> equi;
  for (size_t i = 0; i < ikeys.size(); ++i) equi.push_back({ikeys[i], okeys[i]});
  HashJoinNode semi(std::make_unique<TableSourceNode>(std::move(child_base)),
                    std::move(magic), JoinType::kLeftSemi, std::move(equi),
                    nullptr);
  return CollectTable(&semi);
}

bool StrictSafe(const std::vector<const QueryBlock*>& path) {
  for (size_t i = 1; i < path.size(); ++i) {  // skip the root
    if (!path[i]->LinkIsPositive()) return false;
  }
  return true;
}

}  // namespace nestra
