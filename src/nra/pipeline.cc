#include "nra/pipeline.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>

#include "common/memory_tracker.h"
#include "common/thread_pool.h"
#include "telemetry/engine_metrics.h"
#include "telemetry/trace.h"

namespace nestra {

namespace {

/// Everything the run needs, owned by a shared_ptr so pool closures stay
/// valid even though Run() only returns after the last task finished.
struct RunState {
  std::mutex mu;
  std::condition_variable cv;

  // Immutable after construction.
  struct TaskRun {
    std::string label;
    StageDag::TaskBody body;
    std::vector<int> dependents;
  };
  std::vector<TaskRun> tasks;
  bool profile_enabled = false;
  // The query's memory tracker, captured from the thread that called Run():
  // task bodies execute on pool threads whose thread-local tracker slot is
  // empty, so each task re-installs this one for its own duration.
  QueryMemoryTracker* query_memory = nullptr;
  // False for the inline num_threads <= 1 mode, where the creation-order
  // loop runs every task itself: publishing ready tasks to the pool there
  // would run them a second time.
  bool parallel = false;

  // Guarded by mu.
  std::vector<int> pending_deps;
  std::vector<char> dep_failed;
  std::deque<int> ready;
  int unfinished = 0;

  // Each slot is written by exactly one task before its completion is
  // published under mu, and read by Run() only after unfinished hit zero.
  std::vector<Status> status;
  std::vector<char> skipped;
  std::vector<NraStats> stats;
  std::vector<QueryProfile> profiles;
};

/// Runs task `id` (or skips it when a dependency failed), then publishes
/// completion: dependents with no remaining dependencies enter the ready
/// set and get a pool runner each.
void RunTask(const std::shared_ptr<RunState>& state, int id);

/// Pops one ready task and runs it. Pool closures land here; finding the
/// ready set empty is normal (the caller stole the task) and a no-op.
void RunOneReady(const std::shared_ptr<RunState>& state) {
  int id = -1;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->ready.empty()) return;
    id = state->ready.front();
    state->ready.pop_front();
  }
  RunTask(state, id);
}

void RunTask(const std::shared_ptr<RunState>& state, int id) {
  RunState::TaskRun& task = state->tasks[static_cast<size_t>(id)];
  bool parent_failed = false;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    parent_failed = state->dep_failed[static_cast<size_t>(id)] != 0;
  }
  if (parent_failed) {
    state->skipped[static_cast<size_t>(id)] = 1;
  } else {
    telemetry::TraceSpan span("pipeline", task.label);
    ScopedQueryMemory scoped_mem(state->query_memory);
    state->status[static_cast<size_t>(id)] = task.body(
        &state->stats[static_cast<size_t>(id)],
        state->profile_enabled ? &state->profiles[static_cast<size_t>(id)]
                               : nullptr);
  }
  const bool failed = parent_failed ||
                      !state->status[static_cast<size_t>(id)].ok();

  size_t newly_ready = 0;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    for (int dep_id : task.dependents) {
      if (failed) state->dep_failed[static_cast<size_t>(dep_id)] = 1;
      if (--state->pending_deps[static_cast<size_t>(dep_id)] == 0 &&
          state->parallel) {
        ++newly_ready;
        state->ready.push_back(dep_id);
      }
    }
    --state->unfinished;
  }
  state->cv.notify_all();
  if (!state->parallel) return;
  // One runner per newly-ready task keeps the schedule work-conserving even
  // while the calling thread is buried in a drained-inline helper task.
  ThreadPool* pool = ThreadPool::Shared();
  for (size_t i = 0; i < newly_ready; ++i) {
    pool->Submit([state] { RunOneReady(state); });
  }
}

}  // namespace

int StageDag::AddTask(std::string label, std::vector<int> deps,
                      TaskBody body) {
  const int id = static_cast<int>(tasks_.size());
  tasks_.push_back(Task{std::move(label), std::move(deps), std::move(body)});
  return id;
}

Status StageDag::Run(int num_threads, NraStats* stats,
                     QueryProfile* profile) {
  telemetry::Metrics().pipelined_queries_total->Add(1);
  telemetry::Metrics().pipeline_tasks_total->Add(
      static_cast<double>(tasks_.size()));

  auto state = std::make_shared<RunState>();
  const size_t n = tasks_.size();
  state->tasks.resize(n);
  state->pending_deps.assign(n, 0);
  state->dep_failed.assign(n, 0);
  state->status.assign(n, Status::OK());
  state->skipped.assign(n, 0);
  state->stats.resize(n);
  state->profiles.resize(n);
  state->profile_enabled = profile != nullptr;
  state->query_memory = CurrentQueryMemory();
  state->unfinished = static_cast<int>(n);
  for (size_t id = 0; id < n; ++id) {
    Task& t = tasks_[id];
    state->tasks[id].label = std::move(t.label);
    state->tasks[id].body = std::move(t.body);
    state->pending_deps[id] = static_cast<int>(t.deps.size());
    for (int dep : t.deps) {
      state->tasks[static_cast<size_t>(dep)].dependents.push_back(
          static_cast<int>(id));
    }
  }

  if (num_threads <= 1) {
    // Inline in creation order, stopping at the first error: the staged
    // schedule, byte for byte.
    for (size_t id = 0; id < n; ++id) {
      RunTask(state, static_cast<int>(id));
      if (!state->status[id].ok()) return state->status[id];
    }
  } else {
    state->parallel = true;
    for (size_t id = 0; id < n; ++id) {
      if (state->pending_deps[id] == 0) state->ready.push_back(
          static_cast<int>(id));
    }
    // Leave one seed task for this thread; hand the rest to the pool.
    ThreadPool* pool = ThreadPool::Shared();
    pool->EnsureWorkers(num_threads - 1);
    {
      std::lock_guard<std::mutex> lock(state->mu);
      for (size_t i = 1; i < state->ready.size(); ++i) {
        pool->Submit([state] { RunOneReady(state); });
      }
    }
    // The calling thread participates: run ready DAG tasks; when starved,
    // help drain unrelated pool work (nested morsel-loop helpers submitted
    // by running task bodies) instead of parking, so the pool can never
    // wedge with every thread waiting on work nobody is free to run.
    while (true) {
      int id = -1;
      {
        std::unique_lock<std::mutex> lock(state->mu);
        if (state->unfinished == 0) break;
        if (!state->ready.empty()) {
          id = state->ready.front();
          state->ready.pop_front();
        }
      }
      if (id >= 0) {
        RunTask(state, id);
        continue;
      }
      if (!pool->TryRunOne()) {
        std::unique_lock<std::mutex> lock(state->mu);
        state->cv.wait(lock, [&] {
          return state->unfinished == 0 || !state->ready.empty();
        });
      }
    }
  }

  // First failure in creation order, exactly what the staged path (which
  // stops there) would have surfaced.
  for (size_t id = 0; id < n; ++id) {
    if (!state->status[id].ok()) return state->status[id];
  }
  // Merge in creation order, which the builders arrange to equal the staged
  // stage-emission order — so profiles compare equal stage-for-stage.
  for (size_t id = 0; id < n; ++id) {
    if (stats != nullptr) {
      const NraStats& s = state->stats[id];
      stats->join_seconds += s.join_seconds;
      stats->nest_select_seconds += s.nest_select_seconds;
      stats->intermediate_rows =
          std::max(stats->intermediate_rows, s.intermediate_rows);
      stats->output_rows = std::max(stats->output_rows, s.output_rows);
    }
    if (profile != nullptr) profile->Absorb(state->profiles[id], "");
  }
  return Status::OK();
}

}  // namespace nestra
