#ifndef NESTRA_NRA_OPTIONS_H_
#define NESTRA_NRA_OPTIONS_H_

#include <cstdint>
#include <string>

#include "nested/nest.h"

namespace nestra {

/// \brief Tuning knobs for the nested relational executor. Each flag maps to
/// one of the paper's optimization subsections, so ablation benches can
/// toggle them independently.
struct NraOptions {
  /// §4.2.1 + §4.2.2: perform all nesting with one sort and pipeline each
  /// nest with its linking selection (single streaming pass). Off = the
  /// "original" approach: one materialized nest + one materialized linking
  /// selection per level.
  bool fused = true;

  /// Nest implementation for the non-fused path (§5.1 implements nest by
  /// sorting; hashing is the stated alternative).
  NestMethod nest_method = NestMethod::kSort;

  /// §4.2.4: push the nest below the (outer) join when the child is a leaf
  /// and all its correlated predicates are equalities — the inner relation
  /// is grouped by its correlation key and the linking predicate is
  /// evaluated per outer row against its (single) group, avoiding the wide
  /// intermediate join result.
  bool push_down_nest = false;

  /// §4.2.5: rewrite a leaf child with a *positive* linking operator into a
  /// semijoin (R ⋉_{C ∧ AθB} S) when dropping failing tuples is safe.
  bool rewrite_positive = false;

  /// §4.2.3: evaluate linear-correlated queries bottom-up, so only
  /// qualified tuples participate in further outer joins.
  bool bottom_up_linear = false;

  /// Magic-set-style restriction (the decorrelation idea of Seshadri et al.
  /// the paper cites as [17,18]): before outer-joining a child block, semi-
  /// join its base relation with the DISTINCT correlation keys of the
  /// accumulated outer relation, so only inner tuples that can match
  /// participate. Applies to equality correlations; a no-op otherwise.
  bool magic_restriction = false;

  /// Morsel-driven parallelism degree for the execution engine: hash-join
  /// build/probe, the sorts behind SortNode / sort-based nest / the fused
  /// evaluator's single sort, base-table scan+filter, and the pushed-down
  /// linking selection. 0 = auto (std::thread::hardware_concurrency);
  /// 1 = the serial paths, which stay intact as the correctness oracle.
  /// Results are byte-identical for every setting.
  int num_threads = 0;

  /// Vectorized batch execution: operators exchange columnar RowBatches
  /// (RowBatch::kDefaultCapacity rows) instead of one Row per Next() call
  /// on the paths with native batch implementations — base-table
  /// scan+filter, hash-join build/probe, sort drains, and the fused
  /// nest+linking-selection pass. Row mode (`false`) is the reference
  /// engine; results, EXPLAIN ANALYZE stage lists, and IoSim totals are
  /// identical for either setting.
  bool vectorized = true;

  /// Push-based pipeline scheduling (DESIGN.md §11): the planner's stage
  /// DAG — base-table evaluations, hash-join builds, nests, the final sort —
  /// is decomposed into tasks with explicit dependencies and scheduled as
  /// events on the shared ThreadPool, so independent pipelines of one query
  /// (e.g. the base tables of different blocks) run concurrently. Results,
  /// EXPLAIN ANALYZE stage lists, and NraStats are bit-identical to the
  /// staged path (morsel-index-ordered concatenation holds inside every
  /// task; the DAG only reorders *when* whole stages run, never what they
  /// produce). Off = the original staged execution, retained for A/B.
  /// At num_threads == 1 the DAG degrades to running its tasks inline in
  /// creation order, which is exactly the staged schedule.
  bool pipelined = true;

  /// Proven-2VL fast path: when the static property analyzer
  /// (src/verify/properties.h) proves a predicate or negative linking
  /// operator can never evaluate to UNKNOWN, skip the 3VL machinery —
  /// scan filters select vectorized kernels without per-value NULL checks,
  /// and an eligible negative leaf link runs as a plain hash/NL antijoin
  /// instead of nest + pseudo-selection. Bit-identical results either way
  /// (enforced by the property suites); off = always use the 3VL paths.
  bool two_valued = true;

  /// Cost-driven planning from load-time table statistics (DESIGN.md §13):
  /// hash-join build-side swap, the perfect (dense-array) hash join, zone-map
  /// morsel pruning on base scans, and cardinality-gated §4.2.5 / §4.2.4
  /// rewrites (the explicit flags above stay as unconditional overrides).
  /// Every decision routes through src/nra/cost.h so EXPLAIN, the verifier
  /// outline, and the executor agree; results are bit-identical either way —
  /// the gates only pick between semantics-preserving plans. Off = plan
  /// purely from the flags, the pre-stats behaviour.
  bool cost_based = true;

  /// Collect a per-operator QueryProfile (pass one to Execute*/ExplainAnalyze
  /// to receive it). Off by default: the engine then keeps only the cheap
  /// per-operator row/call counters and never reads the clock on the
  /// per-row path — near-zero overhead.
  bool profile = false;

  /// Run the static plan verifier (src/verify/) over the bound block tree
  /// before execution; any error-severity diagnostic fails the query with
  /// InvalidArgument instead of executing a plan that would silently break
  /// the paper's invariants.
  bool verify_plans = true;

  /// Slow-query log threshold in milliseconds: a query whose wall time
  /// (parse + execute) exceeds this emits one structured-JSON line to the
  /// telemetry slow-query sink (NESTRA_SLOW_QUERY_LOG file, else stderr —
  /// see src/telemetry/slow_query.h). 0 (default) disables the log and its
  /// clock reads entirely.
  double slow_query_ms = 0;

  /// Soft per-query memory limit in bytes, checked against the query's
  /// accounted logical bytes at materialization fold points (hash-join
  /// builds, sort buffers, nest/linking stage results — see
  /// src/common/memory_tracker.h). A query that exceeds it fails loudly
  /// with a ResourceExhausted status and no partial results; its admission
  /// ticket is released like any other failure. 0 (default) disables the
  /// check entirely — accounting still runs (it is a few integer adds),
  /// but no query can fail on memory.
  int64_t max_query_mem = 0;

  /// When non-empty, installs the Chrome trace_event sink at this path and
  /// records parse/verify/plan/execute-stage spans (plus thread-pool task
  /// spans) for every query this executor runs; the JSON is written at
  /// process exit (or telemetry::FlushTrace). Equivalent to setting
  /// NESTRA_TRACE_JSON in the environment. Empty (default) records nothing.
  std::string trace_path;

  /// Session label ("s3") stamped into telemetry this executor emits —
  /// slow-query log lines and trace spans — so concurrent sessions' output
  /// is attributable. Set by the server Session layer; empty (default) for
  /// direct library callers, which keeps their telemetry byte-identical to
  /// the pre-session format.
  std::string session_label;

  /// The paper's two measured configurations.
  static NraOptions Original() {
    NraOptions o;
    o.fused = false;
    return o;
  }
  static NraOptions Optimized() { return NraOptions(); }

  std::string ToString() const;
};

/// \brief Timing / cardinality breakdown mirroring the paper's reporting:
/// the join ("unnesting") phase versus the nest + linking-selection phase,
/// plus the intermediate result size the paper uses as its main parameter.
struct NraStats {
  double join_seconds = 0;
  double nest_select_seconds = 0;
  int64_t intermediate_rows = 0;
  int64_t output_rows = 0;
  /// Deterministic peak accounted bytes of the query: the largest
  /// single-stage logical footprint (max across set-operation branches).
  /// Always filled — memory accounting does not require profiling.
  int64_t peak_mem_bytes = 0;

  double total_seconds() const { return join_seconds + nest_select_seconds; }
  std::string ToString() const;
};

}  // namespace nestra

#endif  // NESTRA_NRA_OPTIONS_H_
