#include "nra/explain.h"

#include <sstream>

#include "baseline/native_optimizer.h"
#include "exec/join_hints.h"
#include "nra/cost.h"
#include "nra/executor.h"
#include "nra/planner.h"
#include "nra/profile.h"
#include "nra/rewrites.h"
#include "plan/binder.h"
#include "plan/tree_expr.h"
#include "verify/properties.h"
#include "verify/verifier.h"

namespace nestra {

namespace {

// Column-name-level check of the §4.2.4 precondition (the executor's
// AllEquiCorrelation needs materialized schemas; for EXPLAIN a structural
// test on the predicate shapes suffices and matches the executor because
// binding already validated the column sides).
bool LooksEquiCorrelated(const QueryBlock& child) {
  if (child.correlated_preds.empty()) return false;
  for (const ExprPtr& p : child.correlated_preds) {
    const auto* cmp = dynamic_cast<const Comparison*>(p.get());
    if (cmp == nullptr || cmp->op() != CmpOp::kEq) return false;
    if (dynamic_cast<const ColumnRef*>(&cmp->lhs()) == nullptr) return false;
    if (dynamic_cast<const ColumnRef*>(&cmp->rhs()) == nullptr) return false;
  }
  return true;
}

// Human-readable suffix for a cost-chosen hash-join strategy; empty for the
// default plan so pre-stats EXPLAIN output is unchanged. Computed through
// the same JoinStrategyFor the executor passes to JoinWithChild.
std::string JoinStrategySuffix(const JoinBuildHints& hints) {
  std::string s;
  if (hints.build_left) s += ", build=left (est swap)";
  if (hints.perfect) s += ", perfect dense-array hash";
  return s;
}

void ExplainNode(const QueryBlock& node, const Catalog& catalog,
                 const NraOptions& options,
                 std::vector<const QueryBlock*>* path, int indent,
                 std::ostringstream* oss) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  for (const auto& child_ptr : node.children) {
    const QueryBlock& child = *child_ptr;
    const bool strict_safe = StrictSafe(*path);
    const char* mode = strict_safe ? "strict" : "pseudo";

    // The shared predicates (nra/cost.h, nra/rewrites.h) keep every branch
    // here in lockstep with NraExecutor and PlanVerifier::OutlineNode.
    const std::string strategy =
        JoinStrategySuffix(JoinStrategyFor(child, *path, catalog, options));
    *oss << pad << "- link " << LinkingLabel(child) << ": ";
    if (TakesSemijoinRewrite(child, *path, strict_safe, catalog, options)) {
      *oss << "semijoin rewrite (4.2.5)" << strategy << "\n";
      continue;
    }
    if (TakesTwoValuedAntijoin(child, *path, catalog, options)) {
      *oss << "two-valued antijoin (proven non-NULL member comparison)"
           << strategy << "\n";
      continue;
    }
    if (child.IsLeaf() && child.correlated_preds.empty()) {
      *oss << "virtual Cartesian product, " << mode << " selection\n";
      continue;
    }
    if (TakesNestPushDown(child, *path, catalog, options) &&
        LooksEquiCorrelated(child)) {
      *oss << "nest pushed below join (4.2.4), " << mode << " selection\n";
      continue;
    }
    *oss << "left outer hash join on correlation" << strategy << ", "
         << (options.fused ? "fused nest+select" : "nest then select")
         << ", " << mode << " mode\n";
    path->push_back(&child);
    ExplainNode(child, catalog, options, path, indent + 1, oss);
    path->pop_back();
  }
}

// Preorder render of the inferred static facts: per block the nullability /
// key / cardinality line, per link whether the member comparison is proven
// two-valued, possibly three-valued, or constant UNKNOWN. `path` holds the
// enclosing blocks (root first) and ends at `node` after the push below.
void ExplainProperties(const QueryBlock& node, const PropertyAnalyzer& analyzer,
                       std::vector<const QueryBlock*>* path,
                       std::ostringstream* oss) {
  *oss << "block " << node.id << " properties: "
       << analyzer.Analyze(node).ToString() << "\n";
  path->push_back(&node);
  for (const auto& child_ptr : node.children) {
    const QueryBlock& child = *child_ptr;
    const LinkFacts facts = analyzer.AnalyzeLink(child, *path);
    *oss << "link " << LinkingLabel(child) << ": ";
    if (facts.always_unknown) {
      *oss << "always UNKNOWN";
    } else if (facts.two_valued) {
      *oss << "two-valued";
    } else {
      *oss << "three-valued";
    }
    if (!facts.reason.empty()) *oss << " (" << facts.reason << ")";
    *oss << "\n";
    ExplainProperties(child, analyzer, path, oss);
  }
  path->pop_back();
}

}  // namespace

std::string ExplainQuery(const QueryBlock& root, const Catalog& catalog,
                         const NraOptions& options) {
  std::ostringstream oss;
  oss << "=== Query blocks ===\n" << root.ToString();
  oss << "=== Tree expression ===\n"
      << TreeExpression::Build(root).ToString();

  oss << "=== Nested relational plan (" << options.ToString() << ") ===\n";
  if (options.num_threads == 1) {
    oss << "execution: serial\n";
  } else if (options.num_threads <= 0) {
    // Machine-independent wording: the resolved count depends on the host.
    oss << "execution: morsel-parallel (num_threads=auto)\n";
  } else {
    oss << "execution: morsel-parallel (num_threads=" << options.num_threads
        << ")\n";
  }
  if (root.children.empty()) {
    oss << "flat query: scan + filter + project\n";
  } else if (options.bottom_up_linear && root.IsLinearCorrelated()) {
    oss << "bottom-up linear-correlated pipeline (4.2.3): each level "
           "reduces before joining upward; strict selections throughout\n";
  } else {
    bool fused_whole_chain = false;
    if (options.fused && root.IsLinear() && !options.push_down_nest &&
        !options.rewrite_positive) {
      const Result<std::vector<const QueryBlock*>> chain = LinearChain(root);
      if (chain.ok()) {
        fused_whole_chain = true;
        for (size_t i = 1; i < chain->size(); ++i) {
          fused_whole_chain =
              fused_whole_chain && !(*chain)[i]->correlated_preds.empty();
        }
        // The executor's fused-pipeline bypass, via the shared predicate: a
        // chain whose leaf link runs as a proven two-valued antijoin takes
        // the recursive route instead of the single-sort pipeline.
        if (fused_whole_chain &&
            FusedChainBypassesTwoValued(*chain, catalog, options)) {
          fused_whole_chain = false;
        }
        // Same for a cost-gated §4.2.5/§4.2.4 rewrite on the chain's leaf.
        if (fused_whole_chain &&
            FusedChainBypassesForCost(*chain, catalog, options)) {
          fused_whole_chain = false;
        }
      }
    }
    if (fused_whole_chain) {
      oss << "single-sort fused pipeline (4.2.1 + 4.2.2): one wide outer "
             "join, one sort, one streaming pass over all "
          << (root.NumBlocks() - 1) << " linking predicate(s)\n";
      std::vector<const QueryBlock*> path{&root};
      const QueryBlock* node = &root;
      while (!node->children.empty()) {
        const QueryBlock& child = *node->children[0];
        // Same build-time hints ExecuteFusedLinear passes to JoinWithChild
        // at this level (path = the chain prefix above the child).
        oss << "  - level: " << LinkingLabel(child) << " ("
            << (StrictSafe(path) ? "strict" : "pseudo") << ")"
            << JoinStrategySuffix(
                   JoinStrategyFor(child, path, catalog, options))
            << "\n";
        path.push_back(&child);
        node = &child;
      }
    } else {
      oss << "recursive Algorithm 1:\n";
      std::vector<const QueryBlock*> path{&root};
      ExplainNode(root, catalog, options, &path, 1, &oss);
    }
  }
  if (!root.order_by.empty() || root.limit >= 0 || root.distinct ||
      root.IsGrouped()) {
    oss << "finish:";
    if (root.IsGrouped()) {
      oss << " group-by(" << root.aggregates.size() << " aggregate(s))";
      if (root.having != nullptr) oss << " having";
    }
    if (!root.order_by.empty()) oss << " order-by";
    if (root.distinct) oss << " distinct";
    if (root.limit >= 0) oss << " limit " << root.limit;
    oss << "\n";
  }

  const NativePlanChoice native = ChooseNativePlan(root, catalog);
  oss << "=== Native (System A) plan ===\n" << native.explanation << "\n";

  oss << "=== Inferred properties ===\n";
  {
    const PropertyAnalyzer analyzer(catalog);
    std::vector<const QueryBlock*> path;
    ExplainProperties(root, analyzer, &path, &oss);
  }

  const PlanVerifier verifier(catalog, options);
  const VerifyReport report = verifier.Verify(root);
  oss << "=== Plan verification ===\n" << report.Summary() << "\n";
  if (report.clean()) {
    oss << "clean (0 diagnostics)\n";
  } else {
    oss << report.ToString();
  }
  return oss.str();
}

std::string ExplainVerifyQuery(const QueryBlock& root, const Catalog& catalog,
                               const NraOptions& options) {
  std::ostringstream oss;
  oss << "=== Inferred properties ===\n";
  {
    const PropertyAnalyzer analyzer(catalog);
    std::vector<const QueryBlock*> path;
    ExplainProperties(root, analyzer, &path, &oss);
  }
  const PlanVerifier verifier(catalog, options);
  const VerifyReport report = verifier.Verify(root);
  oss << "=== Plan verification ===\n" << report.Summary() << "\n";
  if (report.clean()) {
    oss << "clean (0 diagnostics)\n";
  } else {
    oss << report.ToString();
  }
  return oss.str();
}

Result<std::string> ExplainVerifySql(const std::string& sql,
                                     const Catalog& catalog,
                                     const NraOptions& options) {
  NESTRA_ASSIGN_OR_RETURN(QueryBlockPtr root, ParseAndBind(sql, catalog));
  return ExplainVerifyQuery(*root, catalog, options);
}

Result<std::string> ExplainSql(const std::string& sql, const Catalog& catalog,
                               const NraOptions& options) {
  NESTRA_ASSIGN_OR_RETURN(QueryBlockPtr root, ParseAndBind(sql, catalog));
  return ExplainQuery(*root, catalog, options);
}

Result<std::string> ExplainAnalyzeQuery(const QueryBlock& root,
                                        const Catalog& catalog,
                                        const NraOptions& options) {
  NraOptions opts = options;
  opts.profile = true;
  NraExecutor executor(catalog, opts);
  QueryProfile profile;
  NESTRA_RETURN_NOT_OK(executor.Execute(root, nullptr, &profile).status());
  return ExplainQuery(root, catalog, opts) + "=== Execution profile ===\n" +
         profile.ToString();
}

Result<std::string> ExplainAnalyzeSql(const std::string& sql,
                                      const Catalog& catalog,
                                      const NraOptions& options) {
  NraOptions opts = options;
  opts.profile = true;
  NraExecutor executor(catalog, opts);
  QueryProfile profile;
  NESTRA_RETURN_NOT_OK(
      executor.ExecuteStatementSql(sql, nullptr, &profile).status());
  // Compound statements have no single block tree to render; fall back to
  // the first branch's static plan when the statement is a plain SELECT.
  std::string head;
  const Result<std::string> static_plan = ExplainSql(sql, catalog, opts);
  if (static_plan.ok()) head = *static_plan;
  return head + "=== Execution profile ===\n" + profile.ToString();
}

}  // namespace nestra
