#include "nra/profile.h"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "common/memory_tracker.h"
#include "telemetry/engine_metrics.h"
#include "telemetry/trace.h"

namespace nestra {

namespace {

using Clock = std::chrono::steady_clock;

constexpr QueryPhase kAllPhases[] = {
    QueryPhase::kUnnestJoin, QueryPhase::kNest, QueryPhase::kLinkingSelection,
    QueryPhase::kPostProcessing, QueryPhase::kUnattributed};

void SumPhase(const ProfiledOperator& op, QueryPhase phase, double* seconds) {
  if (op.phase == phase) *seconds += op.exclusive_seconds();
  for (const ProfiledOperator& child : op.children) {
    SumPhase(child, phase, seconds);
  }
}

// Fixed-precision seconds (µs resolution) keeps the text output compact.
std::string FormatSeconds(double seconds) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(6);
  oss << seconds << "s";
  return oss.str();
}

void RenderOperator(const ProfiledOperator& op, int depth,
                    std::ostringstream* oss) {
  *oss << std::string(static_cast<size_t>(depth) * 2, ' ') << op.name;
  if (!op.detail.empty()) *oss << "(" << op.detail << ")";
  *oss << "  phase=" << QueryPhaseLabel(op.phase)
       << " rows_in=" << op.rows_in << " rows_out=" << op.stats.rows_out
       << " next_calls=" << op.stats.next_calls;
  if (op.stats.batches_out > 0) {
    *oss << " batches=" << op.stats.batches_out;
    // Which of those came through the row-at-a-time adapter (operator has
    // no native NextBatchImpl) — the vectorized engine's seams.
    if (op.stats.adapter_batches > 0) {
      *oss << " (adapter=" << op.stats.adapter_batches << ")";
    }
  }
  if (op.stats.total_seconds() > 0) {
    *oss << " time=" << FormatSeconds(op.stats.total_seconds())
         << " self=" << FormatSeconds(op.exclusive_seconds());
  }
  if (op.stats.build_rows > 0) *oss << " build_rows=" << op.stats.build_rows;
  if (op.stats.probe_rows > 0) *oss << " probes=" << op.stats.probe_rows;
  if (op.stats.sort_rows > 0) *oss << " sort_rows=" << op.stats.sort_rows;
  if (op.stats.sort_bytes > 0) *oss << " sort_bytes=" << op.stats.sort_bytes;
  if (op.stats.peak_mem_bytes > 0) {
    *oss << " mem=" << op.stats.mem_bytes
         << " peak=" << op.stats.peak_mem_bytes;
  }
  if (op.stats.io_hits + op.stats.io_seq_misses + op.stats.io_random_misses >
      0) {
    *oss << " io=" << op.stats.io_hits << "h/" << op.stats.io_seq_misses
         << "sm/" << op.stats.io_random_misses << "rm";
  }
  *oss << "\n";
  for (const ProfiledOperator& child : op.children) {
    RenderOperator(child, depth + 1, oss);
  }
}

void JsonEscape(const std::string& in, std::ostringstream* oss) {
  for (const char c : in) {
    switch (c) {
      case '"':
        *oss << "\\\"";
        break;
      case '\\':
        *oss << "\\\\";
        break;
      case '\n':
        *oss << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *oss << buf;
        } else {
          *oss << c;
        }
    }
  }
}

void OperatorToJson(const ProfiledOperator& op, std::ostringstream* oss) {
  *oss << "{\"name\":\"";
  JsonEscape(op.name, oss);
  *oss << "\"";
  if (!op.detail.empty()) {
    *oss << ",\"detail\":\"";
    JsonEscape(op.detail, oss);
    *oss << "\"";
  }
  *oss << ",\"phase\":\"" << QueryPhaseLabel(op.phase) << "\""
       << ",\"rows_in\":" << op.rows_in
       << ",\"rows_out\":" << op.stats.rows_out
       << ",\"next_calls\":" << op.stats.next_calls
       << ",\"seconds\":" << op.stats.total_seconds()
       << ",\"self_seconds\":" << op.exclusive_seconds();
  if (op.stats.batches_out > 0) {
    *oss << ",\"batches_out\":" << op.stats.batches_out;
    if (op.stats.adapter_batches > 0) {
      *oss << ",\"adapter_batches\":" << op.stats.adapter_batches;
    }
  }
  if (op.stats.build_rows > 0) {
    *oss << ",\"build_rows\":" << op.stats.build_rows;
  }
  if (op.stats.probe_rows > 0) *oss << ",\"probes\":" << op.stats.probe_rows;
  if (op.stats.sort_rows > 0) {
    *oss << ",\"sort_rows\":" << op.stats.sort_rows
         << ",\"sort_bytes\":" << op.stats.sort_bytes;
  }
  if (op.stats.peak_mem_bytes > 0) {
    *oss << ",\"mem_bytes\":" << op.stats.mem_bytes
         << ",\"peak_bytes\":" << op.stats.peak_mem_bytes;
  }
  if (op.stats.io_hits + op.stats.io_seq_misses + op.stats.io_random_misses >
      0) {
    *oss << ",\"io_hits\":" << op.stats.io_hits
         << ",\"io_seq_misses\":" << op.stats.io_seq_misses
         << ",\"io_random_misses\":" << op.stats.io_random_misses;
  }
  if (!op.children.empty()) {
    *oss << ",\"children\":[";
    for (size_t i = 0; i < op.children.size(); ++i) {
      if (i > 0) *oss << ",";
      OperatorToJson(op.children[i], oss);
    }
    *oss << "]";
  }
  *oss << "}";
}

}  // namespace

ProfiledOperator ProfiledOperator::Snapshot(const ExecNode& node) {
  ProfiledOperator op;
  op.name = node.name();
  op.detail = node.detail();
  op.phase = node.phase();
  op.stats = node.stats();
  for (const ExecNode* child : node.children()) {
    op.children.push_back(Snapshot(*child));
    op.rows_in += op.children.back().stats.rows_out;
  }
  return op;
}

double ProfiledOperator::exclusive_seconds() const {
  double self = stats.total_seconds();
  for (const ProfiledOperator& child : children) {
    self -= child.stats.total_seconds();
  }
  return self < 0 ? 0 : self;
}

void QueryProfile::Clear() {
  stages_.clear();
  estimates.clear();
  output_rows = 0;
  total_seconds = 0;
  io_hits = 0;
  io_seq_misses = 0;
  io_random_misses = 0;
  sim_io_millis = 0;
  peak_mem_bytes = 0;
  pool = PoolStatsSnapshot{};
}

double QueryProfile::PhaseSeconds(QueryPhase phase) const {
  double seconds = 0;
  for (const ProfiledStage& stage : stages_) {
    if (stage.has_tree) {
      SumPhase(stage.tree, phase, &seconds);
    } else if (stage.phase == phase) {
      seconds += stage.seconds;
    }
  }
  return seconds;
}

int64_t QueryProfile::PhaseRows(QueryPhase phase) const {
  int64_t rows = 0;
  for (const ProfiledStage& stage : stages_) {
    if (stage.phase == phase) rows += stage.rows_out;
  }
  return rows;
}

void QueryProfile::Absorb(const QueryProfile& other,
                          const std::string& label_prefix) {
  for (ProfiledStage stage : other.stages_) {
    stage.label = label_prefix + stage.label;
    stages_.push_back(std::move(stage));
  }
  for (const auto& [label, est] : other.estimates) {
    estimates.emplace(label_prefix + label, est);
  }
  total_seconds += other.total_seconds;
  io_hits += other.io_hits;
  io_seq_misses += other.io_seq_misses;
  io_random_misses += other.io_random_misses;
  sim_io_millis += other.sim_io_millis;
  // Branches run one after another, so the query's peak is the largest
  // branch peak, not the sum.
  if (other.peak_mem_bytes > peak_mem_bytes) {
    peak_mem_bytes = other.peak_mem_bytes;
  }
  pool.parallel_loops += other.pool.parallel_loops;
  pool.tasks_submitted += other.pool.tasks_submitted;
  pool.wait_seconds += other.pool.wait_seconds;
}

std::string QueryProfile::ToString() const {
  std::ostringstream oss;
  oss << "Query profile: " << output_rows << " rows in "
      << FormatSeconds(total_seconds);
  if (peak_mem_bytes > 0) oss << "  peak_mem=" << peak_mem_bytes << "B";
  if (io_hits + io_seq_misses + io_random_misses > 0) {
    oss << "  (io " << io_hits << " hits, " << io_seq_misses
        << " seq misses, " << io_random_misses << " random misses, sim "
        << sim_io_millis << "ms)";
  }
  oss << "\n";
  oss << "phases:";
  for (const QueryPhase phase : kAllPhases) {
    const double seconds = PhaseSeconds(phase);
    const int64_t rows = PhaseRows(phase);
    if (seconds == 0 && rows == 0 && phase == QueryPhase::kUnattributed) {
      continue;
    }
    oss << "  " << QueryPhaseLabel(phase) << "=" << FormatSeconds(seconds)
        << "/" << rows << " rows";
  }
  oss << "\n";
  if (pool.parallel_loops > 0) {
    oss << "thread pool: " << pool.parallel_loops << " parallel loops, "
        << pool.tasks_submitted << " tasks, wait "
        << FormatSeconds(pool.wait_seconds) << "\n";
  }
  for (const ProfiledStage& stage : stages_) {
    oss << "stage " << stage.label << "  phase="
        << QueryPhaseLabel(stage.phase) << " rows_out=" << stage.rows_out;
    const auto est = estimates.find(stage.label);
    if (est != estimates.end()) {
      // Point estimate when the planner had one, otherwise an upper bound
      // (`est<=`), so est vs. actual reads off one line per stage.
      if (est->second.rows >= 0) {
        oss << " est=" << est->second.rows;
      } else if (est->second.bound >= 0) {
        oss << " est<=" << est->second.bound;
      }
    }
    oss << " time=" << FormatSeconds(stage.seconds);
    if (stage.peak_mem_bytes > 0) {
      oss << " mem=" << stage.mem_bytes << " peak=" << stage.peak_mem_bytes;
    }
    if (stage.pool.parallel_loops > 0) {
      oss << " pool_loops=" << stage.pool.parallel_loops
          << " pool_tasks=" << stage.pool.tasks_submitted;
    }
    oss << "\n";
    if (stage.has_tree) RenderOperator(stage.tree, 1, &oss);
  }
  return oss.str();
}

std::string QueryProfile::ToJson() const {
  std::ostringstream oss;
  oss << "{\"schema\":\"nestra-query-profile-v1\""
      << ",\"output_rows\":" << output_rows
      << ",\"total_seconds\":" << total_seconds
      << ",\"peak_mem_bytes\":" << peak_mem_bytes << ",\"phases\":{";
  bool first = true;
  for (const QueryPhase phase : kAllPhases) {
    if (!first) oss << ",";
    first = false;
    oss << "\"" << QueryPhaseLabel(phase)
        << "\":{\"seconds\":" << PhaseSeconds(phase)
        << ",\"rows\":" << PhaseRows(phase) << "}";
  }
  oss << "},\"io\":{\"hits\":" << io_hits
      << ",\"seq_misses\":" << io_seq_misses
      << ",\"random_misses\":" << io_random_misses
      << ",\"sim_millis\":" << sim_io_millis << "}"
      << ",\"pool\":{\"parallel_loops\":" << pool.parallel_loops
      << ",\"tasks\":" << pool.tasks_submitted
      << ",\"wait_seconds\":" << pool.wait_seconds << "}"
      << ",\"stages\":[";
  for (size_t i = 0; i < stages_.size(); ++i) {
    const ProfiledStage& stage = stages_[i];
    if (i > 0) oss << ",";
    oss << "{\"label\":\"";
    JsonEscape(stage.label, &oss);
    oss << "\",\"phase\":\"" << QueryPhaseLabel(stage.phase) << "\""
        << ",\"seconds\":" << stage.seconds
        << ",\"rows_out\":" << stage.rows_out
        << ",\"mem_bytes\":" << stage.mem_bytes
        << ",\"peak_bytes\":" << stage.peak_mem_bytes;
    const auto est = estimates.find(stage.label);
    if (est != estimates.end()) {
      if (est->second.rows >= 0) {
        oss << ",\"est_rows\":" << est->second.rows;
      } else if (est->second.bound >= 0) {
        oss << ",\"est_rows_bound\":" << est->second.bound;
      }
    }
    if (stage.has_tree) {
      oss << ",\"tree\":";
      OperatorToJson(stage.tree, &oss);
    }
    oss << "}";
  }
  oss << "]}";
  return oss.str();
}

StageTimer::StageTimer(QueryProfile* profile, QueryPhase phase,
                       std::string label)
    : profile_(profile),
      phase_(phase),
      label_(std::move(label)),
      metrics_(telemetry::MetricsEnabled()),
      trace_(telemetry::TraceEnabled()) {
  if (!recording()) return;
  if (profile_ != nullptr) pool_before_ = GlobalPoolStats();
  start_ = Clock::now();
}

void StageTimer::FinishImpl(int64_t rows_out, ProfiledOperator* tree) {
  if (!recording()) return;
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start_).count();
  if (metrics_) {
    const telemetry::EngineMetrics& m = telemetry::Metrics();
    const int p = static_cast<int>(phase_);
    m.phase_rows_total[p]->Add(static_cast<double>(rows_out));
    m.phase_stages_total[p]->Add(1);
    m.phase_seconds_total[p]->Add(seconds);
    if (phase_ == QueryPhase::kNest) {
      m.nest_groups_peak->UpdateMax(static_cast<double>(rows_out));
    }
  }
  if (trace_) {
    telemetry::RecordCompleteEvent("execute", label_,
                                   telemetry::TraceTimeUs(start_),
                                   seconds * 1e6, rows_out,
                                   QueryPhaseLabel(phase_));
  }
  if (profile_ == nullptr) return;
  ProfiledStage stage;
  stage.label = std::move(label_);
  stage.phase = phase_;
  stage.seconds = seconds;
  stage.rows_out = rows_out;
  stage.mem_bytes = mem_bytes_;
  stage.peak_mem_bytes = peak_mem_bytes_;
  stage.pool = GlobalPoolStats() - pool_before_;
  if (tree != nullptr) {
    stage.has_tree = true;
    stage.tree = std::move(*tree);
  }
  profile_->AddStage(std::move(stage));
}

void StageTimer::Finish(int64_t rows_out) { FinishImpl(rows_out, nullptr); }

void StageTimer::Finish(int64_t rows_out, ProfiledOperator tree) {
  FinishImpl(rows_out, &tree);
}

namespace {

void AccumulateTreeStats(const ExecNode& node, OperatorStats* total) {
  const OperatorStats& s = node.stats();
  total->batches_out += s.batches_out;
  total->adapter_batches += s.adapter_batches;
  total->build_rows += s.build_rows;
  total->probe_rows += s.probe_rows;
  total->sort_rows += s.sort_rows;
  for (const ExecNode* child : node.children()) {
    AccumulateTreeStats(*child, total);
  }
}

}  // namespace

void FlushOperatorMetrics(const ExecNode& node) {
  if (!telemetry::MetricsEnabled()) return;
  OperatorStats total;
  AccumulateTreeStats(node, &total);
  const telemetry::EngineMetrics& m = telemetry::Metrics();
  if (total.batches_out > 0) {
    m.batches_total->Add(static_cast<double>(total.batches_out));
  }
  if (total.adapter_batches > 0) {
    m.adapter_batches_total->Add(static_cast<double>(total.adapter_batches));
  }
  if (total.build_rows > 0) {
    m.join_build_rows_total->Add(static_cast<double>(total.build_rows));
  }
  if (total.probe_rows > 0) {
    m.join_probe_rows_total->Add(static_cast<double>(total.probe_rows));
  }
  if (total.sort_rows > 0) {
    m.sort_rows_total->Add(static_cast<double>(total.sort_rows));
  }
}

int64_t TreePeakMemBytes(const ExecNode& node) {
  int64_t total = node.stats().peak_mem_bytes;
  for (const ExecNode* child : node.children()) {
    total += TreePeakMemBytes(*child);
  }
  return total;
}

Status FoldStageMem(StageTimer* timer, int64_t mem_bytes,
                    int64_t peak_mem_bytes) {
  if (peak_mem_bytes < 0) peak_mem_bytes = mem_bytes;
  if (timer != nullptr) timer->set_mem(mem_bytes, peak_mem_bytes);
  if (QueryMemoryTracker* mem = CurrentQueryMemory()) {
    return mem->FoldStage(peak_mem_bytes);
  }
  return Status::OK();
}

Result<Table> CollectProfiled(ExecNode* node, QueryPhase phase,
                              const std::string& label, QueryProfile* profile,
                              bool vectorized) {
  StageTimer timer(profile, phase, label);
  if (timer.active()) {
    node->SetPhaseRecursive(phase);
    node->EnableTimingRecursive();
  }
  int64_t out_bytes = 0;
  Result<Table> result = CollectTable(node, vectorized, &out_bytes);
  if (!result.ok()) return result;
  // Always-on memory fold (independent of profiling): the stage footprint
  // is the operators' accounted peaks plus the materialized result. Folded
  // with a commutative max, so the query peak is deterministic no matter
  // how pipeline tasks interleave; the same fold applies the soft limit.
  const int64_t stage_peak = TreePeakMemBytes(*node) + out_bytes;
  if (QueryMemoryTracker* mem = CurrentQueryMemory()) {
    NESTRA_RETURN_NOT_OK(mem->FoldStage(stage_peak));
  }
  if (!timer.recording()) return result;
  FlushOperatorMetrics(*node);
  timer.set_mem(out_bytes, stage_peak);
  if (timer.active()) {
    timer.Finish(result->num_rows(), ProfiledOperator::Snapshot(*node));
  } else {
    timer.Finish(result->num_rows());
  }
  return result;
}

}  // namespace nestra
