#ifndef NESTRA_NRA_PLANNER_H_
#define NESTRA_NRA_PLANNER_H_

#include <string>
#include <vector>

#include "exec/exec_node.h"
#include "exec/join_hints.h"
#include "exec/join_type.h"
#include "plan/query_block.h"
#include "storage/catalog.h"

namespace nestra {

class QueryProfile;

/// \brief Shared plan-construction helpers used by the nested relational
/// executor and the baselines.
///
/// Every entry point that executes takes an optional QueryProfile: when
/// non-null it appends exactly one stage (label and row count independent
/// of `num_threads`) with phase attribution and, where an operator tree
/// ran, its stats snapshot.

/// Builds T_i = σ_i(R_i): scans the block's tables under their aliases,
/// joins them on the local equality predicates (hash join; remaining local
/// conjuncts become filters) and returns the materialized result with fully
/// qualified column names. `num_threads > 1` runs the hash joins in
/// parallel, and single-table blocks as one fused morsel-parallel
/// scan+filter (IoSim is thread-safe, and per-morsel slots concatenated in
/// morsel order keep results identical to the serial pass). `vectorized`
/// drains the serial operator trees in columnar RowBatches (identical rows,
/// identical IoSim charges). `two_valued` lets the serial vectorized
/// scan+filter compile predicates against Catalog::ProvenNotNull facts: terms
/// whose operands are proven non-NULL pick kernels with no per-value NULL
/// checks (bit-identical output whenever the proofs hold, which registration
/// guarantees for immutable tables). `cost_based` enables the stats-driven
/// physical choices (DESIGN.md §13): zone-map granule pruning on
/// single-table scans whose local predicate provably rejects whole granules
/// (the pruned path then runs for every engine combination, so rows AND
/// IoSim charges stay identical across threads/row/vectorized), and perfect
/// (dense-array) keying hints for intra-block hash joins. When pruning
/// skips nothing the pre-stats paths run byte for byte.
Result<Table> EvalBlockBase(const QueryBlock& block, const Catalog& catalog,
                            int num_threads = 1,
                            QueryProfile* profile = nullptr,
                            bool vectorized = false,
                            bool two_valued = false,
                            bool cost_based = false);

/// Filters `in` down to the rows matching `pred` using row-range morsels
/// (serial when `num_threads <= 1`); row order is preserved, so the result
/// equals a serial FilterNode pass.
Result<Table> ParallelFilterTable(Table in, const Expr* pred,
                                  int num_threads);

/// Joins `rel` (the accumulated outer relation) with the child block's base
/// relation using the child's correlated predicates as the join condition:
///  * equality conjuncts between the two sides become hash-join keys;
///  * everything else becomes the join residual;
///  * no correlated predicates at all yields the paper's "virtual Cartesian
///    product" (a left outer cross join so an empty subquery still pads).
/// `join_type` is kLeftOuter for the NRA pipeline, kLeftSemi / kLeftAnti for
/// the rewrite and baseline plans. `hints` carries the cost-based physical
/// strategy for the hash-join form (src/nra/cost.h JoinStrategyFor); the
/// defaults reproduce the pre-stats plan exactly.
Result<Table> JoinWithChild(Table rel, Table child_base,
                            const QueryBlock& child, JoinType join_type,
                            ExprPtr extra_condition = nullptr,
                            int num_threads = 1,
                            QueryProfile* profile = nullptr,
                            bool vectorized = false,
                            const JoinBuildHints& hints = {});

/// Clones and conjoins the child's correlated predicates (nullptr when it
/// has none).
ExprPtr CloneCorrelatedPreds(const QueryBlock& child);

/// Extracts the linear chain of blocks (root first). Fails if the query is
/// a tree query (some block has more than one child).
Result<std::vector<const QueryBlock*>> LinearChain(const QueryBlock& root);

/// Applies the root block's output decorations to a finished relation:
/// optional root-key IS NOT NULL guard (`key_filter_attr` non-empty),
/// ORDER BY (before projection, so non-selected columns can order), the
/// select-list projection, DISTINCT (order-preserving), and LIMIT.
Result<Table> FinalizeRootOutput(const QueryBlock& root, Table rel,
                                 const std::string& key_filter_attr = "",
                                 int num_threads = 1,
                                 QueryProfile* profile = nullptr,
                                 bool vectorized = false);

/// True when every correlated predicate of `child` is a plain equality
/// `outer_col = child_col` (the §4.2.4 push-down precondition); fills
/// `outer_cols`/`child_cols` with the pairs when so.
bool AllEquiCorrelation(const QueryBlock& child, const Schema& outer_schema,
                        const Schema& child_schema,
                        std::vector<std::string>* outer_cols,
                        std::vector<std::string>* child_cols);

}  // namespace nestra

#endif  // NESTRA_NRA_PLANNER_H_
