#ifndef NESTRA_NRA_COST_H_
#define NESTRA_NRA_COST_H_

#include <vector>

#include "exec/join_hints.h"
#include "nra/options.h"
#include "plan/query_block.h"
#include "plan/stats/estimator.h"
#include "storage/catalog.h"

namespace nestra {

/// \brief THE decision points for cost-driven planning, in the same shared
/// form as rewrites.h's TakesTwoValuedAntijoin (the PR 7 consolidation
/// rule): NraExecutor (staged and pipelined), PlanVerifier::Outline, and
/// ExplainQuery all call these inline predicates, so the executed plan, the
/// verifier outline, and EXPLAIN can never disagree about a cost decision.
/// tools/lint_engine_invariants.py (check 6) rejects direct calls to the
/// underlying estimator gates outside this header, and requires these
/// predicates to appear in all three consumers.
///
/// Everything here is inline and calls only nestra_plan-compiled code, so
/// the verifier keeps using this header without linking nestra_nra.

/// §4.2.5 semijoin rewrite decision: the flag is an unconditional override;
/// otherwise cost_based applies the rewrite when the estimates say the
/// avoided join intermediate is large. `strict_safe` is computed by each
/// consumer from its own path walk (StrictSafe / PathStrictSafe), mirroring
/// how the two-valued ladder passes its own proofs in.
inline bool TakesSemijoinRewrite(const QueryBlock& child,
                                 const std::vector<const QueryBlock*>& path,
                                 bool strict_safe, const Catalog& catalog,
                                 const NraOptions& options) {
  if (!child.IsLeaf() || !child.LinkIsPositive() || !strict_safe) {
    return false;
  }
  if (options.rewrite_positive) return true;
  return options.cost_based && CostGatesSemijoinRewrite(child, path, catalog);
}

/// §4.2.4 nest push-down decision. Consumers AND this with their structural
/// equi-correlation check (AllEquiCorrelation / LooksEquiCorrelated /
/// EquiCorrelationSplit — schema-dependent, so it stays at the site).
inline bool TakesNestPushDown(const QueryBlock& child,
                              const std::vector<const QueryBlock*>& path,
                              const Catalog& catalog,
                              const NraOptions& options) {
  if (!child.IsLeaf()) return false;
  if (options.push_down_nest) return true;
  return options.cost_based && CostGatesNestPushDown(child, path, catalog);
}

/// Physical hints for the JoinWithChild connecting `child` to the
/// accumulated outer relation: build-side swap and perfect (dense-array)
/// keying. Inert defaults when cost_based is off, so every flag-driven
/// plan is byte-identical to the pre-stats executor.
inline JoinBuildHints JoinStrategyFor(const QueryBlock& child,
                                      const std::vector<const QueryBlock*>& path,
                                      const Catalog& catalog,
                                      const NraOptions& options) {
  if (!options.cost_based) return JoinBuildHints{};
  return ChoosesJoinStrategy(child, path, catalog);
}

/// Perfect-keying hints for an intra-block join in EvalBlockBase (build
/// side = the freshly scanned `ref`, single equality key `key_column`,
/// unqualified). The planner takes a bare bool because its signature
/// predates NraOptions plumbing.
inline JoinBuildHints BaseJoinStrategyFor(const Catalog& catalog,
                                          const QueryBlock::TableRef& ref,
                                          const std::string& key_column,
                                          bool cost_based) {
  if (!cost_based) return JoinBuildHints{};
  return ChoosesScanJoinStrategy(catalog, ref, key_column);
}

/// True when every non-root block of `path` links positively — the inline
/// mirror of rewrites.h's StrictSafe, restated here because StrictSafe is
/// compiled into nestra_nra and the verifier only links nestra_plan.
inline bool PathLinksAllPositive(const std::vector<const QueryBlock*>& path) {
  for (size_t i = 1; i < path.size(); ++i) {
    if (!path[i]->LinkIsPositive()) return false;
  }
  return true;
}

/// The fused-chain bypass for cost-gated rewrites, parallel to rewrites.h's
/// FusedChainBypassesTwoValued: a linear chain whose leaf would take a
/// cost-gated §4.2.5 / §4.2.4 rewrite must route through the recursive path
/// — the single-sort fused pipeline would materialize exactly the join
/// intermediate the gate says to avoid. `chain` is root-first.
inline bool FusedChainBypassesForCost(
    const std::vector<const QueryBlock*>& chain, const Catalog& catalog,
    const NraOptions& options) {
  if (!options.cost_based || chain.size() < 2) return false;
  const QueryBlock& leaf = *chain.back();
  const std::vector<const QueryBlock*> leaf_path(chain.begin(),
                                                 chain.end() - 1);
  if (PathLinksAllPositive(leaf_path) && leaf.LinkIsPositive() &&
      leaf.IsLeaf() && CostGatesSemijoinRewrite(leaf, leaf_path, catalog)) {
    return true;
  }
  std::vector<CorrelationPair> pairs;
  if (leaf.IsLeaf() && EquiCorrelationPairs(leaf, &pairs) &&
      CostGatesNestPushDown(leaf, leaf_path, catalog)) {
    return true;
  }
  return false;
}

}  // namespace nestra

#endif  // NESTRA_NRA_COST_H_
