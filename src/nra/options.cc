#include "nra/options.h"

#include <sstream>

namespace nestra {

std::string NraOptions::ToString() const {
  std::ostringstream oss;
  oss << "NraOptions{fused=" << (fused ? "true" : "false")
      << ", nest=" << (nest_method == NestMethod::kSort ? "sort" : "hash")
      << ", push_down_nest=" << (push_down_nest ? "true" : "false")
      << ", rewrite_positive=" << (rewrite_positive ? "true" : "false")
      << ", bottom_up_linear=" << (bottom_up_linear ? "true" : "false")
      << ", magic_restriction=" << (magic_restriction ? "true" : "false")
      << ", threads=";
  // "auto" keeps the string machine-independent for golden test output.
  if (num_threads <= 0) {
    oss << "auto";
  } else {
    oss << num_threads;
  }
  oss << ", vectorized=" << (vectorized ? "true" : "false")
      << ", pipelined=" << (pipelined ? "true" : "false")
      << ", two_valued=" << (two_valued ? "true" : "false")
      << ", cost_based=" << (cost_based ? "true" : "false")
      << ", profile=" << (profile ? "true" : "false")
      << ", verify_plans=" << (verify_plans ? "true" : "false");
  // Telemetry knobs print only when set, keeping the common rendering (and
  // any golden output built on it) unchanged.
  if (slow_query_ms > 0) oss << ", slow_query_ms=" << slow_query_ms;
  if (max_query_mem > 0) oss << ", max_query_mem=" << max_query_mem;
  if (!trace_path.empty()) oss << ", trace=" << trace_path;
  if (!session_label.empty()) oss << ", session=" << session_label;
  oss << "}";
  return oss.str();
}

std::string NraStats::ToString() const {
  std::ostringstream oss;
  oss << "join=" << join_seconds << "s nest+select=" << nest_select_seconds
      << "s intermediate=" << intermediate_rows << " rows output="
      << output_rows << " rows";
  return oss.str();
}

}  // namespace nestra
