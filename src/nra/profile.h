#ifndef NESTRA_NRA_PROFILE_H_
#define NESTRA_NRA_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "exec/exec_node.h"
#include "exec/operator_stats.h"
#include "plan/stats/estimator.h"

namespace nestra {

/// \brief Immutable snapshot of one operator (and its subtree) taken after
/// the stage that ran it finished. `rows_in` is derived from the children's
/// `rows_out`, so renderers can show in/out per operator without threading
/// extra state through the pull protocol.
struct ProfiledOperator {
  std::string name;
  std::string detail;
  QueryPhase phase = QueryPhase::kUnattributed;
  OperatorStats stats;
  int64_t rows_in = 0;
  std::vector<ProfiledOperator> children;

  static ProfiledOperator Snapshot(const ExecNode& node);

  /// Inclusive time minus the children's inclusive time ("self" time).
  double exclusive_seconds() const;
};

/// \brief One executor stage: either an operator tree drained by
/// CollectProfiled (has_tree), or a table-function stage (Nest,
/// LinkingSelect, HashLinkSelect, MagicRestrict) described only by its
/// label, phase, wall time and output cardinality.
struct ProfiledStage {
  std::string label;
  QueryPhase phase = QueryPhase::kUnattributed;
  double seconds = 0;  // stage wall time, executor-measured
  int64_t rows_out = 0;
  // Logical byte accounting (always deterministic): bytes the stage's
  // result holds live at the fold point, and the stage's peak footprint
  // (operators' peaks plus the result). See src/common/memory_tracker.h.
  int64_t mem_bytes = 0;
  int64_t peak_mem_bytes = 0;
  bool has_tree = false;
  ProfiledOperator tree;
  PoolStatsSnapshot pool;  // shared-pool usage delta across this stage
};

/// \brief Per-query profile assembled by NraExecutor when
/// `NraOptions::profile` is set and the caller passes a QueryProfile out
/// parameter. Stage labels and row counts are deterministic — identical
/// across `num_threads` settings — which the profile property tests rely
/// on; only the timings vary.
class QueryProfile {
 public:
  void Clear();
  void AddStage(ProfiledStage stage) { stages_.push_back(std::move(stage)); }

  const std::vector<ProfiledStage>& stages() const { return stages_; }

  /// Wall time attributed to a paper phase: the self time of every operator
  /// tagged with it, plus the stage time of non-tree stages tagged with it.
  double PhaseSeconds(QueryPhase phase) const;

  /// Rows produced by the stages attributed to a paper phase.
  int64_t PhaseRows(QueryPhase phase) const;

  /// Merges another profile's stages (set-operation branches), prefixing
  /// stage labels with `label_prefix` and accumulating the totals.
  void Absorb(const QueryProfile& other, const std::string& label_prefix);

  /// EXPLAIN ANALYZE rendering: totals, phase split, then each stage with
  /// its annotated operator tree.
  std::string ToString() const;

  /// JSON object (schema "nestra-query-profile-v1") for the bench sink.
  std::string ToJson() const;

  // Query-level totals, filled by the executor.
  int64_t output_rows = 0;
  double total_seconds = 0;
  int64_t io_hits = 0;
  int64_t io_seq_misses = 0;
  int64_t io_random_misses = 0;
  double sim_io_millis = 0;
  // Deterministic query peak (largest stage footprint), from the query's
  // memory tracker; max across absorbed set-operation branches.
  int64_t peak_mem_bytes = 0;
  PoolStatsSnapshot pool;  // shared-pool usage delta across the whole query

  // Planner row estimates keyed by stage label (EstimateStages), filled
  // before execution so ToString/ToJson can print est vs. actual per stage.
  // Labels with no stats-backed estimate are simply absent.
  std::map<std::string, StageEstimate> estimates;

 private:
  std::vector<ProfiledStage> stages_;
};

/// Drains `node` into a table. When `profile` is non-null the node tree is
/// phase-tagged (pre-tagged subtrees keep their phase), timers are enabled,
/// and a stage snapshot is appended; when null this is exactly
/// CollectTable. `vectorized` drains via NextBatch — same rows, and
/// `batches_out` shows up in the snapshot for batch-native operators.
/// Independently of the profile, when process telemetry is on the stage
/// also feeds the global metrics registry and trace sink (see StageTimer).
Result<Table> CollectProfiled(ExecNode* node, QueryPhase phase,
                              const std::string& label, QueryProfile* profile,
                              bool vectorized = false);

/// Rolls a drained operator tree's non-deterministic extras (batches,
/// adapter batches, join build/probe rows, sort rows) into the global
/// metrics registry. No-op when metrics are disabled. Called once per
/// drained stage tree — each node belongs to exactly one stage, so nothing
/// double-counts.
void FlushOperatorMetrics(const ExecNode& node);

/// \brief Scoped helper timing one executor stage. Captures start time and
/// pool counters on construction; one of the Finish overloads reports the
/// stage to every enabled consumer:
///
///  * the QueryProfile (stage list, when constructed with a non-null one),
///  * the global metrics registry (per-phase rows/stages/seconds counters
///    and the nest-groups-peak gauge, when telemetry::MetricsEnabled()),
///  * the trace sink (one "execute"-category span, when
///    telemetry::TraceEnabled()).
///
/// With all three off, construction and Finish read no clock and do no
/// work beyond three relaxed flag loads.
class StageTimer {
 public:
  StageTimer(QueryProfile* profile, QueryPhase phase, std::string label);

  /// True when a profile sink is attached (callers gate the tree snapshot
  /// and phase tagging on this — those exist only for the profile).
  bool active() const { return profile_ != nullptr; }

  /// True when any consumer (profile, metrics, trace) is enabled.
  bool recording() const { return profile_ != nullptr || metrics_ || trace_; }

  /// Records the stage's byte accounting (live result bytes + peak
  /// footprint) to be attached to the ProfiledStage by Finish. Call before
  /// Finish; harmless without a profile sink.
  void set_mem(int64_t mem_bytes, int64_t peak_mem_bytes) {
    mem_bytes_ = mem_bytes;
    peak_mem_bytes_ = peak_mem_bytes;
  }

  /// Reports a tree-less stage.
  void Finish(int64_t rows_out);

  /// Reports a stage carrying an operator-tree snapshot (profile only; the
  /// tree is ignored without a profile sink).
  void Finish(int64_t rows_out, ProfiledOperator tree);

 private:
  void FinishImpl(int64_t rows_out, ProfiledOperator* tree);

  QueryProfile* profile_;
  QueryPhase phase_;
  std::string label_;
  bool metrics_ = false;
  bool trace_ = false;
  int64_t mem_bytes_ = 0;
  int64_t peak_mem_bytes_ = 0;
  PoolStatsSnapshot pool_before_;
  std::chrono::steady_clock::time_point start_;
};

/// Sum of the subtree's per-operator accounted peak footprints
/// (O(#operators), run once per stage fold).
int64_t TreePeakMemBytes(const ExecNode& node);

/// Records a stage's byte accounting on `timer` (nullptr ok) and folds the
/// peak into the ambient query memory tracker, applying the soft limit.
/// Used by stages that materialize a result outside CollectProfiled
/// (table-function stages, fused scan+filter fast paths). When
/// `peak_mem_bytes` is negative the stage's peak is taken to equal its
/// live result (`mem_bytes`) — the common case for stages that build
/// exactly their output.
Status FoldStageMem(StageTimer* timer, int64_t mem_bytes,
                    int64_t peak_mem_bytes = -1);

}  // namespace nestra

#endif  // NESTRA_NRA_PROFILE_H_
