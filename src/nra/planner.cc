#include "nra/planner.h"

#include "common/thread_pool.h"
#include "exec/aggregate.h"
#include "exec/distinct.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/limit.h"
#include "exec/nested_loop_join.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "expr/evaluator.h"

namespace nestra {

Result<Table> ParallelFilterTable(Table in, const Expr* pred,
                                  int num_threads) {
  NESTRA_ASSIGN_OR_RETURN(BoundPredicate bound,
                          BoundPredicate::Make(pred, in.schema()));
  Table out{in.schema()};
  const int64_t n = static_cast<int64_t>(in.rows().size());
  // Morsels keep row order: slot m holds the survivors of rows
  // [m*chunk, (m+1)*chunk), concatenated in morsel order below.
  std::vector<std::vector<Row>> slots(
      static_cast<size_t>(MorselCount(n, num_threads)));
  ParallelForMorsels(n, num_threads, [&](int64_t morsel, int64_t begin,
                                         int64_t end) {
    std::vector<Row>& slot = slots[static_cast<size_t>(morsel)];
    for (int64_t i = begin; i < end; ++i) {
      Row& r = in.rows()[static_cast<size_t>(i)];
      if (bound.Matches(r)) slot.push_back(std::move(r));
    }
  });
  for (std::vector<Row>& slot : slots) {
    for (Row& r : slot) out.AppendUnchecked(std::move(r));
  }
  return out;
}

Result<Table> EvalBlockBase(const QueryBlock& block, const Catalog& catalog,
                            int num_threads) {
  // Split local conjuncts once; they are attached to the first join where
  // both sides are available, remaining ones become a final filter.
  std::vector<ExprPtr> conjuncts;
  if (block.local_pred != nullptr) {
    conjuncts = SplitConjunction(block.local_pred->Clone());
  }

  ExecNodePtr node;
  for (const QueryBlock::TableRef& ref : block.tables) {
    NESTRA_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(ref.table));
    auto scan = std::make_unique<ScanNode>(table, ref.alias);
    if (node == nullptr) {
      node = std::move(scan);
    } else {
      // Pull in every conjunct that binds against (node ++ scan).
      const Schema combined =
          Schema::Concat(node->output_schema(), scan->output_schema());
      std::vector<ExprPtr> usable;
      std::vector<ExprPtr> rest;
      for (ExprPtr& c : conjuncts) {
        if (ReferencesOnly(*c, combined)) {
          usable.push_back(std::move(c));
        } else {
          rest.push_back(std::move(c));
        }
      }
      conjuncts = std::move(rest);
      JoinCondition cond = DecomposeJoinCondition(
          std::move(usable), node->output_schema(), scan->output_schema());
      node = std::make_unique<HashJoinNode>(
          std::move(node), std::move(scan), JoinType::kInner,
          std::move(cond.equi), std::move(cond.residual), num_threads);
    }
  }
  if (!conjuncts.empty()) {
    if (num_threads > 1) {
      // Scan serially (simulated I/O is charged per pulled row and must
      // stay identical to the serial plan), then filter the materialized
      // rows in parallel morsels.
      NESTRA_ASSIGN_OR_RETURN(Table scanned, CollectTable(node.get()));
      const ExprPtr pred = MakeAnd(std::move(conjuncts));
      return ParallelFilterTable(std::move(scanned), pred.get(), num_threads);
    }
    node = std::make_unique<FilterNode>(std::move(node),
                                        MakeAnd(std::move(conjuncts)));
  }
  return CollectTable(node.get());
}

ExprPtr CloneCorrelatedPreds(const QueryBlock& child) {
  if (child.correlated_preds.empty()) return nullptr;
  std::vector<ExprPtr> copies;
  copies.reserve(child.correlated_preds.size());
  for (const ExprPtr& p : child.correlated_preds) {
    copies.push_back(p->Clone());
  }
  return MakeAnd(std::move(copies));
}

Result<Table> JoinWithChild(Table rel, Table child_base,
                            const QueryBlock& child, JoinType join_type,
                            ExprPtr extra_condition, int num_threads) {
  auto left = std::make_unique<TableSourceNode>(std::move(rel));
  auto right = std::make_unique<TableSourceNode>(std::move(child_base));

  std::vector<ExprPtr> conjuncts;
  if (ExprPtr corr = CloneCorrelatedPreds(child); corr != nullptr) {
    for (ExprPtr& c : SplitConjunction(std::move(corr))) {
      conjuncts.push_back(std::move(c));
    }
  }
  if (extra_condition != nullptr) {
    for (ExprPtr& c : SplitConjunction(std::move(extra_condition))) {
      conjuncts.push_back(std::move(c));
    }
  }

  if (conjuncts.empty()) {
    // Non-correlated subquery: virtual Cartesian product. A left outer
    // cross join keeps padding behaviour for empty subqueries.
    auto join = std::make_unique<NestedLoopJoinNode>(
        std::move(left), std::move(right), join_type, nullptr);
    return CollectTable(join.get());
  }

  JoinCondition cond = DecomposeJoinCondition(
      std::move(conjuncts), left->output_schema(), right->output_schema());
  if (cond.equi.empty()) {
    // Pure theta correlation (e.g. only inequality predicates): the hash
    // join would degenerate to one bucket anyway; use the nested loop form
    // for clarity.
    auto join = std::make_unique<NestedLoopJoinNode>(
        std::move(left), std::move(right), join_type,
        std::move(cond.residual));
    return CollectTable(join.get());
  }
  auto join = std::make_unique<HashJoinNode>(
      std::move(left), std::move(right), join_type, std::move(cond.equi),
      std::move(cond.residual), num_threads);
  return CollectTable(join.get());
}

Result<std::vector<const QueryBlock*>> LinearChain(const QueryBlock& root) {
  std::vector<const QueryBlock*> chain;
  const QueryBlock* node = &root;
  while (true) {
    chain.push_back(node);
    if (node->children.empty()) break;
    if (node->children.size() > 1) {
      return Status::InvalidArgument(
          "query is a tree query (block " + std::to_string(node->id) +
          " has " + std::to_string(node->children.size()) + " children)");
    }
    node = node->children[0].get();
  }
  return chain;
}

namespace {

AggFunc ToAggFunc(LinkAgg agg) {
  switch (agg) {
    case LinkAgg::kCount:
      return AggFunc::kCount;
    case LinkAgg::kCountStar:
      return AggFunc::kCountStar;
    case LinkAgg::kSum:
      return AggFunc::kSum;
    case LinkAgg::kMin:
      return AggFunc::kMin;
    case LinkAgg::kMax:
      return AggFunc::kMax;
    case LinkAgg::kAvg:
      return AggFunc::kAvg;
  }
  return AggFunc::kCount;
}

}  // namespace

Result<Table> FinalizeRootOutput(const QueryBlock& root, Table rel,
                                 const std::string& key_filter_attr,
                                 int num_threads) {
  if (!key_filter_attr.empty() && num_threads > 1) {
    const ExprPtr pred = IsNotNull(Col(key_filter_attr));
    NESTRA_ASSIGN_OR_RETURN(
        rel, ParallelFilterTable(std::move(rel), pred.get(), num_threads));
  }
  ExecNodePtr node = std::make_unique<TableSourceNode>(std::move(rel));
  if (!key_filter_attr.empty() && num_threads <= 1) {
    node = std::make_unique<FilterNode>(std::move(node),
                                        IsNotNull(Col(key_filter_attr)));
  }
  if (root.IsGrouped()) {
    std::vector<AggSpec> aggs;
    aggs.reserve(root.aggregates.size());
    for (const QueryBlock::RootAgg& a : root.aggregates) {
      aggs.push_back({ToAggFunc(a.func), a.column, a.output_name});
    }
    node = std::make_unique<AggregateNode>(std::move(node), root.group_by,
                                           std::move(aggs));
    if (root.having != nullptr) {
      node = std::make_unique<FilterNode>(std::move(node),
                                          root.having->Clone());
    }
  }
  if (!root.order_by.empty()) {
    std::vector<SortKey> keys;
    keys.reserve(root.order_by.size());
    for (const QueryBlock::OrderItem& item : root.order_by) {
      keys.push_back({item.column, item.ascending});
    }
    node = std::make_unique<SortNode>(std::move(node), std::move(keys),
                                      num_threads);
  }
  node = std::make_unique<ProjectNode>(std::move(node), root.select_list);
  if (root.distinct) {
    // DistinctNode emits first occurrences in input order, preserving the
    // sort above.
    node = std::make_unique<DistinctNode>(std::move(node));
  }
  if (root.limit >= 0) {
    node = std::make_unique<LimitNode>(std::move(node), root.limit);
  }
  return CollectTable(node.get());
}

bool AllEquiCorrelation(const QueryBlock& child, const Schema& outer_schema,
                        const Schema& child_schema,
                        std::vector<std::string>* outer_cols,
                        std::vector<std::string>* child_cols) {
  outer_cols->clear();
  child_cols->clear();
  if (child.correlated_preds.empty()) return false;
  for (const ExprPtr& p : child.correlated_preds) {
    const auto* cmp = dynamic_cast<const Comparison*>(p.get());
    if (cmp == nullptr || cmp->op() != CmpOp::kEq) return false;
    const auto* l = dynamic_cast<const ColumnRef*>(&cmp->lhs());
    const auto* r = dynamic_cast<const ColumnRef*>(&cmp->rhs());
    if (l == nullptr || r == nullptr) return false;
    const bool l_outer = outer_schema.Resolve(l->name()).ok();
    const bool l_child = child_schema.Resolve(l->name()).ok();
    const bool r_outer = outer_schema.Resolve(r->name()).ok();
    const bool r_child = child_schema.Resolve(r->name()).ok();
    if (l_outer && !l_child && r_child && !r_outer) {
      outer_cols->push_back(l->name());
      child_cols->push_back(r->name());
    } else if (r_outer && !r_child && l_child && !l_outer) {
      outer_cols->push_back(r->name());
      child_cols->push_back(l->name());
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace nestra
