#include "nra/planner.h"

#include <cmath>

#include "common/memory_tracker.h"
#include "common/thread_pool.h"
#include "exec/aggregate.h"
#include "exec/distinct.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/limit.h"
#include "exec/nested_loop_join.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "expr/evaluator.h"
#include "nra/cost.h"
#include "nra/profile.h"
#include "storage/io_sim.h"
#include "storage/table_stats.h"
#include "telemetry/engine_metrics.h"

namespace nestra {

namespace {

// "base[o l]" — aliases (or table names) of the block, thread-count
// independent so profile stage lists compare across runs.
std::string BlockLabel(const QueryBlock& block) {
  std::string label = "base[";
  for (size_t i = 0; i < block.tables.size(); ++i) {
    if (i > 0) label += ' ';
    const QueryBlock::TableRef& ref = block.tables[i];
    label += ref.alias.empty() ? ref.table : ref.alias;
  }
  label += ']';
  return label;
}

// Fused morsel-parallel scan+filter over one base table: each morsel
// charges its rows to the (thread-safe) IoSim and filters into its own
// slot; slots concatenate in morsel order, so output — and the simulator's
// totals — equal the serial ScanNode/FilterNode pass exactly.
Result<Table> ParallelScanFilter(const Table* table, const Schema& schema,
                                 const Expr* pred, int num_threads,
                                 ProfiledOperator* op_out) {
  BoundPredicate bound;
  if (pred != nullptr) {
    NESTRA_ASSIGN_OR_RETURN(bound, BoundPredicate::Make(pred, schema));
  }
  const int64_t n = table->num_rows();
  const int64_t morsels = MorselCount(n, num_threads);
  std::vector<std::vector<Row>> slots(static_cast<size_t>(morsels));
  struct IoCounts {
    int64_t hits = 0;
    int64_t seq_misses = 0;
    int64_t random_misses = 0;
  };
  std::vector<IoCounts> io(static_cast<size_t>(morsels));
  ParallelForMorsels(n, num_threads, [&](int64_t m, int64_t begin,
                                         int64_t end) {
    std::vector<Row>& slot = slots[static_cast<size_t>(m)];
    IoCounts& counts = io[static_cast<size_t>(m)];
    IoSim* sim = IoSim::Get();
    for (int64_t i = begin; i < end; ++i) {
      if (sim != nullptr) {
        switch (sim->SeqRow(table, i)) {
          case IoAccess::kHit:
            ++counts.hits;
            break;
          case IoAccess::kSeqMiss:
            ++counts.seq_misses;
            break;
          case IoAccess::kRandomMiss:
            ++counts.random_misses;
            break;
          case IoAccess::kNone:
            break;
        }
      }
      const Row& r = table->rows()[static_cast<size_t>(i)];
      if (pred == nullptr || bound.Matches(r)) slot.push_back(r);
    }
  });
  Table out{schema};
  for (std::vector<Row>& slot : slots) {
    for (Row& r : slot) out.AppendUnchecked(std::move(r));
  }
  if (op_out != nullptr) {
    op_out->name = pred == nullptr ? "ParallelScan" : "ParallelScanFilter";
    op_out->phase = QueryPhase::kUnnestJoin;
    op_out->rows_in = n;
    op_out->stats.rows_out = out.num_rows();
    for (const IoCounts& counts : io) {
      op_out->stats.io_hits += counts.hits;
      op_out->stats.io_seq_misses += counts.seq_misses;
      op_out->stats.io_random_misses += counts.random_misses;
    }
  }
  return out;
}

// Fused vectorized scan+filter over one base table (serial). Late
// materialization: only the predicate's columns are transposed into the
// batch; Select then picks the survivors and only those rows are copied
// out of the table. Rows the filter rejects are never deep-copied, which
// is where this beats both the row pipeline (copies every row out of the
// scan) and the generic batch pipeline (transposes every column).
// IoSim charging stays per row in table order, so the simulator's totals
// and LRU state match the serial row engine exactly.
Result<Table> VectorizedScanFilter(const Table* table, const Schema& schema,
                                   const VectorizedPredicate& pred,
                                   ProfiledOperator* op_out) {
  const int64_t n = table->num_rows();
  const std::vector<Row>& rows = table->rows();
  const std::vector<int> cols = pred.used_columns();
  Table out{schema};
  // Worst case every row survives; one up-front allocation of the row
  // headers beats log(n) grow-and-move cycles of the output vector.
  out.Reserve(static_cast<size_t>(n));
  RowBatch batch;
  batch.Reset(schema);
  std::vector<int32_t> sel;
  int64_t hits = 0;
  int64_t seq_misses = 0;
  int64_t random_misses = 0;
  int64_t batches = 0;
  IoSim* sim = IoSim::Get();
  for (int64_t begin = 0; begin < n; begin += RowBatch::kDefaultCapacity) {
    int64_t end = begin + RowBatch::kDefaultCapacity;
    if (end > n) end = n;
    if (sim != nullptr) {
      const IoSim::RangeCounts counts = sim->SeqRange(table, begin, end);
      hits += counts.hits;
      seq_misses += counts.seq_misses;
      random_misses += counts.random_misses;
    }
    batch.Clear();
    for (int64_t i = begin; i < end; ++i) {
      const Row& r = rows[static_cast<size_t>(i)];
      for (const int c : cols) batch.column(c).Append(r[c]);
    }
    batch.set_num_rows(end - begin);
    ++batches;
    pred.Select(batch, &sel);
    for (const int32_t s : sel) {
      out.AppendUnchecked(rows[static_cast<size_t>(begin + s)]);
    }
  }
  if (op_out != nullptr) {
    op_out->name = "VectorizedScanFilter";
    op_out->phase = QueryPhase::kUnnestJoin;
    op_out->rows_in = n;
    op_out->stats.rows_out = out.num_rows();
    op_out->stats.batches_out = batches;
    op_out->stats.io_hits = hits;
    op_out->stats.io_seq_misses = seq_misses;
    op_out->stats.io_random_misses = random_misses;
  }
  return out;
}

// One local-predicate conjunct usable for zone-map pruning: a column
// compared to a numeric literal (normalized to `col op lit`), or an
// IS NOT NULL guard. Pruning only ever uses NECESSARY conditions — a
// granule is skipped when the term proves no row in it can pass — so
// conjuncts this misses just cost nothing.
struct ZoneTerm {
  int col = 0;
  bool not_null_only = false;
  CmpOp op = CmpOp::kEq;
  double lit = 0.0;
};

// Doubles represent integers exactly only up to 2^53; literals at or beyond
// 2^52 stay out of pruning so a rounded bound can never misjudge a granule.
constexpr double kZoneLiteralLimit = 4503599627370496.0;  // 2^52

void CollectZoneTerms(const std::vector<ExprPtr>& conjuncts,
                      const Schema& schema, std::vector<ZoneTerm>* out) {
  for (const ExprPtr& e : conjuncts) {
    if (const auto* is_null = dynamic_cast<const IsNullExpr*>(e.get())) {
      // IS NULL cannot prune (zones don't count NULLs per granule); IS NOT
      // NULL prunes all-NULL granules.
      if (!is_null->negated()) continue;
      const auto* col = dynamic_cast<const ColumnRef*>(&is_null->child());
      if (col == nullptr) continue;
      Result<int> idx = schema.Resolve(col->name());
      if (!idx.ok()) continue;
      ZoneTerm t;
      t.col = *idx;
      t.not_null_only = true;
      out->push_back(t);
      continue;
    }
    const auto* cmp = dynamic_cast<const Comparison*>(e.get());
    if (cmp == nullptr) continue;
    const auto* l_col = dynamic_cast<const ColumnRef*>(&cmp->lhs());
    const auto* r_col = dynamic_cast<const ColumnRef*>(&cmp->rhs());
    const auto* l_lit = dynamic_cast<const Literal*>(&cmp->lhs());
    const auto* r_lit = dynamic_cast<const Literal*>(&cmp->rhs());
    const ColumnRef* col = l_col != nullptr ? l_col : r_col;
    const Literal* lit = l_col != nullptr ? r_lit : l_lit;
    if (col == nullptr || lit == nullptr) continue;
    const auto num = lit->value().AsDouble();
    if (!num.has_value() || std::abs(*num) >= kZoneLiteralLimit) continue;
    Result<int> idx = schema.Resolve(col->name());
    if (!idx.ok()) continue;
    ZoneTerm t;
    t.col = *idx;
    t.op = l_col != nullptr ? cmp->op() : FlipCmpOp(cmp->op());
    t.lit = *num;
    out->push_back(t);
  }
}

// True when the zone entry proves no row of the granule satisfies `t`.
bool GranuleRejected(const ZoneEntry& z, const ZoneTerm& t) {
  // NULL operands fail comparisons and IS NOT NULL alike.
  if (z.all_null) return true;
  if (t.not_null_only) return false;
  // No numeric range (e.g. a string column): nothing provable.
  if (!z.has_range) return false;
  switch (t.op) {
    case CmpOp::kEq:
      return t.lit < z.min || t.lit > z.max;
    case CmpOp::kNe:
      return false;
    case CmpOp::kLt:
      return z.min >= t.lit;
    case CmpOp::kLe:
      return z.min > t.lit;
    case CmpOp::kGt:
      return z.max <= t.lit;
    case CmpOp::kGe:
      return z.max < t.lit;
  }
  return false;
}

// Scan+filter over the kept granules only (morsel = granule, kept order =
// table order). ONE implementation for every engine combination — serial or
// parallel, row or vectorized — so rows and IoSim charges are identical
// across all of them by construction; SeqRange charges exactly what the
// unpruned pass would charge for these rows.
Result<Table> PrunedScanFilter(const Table* table, const Schema& schema,
                               const Expr* pred,
                               const std::vector<int64_t>& kept,
                               int64_t total_granules, int num_threads,
                               ProfiledOperator* op_out) {
  BoundPredicate bound;
  if (pred != nullptr) {
    NESTRA_ASSIGN_OR_RETURN(bound, BoundPredicate::Make(pred, schema));
  }
  const int64_t n = table->num_rows();
  const int64_t g = static_cast<int64_t>(kept.size());
  std::vector<std::vector<Row>> slots(static_cast<size_t>(g));
  struct IoCounts {
    int64_t hits = 0;
    int64_t seq_misses = 0;
    int64_t random_misses = 0;
  };
  std::vector<IoCounts> io(static_cast<size_t>(g));
  int64_t scanned_rows = 0;
  ParallelForEach(g, num_threads, [&](int64_t k) {
    const int64_t gi = kept[static_cast<size_t>(k)];
    const int64_t begin = gi * kZoneGranuleRows;
    int64_t end = begin + kZoneGranuleRows;
    if (end > n) end = n;
    IoSim* sim = IoSim::Get();
    if (sim != nullptr) {
      const IoSim::RangeCounts counts = sim->SeqRange(table, begin, end);
      IoCounts& c = io[static_cast<size_t>(k)];
      c.hits = counts.hits;
      c.seq_misses = counts.seq_misses;
      c.random_misses = counts.random_misses;
    }
    std::vector<Row>& slot = slots[static_cast<size_t>(k)];
    for (int64_t i = begin; i < end; ++i) {
      const Row& r = table->rows()[static_cast<size_t>(i)];
      if (pred == nullptr || bound.Matches(r)) slot.push_back(r);
    }
  });
  Table out{schema};
  for (std::vector<Row>& slot : slots) {
    for (Row& r : slot) out.AppendUnchecked(std::move(r));
  }
  for (const int64_t gi : kept) {
    const int64_t begin = gi * kZoneGranuleRows;
    scanned_rows += std::min(n, begin + kZoneGranuleRows) - begin;
  }
  if (telemetry::MetricsEnabled()) {
    const telemetry::EngineMetrics& m = telemetry::Metrics();
    m.zone_granules_scanned_total->Add(static_cast<double>(g));
    m.zone_granules_pruned_total->Add(
        static_cast<double>(total_granules - g));
  }
  if (op_out != nullptr) {
    op_out->name = "ZoneMapScanFilter";
    op_out->detail = "granules=" + std::to_string(g) + "/" +
                     std::to_string(total_granules);
    op_out->phase = QueryPhase::kUnnestJoin;
    op_out->rows_in = scanned_rows;
    op_out->stats.rows_out = out.num_rows();
    for (const IoCounts& counts : io) {
      op_out->stats.io_hits += counts.hits;
      op_out->stats.io_seq_misses += counts.seq_misses;
      op_out->stats.io_random_misses += counts.random_misses;
    }
  }
  return out;
}

// Zone-map pruning pays off on big tables; below this many granules the
// whole scan fits a few pages anyway and plan stability matters more (the
// gate keeps every tier-1 test workload on the byte-identical unpruned
// paths, same reasoning as kCostMinJoinRows).
constexpr int64_t kMinPruneGranules = 8;

}  // namespace

Result<Table> ParallelFilterTable(Table in, const Expr* pred,
                                  int num_threads) {
  NESTRA_ASSIGN_OR_RETURN(BoundPredicate bound,
                          BoundPredicate::Make(pred, in.schema()));
  Table out{in.schema()};
  const int64_t n = static_cast<int64_t>(in.rows().size());
  // Morsels keep row order: slot m holds the survivors of rows
  // [m*chunk, (m+1)*chunk), concatenated in morsel order below.
  std::vector<std::vector<Row>> slots(
      static_cast<size_t>(MorselCount(n, num_threads)));
  ParallelForMorsels(n, num_threads, [&](int64_t morsel, int64_t begin,
                                         int64_t end) {
    std::vector<Row>& slot = slots[static_cast<size_t>(morsel)];
    for (int64_t i = begin; i < end; ++i) {
      Row& r = in.rows()[static_cast<size_t>(i)];
      if (bound.Matches(r)) slot.push_back(std::move(r));
    }
  });
  for (std::vector<Row>& slot : slots) {
    for (Row& r : slot) out.AppendUnchecked(std::move(r));
  }
  return out;
}

Result<Table> EvalBlockBase(const QueryBlock& block, const Catalog& catalog,
                            int num_threads, QueryProfile* profile,
                            bool vectorized, bool two_valued,
                            bool cost_based) {
  // Split local conjuncts once; they are attached to the first join where
  // both sides are available, remaining ones become a final filter.
  std::vector<ExprPtr> conjuncts;
  if (block.local_pred != nullptr) {
    conjuncts = SplitConjunction(block.local_pred->Clone());
  }

  if (block.tables.size() == 1 && cost_based && !conjuncts.empty()) {
    // Zone-map pruning: when per-granule min/max from load-time stats prove
    // some granules can't contribute, scan only the kept ones. The pruned
    // path runs for EVERY engine combination, so rows and IoSim charges
    // stay identical across threads and row/vectorized; when nothing is
    // provably prunable the pre-stats paths below run byte for byte.
    const QueryBlock::TableRef& ref = block.tables[0];
    NESTRA_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(ref.table));
    const Result<const TableStats*> stats = catalog.GetStats(ref.table);
    if (stats.ok() && (*stats)->zones.num_granules >= kMinPruneGranules) {
      const Schema schema = ref.alias.empty()
                                ? table->schema()
                                : table->schema().Qualify(ref.alias);
      std::vector<ZoneTerm> terms;
      CollectZoneTerms(conjuncts, schema, &terms);
      const TableZoneMap& zones = (*stats)->zones;
      std::vector<int64_t> kept;
      if (!terms.empty()) {
        for (int64_t gi = 0; gi < zones.num_granules; ++gi) {
          bool keep = true;
          for (const ZoneTerm& t : terms) {
            if (GranuleRejected(zones.At(gi, t.col), t)) {
              keep = false;
              break;
            }
          }
          if (keep) kept.push_back(gi);
        }
      }
      if (!terms.empty() &&
          static_cast<int64_t>(kept.size()) < zones.num_granules) {
        const ExprPtr pred = MakeAnd(std::move(conjuncts));
        StageTimer timer(profile, QueryPhase::kUnnestJoin, BlockLabel(block));
        ProfiledOperator op;
        NESTRA_ASSIGN_OR_RETURN(
            Table out,
            PrunedScanFilter(table, schema, pred.get(), kept,
                             zones.num_granules, num_threads,
                             timer.active() ? &op : nullptr));
        NESTRA_RETURN_NOT_OK(FoldStageMem(&timer, TableBytes(out)));
        timer.Finish(out.num_rows(), std::move(op));
        return out;
      }
    }
  }

  if (block.tables.size() == 1 && num_threads > 1) {
    // Single-table block: one fused morsel-parallel scan+filter. The IoSim
    // is charged from whichever worker owns the morsel (it is thread-safe),
    // and morsel-ordered slots keep the rows identical to the serial scan.
    const QueryBlock::TableRef& ref = block.tables[0];
    NESTRA_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(ref.table));
    const Schema schema = ref.alias.empty()
                              ? table->schema()
                              : table->schema().Qualify(ref.alias);
    const ExprPtr pred =
        conjuncts.empty() ? nullptr : MakeAnd(std::move(conjuncts));
    StageTimer timer(profile, QueryPhase::kUnnestJoin, BlockLabel(block));
    ProfiledOperator op;
    NESTRA_ASSIGN_OR_RETURN(
        Table out,
        ParallelScanFilter(table, schema, pred.get(), num_threads,
                           timer.active() ? &op : nullptr));
    NESTRA_RETURN_NOT_OK(FoldStageMem(&timer, TableBytes(out)));
    timer.Finish(out.num_rows(), std::move(op));
    return out;
  }

  if (block.tables.size() == 1 && vectorized) {
    // Single-table block, serial vectorized engine: fuse scan and filter
    // with late materialization when the predicate compiles to kernels.
    // Non-vectorizable predicates fall through to the node pipeline below
    // (whose FilterNode takes the row-at-a-time fallback).
    const QueryBlock::TableRef& ref = block.tables[0];
    NESTRA_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(ref.table));
    const Schema schema = ref.alias.empty()
                              ? table->schema()
                              : table->schema().Qualify(ref.alias);
    const ExprPtr pred =
        conjuncts.empty() ? nullptr : MakeAnd(std::move(conjuncts));
    VectorizedPredicate vpred;
    bool compiled = false;
    if (two_valued) {
      // Proven-2VL fast path: columns the catalog proves non-NULL (declared
      // NOT NULL or scanned NULL-free at registration) compile to kernels
      // with no per-value NULL loads. Tables are immutable once registered,
      // so the proof cannot be invalidated under us.
      std::vector<bool> non_null(static_cast<size_t>(schema.num_fields()),
                                 false);
      for (int i = 0; i < schema.num_fields(); ++i) {
        non_null[static_cast<size_t>(i)] =
            catalog.ProvenNotNull(ref.table, table->schema().fields()[i].name);
      }
      compiled =
          VectorizedPredicate::Compile(pred.get(), schema, non_null, &vpred);
    } else {
      compiled = VectorizedPredicate::Compile(pred.get(), schema, &vpred);
    }
    if (compiled) {
      StageTimer timer(profile, QueryPhase::kUnnestJoin, BlockLabel(block));
      ProfiledOperator op;
      NESTRA_ASSIGN_OR_RETURN(
          Table out, VectorizedScanFilter(table, schema, vpred,
                                          timer.active() ? &op : nullptr));
      NESTRA_RETURN_NOT_OK(FoldStageMem(&timer, TableBytes(out)));
      timer.Finish(out.num_rows(), std::move(op));
      return out;
    }
    if (pred != nullptr) conjuncts = SplitConjunction(pred->Clone());
  }

  ExecNodePtr node;
  for (const QueryBlock::TableRef& ref : block.tables) {
    NESTRA_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(ref.table));
    auto scan = std::make_unique<ScanNode>(table, ref.alias);
    if (node == nullptr) {
      node = std::move(scan);
    } else {
      // Pull in every conjunct that binds against (node ++ scan).
      const Schema combined =
          Schema::Concat(node->output_schema(), scan->output_schema());
      std::vector<ExprPtr> usable;
      std::vector<ExprPtr> rest;
      for (ExprPtr& c : conjuncts) {
        if (ReferencesOnly(*c, combined)) {
          usable.push_back(std::move(c));
        } else {
          rest.push_back(std::move(c));
        }
      }
      conjuncts = std::move(rest);
      JoinCondition cond = DecomposeJoinCondition(
          std::move(usable), node->output_schema(), scan->output_schema());
      JoinBuildHints hints;
      if (cost_based && cond.equi.size() == 1) {
        // The build side is the freshly scanned `ref`; its single key column
        // arrives qualified by the alias, which the stats lookup strips.
        std::string key = cond.equi[0].right;
        if (!ref.alias.empty() &&
            key.rfind(ref.alias + ".", 0) == 0) {
          key = key.substr(ref.alias.size() + 1);
        }
        hints = BaseJoinStrategyFor(catalog, ref, key, cost_based);
      }
      node = std::make_unique<HashJoinNode>(
          std::move(node), std::move(scan), JoinType::kInner,
          std::move(cond.equi), std::move(cond.residual), num_threads,
          vectorized, hints);
    }
  }
  if (!conjuncts.empty() && num_threads > 1) {
    // Multi-table block with leftover conjuncts: the join tree drains
    // serially (Next is a serial protocol; its hash joins parallelize
    // internally), then the materialized rows filter in parallel morsels.
    StageTimer timer(profile, QueryPhase::kUnnestJoin, BlockLabel(block));
    if (timer.active()) {
      node->SetPhaseRecursive(QueryPhase::kUnnestJoin);
      node->EnableTimingRecursive();
    }
    int64_t scanned_bytes = 0;
    NESTRA_ASSIGN_OR_RETURN(
        Table scanned, CollectTable(node.get(), vectorized, &scanned_bytes));
    FlushOperatorMetrics(*node);
    ProfiledOperator tree;
    if (timer.active()) tree = ProfiledOperator::Snapshot(*node);
    const ExprPtr pred = MakeAnd(std::move(conjuncts));
    // Stage peak: operator charges plus the drained intermediate, which is
    // still live while the parallel filter builds its output.
    const int64_t tree_peak = TreePeakMemBytes(*node) + scanned_bytes;
    NESTRA_ASSIGN_OR_RETURN(
        Table out,
        ParallelFilterTable(std::move(scanned), pred.get(), num_threads));
    const int64_t out_bytes = TableBytes(out);
    NESTRA_RETURN_NOT_OK(FoldStageMem(&timer, out_bytes, tree_peak + out_bytes));
    if (timer.active()) {
      ProfiledOperator wrapper;
      wrapper.name = "ParallelFilter";
      wrapper.phase = QueryPhase::kUnnestJoin;
      wrapper.rows_in = tree.stats.rows_out;
      wrapper.stats.rows_out = out.num_rows();
      wrapper.children.push_back(std::move(tree));
      timer.Finish(out.num_rows(), std::move(wrapper));
    } else {
      timer.Finish(out.num_rows());
    }
    return out;
  }
  if (!conjuncts.empty()) {
    node = std::make_unique<FilterNode>(std::move(node),
                                        MakeAnd(std::move(conjuncts)));
  }
  return CollectProfiled(node.get(), QueryPhase::kUnnestJoin,
                         BlockLabel(block), profile, vectorized);
}

ExprPtr CloneCorrelatedPreds(const QueryBlock& child) {
  if (child.correlated_preds.empty()) return nullptr;
  std::vector<ExprPtr> copies;
  copies.reserve(child.correlated_preds.size());
  for (const ExprPtr& p : child.correlated_preds) {
    copies.push_back(p->Clone());
  }
  return MakeAnd(std::move(copies));
}

Result<Table> JoinWithChild(Table rel, Table child_base,
                            const QueryBlock& child, JoinType join_type,
                            ExprPtr extra_condition, int num_threads,
                            QueryProfile* profile, bool vectorized,
                            const JoinBuildHints& hints) {
  const std::string label = "join[b" + std::to_string(child.id) + "]";
  auto left = std::make_unique<TableSourceNode>(std::move(rel));
  auto right = std::make_unique<TableSourceNode>(std::move(child_base));

  std::vector<ExprPtr> conjuncts;
  if (ExprPtr corr = CloneCorrelatedPreds(child); corr != nullptr) {
    for (ExprPtr& c : SplitConjunction(std::move(corr))) {
      conjuncts.push_back(std::move(c));
    }
  }
  if (extra_condition != nullptr) {
    for (ExprPtr& c : SplitConjunction(std::move(extra_condition))) {
      conjuncts.push_back(std::move(c));
    }
  }

  if (conjuncts.empty()) {
    // Non-correlated subquery: virtual Cartesian product. A left outer
    // cross join keeps padding behaviour for empty subqueries.
    auto join = std::make_unique<NestedLoopJoinNode>(
        std::move(left), std::move(right), join_type, nullptr);
    return CollectProfiled(join.get(), QueryPhase::kUnnestJoin, label,
                           profile);
  }

  JoinCondition cond = DecomposeJoinCondition(
      std::move(conjuncts), left->output_schema(), right->output_schema());
  if (cond.equi.empty()) {
    // Pure theta correlation (e.g. only inequality predicates): the hash
    // join would degenerate to one bucket anyway; use the nested loop form
    // for clarity.
    auto join = std::make_unique<NestedLoopJoinNode>(
        std::move(left), std::move(right), join_type,
        std::move(cond.residual));
    return CollectProfiled(join.get(), QueryPhase::kUnnestJoin, label,
                           profile);
  }
  auto join = std::make_unique<HashJoinNode>(
      std::move(left), std::move(right), join_type, std::move(cond.equi),
      std::move(cond.residual), num_threads, vectorized, hints);
  return CollectProfiled(join.get(), QueryPhase::kUnnestJoin, label, profile,
                         vectorized);
}

Result<std::vector<const QueryBlock*>> LinearChain(const QueryBlock& root) {
  std::vector<const QueryBlock*> chain;
  const QueryBlock* node = &root;
  while (true) {
    chain.push_back(node);
    if (node->children.empty()) break;
    if (node->children.size() > 1) {
      return Status::InvalidArgument(
          "query is a tree query (block " + std::to_string(node->id) +
          " has " + std::to_string(node->children.size()) + " children)");
    }
    node = node->children[0].get();
  }
  return chain;
}

namespace {

AggFunc ToAggFunc(LinkAgg agg) {
  switch (agg) {
    case LinkAgg::kCount:
      return AggFunc::kCount;
    case LinkAgg::kCountStar:
      return AggFunc::kCountStar;
    case LinkAgg::kSum:
      return AggFunc::kSum;
    case LinkAgg::kMin:
      return AggFunc::kMin;
    case LinkAgg::kMax:
      return AggFunc::kMax;
    case LinkAgg::kAvg:
      return AggFunc::kAvg;
  }
  return AggFunc::kCount;
}

}  // namespace

Result<Table> FinalizeRootOutput(const QueryBlock& root, Table rel,
                                 const std::string& key_filter_attr,
                                 int num_threads, QueryProfile* profile,
                                 bool vectorized) {
  // One "finish" stage regardless of thread count: the parallel key-filter
  // pre-pass (when taken) is folded into the stage's wall time, and the
  // stage's rows_out is the final output either way.
  StageTimer timer(profile, QueryPhase::kPostProcessing, "finish");
  if (!key_filter_attr.empty() && num_threads > 1) {
    const ExprPtr pred = IsNotNull(Col(key_filter_attr));
    NESTRA_ASSIGN_OR_RETURN(
        rel, ParallelFilterTable(std::move(rel), pred.get(), num_threads));
  }
  ExecNodePtr node = std::make_unique<TableSourceNode>(std::move(rel));
  if (!key_filter_attr.empty() && num_threads <= 1) {
    node = std::make_unique<FilterNode>(std::move(node),
                                        IsNotNull(Col(key_filter_attr)));
  }
  if (root.IsGrouped()) {
    std::vector<AggSpec> aggs;
    aggs.reserve(root.aggregates.size());
    for (const QueryBlock::RootAgg& a : root.aggregates) {
      aggs.push_back({ToAggFunc(a.func), a.column, a.output_name});
    }
    node = std::make_unique<AggregateNode>(std::move(node), root.group_by,
                                           std::move(aggs));
    if (root.having != nullptr) {
      node = std::make_unique<FilterNode>(std::move(node),
                                          root.having->Clone());
    }
  }
  if (!root.order_by.empty()) {
    std::vector<SortKey> keys;
    keys.reserve(root.order_by.size());
    for (const QueryBlock::OrderItem& item : root.order_by) {
      keys.push_back({item.column, item.ascending});
    }
    node = std::make_unique<SortNode>(std::move(node), std::move(keys),
                                      num_threads, vectorized);
  }
  node = std::make_unique<ProjectNode>(std::move(node), root.select_list);
  if (root.distinct) {
    // DistinctNode emits first occurrences in input order, preserving the
    // sort above.
    node = std::make_unique<DistinctNode>(std::move(node));
  }
  if (root.limit >= 0) {
    node = std::make_unique<LimitNode>(std::move(node), root.limit);
  }
  if (timer.active()) {
    node->SetPhaseRecursive(QueryPhase::kPostProcessing);
    node->EnableTimingRecursive();
  }
  int64_t out_bytes = 0;
  NESTRA_ASSIGN_OR_RETURN(Table out,
                          CollectTable(node.get(), vectorized, &out_bytes));
  FlushOperatorMetrics(*node);
  NESTRA_RETURN_NOT_OK(
      FoldStageMem(&timer, out_bytes, TreePeakMemBytes(*node) + out_bytes));
  if (timer.active()) {
    timer.Finish(out.num_rows(), ProfiledOperator::Snapshot(*node));
  } else {
    timer.Finish(out.num_rows());
  }
  return out;
}

bool AllEquiCorrelation(const QueryBlock& child, const Schema& outer_schema,
                        const Schema& child_schema,
                        std::vector<std::string>* outer_cols,
                        std::vector<std::string>* child_cols) {
  outer_cols->clear();
  child_cols->clear();
  if (child.correlated_preds.empty()) return false;
  for (const ExprPtr& p : child.correlated_preds) {
    const auto* cmp = dynamic_cast<const Comparison*>(p.get());
    if (cmp == nullptr || cmp->op() != CmpOp::kEq) return false;
    const auto* l = dynamic_cast<const ColumnRef*>(&cmp->lhs());
    const auto* r = dynamic_cast<const ColumnRef*>(&cmp->rhs());
    if (l == nullptr || r == nullptr) return false;
    const bool l_outer = outer_schema.Resolve(l->name()).ok();
    const bool l_child = child_schema.Resolve(l->name()).ok();
    const bool r_outer = outer_schema.Resolve(r->name()).ok();
    const bool r_child = child_schema.Resolve(r->name()).ok();
    if (l_outer && !l_child && r_child && !r_outer) {
      outer_cols->push_back(l->name());
      child_cols->push_back(r->name());
    } else if (r_outer && !r_child && l_child && !l_outer) {
      outer_cols->push_back(r->name());
      child_cols->push_back(l->name());
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace nestra
