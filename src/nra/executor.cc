#include "nra/executor.h"

#include <algorithm>
#include <chrono>

#include "common/memory_tracker.h"
#include "exec/distinct.h"
#include "exec/filter.h"
#include "exec/project.h"
#include "exec/set_ops.h"
#include "exec/sort.h"
#include "sql/parser.h"
#include "nested/fused_nest_select.h"
#include "nested/linking_selection.h"
#include "nested/nest.h"
#include "nra/cost.h"
#include "nra/pipeline.h"
#include "nra/planner.h"
#include "nra/profile.h"
#include "nra/rewrites.h"
#include "plan/binder.h"
#include "storage/io_sim.h"
#include "verify/properties.h"
#include "telemetry/engine_metrics.h"
#include "telemetry/slow_query.h"
#include "telemetry/trace.h"
#include "verify/verifier.h"

namespace nestra {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Parse/bind failures never reach Execute's error accounting, so the SQL
// entry points bump the error counter themselves on those paths.
void CountQueryError() {
  if (telemetry::MetricsEnabled()) {
    telemetry::Metrics().query_errors_total->Add(1);
  }
}

void MaybeLogSlowQuery(const std::string& sql, double threshold_ms,
                       double total_ms, const NraStats& stats, bool ok,
                       int num_threads, bool vectorized,
                       const std::string& session) {
  if (total_ms <= threshold_ms) return;
  telemetry::SlowQueryRecord rec;
  rec.sql = sql;
  rec.total_ms = total_ms;
  rec.join_ms = stats.join_seconds * 1e3;
  rec.nest_select_ms = stats.nest_select_seconds * 1e3;
  rec.output_rows = stats.output_rows;
  rec.num_threads = num_threads;
  rec.vectorized = vectorized;
  rec.ok = ok;
  rec.session = session;
  rec.peak_mem_bytes = stats.peak_mem_bytes;
  telemetry::LogSlowQuery(rec);
}

// Logical bytes of a nested relation: the atom rows plus every group tuple,
// recursively. Lives here (not in common/) because common/ sits below
// nested/ in the link order.
int64_t NestedTupleBytes(const NestedTuple& tuple) {
  int64_t bytes = static_cast<int64_t>(sizeof(NestedTuple)) -
                  static_cast<int64_t>(sizeof(Row)) + RowBytes(tuple.atoms);
  for (const auto& group : tuple.groups) {
    for (const NestedTuple& nt : group) bytes += NestedTupleBytes(nt);
  }
  return bytes;
}

int64_t NestedRelationBytes(const NestedRelation& rel) {
  int64_t bytes = 0;
  for (const NestedTuple& t : rel.tuples()) bytes += NestedTupleBytes(t);
  return bytes;
}

// Per-phase statement counters: the prepared-statement layer proves its
// "parse+plan once" contract by observing these stay flat across
// re-executions (see tests/server_test.cc).
void CountStatementParsed() {
  if (telemetry::MetricsEnabled()) {
    telemetry::Metrics().statements_parsed_total->Add(1);
  }
}

void CountStatementBound(int selects) {
  if (telemetry::MetricsEnabled()) {
    telemetry::Metrics().statements_bound_total->Add(selects);
  }
}

// N2 of the nest for a child link: (linked attribute, key attribute),
// deduplicated (EXISTS links use the key as the linked attribute; COUNT(*)
// aggregate links have no linked attribute at all).
std::vector<std::string> NestedAttrsFor(const QueryBlock& child) {
  std::vector<std::string> n2;
  if (!child.linked_attr.empty()) n2.push_back(child.linked_attr);
  if (child.key_attr != child.linked_attr) n2.push_back(child.key_attr);
  return n2;
}

LinkingPredicate PredFor(const QueryBlock& child, const std::string& group) {
  return child.MakeLinkPredicate(group);
}

std::vector<SortKey> SortKeysFor(const std::vector<std::string>& attrs) {
  std::vector<SortKey> keys;
  keys.reserve(attrs.size());
  for (const std::string& a : attrs) keys.push_back({a, /*ascending=*/true});
  return keys;
}

}  // namespace

Result<Table> NraExecutor::Execute(const QueryBlock& root, NraStats* stats,
                                   QueryProfile* profile) {
  NraStats local;
  if (stats == nullptr) stats = &local;
  *stats = NraStats();

  // Query-scoped memory accounting: every materializing site below charges
  // into this tracker (via the thread-local installed here), and each stage
  // folds its footprint at a serial point, so the peak is deterministic at
  // fixed (engine, threads, options). The soft limit (options_.max_query_mem)
  // is enforced inside Charge/FoldStage.
  QueryMemoryTracker mem_tracker(options_.max_query_mem);
  ScopedQueryMemory scoped_mem(&mem_tracker);

  // Per-executor trace opt-in: equivalent to NESTRA_TRACE_JSON, installed
  // lazily (idempotent when the sink is already at this path).
  if (!options_.trace_path.empty()) {
    telemetry::InstallTraceSink(options_.trace_path);
  }

  // Profiling is opt-in twice over: the caller must pass a sink AND set
  // options.profile. Otherwise `prof` stays null and every stage helper
  // degenerates to the unprofiled code path. The process-wide metrics
  // registry is an independent consumer of the same baselines.
  QueryProfile* prof =
      (options_.profile && profile != nullptr) ? profile : nullptr;
  const bool metrics = telemetry::MetricsEnabled();
  IoSim* sim = (prof != nullptr || metrics) ? IoSim::Get() : nullptr;
  int64_t io_hits0 = 0, io_seq0 = 0, io_rand0 = 0;
  double sim_ms0 = 0;
  PoolStatsSnapshot pool0;
  Clock::time_point query_start;
  if (prof != nullptr || metrics) {
    if (sim != nullptr) {
      io_hits0 = sim->hits();
      io_seq0 = sim->seq_misses();
      io_rand0 = sim->random_misses();
      sim_ms0 = sim->SimMillis();
    }
    pool0 = GlobalPoolStats();  // baseline; delta taken at the end
    query_start = Clock::now();
  }
  if (prof != nullptr) {
    prof->Clear();
    prof->pool = pool0;
    // Planner-side row estimates, keyed by the stage labels the execution
    // paths emit; EXPLAIN ANALYZE prints them next to the actual counts.
    prof->estimates = EstimateStages(root, catalog_);
  }

  // Static invariant check before any table is touched: a plan that would
  // violate the paper's nest / selection-mode / key-survival rules must not
  // run (it could silently return wrong answers, not just fail).
  if (options_.verify_plans) {
    Status verified;
    {
      telemetry::TraceSpan verify_span("query", "verify");
      verified = VerifyPlan(root, catalog_, options_);
    }
    if (metrics) {
      const telemetry::EngineMetrics& m = telemetry::Metrics();
      m.plans_verified_total->Add(1);
      if (!verified.ok()) {
        m.verify_failures_total->Add(1);
        m.query_errors_total->Add(1);
      }
    }
    NESTRA_RETURN_NOT_OK(verified);
  }

  telemetry::TraceSpan exec_span("query", "execute");
  Result<Table> result = [&]() -> Result<Table> {
    if (root.children.empty()) {
      const auto t0 = Clock::now();
      NESTRA_ASSIGN_OR_RETURN(
          Table rel,
          EvalBlockBase(root, catalog_, num_threads_, prof,
                        options_.vectorized, options_.two_valued,
                        options_.cost_based));
      stats->join_seconds += Seconds(t0);
      stats->intermediate_rows = rel.num_rows();
      return FinishRoot(root, std::move(rel), prof);
    }
    if (options_.bottom_up_linear && root.IsLinearCorrelated()) {
      NESTRA_ASSIGN_OR_RETURN(std::vector<const QueryBlock*> chain,
                              LinearChain(root));
      return options_.pipelined ? ExecuteBottomUpLinearDag(chain, stats, prof)
                                : ExecuteBottomUpLinear(chain, stats, prof);
    }
    // The single-sort fused path folds every level into one pass, but it
    // bypasses the per-child rewrites; when those are requested, route
    // through the recursive path (which still fuses each level when
    // options_.fused is set).
    if (options_.fused && root.IsLinear() && !options_.push_down_nest &&
        !options_.rewrite_positive) {
      NESTRA_ASSIGN_OR_RETURN(std::vector<const QueryBlock*> chain,
                              LinearChain(root));
      // A non-correlated block in the chain would force the wide join to be
      // an actual Cartesian product; the recursive path evaluates it as a
      // virtual one instead.
      bool all_correlated = true;
      for (size_t i = 1; i < chain.size(); ++i) {
        all_correlated = all_correlated && !chain[i]->correlated_preds.empty();
      }
      // Proven-2VL bypass: when the chain's leaf link can run as a plain
      // antijoin, the recursive path takes it; the fused pipeline would push
      // the same link through 3VL member handling.
      if (FusedChainBypassesTwoValued(chain, catalog_, options_)) {
        all_correlated = false;
      }
      // Cost-gated rewrites (§4.2.5 / §4.2.4) likewise only fire on the
      // recursive path; route there when the estimator says one applies.
      if (FusedChainBypassesForCost(chain, catalog_, options_)) {
        all_correlated = false;
      }
      if (all_correlated) {
        return options_.pipelined
                   ? ExecuteFusedLinearDag(chain, stats, prof)
                   : ExecuteFusedLinear(chain, stats, prof);
      }
    }
    if (options_.pipelined) {
      return ExecutePipelinedRecursive(root, stats, prof);
    }
    const auto t0 = Clock::now();
    NESTRA_ASSIGN_OR_RETURN(
        Table rel, EvalBlockBase(root, catalog_, num_threads_, prof,
                                 options_.vectorized, options_.two_valued,
                        options_.cost_based));
    stats->join_seconds += Seconds(t0);
    std::vector<const QueryBlock*> path{&root};
    NESTRA_ASSIGN_OR_RETURN(rel, ComputeNode(root, std::move(rel),
                                             root.attributes, &path, stats,
                                             prof));
    return FinishRoot(root, std::move(rel), prof);
  }();

  // Peak is meaningful on every outcome (a memory-failed query reports how
  // far it got); stage folds have all happened by now — the lambda above ran
  // every stage to completion or returned early.
  stats->peak_mem_bytes = mem_tracker.peak();
  if (result.ok()) {
    stats->output_rows = result->num_rows();
    exec_span.set_rows(result->num_rows());
  }
  exec_span.End();
  if (prof != nullptr && result.ok()) {
    prof->peak_mem_bytes = stats->peak_mem_bytes;
    prof->output_rows = result->num_rows();
    prof->total_seconds = Seconds(query_start);
    if (sim != nullptr) {
      prof->io_hits = sim->hits() - io_hits0;
      prof->io_seq_misses = sim->seq_misses() - io_seq0;
      prof->io_random_misses = sim->random_misses() - io_rand0;
      prof->sim_io_millis = sim->SimMillis() - sim_ms0;
    }
    prof->pool = GlobalPoolStats() - pool0;
  }
  if (metrics) {
    const telemetry::EngineMetrics& m = telemetry::Metrics();
    if (result.ok()) {
      m.queries_total->Add(1);
      m.rows_out_total->Add(static_cast<double>(result->num_rows()));
      m.intermediate_rows_total->Add(
          static_cast<double>(stats->intermediate_rows));
      m.query_ms->Observe(Seconds(query_start) * 1e3);
      if (sim != nullptr) {
        m.io_hits_total->Add(static_cast<double>(sim->hits() - io_hits0));
        m.io_seq_misses_total->Add(
            static_cast<double>(sim->seq_misses() - io_seq0));
        m.io_random_misses_total->Add(
            static_cast<double>(sim->random_misses() - io_rand0));
        m.io_sim_millis_total->Add(sim->SimMillis() - sim_ms0);
      }
      const PoolStatsSnapshot pool_delta = GlobalPoolStats() - pool0;
      m.pool_parallel_loops_total->Add(
          static_cast<double>(pool_delta.parallel_loops));
      m.pool_tasks_total->Add(static_cast<double>(pool_delta.tasks_submitted));
      m.pool_wait_seconds_total->Add(pool_delta.wait_seconds);
      m.query_peak_mem_bytes->Observe(
          static_cast<double>(stats->peak_mem_bytes));
    } else {
      m.query_errors_total->Add(1);
      if (result.status().code() == StatusCode::kResourceExhausted) {
        m.mem_limit_exceeded_total->Add(1);
      }
    }
  }
  return result;
}

Result<Table> NraExecutor::ExecuteSql(const std::string& sql, NraStats* stats,
                                      QueryProfile* profile) {
  if (!options_.trace_path.empty()) {
    telemetry::InstallTraceSink(options_.trace_path);
  }
  NraStats local;
  if (stats == nullptr) stats = &local;
  const bool slow_log = options_.slow_query_ms > 0;
  Clock::time_point sql_start;
  if (slow_log) sql_start = Clock::now();

  Result<Table> result = [&]() -> Result<Table> {
    Result<AstSelectPtr> ast = [&] {
      telemetry::TraceSpan parse_span("query", "parse");
      return ParseSelect(sql);
    }();
    if (!ast.ok()) {
      CountQueryError();
      return ast.status();
    }
    CountStatementParsed();
    Result<QueryBlockPtr> root = [&] {
      telemetry::TraceSpan plan_span("query", "plan");
      return BindQuery(**ast, catalog_);
    }();
    if (!root.ok()) {
      CountQueryError();
      return root.status();
    }
    CountStatementBound(1);
    return Execute(**root, stats, profile);
  }();

  if (slow_log) {
    MaybeLogSlowQuery(sql, options_.slow_query_ms, Seconds(sql_start) * 1e3,
                      *stats, result.ok(), num_threads_, options_.vectorized,
                      options_.session_label);
  }
  return result;
}

Result<Table> NraExecutor::ExecuteStatementSql(const std::string& sql,
                                               NraStats* stats,
                                               QueryProfile* profile) {
  if (!options_.trace_path.empty()) {
    telemetry::InstallTraceSink(options_.trace_path);
  }
  const bool slow_log = options_.slow_query_ms > 0;
  Clock::time_point sql_start;
  if (slow_log) sql_start = Clock::now();

  Result<AstStatementPtr> parsed = [&] {
    telemetry::TraceSpan parse_span("query", "parse");
    return ParseStatement(sql);
  }();
  if (!parsed.ok()) {
    CountQueryError();
    return parsed.status();
  }
  CountStatementParsed();
  AstStatementPtr stmt = std::move(*parsed);
  QueryProfile* prof =
      (options_.profile && profile != nullptr) ? profile : nullptr;
  const bool multi_branch = stmt->selects.size() > 1;
  if (prof != nullptr) prof->Clear();
  NraStats total;
  Table combined;
  for (size_t i = 0; i < stmt->selects.size(); ++i) {
    Result<QueryBlockPtr> bound = [&] {
      telemetry::TraceSpan plan_span("query", "plan");
      return BindQuery(*stmt->selects[i], catalog_);
    }();
    if (!bound.ok()) {
      CountQueryError();
      return bound.status();
    }
    CountStatementBound(1);
    QueryBlockPtr root = std::move(*bound);
    NraStats branch;
    // Execute Clears the profile it is handed, so each branch profiles into
    // its own sink and the stages merge afterwards under a branch prefix.
    QueryProfile branch_profile;
    NESTRA_ASSIGN_OR_RETURN(
        Table result,
        Execute(*root, &branch, prof != nullptr ? &branch_profile : nullptr));
    if (prof != nullptr) {
      prof->Absorb(branch_profile,
                   multi_branch ? "branch" + std::to_string(i) + ": " : "");
    }
    total.join_seconds += branch.join_seconds;
    total.nest_select_seconds += branch.nest_select_seconds;
    total.intermediate_rows =
        std::max(total.intermediate_rows, branch.intermediate_rows);
    // Branches run sequentially, each with its own tracker, so the
    // statement's peak is the largest branch peak — not the sum.
    total.peak_mem_bytes =
        std::max(total.peak_mem_bytes, branch.peak_mem_bytes);
    if (i == 0) {
      combined = std::move(result);
      continue;
    }
    switch (stmt->ops[i - 1]) {
      case AstStatement::SetOp::kUnionAll: {
        NESTRA_ASSIGN_OR_RETURN(combined,
                                UnionAll(std::move(combined), result));
        break;
      }
      case AstStatement::SetOp::kUnion: {
        NESTRA_ASSIGN_OR_RETURN(combined, UnionDistinct(combined, result));
        break;
      }
      case AstStatement::SetOp::kIntersect: {
        NESTRA_ASSIGN_OR_RETURN(combined, Intersect(combined, result));
        break;
      }
      case AstStatement::SetOp::kExcept: {
        NESTRA_ASSIGN_OR_RETURN(combined, Except(combined, result));
        break;
      }
    }
  }
  total.output_rows = combined.num_rows();
  if (stats != nullptr) *stats = total;
  if (prof != nullptr) prof->output_rows = combined.num_rows();
  if (slow_log) {
    MaybeLogSlowQuery(sql, options_.slow_query_ms, Seconds(sql_start) * 1e3,
                      total, /*ok=*/true, num_threads_, options_.vectorized,
                      options_.session_label);
  }
  return combined;
}

Result<Table> NraExecutor::ExecuteFusedLinear(
    const std::vector<const QueryBlock*>& chain, NraStats* stats,
    QueryProfile* profile) {
  const int n = static_cast<int>(chain.size());

  // Top-down join phase: one wide relation W over all blocks.
  auto t0 = Clock::now();
  NESTRA_ASSIGN_OR_RETURN(
      Table rel, EvalBlockBase(*chain[0], catalog_, num_threads_, profile,
                              options_.vectorized, options_.two_valued,
                        options_.cost_based));
  for (int k = 1; k < n; ++k) {
    NESTRA_ASSIGN_OR_RETURN(
        Table base, EvalBlockBase(*chain[k], catalog_, num_threads_, profile,
                                  options_.vectorized, options_.two_valued,
                        options_.cost_based));
    if (options_.magic_restriction) {
      StageTimer magic_timer(profile, QueryPhase::kUnnestJoin,
                             "magic[b" + std::to_string(chain[k]->id) + "]");
      NESTRA_ASSIGN_OR_RETURN(base,
                              MagicRestrict(rel, std::move(base), *chain[k]));
      NESTRA_RETURN_NOT_OK(FoldStageMem(&magic_timer, TableBytes(base)));
      magic_timer.Finish(base.num_rows());
    }
    const std::vector<const QueryBlock*> jpath(chain.begin(),
                                               chain.begin() + k);
    NESTRA_ASSIGN_OR_RETURN(
        rel, JoinWithChild(std::move(rel), std::move(base), *chain[k],
                           JoinType::kLeftOuter, /*extra_condition=*/nullptr,
                           num_threads_, profile, options_.vectorized,
                           JoinStrategyFor(*chain[k], jpath, catalog_,
                                           options_)));
  }
  stats->join_seconds += Seconds(t0);
  stats->intermediate_rows = rel.num_rows();

  // Bottom-up phase: single sort + single streaming pass over all levels.
  t0 = Clock::now();
  std::vector<FusedLevelSpec> levels;
  std::vector<std::string> prefix;
  for (int k = 0; k + 1 < n; ++k) {
    for (const std::string& a : chain[k]->attributes) prefix.push_back(a);
    FusedLevelSpec spec;
    spec.nesting_attrs = prefix;
    spec.pred = PredFor(*chain[k + 1], /*group=*/"");
    spec.mode = k == 0 ? SelectionMode::kStrict : SelectionMode::kPseudo;
    levels.push_back(std::move(spec));
  }
  auto sort = std::make_unique<SortNode>(
      std::make_unique<TableSourceNode>(std::move(rel)),
      SortKeysFor(levels.back().nesting_attrs), num_threads_,
      options_.vectorized);
  // Pre-tag the sort subtree as the nest phase: CollectProfiled only fills
  // in still-unattributed nodes, so the fused evaluator itself lands in
  // linking-selection while its sort input counts as nesting work.
  sort->SetPhaseRecursive(QueryPhase::kNest);
  auto fused =
      std::make_unique<FusedNestSelectNode>(std::move(sort), std::move(levels));
  NESTRA_ASSIGN_OR_RETURN(
      Table reduced,
      CollectProfiled(fused.get(), QueryPhase::kLinkingSelection,
                      "fused nest+select", profile, options_.vectorized));
  stats->nest_select_seconds += Seconds(t0);

  return FinishRoot(*chain[0], std::move(reduced), profile);
}

Result<Table> NraExecutor::ExecuteBottomUpLinear(
    const std::vector<const QueryBlock*>& chain, NraStats* stats,
    QueryProfile* profile) {
  const int n = static_cast<int>(chain.size());

  auto t0 = Clock::now();
  NESTRA_ASSIGN_OR_RETURN(
      Table cur, EvalBlockBase(*chain[n - 1], catalog_, num_threads_, profile,
                              options_.vectorized, options_.two_valued,
                        options_.cost_based));
  stats->join_seconds += Seconds(t0);

  for (int k = n - 2; k >= 0; --k) {
    const QueryBlock& outer = *chain[k];
    const QueryBlock& child = *chain[k + 1];
    t0 = Clock::now();
    NESTRA_ASSIGN_OR_RETURN(
        Table outer_base,
        EvalBlockBase(outer, catalog_, num_threads_, profile,
                      options_.vectorized, options_.two_valued,
                        options_.cost_based));
    stats->join_seconds += Seconds(t0);

    // In the bottom-up order only (outer, child) tuples exist when the
    // linking predicate is computed, so the strict selection is always
    // sound: a dropped outer tuple would fail anyway, and padding for an
    // empty child set still happens via the outer join.
    std::vector<std::string> okeys, ikeys;
    if (AllEquiCorrelation(child, outer_base.schema(), cur.schema(), &okeys,
                           &ikeys)) {
      t0 = Clock::now();
      StageTimer link_timer(profile, QueryPhase::kLinkingSelection,
                            "link-select[b" + std::to_string(child.id) + "]");
      NESTRA_ASSIGN_OR_RETURN(
          cur, HashLinkSelect(std::move(outer_base), cur, okeys, ikeys, child,
                              SelectionMode::kStrict, {}, num_threads_));
      NESTRA_RETURN_NOT_OK(FoldStageMem(&link_timer, TableBytes(cur)));
      link_timer.Finish(cur.num_rows());
      stats->nest_select_seconds += Seconds(t0);
    } else {
      t0 = Clock::now();
      NESTRA_ASSIGN_OR_RETURN(
          Table joined,
          JoinWithChild(std::move(outer_base), std::move(cur), child,
                        JoinType::kLeftOuter, /*extra_condition=*/nullptr,
                        num_threads_, profile, options_.vectorized));
      stats->join_seconds += Seconds(t0);
      stats->intermediate_rows =
          std::max(stats->intermediate_rows, joined.num_rows());
      t0 = Clock::now();
      StageTimer nest_timer(profile, QueryPhase::kNest,
                            "nest[b" + std::to_string(child.id) + "]");
      NESTRA_ASSIGN_OR_RETURN(
          NestedRelation nested,
          Nest(joined, outer.attributes, NestedAttrsFor(child), "g",
               options_.nest_method, num_threads_));
      NESTRA_RETURN_NOT_OK(
          FoldStageMem(&nest_timer, NestedRelationBytes(nested)));
      nest_timer.Finish(nested.num_tuples());
      StageTimer select_timer(profile, QueryPhase::kLinkingSelection,
                              "select[b" + std::to_string(child.id) + "]");
      NESTRA_ASSIGN_OR_RETURN(
          cur, LinkingSelect(nested, PredFor(child, "g"),
                             SelectionMode::kStrict));
      NESTRA_RETURN_NOT_OK(FoldStageMem(&select_timer, TableBytes(cur)));
      select_timer.Finish(cur.num_rows());
      stats->nest_select_seconds += Seconds(t0);
    }
  }
  return FinishRoot(*chain[0], std::move(cur), profile);
}

Result<Table> NraExecutor::ComputeNode(const QueryBlock& node, Table rel,
                                       const std::vector<std::string>& retained,
                                       std::vector<const QueryBlock*>* path,
                                       NraStats* stats,
                                       QueryProfile* profile) {
  for (const auto& child_ptr : node.children) {
    const QueryBlock& child = *child_ptr;
    const std::string bid = std::to_string(child.id);

    auto t0 = Clock::now();
    NESTRA_ASSIGN_OR_RETURN(
        Table base, EvalBlockBase(child, catalog_, num_threads_, profile,
                                  options_.vectorized, options_.two_valued,
                        options_.cost_based));
    stats->join_seconds += Seconds(t0);

    const bool strict_safe = StrictSafe(*path);
    const SelectionMode mode =
        strict_safe ? SelectionMode::kStrict : SelectionMode::kPseudo;

    // §4.2.5: positive leaf link -> semijoin, when dropping is safe.
    // Flag-forced, or cost-gated when the estimated join intermediate is
    // large (nra/cost.h mirrors this predicate for EXPLAIN/verify).
    if (TakesSemijoinRewrite(child, *path, strict_safe, catalog_, options_)) {
      NESTRA_ASSIGN_OR_RETURN(ExprPtr extra, PositiveLinkJoinCondition(child));
      t0 = Clock::now();
      NESTRA_ASSIGN_OR_RETURN(
          rel, JoinWithChild(std::move(rel), std::move(base), child,
                             JoinType::kLeftSemi, std::move(extra),
                             num_threads_, profile, options_.vectorized,
                             JoinStrategyFor(child, *path, catalog_,
                                             options_)));
      stats->join_seconds += Seconds(t0);
      continue;
    }

    // Proven-2VL fast path: a negative leaf link whose member comparison
    // can never go UNKNOWN (or NOT EXISTS, which has none) runs as a plain
    // antijoin — bit-identical to nest + pseudo-selection here because the
    // path is strict-safe and no member comparison can be UNKNOWN.
    if (TakesTwoValuedAntijoin(child, *path, catalog_, options_)) {
      NESTRA_ASSIGN_OR_RETURN(ExprPtr extra, AntiLinkJoinCondition(child));
      t0 = Clock::now();
      NESTRA_ASSIGN_OR_RETURN(
          rel, JoinWithChild(std::move(rel), std::move(base), child,
                             JoinType::kLeftAnti, std::move(extra),
                             num_threads_, profile, options_.vectorized,
                             JoinStrategyFor(child, *path, catalog_,
                                             options_)));
      stats->join_seconds += Seconds(t0);
      continue;
    }

    // Non-correlated leaf subquery: the paper's "virtual Cartesian
    // product" — the subquery executes once and its (single, shared) value
    // set is tested against every outer tuple, instead of materializing an
    // actual cross join. HashLinkSelect with an empty key list is exactly
    // that: one group holding the whole subquery result.
    if (child.IsLeaf() && child.correlated_preds.empty()) {
      t0 = Clock::now();
      StageTimer link_timer(profile, QueryPhase::kLinkingSelection,
                            "link-select[b" + bid + "]");
      NESTRA_ASSIGN_OR_RETURN(
          rel, HashLinkSelect(std::move(rel), base, /*outer_key_cols=*/{},
                              /*inner_key_cols=*/{}, child, mode,
                              node.attributes, num_threads_));
      NESTRA_RETURN_NOT_OK(FoldStageMem(&link_timer, TableBytes(rel)));
      link_timer.Finish(rel.num_rows());
      stats->nest_select_seconds += Seconds(t0);
      continue;
    }

    // §4.2.4: equi-correlated leaf -> nest pushed below the join.
    {
      std::vector<std::string> okeys, ikeys;
      if (TakesNestPushDown(child, *path, catalog_, options_) &&
          AllEquiCorrelation(child, rel.schema(), base.schema(), &okeys,
                             &ikeys)) {
        t0 = Clock::now();
        StageTimer link_timer(profile, QueryPhase::kLinkingSelection,
                              "link-select[b" + bid + "]");
        NESTRA_ASSIGN_OR_RETURN(
            rel, HashLinkSelect(std::move(rel), base, okeys, ikeys, child,
                                mode, node.attributes, num_threads_));
        NESTRA_RETURN_NOT_OK(FoldStageMem(&link_timer, TableBytes(rel)));
        link_timer.Finish(rel.num_rows());
        stats->nest_select_seconds += Seconds(t0);
        continue;
      }
    }

    // Algorithm 1, way down: outer join on the correlated predicates.
    t0 = Clock::now();
    if (options_.magic_restriction) {
      StageTimer magic_timer(profile, QueryPhase::kUnnestJoin,
                             "magic[b" + bid + "]");
      NESTRA_ASSIGN_OR_RETURN(base, MagicRestrict(rel, std::move(base), child));
      NESTRA_RETURN_NOT_OK(FoldStageMem(&magic_timer, TableBytes(base)));
      magic_timer.Finish(base.num_rows());
    }
    NESTRA_ASSIGN_OR_RETURN(
        rel, JoinWithChild(std::move(rel), std::move(base), child,
                           JoinType::kLeftOuter, /*extra_condition=*/nullptr,
                           num_threads_, profile, options_.vectorized,
                           JoinStrategyFor(child, *path, catalog_,
                                           options_)));
    stats->join_seconds += Seconds(t0);
    stats->intermediate_rows =
        std::max(stats->intermediate_rows, rel.num_rows());

    // Recurse into the child's own subqueries.
    std::vector<std::string> retained_child = retained;
    for (const std::string& a : child.attributes) {
      retained_child.push_back(a);
    }
    path->push_back(&child);
    NESTRA_ASSIGN_OR_RETURN(
        rel, ComputeNode(child, std::move(rel), retained_child, path, stats,
                         profile));
    path->pop_back();

    // Algorithm 1, way up: nest by the retained prefix and apply the
    // linking selection (padding the current node's attributes in pseudo
    // mode).
    t0 = Clock::now();
    if (options_.fused) {
      FusedLevelSpec spec;
      spec.nesting_attrs = retained;
      spec.pred = PredFor(child, /*group=*/"");
      spec.mode = mode;
      spec.pad_attrs = node.attributes;
      auto sort = std::make_unique<SortNode>(
          std::make_unique<TableSourceNode>(std::move(rel)),
          SortKeysFor(retained), num_threads_, options_.vectorized);
      sort->SetPhaseRecursive(QueryPhase::kNest);
      std::vector<FusedLevelSpec> levels;
      levels.push_back(std::move(spec));
      auto fused = std::make_unique<FusedNestSelectNode>(std::move(sort),
                                                         std::move(levels));
      NESTRA_ASSIGN_OR_RETURN(
          rel,
          CollectProfiled(fused.get(), QueryPhase::kLinkingSelection,
                          "fused[b" + bid + "]", profile,
                          options_.vectorized));
    } else {
      StageTimer nest_timer(profile, QueryPhase::kNest, "nest[b" + bid + "]");
      NESTRA_ASSIGN_OR_RETURN(
          NestedRelation nested,
          Nest(rel, retained, NestedAttrsFor(child), "g",
               options_.nest_method, num_threads_));
      NESTRA_RETURN_NOT_OK(
          FoldStageMem(&nest_timer, NestedRelationBytes(nested)));
      nest_timer.Finish(nested.num_tuples());
      StageTimer select_timer(profile, QueryPhase::kLinkingSelection,
                              "select[b" + bid + "]");
      NESTRA_ASSIGN_OR_RETURN(
          rel, LinkingSelect(nested, PredFor(child, "g"), mode,
                             node.attributes));
      NESTRA_RETURN_NOT_OK(FoldStageMem(&select_timer, TableBytes(rel)));
      select_timer.Finish(rel.num_rows());
    }
    stats->nest_select_seconds += Seconds(t0);
  }
  return rel;
}

Result<Table> NraExecutor::ExecuteFusedLinearDag(
    const std::vector<const QueryBlock*>& chain, NraStats* stats,
    QueryProfile* profile) {
  const int n = static_cast<int>(chain.size());
  StageDag dag;
  // Slots the task bodies exchange. Everything here outlives dag.Run(),
  // which blocks until the last task finished; the DAG's dependency edges
  // order the accesses.
  std::vector<Table> bases(static_cast<size_t>(n));
  Table rel;
  Table out;

  // The base evaluations are this shape's independent pipelines: every
  // block's scan+filter(+join tree) can run at once. The wide-join chain
  // and the single sort+fused pass stay sequential, each joining as soon
  // as its base (and the previous join) is ready.
  int prev = dag.AddTask(
      "base[b" + std::to_string(chain[0]->id) + "]", {},
      [&](NraStats* s, QueryProfile* p) -> Status {
        const auto t0 = Clock::now();
        NESTRA_ASSIGN_OR_RETURN(
            rel, EvalBlockBase(*chain[0], catalog_, num_threads_, p,
                               options_.vectorized, options_.two_valued,
                        options_.cost_based));
        s->join_seconds += Seconds(t0);
        return Status::OK();
      });
  for (int k = 1; k < n; ++k) {
    const std::string bid = std::to_string(chain[k]->id);
    const int base_task = dag.AddTask(
        "base[b" + bid + "]", {},
        [&, k](NraStats* s, QueryProfile* p) -> Status {
          const auto t0 = Clock::now();
          NESTRA_ASSIGN_OR_RETURN(
              bases[k], EvalBlockBase(*chain[k], catalog_, num_threads_, p,
                                      options_.vectorized,
                                      options_.two_valued,
                        options_.cost_based));
          s->join_seconds += Seconds(t0);
          return Status::OK();
        });
    // Hints are plan+catalog functions, so they can be decided at DAG build
    // time and captured by value (chain is only borrowed until Run()).
    const JoinBuildHints hints = JoinStrategyFor(
        *chain[k],
        std::vector<const QueryBlock*>(chain.begin(), chain.begin() + k),
        catalog_, options_);
    prev = dag.AddTask(
        "join[b" + bid + "]", {prev, base_task},
        [&, k, bid, hints](NraStats* s, QueryProfile* p) -> Status {
          const auto t0 = Clock::now();
          Table base = std::move(bases[k]);
          if (options_.magic_restriction) {
            StageTimer magic_timer(p, QueryPhase::kUnnestJoin,
                                   "magic[b" + bid + "]");
            NESTRA_ASSIGN_OR_RETURN(
                base, MagicRestrict(rel, std::move(base), *chain[k]));
            NESTRA_RETURN_NOT_OK(FoldStageMem(&magic_timer, TableBytes(base)));
            magic_timer.Finish(base.num_rows());
          }
          NESTRA_ASSIGN_OR_RETURN(
              rel, JoinWithChild(std::move(rel), std::move(base), *chain[k],
                                 JoinType::kLeftOuter,
                                 /*extra_condition=*/nullptr, num_threads_, p,
                                 options_.vectorized, hints));
          s->join_seconds += Seconds(t0);
          // Left-outer joins never shrink rel, so the running max merged
          // across tasks equals the staged path's final assignment.
          s->intermediate_rows = std::max(s->intermediate_rows,
                                          rel.num_rows());
          return Status::OK();
        });
  }
  dag.AddTask(
      "fused-finish", {prev}, [&](NraStats* s, QueryProfile* p) -> Status {
        const auto t0 = Clock::now();
        std::vector<FusedLevelSpec> levels;
        std::vector<std::string> prefix;
        for (int k = 0; k + 1 < n; ++k) {
          for (const std::string& a : chain[k]->attributes) {
            prefix.push_back(a);
          }
          FusedLevelSpec spec;
          spec.nesting_attrs = prefix;
          spec.pred = PredFor(*chain[k + 1], /*group=*/"");
          spec.mode = k == 0 ? SelectionMode::kStrict : SelectionMode::kPseudo;
          levels.push_back(std::move(spec));
        }
        auto sort = std::make_unique<SortNode>(
            std::make_unique<TableSourceNode>(std::move(rel)),
            SortKeysFor(levels.back().nesting_attrs), num_threads_,
            options_.vectorized);
        sort->SetPhaseRecursive(QueryPhase::kNest);
        auto fused = std::make_unique<FusedNestSelectNode>(std::move(sort),
                                                           std::move(levels));
        NESTRA_ASSIGN_OR_RETURN(
            Table reduced,
            CollectProfiled(fused.get(), QueryPhase::kLinkingSelection,
                            "fused nest+select", p, options_.vectorized));
        s->nest_select_seconds += Seconds(t0);
        NESTRA_ASSIGN_OR_RETURN(out,
                                FinishRoot(*chain[0], std::move(reduced), p));
        return Status::OK();
      });
  NESTRA_RETURN_NOT_OK(dag.Run(num_threads_, stats, profile));
  return std::move(out);
}

Result<Table> NraExecutor::ExecuteBottomUpLinearDag(
    const std::vector<const QueryBlock*>& chain, NraStats* stats,
    QueryProfile* profile) {
  const int n = static_cast<int>(chain.size());
  StageDag dag;
  std::vector<Table> bases(static_cast<size_t>(n));
  Table cur;
  Table out;

  // Same independence structure as the fused shape: all base evaluations
  // fan out, the bottom-up reduction chain consumes them leaf to root.
  int prev = dag.AddTask(
      "base[b" + std::to_string(chain[n - 1]->id) + "]", {},
      [&](NraStats* s, QueryProfile* p) -> Status {
        const auto t0 = Clock::now();
        NESTRA_ASSIGN_OR_RETURN(
            cur, EvalBlockBase(*chain[n - 1], catalog_, num_threads_, p,
                               options_.vectorized, options_.two_valued,
                        options_.cost_based));
        s->join_seconds += Seconds(t0);
        return Status::OK();
      });
  for (int k = n - 2; k >= 0; --k) {
    const int base_task = dag.AddTask(
        "base[b" + std::to_string(chain[k]->id) + "]", {},
        [&, k](NraStats* s, QueryProfile* p) -> Status {
          const auto t0 = Clock::now();
          NESTRA_ASSIGN_OR_RETURN(
              bases[k], EvalBlockBase(*chain[k], catalog_, num_threads_, p,
                                      options_.vectorized,
                                      options_.two_valued,
                        options_.cost_based));
          s->join_seconds += Seconds(t0);
          return Status::OK();
        });
    prev = dag.AddTask(
        "reduce[b" + std::to_string(chain[k + 1]->id) + "]",
        {prev, base_task}, [&, k](NraStats* s, QueryProfile* p) -> Status {
          const QueryBlock& outer = *chain[k];
          const QueryBlock& child = *chain[k + 1];
          const std::string bid = std::to_string(child.id);
          Table outer_base = std::move(bases[k]);
          // §4.2.3's strict selection is always sound here; whether the
          // level runs as a pushed-down hash link-select needs both
          // materialized schemas, so the decision lives inside the task.
          std::vector<std::string> okeys, ikeys;
          if (AllEquiCorrelation(child, outer_base.schema(), cur.schema(),
                                 &okeys, &ikeys)) {
            const auto t0 = Clock::now();
            StageTimer link_timer(p, QueryPhase::kLinkingSelection,
                                  "link-select[b" + bid + "]");
            NESTRA_ASSIGN_OR_RETURN(
                cur, HashLinkSelect(std::move(outer_base), cur, okeys, ikeys,
                                    child, SelectionMode::kStrict, {},
                                    num_threads_));
            NESTRA_RETURN_NOT_OK(FoldStageMem(&link_timer, TableBytes(cur)));
            link_timer.Finish(cur.num_rows());
            s->nest_select_seconds += Seconds(t0);
          } else {
            auto t0 = Clock::now();
            NESTRA_ASSIGN_OR_RETURN(
                Table joined,
                JoinWithChild(std::move(outer_base), std::move(cur), child,
                              JoinType::kLeftOuter,
                              /*extra_condition=*/nullptr, num_threads_, p,
                              options_.vectorized));
            s->join_seconds += Seconds(t0);
            s->intermediate_rows =
                std::max(s->intermediate_rows, joined.num_rows());
            t0 = Clock::now();
            StageTimer nest_timer(p, QueryPhase::kNest, "nest[b" + bid + "]");
            NESTRA_ASSIGN_OR_RETURN(
                NestedRelation nested,
                Nest(joined, outer.attributes, NestedAttrsFor(child), "g",
                     options_.nest_method, num_threads_));
            NESTRA_RETURN_NOT_OK(
                FoldStageMem(&nest_timer, NestedRelationBytes(nested)));
            nest_timer.Finish(nested.num_tuples());
            StageTimer select_timer(p, QueryPhase::kLinkingSelection,
                                    "select[b" + bid + "]");
            NESTRA_ASSIGN_OR_RETURN(
                cur, LinkingSelect(nested, PredFor(child, "g"),
                                   SelectionMode::kStrict));
            NESTRA_RETURN_NOT_OK(FoldStageMem(&select_timer, TableBytes(cur)));
            select_timer.Finish(cur.num_rows());
            s->nest_select_seconds += Seconds(t0);
          }
          if (k == 0) {
            NESTRA_ASSIGN_OR_RETURN(out,
                                    FinishRoot(*chain[0], std::move(cur), p));
          }
          return Status::OK();
        });
  }
  NESTRA_RETURN_NOT_OK(dag.Run(num_threads_, stats, profile));
  return std::move(out);
}

Status NraExecutor::ApplyNestSelect(const QueryBlock& node,
                                    const QueryBlock& child,
                                    const std::vector<std::string>& retained,
                                    SelectionMode mode, Table* rel,
                                    QueryProfile* profile) {
  const std::string bid = std::to_string(child.id);
  if (options_.fused) {
    FusedLevelSpec spec;
    spec.nesting_attrs = retained;
    spec.pred = PredFor(child, /*group=*/"");
    spec.mode = mode;
    spec.pad_attrs = node.attributes;
    auto sort = std::make_unique<SortNode>(
        std::make_unique<TableSourceNode>(std::move(*rel)),
        SortKeysFor(retained), num_threads_, options_.vectorized);
    sort->SetPhaseRecursive(QueryPhase::kNest);
    std::vector<FusedLevelSpec> levels;
    levels.push_back(std::move(spec));
    auto fused = std::make_unique<FusedNestSelectNode>(std::move(sort),
                                                       std::move(levels));
    NESTRA_ASSIGN_OR_RETURN(
        *rel, CollectProfiled(fused.get(), QueryPhase::kLinkingSelection,
                              "fused[b" + bid + "]", profile,
                              options_.vectorized));
  } else {
    StageTimer nest_timer(profile, QueryPhase::kNest, "nest[b" + bid + "]");
    NESTRA_ASSIGN_OR_RETURN(
        NestedRelation nested,
        Nest(*rel, retained, NestedAttrsFor(child), "g", options_.nest_method,
             num_threads_));
    NESTRA_RETURN_NOT_OK(
        FoldStageMem(&nest_timer, NestedRelationBytes(nested)));
    nest_timer.Finish(nested.num_tuples());
    StageTimer select_timer(profile, QueryPhase::kLinkingSelection,
                            "select[b" + bid + "]");
    NESTRA_ASSIGN_OR_RETURN(*rel, LinkingSelect(nested, PredFor(child, "g"),
                                                mode, node.attributes));
    NESTRA_RETURN_NOT_OK(FoldStageMem(&select_timer, TableBytes(*rel)));
    select_timer.Finish(rel->num_rows());
  }
  return Status::OK();
}

int NraExecutor::BuildComputeTaskDag(StageDag* dag, const QueryBlock& node,
                                     std::vector<const QueryBlock*>* path,
                                     const std::vector<std::string>& retained,
                                     int prev, Table* rel,
                                     std::deque<Table>* bases) {
  for (const auto& child_ptr : node.children) {
    const QueryBlock& child = *child_ptr;
    const std::string bid = std::to_string(child.id);
    Table* base = &bases->emplace_back();
    const int base_task = dag->AddTask(
        "base[b" + bid + "]", {},
        [this, &child, base](NraStats* s, QueryProfile* p) -> Status {
          const auto t0 = Clock::now();
          NESTRA_ASSIGN_OR_RETURN(
              *base, EvalBlockBase(child, catalog_, num_threads_, p,
                                   options_.vectorized, options_.two_valued,
                        options_.cost_based));
          s->join_seconds += Seconds(t0);
          return Status::OK();
        });

    // Everything but AllEquiCorrelation (which needs materialized schemas)
    // is a function of the plan and catalog alone, so the branch ladder of
    // ComputeNode resolves while *building* the DAG; `path` here holds the
    // same chain the staged recursion would at this point.
    const bool strict_safe = StrictSafe(*path);
    const SelectionMode mode =
        strict_safe ? SelectionMode::kStrict : SelectionMode::kPseudo;
    // Cost decisions (join strategy, rewrite gates) are plan+catalog
    // functions too, so they resolve here and are captured by value — the
    // borrowed `path` vector is only valid during DAG construction.
    const JoinBuildHints hints =
        JoinStrategyFor(child, *path, catalog_, options_);

    if (TakesSemijoinRewrite(child, *path, strict_safe, catalog_,
                             options_)) {
      prev = dag->AddTask(
          "semijoin[b" + bid + "]", {prev, base_task},
          [this, &child, rel, base,
           hints](NraStats* s, QueryProfile* p) -> Status {
            NESTRA_ASSIGN_OR_RETURN(ExprPtr extra,
                                    PositiveLinkJoinCondition(child));
            const auto t0 = Clock::now();
            NESTRA_ASSIGN_OR_RETURN(
                *rel, JoinWithChild(std::move(*rel), std::move(*base), child,
                                    JoinType::kLeftSemi, std::move(extra),
                                    num_threads_, p, options_.vectorized,
                                    hints));
            s->join_seconds += Seconds(t0);
            return Status::OK();
          });
      continue;
    }

    if (TakesTwoValuedAntijoin(child, *path, catalog_, options_)) {
      prev = dag->AddTask(
          "antijoin[b" + bid + "]", {prev, base_task},
          [this, &child, rel, base,
           hints](NraStats* s, QueryProfile* p) -> Status {
            NESTRA_ASSIGN_OR_RETURN(ExprPtr extra,
                                    AntiLinkJoinCondition(child));
            const auto t0 = Clock::now();
            NESTRA_ASSIGN_OR_RETURN(
                *rel, JoinWithChild(std::move(*rel), std::move(*base), child,
                                    JoinType::kLeftAnti, std::move(extra),
                                    num_threads_, p, options_.vectorized,
                                    hints));
            s->join_seconds += Seconds(t0);
            return Status::OK();
          });
      continue;
    }

    if (child.IsLeaf() && child.correlated_preds.empty()) {
      prev = dag->AddTask(
          "link-select[b" + bid + "]", {prev, base_task},
          [this, &child, &node, rel, base, mode,
           bid](NraStats* s, QueryProfile* p) -> Status {
            const auto t0 = Clock::now();
            StageTimer link_timer(p, QueryPhase::kLinkingSelection,
                                  "link-select[b" + bid + "]");
            NESTRA_ASSIGN_OR_RETURN(
                *rel, HashLinkSelect(std::move(*rel), *base,
                                     /*outer_key_cols=*/{},
                                     /*inner_key_cols=*/{}, child, mode,
                                     node.attributes, num_threads_));
            NESTRA_RETURN_NOT_OK(FoldStageMem(&link_timer, TableBytes(*rel)));
            link_timer.Finish(rel->num_rows());
            s->nest_select_seconds += Seconds(t0);
            return Status::OK();
          });
      continue;
    }

    if (child.IsLeaf()) {
      // One combined task for a leaf taking neither rewrite: §4.2.4
      // push-down versus join+nest+select is the single run-time decision
      // (AllEquiCorrelation needs materialized schemas); whether push-down
      // is even on the table is decided here at build time.
      const bool take_push_down =
          TakesNestPushDown(child, *path, catalog_, options_);
      prev = dag->AddTask(
          "reduce[b" + bid + "]", {prev, base_task},
          [this, &child, &node, rel, base, mode, bid, retained,
           take_push_down, hints](NraStats* s, QueryProfile* p) -> Status {
            if (take_push_down) {
              std::vector<std::string> okeys, ikeys;
              if (AllEquiCorrelation(child, rel->schema(), base->schema(),
                                     &okeys, &ikeys)) {
                const auto t0 = Clock::now();
                StageTimer link_timer(p, QueryPhase::kLinkingSelection,
                                      "link-select[b" + bid + "]");
                NESTRA_ASSIGN_OR_RETURN(
                    *rel, HashLinkSelect(std::move(*rel), *base, okeys, ikeys,
                                         child, mode, node.attributes,
                                         num_threads_));
                NESTRA_RETURN_NOT_OK(
                    FoldStageMem(&link_timer, TableBytes(*rel)));
                link_timer.Finish(rel->num_rows());
                s->nest_select_seconds += Seconds(t0);
                return Status::OK();
              }
            }
            const auto t0 = Clock::now();
            if (options_.magic_restriction) {
              StageTimer magic_timer(p, QueryPhase::kUnnestJoin,
                                     "magic[b" + bid + "]");
              NESTRA_ASSIGN_OR_RETURN(
                  *base, MagicRestrict(*rel, std::move(*base), child));
              NESTRA_RETURN_NOT_OK(
                  FoldStageMem(&magic_timer, TableBytes(*base)));
              magic_timer.Finish(base->num_rows());
            }
            NESTRA_ASSIGN_OR_RETURN(
                *rel, JoinWithChild(std::move(*rel), std::move(*base), child,
                                    JoinType::kLeftOuter,
                                    /*extra_condition=*/nullptr, num_threads_,
                                    p, options_.vectorized, hints));
            s->join_seconds += Seconds(t0);
            s->intermediate_rows =
                std::max(s->intermediate_rows, rel->num_rows());
            const auto t1 = Clock::now();
            NESTRA_RETURN_NOT_OK(
                ApplyNestSelect(node, child, retained, mode, rel, p));
            s->nest_select_seconds += Seconds(t1);
            return Status::OK();
          });
      continue;
    }

    // Non-leaf child: the staged recursion becomes join task -> the
    // child's own task chain -> nest task.
    prev = dag->AddTask(
        "join[b" + bid + "]", {prev, base_task},
        [this, &child, rel, base, bid, hints](NraStats* s,
                                              QueryProfile* p) -> Status {
          const auto t0 = Clock::now();
          if (options_.magic_restriction) {
            StageTimer magic_timer(p, QueryPhase::kUnnestJoin,
                                   "magic[b" + bid + "]");
            NESTRA_ASSIGN_OR_RETURN(
                *base, MagicRestrict(*rel, std::move(*base), child));
            NESTRA_RETURN_NOT_OK(
                FoldStageMem(&magic_timer, TableBytes(*base)));
            magic_timer.Finish(base->num_rows());
          }
          NESTRA_ASSIGN_OR_RETURN(
              *rel, JoinWithChild(std::move(*rel), std::move(*base), child,
                                  JoinType::kLeftOuter,
                                  /*extra_condition=*/nullptr, num_threads_,
                                  p, options_.vectorized, hints));
          s->join_seconds += Seconds(t0);
          s->intermediate_rows =
              std::max(s->intermediate_rows, rel->num_rows());
          return Status::OK();
        });

    std::vector<std::string> retained_child = retained;
    for (const std::string& a : child.attributes) {
      retained_child.push_back(a);
    }
    path->push_back(&child);
    prev = BuildComputeTaskDag(dag, child, path, retained_child, prev, rel,
                               bases);
    path->pop_back();

    prev = dag->AddTask(
        "nest[b" + bid + "]", {prev},
        [this, &child, &node, rel, mode,
         retained](NraStats* s, QueryProfile* p) -> Status {
          const auto t0 = Clock::now();
          NESTRA_RETURN_NOT_OK(
              ApplyNestSelect(node, child, retained, mode, rel, p));
          s->nest_select_seconds += Seconds(t0);
          return Status::OK();
        });
  }
  return prev;
}

Result<Table> NraExecutor::ExecutePipelinedRecursive(const QueryBlock& root,
                                                     NraStats* stats,
                                                     QueryProfile* profile) {
  StageDag dag;
  // Base tables live in a deque so the pointers handed to task bodies stay
  // stable while the recursive builder keeps appending.
  std::deque<Table> bases;
  Table rel;
  Table out;

  const int root_base = dag.AddTask(
      "base[b" + std::to_string(root.id) + "]", {},
      [&](NraStats* s, QueryProfile* p) -> Status {
        const auto t0 = Clock::now();
        NESTRA_ASSIGN_OR_RETURN(
            rel, EvalBlockBase(root, catalog_, num_threads_, p,
                               options_.vectorized, options_.two_valued,
                        options_.cost_based));
        s->join_seconds += Seconds(t0);
        return Status::OK();
      });
  std::vector<const QueryBlock*> path{&root};
  const int last = BuildComputeTaskDag(&dag, root, &path, root.attributes,
                                       root_base, &rel, &bases);
  dag.AddTask("finish", {last},
              [&](NraStats* /*s*/, QueryProfile* p) -> Status {
                NESTRA_ASSIGN_OR_RETURN(out,
                                        FinishRoot(root, std::move(rel), p));
                return Status::OK();
              });
  NESTRA_RETURN_NOT_OK(dag.Run(num_threads_, stats, profile));
  return std::move(out);
}

Result<Table> NraExecutor::FinishRoot(const QueryBlock& root, Table rel,
                                      QueryProfile* profile) {
  // The root-key guard drops pseudo-padded root tuples (only produced by
  // tree queries with negative sibling links): a padded key marks failure.
  return FinalizeRootOutput(root, std::move(rel),
                            /*key_filter_attr=*/root.key_attr, num_threads_,
                            profile, options_.vectorized);
}

}  // namespace nestra
